let ilog2_floor k =
  if k < 1 then invalid_arg "Bits.ilog2_floor";
  let rec go acc k = if k <= 1 then acc else go (acc + 1) (k lsr 1) in
  go 0 k

let ilog2_ceil k =
  if k < 1 then invalid_arg "Bits.ilog2_ceil";
  let f = ilog2_floor k in
  if 1 lsl f = k then f else f + 1

let bits_for k = if k <= 1 then 0 else ilog2_ceil k

let index_bits k = max 1 (bits_for k)

let flog2 x = log x /. log 2.0

let pow2 j = Float.of_int 2 ** Float.of_int j
