(** Bit-size accounting helpers.

    The paper's storage bounds are counts of concrete fields: ring indices of
    [ceil(log2 K)] bits, global identifiers of [ceil(log2 n)] bits, first-hop
    pointers of [ceil(log2 Dout)] bits, and quantized distances. This module
    centralizes those counts so that every scheme reports byte-accurate
    storage. *)

val bits_for : int -> int
(** [bits_for k] is the number of bits needed to name one of [k] distinct
    values: [ceil(log2 k)], and [0] when [k <= 1] (nothing to distinguish). *)

val index_bits : int -> int
(** [index_bits k] is [max 1 (bits_for k)]: bits for an index into a table of
    [k] entries, at least one bit so that an index is never free. *)

val ilog2_floor : int -> int
(** [ilog2_floor k] is [floor(log2 k)]; requires [k >= 1]. *)

val ilog2_ceil : int -> int
(** [ilog2_ceil k] is [ceil(log2 k)]; requires [k >= 1]. *)

val flog2 : float -> float
(** Base-2 logarithm of a float. *)

val pow2 : int -> float
(** [pow2 j] is [2^j] as a float, exact for any [|j| <= 1023] — use this
    (never [1 lsl j]) for scale radii: aspect ratios can exceed [2^62]. *)
