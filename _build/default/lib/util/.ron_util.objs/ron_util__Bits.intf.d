lib/util/bits.mli:
