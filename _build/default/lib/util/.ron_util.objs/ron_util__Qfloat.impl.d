lib/util/qfloat.ml: Bitio Bits Float
