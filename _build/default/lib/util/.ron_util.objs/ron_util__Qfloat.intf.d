lib/util/qfloat.mli: Bitio
