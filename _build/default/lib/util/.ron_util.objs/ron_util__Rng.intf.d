lib/util/rng.mli:
