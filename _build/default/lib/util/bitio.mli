(** Bit-level writer/reader.

    The paper's storage bounds are stated in bits; this module lets the
    labeling and routing schemes {e materialize} their labels and tables as
    actual bitstrings, so the bit counts reported by the experiments are
    the lengths of real encodings, not estimates. Fields are written
    MSB-first with explicit widths. *)

module Writer : sig
  type t

  val create : unit -> t

  val bits : t -> int -> width:int -> unit
  (** [bits w v ~width] appends the low [width] bits of [v] (0 <= width <=
      62); raises [Invalid_argument] if [v] does not fit or is negative. *)

  val bool : t -> bool -> unit

  val length : t -> int
  (** Bits written so far. *)

  val to_bytes : t -> Bytes.t
  (** Padded with zero bits to a whole number of bytes. *)
end

module Reader : sig
  type t

  val of_bytes : Bytes.t -> t
  val of_writer : Writer.t -> t

  val bits : t -> width:int -> int
  (** Raises [Invalid_argument] on reading past the end. *)

  val bool : t -> bool
  val position : t -> int
  val remaining : t -> int
end
