(** Quantized distance encoding: mantissa + exponent.

    Theorems 3.4 and 2.1 store distances as an [O(log 1/delta)]-bit mantissa
    and an [O(log log Delta)]-bit exponent. This module implements that
    encoding. Quantization always rounds {e upward}, so decoded values never
    contract: [decode c (encode c x) >= x], and the relative error is at most
    [2^-mantissa_bits]. Upper-bound distance estimates (the paper's [D+])
    therefore stay valid upper bounds after quantization. *)

type codec

val codec : mantissa_bits:int -> max_exponent:int -> codec
(** [codec ~mantissa_bits ~max_exponent] encodes values in
    [{0} U [1, 2^(max_exponent+1))]. Inputs are expected to come from metrics
    normalized to minimum distance 1. *)

val codec_for : delta:float -> aspect_ratio:float -> codec
(** The paper's parameters: mantissa of [ceil(log2 (1/delta)) + 3] bits (so
    the relative error is at most [delta/8]) and an exponent wide enough for
    [log2 aspect_ratio]. *)

type t
(** An encoded value. *)

val encode : codec -> float -> t
(** Encode a non-negative float. Raises [Invalid_argument] if the value is
    negative, not finite, or beyond the codec's range. *)

val decode : codec -> t -> float

val quantize : codec -> float -> float
(** [quantize c x = decode c (encode c x)]. *)

val bits : codec -> int
(** Storage cost in bits of one encoded value. *)

val write : codec -> Bitio.Writer.t -> float -> unit
(** Quantize and append exactly [bits c] bits. *)

val read : codec -> Bitio.Reader.t -> float
(** Inverse of [write]: [read c (reader (write c x)) = quantize c x]. *)

val relative_error_bound : codec -> float
(** Maximum of [quantize c x /. x - 1] over valid positive [x]. *)
