module Writer = struct
  type t = { mutable buf : Bytes.t; mutable len_bits : int }

  let create () = { buf = Bytes.make 64 '\000'; len_bits = 0 }

  let ensure t extra_bits =
    let needed = (t.len_bits + extra_bits + 7) / 8 in
    if needed > Bytes.length t.buf then begin
      let bigger = Bytes.make (max needed (2 * Bytes.length t.buf)) '\000' in
      Bytes.blit t.buf 0 bigger 0 (Bytes.length t.buf);
      t.buf <- bigger
    end

  let put_bit t b =
    let byte = t.len_bits / 8 and off = t.len_bits mod 8 in
    if b then begin
      let cur = Char.code (Bytes.get t.buf byte) in
      Bytes.set t.buf byte (Char.chr (cur lor (1 lsl (7 - off))))
    end;
    t.len_bits <- t.len_bits + 1

  let bits t v ~width =
    if width < 0 || width > 62 then invalid_arg "Bitio.Writer.bits: bad width";
    if v < 0 then invalid_arg "Bitio.Writer.bits: negative value";
    if width < 62 && v lsr width <> 0 then invalid_arg "Bitio.Writer.bits: value too wide";
    ensure t width;
    for i = width - 1 downto 0 do
      put_bit t ((v lsr i) land 1 = 1)
    done

  let bool t b =
    ensure t 1;
    put_bit t b

  let length t = t.len_bits

  let to_bytes t = Bytes.sub t.buf 0 ((t.len_bits + 7) / 8)
end

module Reader = struct
  type t = { buf : Bytes.t; mutable pos : int; len_bits : int }

  let of_bytes b = { buf = b; pos = 0; len_bits = 8 * Bytes.length b }

  let of_writer w = { buf = Writer.to_bytes w; pos = 0; len_bits = Writer.length w }

  let get_bit t =
    if t.pos >= t.len_bits then invalid_arg "Bitio.Reader: out of bits";
    let byte = t.pos / 8 and off = t.pos mod 8 in
    t.pos <- t.pos + 1;
    (Char.code (Bytes.get t.buf byte) lsr (7 - off)) land 1 = 1

  let bits t ~width =
    if width < 0 || width > 62 then invalid_arg "Bitio.Reader.bits: bad width";
    let v = ref 0 in
    for _ = 1 to width do
      v := (!v lsl 1) lor (if get_bit t then 1 else 0)
    done;
    !v

  let bool t = get_bit t
  let position t = t.pos
  let remaining t = t.len_bits - t.pos
end
