type codec = { mantissa_bits : int; max_exponent : int }

let codec ~mantissa_bits ~max_exponent =
  if mantissa_bits < 1 || max_exponent < 0 then invalid_arg "Qfloat.codec";
  { mantissa_bits; max_exponent }

let codec_for ~delta ~aspect_ratio =
  if not (delta > 0.0) then invalid_arg "Qfloat.codec_for: delta must be positive";
  let mantissa_bits = Bits.ilog2_ceil (int_of_float (ceil (1.0 /. delta))) + 3 in
  let max_exponent =
    (* Distances live in [1, Delta]; sums of two distances in [1, 2*Delta]. *)
    max 1 (int_of_float (ceil (Bits.flog2 (max 2.0 aspect_ratio))) + 1)
  in
  codec ~mantissa_bits:(max 2 mantissa_bits) ~max_exponent

(* Encoded as (exponent, mantissa): value = (1 + m / 2^mb) * 2^e, plus a
   distinguished zero. *)
type t = Zero | Enc of int * int

let encode c x =
  if not (Float.is_finite x) || x < 0.0 then invalid_arg "Qfloat.encode: bad value";
  if x = 0.0 then Zero
  else if x < 1.0 then Enc (0, 0) (* round anything in (0,1) up to 1 *)
  else begin
    let e = int_of_float (Float.floor (Bits.flog2 x)) in
    let scale = Float.of_int (1 lsl c.mantissa_bits) in
    let frac = (x /. Bits.pow2 e) -. 1.0 in
    let m = int_of_float (Float.ceil (frac *. scale)) in
    let e, m = if m >= 1 lsl c.mantissa_bits then (e + 1, 0) else (e, m) in
    if e > c.max_exponent then invalid_arg "Qfloat.encode: value out of range";
    Enc (e, m)
  end

let decode c t =
  match t with
  | Zero -> 0.0
  | Enc (e, m) ->
    let scale = Float.of_int (1 lsl c.mantissa_bits) in
    (1.0 +. (Float.of_int m /. scale)) *. Bits.pow2 e

let quantize c x = decode c (encode c x)

let bits c = c.mantissa_bits + Bits.index_bits (c.max_exponent + 1) + 1
(* +1: the zero flag. *)

let relative_error_bound c = 1.0 /. Float.of_int (1 lsl c.mantissa_bits)

let exponent_bits c = Bits.index_bits (c.max_exponent + 1)

let write c w x =
  match encode c x with
  | Zero ->
    Bitio.Writer.bool w false;
    Bitio.Writer.bits w 0 ~width:(exponent_bits c);
    Bitio.Writer.bits w 0 ~width:c.mantissa_bits
  | Enc (e, m) ->
    Bitio.Writer.bool w true;
    Bitio.Writer.bits w e ~width:(exponent_bits c);
    Bitio.Writer.bits w m ~width:c.mantissa_bits

let read c r =
  let nonzero = Bitio.Reader.bool r in
  let e = Bitio.Reader.bits r ~width:(exponent_bits c) in
  let m = Bitio.Reader.bits r ~width:c.mantissa_bits in
  if nonzero then decode c (Enc (e, m)) else 0.0
