(** Synthetic doubling metrics used throughout tests and experiments.

    These play the role of the paper's input families: constant-dimensional
    lp point sets (which have doubling dimension k + O(1), Assouad), the
    exponential line (the paper's canonical example of a doubling metric with
    super-polynomial aspect ratio and unbounded grid dimension, Section 1),
    and a clustered "Internet latency" metric standing in for the latency
    matrices that motivated triangulation in [33, 50].

    All generators return metrics already normalized to minimum distance 1
    (possibly approximately for randomized clouds, exactly after
    [Metric.normalize], which each generator applies). *)

val euclidean : name:string -> ?p:float -> float array array -> Metric.t
(** [euclidean ~name ~p points] is the lp metric on explicit coordinates;
    [p] defaults to 2 and must be [>= 1]. Not normalized (the only exception
    here — coordinates are caller-controlled); apply [Metric.normalize] if
    needed. *)

val grid2d : int -> int -> Metric.t
(** [grid2d w h]: the w-by-h unit grid under l2; doubling dimension ~2. *)

val random_cloud : Ron_util.Rng.t -> n:int -> dim:int -> Metric.t
(** [n] uniform points in the [dim]-dimensional unit cube under l2,
    normalized; doubling dimension ~dim. Distinctness is enforced by
    resampling. *)

val exponential_line : int -> Metric.t
(** [exponential_line n]: the set [{2^0, 2^1, ..., 2^(n-1)}] on the real
    line (paper, Section 1): doubling (dimension <= 2) with aspect ratio
    [2^(n-1) - 1] — super-polynomial in [n]. *)

val exponential_clusters :
  Ron_util.Rng.t -> clusters:int -> per_cluster:int -> base:float -> Metric.t
(** Cluster [i] sits at position [base^i] on the real line, its
    [per_cluster] members jittered within a unit interval around it. The
    aspect ratio is ~[base^clusters] while [n = clusters * per_cluster]:
    a doubling metric with a huge aspect ratio at moderate [n] — the stress
    regime for the (log Delta) factors of Theorems 2.1 and 5.2(a) and the
    showcase for Theorems 3.4 and 5.2(b). Normalized. *)

val uniform_line : int -> Metric.t
(** [{0, 1, ..., n-1}] on the line: a UL-constrained metric (growth rate of
    balls bounded above and below), used for the Theorem 5.4 comparison. *)

val ring : int -> Metric.t
(** [n] evenly spaced points on a circle with the shortest-arc distance;
    UL-constrained, doubling dimension ~1. *)

val clustered_latency :
  Ron_util.Rng.t -> clusters:int -> per_cluster:int -> spread:float -> access:float -> Metric.t
(** Synthetic Internet-latency metric: cluster centers ("cities") uniform in
    a square of side 1000, members within [spread] of their center, distance
    = l2 backbone distance plus per-node access delays in [0, access]
    (adding a star metric keeps the triangle inequality). Normalized. *)

val three_point_example : float -> Metric.t
(** The paper's Section 1.1 example [{1, 2, Delta}] with [d(x,y) = |x-y|]:
    three nodes, aspect ratio arbitrarily large relative to n. *)
