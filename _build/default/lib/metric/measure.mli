(** Doubling measures (Theorem 1.3).

    A measure is [s]-doubling if [mu(B_u(r)) <= s * mu(B_u(r/2))] for every
    ball. For any finite metric of doubling dimension [alpha] a
    [2^O(alpha)]-doubling measure exists and is efficiently constructible
    [Volberg–Konyagin; Wu; Mendel–Har-Peled]. Intuitively the measure makes
    the metric look growth-constrained: on the exponential line
    [{2^i : i in [n]}] it assigns [mu(2^i) ~ 2^(i-n)], so sparse regions are
    up-weighted — exactly what the small-world constructions of Section 5
    need in order to oversample nodes in sparse neighborhoods.

    Construction: walk the nested net hierarchy top-down; the single top
    point carries mass 1, and each net point at level [j+1] splits its mass
    equally among its level-[j] children (net points whose nearest
    level-[j+1] parent it is). The number of children is bounded by
    [2^O(alpha)] (Lemma 1.4), which bounds the doubling constant. *)

type t

val create : Indexed.t -> Net.Hierarchy.t -> t

val mass : t -> int -> float
(** [mass t u]: the measure of node [u]; positive, and summing to 1. *)

val ball_mass : t -> Indexed.t -> int -> float -> float
(** Measure of the closed ball [B_u(r)]. *)

val cumulative_by_distance : t -> Indexed.t -> int -> float array
(** [cumulative_by_distance t idx u]: array [c] where [c.(k)] is the total
    mass of the [k+1] nodes closest to [u] (in the index's sorted order).
    Used for O(log n) sampling from balls proportionally to the measure. *)

val doubling_constant_estimate : t -> Indexed.t -> ?samples:int -> Ron_util.Rng.t -> float
(** Empirical doubling constant: max over sampled balls of
    [mu(B_u(r)) / mu(B_u(r/2))]. *)
