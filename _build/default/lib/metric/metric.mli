(** Finite metric spaces.

    Nodes are integers [0 .. n-1]. A metric is a name, a size, and a distance
    function; the distance function must be symmetric, non-negative, zero
    exactly on the diagonal, and satisfy the triangle inequality —
    [check] verifies all of this exhaustively.

    Throughout the library (as in the paper, Section 1.1) metrics are
    {e normalized} so that the minimum inter-node distance is 1; then the
    aspect ratio [Delta] equals the diameter and the nested net hierarchy
    uses radii [2^j] with level 0 containing every node. [normalize]
    rescales an arbitrary metric into this form. *)

type t

val create : name:string -> int -> (int -> int -> float) -> t
(** [create ~name n dist] wraps a distance function. The function is trusted;
    call [check] to validate it. *)

val of_matrix : name:string -> float array array -> t
(** Build from a dense symmetric matrix. *)

val name : t -> string
val size : t -> int

val dist : t -> int -> int -> float
(** [dist m u v]; raises [Invalid_argument] on out-of-range nodes. *)

val check : t -> (unit, string) result
(** Exhaustive O(n^3) validation of the metric axioms; intended for tests and
    for rejecting malformed user input, not for hot paths. *)

val min_distance : t -> float
(** Smallest distance between two distinct nodes; [infinity] if [n < 2]. *)

val diameter : t -> float
(** Largest pairwise distance; [0] if [n < 2]. *)

val aspect_ratio : t -> float
(** [diameter / min_distance]; [1] if [n < 2]. *)

val normalize : t -> t
(** Rescale so that the minimum distance is 1. Materializes the distances of
    the input into a matrix, so the result has O(n^2) memory but O(1)
    lookups. The identity scaling is skipped. *)

val scale : t -> float -> t
(** [scale m c] multiplies every distance by [c > 0]. *)

val submetric : t -> int array -> t
(** [submetric m nodes] restricts [m] to the given nodes (renumbered
    [0 .. length-1]). Doubling dimension never increases under restriction. *)
