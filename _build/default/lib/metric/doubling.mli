(** Doubling-dimension machinery: greedy ball covers (Lemma 1.1) and an
    empirical dimension estimator.

    The doubling dimension of a metric is the infimum of all [alpha] such
    that every set of diameter [d] can be covered by [2^alpha] sets of
    diameter [d/2]. Lemma 1.1 turns this into an efficiently constructible
    cover by balls: any set of diameter [d] is covered by [2^(alpha k)]
    balls of radius [d / 2^k]. *)

val greedy_cover : Indexed.t -> int array -> radius:float -> int array
(** [greedy_cover idx nodes ~radius] implements the Lemma 1.1 procedure:
    repeatedly select a not-yet-covered node as a center and remove every
    node within [radius] of it. Returns the centers. The centers are
    pairwise more than [radius] apart, and every node of [nodes] is within
    [radius] of some center. *)

val dimension_estimate : Indexed.t -> ?samples:int -> Ron_util.Rng.t -> float
(** Empirical doubling dimension: the maximum over sampled balls [B = B_u(r)]
    of [log2 (size of a greedy (r/2)-cover of B)]. This upper-bounds honest
    local doubling behaviour well enough to parameterize constructions
    whose constants depend on [2^O(alpha)]. *)

val lemma_1_2_lower_bound : Indexed.t -> alpha:float -> bool
(** Checks Lemma 1.2: [1 + log2 Delta >= (log2 n) / alpha]. *)
