lib/metric/packing.ml: Array Doubling Indexed List
