lib/metric/generators.ml: Array Float Metric Printf Ron_util
