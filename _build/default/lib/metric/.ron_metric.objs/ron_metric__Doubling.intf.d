lib/metric/doubling.mli: Indexed Ron_util
