lib/metric/indexed.ml: Array Metric Ron_util
