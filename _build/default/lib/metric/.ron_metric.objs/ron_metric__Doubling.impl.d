lib/metric/doubling.ml: Array Float Hashtbl Indexed List Ron_util
