lib/metric/metric.ml: Array Float Format
