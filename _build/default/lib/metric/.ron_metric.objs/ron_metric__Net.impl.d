lib/metric/net.ml: Array Indexed List Ron_util
