lib/metric/indexed.mli: Metric
