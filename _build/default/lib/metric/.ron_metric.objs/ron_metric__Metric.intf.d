lib/metric/metric.mli:
