lib/metric/generators.mli: Metric Ron_util
