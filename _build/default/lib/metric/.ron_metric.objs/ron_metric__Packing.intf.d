lib/metric/packing.mli: Indexed
