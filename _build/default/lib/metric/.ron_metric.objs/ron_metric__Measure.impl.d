lib/metric/measure.ml: Array Float Hashtbl Indexed List Net Ron_util
