lib/metric/measure.mli: Indexed Net Ron_util
