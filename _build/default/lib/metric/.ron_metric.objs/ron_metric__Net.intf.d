lib/metric/net.mli: Indexed
