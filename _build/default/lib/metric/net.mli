(** r-nets and nested net hierarchies.

    An [r]-net (Section 1.1) is a set [S] such that every point of the metric
    is within [r] of [S] (covering) and any two points of [S] are at distance
    at least [r] (packing). By Lemma 1.4 an [r]-net has at most [(4 r'/r)^alpha]
    elements in any ball of radius [r' >= r].

    The hierarchy is the paper's greedily constructed sequence of nested nets
    [G_jmax ⊆ ... ⊆ G_1 ⊆ G_0] where [G_j] is a [2^j]-net (proof of Theorem
    3.2). On a metric normalized to minimum distance 1, [G_0] is the whole
    node set, which several proofs rely on. *)

val r_net : Indexed.t -> ?seeds:int array -> r:float -> unit -> int array
(** [r_net idx ~r ()] greedily builds an [r]-net: starting from [seeds]
    (which must be pairwise at distance [>= r]; default empty), scan nodes in
    id order and add any node at distance [>= r] from all current net points.
    Returns net points in the order added (seeds first). *)

val is_r_net : Indexed.t -> int array -> r:float -> bool
(** Checks both the packing and covering conditions. *)

module Hierarchy : sig
  type t

  val create : Indexed.t -> t
  (** Requires a metric with minimum distance [>= 1] (normalized). Builds
      nested [2^j]-nets for [j = 0 .. jmax], top-down, where
      [jmax = ceil(log2 Delta)] and [G_jmax] is a single node. *)

  val jmax : t -> int

  val level : t -> int -> int array
  (** [level h j]: the points of [G_j]. [j] is clamped to [0 .. jmax], which
      implements the paper's convention that scales below the minimum
      distance are the whole node set and scales above the diameter are a
      single point. *)

  val mem : t -> int -> int -> bool
  (** [mem h j u]: is [u] a point of [G_j] (with the same clamping)? *)

  val max_level_of : t -> int -> int
  (** [max_level_of h u]: the largest [j] such that [u ∈ G_j]; [-1] never
      happens since [G_0] contains every node. *)

  val nearest : t -> int -> int -> int * float
  (** [nearest h j u]: the net point of [G_j] closest to [u] and its
      distance (at most [2^j] by the covering property). Ties broken by
      node id. *)

  val radius : t -> int -> float
  (** [radius h j] is [2^j] (clamped [j]). *)
end
