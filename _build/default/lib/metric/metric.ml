type t = { name : string; n : int; dist : int -> int -> float }

let create ~name n dist =
  if n < 1 then invalid_arg "Metric.create: need at least one node";
  { name; n; dist }

let of_matrix ~name m =
  let n = Array.length m in
  if n = 0 then invalid_arg "Metric.of_matrix: empty matrix";
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Metric.of_matrix: not square") m;
  { name; n; dist = (fun u v -> m.(u).(v)) }

let name t = t.name
let size t = t.n

let dist t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Metric.dist: node out of range";
  t.dist u v

let check t =
  let n = t.n in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  try
    for u = 0 to n - 1 do
      if t.dist u u <> 0.0 then raise (Bad (Format.asprintf "d(%d,%d) <> 0" u u));
      for v = u + 1 to n - 1 do
        let d = t.dist u v in
        if not (Float.is_finite d) || d <= 0.0 then
          raise (Bad (Format.asprintf "d(%d,%d) = %g not positive finite" u v d));
        (* Tolerate last-ulp asymmetry from float summation order (e.g. a
           shortest path walked in the two directions). *)
        if Float.abs (t.dist v u -. d) > 1e-9 *. Float.max 1.0 d then
          raise (Bad (Format.asprintf "d(%d,%d) asymmetric" u v))
      done
    done;
    (* Triangle inequality, with a tiny tolerance for float rounding. *)
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if v <> u then
          for w = 0 to n - 1 do
            if w <> u && w <> v then begin
              let duv = t.dist u v and duw = t.dist u w and dwv = t.dist w v in
              if duv > (duw +. dwv) *. (1.0 +. 1e-9) then
                raise
                  (Bad
                     (Format.asprintf "triangle violated: d(%d,%d)=%g > d(%d,%d)+d(%d,%d)=%g" u v duv
                        u w w v (duw +. dwv)))
            end
          done
      done
    done;
    Ok ()
  with Bad s -> err "%s: %s" t.name s

let min_distance t =
  if t.n < 2 then infinity
  else begin
    let best = ref infinity in
    for u = 0 to t.n - 1 do
      for v = u + 1 to t.n - 1 do
        let d = t.dist u v in
        if d < !best then best := d
      done
    done;
    !best
  end

let diameter t =
  let best = ref 0.0 in
  for u = 0 to t.n - 1 do
    for v = u + 1 to t.n - 1 do
      let d = t.dist u v in
      if d > !best then best := d
    done
  done;
  !best

let aspect_ratio t = if t.n < 2 then 1.0 else diameter t /. min_distance t

let materialize t =
  Array.init t.n (fun u -> Array.init t.n (fun v -> t.dist u v))

let scale t c =
  if not (c > 0.0) then invalid_arg "Metric.scale: factor must be positive";
  { t with dist = (fun u v -> c *. t.dist u v) }

let normalize t =
  let dmin = min_distance t in
  if t.n >= 2 && not (dmin > 0.0 && Float.is_finite dmin) then
    invalid_arg "Metric.normalize: degenerate metric (duplicate or infinitely far points)";
  if t.n < 2 || dmin = 1.0 then { t with dist = (let m = materialize t in fun u v -> m.(u).(v)) }
  else begin
    let m = materialize t in
    (* Divide rather than multiply by the inverse so that the minimum pair
       lands exactly on 1.0. *)
    Array.iteri (fun u row -> Array.iteri (fun v d -> m.(u).(v) <- d /. dmin) row) m;
    { t with dist = (fun u v -> m.(u).(v)) }
  end

let submetric t nodes =
  let k = Array.length nodes in
  if k = 0 then invalid_arg "Metric.submetric: empty node set";
  Array.iter (fun u -> if u < 0 || u >= t.n then invalid_arg "Metric.submetric: node out of range") nodes;
  {
    name = t.name ^ "/sub";
    n = k;
    dist = (fun i j -> t.dist nodes.(i) nodes.(j));
  }
