(** (eps, mu)-packings (Lemma 3.1 / Lemma A.1).

    An (eps, mu)-packing is a family [F] of disjoint balls, each of measure
    at least [eps / 2^O(alpha)], such that for every node [u] some ball
    [B_v(r)] of [F] satisfies [d(u,v) + r <= 6 r_u(eps)] (so in particular
    the ball lies inside [B_u(6 r_u(eps))]). The paper uses these with the
    counting measure [mu(S) = |S|/n] to build the X-type neighbors of
    Theorems 3.2, 3.4 and 4.2.

    The construction follows Appendix A: for each node [u] descend from the
    ball [B_u(r_u(eps))], at each step covering the current ball with radius/8
    balls (Lemma 1.1) and recursing into the heaviest one until its 4x
    blow-up is light enough ("u-zooming" ball) or a single node remains; then
    keep a maximal disjoint subfamily of the candidate balls. *)

type ball = {
  center : int;  (** the designated node [h_B] — a center of the ball *)
  radius : float;
  members : int array;  (** nodes of the ball, the disjointness domain *)
}

type t

val create : Indexed.t -> eps:float -> t
(** Counting-measure packing. [eps] in (0, 1]. *)

val eps : t -> float
val balls : t -> ball array

val measure_of : t -> ball -> float
(** Counting measure [|members| / n] of a ball. *)

val ball_index_of_member : t -> int -> int option
(** The (unique, by disjointness) index of the ball containing a node. *)

val covering_ball : t -> Indexed.t -> int -> ball
(** [covering_ball t idx u]: a ball [B] of the packing minimizing
    [d(u, h_B) + radius]; Lemma A.1 guarantees this value is at most
    [6 r_u(eps)]. *)
