module Rng = Ron_util.Rng
module Bits = Ron_util.Bits

let greedy_cover idx nodes ~radius =
  if radius < 0.0 then invalid_arg "Doubling.greedy_cover: negative radius";
  let remaining = Hashtbl.create (Array.length nodes) in
  Array.iter (fun u -> Hashtbl.replace remaining u ()) nodes;
  let centers = ref [] in
  (* Iterate in the fixed order of [nodes] for determinism. *)
  Array.iter
    (fun u ->
      if Hashtbl.mem remaining u then begin
        centers := u :: !centers;
        Array.iter
          (fun v -> if Indexed.dist idx u v <= radius then Hashtbl.remove remaining v)
          nodes
      end)
    nodes;
  Array.of_list (List.rev !centers)

let dimension_estimate idx ?(samples = 64) rng =
  let n = Indexed.size idx in
  let best = ref 0.0 in
  for _ = 1 to samples do
    let u = Rng.int rng n in
    (* Random scale: radius of the ball holding a random number of nodes. *)
    let k = 2 + Rng.int rng (max 1 (n - 2)) in
    let r = Indexed.radius_for_count idx u k in
    if r > 0.0 then begin
      let members = Indexed.ball idx u r in
      let cover = greedy_cover idx members ~radius:(r /. 2.0) in
      let c = Array.length cover in
      if c > 1 then best := Float.max !best (Bits.flog2 (float_of_int c))
    end
  done;
  Float.max 1.0 !best

let lemma_1_2_lower_bound idx ~alpha =
  let n = float_of_int (Indexed.size idx) in
  let delta = Indexed.aspect_ratio idx in
  1.0 +. Bits.flog2 delta >= Bits.flog2 n /. alpha
