(** Zooming sequences (proofs of Theorems 2.1 and 3.4).

    The zooming sequence of a target [t] is a sequence of nodes [f_tj] that
    "zoom in" on [t]: [f_tj] is a j-ring neighbor of [t] within a
    geometrically shrinking distance of [t]. A label cannot afford global
    identifiers for the sequence, so each element is encoded as an index in
    an enumeration belonging to the {e previous} element; the decoder at a
    node [u] recovers its own indices for the elements one at a time through
    [u]'s translation functions, stopping exactly when an element leaves
    [u]'s rings (Claim 2.2). *)

type encoded = {
  first : int;  (** index of [f_t0] in the canonical scale-0 enumeration *)
  rest : int array;
      (** [rest.(j)]: index of [f_(t,j+1)] in the designated enumeration of
          the previous element [f_tj] *)
}

val encode :
  sequence:int array ->
  enum_of_prev:(int -> int -> int option) ->
  first_index:int ->
  encoded
(** [encode ~sequence ~enum_of_prev ~first_index] encodes
    [sequence.(j+1)] as [enum_of_prev j sequence.(j+1)] (the index of the
    next element in the enumeration attached to element [j]). Raises
    [Invalid_argument] if some element is not enumerable where the
    construction promised it would be — that means the structure violates
    Claim 2.3 / Claim 3.5 and must not be shipped. *)

val decode_walk :
  translate:(int -> x:int -> y:int -> int option) ->
  encoded ->
  int array
(** [decode_walk ~translate enc] is the Claim 2.2 walk: [m_0 = enc.first];
    [m_(j+1) = translate j ~x:m_j ~y:enc.rest.(j)]; the walk stops at the
    first null. Returns the array of recovered local indices
    [m_0 .. m_jmax] ([jmax] = the paper's [j_ut] when used for routing). *)

val bits : encoded -> index_bits:int -> int
(** Storage cost: one index per element. *)
