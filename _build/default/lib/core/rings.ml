module Indexed = Ron_metric.Indexed
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
module Rng = Ron_util.Rng

type ring = { scale : int; radius : float; members : int array }

type t = ring array array

let of_rings r = r

let ring t u i = t.(u).(i)
let rings_of t u = t.(u)
let scales t u = Array.length t.(u)
let size t = Array.length t

let neighbors t u =
  let tbl = Hashtbl.create 64 in
  Array.iter (fun r -> Array.iter (fun v -> Hashtbl.replace tbl v ()) r.members) t.(u);
  let out = Array.of_list (Hashtbl.fold (fun v () acc -> v :: acc) tbl []) in
  Array.sort compare out;
  out

let out_degree t u = Array.length (neighbors t u)

let max_out_degree t =
  let best = ref 0 in
  for u = 0 to size t - 1 do
    best := max !best (out_degree t u)
  done;
  !best

let max_ring_size t =
  Array.fold_left
    (fun acc rs -> Array.fold_left (fun a r -> max a (Array.length r.members)) acc rs)
    0 t

let of_membership idx ~scales ~radius_of ~member_of =
  let n = Indexed.size idx in
  Array.init n (fun u ->
      Array.init scales (fun i ->
          let radius = radius_of i in
          let members =
            Array.of_list
              (List.filter (member_of i) (Array.to_list (Indexed.ball idx u radius)))
          in
          Array.sort compare members;
          { scale = i; radius; members }))

let net_rings idx hier ~scales ~radius_of ~level_of =
  let n = Indexed.size idx in
  Array.init n (fun u ->
      Array.init scales (fun i ->
          let radius = radius_of i in
          let level = level_of i in
          let members =
            Array.of_list
              (List.filter
                 (fun v -> Net.Hierarchy.mem hier level v)
                 (Array.to_list (Indexed.ball idx u radius)))
          in
          { scale = i; radius; members }))

let uniform_rings idx rng ~scales ~samples =
  let n = Indexed.size idx in
  Array.init n (fun u ->
      Array.init scales (fun i ->
          let p = if i >= 62 then max_int else 1 lsl i in
          let k = if p >= n then 1 else (n + p - 1) / p in
          let radius = Indexed.radius_for_count idx u k in
          let ball = Indexed.ball idx u radius in
          let members = Array.init samples (fun _ -> Rng.pick rng ball) in
          { scale = i; radius; members }))

let measure_rings idx mu rng ~scales ~samples ~radius_of =
  let n = Indexed.size idx in
  Array.init n (fun u ->
      let cum = Measure.cumulative_by_distance mu idx u in
      Array.init scales (fun j ->
          let radius = radius_of j in
          let count = Indexed.ball_count idx u radius in
          let prefix = Array.sub cum 0 (max 1 count) in
          let members =
            Array.init samples (fun _ ->
                let k = Rng.weighted_index rng prefix in
                fst (Indexed.nth_neighbor idx u k))
          in
          { scale = j; radius; members }))

let check_containment idx t =
  let ok = ref true in
  Array.iteri
    (fun u rs ->
      Array.iter
        (fun r ->
          Array.iter
            (fun v -> if Indexed.dist idx u v > r.radius +. 1e-9 then ok := false)
            r.members)
        rs)
    t;
  !ok
