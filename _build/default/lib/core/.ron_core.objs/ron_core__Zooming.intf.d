lib/core/zooming.mli:
