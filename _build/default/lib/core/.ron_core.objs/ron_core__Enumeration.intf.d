lib/core/enumeration.mli:
