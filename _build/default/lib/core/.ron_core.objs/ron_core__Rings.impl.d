lib/core/rings.ml: Array Hashtbl List Ron_metric Ron_util
