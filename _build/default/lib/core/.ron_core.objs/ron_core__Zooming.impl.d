lib/core/zooming.ml: Array List Printf
