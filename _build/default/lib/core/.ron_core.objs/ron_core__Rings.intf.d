lib/core/rings.mli: Ron_metric Ron_util
