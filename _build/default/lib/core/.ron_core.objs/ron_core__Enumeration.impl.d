lib/core/enumeration.ml: Array Hashtbl List Ron_util
