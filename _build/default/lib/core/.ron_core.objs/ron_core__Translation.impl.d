lib/core/translation.ml: Hashtbl
