lib/core/translation.mli:
