type t = { order : int array; pos : (int, int) Hashtbl.t }

let of_array nodes =
  let pos = Hashtbl.create (Array.length nodes) in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem pos v then invalid_arg "Enumeration.of_array: duplicate node";
      Hashtbl.replace pos v i)
    nodes;
  { order = Array.copy nodes; pos }

let with_prefix ~prefix rest =
  let fresh = Array.of_list (List.filter (fun v -> not (Hashtbl.mem prefix.pos v)) (Array.to_list rest)) in
  of_array (Array.append prefix.order fresh)

let size t = Array.length t.order
let node t i = t.order.(i)
let index t v = Hashtbl.find_opt t.pos v

let index_exn t v =
  match Hashtbl.find_opt t.pos v with
  | Some i -> i
  | None -> invalid_arg "Enumeration.index_exn: node not enumerated"

let mem t v = Hashtbl.mem t.pos v
let nodes t = Array.copy t.order
let index_bits t = Ron_util.Bits.index_bits (size t)
