(** Host enumerations (paper, proofs of Theorems 2.1 and 3.4).

    Storing global [ceil(log2 n)]-bit node identifiers in every routing table
    and label costs an extra [(log n)] factor; the paper avoids it by giving
    each node [u] an {e enumeration} [phi_u] of its neighbor set — a
    bijection onto [0 .. k-1] — and referring to neighbors by their local
    index, which costs only [ceil(log2 K)] bits for rings of size at most
    [K]. Two nodes can share indices only on sets on which their
    enumerations are guaranteed to coincide (the canonical level-0 prefix). *)

type t

val of_array : int array -> t
(** [of_array nodes]: the enumeration mapping [nodes.(i)] to index [i].
    Raises [Invalid_argument] on duplicates. *)

val with_prefix : prefix:t -> int array -> t
(** [with_prefix ~prefix rest]: enumeration whose first [size prefix]
    indices are exactly [prefix]'s (the canonical shared part) followed by
    the nodes of [rest] not already in the prefix, in order. *)

val size : t -> int
val node : t -> int -> int
(** [node t i]: the node with index [i]. *)

val index : t -> int -> int option
(** [index t v]: [v]'s index, if enumerated. *)

val index_exn : t -> int -> int
val mem : t -> int -> bool
val nodes : t -> int array
(** All enumerated nodes in index order (fresh copy). *)

val index_bits : t -> int
(** Bits needed to store one index. *)
