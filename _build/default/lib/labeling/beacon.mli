(** Common-beacon (eps, delta)-triangulation — the [33, 50] baseline.

    All nodes share one beacon set of [k] uniformly random nodes; a node's
    label is its distances to the beacons. This is the construction whose
    "obvious flaw" motivates Theorem 3.2: it guarantees
    [D+/D- <= 1 + delta] only for all but an eps-fraction of pairs, and for
    the remaining pairs gives no guarantee at all. [bad_fraction] measures
    that eps empirically so the benchmark can exhibit the contrast. *)

type t

val build : Ron_metric.Indexed.t -> Ron_util.Rng.t -> k:int -> t
(** [k] beacons sampled uniformly without replacement ([k <= n]). *)

val beacons : t -> int array
val order : t -> int

val estimate : t -> int -> int -> float * float
(** [(D-, D+)] over the (shared) beacon set. [D-] can be 0 and [D+] loose:
    no per-pair guarantee. *)

val bad_fraction : t -> delta:float -> float
(** Fraction of unordered node pairs with [D+ > (1 + delta) * D-]
    (including pairs with [D- = 0]). *)

val label_bits : t -> int array
(** Distances only — the beacon ids are global constants, charged once. *)
