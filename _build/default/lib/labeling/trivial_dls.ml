module Indexed = Ron_metric.Indexed
module Bits = Ron_util.Bits

type t = { idx : Indexed.t }

let build idx = { idx }

let estimate t u v = Indexed.dist t.idx u v

let label_bits t =
  let n = Indexed.size t.idx in
  (* An exact distance needs ceil(log2 Delta) integer bits plus mantissa
     precision; we charge the float-standard 53 bits of mantissa or the
     magnitude range, whichever dominates, so that the O(n log Delta)
     scaling of the trivial scheme is visible. *)
  let log_delta =
    int_of_float (ceil (Bits.flog2 (Float.max 2.0 (Indexed.aspect_ratio t.idx))))
  in
  let dist_bits = max 53 (log_delta + 1) in
  Array.make n ((n - 1) * (Bits.index_bits n + dist_bits))
