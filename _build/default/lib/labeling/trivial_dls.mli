(** The trivial exact distance labeling scheme (Section 1, "Distance
    labeling"): the label of [u] encodes the distances to all other nodes,
    [O(n log Delta)] bits. Exact answers; used as the storage baseline that
    Theorems 3.2/3.4 are measured against. *)

type t

val build : Ron_metric.Indexed.t -> t
val estimate : t -> int -> int -> float
(** Exact distance. *)

val label_bits : t -> int array
(** [n-1] exact distance entries per node, each charged [ceil(log2 n)] id
    bits plus [max(53, ceil(log2 Delta)+1)] distance bits — the
    [O(n log Delta)] baseline of Section 1. *)
