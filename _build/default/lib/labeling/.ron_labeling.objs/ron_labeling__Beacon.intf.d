lib/labeling/beacon.mli: Ron_metric Ron_util
