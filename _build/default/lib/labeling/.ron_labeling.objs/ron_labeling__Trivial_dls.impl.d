lib/labeling/trivial_dls.ml: Array Float Ron_metric Ron_util
