lib/labeling/triangulation.ml: Array Float Hashtbl List Ron_metric Ron_util
