lib/labeling/triangulation.mli: Ron_metric
