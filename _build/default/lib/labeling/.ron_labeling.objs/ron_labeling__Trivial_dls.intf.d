lib/labeling/trivial_dls.mli: Ron_metric
