lib/labeling/dls.ml: Array Bytes Float Fun Hashtbl List Ron_core Ron_metric Ron_util Triangulation
