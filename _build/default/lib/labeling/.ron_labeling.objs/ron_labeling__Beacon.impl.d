lib/labeling/beacon.ml: Array Float Fun Ron_metric Ron_util
