lib/labeling/dls.mli: Bytes Triangulation
