(** (0, delta)-triangulation of order [(1/delta)^O(alpha) log n]
    (Theorem 3.2).

    A triangulation of order [k] labels each node [u] with distances to a
    beacon set [S_u] of at most [k] nodes. For two labelled nodes the
    triangle inequality gives the upper bound
    [D+ = min_b (d_ub + d_vb)] and the lower bound [D- = max_b |d_ub - d_vb|]
    over common beacons [b]. A (0, delta)-triangulation guarantees
    [D+/D- <= 1 + O(delta)] for {e every} pair — unlike the common-beacon
    constructions of [33, 50], which leave an eps-fraction of pairs with no
    guarantee (see {!Beacon}).

    Construction (proof of Theorem 3.2): the beacons of [u] are
    - X-type: for each cardinality scale [i], the designated nodes [h_B] of
      the packing balls [B] of a [(2^-i, counting)]-packing (Lemma 3.1) that
      lie well inside [B_u(r_u(2^-(i-1)))];
    - Y-type: for each scale [i], the points of the net [G_j],
      [j ~ log2 (delta r_ui / 4)], within distance [12 r_ui / delta] of [u],
      where [{G_j}] is a nested net hierarchy.

    The proof shows that for every pair [(u,v)] some common beacon lies
    within [delta * d(u,v)] of [u] or [v], which yields
    [D+ <= (1 + 2 delta) d] and [D- >= (1 - 2 delta) d]. *)

type t

val build :
  ?radius_factor:float -> ?net_divisor:float -> Ron_metric.Indexed.t -> delta:float -> t
(** Requires a normalized metric (minimum distance 1) and
    [delta in (0, 1/2)]. Deterministic.

    [radius_factor] (default 12, the paper's constant) scales the Y-ring
    radius [radius_factor * r_ui / delta]; [net_divisor] (default 4) sets
    the Y-net spacing [delta * r_ui / net_divisor]. The (0, delta) guarantee
    is proved only for the defaults; smaller radius factors / larger
    divisors are exposed for the constant-ablation experiment (E-3.2), which
    measures how far the paper's constants can be tightened before pairs
    lose their common beacon. *)

val idx : t -> Ron_metric.Indexed.t
val delta : t -> float

val levels : t -> int
(** Number of cardinality scales: [ceil(log2 n) + 1]. *)

val hierarchy : t -> Ron_metric.Net.Hierarchy.t
val packing : t -> int -> Ron_metric.Packing.t
(** [packing t i]: the [(2^-i, mu)]-packing of scale [i]. *)

val x_neighbors : t -> int -> int -> int array
(** [x_neighbors t u i]: the X-type beacons of [u] at scale [i]. *)

val y_neighbors : t -> int -> int -> int array
(** [y_neighbors t u i]: the Y-type beacons of [u] at scale [i]. *)

val beacons : t -> int -> int array
(** All distinct beacons of [u] (its label's support), sorted. *)

val order : t -> int
(** Max number of beacons over all nodes: the triangulation's order. *)

val estimate : t -> int -> int -> float * float
(** [estimate t u v = (D-, D+)] over the common beacons of [u] and [v],
    using only the two labels. Raises [Failure] if the nodes share no
    beacon — Theorem 3.2 proves this never happens for [u <> v]. *)

val estimate_plus : t -> int -> int -> float
val estimate_minus : t -> int -> int -> float

val witness : t -> int -> int -> int
(** A common beacon achieving [D+]. *)

val label_bits : t -> int array
(** Per-node label size in bits when each beacon entry is stored as a
    global [ceil(log2 n)]-bit identifier plus a quantized distance (the
    Mendel–Har-Peled-matching scheme described after Theorem 3.2). *)
