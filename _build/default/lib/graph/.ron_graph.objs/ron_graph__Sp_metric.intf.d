lib/graph/sp_metric.mli: Graph Ron_metric
