lib/graph/hop_paths.ml: Array Graph Sp_metric
