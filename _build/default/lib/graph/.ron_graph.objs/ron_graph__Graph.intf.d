lib/graph/graph.mli:
