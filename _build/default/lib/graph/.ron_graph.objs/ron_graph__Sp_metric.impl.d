lib/graph/sp_metric.ml: Array Dijkstra Graph List Ron_metric
