lib/graph/graph.ml: Array Float List Queue
