lib/graph/graph_gen.mli: Graph Ron_util
