lib/graph/hop_paths.mli: Sp_metric
