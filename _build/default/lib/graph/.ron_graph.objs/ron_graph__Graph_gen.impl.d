lib/graph/graph_gen.ml: Array Float Graph List Ron_util
