module Rng = Ron_util.Rng

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Graph_gen.grid";
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then edges := (id x y, id (x + 1) y, 1.0) :: !edges;
      if y + 1 < h then edges := (id x y, id x (y + 1), 1.0) :: !edges
    done
  done;
  Graph.undirected (w * h) !edges

let torus w h =
  if w < 3 || h < 3 then invalid_arg "Graph_gen.torus";
  let id x y = (y * w) + x in
  let edges = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      edges := (id x y, id ((x + 1) mod w) y, 1.0) :: !edges;
      edges := (id x y, id x ((y + 1) mod h), 1.0) :: !edges
    done
  done;
  Graph.undirected (w * h) !edges

let random_geometric rng ~n ~radius =
  if n < 2 then invalid_arg "Graph_gen.random_geometric";
  let pts = Array.init n (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0)) in
  let d u v =
    let (x1, y1) = pts.(u) and (x2, y2) = pts.(v) in
    Float.hypot (x1 -. x2) (y1 -. y2)
  in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let duv = d u v in
      if duv <= radius && duv > 0.0 then edges := (u, v, duv) :: !edges
    done
  done;
  (* Bridge components via nearest cross-component pairs until connected. *)
  let comp = Array.init n (fun i -> i) in
  let rec find i = if comp.(i) = i then i else (comp.(i) <- find comp.(i); comp.(i)) in
  let union i j = comp.(find i) <- find j in
  List.iter (fun (u, v, _) -> union u v) !edges;
  let rec connect () =
    let roots = Array.init n find in
    let root0 = roots.(0) in
    let other = ref (-1) in
    for i = 0 to n - 1 do
      if roots.(i) <> root0 && !other < 0 then other := i
    done;
    if !other >= 0 then begin
      (* Nearest pair between component of 0 and the rest. *)
      let best = ref (-1, -1) and best_d = ref infinity in
      for u = 0 to n - 1 do
        if roots.(u) = root0 then
          for v = 0 to n - 1 do
            if roots.(v) <> root0 then begin
              let duv = d u v in
              if duv < !best_d && duv > 0.0 then begin
                best := (u, v);
                best_d := duv
              end
            end
          done
      done;
      let (u, v) = !best in
      edges := (u, v, !best_d) :: !edges;
      union u v;
      connect ()
    end
  in
  connect ();
  Graph.undirected n !edges

let ring_with_chords rng ~n ~chords =
  if n < 3 then invalid_arg "Graph_gen.ring_with_chords";
  let ring_dist u v =
    let k = abs (u - v) in
    float_of_int (min k (n - k))
  in
  let edges = ref [] in
  for u = 0 to n - 1 do
    edges := (u, (u + 1) mod n, 1.0) :: !edges
  done;
  for _ = 1 to chords do
    let u = Rng.int rng n in
    let v = Rng.int rng n in
    if u <> v && ring_dist u v > 1.0 then edges := (u, v, ring_dist u v) :: !edges
  done;
  Graph.undirected n !edges

let exponential_line_graph n =
  if n < 2 then invalid_arg "Graph_gen.exponential_line_graph";
  if n > 52 then invalid_arg "Graph_gen.exponential_line_graph: n too large";
  let edges =
    List.init (n - 1) (fun i ->
        (i, i + 1, Float.of_int ((1 lsl (i + 1)) - (1 lsl i))))
  in
  Graph.undirected n edges
