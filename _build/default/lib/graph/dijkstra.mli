(** Single-source shortest paths with first-hop extraction.

    The routing schemes never store whole paths — only the {e first-hop
    pointer} from [u] towards a neighbor [v]: the index of the first edge of
    some shortest [u->v] path in [u]'s out-edge list (proof of Theorem 2.1).
    Dijkstra from every source yields both the distance matrix (the
    shortest-paths metric of the graph) and all first-hop pointers.

    To make "the" shortest path well defined even with distance ties, ties
    are broken deterministically: among equal-length paths the one whose
    first edge has the smallest index wins (propagated along the search). *)

type sssp = {
  source : int;
  dist : float array;
  first_hop : int array;
      (** [first_hop.(v)]: index into [out_edges g source] of the first edge
          of the chosen shortest path to [v]; [-1] for [v = source] or
          unreachable [v]. *)
}

val run : Graph.t -> int -> sssp

val all_pairs : Graph.t -> sssp array
(** One [sssp] per source. O(n (m + n log n)). *)

val next_node : Graph.t -> sssp -> int -> int
(** [next_node g s v]: the node reached by following [s]'s first hop toward
    [v]. Raises [Invalid_argument] if [v] is the source or unreachable. *)
