type edge = { dst : int; weight : float }

type t = { n : int; adj : edge array array }

let create n arcs =
  if n < 1 then invalid_arg "Graph.create: need at least one node";
  let buckets = Array.make n [] in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.create: node out of range";
      if u = v then invalid_arg "Graph.create: self-loop";
      if not (w > 0.0 && Float.is_finite w) then invalid_arg "Graph.create: weight must be positive";
      buckets.(u) <- { dst = v; weight = w } :: buckets.(u))
    arcs;
  { n; adj = Array.map (fun l -> Array.of_list (List.rev l)) buckets }

let undirected n edges =
  let arcs = List.concat_map (fun (u, v, w) -> [ (u, v, w); (v, u, w) ]) edges in
  create n arcs

let size t = t.n
let out_edges t u = t.adj.(u)
let out_degree t u = Array.length t.adj.(u)

let max_out_degree t =
  Array.fold_left (fun acc row -> max acc (Array.length row)) 0 t.adj

let edge_count t = Array.fold_left (fun acc row -> acc + Array.length row) 0 t.adj

let hop t u k = t.adj.(u).(k).dst

let is_connected t =
  let n = t.n in
  if n = 0 then true
  else begin
    (* Symmetrize for weak connectivity. *)
    let nbrs = Array.make n [] in
    Array.iteri
      (fun u row ->
        Array.iter
          (fun e ->
            nbrs.(u) <- e.dst :: nbrs.(u);
            nbrs.(e.dst) <- u :: nbrs.(e.dst))
          row)
      t.adj;
    let seen = Array.make n false in
    let queue = Queue.create () in
    Queue.add 0 queue;
    seen.(0) <- true;
    let visited = ref 1 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            incr visited;
            Queue.add v queue
          end)
        nbrs.(u)
    done;
    !visited = n
  end
