type t = { graph : Graph.t; sssp : Dijkstra.sssp array; metric : Ron_metric.Metric.t }

let create g =
  if not (Graph.is_connected g) then invalid_arg "Sp_metric.create: graph must be connected";
  let sssp = Dijkstra.all_pairs g in
  let n = Graph.size g in
  (* On an undirected graph the two directions can differ in the last ulp
     (float additions in opposite order); canonicalize on the smaller
     endpoint so the metric is exactly symmetric. *)
  let symmetric_dist u v =
    if u <= v then sssp.(u).Dijkstra.dist.(v) else sssp.(v).Dijkstra.dist.(u)
  in
  let metric = Ron_metric.Metric.create ~name:"sp-metric" n symmetric_dist in
  { graph = g; sssp; metric }

let graph t = t.graph
let metric t = t.metric

let dist t u v =
  if u <= v then t.sssp.(u).Dijkstra.dist.(v) else t.sssp.(v).Dijkstra.dist.(u)

let first_hop_index t u v =
  if u = v then invalid_arg "Sp_metric.first_hop_index: u = v";
  t.sssp.(u).Dijkstra.first_hop.(v)

let next_toward t u v = Dijkstra.next_node t.graph t.sssp.(u) v

let path t u v =
  let rec go acc cur =
    if cur = v then List.rev (v :: acc)
    else go (cur :: acc) (next_toward t cur v)
  in
  go [] u
