(** Weighted graphs: the connectivity substrate for routing schemes.

    A routing scheme routes over the physical edges of a graph [G]; edge
    weights are delays. Edges out of a node are held in a fixed order — the
    paper's enumeration [phi_u] of outgoing links — so a first-hop pointer
    is just an index of [ceil(log2 Dout)] bits into this list. *)

type edge = { dst : int; weight : float }

type t

val create : int -> (int * int * float) list -> t
(** [create n arcs]: directed graph with arcs [(src, dst, weight)]; weights
    must be positive, self-loops rejected. Arc order per node is the order
    of the input list. *)

val undirected : int -> (int * int * float) list -> t
(** Adds both directions of every edge. *)

val size : t -> int
val out_edges : t -> int -> edge array
val out_degree : t -> int -> int
val max_out_degree : t -> int

val edge_count : t -> int
(** Number of arcs. *)

val hop : t -> int -> int -> int
(** [hop g u k]: destination of the [k]-th outgoing edge of [u]. *)

val is_connected : t -> bool
(** Weak connectivity via BFS over arcs in both directions. *)
