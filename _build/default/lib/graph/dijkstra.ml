type sssp = { source : int; dist : float array; first_hop : int array }

(* Binary min-heap keyed by (distance, first-hop index, node) so that the
   tie-break is deterministic. *)
module Heap = struct
  type entry = { d : float; fh : int; node : int }

  type t = { mutable a : entry array; mutable len : int }

  let create () = { a = Array.make 64 { d = 0.0; fh = 0; node = 0 }; len = 0 }

  let less x y = x.d < y.d || (x.d = y.d && (x.fh, x.node) < (y.fh, y.node))

  let swap h i j =
    let tmp = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- tmp

  let push h e =
    if h.len = Array.length h.a then begin
      let bigger = Array.make (2 * h.len) e in
      Array.blit h.a 0 bigger 0 h.len;
      h.a <- bigger
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && less h.a.(!i) h.a.((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.a.(0) <- h.a.(h.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.len && less h.a.(l) h.a.(!smallest) then smallest := l;
          if r < h.len && less h.a.(r) h.a.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            swap h !i !smallest;
            i := !smallest
          end
          else continue := false
        done
      end;
      Some top
    end
end

let run g source =
  let n = Graph.size g in
  let dist = Array.make n infinity in
  let first_hop = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(source) <- 0.0;
  Heap.push heap { d = 0.0; fh = -1; node = source };
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some e ->
      if not settled.(e.node) then begin
        settled.(e.node) <- true;
        dist.(e.node) <- e.d;
        first_hop.(e.node) <- e.fh;
        Array.iteri
          (fun k edge ->
            let v = edge.Graph.dst in
            if not settled.(v) then begin
              let nd = e.d +. edge.Graph.weight in
              let nfh = if e.node = source then k else e.fh in
              if nd < dist.(v) || (nd = dist.(v) && nfh < first_hop.(v)) then begin
                dist.(v) <- nd;
                first_hop.(v) <- nfh;
                Heap.push heap { d = nd; fh = nfh; node = v }
              end
            end)
          (Graph.out_edges g e.node)
      end;
      loop ()
  in
  loop ();
  first_hop.(source) <- -1;
  { source; dist; first_hop }

let all_pairs g = Array.init (Graph.size g) (fun s -> run g s)

let next_node g s v =
  if v = s.source then invalid_arg "Dijkstra.next_node: target is the source";
  let k = s.first_hop.(v) in
  if k < 0 then invalid_arg "Dijkstra.next_node: unreachable target";
  Graph.hop g s.source k
