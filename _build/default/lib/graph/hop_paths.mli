(** Near-shortest paths with few hops — the hypothesis of Theorem 4.2/B.1.

    Theorem B.1 assumes every node pair is connected by a (1+delta)-stretch
    path with at most [N_delta] hops, and the paper argues this is "a
    natural property of a good network topology". This module computes the
    quantity: a hop-bounded Bellman–Ford gives, per pair, the smallest hop
    count achievable without exceeding the stretch budget, so the
    assumption can be {e measured} on a topology instead of assumed. *)

val min_hops_within_stretch : Sp_metric.t -> src:int -> stretch:float -> int array
(** [min_hops_within_stretch sp ~src ~stretch]: for every target [v], the
    minimum number of hops of any [src -> v] path of length at most
    [stretch * d(src,v)]; [0] for the source itself. [stretch >= 1]. *)

val n_delta : Sp_metric.t -> stretch:float -> int
(** The topology-wide maximum: the paper's [N_delta]. *)
