(** Searchable small-world models on metrics (Definition 5.1).

    A model is a distribution over contact graphs (out-links chosen
    independently per node) together with a {e strongly local} routing
    algorithm: the next hop is chosen among the current node's contacts by
    looking only at distances to the contacts and from the contacts to the
    target. This module fixes the simulator and the two strongly local
    policies used in Theorem 5.2:

    - {b greedy}: move to the contact closest to the target (Kleinberg's
      rule);
    - {b sidestep} (Theorem 5.2b, step "star-star"): if some contact is within
      [d(u,t)/4] of the target, move greedily; otherwise move to the contact
      [v] {e farthest} from [u] subject to [d(u,v) <= d(u,t)] — jump out of
      the bad neighborhood without overshooting. To the paper's knowledge
      the first non-greedy strongly local routing rule. *)

type policy = Greedy | Sidestep

type result = {
  delivered : bool;
  hops : int;
  nongreedy_hops : int;  (** sidestep activations *)
  path : int list;
}

val route :
  Ron_metric.Indexed.t ->
  contacts:int array array ->
  policy:policy ->
  src:int ->
  dst:int ->
  max_hops:int ->
  result
(** Walks the contact graph. The policy sees only [d(u, c)] and [d(c, t)]
    for contacts [c] (strong locality); the current node is never a valid
    next hop. Fails (delivered = false) if a node has no usable contact or
    the hop budget runs out. *)

val out_degree_stats : int array array -> int * float
(** [(max, mean)] number of distinct contacts (excluding self). *)
