module Indexed = Ron_metric.Indexed
module Rng = Ron_util.Rng

type t = {
  idx : Indexed.t;
  x : int array array; (* x.(u).(v) = smallest ball cardinality containing both *)
  pi_cum : float array array; (* per u: cumulative pi_u over node ids *)
  contacts : int array array;
}

let compute_x idx =
  let n = Indexed.size idx in
  let x = Array.make_matrix n n max_int in
  for w = 0 to n - 1 do
    (* Walk w's sorted neighbor list; when v appears at rank k (0-based),
       the ball around w containing u and v has cardinality
       max(rank u, rank v) + 1. *)
    let rank = Array.make n 0 in
    for k = 0 to n - 1 do
      let (v, _) = Indexed.nth_neighbor idx w k in
      rank.(v) <- k
    done;
    for u = 0 to n - 1 do
      for v = u to n - 1 do
        let c = max rank.(u) rank.(v) + 1 in
        if c < x.(u).(v) then begin
          x.(u).(v) <- c;
          x.(v).(u) <- c
        end
      done
    done
  done;
  x

let build ?contacts_per_node idx rng =
  let n = Indexed.size idx in
  let logn = Indexed.log2_size idx in
  let k = match contacts_per_node with Some k -> k | None -> logn * logn in
  let x = compute_x idx in
  let pi_cum =
    Array.init n (fun u ->
        let c = Array.make n 0.0 in
        let acc = ref 0.0 in
        for v = 0 to n - 1 do
          if v <> u then acc := !acc +. (1.0 /. float_of_int x.(u).(v));
          c.(v) <- !acc
        done;
        c)
  in
  let contacts =
    Array.init n (fun u ->
        Array.init k (fun _ -> Rng.weighted_index rng pi_cum.(u)))
  in
  { idx; x; pi_cum; contacts }

let x_uv t u v = t.x.(u).(v)
let contacts t = t.contacts
let out_degree t = Sw_model.out_degree_stats t.contacts

let route t ~src ~dst ~max_hops =
  Sw_model.route t.idx ~contacts:t.contacts ~policy:Sw_model.Greedy ~src ~dst ~max_hops

let contact_probability t u v =
  if u = v then 0.0
  else begin
    let n = Indexed.size t.idx in
    let total = t.pi_cum.(u).(n - 1) in
    1.0 /. float_of_int t.x.(u).(v) /. total
  end
