(** Kleinberg's group-structure small world applied to metric balls
    (STRUCTURES, Section 5.2).

    For nodes [u, v] let [x_uv] be the smallest cardinality of a ball
    containing both. Each node draws [Theta(log^2 n)] contacts from the
    distribution [pi_u(v) ∝ 1/x_uv]; routing is greedy. Theorem 5.4 shows
    that on UL-constrained metrics the Theorem 5.2 models share all its
    characteristics: greedy routing, [Theta(log^2 n)] contacts,
    [Pr[v is a contact of u] = Theta(log n)/x_uv], O(log n)-hop queries.

    Computing [x_uv] exactly costs O(n^3); keep [n] modest. *)

type t

val build : ?contacts_per_node:int -> Ron_metric.Indexed.t -> Ron_util.Rng.t -> t
(** [contacts_per_node] defaults to [ceil(log2 n)^2]. *)

val x_uv : t -> int -> int -> int
(** The ball-cardinality "group size" of the pair. *)

val contacts : t -> int array array
val out_degree : t -> int * float
val route : t -> src:int -> dst:int -> max_hops:int -> Sw_model.result

val contact_probability : t -> int -> int -> float
(** The model's [pi_u(v)] (normalized), for the E-5.4 profile comparison. *)
