(** The Theorem 5.2(b) small-world model: out-degree
    [2^O(alpha) (log n)^2 sqrt(log Delta) (log log Delta)] — breaking the
    (log Delta) barrier of part (a) — with the non-greedy strongly local
    {e sidestep} routing rule, O(log n)-hop queries w.h.p.

    Contacts of [u] (with [x = sqrt(log2 Delta)], [rho_j = 2^((1+1/x)^j)]):
    - X-type: as in part (a);
    - pruned Y-type: for each cardinality scale [i] and each {e signed}
      offset [j] with [|j| <= (3x+3) log log Delta] and
      [r_(u,i+1) < r_ui 2^j < r_(u,i-1)], samples from [B_u(r_ui 2^j)]
      proportionally to the doubling measure — only the distance scales near
      the cardinality scales survive, which is where the sqrt saving comes
      from;
    - Z-type: one node per annulus [B_u(rho_j) \ B_u(rho_(j-1))] (uniform;
      or the closest node beyond the annulus when it is empty) — the escape
      hatches the sidestep rule jumps to. *)

type t

val build :
  ?c:int ->
  ?window_cap:int ->
  Ron_metric.Indexed.t ->
  Ron_metric.Measure.t ->
  Ron_util.Rng.t ->
  t
(** [window_cap] overrides the pruning cap on the signed offsets [j]
    (default: the paper's [(3x+3) log log Delta]). The default only
    truncates anything once [log Delta] is in the thousands — beyond float
    range — so the E-5.2b ablation passes smaller caps to exhibit the
    sqrt(log Delta) out-degree shape at feasible aspect ratios. *)

val contacts : t -> int array array
val out_degree : t -> int * float

val route : t -> src:int -> dst:int -> max_hops:int -> Sw_model.result
(** Sidestep routing; [result.nongreedy_hops] counts rule-(star-star) steps. *)

val z_contacts : t -> int -> int array
val y_contacts : t -> int -> int array
