module Indexed = Ron_metric.Indexed
module Measure = Ron_metric.Measure
module Doubling = Ron_metric.Doubling
module Rng = Ron_util.Rng

type t = {
  idx : Indexed.t;
  contacts : int array array;
  xc : int array array;
  yc : int array array;
}

let sample_uniform_ball idx rng u k samples =
  let radius = Indexed.radius_for_count idx u k in
  let ball = Indexed.ball idx u radius in
  Array.init samples (fun _ -> Rng.pick rng ball)

let sample_measure_ball idx cum rng u radius samples =
  let count = Indexed.ball_count idx u radius in
  if count <= 0 then [||]
  else begin
    let prefix = Array.sub cum 0 count in
    if prefix.(count - 1) <= 0.0 then [||]
    else
      Array.init samples (fun _ ->
          let k = Rng.weighted_index rng prefix in
          fst (Indexed.nth_neighbor idx u k))
  end

let x_contacts_of idx rng ~samples u =
  let n = Indexed.size idx in
  let li = Indexed.log2_size idx + 1 in
  let acc = ref [] in
  for i = 0 to li - 1 do
    let p = if i >= 62 then max_int else 1 lsl i in
    let k = if p >= n then 1 else (n + p - 1) / p in
    Array.iter (fun v -> acc := v :: !acc) (sample_uniform_ball idx rng u k samples)
  done;
  Array.of_list !acc

let build ?(c = 3) idx mu rng =
  if Indexed.size idx >= 2 && Indexed.min_distance idx < 1.0 then
    invalid_arg "Doubling_a.build: metric must be normalized";
  let n = Indexed.size idx in
  let logn = Indexed.log2_size idx in
  let jmax = Indexed.log2_aspect_ratio idx in
  let alpha = Doubling.dimension_estimate idx (Rng.split rng) in
  let x_samples = c * logn in
  let y_samples = max 1 (int_of_float (2.0 *. float_of_int c *. alpha *. float_of_int logn)) in
  let xc = Array.init n (fun u -> x_contacts_of idx rng ~samples:x_samples u) in
  let yc =
    Array.init n (fun u ->
        let cum = Measure.cumulative_by_distance mu idx u in
        let acc = ref [] in
        for j = 0 to jmax do
          Array.iter
            (fun v -> acc := v :: !acc)
            (sample_measure_ball idx cum rng u (Ron_util.Bits.pow2 j) y_samples)
        done;
        Array.of_list !acc)
  in
  let contacts = Array.init n (fun u -> Array.append xc.(u) yc.(u)) in
  { idx; contacts; xc; yc }

let contacts t = t.contacts
let out_degree t = Sw_model.out_degree_stats t.contacts
let x_contacts t u = Array.copy t.xc.(u)
let y_contacts t u = Array.copy t.yc.(u)

let route t ~src ~dst ~max_hops =
  Sw_model.route t.idx ~contacts:t.contacts ~policy:Sw_model.Greedy ~src ~dst ~max_hops
