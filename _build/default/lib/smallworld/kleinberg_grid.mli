(** Kleinberg's original 2-D small world [30]: the baseline the paper
    generalizes.

    Nodes form a [k x k] torus with 4 local neighbors each; every node draws
    [q] long-range contacts with [Pr[v] ∝ d(u,v)^(-2)] (the inverse-square
    law, the unique searchable exponent in 2D). Greedy routing on the
    Manhattan torus distance finds targets in [O(log^2 n)] expected hops. *)

type t

val build : ?q:int -> side:int -> Ron_util.Rng.t -> t
(** [side >= 3]; [q] long-range contacts per node (default 1). *)

val size : t -> int
val dist : t -> int -> int -> int
(** Torus Manhattan distance. *)

val route : t -> src:int -> dst:int -> max_hops:int -> Sw_model.result
val contacts : t -> int array array
