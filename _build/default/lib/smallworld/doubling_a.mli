(** The Theorem 5.2(a) small-world model: out-degree
    [2^O(alpha) (log n)(log Delta)], greedy routing, O(log n)-hop queries
    w.h.p. — even when the aspect ratio is exponential in [n].

    Contacts of [u]:
    - X-type: for each cardinality scale [i in [log n]], [c log n] nodes
      sampled uniformly from [B_ui], the smallest ball around [u] with at
      least [n/2^i] nodes;
    - Y-type: for each distance scale [j in [log Delta]], [c_y log n] nodes
      sampled from [B_u(2^j)] proportionally to a doubling measure (which
      oversamples nodes in sparse regions — the reason greedy can cross
      sparse annuli in O(1) hops, the proof's property star). *)

type t

val build :
  ?c:int ->
  Ron_metric.Indexed.t ->
  Ron_metric.Measure.t ->
  Ron_util.Rng.t ->
  t
(** [c] (default 3) scales the per-ring sample counts ([c log n] for X,
    [2 c alpha' log n] for Y with [alpha'] the estimated dimension, as in
    the theorem). Requires a normalized metric. *)

val contacts : t -> int array array
val out_degree : t -> int * float
(** [(max, mean)] distinct contacts. *)

val route : t -> src:int -> dst:int -> max_hops:int -> Sw_model.result
(** Greedy routing. *)

val x_contacts : t -> int -> int array
val y_contacts : t -> int -> int array

val x_contacts_of :
  Ron_metric.Indexed.t -> Ron_util.Rng.t -> samples:int -> int -> int array
(** The shared X-type sampler ([samples] uniform draws from each ball
    [B_ui]); also used by Theorem 5.2(b). *)
