(** The single-long-range-contact model (Theorem 5.5): Kleinberg's original
    setting generalized to graphs with doubling shortest-path metrics.

    Given a connected graph [G] of local contacts, every node receives
    {e exactly one} long-range contact: pick a scale [j] uniformly from
    [[log Delta]], then sample from [B_u(2^j)] proportionally to a doubling
    measure. Greedy routing (over local + long contacts, distances in
    [d_G]) completes every query in [2^O(alpha) log^2 Delta] hops w.h.p.:
    local edges always make progress, and each halving of the distance
    waits ~[2^O(alpha) log Delta] hops for a lucky long link. *)

type t

val build : Ron_graph.Sp_metric.t -> Ron_metric.Measure.t -> Ron_util.Rng.t -> t
(** The measure must be over the graph's (normalized) shortest-path
    metric — build it from [Indexed.create (Metric.normalize (Sp_metric.metric g))]'s
    hierarchy; [build] re-derives the same index internally. *)

val long_contact : t -> int -> int
(** The one long-range contact of [u]. *)

val route : t -> src:int -> dst:int -> max_hops:int -> Sw_model.result
(** Greedy over local graph neighbors plus the long contact. *)

val contacts : t -> int array array
