module Indexed = Ron_metric.Indexed
module Metric = Ron_metric.Metric
module Measure = Ron_metric.Measure
module Sp_metric = Ron_graph.Sp_metric
module Graph = Ron_graph.Graph
module Rng = Ron_util.Rng

type t = { idx : Indexed.t; contacts : int array array; long : int array }

let build sp mu rng =
  let idx = Indexed.create (Metric.normalize (Sp_metric.metric sp)) in
  let g = Sp_metric.graph sp in
  let n = Indexed.size idx in
  let jmax = Indexed.log2_aspect_ratio idx in
  let long =
    Array.init n (fun u ->
        let j = Rng.int rng (jmax + 1) in
        let radius = Ron_util.Bits.pow2 j in
        let count = Indexed.ball_count idx u radius in
        let cum = Measure.cumulative_by_distance mu idx u in
        if count <= 0 || cum.(count - 1) <= 0.0 then u
        else begin
          let prefix = Array.sub cum 0 count in
          let k = Rng.weighted_index rng prefix in
          fst (Indexed.nth_neighbor idx u k)
        end)
  in
  let contacts =
    Array.init n (fun u ->
        let locals = Array.map (fun e -> e.Graph.dst) (Graph.out_edges g u) in
        Array.append locals [| long.(u) |])
  in
  { idx; contacts; long }

let long_contact t u = t.long.(u)
let contacts t = t.contacts

let route t ~src ~dst ~max_hops =
  Sw_model.route t.idx ~contacts:t.contacts ~policy:Sw_model.Greedy ~src ~dst ~max_hops
