module Indexed = Ron_metric.Indexed

type policy = Greedy | Sidestep

type result = { delivered : bool; hops : int; nongreedy_hops : int; path : int list }

(* Greedy choice: contact minimizing d(c, t); ties broken by node id so runs
   are reproducible. Returns None when u has no contact other than itself. *)
let greedy_choice idx contacts u t =
  let best = ref (-1) and best_d = ref infinity in
  Array.iter
    (fun c ->
      if c <> u then begin
        let d = Indexed.dist idx c t in
        if d < !best_d || (d = !best_d && (!best < 0 || c < !best)) then begin
          best := c;
          best_d := d
        end
      end)
    contacts;
  if !best < 0 then None else Some (!best, !best_d)

(* Sidestep choice (Theorem 5.2b, rule star-star). *)
let sidestep_choice idx contacts u t =
  let dut = Indexed.dist idx u t in
  match greedy_choice idx contacts u t with
  | None -> None
  | Some (g, gd) ->
    if gd <= dut /. 4.0 then Some (g, false)
    else begin
      (* Farthest contact v from u subject to d(u,v) <= d(u,t). *)
      let best = ref (-1) and best_d = ref neg_infinity in
      Array.iter
        (fun c ->
          if c <> u then begin
            let d = Indexed.dist idx u c in
            if d <= dut && (d > !best_d || (d = !best_d && (!best < 0 || c < !best))) then begin
              best := c;
              best_d := d
            end
          end)
        contacts;
      if !best >= 0 then Some (!best, true) else Some (g, false)
    end

let route idx ~contacts ~policy ~src ~dst ~max_hops =
  let rec go u hops nongreedy acc =
    if u = dst then
      { delivered = true; hops; nongreedy_hops = nongreedy; path = List.rev acc }
    else if hops >= max_hops then
      { delivered = false; hops; nongreedy_hops = nongreedy; path = List.rev acc }
    else begin
      let choice =
        match policy with
        | Greedy -> (
          match greedy_choice idx contacts.(u) u dst with
          | None -> None
          | Some (v, _) -> Some (v, false))
        | Sidestep -> sidestep_choice idx contacts.(u) u dst
      in
      match choice with
      | None -> { delivered = false; hops; nongreedy_hops = nongreedy; path = List.rev acc }
      | Some (v, was_nongreedy) ->
        go v (hops + 1) (if was_nongreedy then nongreedy + 1 else nongreedy) (v :: acc)
    end
  in
  go src 0 0 [ src ]

let out_degree_stats contacts =
  let n = Array.length contacts in
  let maxd = ref 0 and sum = ref 0 in
  Array.iteri
    (fun u cs ->
      let tbl = Hashtbl.create 16 in
      Array.iter (fun c -> if c <> u then Hashtbl.replace tbl c ()) cs;
      let d = Hashtbl.length tbl in
      maxd := max !maxd d;
      sum := !sum + d)
    contacts;
  (!maxd, float_of_int !sum /. float_of_int (max 1 n))
