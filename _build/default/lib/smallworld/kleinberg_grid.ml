module Rng = Ron_util.Rng

type t = { side : int; contacts : int array array; metric_idx : Ron_metric.Indexed.t }

let torus_dist side u v =
  let ux = u mod side and uy = u / side in
  let vx = v mod side and vy = v / side in
  let dx = abs (ux - vx) and dy = abs (uy - vy) in
  min dx (side - dx) + min dy (side - dy)

let build ?(q = 1) ~side rng =
  if side < 3 then invalid_arg "Kleinberg_grid.build: side must be >= 3";
  let n = side * side in
  let dist u v = torus_dist side u v in
  (* Inverse-square long-range distribution per node. *)
  let contacts =
    Array.init n (fun u ->
        let ux = u mod side and uy = u / side in
        let locals =
          [|
            (uy * side) + ((ux + 1) mod side);
            (uy * side) + ((ux + side - 1) mod side);
            (((uy + 1) mod side) * side) + ux;
            (((uy + side - 1) mod side) * side) + ux;
          |]
        in
        let cum = Array.make n 0.0 in
        let acc = ref 0.0 in
        for v = 0 to n - 1 do
          if v <> u then begin
            let d = float_of_int (dist u v) in
            acc := !acc +. (1.0 /. (d *. d))
          end;
          cum.(v) <- !acc
        done;
        let longs = Array.init q (fun _ -> Rng.weighted_index rng cum) in
        Array.append locals longs)
  in
  let metric =
    Ron_metric.Metric.create ~name:(Printf.sprintf "torus-%d" side) n (fun u v ->
        float_of_int (dist u v))
  in
  { side; contacts; metric_idx = Ron_metric.Indexed.create metric }

let size t = t.side * t.side
let dist t u v = torus_dist t.side u v
let contacts t = t.contacts

let route t ~src ~dst ~max_hops =
  Sw_model.route t.metric_idx ~contacts:t.contacts ~policy:Sw_model.Greedy ~src ~dst ~max_hops
