module Indexed = Ron_metric.Indexed
module Measure = Ron_metric.Measure
module Doubling = Ron_metric.Doubling
module Bits = Ron_util.Bits
module Rng = Ron_util.Rng

type t = {
  idx : Indexed.t;
  contacts : int array array;
  yc : int array array;
  zc : int array array;
}

let build ?(c = 3) ?window_cap idx mu rng =
  if Indexed.size idx >= 2 && Indexed.min_distance idx < 1.0 then
    invalid_arg "Doubling_b.build: metric must be normalized";
  let n = Indexed.size idx in
  let logn = Indexed.log2_size idx in
  let log_delta = Float.max 2.0 (Bits.flog2 (Float.max 2.0 (Indexed.aspect_ratio idx))) in
  let x = sqrt log_delta in
  let alpha = Doubling.dimension_estimate idx (Rng.split rng) in
  let x_samples = c * logn in
  let y_samples = max 1 (int_of_float (2.0 *. float_of_int c *. alpha *. float_of_int logn)) in
  let li = Indexed.log2_size idx + 1 in
  let jcap =
    match window_cap with
    | Some k -> max 0 k
    | None ->
      int_of_float (Float.ceil (((3.0 *. x) +. 3.0) *. Float.max 1.0 (Bits.flog2 log_delta)))
  in
  let delta_diam = Indexed.diameter idx in
  let xc = Array.init n (fun u -> Doubling_a.x_contacts_of idx rng ~samples:x_samples u) in
  (* Pruned Y-type. *)
  let yc =
    Array.init n (fun u ->
        let cum = Measure.cumulative_by_distance mu idx u in
        let acc = ref [] in
        for i = 0 to li - 1 do
          let r_prev = Indexed.r_level idx u (i - 1) in
          let r_ui = Indexed.r_level idx u i in
          let r_next = if i + 1 <= li - 1 then Indexed.r_level idx u (i + 1) else 0.0 in
          if r_ui > 0.0 then
            for j = -jcap to jcap do
              let radius = r_ui *. (2.0 ** Float.of_int j) in
              if radius > r_next && radius < r_prev then begin
                let count = Indexed.ball_count idx u radius in
                if count > 0 && cum.(count - 1) > 0.0 then begin
                  let prefix = Array.sub cum 0 count in
                  for _ = 1 to y_samples do
                    let k = Rng.weighted_index rng prefix in
                    acc := fst (Indexed.nth_neighbor idx u k) :: !acc
                  done
                end
              end
            done
        done;
        Array.of_list !acc)
  in
  (* Z-type: annuli with super-geometric radii rho_j = 2^((1+1/x)^j). *)
  let zc =
    Array.init n (fun u ->
        let acc = ref [] in
        let j = ref 0 in
        let continue = ref true in
        while !continue do
          incr j;
          let expo_hi = (1.0 +. (1.0 /. x)) ** Float.of_int !j in
          let rho_hi = 2.0 ** expo_hi in
          if rho_hi > delta_diam *. 2.0 || !j > 10_000 then continue := false
          else begin
            let expo_lo = (1.0 +. (1.0 /. x)) ** Float.of_int (!j - 1) in
            let rho_lo = 2.0 ** expo_lo in
            let annulus = Indexed.annulus idx u rho_lo rho_hi in
            if Array.length annulus > 0 then acc := Rng.pick rng annulus :: !acc
            else begin
              (* Closest node outside B_u(rho_hi), if any. *)
              let k = Indexed.ball_count idx u rho_hi in
              if k < n then acc := fst (Indexed.nth_neighbor idx u k) :: !acc
            end
          end
        done;
        Array.of_list !acc)
  in
  let contacts = Array.init n (fun u -> Array.concat [ xc.(u); yc.(u); zc.(u) ]) in
  { idx; contacts; yc; zc }

let contacts t = t.contacts
let out_degree t = Sw_model.out_degree_stats t.contacts
let z_contacts t u = Array.copy t.zc.(u)
let y_contacts t u = Array.copy t.yc.(u)

let route t ~src ~dst ~max_hops =
  Sw_model.route t.idx ~contacts:t.contacts ~policy:Sw_model.Sidestep ~src ~dst ~max_hops
