lib/smallworld/structures.mli: Ron_metric Ron_util Sw_model
