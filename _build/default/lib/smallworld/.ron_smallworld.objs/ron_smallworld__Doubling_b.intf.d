lib/smallworld/doubling_b.mli: Ron_metric Ron_util Sw_model
