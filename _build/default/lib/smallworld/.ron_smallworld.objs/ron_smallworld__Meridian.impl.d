lib/smallworld/meridian.ml: Array Float Hashtbl List Queue Ron_metric Ron_util
