lib/smallworld/doubling_b.ml: Array Doubling_a Float Ron_metric Ron_util Sw_model
