lib/smallworld/single_link.ml: Array Ron_graph Ron_metric Ron_util Sw_model
