lib/smallworld/kleinberg_grid.mli: Ron_util Sw_model
