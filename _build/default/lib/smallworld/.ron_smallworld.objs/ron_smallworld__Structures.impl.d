lib/smallworld/structures.ml: Array Ron_metric Ron_util Sw_model
