lib/smallworld/kleinberg_grid.ml: Array Printf Ron_metric Ron_util Sw_model
