lib/smallworld/single_link.mli: Ron_graph Ron_metric Ron_util Sw_model
