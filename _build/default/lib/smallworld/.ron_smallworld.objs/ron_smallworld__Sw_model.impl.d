lib/smallworld/sw_model.ml: Array Hashtbl List Ron_metric
