lib/smallworld/sw_model.mli: Ron_metric
