lib/smallworld/doubling_a.mli: Ron_metric Ron_util Sw_model
