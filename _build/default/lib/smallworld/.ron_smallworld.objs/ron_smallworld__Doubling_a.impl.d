lib/smallworld/doubling_a.ml: Array Ron_metric Ron_util Sw_model
