lib/smallworld/meridian.mli: Ron_metric Ron_util
