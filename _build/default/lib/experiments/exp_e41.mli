(** Experiment E-4.1 — Theorem 4.1: packet headers freed from (log Delta).

    At (near-)fixed n with geometrically growing aspect ratio, Theorem
    2.1's header grows linearly in log Delta (one ring index per distance
    scale) while Theorem 4.1's header — a Theorem 3.4 distance label —
    grows like log log Delta. Verifies delivery and stretch for both. *)

val run : unit -> unit
