(** Experiment FIG1 — Figure 1: the flow of ideas between the results,
    verified as actual code dependencies: Theorem 3.2's structures feed
    Theorem 3.4; Theorem 4.1 consumes Theorem 3.4 as a black box; Theorems
    2.1 and 3.4 share the rings/zooming/enumeration core. Prints the
    dependency ledger with a live smoke test of each edge. *)

val run : unit -> unit
