module C = Exp_common
module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Metric = Ron_metric.Metric
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
module Doubling_a = Ron_smallworld.Doubling_a
module Doubling_b = Ron_smallworld.Doubling_b
module Structures = Ron_smallworld.Structures
module Sw_model = Ron_smallworld.Sw_model

let run () =
  C.section "E-5.4" "Theorem 5.4: on UL-constrained metrics our models match STRUCTURES";
  let rng = Rng.create 54 in
  let idx = Indexed.create (Metric.normalize (Generators.ring 128)) in
  let n = Indexed.size idx in
  let mu = Measure.create idx (Net.Hierarchy.create idx) in

  let a = Doubling_a.build ~c:1 idx mu (Rng.split rng) in
  let b = Doubling_b.build ~c:1 idx mu (Rng.split rng) in
  let s = Structures.build idx (Rng.split rng) in

  C.subsection "shared characteristics (ring metric, n = 128)";
  C.header
    [
      C.cell ~w:12 "model"; C.cell ~w:10 "deg mean"; C.cell ~w:10 "hops max";
      C.cell ~w:11 "hops mean"; C.cell ~w:10 "nongreedy"; C.cell ~w:6 "fails";
    ];
  let test name route =
    let hmax = ref 0 and hsum = ref 0 and fails = ref 0 and ng = ref 0 and ok = ref 0 in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v then begin
          let r = route u v in
          if r.Sw_model.delivered then begin
            incr ok;
            hmax := max !hmax r.Sw_model.hops;
            hsum := !hsum + r.Sw_model.hops;
            ng := !ng + r.Sw_model.nongreedy_hops
          end
          else incr fails
        end
      done
    done;
    (name, !hmax, float_of_int !hsum /. float_of_int (max 1 !ok), !ng, !fails)
  in
  let print_row (name, deg) (label, hmax, hmean, ng, fails) =
    ignore name;
    C.row
      [
        C.cell ~w:12 label; C.cell_float ~w:10 ~prec:1 deg; C.cell_int ~w:10 hmax;
        C.cell_float ~w:11 ~prec:2 hmean; C.cell_int ~w:10 ng; C.cell_int ~w:6 fails;
      ]
  in
  print_row ("a", snd (Doubling_a.out_degree a))
    (test "thm5.2a" (fun u v -> Doubling_a.route a ~src:u ~dst:v ~max_hops:100));
  print_row ("b", snd (Doubling_b.out_degree b))
    (test "thm5.2b" (fun u v -> Doubling_b.route b ~src:u ~dst:v ~max_hops:100));
  print_row ("s", snd (Structures.out_degree s))
    (test "STRUCTURES" (fun u v -> Structures.route s ~src:u ~dst:v ~max_hops:100));
  C.note "Theorem 5.4(b): the 5.2b router's nongreedy column must be 0 on a";
  C.note "UL-constrained metric — the Z contacts are never used.";

  C.subsection "contact-probability profile: Pr[v contact of u] * x_uv should be ~flat";
  (* For STRUCTURES this is exact by construction; for the 5.2 models we
     measure the empirical contact frequency over re-samples. *)
  let u = 17 in
  let trials = 300 in
  let counts = Array.make n 0 in
  for t = 1 to trials do
    let a = Doubling_a.build ~c:1 idx mu (Rng.create (1000 + t)) in
    let seen = Hashtbl.create 64 in
    Array.iter (fun v -> Hashtbl.replace seen v ()) (Doubling_a.contacts a).(u);
    Hashtbl.iter (fun v () -> if v <> u then counts.(v) <- counts.(v) + 1) seen
  done;
  C.header
    [
      C.cell ~w:14 "ring distance"; C.cell ~w:8 "x_uv"; C.cell ~w:16 "Pr[contact] (emp)";
      C.cell ~w:18 "Pr * x_uv / log n";
    ];
  let logn = float_of_int (Indexed.log2_size idx) in
  List.iter
    (fun offset ->
      let v = (u + offset) mod n in
      let p = float_of_int counts.(v) /. float_of_int trials in
      let x = Structures.x_uv s u v in
      C.row
        [
          C.cell_int ~w:14 offset; C.cell_int ~w:8 x; C.cell_float ~w:16 p;
          C.cell_float ~w:18 (p *. float_of_int x /. logn);
        ])
    [ 1; 2; 4; 8; 16; 32; 64 ];
  C.note "Theorem 5.4(d): Pr[v is a contact of u] = Theta(log n)/x_uv — the last";
  C.note "column should stay within a constant band across two decades of x_uv."
