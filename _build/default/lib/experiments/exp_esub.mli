(** Experiment E-SUB — substrate validation: the quantitative content of
    Lemma 1.1 (greedy covers), Lemma 1.2 (aspect-ratio lower bound),
    Lemma 1.4 (net points in balls), Theorem 1.3 (doubling measures) and
    Lemma 3.1/A.1 ((eps,mu)-packings), measured on the generator zoo. *)

val run : unit -> unit
