module C = Exp_common
module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Graph = Ron_graph.Graph
module Sp_metric = Ron_graph.Sp_metric
module Basic = Ron_routing.Basic
module Labelled = Ron_routing.Labelled

(* A path graph whose shortest-path metric is the exponential-clusters
   metric: clusters of [per] unit-spaced nodes, consecutive clusters
   [base^i] apart. *)
let cluster_path_graph ~clusters ~per ~base =
  let n = clusters * per in
  let edges = ref [] in
  for i = 0 to n - 2 do
    let w =
      if (i + 1) mod per = 0 then base ** Float.of_int ((i / per) + 1)
      else 1.0
    in
    edges := (i, i + 1, w) :: !edges
  done;
  Ron_graph.Graph.undirected n !edges

let run () =
  C.section "E-4.1" "Theorem 4.1: header bits vs log Delta (vs Theorem 2.1)";
  let delta = 0.25 in
  let rng = Rng.create 41 in
  C.header
    [
      C.cell ~w:8 "base"; C.cell ~w:9 "log2(D)"; C.cell ~w:14 "hdr thm2.1";
      C.cell ~w:14 "hdr thm4.1"; C.cell ~w:12 "s2.1/fails"; C.cell ~w:12 "s4.1/fails";
    ];
  List.iter
    (fun base ->
      let g = cluster_path_graph ~clusters:10 ~per:4 ~base in
      let sp = Sp_metric.create g in
      let n = Graph.size g in
      let idx = Indexed.create (Sp_metric.metric sp) in
      let b = Basic.build sp ~delta in
      let l = Labelled.build sp ~delta in
      let pairs = C.sample_pairs (Rng.split rng) ~n ~count:500 in
      let dist u v = Sp_metric.dist sp u v in
      let qb = C.collect_routes ~route:(fun u v -> Basic.route b ~src:u ~dst:v) ~dist pairs in
      let ql = C.collect_routes ~route:(fun u v -> Labelled.route l ~src:u ~dst:v) ~dist pairs in
      C.row
        [
          C.cell_float ~w:8 ~prec:0 base;
          C.cell_int ~w:9 (Indexed.log2_aspect_ratio idx);
          C.cell_int ~w:14 (Basic.header_bits b);
          C.cell_int ~w:14 (Labelled.header_bits l);
          C.cell ~w:12 (Printf.sprintf "%.2f/%d" qb.C.stretch_max qb.C.failures);
          C.cell ~w:12 (Printf.sprintf "%.2f/%d" ql.C.stretch_max ql.C.failures);
        ])
    [ 4.0; 32.0; 256.0; 4096.0; 1048576.0 ];
  C.note "Thm 2.1's header column grows linearly with log2(Delta); Thm 4.1's is";
  C.note "near-flat (a Thm 3.4 label + one global id), which is exactly the";
  C.note "improvement Table 1 row 4 claims. Both deliver everything within";
  C.note "stretch 1+O(delta)."
