(** Experiment T2 — Table 2: (1+delta)-stretch routing schemes on doubling
    metrics (Section 4.1). The scheme chooses its own overlay; measures
    out-degree, table bits (translation functions), label/header bits and
    stretch for the Theorem 2.1 metric scheme across metric families. *)

val run : unit -> unit
