(** Experiment E-5.4 — Theorem 5.4: on UL-constrained metrics the Theorem
    5.2 models coincide with Kleinberg's STRUCTURES group-structure model:
    greedy-only routing (Z contacts never used), Theta(log^2 n) contacts,
    contact probability Theta(log n)/x_uv, O(log n)-hop queries. *)

val run : unit -> unit
