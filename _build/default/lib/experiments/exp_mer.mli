(** Experiment MER — the practical side of "object location": Meridian-style
    closest-node discovery over rings of neighbors (Section 6, [57]).

    Measures exact-hit rate, approximation ratio, hop counts and probe
    counts of closest-node queries against held-out targets, as the ring
    cardinality grows; then repeats queries under membership churn
    (join/leave) to validate the ring maintenance. *)

val run : unit -> unit
