lib/experiments/exp_e41.mli:
