lib/experiments/exp_mer.ml: Array Exp_common Float Fun List Printf Ron_metric Ron_smallworld Ron_util
