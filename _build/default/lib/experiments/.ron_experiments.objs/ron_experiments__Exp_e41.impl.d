lib/experiments/exp_e41.ml: Exp_common Float List Printf Ron_graph Ron_metric Ron_routing Ron_util
