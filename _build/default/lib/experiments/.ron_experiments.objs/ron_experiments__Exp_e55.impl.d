lib/experiments/exp_e55.ml: Exp_common List Printf Ron_graph Ron_metric Ron_smallworld Ron_util
