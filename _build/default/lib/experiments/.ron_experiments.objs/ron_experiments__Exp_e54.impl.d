lib/experiments/exp_e54.ml: Array Exp_common Hashtbl List Ron_metric Ron_smallworld Ron_util
