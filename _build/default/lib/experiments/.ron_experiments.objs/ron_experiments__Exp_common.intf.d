lib/experiments/exp_common.mli: Ron_routing Ron_util
