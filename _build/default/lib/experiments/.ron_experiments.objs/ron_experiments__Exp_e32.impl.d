lib/experiments/exp_e32.ml: Exp_common Float Hashtbl List Printf Ron_labeling Ron_metric Ron_util
