lib/experiments/exp_e54.mli:
