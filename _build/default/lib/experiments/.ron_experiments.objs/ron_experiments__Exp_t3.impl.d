lib/experiments/exp_t3.ml: Array Exp_common List Ron_graph Ron_metric Ron_routing Ron_util
