lib/experiments/exp_e21.mli:
