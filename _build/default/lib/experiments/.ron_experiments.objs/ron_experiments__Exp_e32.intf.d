lib/experiments/exp_e32.mli:
