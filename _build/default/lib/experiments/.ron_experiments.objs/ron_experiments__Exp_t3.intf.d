lib/experiments/exp_t3.mli:
