lib/experiments/exp_e34.ml: Array Exp_common Float List Ron_labeling Ron_metric Ron_util
