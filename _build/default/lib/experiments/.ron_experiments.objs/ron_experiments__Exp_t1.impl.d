lib/experiments/exp_t1.ml: Array Exp_common List Printf Ron_graph Ron_metric Ron_routing Ron_util
