lib/experiments/exp_mer.mli:
