lib/experiments/exp_esub.ml: Exp_common List Printf Ron_metric Ron_util
