lib/experiments/exp_e52.ml: Exp_common List Printf Ron_metric Ron_smallworld Ron_util
