lib/experiments/exp_common.ml: Float List Printf Ron_routing Ron_util String
