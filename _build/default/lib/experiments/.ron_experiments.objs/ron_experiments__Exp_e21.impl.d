lib/experiments/exp_e21.ml: Exp_common List Ron_graph Ron_routing Ron_util
