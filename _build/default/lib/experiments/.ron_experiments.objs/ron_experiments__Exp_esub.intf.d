lib/experiments/exp_esub.mli:
