lib/experiments/exp_t1.mli:
