lib/experiments/exp_t2.ml: Array Exp_common List Ron_metric Ron_routing Ron_util
