lib/experiments/exp_fig1.ml: Exp_common Ron_graph Ron_labeling Ron_metric Ron_routing Ron_util
