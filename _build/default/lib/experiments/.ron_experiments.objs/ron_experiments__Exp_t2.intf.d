lib/experiments/exp_t2.mli:
