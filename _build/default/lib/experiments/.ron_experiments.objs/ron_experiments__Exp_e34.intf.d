lib/experiments/exp_e34.mli:
