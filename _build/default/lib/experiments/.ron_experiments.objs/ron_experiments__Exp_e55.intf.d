lib/experiments/exp_e55.mli:
