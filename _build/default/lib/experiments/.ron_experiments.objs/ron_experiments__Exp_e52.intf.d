lib/experiments/exp_e52.mli:
