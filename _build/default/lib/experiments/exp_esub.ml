module C = Exp_common
module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Metric = Ron_metric.Metric
module Doubling = Ron_metric.Doubling
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
module Packing = Ron_metric.Packing

let run () =
  C.section "E-SUB" "Substrate: Lemmas 1.1-1.4, Theorem 1.3, Lemma 3.1/A.1";
  let rng = Rng.create 99 in
  C.header
    [
      C.cell ~w:14 "metric"; C.cell ~w:6 "n"; C.cell ~w:9 "log2(D)"; C.cell ~w:8 "alpha^";
      C.cell ~w:10 "mu-dbl"; C.cell ~w:12 "net-in-ball"; C.cell ~w:12 "pack 6r ok";
      C.cell ~w:10 "lemma1.2";
    ];
  let families =
    [
      ("grid10x10", Generators.grid2d 10 10);
      ("cloud200", Generators.random_cloud (Rng.split rng) ~n:200 ~dim:2);
      ("cloud150d4", Generators.random_cloud (Rng.split rng) ~n:150 ~dim:4);
      ("expline32", Generators.exponential_line 32);
      ("expclust", Generators.exponential_clusters (Rng.split rng) ~clusters:12 ~per_cluster:12 ~base:32.0);
      ("ring120", Metric.normalize (Generators.ring 120));
      ("latency200",
       Generators.clustered_latency (Rng.split rng) ~clusters:5 ~per_cluster:40 ~spread:25.0
         ~access:6.0);
    ]
  in
  List.iter
    (fun (name, m) ->
      let idx = Indexed.create m in
      let n = Indexed.size idx in
      let alpha = Doubling.dimension_estimate idx (Rng.split rng) in
      let hier = Net.Hierarchy.create idx in
      let mu = Measure.create idx hier in
      let s = Measure.doubling_constant_estimate mu idx (Rng.split rng) in
      (* Lemma 1.4: worst ratio (count of 2^j-net points in B_u(4*2^j)) vs
         the bound 16^alpha. *)
      let worst_net = ref 0 in
      let local = Rng.split rng in
      for _ = 1 to 100 do
        let u = Rng.int local n in
        let j = Rng.int local (Net.Hierarchy.jmax hier + 1) in
        let r = Net.Hierarchy.radius hier j in
        let count = ref 0 in
        Indexed.ball_iter idx u (4.0 *. r) (fun v _ ->
            if Net.Hierarchy.mem hier j v then incr count);
        worst_net := max !worst_net !count
      done;
      (* Lemma A.1 guarantee. *)
      let pack_ok = ref true in
      List.iter
        (fun i ->
          let eps = 1.0 /. Ron_util.Bits.pow2 i in
          let p = Packing.create idx ~eps in
          for u = 0 to n - 1 do
            let b = Packing.covering_ball p idx u in
            if
              Indexed.dist idx u b.Packing.center +. b.Packing.radius
              > (6.0 *. Indexed.r_eps idx u eps) +. 1e-9
            then pack_ok := false
          done)
        [ 1; 3; 5 ];
      C.row
        [
          C.cell ~w:14 name; C.cell_int ~w:6 n; C.cell_int ~w:9 (Indexed.log2_aspect_ratio idx);
          C.cell_float ~w:8 ~prec:1 alpha; C.cell_float ~w:10 ~prec:1 s;
          C.cell ~w:12 (Printf.sprintf "%d<=%.0f" !worst_net (16.0 ** alpha));
          C.cell ~w:12 (if !pack_ok then "yes" else "VIOLATED");
          C.cell ~w:10 (if Doubling.lemma_1_2_lower_bound idx ~alpha then "holds" else "FAILS");
        ])
    families;
  C.note "alpha^ = empirical doubling dimension; mu-dbl = measured doubling constant";
  C.note "of the Theorem 1.3 measure (bounded by 2^O(alpha)); net-in-ball checks the";
  C.note "Lemma 1.4 cap (4r'/r)^alpha with r' = 4r; pack column checks Lemma A.1's";
  C.note "d(u,h_B)+r <= 6 r_u(eps) for every node at three scales."
