(** Experiment E-2.1 — Theorem 2.1's guarantee: every packet is delivered
    along a path of stretch 1 + O(delta). Sweeps delta and verifies the
    measured worst-case stretch against the proof's (1+delta)/(1-delta)
    bound, plus the K = (16/delta)^alpha ring-size cap (Lemma 1.4). *)

val run : unit -> unit
