(** Experiments E-5.2a / E-5.2b — Theorem 5.2: searchable small worlds on
    doubling metrics.

    (a) O(log n)-hop greedy routing with out-degree
    [2^O(alpha)(log n)(log Delta)]: hop counts vs n on clouds (flat-ish in
    log n) and, the headline, O(log n) hops on metrics whose aspect ratio
    is exponential in n.

    (b) the (log Delta) -> sqrt(log Delta) out-degree trade: degree of the
    (a) and (b) models as log Delta grows at fixed n, plus the sidestep
    router's non-greedy step counts, plus a window-cap ablation (the
    paper's |j| <= (3x+3) log log Delta truncation only bites at
    astronomical Delta; a tighter cap shows the intended scaling while
    queries still succeed). *)

val run_a : unit -> unit
val run_b : unit -> unit
