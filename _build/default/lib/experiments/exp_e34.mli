(** Experiment E-3.4 — Theorem 3.4: (1+delta)-approximate distance labels of
    [(O(1/delta))^O(alpha) (log n)(log log Delta)] bits, decoded from two
    labels alone.

    The headline is the aspect-ratio scaling: at (near-)fixed n, growing
    log Delta geometrically should grow Theorem 3.4 labels like
    log log Delta (near-flat) while the trivial exact labels grow like
    n log Delta. Uses exponential-cluster metrics with a swept base.
    Also verifies decode accuracy (never contracting, within
    (1+2 delta)(1 + delta/8)). *)

val run : unit -> unit
