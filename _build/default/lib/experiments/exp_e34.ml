module C = Exp_common
module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Triangulation = Ron_labeling.Triangulation
module Dls = Ron_labeling.Dls
module Trivial_dls = Ron_labeling.Trivial_dls

let max_arr = Array.fold_left max 0

let accuracy dls idx delta =
  let n = Indexed.size idx in
  let worst = ref 0.0 and contractions = ref 0 and fails = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      match Dls.estimate (Dls.label dls u) (Dls.label dls v) with
      | est ->
        let d = Indexed.dist idx u v in
        if est < d -. 1e-9 then incr contractions;
        worst := Float.max !worst (est /. d)
      | exception Failure _ -> incr fails
    done
  done;
  (!worst, !contractions, !fails, (1.0 +. (2.0 *. delta)) *. (1.0 +. (delta /. 8.0)))

let run () =
  C.section "E-3.4" "Theorem 3.4: label bits vs aspect ratio (log log Delta scaling)";
  let delta = 0.25 in
  let rng = Rng.create 34 in

  C.subsection "label bits at fixed n = 48 as log2(Delta) grows (exponential clusters)";
  C.header
    [
      C.cell ~w:8 "base"; C.cell ~w:9 "log2(D)"; C.cell ~w:14 "thm3.4 bits";
      C.cell ~w:14 "trivial bits"; C.cell ~w:10 "est/d max"; C.cell ~w:8 "bound";
      C.cell ~w:10 "contract"; C.cell ~w:6 "fails";
    ];
  List.iter
    (fun base ->
      let m =
        Generators.exponential_clusters (Rng.split rng) ~clusters:12 ~per_cluster:4 ~base
      in
      let idx = Indexed.create m in
      let tri = Triangulation.build idx ~delta in
      let dls = Dls.build tri in
      let trivial = Trivial_dls.build idx in
      let (worst, contractions, fails, bound) = accuracy dls idx delta in
      C.row
        [
          C.cell_float ~w:8 ~prec:0 base;
          C.cell_int ~w:9 (Indexed.log2_aspect_ratio idx);
          C.cell_int ~w:14 (Dls.max_label_bits dls);
          C.cell_int ~w:14 (max_arr (Trivial_dls.label_bits trivial));
          C.cell_float ~w:10 worst;
          C.cell_float ~w:8 bound;
          C.cell_int ~w:10 contractions;
          C.cell_int ~w:6 fails;
        ])
    [ 4.0; 16.0; 256.0; 65536.0; 4294967296.0 ];
  C.note "Paper's shape: Theorem 3.4 labels grow ~log log Delta (the swept rows";
  C.note "should be nearly flat: doubling log Delta adds one bit to each distance";
  C.note "exponent and one scale's worth of Z-levels), while the trivial scheme's";
  C.note "n * log Delta growth is linear in the log2(D) column once distances";
  C.note "exceed float mantissas. 'contract' must be 0 (estimates never go below";
  C.note "the true distance) and est/d stays within the bound.";

  C.subsection "the exponential line: n tied to log Delta (the paper's canonical stress case)";
  C.header
    [
      C.cell ~w:8 "n"; C.cell ~w:9 "log2(D)"; C.cell ~w:14 "thm3.4 bits";
      C.cell ~w:14 "trivial bits"; C.cell ~w:10 "est/d max";
    ];
  List.iter
    (fun n ->
      let idx = Indexed.create (Generators.exponential_line n) in
      let tri = Triangulation.build idx ~delta in
      let dls = Dls.build tri in
      let trivial = Trivial_dls.build idx in
      let (worst, _, _, _) = accuracy dls idx delta in
      C.row
        [
          C.cell_int ~w:8 n;
          C.cell_int ~w:9 (Indexed.log2_aspect_ratio idx);
          C.cell_int ~w:14 (Dls.max_label_bits dls);
          C.cell_int ~w:14 (max_arr (Trivial_dls.label_bits trivial));
          C.cell_float ~w:10 worst;
        ])
    [ 12; 16; 20; 24; 28; 32 ]
