(** Experiment T1 — Table 1: (1+delta)-stretch routing schemes for doubling
    graphs. Measures routing-table bits, packet-header bits and realized
    stretch for Theorem 2.1, Theorem 4.1, and the stretch-1 full-table
    baseline, on grid and random geometric graphs, and checks the scaling
    shapes the table predicts ((log Delta) for Thm 2.1's headers vs
    (log n)(log log Delta)-flavored headers for Thm 4.1). *)

val run : unit -> unit
