module C = Exp_common
module Rng = Ron_util.Rng
module Graph_gen = Ron_graph.Graph_gen
module Graph = Ron_graph.Graph
module Sp_metric = Ron_graph.Sp_metric
module Basic = Ron_routing.Basic

let run () =
  C.section "E-2.1" "Theorem 2.1: delivery and stretch 1+O(delta), swept over delta";
  let rng = Rng.create 21 in
  let sp = Sp_metric.create (Graph_gen.random_geometric (Rng.split rng) ~n:130 ~radius:0.14) in
  let n = Graph.size (Sp_metric.graph sp) in
  C.header
    [
      C.cell ~w:8 "delta"; C.cell ~w:12 "bound"; C.cell ~w:12 "measured";
      C.cell ~w:12 "mean"; C.cell ~w:8 "K"; C.cell ~w:8 "fails";
    ];
  List.iter
    (fun delta ->
      let b = Basic.build sp ~delta in
      let pairs = C.sample_pairs (Rng.split rng) ~n ~count:1500 in
      let q =
        C.collect_routes
          ~route:(fun u v -> Basic.route b ~src:u ~dst:v)
          ~dist:(fun u v -> Sp_metric.dist sp u v)
          pairs
      in
      let bound = (1.0 +. delta) /. (1.0 -. delta) in
      C.row
        [
          C.cell_float ~w:8 ~prec:3 delta;
          C.cell_float ~w:12 bound;
          C.cell_float ~w:12 q.C.stretch_max;
          C.cell_float ~w:12 q.C.stretch_mean;
          C.cell_int ~w:8 (Basic.max_ring_size b);
          C.cell_int ~w:8 q.C.failures;
        ];
      if q.C.failures > 0 then C.note "UNEXPECTED: Theorem 2.1 packets must always arrive";
      if q.C.stretch_max > bound +. 1e-9 then C.note "UNEXPECTED: stretch bound violated")
    [ 0.25; 0.125; 0.0625; 0.03125 ];
  C.note "Shape check: measured worst-case stretch sits below (1+d)/(1-d) and falls";
  C.note "as delta falls; the ring-size cap K grows like (16/delta)^alpha."
