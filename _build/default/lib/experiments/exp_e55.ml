module C = Exp_common
module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Metric = Ron_metric.Metric
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
module Graph_gen = Ron_graph.Graph_gen
module Sp_metric = Ron_graph.Sp_metric
module Single_link = Ron_smallworld.Single_link
module Kleinberg_grid = Ron_smallworld.Kleinberg_grid
module Sw_model = Ron_smallworld.Sw_model

let mean_hops route n rng queries max_hops =
  let hsum = ref 0 and hmax = ref 0 and fails = ref 0 and ok = ref 0 in
  for _ = 1 to queries do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let r = route u v ~max_hops in
      if r.Sw_model.delivered then begin
        incr ok;
        hsum := !hsum + r.Sw_model.hops;
        hmax := max !hmax r.Sw_model.hops
      end
      else incr fails
    end
  done;
  (float_of_int !hsum /. float_of_int (max 1 !ok), !hmax, !fails)

let run () =
  C.section "E-5.5" "Theorem 5.5: single long-range contact per node (vs Kleinberg's grid)";
  let rng = Rng.create 55 in
  C.header
    [
      C.cell ~w:8 "side"; C.cell ~w:8 "n"; C.cell ~w:10 "log2^2(D)";
      C.cell ~w:16 "thm5.5 mean/max"; C.cell ~w:16 "kleinb mean/max"; C.cell ~w:12 "fails 5.5/KG";
    ];
  List.iter
    (fun side ->
      let g = Graph_gen.grid side side in
      let sp = Sp_metric.create g in
      let idx = Indexed.create (Metric.normalize (Sp_metric.metric sp)) in
      let mu = Measure.create idx (Net.Hierarchy.create idx) in
      let sl = Single_link.build sp mu (Rng.split rng) in
      let kg = Kleinberg_grid.build ~side (Rng.split rng) in
      let n = side * side in
      let budget = 50 * Indexed.log2_aspect_ratio idx * Indexed.log2_aspect_ratio idx in
      let (m1, x1, f1) =
        mean_hops (fun u v -> Single_link.route sl ~src:u ~dst:v) n (Rng.split rng) 1200 budget
      in
      let (m2, x2, f2) =
        mean_hops (fun u v -> Kleinberg_grid.route kg ~src:u ~dst:v) n (Rng.split rng) 1200 budget
      in
      let logd = float_of_int (Indexed.log2_aspect_ratio idx) in
      C.row
        [
          C.cell_int ~w:8 side; C.cell_int ~w:8 n;
          C.cell_float ~w:10 ~prec:0 (logd *. logd);
          C.cell ~w:16 (Printf.sprintf "%.1f / %d" m1 x1);
          C.cell ~w:16 (Printf.sprintf "%.1f / %d" m2 x2);
          C.cell ~w:12 (Printf.sprintf "%d / %d" f1 f2);
        ])
    [ 8; 12; 16; 24; 32 ];
  C.note "Expected hop counts grow like log^2(Delta) (column 3, up to constants)";
  C.note "for both the doubling-measure construction and Kleinberg's original";
  C.note "inverse-square grid — Theorem 5.5 generalizes the latter, and on an";
  C.note "actual grid the two behave alike."
