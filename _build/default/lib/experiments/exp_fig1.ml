module C = Exp_common
module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Graph_gen = Ron_graph.Graph_gen
module Sp_metric = Ron_graph.Sp_metric
module Triangulation = Ron_labeling.Triangulation
module Dls = Ron_labeling.Dls
module Basic = Ron_routing.Basic
module Labelled = Ron_routing.Labelled
module On_metric = Ron_routing.On_metric
module Scheme = Ron_routing.Scheme

let check name ok = C.row [ C.cell ~w:64 name; C.cell ~w:6 (if ok then "ok" else "FAIL") ]

let run () =
  C.section "FIG1" "Figure 1: the flow of ideas, as live code dependencies";
  let rng = Rng.create 1 in
  let idx = Indexed.create (Generators.random_cloud rng ~n:80 ~dim:2) in
  let sp = Sp_metric.create (Graph_gen.grid 7 7) in

  (* rings of neighbors -> Thm 2.1 *)
  let b = Basic.build sp ~delta:0.25 in
  let r = Basic.route b ~src:0 ~dst:48 in
  check "rings of neighbors -> Thm 2.1 (basic routing scheme)" r.Scheme.delivered;

  (* rings of neighbors -> Thm 3.2 *)
  let tri = Triangulation.build idx ~delta:0.25 in
  let (lo, hi) = Triangulation.estimate tri 0 40 in
  check "rings of neighbors -> Thm 3.2 (triangulation)" (lo <= hi && hi < infinity);

  (* Thm 3.2 + Thm 2.1 techniques -> Thm 3.4 *)
  let dls = Dls.build tri in
  let est = Dls.estimate (Dls.label dls 0) (Dls.label dls 40) in
  check "Thm 3.2 + zooming/enumerations (Thm 2.1) -> Thm 3.4 (distance labels)"
    (est >= Indexed.dist idx 0 40 -. 1e-9);

  (* Thm 3.4 (black box) -> Thm 4.1 *)
  let l = Labelled.build sp ~delta:0.25 in
  let r41 = Labelled.route l ~src:0 ~dst:48 in
  check "Thm 3.4 as a black box -> Thm 4.1 (simple routing scheme)" r41.Scheme.delivered;

  (* Thm 2.1 -> routing on metrics (Sec 4.1 / Table 2) *)
  let om = On_metric.build idx ~delta:0.25 in
  let rm = On_metric.route om ~src:0 ~dst:40 in
  check "Thm 2.1 -> Section 4.1 (routing on metrics)" rm.Scheme.delivered;

  C.note "Each edge of Figure 1 is exercised end-to-end: the downstream";
  C.note "construction is built from the upstream module's public API."
