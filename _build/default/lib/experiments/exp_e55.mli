(** Experiment E-5.5 — Theorem 5.5: one long-range contact per node.

    On grid graphs, greedy routing with a single doubling-measure-sampled
    long contact completes queries in [2^O(alpha) log^2 Delta] hops —
    the generalization of Kleinberg's inverse-square grid model, which we
    run side by side as the baseline. Sweeps the grid side and compares
    hop growth against log^2 of the diameter. *)

val run : unit -> unit
