(** Experiment T3 — Table 3: the space requirements of Theorem 4.2/B.1's two
    routing modes, measured on the metric form of the scheme: mode M1
    (label-driven zooming) vs mode M2 (packing-ball directories of direct
    routes), plus delivery/stretch and the frequency of M2 switches. *)

val run : unit -> unit
