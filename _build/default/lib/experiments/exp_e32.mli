(** Experiment E-3.2 — Theorem 3.2: (0, delta)-triangulation.

    Checks, over all pairs, that D- <= d <= D+ with D+ <= (1+2 delta) d
    (zero bad pairs — the paper's improvement over [33, 50]); contrasts
    with the common-beacon baseline's bad-pair fraction; measures order
    growth with n; and runs the constant-tightening ablation described in
    DESIGN.md (the paper's 12/delta and delta/4 constants vs smaller ones,
    trading order against the certified-accuracy margin). *)

val run : unit -> unit
