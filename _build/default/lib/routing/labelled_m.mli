(** Theorem 4.1 as a routing scheme on metrics (Section 4.1, Table 2 row 3).

    The overlay links each node to its j-level neighbors
    [F_j(u) = B_u(2^(j+2)/delta) ∩ F_j]; since every neighbor is one hop
    away, the first-hop machinery disappears and each intermediate-target
    selection is a single overlay hop. Tables store the neighbors' distance
    labels (to evaluate the labeled estimate [D]); headers carry the
    target's label. *)

type t

val build : Ron_metric.Indexed.t -> delta:float -> t
(** [delta] in (0, 2/3); requires a normalized metric. *)

val route : t -> src:int -> dst:int -> Scheme.result
val out_degree : t -> int
val mean_out_degree : t -> float
val table_bits : t -> int array
val label_bits : t -> int array
val header_bits : t -> int
