(** Routing schemes on metrics (Section 4.1, Table 2).

    Here the input is a metric [(V, d)] and the scheme is free to choose an
    overlay edge set [E] (edge weights = distances); the out-degree of the
    overlay becomes a parameter to optimize alongside table and header
    bits. The Theorem 2.1 structure gives an overlay where each node links
    to all of its ring members; a packet hops {e directly} to each
    intermediate target, so the first-hop machinery disappears and the
    routing table is just the translation functions. *)

type t

val build : Ron_metric.Indexed.t -> delta:float -> t
(** [delta] in (0, 1/4]. *)

val route : t -> src:int -> dst:int -> Scheme.result
(** Hops are overlay links (one per intermediate target). *)

val out_degree : t -> int
(** Max number of overlay out-links (distinct ring members). *)

val mean_out_degree : t -> float
val table_bits : t -> int array
(** Translation functions only (links are the overlay's edges; their
    endpoints' addresses are the out-degree column, as in Table 2). *)

val label_bits : t -> int array
val header_bits : t -> int
val scales : t -> int
val max_ring_size : t -> int
