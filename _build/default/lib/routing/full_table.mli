(** The trivial stretch-1 routing scheme (Section 1): every node stores the
    first hop of a shortest path to every target, [n ceil(log2 Dout)] bits
    plus target identifiers — the [Omega(n log n)]-bit baseline compact
    routing is measured against. Headers carry only the target id. *)

type t

val build : Ron_graph.Sp_metric.t -> t
val route : t -> src:int -> dst:int -> Scheme.result
(** Always delivers with stretch exactly 1. *)

val table_bits : t -> int array
val header_bits : t -> int
