(** Internal: the Theorem 2.1 ring/zooming/translation structure, shared by
    the graph scheme ({!Basic}) and the metric scheme ({!On_metric}).

    Holds, for a metric of aspect ratio [Delta] and a given [delta]: the
    nested nets [G_j] ([Delta/2^j]-nets), the rings
    [Y_uj = B_u(4 Delta/(delta 2^j)) ∩ G_j], their host enumerations, the
    translation functions [zeta_uj], the zooming sequences [f_tj] and their
    encoded routing labels. *)

type t = {
  idx : Ron_metric.Indexed.t;
  delta : float;
  scales : int;
  nets : int array array;
  rings : Ron_core.Rings.t;
  enums : Ron_core.Enumeration.t array array;
  zetas : Ron_core.Translation.t array array;
  zoomings : int array array;
  labels : Ron_core.Zooming.encoded array;
  ring_index_bits : int;
}

val build : Ron_metric.Indexed.t -> delta:float -> t
(** [delta] in (0, 1/4]. *)

val decode : t -> int -> Ron_core.Zooming.encoded -> int array
(** Claim 2.2 at node [u]: local indices [m_0 .. m_jut] of the encoded
    zooming sequence. *)

val intermediate_of : t -> int -> int array -> int -> int
(** [intermediate_of t u m j]: the node [f_tj] named by local index
    [m.(j)] in [u]'s ring [j]. *)

val zeta_bits_sparse : t -> int -> int
(** Total sparse translation-table bits of node [u]. *)

val zeta_bits_dense : t -> int
(** Dense per-node accounting: [(scales-1) * K^2 * ceil(log2 K)]. *)

val label_bits : t -> int -> int
(** Encoded zooming sequence plus the global id. *)

val header_bits : t -> int
(** Max label bits plus the intermediate-level field. *)
