type 'h step = int -> 'h -> 'h action

and 'h action = Deliver | Forward of int * 'h

type result = {
  delivered : bool;
  hops : int;
  length : float;
  path : int list;
  max_header_bits : int;
}

let simulate ~dist ~step ~header_bits ~src ~header ~max_hops =
  let rec go node header acc_path acc_len hops max_hb =
    let max_hb = max max_hb (header_bits header) in
    match step node header with
    | Deliver ->
      { delivered = true; hops; length = acc_len; path = List.rev acc_path; max_header_bits = max_hb }
    | Forward (next, header') ->
      if next = node then failwith "Scheme.simulate: scheme forwarded a packet to itself";
      if hops >= max_hops then
        {
          delivered = false;
          hops;
          length = acc_len;
          path = List.rev acc_path;
          max_header_bits = max_hb;
        }
      else go next header' (next :: acc_path) (acc_len +. dist node next) (hops + 1) max_hb
  in
  go src header [ src ] 0.0 0 0

type table_stats = {
  max_table_bits : int;
  mean_table_bits : float;
  max_label_bits : int;
  header_bits : int;
  out_degree : int;
}

let stretch r d =
  if not r.delivered then invalid_arg "Scheme.stretch: packet not delivered";
  if d = 0.0 then 1.0 else r.length /. d
