lib/routing/full_table.ml: Array Ron_graph Ron_util Scheme
