lib/routing/scheme.mli:
