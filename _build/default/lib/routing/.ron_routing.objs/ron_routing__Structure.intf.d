lib/routing/structure.mli: Ron_core Ron_metric
