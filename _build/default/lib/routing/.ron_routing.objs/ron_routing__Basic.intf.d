lib/routing/basic.mli: Bytes Ron_graph Scheme
