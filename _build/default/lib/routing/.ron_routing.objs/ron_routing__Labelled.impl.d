lib/routing/labelled.ml: Array Hashtbl Ron_graph Ron_labeling Ron_metric Ron_util Scheme
