lib/routing/scheme.ml: List
