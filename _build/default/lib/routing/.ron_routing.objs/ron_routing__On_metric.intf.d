lib/routing/on_metric.mli: Ron_metric Scheme
