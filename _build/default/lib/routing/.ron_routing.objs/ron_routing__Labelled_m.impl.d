lib/routing/labelled_m.ml: Array Hashtbl Labelled Ron_labeling Ron_metric Ron_util Scheme
