lib/routing/two_mode.mli: Ron_metric Scheme
