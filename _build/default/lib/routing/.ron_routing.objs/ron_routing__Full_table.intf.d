lib/routing/full_table.mli: Ron_graph Scheme
