lib/routing/labelled_m.mli: Ron_metric Scheme
