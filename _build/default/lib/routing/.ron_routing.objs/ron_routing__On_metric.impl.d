lib/routing/on_metric.ml: Array Fun Ron_core Ron_metric Ron_util Scheme Structure
