lib/routing/two_mode.ml: Array Float Hashtbl List Ron_labeling Ron_metric Ron_util Scheme
