lib/routing/structure.ml: Array Float Ron_core Ron_metric Ron_util
