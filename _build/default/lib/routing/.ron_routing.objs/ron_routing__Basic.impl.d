lib/routing/basic.ml: Array Hashtbl Ron_core Ron_graph Ron_metric Ron_util Scheme Structure
