lib/routing/labelled.mli: Ron_graph Scheme
