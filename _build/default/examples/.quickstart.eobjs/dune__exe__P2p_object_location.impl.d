examples/p2p_object_location.ml: Array Printf Ron_metric Ron_smallworld Ron_util
