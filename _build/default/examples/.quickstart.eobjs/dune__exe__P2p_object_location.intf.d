examples/p2p_object_location.mli:
