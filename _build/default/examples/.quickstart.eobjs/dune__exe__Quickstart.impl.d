examples/quickstart.ml: Printf Ron_core Ron_labeling Ron_metric Ron_routing Ron_smallworld Ron_util
