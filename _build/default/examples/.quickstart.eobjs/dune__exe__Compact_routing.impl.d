examples/compact_routing.ml: Array Printf Ron_graph Ron_routing Ron_util
