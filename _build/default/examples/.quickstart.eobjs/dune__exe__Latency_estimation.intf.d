examples/latency_estimation.mli:
