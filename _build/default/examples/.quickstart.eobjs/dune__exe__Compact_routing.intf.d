examples/compact_routing.mli:
