examples/latency_estimation.ml: Array List Printf Ron_labeling Ron_metric Ron_util
