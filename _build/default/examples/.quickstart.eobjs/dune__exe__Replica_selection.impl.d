examples/replica_selection.ml: Array Float Fun List Printf Ron_metric Ron_smallworld Ron_util
