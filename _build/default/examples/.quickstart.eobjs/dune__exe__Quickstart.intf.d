examples/quickstart.mli:
