(* Compact low-stretch routing on a network topology (Sections 2 and 4).

   A wireless mesh / ISP-like topology: a random geometric graph whose
   shortest-path metric is doubling. The trivial stretch-1 scheme stores a
   full routing table at every node; Theorem 2.1 stores translation tables
   over rings of neighbors and routes with stretch 1+delta; Theorem 4.1
   additionally makes packet headers independent of the aspect ratio.

   Run with: dune exec examples/compact_routing.exe *)

module Rng = Ron_util.Rng
module Stats = Ron_util.Stats
module Graph = Ron_graph.Graph
module Graph_gen = Ron_graph.Graph_gen
module Sp_metric = Ron_graph.Sp_metric
module Scheme = Ron_routing.Scheme
module Basic = Ron_routing.Basic
module Labelled = Ron_routing.Labelled
module Full_table = Ron_routing.Full_table

let sample_routes route dist n rng =
  let stretches = ref [] in
  let fails = ref 0 in
  for _ = 1 to 1500 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let r = route u v in
      if r.Scheme.delivered then stretches := Scheme.stretch r (dist u v) :: !stretches
      else incr fails
    end
  done;
  (Array.of_list !stretches, !fails)

let () =
  let rng = Rng.create 19 in
  let g = Graph_gen.random_geometric (Rng.split rng) ~n:150 ~radius:0.13 in
  let sp = Sp_metric.create g in
  let n = Graph.size g in
  Printf.printf "topology: %d nodes, %d arcs, max degree %d\n\n" n (Graph.edge_count g)
    (Graph.max_out_degree g);

  let delta = 0.25 in

  let ft = Full_table.build sp in
  let (s0, f0) = sample_routes (fun u v -> Full_table.route ft ~src:u ~dst:v)
      (fun u v -> Sp_metric.dist sp u v) n (Rng.split rng) in
  Printf.printf "stretch-1 full tables:   table %7d bits/node, header %3d bits, stretch max %.3f, fails %d\n"
    (Array.fold_left max 0 (Full_table.table_bits ft))
    (Full_table.header_bits ft) (Stats.maximum s0) f0;

  let basic = Basic.build sp ~delta in
  let (s1, f1) = sample_routes (fun u v -> Basic.route basic ~src:u ~dst:v)
      (fun u v -> Sp_metric.dist sp u v) n (Rng.split rng) in
  Printf.printf "Theorem 2.1 (1+%.2f):    table %7d bits/node, header %3d bits, stretch max %.3f, fails %d\n"
    delta
    (Array.fold_left max 0 (Basic.table_bits basic))
    (Basic.header_bits basic) (Stats.maximum s1) f1;
  Printf.printf "  (labels are %d-bit zooming sequences; K = %d ring members max)\n"
    (Array.fold_left max 0 (Basic.label_bits basic))
    (Basic.max_ring_size basic);

  let lab = Labelled.build sp ~delta in
  let (s2, f2) = sample_routes (fun u v -> Labelled.route lab ~src:u ~dst:v)
      (fun u v -> Sp_metric.dist sp u v) n (Rng.split rng) in
  Printf.printf "Theorem 4.1 (1+%.2f):    table %7d bits/node, header %3d bits, stretch max %.3f, fails %d\n"
    delta
    (Array.fold_left max 0 (Labelled.table_bits lab))
    (Labelled.header_bits lab) (Stats.maximum s2) f2;

  Printf.printf
    "\nAt this toy scale the asymptotic constants dominate (the paper's K is\n\
     (16/delta)^alpha); the point of the comparison is the shape: Theorem 2.1\n\
     labels/headers are tiny and scale with log Delta * log K rather than n,\n\
     and every packet arrives within stretch 1+O(delta).\n"
