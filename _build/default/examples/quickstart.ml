(* Quickstart: build a doubling metric, look at its rings of neighbors, and
   use them for the three headline tasks — distance estimation
   (triangulation), compact routing, and small-world search.

   Run with: dune exec examples/quickstart.exe *)

module Rng = Ron_util.Rng
module Metric = Ron_metric.Metric
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
module Rings = Ron_core.Rings
module Triangulation = Ron_labeling.Triangulation
module On_metric = Ron_routing.On_metric
module Scheme = Ron_routing.Scheme
module Doubling_a = Ron_smallworld.Doubling_a
module Sw_model = Ron_smallworld.Sw_model

let () =
  let rng = Rng.create 2025 in

  (* 1. A metric space: 200 random points in the unit square (normalized so
     the minimum distance is 1 — the library's convention). *)
  let metric = Generators.random_cloud rng ~n:200 ~dim:2 in
  let idx = Indexed.create metric in
  Printf.printf "metric %-16s n=%d  diameter=%.1f  aspect ratio=%.1f\n"
    (Metric.name metric) (Indexed.size idx) (Indexed.diameter idx) (Indexed.aspect_ratio idx);

  (* 2. Rings of neighbors: the generic structure underlying everything.
     Here, the second canonical collection — radii growing geometrically,
     members taken from a nested net hierarchy. *)
  let hier = Net.Hierarchy.create idx in
  let rings =
    Rings.net_rings idx hier
      ~scales:(Net.Hierarchy.jmax hier + 1)
      ~radius_of:(fun j -> 4.0 *. Ron_util.Bits.pow2 j)
      ~level_of:(fun j -> j)
  in
  Printf.printf "rings: %d scales, max ring size %d, max out-degree %d\n"
    (Rings.scales rings 0) (Rings.max_ring_size rings) (Rings.max_out_degree rings);

  (* 3. Distance estimation: a (0, delta)-triangulation (Theorem 3.2). Every
     pair of labels yields certified bounds D- <= d <= D+. *)
  let tri = Triangulation.build idx ~delta:0.25 in
  let u = 3 and v = 117 in
  let (lo, hi) = Triangulation.estimate tri u v in
  Printf.printf "triangulation: order=%d;  d(%d,%d)=%.2f  certified in [%.2f, %.2f]\n"
    (Triangulation.order tri) u v (Indexed.dist idx u v) lo hi;

  (* 4. Compact routing on the metric (Theorem 2.1 via Section 4.1): packets
     chase intermediate targets decoded from translation tables. *)
  let scheme = On_metric.build idx ~delta:0.25 in
  let r = On_metric.route scheme ~src:u ~dst:v in
  Printf.printf "routing: delivered=%b  hops=%d  stretch=%.3f  header<=%d bits\n"
    r.Scheme.delivered r.Scheme.hops
    (Scheme.stretch r (Indexed.dist idx u v))
    (On_metric.header_bits scheme);

  (* 5. Small-world search (Theorem 5.2a): sampled contacts, greedy routing,
     O(log n) hops. *)
  let mu = Measure.create idx hier in
  let sw = Doubling_a.build idx mu (Rng.split rng) in
  let q = Doubling_a.route sw ~src:u ~dst:v ~max_hops:100 in
  let (deg_max, deg_mean) = Doubling_a.out_degree sw in
  Printf.printf "small world: delivered=%b in %d hops (degree max=%d mean=%.1f)\n"
    q.Sw_model.delivered q.Sw_model.hops deg_max deg_mean
