(* Nearest-replica selection with a Meridian-style overlay (Section 6, [57]).

   A content provider runs replicas at a subset of nodes of a latency
   metric. A client (any node, not necessarily a replica) wants the replica
   closest to it. Instead of probing all replicas, the client hands the
   query to any overlay member; the overlay walks its rings of neighbors,
   measuring only a handful of candidates per hop, and settles on the
   (almost always exact) closest member.

   We also exercise churn: replicas come and go, and the rings keep
   working.

   Run with: dune exec examples/replica_selection.exe *)

module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Stats = Ron_util.Stats
module Meridian = Ron_smallworld.Meridian

let percent a b = 100.0 *. float_of_int a /. float_of_int (max 1 b)

let run_queries t idx clients members rng =
  let exact = ref 0 and total = ref 0 in
  let probes = ref [] and hops = ref [] and penalty = ref [] in
  Array.iter
    (fun client ->
      if not (Meridian.is_member t client) then begin
        let entry = members.(Rng.int rng (Array.length members)) in
        let r = Meridian.closest t ~start:entry ~target:client in
        let truth = Meridian.exact_closest t client in
        incr total;
        if r.Meridian.found = truth then incr exact;
        probes := float_of_int r.Meridian.measurements :: !probes;
        hops := float_of_int r.Meridian.hops :: !hops;
        penalty :=
          (Indexed.dist idx r.Meridian.found client /. Float.max 1e-9 (Indexed.dist idx truth client))
          :: !penalty
      end)
    clients;
  (!exact, !total, Array.of_list !probes, Array.of_list !hops, Array.of_list !penalty)

let () =
  let rng = Rng.create 2026 in
  let metric =
    Generators.clustered_latency (Rng.split rng) ~clusters:10 ~per_cluster:60 ~spread:35.0
      ~access:8.0
  in
  let idx = Indexed.create metric in
  let n = Indexed.size idx in

  (* 120 of the 600 nodes host replicas. *)
  let perm = Array.init n Fun.id in
  Rng.shuffle rng perm;
  let replicas = Array.sub perm 0 120 in
  let clients = Array.sub perm 120 (n - 120) in
  Printf.printf "latency metric: %d nodes; %d replicas, %d clients\n\n" n (Array.length replicas)
    (Array.length clients);

  let t = Meridian.build idx (Rng.split rng) ~ring_size:8 ~members:replicas in
  let (dmax, dmean) = Meridian.out_degree t in
  Printf.printf "overlay rings: out-degree max %d, mean %.1f (vs %d replicas)\n" dmax dmean
    (Array.length replicas);

  let (exact, total, probes, hops, penalty) = run_queries t idx clients replicas (Rng.split rng) in
  Printf.printf "nearest-replica queries: %d/%d exact (%.1f%%)\n" exact total (percent exact total);
  Printf.printf "  probes per query: mean %.1f, max %.0f (vs %d for probing all replicas)\n"
    (Stats.mean probes) (Stats.maximum probes) (Array.length replicas);
  Printf.printf "  overlay hops: mean %.1f, max %.0f\n" (Stats.mean hops) (Stats.maximum hops);
  Printf.printf "  latency penalty on misses: mean %.3fx, max %.3fx\n\n" (Stats.mean penalty)
    (Stats.maximum penalty);

  (* Churn: a third of the replicas are replaced. *)
  let leavers = Array.sub replicas 0 40 in
  Array.iter (fun u -> Meridian.leave t u) leavers;
  let joiners = Array.sub clients 0 40 in
  Array.iter (fun u -> Meridian.join t (Rng.split rng) u) joiners;
  let members = Meridian.members t in
  let still_clients =
    Array.of_list (List.filter (fun v -> not (Meridian.is_member t v)) (Array.to_list clients))
  in
  let (exact, total, probes, _, _) = run_queries t idx still_clients members (Rng.split rng) in
  Printf.printf "after replacing 1/3 of the replicas (join/leave maintenance):\n";
  Printf.printf "  %d/%d exact (%.1f%%), probes mean %.1f — rings absorbed the churn\n" exact total
    (percent exact total) (Stats.mean probes)
