(* Internet-latency estimation — the scenario that motivated triangulation
   (Kleinberg-Slivkins-Wexler [33] and the Meridian system [57]).

   A CDN wants to answer "what is the latency between any two of my 300
   vantage points?" without the O(n^2) measurement matrix. Each node
   measures latencies only to its triangulation beacons and publishes that
   small label; any pair of labels then certifies an interval
   [D-, D+] around the true latency.

   We compare the paper's (0, delta)-triangulation (Theorem 3.2: EVERY pair
   certified) with the common-beacon baseline of [33, 50] (a fraction of
   pairs gets no guarantee), on a synthetic latency metric: clustered
   "cities" plus per-node access delays.

   Run with: dune exec examples/latency_estimation.exe *)

module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Stats = Ron_util.Stats
module Triangulation = Ron_labeling.Triangulation
module Beacon = Ron_labeling.Beacon

let () =
  let rng = Rng.create 7 in
  let metric =
    Generators.clustered_latency rng ~clusters:6 ~per_cluster:50 ~spread:40.0 ~access:8.0
  in
  let idx = Indexed.create metric in
  let n = Indexed.size idx in
  Printf.printf "synthetic latency matrix: %d nodes, aspect ratio %.0f\n\n" n
    (Indexed.aspect_ratio idx);

  let delta = 0.25 in
  let tri = Triangulation.build idx ~delta in

  (* Accuracy over all pairs. *)
  let ratios = ref [] in
  let certified = ref 0 and total = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      incr total;
      let d = Indexed.dist idx u v in
      let (lo, hi) = Triangulation.estimate tri u v in
      if lo > 0.0 && hi /. lo <= 1.0 +. (2.0 *. delta) then incr certified;
      ratios := (hi /. d) :: !ratios
    done
  done;
  let rs = Array.of_list !ratios in
  Printf.printf "Theorem 3.2 (0,%.2f)-triangulation:\n" delta;
  Printf.printf "  order (beacons per node): %d of %d nodes\n" (Triangulation.order tri) n;
  Printf.printf "  pairs with certified D+/D- <= %.2f: %d / %d (paper: all)\n"
    (1.0 +. (2.0 *. delta)) !certified !total;
  Printf.printf "  overestimation D+/d: mean %.4f, p99 %.4f, max %.4f\n\n" (Stats.mean rs)
    (Stats.percentile rs 99.0) (Stats.maximum rs);

  (* The baseline: same label budget spent on shared random beacons. *)
  List.iter
    (fun k ->
      let b = Beacon.build idx (Rng.split rng) ~k in
      Printf.printf
        "common-beacon baseline, k=%3d: %.1f%% of pairs get NO (1+%.2f) guarantee\n" k
        (100.0 *. Beacon.bad_fraction b ~delta:(2.0 *. delta))
        (2.0 *. delta))
    [ 4; 16; 64 ];
  Printf.printf
    "\nThe (eps, delta) flaw the paper fixes: shared beacons leave real pairs\n\
     uncertified no matter how many there are; per-node rings of neighbors\n\
     certify every pair with O(log n)-ish labels.\n"
