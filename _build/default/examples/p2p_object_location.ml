(* Peer-to-peer object location — the small-world application (Sections 1
   and 5; compare Symphony [40] and Meridian [57]).

   An overlay of peers lives on a latency metric with very uneven density:
   a few big data centers and a long tail of far-flung nodes (we use the
   exponential-clusters metric, whose aspect ratio is astronomically larger
   than n). Each peer keeps a small, locally sampled contact list; a lookup
   greedily forwards toward the peer responsible for the key.

   This is exactly the regime where Theorem 5.2 improves on a naive
   small world: O(log n) lookup hops even though the metric has log(Delta)
   >> log(n) distance scales.

   Run with: dune exec examples/p2p_object_location.exe *)

module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
module Stats = Ron_util.Stats
module Doubling_a = Ron_smallworld.Doubling_a
module Doubling_b = Ron_smallworld.Doubling_b
module Sw_model = Ron_smallworld.Sw_model

let run_lookups name route n rng =
  let hops = ref [] and fails = ref 0 in
  for _ = 1 to 2000 do
    let client = Rng.int rng n and holder = Rng.int rng n in
    if client <> holder then begin
      let r = route client holder in
      if r.Sw_model.delivered then hops := float_of_int r.Sw_model.hops :: !hops
      else incr fails
    end
  done;
  let h = Array.of_list !hops in
  Printf.printf "  %-28s lookups: mean %.2f hops, p99 %.0f, max %.0f, failed %d\n" name
    (Stats.mean h) (Stats.percentile h 99.0) (Stats.maximum h) !fails

let () =
  let rng = Rng.create 11 in
  (* 16 "regions" whose pairwise latencies span ~14 decimal orders of magnitude in
     base 8: log2(Delta) ~ 50 while log2(n) ~ 9. *)
  let metric = Generators.exponential_clusters rng ~clusters:16 ~per_cluster:32 ~base:8.0 in
  let idx = Indexed.create metric in
  let n = Indexed.size idx in
  Printf.printf "overlay: %d peers, log2(aspect ratio) = %d, log2(n) = %d\n\n" n
    (Indexed.log2_aspect_ratio idx) (Indexed.log2_size idx);

  let mu = Measure.create idx (Net.Hierarchy.create idx) in

  let a = Doubling_a.build ~c:1 idx mu (Rng.split rng) in
  let (da, ma) = Doubling_a.out_degree a in
  Printf.printf "Theorem 5.2a contacts (X uniform-in-ball + Y measure-weighted):\n";
  Printf.printf "  out-degree: max %d, mean %.1f\n" da ma;
  run_lookups "greedy routing" (fun s t -> Doubling_a.route a ~src:s ~dst:t ~max_hops:200) n
    (Rng.split rng);

  let b = Doubling_b.build ~c:1 idx mu (Rng.split rng) in
  let (db, mb) = Doubling_b.out_degree b in
  Printf.printf "\nTheorem 5.2b contacts (X + pruned Y + Z annuli escape hatches):\n";
  Printf.printf "  out-degree: max %d, mean %.1f\n" db mb;
  run_lookups "sidestep routing" (fun s t -> Doubling_b.route b ~src:s ~dst:t ~max_hops:200) n
    (Rng.split rng);

  Printf.printf
    "\nBoth finish lookups in O(log n) hops despite log(Delta) = %d distance\n\
     scales; the doubling measure is what lets a contact list of a few\n\
     hundred entries cover 14 orders of magnitude of latency.\n"
    (Indexed.log2_aspect_ratio idx)
