test/test_graph.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Result Ron_graph Ron_metric Ron_util
