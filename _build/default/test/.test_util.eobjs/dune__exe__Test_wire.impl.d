test/test_wire.ml: Alcotest Array Bytes Float Lazy List Printf QCheck QCheck_alcotest Ron_graph Ron_labeling Ron_metric Ron_routing Ron_util
