test/test_metric.mli:
