test/test_core.ml: Alcotest Array Float Lazy List Printf Ron_core Ron_metric Ron_util
