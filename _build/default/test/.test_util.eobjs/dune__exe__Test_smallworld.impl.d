test/test_smallworld.ml: Alcotest Array Float Lazy List Printf Ron_graph Ron_metric Ron_smallworld Ron_util
