test/test_meridian.ml: Alcotest Array Fun Lazy Printf Ron_metric Ron_routing Ron_smallworld Ron_util
