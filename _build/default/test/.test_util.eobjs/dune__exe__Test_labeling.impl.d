test/test_labeling.ml: Alcotest Array Float Lazy Printf Ron_labeling Ron_metric Ron_util
