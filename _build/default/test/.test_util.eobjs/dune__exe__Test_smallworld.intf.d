test/test_smallworld.mli:
