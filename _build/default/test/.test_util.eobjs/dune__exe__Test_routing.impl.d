test/test_routing.ml: Alcotest Array Float Lazy List Printf QCheck QCheck_alcotest Ron_graph Ron_metric Ron_routing Ron_util
