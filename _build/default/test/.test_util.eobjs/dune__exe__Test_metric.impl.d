test/test_metric.ml: Alcotest Array Float Fun Lazy List Printf QCheck QCheck_alcotest Result Ron_metric Ron_util
