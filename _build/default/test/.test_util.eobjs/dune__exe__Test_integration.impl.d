test/test_integration.ml: Alcotest Array Bytes Char Float Lazy QCheck QCheck_alcotest Ron_labeling Ron_metric Ron_routing Ron_smallworld Ron_util
