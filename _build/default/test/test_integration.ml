(* Cross-module integration tests: full pipelines over one metric, cross-
   checks between independently computed quantities, determinism, and
   metamorphic properties (scale invariance, submetric restriction). *)

module Rng = Ron_util.Rng
module Metric = Ron_metric.Metric
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
module Packing = Ron_metric.Packing
module Triangulation = Ron_labeling.Triangulation
module Dls = Ron_labeling.Dls
module On_metric = Ron_routing.On_metric
module Two_mode = Ron_routing.Two_mode
module Scheme = Ron_routing.Scheme
module Doubling_a = Ron_smallworld.Doubling_a
module Sw_model = Ron_smallworld.Sw_model

let check_bool msg b = Alcotest.(check bool) msg true b

(* One shared pipeline fixture. *)
let fixture =
  lazy
    (let idx = Indexed.create (Generators.random_cloud (Rng.create 20) ~n:70 ~dim:2) in
     let tri = Triangulation.build idx ~delta:0.25 in
     let dls = Dls.build tri in
     (idx, tri, dls))

(* ------------------------------------------------------- cross-checking *)

let test_tri_vs_dls_consistency () =
  (* The label-only D+ can only use beacons the triangulation also has, so
     it can never beat the triangulation's D+ by more than quantization,
     and both must upper-bound the true distance. *)
  let (idx, tri, dls) = Lazy.force fixture in
  let n = Indexed.size idx in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Indexed.dist idx u v in
      let tri_hi = Triangulation.estimate_plus tri u v in
      let dls_hi = Dls.estimate (Dls.label dls u) (Dls.label dls v) in
      check_bool "tri upper bounds d" (tri_hi >= d -. 1e-9);
      check_bool "dls upper bounds d" (dls_hi >= d -. 1e-9);
      check_bool "dls within quantization of tri" (dls_hi >= tri_hi -. 1e-9)
    done
  done

let test_routing_length_vs_dls_estimate () =
  (* A (1+delta)-stretch route can never be shorter than the true distance,
     and the label estimate upper-bounds the route's lower bound. *)
  let (idx, _, dls) = Lazy.force fixture in
  let scheme = On_metric.build idx ~delta:0.25 in
  let n = Indexed.size idx in
  let rng = Rng.create 21 in
  for _ = 1 to 300 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let r = On_metric.route scheme ~src:u ~dst:v in
      let d = Indexed.dist idx u v in
      let est = Dls.estimate (Dls.label dls u) (Dls.label dls v) in
      check_bool "route >= distance" (r.Scheme.length >= d -. 1e-9);
      check_bool "route within stretch of estimate"
        (r.Scheme.length <= ((1.25 /. 0.75) *. est) +. 1e-9)
    end
  done

let test_witness_is_shared_beacon () =
  let (idx, tri, _) = Lazy.force fixture in
  let n = Indexed.size idx in
  for u = 0 to n - 1 do
    let v = (u + 13) mod n in
    if u <> v then begin
      let w = Triangulation.witness tri u v in
      let mem arr x = Array.exists (( = ) x) arr in
      check_bool "witness in u's beacons" (mem (Triangulation.beacons tri u) w);
      check_bool "witness in v's beacons" (mem (Triangulation.beacons tri v) w);
      ignore idx
    end
  done

let test_packing_balls_are_hierarchy_consistent () =
  (* Packing members must honor the index's ball queries. *)
  let (idx, tri, _) = Lazy.force fixture in
  for i = 0 to Triangulation.levels tri - 1 do
    let p = Triangulation.packing tri i in
    Array.iter
      (fun b ->
        Array.iter
          (fun m ->
            check_bool "member within radius"
              (Indexed.dist idx b.Packing.center m <= b.Packing.radius +. 1e-9))
          b.Packing.members)
      (Packing.balls p)
  done

(* ---------------------------------------------------------- determinism *)

let test_deterministic_construction () =
  (* Same seed, same metric: every derived artifact must be identical. *)
  let build seed =
    let idx = Indexed.create (Generators.random_cloud (Rng.create seed) ~n:50 ~dim:2) in
    let tri = Triangulation.build idx ~delta:0.25 in
    let dls = Dls.build tri in
    let wc = Dls.wire_codec dls in
    let bytes = Array.init 50 (fun u -> fst (Dls.serialize wc (Dls.label dls u))) in
    (Triangulation.order tri, bytes)
  in
  let (o1, b1) = build 77 and (o2, b2) = build 77 in
  check_bool "order deterministic" (o1 = o2);
  check_bool "labels byte-identical" (b1 = b2)

let test_seed_changes_smallworld () =
  let idx = Indexed.create (Generators.random_cloud (Rng.create 30) ~n:60 ~dim:2) in
  let mu = Measure.create idx (Net.Hierarchy.create idx) in
  let a1 = Doubling_a.build idx mu (Rng.create 1) in
  let a2 = Doubling_a.build idx mu (Rng.create 1) in
  let a3 = Doubling_a.build idx mu (Rng.create 2) in
  check_bool "same seed, same contacts" (Doubling_a.contacts a1 = Doubling_a.contacts a2);
  check_bool "different seed, different contacts"
    (Doubling_a.contacts a1 <> Doubling_a.contacts a3)

(* ----------------------------------------------------------- metamorphic *)

let prop_triangulation_scale_invariant =
  QCheck.Test.make ~name:"triangulation D+/d is invariant under metric scaling" ~count:8
    QCheck.(int_range 12 40)
    (fun n ->
      let m = Generators.random_cloud (Rng.create (n * 3)) ~n ~dim:2 in
      let m2 = Metric.scale m 8.0 in
      let t1 = Triangulation.build (Indexed.create m) ~delta:0.25 in
      let t2 = Triangulation.build (Indexed.create m2) ~delta:0.25 in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let (_, h1) = Triangulation.estimate t1 u v in
          let (_, h2) = Triangulation.estimate t2 u v in
          if Float.abs ((8.0 *. h1) -. h2) > 1e-6 *. h2 then ok := false
        done
      done;
      !ok)

let prop_routing_scale_invariant =
  QCheck.Test.make ~name:"metric routing stretch is invariant under scaling" ~count:6
    QCheck.(int_range 12 36)
    (fun n ->
      let m = Generators.random_cloud (Rng.create (n * 5)) ~n ~dim:2 in
      let s1 = On_metric.build (Indexed.create m) ~delta:0.25 in
      let s2 = On_metric.build (Indexed.create (Metric.scale m 4.0)) ~delta:0.25 in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v then begin
            let r1 = On_metric.route s1 ~src:u ~dst:v in
            let r2 = On_metric.route s2 ~src:u ~dst:v in
            if r1.Scheme.path <> r2.Scheme.path then ok := false
          end
        done
      done;
      !ok)

let prop_dls_never_contracts_on_random_metrics =
  QCheck.Test.make ~name:"labels never contract across random metrics and deltas" ~count:6
    QCheck.(pair (int_range 12 36) (int_range 1 4))
    (fun (n, di) ->
      let delta = 0.08 *. float_of_int di in
      let idx = Indexed.create (Generators.random_cloud (Rng.create (n * 7 + di)) ~n ~dim:2) in
      let dls = Dls.build (Triangulation.build idx ~delta) in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if
            u <> v
            && Dls.estimate (Dls.label dls u) (Dls.label dls v) < Indexed.dist idx u v -. 1e-9
          then ok := false
        done
      done;
      !ok)

let prop_two_mode_delivers_on_random_metrics =
  QCheck.Test.make ~name:"two-mode scheme delivers on random metrics" ~count:5
    QCheck.(int_range 12 36)
    (fun n ->
      let idx = Indexed.create (Generators.random_cloud (Rng.create (n * 11)) ~n ~dim:2) in
      let tm = Two_mode.build idx ~delta:0.125 in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && not (Two_mode.route tm ~src:u ~dst:v).Scheme.delivered then ok := false
        done
      done;
      !ok)

let prop_smallworld_delivers_on_latency_metrics =
  QCheck.Test.make ~name:"Thm 5.2a delivers on latency metrics" ~count:5
    QCheck.(int_range 2 5)
    (fun clusters ->
      let idx =
        Indexed.create
          (Generators.clustered_latency (Rng.create (clusters * 3)) ~clusters ~per_cluster:20
             ~spread:25.0 ~access:5.0)
      in
      let mu = Measure.create idx (Net.Hierarchy.create idx) in
      let a = Doubling_a.build idx mu (Rng.create clusters) in
      let n = Indexed.size idx in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && not (Doubling_a.route a ~src:u ~dst:v ~max_hops:100).Sw_model.delivered
          then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------ failure injection *)

let test_scheme_mismatch_detected () =
  (* Labels from schemes with different prefix lengths must be rejected. *)
  let (_, _, dls_a) = Lazy.force fixture in
  let idx_b = Indexed.create (Generators.exponential_line 16) in
  let dls_b = Dls.build (Triangulation.build idx_b ~delta:0.25) in
  let la = Dls.label dls_a 3 and lb = Dls.label dls_b 4 in
  let outcome =
    try
      ignore (Dls.estimate la lb);
      `Finite
    with
    | Failure _ -> `Raised
    | Invalid_argument _ -> `Raised
  in
  check_bool "mismatch detected or harmless" (outcome = `Raised || outcome = `Finite)

let test_garbage_label_bytes () =
  (* Random bytes fed to the deserializer: must raise, never hang or return
     out-of-range indices that later crash estimation unpredictably. *)
  let (_, _, dls) = Lazy.force fixture in
  let wc = Dls.wire_codec dls in
  let rng = Rng.create 99 in
  for _ = 1 to 50 do
    let len = 1 + Rng.int rng 40 in
    let garbage = Bytes.init len (fun _ -> Char.chr (Rng.int rng 256)) in
    match Dls.deserialize wc garbage with
    | exception Invalid_argument _ -> ()
    | label -> (
      (* If it parses, estimation against a real label must either raise or
         produce a float; it must not loop. *)
      match Dls.estimate label (Dls.label dls 0) with
      | (_ : float) -> ()
      | exception Failure _ -> ()
      | exception Invalid_argument _ -> ())
  done;
  check_bool "garbage handled" true

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ron_integration"
    [
      ( "cross-checks",
        [
          Alcotest.test_case "triangulation vs labels" `Quick test_tri_vs_dls_consistency;
          Alcotest.test_case "routing vs labels" `Quick test_routing_length_vs_dls_estimate;
          Alcotest.test_case "witness is shared" `Quick test_witness_is_shared_beacon;
          Alcotest.test_case "packing consistency" `Quick test_packing_balls_are_hierarchy_consistent;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "construction is deterministic" `Quick test_deterministic_construction;
          Alcotest.test_case "seeds matter" `Quick test_seed_changes_smallworld;
        ] );
      ( "metamorphic",
        [
          qt prop_triangulation_scale_invariant;
          qt prop_routing_scale_invariant;
          qt prop_dls_never_contracts_on_random_metrics;
          qt prop_two_mode_delivers_on_random_metrics;
          qt prop_smallworld_delivers_on_latency_metrics;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "scheme mismatch" `Quick test_scheme_mismatch_detected;
          Alcotest.test_case "garbage label bytes" `Quick test_garbage_label_bytes;
        ] );
    ]
