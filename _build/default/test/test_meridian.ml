(* Tests for Meridian-style closest-node discovery (Section 6 / [57]) and
   its ring maintenance under churn, plus the Labelled_m metric routing
   scheme (Table 2 row 3). *)

module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Metric = Ron_metric.Metric
module Meridian = Ron_smallworld.Meridian
module Labelled_m = Ron_routing.Labelled_m
module Scheme = Ron_routing.Scheme

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)

let overlay_fixture =
  lazy
    (let idx = Indexed.create (Generators.random_cloud (Rng.create 4) ~n:200 ~dim:2) in
     let members = Array.init 160 Fun.id in
     let t = Meridian.build idx (Rng.create 5) ~ring_size:8 ~members in
     (idx, t))

(* ------------------------------------------------------------- queries *)

let test_members () =
  let (_, t) = Lazy.force overlay_fixture in
  check_int "member count" 160 (Array.length (Meridian.members t));
  check_bool "member" (Meridian.is_member t 0);
  check_bool "non-member" (not (Meridian.is_member t 180))

let test_ring_structure () =
  let (idx, t) = Lazy.force overlay_fixture in
  (* Every ring member of u at scale i sits in the annulus (2^(i-1), 2^i]
     (scale 0: distance <= 1... <= 2^0). *)
  Array.iter
    (fun u ->
      for i = 0 to Indexed.log2_aspect_ratio idx do
        Array.iter
          (fun v ->
            let d = Indexed.dist idx u v in
            check_bool "annulus upper" (d <= Ron_util.Bits.pow2 i +. 1e-9);
            if i > 0 then check_bool "annulus lower" (d > Ron_util.Bits.pow2 (i - 1) -. 1e-9))
          (Meridian.ring t u i)
      done)
    (Meridian.members t)

let test_ring_size_cap () =
  let (_, t) = Lazy.force overlay_fixture in
  Array.iter
    (fun u ->
      for i = 0 to 20 do
        check_bool "ring size cap" (Array.length (Meridian.ring t u i) <= 8)
      done)
    (Meridian.members t)

let test_closest_finds_near_member () =
  let (idx, t) = Lazy.force overlay_fixture in
  let rng = Rng.create 6 in
  let exact = ref 0 and total = ref 0 in
  for target = 160 to 199 do
    let start = Rng.int rng 160 in
    let r = Meridian.closest t ~start ~target in
    let truth = Meridian.exact_closest t target in
    incr total;
    if r.Meridian.found = truth then incr exact
    else begin
      (* Even on a miss the result must be a member within a small factor. *)
      check_bool "found is a member" (Meridian.is_member t r.Meridian.found);
      let a = Indexed.dist idx r.Meridian.found target in
      let b = Indexed.dist idx truth target in
      check_bool "miss within 4x" (a <= (4.0 *. b) +. 1e-9)
    end
  done;
  check_bool
    (Printf.sprintf "mostly exact (%d/%d)" !exact !total)
    (float_of_int !exact >= 0.8 *. float_of_int !total)

let test_closest_on_member_target () =
  (* Searching for a target that IS a member must find it exactly (distance
     0 beats everything). *)
  let (_, t) = Lazy.force overlay_fixture in
  let r = Meridian.closest t ~start:0 ~target:42 in
  check_int "finds the member itself" 42 r.Meridian.found

let test_closest_rejects_non_member_start () =
  let (_, t) = Lazy.force overlay_fixture in
  Alcotest.check_raises "start must be a member"
    (Invalid_argument "Meridian.closest: start is not a member") (fun () ->
      ignore (Meridian.closest t ~start:180 ~target:0))

let test_closest_hops_logarithmic () =
  let (idx, t) = Lazy.force overlay_fixture in
  let cap = 2 * Indexed.log2_aspect_ratio idx in
  for target = 160 to 199 do
    let r = Meridian.closest t ~start:0 ~target in
    check_bool "hops O(log Delta)" (r.Meridian.hops <= cap)
  done

(* --------------------------------------------------------- multi-range *)

let test_within_precision () =
  (* Every returned member must genuinely lie within the radius. *)
  let (idx, t) = Lazy.force overlay_fixture in
  let rng = Rng.create 12 in
  for target = 160 to 199 do
    let radius = 2.0 +. Rng.float rng 40.0 in
    let r = Meridian.within t ~start:0 ~target ~radius in
    Array.iter
      (fun v ->
        check_bool "precision" (Indexed.dist idx v target <= radius +. 1e-9);
        check_bool "member" (Meridian.is_member t v))
      r.Meridian.matches
  done

let test_within_recall () =
  (* Best-effort recall, like Meridian: on this fixture with ring size 8 the
     overwhelming majority of true matches must be found. *)
  let (_, t) = Lazy.force overlay_fixture in
  let rng = Rng.create 13 in
  let found = ref 0 and truth_total = ref 0 in
  for target = 160 to 199 do
    let radius = 5.0 +. Rng.float rng 40.0 in
    let r = Meridian.within t ~start:0 ~target ~radius in
    let truth = Meridian.exact_within t target radius in
    found := !found + Array.length r.Meridian.matches;
    truth_total := !truth_total + Array.length truth;
    (* Matches are a subset of the truth (precision is exact). *)
    Array.iter
      (fun v -> check_bool "subset of truth" (Array.exists (( = ) v) truth))
      r.Meridian.matches
  done;
  check_bool
    (Printf.sprintf "recall >= 90%% (%d/%d)" !found !truth_total)
    (float_of_int !found >= 0.9 *. float_of_int !truth_total)

let test_within_empty_ball () =
  let (_, t) = Lazy.force overlay_fixture in
  (* Radius so small only an exact member would match a non-member target:
     typically empty, never an error. *)
  let r = Meridian.within t ~start:0 ~target:170 ~radius:0.0001 in
  check_bool "no false positives" (Array.length r.Meridian.matches <= 1)

let test_within_rejects_negative_radius () =
  let (_, t) = Lazy.force overlay_fixture in
  Alcotest.check_raises "negative radius" (Invalid_argument "Meridian.within: negative radius")
    (fun () -> ignore (Meridian.within t ~start:0 ~target:170 ~radius:(-1.0)))

(* --------------------------------------------------------------- churn *)

let test_join_leave () =
  let idx = Indexed.create (Generators.random_cloud (Rng.create 7) ~n:120 ~dim:2) in
  let t = Meridian.build idx (Rng.create 8) ~ring_size:6 ~members:(Array.init 100 Fun.id) in
  (* Join the held-out nodes. *)
  for u = 100 to 119 do
    Meridian.join t (Rng.create u) u
  done;
  check_int "grown" 120 (Array.length (Meridian.members t));
  (* A fresh member is findable. *)
  let r = Meridian.closest t ~start:0 ~target:110 in
  check_int "joined node found" 110 r.Meridian.found;
  (* Leave: no ring may retain the departed node. *)
  for u = 0 to 49 do
    Meridian.leave t u
  done;
  check_int "shrunk" 70 (Array.length (Meridian.members t));
  Array.iter
    (fun u ->
      for i = 0 to 12 do
        Array.iter (fun v -> check_bool "no stale entries" (v >= 50)) (Meridian.ring t u i)
      done)
    (Meridian.members t);
  (* Queries still work against the shrunken overlay. *)
  let r = Meridian.closest t ~start:60 ~target:10 in
  check_bool "post-churn query settles on a member" (Meridian.is_member t r.Meridian.found)

let test_join_duplicate_rejected () =
  let (_, t) = Lazy.force overlay_fixture in
  Alcotest.check_raises "duplicate join" (Invalid_argument "Meridian.join: already a member")
    (fun () -> Meridian.join t (Rng.create 1) 0)

let test_leave_validation () =
  let idx = Indexed.create (Generators.random_cloud (Rng.create 9) ~n:10 ~dim:2) in
  let t = Meridian.build idx (Rng.create 10) ~ring_size:4 ~members:[| 0 |] in
  Alcotest.check_raises "cannot empty" (Invalid_argument "Meridian.leave: cannot empty the overlay")
    (fun () -> Meridian.leave t 0);
  Alcotest.check_raises "not a member" (Invalid_argument "Meridian.leave: not a member")
    (fun () -> Meridian.leave t 5)

(* ------------------------------------------------------------ Labelled_m *)

let test_labelled_m_all_pairs () =
  let idx = Indexed.create (Generators.random_cloud (Rng.create 11) ~n:60 ~dim:2) in
  let s = Labelled_m.build idx ~delta:0.25 in
  let n = Indexed.size idx in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let r = Labelled_m.route s ~src:u ~dst:v in
        check_bool "delivered" r.Scheme.delivered;
        check_bool "stretch" (Scheme.stretch r (Indexed.dist idx u v) <= 2.0)
      end
    done
  done

let test_labelled_m_expline () =
  let idx = Indexed.create (Generators.exponential_line 20) in
  let s = Labelled_m.build idx ~delta:0.25 in
  for u = 0 to 19 do
    for v = 0 to 19 do
      if u <> v then check_bool "delivered" (Labelled_m.route s ~src:u ~dst:v).Scheme.delivered
    done
  done;
  check_bool "degree <= n" (Labelled_m.out_degree s <= 20);
  Array.iter (fun b -> check_bool "table bits" (b > 0)) (Labelled_m.table_bits s);
  check_bool "header bits" (Labelled_m.header_bits s > 0)

let test_labelled_m_validation () =
  let idx = Indexed.create (Generators.grid2d 4 4) in
  Alcotest.check_raises "delta" (Invalid_argument "Labelled_m.build: delta must be in (0, 2/3)")
    (fun () -> ignore (Labelled_m.build idx ~delta:0.8))

let () =
  Alcotest.run "ron_meridian"
    [
      ( "overlay",
        [
          Alcotest.test_case "members" `Quick test_members;
          Alcotest.test_case "ring annuli" `Quick test_ring_structure;
          Alcotest.test_case "ring size cap" `Quick test_ring_size_cap;
        ] );
      ( "queries",
        [
          Alcotest.test_case "finds near member" `Quick test_closest_finds_near_member;
          Alcotest.test_case "member target" `Quick test_closest_on_member_target;
          Alcotest.test_case "start validation" `Quick test_closest_rejects_non_member_start;
          Alcotest.test_case "hop bound" `Quick test_closest_hops_logarithmic;
        ] );
      ( "multi-range",
        [
          Alcotest.test_case "precision" `Quick test_within_precision;
          Alcotest.test_case "recall" `Quick test_within_recall;
          Alcotest.test_case "empty ball" `Quick test_within_empty_ball;
          Alcotest.test_case "negative radius" `Quick test_within_rejects_negative_radius;
        ] );
      ( "churn",
        [
          Alcotest.test_case "join/leave" `Quick test_join_leave;
          Alcotest.test_case "duplicate join" `Quick test_join_duplicate_rejected;
          Alcotest.test_case "leave validation" `Quick test_leave_validation;
        ] );
      ( "labelled-m",
        [
          Alcotest.test_case "all pairs cloud" `Slow test_labelled_m_all_pairs;
          Alcotest.test_case "exponential line" `Quick test_labelled_m_expline;
          Alcotest.test_case "validation" `Quick test_labelled_m_validation;
        ] );
    ]
