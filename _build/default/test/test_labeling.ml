(* Tests for ron_labeling: Theorem 3.2 triangulation, Theorem 3.4 distance
   labeling, and the baselines (common beacons, trivial DLS). *)

module Rng = Ron_util.Rng
module Metric = Ron_metric.Metric
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Net = Ron_metric.Net
module Triangulation = Ron_labeling.Triangulation
module Beacon = Ron_labeling.Beacon
module Trivial_dls = Ron_labeling.Trivial_dls
module Dls = Ron_labeling.Dls

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)

let grid = lazy (Indexed.create (Generators.grid2d 7 7))
let expline = lazy (Indexed.create (Generators.exponential_line 18))
let cloud = lazy (Indexed.create (Generators.random_cloud (Rng.create 42) ~n:80 ~dim:2))
let line = lazy (Indexed.create (Metric.normalize (Generators.uniform_line 90)))

let tri_grid = lazy (Triangulation.build (Lazy.force grid) ~delta:0.25)
let tri_expline = lazy (Triangulation.build (Lazy.force expline) ~delta:0.25)
let tri_cloud = lazy (Triangulation.build (Lazy.force cloud) ~delta:0.25)

let dls_grid = lazy (Dls.build (Lazy.force tri_grid))
let dls_expline = lazy (Dls.build (Lazy.force tri_expline))
let dls_cloud = lazy (Dls.build (Lazy.force tri_cloud))

(* The theorem's guarantee with the quantization slack used by Dls. *)
let plus_bound delta = (1.0 +. (2.0 *. delta)) *. (1.0 +. (delta /. 8.0)) +. 1e-9

(* -------------------------------------------------------- Triangulation *)

let all_pairs_triangulation_check name tri idx delta =
  let n = Indexed.size idx in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Indexed.dist idx u v in
      let (lo, hi) = Triangulation.estimate tri u v in
      check_bool (name ^ ": D- <= d") (lo <= d +. 1e-9);
      check_bool (name ^ ": d <= D+") (d <= hi +. 1e-9);
      check_bool (name ^ ": D+ within (1+2delta) d") (hi <= ((1.0 +. (2.0 *. delta)) *. d) +. 1e-9);
      check_bool (name ^ ": D- within") (lo >= ((1.0 -. (2.0 *. delta)) *. d) -. 1e-9)
    done
  done

let test_tri_zero_delta_guarantee_grid () =
  all_pairs_triangulation_check "grid" (Lazy.force tri_grid) (Lazy.force grid) 0.25

let test_tri_zero_delta_guarantee_expline () =
  all_pairs_triangulation_check "expline" (Lazy.force tri_expline) (Lazy.force expline) 0.25

let test_tri_zero_delta_guarantee_cloud () =
  all_pairs_triangulation_check "cloud" (Lazy.force tri_cloud) (Lazy.force cloud) 0.25

let test_tri_self_estimate () =
  let tri = Lazy.force tri_grid in
  Alcotest.(check (pair (float 0.0) (float 0.0))) "self" (0.0, 0.0) (Triangulation.estimate tri 3 3)

let test_tri_witness () =
  let tri = Lazy.force tri_grid in
  let idx = Lazy.force grid in
  let w = Triangulation.witness tri 0 48 in
  let s = Indexed.dist idx 0 w +. Indexed.dist idx 48 w in
  let (_, hi) = Triangulation.estimate tri 0 48 in
  check_bool "witness achieves D+" (Float.abs (s -. hi) < 1e-9)

let test_tri_order_positive_and_bounded () =
  let tri = Lazy.force tri_expline in
  let n = Indexed.size (Lazy.force expline) in
  let o = Triangulation.order tri in
  check_bool "order positive" (o >= 1);
  check_bool "order at most n" (o <= n)

let test_tri_beacons_contain_xy () =
  let tri = Lazy.force tri_grid in
  let b = Triangulation.beacons tri 5 in
  let mem v = Array.exists (( = ) v) b in
  for i = 0 to Triangulation.levels tri - 1 do
    Array.iter (fun v -> check_bool "x in beacons" (mem v)) (Triangulation.x_neighbors tri 5 i);
    Array.iter (fun v -> check_bool "y in beacons" (mem v)) (Triangulation.y_neighbors tri 5 i)
  done

let test_tri_scale0_canonical () =
  (* The scale-0 X and Y sets must coincide across nodes (prefix sharing). *)
  let tri = Lazy.force tri_cloud in
  let norm a = let c = Array.copy a in Array.sort compare c; c in
  let x0 = norm (Triangulation.x_neighbors tri 0 0) in
  let y0 = norm (Triangulation.y_neighbors tri 0 0) in
  for u = 1 to Indexed.size (Lazy.force cloud) - 1 do
    check_bool "X0 canonical" (norm (Triangulation.x_neighbors tri u 0) = x0);
    check_bool "Y0 canonical" (norm (Triangulation.y_neighbors tri u 0) = y0)
  done

let test_tri_y_members_in_net () =
  let tri = Lazy.force tri_grid in
  let h = Triangulation.hierarchy tri in
  (* Y-members at every scale are net points of some level (weak sanity:
     they are at least in G_0 = everything, and scale-0 members are exactly
     a net level). *)
  let y0 = Triangulation.y_neighbors tri 0 0 in
  check_bool "scale-0 Y nonempty" (Array.length y0 > 0);
  ignore h

let test_tri_rejects_bad_delta () =
  Alcotest.check_raises "delta too big"
    (Invalid_argument "Triangulation.build: delta must be in (0, 1/2)") (fun () ->
      ignore (Triangulation.build (Lazy.force grid) ~delta:0.5))

let test_tri_label_bits_positive () =
  let tri = Lazy.force tri_grid in
  Array.iter (fun b -> check_bool "bits positive" (b > 0)) (Triangulation.label_bits tri)

let test_tri_tight_constants_shrink_order () =
  (* The E-3.2 ablation mechanism: tighter constants give smaller order. *)
  let idx = Lazy.force line in
  let full = Triangulation.build idx ~delta:0.45 in
  let tight = Triangulation.build ~radius_factor:2.0 ~net_divisor:1.0 idx ~delta:0.45 in
  check_bool "tight order smaller"
    (Triangulation.order tight < Triangulation.order full)

(* --------------------------------------------------------------- Beacon *)

let test_beacon_bounds_valid () =
  let idx = Lazy.force cloud in
  let b = Beacon.build idx (Rng.create 7) ~k:12 in
  let n = Indexed.size idx in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Indexed.dist idx u v in
      let (lo, hi) = Beacon.estimate b u v in
      check_bool "D- <= d" (lo <= d +. 1e-9);
      check_bool "d <= D+" (d <= hi +. 1e-9)
    done
  done

let test_beacon_has_bad_pairs () =
  (* The [33,50] flaw the paper fixes: with few common beacons some pairs
     get no (1+delta) guarantee. On a uniform line with k=4 beacons, close
     pairs far from all beacons are hopeless. *)
  let idx = Lazy.force line in
  let b = Beacon.build idx (Rng.create 11) ~k:4 in
  check_bool "eps > 0" (Beacon.bad_fraction b ~delta:0.25 > 0.0)

let test_beacon_more_beacons_help () =
  let idx = Lazy.force line in
  let few = Beacon.build idx (Rng.create 3) ~k:3 in
  let many = Beacon.build idx (Rng.create 3) ~k:60 in
  check_bool "more beacons, fewer bad pairs"
    (Beacon.bad_fraction many ~delta:0.25 <= Beacon.bad_fraction few ~delta:0.25)

let test_beacon_order () =
  let idx = Lazy.force grid in
  let b = Beacon.build idx (Rng.create 1) ~k:9 in
  check_int "order = k" 9 (Beacon.order b);
  check_int "beacon count" 9 (Array.length (Beacon.beacons b))

let test_beacon_k_validation () =
  Alcotest.check_raises "k too big" (Invalid_argument "Beacon.build: k out of range") (fun () ->
      ignore (Beacon.build (Lazy.force grid) (Rng.create 1) ~k:1000))

(* ---------------------------------------------------------- Trivial DLS *)

let test_trivial_exact () =
  let idx = Lazy.force grid in
  let t = Trivial_dls.build idx in
  for u = 0 to 48 do
    for v = 0 to 48 do
      check_bool "exact" (Trivial_dls.estimate t u v = Indexed.dist idx u v)
    done
  done

let test_trivial_bits_linear () =
  let idx = Lazy.force grid in
  let t = Trivial_dls.build idx in
  let bits = Trivial_dls.label_bits t in
  check_bool "Omega(n) bits" (bits.(0) >= (Indexed.size idx - 1) * 53)

(* ------------------------------------------------------------------ Dls *)

let all_pairs_dls_check name dls idx delta =
  let n = Indexed.size idx in
  let bound = plus_bound delta in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = Indexed.dist idx u v in
      let est = Dls.estimate (Dls.label dls u) (Dls.label dls v) in
      check_bool (name ^ ": never contracts") (est >= d -. 1e-9);
      check_bool (name ^ ": within bound") (est <= (bound *. d) +. 1e-9)
    done
  done

let test_dls_guarantee_grid () = all_pairs_dls_check "grid" (Lazy.force dls_grid) (Lazy.force grid) 0.25
let test_dls_guarantee_expline () =
  all_pairs_dls_check "expline" (Lazy.force dls_expline) (Lazy.force expline) 0.25
let test_dls_guarantee_cloud () = all_pairs_dls_check "cloud" (Lazy.force dls_cloud) (Lazy.force cloud) 0.25

let test_dls_self () =
  let dls = Lazy.force dls_grid in
  Alcotest.(check (float 0.0)) "self" 0.0 (Dls.estimate (Dls.label dls 3) (Dls.label dls 3))

let test_dls_symmetric () =
  let dls = Lazy.force dls_grid in
  for u = 0 to 10 do
    for v = 0 to 10 do
      let a = Dls.estimate (Dls.label dls u) (Dls.label dls v) in
      let b = Dls.estimate (Dls.label dls v) (Dls.label dls u) in
      check_bool "symmetric" (Float.abs (a -. b) < 1e-9)
    done
  done

let test_dls_zooming_sequence_shape () =
  let dls = Lazy.force dls_grid in
  let idx = Lazy.force grid in
  let tri = Dls.triangulation dls in
  for u = 0 to Indexed.size idx - 1 do
    let f = Dls.zooming_sequence dls u in
    check_int "length = levels" (Triangulation.levels tri) (Array.length f);
    (* f_ui lies within r_ui/4 of u (or is u itself at clamped levels). *)
    Array.iteri
      (fun i fi ->
        let r = Indexed.r_level idx u i in
        check_bool "zooming proximity" (Indexed.dist idx u fi <= Float.max 1.0 (r /. 4.0)))
      f;
    (* Deep scales: f converges to u itself. *)
    check_int "last element is u" u f.(Array.length f - 1)
  done

let test_dls_virtual_neighbors_contain_zoom_successors () =
  (* Claim 3.5(c): f_(u,i+1) is a virtual neighbor of f_ui. *)
  let dls = Lazy.force dls_cloud in
  let n = Indexed.size (Lazy.force cloud) in
  for u = 0 to n - 1 do
    let f = Dls.zooming_sequence dls u in
    for i = 0 to Array.length f - 2 do
      let tf = Dls.virtual_neighbors dls f.(i) in
      check_bool "claim 3.5c" (Array.exists (( = ) f.(i + 1)) tf)
    done
  done

let test_dls_label_bits_positive () =
  let dls = Lazy.force dls_grid in
  Array.iter (fun b -> check_bool "bits positive" (b > 0)) (Dls.label_bits dls);
  check_bool "max consistent"
    (Dls.max_label_bits dls = Array.fold_left max 0 (Dls.label_bits dls))

let test_dls_cross_scheme_rejected () =
  (* Failure injection: labels from different schemes must not silently
     produce an answer when their canonical prefixes differ. *)
  let dls_a = Lazy.force dls_grid in
  let idx_b = Lazy.force expline in
  let dls_b = Lazy.force dls_expline in
  ignore idx_b;
  let la = Dls.label dls_a 1 and lb = Dls.label dls_b 2 in
  let ok =
    try
      ignore (Dls.estimate la lb);
      (* Same prefix length by coincidence is possible; then the estimate is
         garbage but must still be a finite positive number, not a crash. *)
      true
    with Failure _ -> true
  in
  check_bool "mixed labels raise or stay finite" ok

let test_dls_aspect_ratio_scaling () =
  (* Theorem 3.4's point: label size grows like log log Delta, not log
     Delta. Doubling the exponent range of the exponential line (Delta
     squares, log Delta doubles) must grow the max label size by far less
     than 2x. *)
  let small = Indexed.create (Generators.exponential_line 12) in
  let big = Indexed.create (Generators.exponential_line 24) in
  let bits_of idxm = Dls.max_label_bits (Dls.build (Triangulation.build idxm ~delta:0.25)) in
  let b_small = bits_of small and b_big = bits_of big in
  (* log Delta doubles; n also doubles here so allow the (log n) factor —
     the point is to stay well under the 4x a (log n)(log Delta) scheme
     would pay, and under the 2x a pure (log Delta) scheme would pay. *)
  check_bool
    (Printf.sprintf "sub-linear growth in log Delta (%d -> %d)" b_small b_big)
    (float_of_int b_big < 1.9 *. float_of_int b_small)

let () =
  Alcotest.run "ron_labeling"
    [
      ( "triangulation",
        [
          Alcotest.test_case "(0,delta) guarantee on grid" `Quick test_tri_zero_delta_guarantee_grid;
          Alcotest.test_case "(0,delta) guarantee on exponential line" `Quick
            test_tri_zero_delta_guarantee_expline;
          Alcotest.test_case "(0,delta) guarantee on cloud" `Quick test_tri_zero_delta_guarantee_cloud;
          Alcotest.test_case "self estimate" `Quick test_tri_self_estimate;
          Alcotest.test_case "witness" `Quick test_tri_witness;
          Alcotest.test_case "order sane" `Quick test_tri_order_positive_and_bounded;
          Alcotest.test_case "beacons contain X and Y" `Quick test_tri_beacons_contain_xy;
          Alcotest.test_case "scale-0 canonical" `Quick test_tri_scale0_canonical;
          Alcotest.test_case "Y sets sane" `Quick test_tri_y_members_in_net;
          Alcotest.test_case "delta validation" `Quick test_tri_rejects_bad_delta;
          Alcotest.test_case "label bits" `Quick test_tri_label_bits_positive;
          Alcotest.test_case "constant ablation shrinks order" `Quick
            test_tri_tight_constants_shrink_order;
        ] );
      ( "beacon-baseline",
        [
          Alcotest.test_case "bounds valid" `Quick test_beacon_bounds_valid;
          Alcotest.test_case "bad pairs exist" `Quick test_beacon_has_bad_pairs;
          Alcotest.test_case "more beacons help" `Quick test_beacon_more_beacons_help;
          Alcotest.test_case "order" `Quick test_beacon_order;
          Alcotest.test_case "k validation" `Quick test_beacon_k_validation;
        ] );
      ( "trivial-dls",
        [
          Alcotest.test_case "exact" `Quick test_trivial_exact;
          Alcotest.test_case "linear bits" `Quick test_trivial_bits_linear;
        ] );
      ( "dls",
        [
          Alcotest.test_case "guarantee on grid" `Slow test_dls_guarantee_grid;
          Alcotest.test_case "guarantee on exponential line" `Quick test_dls_guarantee_expline;
          Alcotest.test_case "guarantee on cloud" `Slow test_dls_guarantee_cloud;
          Alcotest.test_case "self" `Quick test_dls_self;
          Alcotest.test_case "symmetric" `Quick test_dls_symmetric;
          Alcotest.test_case "zooming sequence shape" `Quick test_dls_zooming_sequence_shape;
          Alcotest.test_case "claim 3.5c" `Quick test_dls_virtual_neighbors_contain_zoom_successors;
          Alcotest.test_case "label bits" `Quick test_dls_label_bits_positive;
          Alcotest.test_case "cross-scheme failure injection" `Quick test_dls_cross_scheme_rejected;
          Alcotest.test_case "log log Delta scaling" `Slow test_dls_aspect_ratio_scaling;
        ] );
    ]
