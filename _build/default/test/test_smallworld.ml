(* Tests for ron_smallworld: Theorem 5.2(a)/(b), Theorem 5.5, STRUCTURES
   (Section 5.2) and the Kleinberg grid baseline. *)

module Rng = Ron_util.Rng
module Metric = Ron_metric.Metric
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
module Graph_gen = Ron_graph.Graph_gen
module Sp_metric = Ron_graph.Sp_metric
module Sw_model = Ron_smallworld.Sw_model
module Doubling_a = Ron_smallworld.Doubling_a
module Doubling_b = Ron_smallworld.Doubling_b
module Single_link = Ron_smallworld.Single_link
module Structures = Ron_smallworld.Structures
module Kleinberg_grid = Ron_smallworld.Kleinberg_grid

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)

let fixture m =
  let idx = Indexed.create m in
  (idx, Measure.create idx (Net.Hierarchy.create idx))

let grid_f = lazy (fixture (Generators.grid2d 9 9))
let expline_f = lazy (fixture (Generators.exponential_line 28))

let all_queries name route n max_hops =
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let r = route u v in
        check_bool (Printf.sprintf "%s: %d->%d delivered" name u v) r.Sw_model.delivered;
        check_bool (name ^ ": within budget") (r.Sw_model.hops <= max_hops)
      end
    done
  done

(* ------------------------------------------------------------- simulator *)

let test_sw_route_trivial () =
  let idx = Indexed.create (Generators.uniform_line 5) in
  (* Chain contacts: i -> i+1. *)
  let contacts = Array.init 5 (fun i -> if i < 4 then [| i + 1 |] else [||]) in
  let r = Sw_model.route idx ~contacts ~policy:Sw_model.Greedy ~src:0 ~dst:4 ~max_hops:10 in
  check_bool "delivered" r.Sw_model.delivered;
  check_int "hops" 4 r.Sw_model.hops;
  Alcotest.(check (list int)) "path" [ 0; 1; 2; 3; 4 ] r.Sw_model.path

let test_sw_route_no_contacts () =
  let idx = Indexed.create (Generators.uniform_line 3) in
  let contacts = [| [||]; [||]; [||] |] in
  let r = Sw_model.route idx ~contacts ~policy:Sw_model.Greedy ~src:0 ~dst:2 ~max_hops:10 in
  check_bool "fails loudly" (not r.Sw_model.delivered)

let test_sw_route_hop_budget () =
  let idx = Indexed.create (Generators.uniform_line 4) in
  (* 0 <-> 1 oscillation cannot happen under greedy (it always moves toward
     the target), but a budget of 0 must stop immediately. *)
  let contacts = Array.init 4 (fun i -> if i < 3 then [| i + 1 |] else [||]) in
  let r = Sw_model.route idx ~contacts ~policy:Sw_model.Greedy ~src:0 ~dst:3 ~max_hops:1 in
  check_bool "budget respected" (not r.Sw_model.delivered && r.Sw_model.hops = 1)

let test_sw_out_degree_stats () =
  let contacts = [| [| 1; 1; 2; 0 |]; [| 0 |]; [||] |] in
  let (mx, mean) = Sw_model.out_degree_stats contacts in
  check_int "max distinct (self excluded)" 2 mx;
  check_bool "mean" (Float.abs (mean -. 1.0) < 1e-9)

let test_sidestep_policy_shape () =
  (* Build a situation where greedy makes no good progress but a sidestep
     contact exists: u=0 at position 0, target t at 100, contacts of 0 are
     {1 (position 1), 2 (position 90)}; d(0,t)=100. The greedy choice (90)
     is within d/4 = 25 of t? d(90,100)=10 <= 25, so greedy fires. Make it
     75 instead: d(75,100)=25 <= 25 still greedy. Use 60: d=40 > 25, so
     sidestep picks the farthest contact within distance 100: node at 60. *)
  let xs = [| 0.0; 1.0; 60.0; 100.0 |] in
  let m = Metric.create ~name:"line4" 4 (fun u v -> Float.abs (xs.(u) -. xs.(v))) in
  let idx = Indexed.create m in
  let contacts = [| [| 1; 2 |]; [||]; [| 3 |]; [||] |] in
  let r = Sw_model.route idx ~contacts ~policy:Sw_model.Sidestep ~src:0 ~dst:3 ~max_hops:5 in
  check_bool "delivered" r.Sw_model.delivered;
  check_int "one nongreedy step" 1 r.Sw_model.nongreedy_hops;
  Alcotest.(check (list int)) "sidestep path" [ 0; 2; 3 ] r.Sw_model.path

(* ---------------------------------------------------------- Theorem 5.2a *)

let test_a_grid_all_queries () =
  let (idx, mu) = Lazy.force grid_f in
  let a = Doubling_a.build idx mu (Rng.create 5) in
  all_queries "5.2a grid" (fun u v -> Doubling_a.route a ~src:u ~dst:v ~max_hops:60)
    (Indexed.size idx) 60

let test_a_expline_all_queries () =
  (* The headline: O(log n) hops even with Delta = 2^(n-1). *)
  let (idx, mu) = Lazy.force expline_f in
  let a = Doubling_a.build idx mu (Rng.create 6) in
  let n = Indexed.size idx in
  let budget = 4 * Indexed.log2_size idx in
  all_queries "5.2a expline" (fun u v -> Doubling_a.route a ~src:u ~dst:v ~max_hops:budget) n budget

let test_a_multiple_seeds () =
  let (idx, mu) = Lazy.force grid_f in
  List.iter
    (fun seed ->
      let a = Doubling_a.build idx mu (Rng.create seed) in
      let rng = Rng.create (seed * 7) in
      for _ = 1 to 50 do
        let u = Rng.int rng (Indexed.size idx) and v = Rng.int rng (Indexed.size idx) in
        if u <> v then
          check_bool "delivered across seeds"
            (Doubling_a.route a ~src:u ~dst:v ~max_hops:60).Sw_model.delivered
      done)
    [ 1; 2; 3; 4; 5 ]

let test_a_contacts_structure () =
  let (idx, mu) = Lazy.force grid_f in
  let a = Doubling_a.build idx mu (Rng.create 9) in
  let n = Indexed.size idx in
  for u = 0 to n - 1 do
    check_bool "x contacts nonempty" (Array.length (Doubling_a.x_contacts a u) > 0);
    check_bool "y contacts nonempty" (Array.length (Doubling_a.y_contacts a u) > 0)
  done;
  let (dmax, dmean) = Doubling_a.out_degree a in
  check_bool "degree sane" (dmax >= 1 && dmean > 0.0 && dmax < n)

let test_a_requires_normalized () =
  let m = Metric.create ~name:"tiny" 3 (fun u v -> if u = v then 0.0 else 0.5) in
  let idx = Indexed.create m in
  let (idx_ok, mu) = Lazy.force grid_f in
  ignore idx_ok;
  Alcotest.check_raises "normalized required"
    (Invalid_argument "Doubling_a.build: metric must be normalized") (fun () ->
      ignore (Doubling_a.build idx mu (Rng.create 1)))

(* ---------------------------------------------------------- Theorem 5.2b *)

let test_b_expline_all_queries () =
  let (idx, mu) = Lazy.force expline_f in
  let b = Doubling_b.build idx mu (Rng.create 15) in
  let n = Indexed.size idx in
  let budget = 6 * Indexed.log2_size idx in
  all_queries "5.2b expline" (fun u v -> Doubling_b.route b ~src:u ~dst:v ~max_hops:budget) n budget

let test_b_grid_all_queries () =
  let (idx, mu) = Lazy.force grid_f in
  let b = Doubling_b.build idx mu (Rng.create 16) in
  all_queries "5.2b grid" (fun u v -> Doubling_b.route b ~src:u ~dst:v ~max_hops:60)
    (Indexed.size idx) 60

let test_b_z_contacts_cover_annuli () =
  let (idx, mu) = Lazy.force expline_f in
  let b = Doubling_b.build idx mu (Rng.create 17) in
  (* On the exponential line every node must get several Z contacts (the
     annuli up to Delta are numerous). *)
  let n = Indexed.size idx in
  for u = 0 to n - 1 do
    check_bool "z contacts exist" (Array.length (Doubling_b.z_contacts b u) >= 1)
  done

let test_b_pruned_y_smaller_than_full_y () =
  (* At a fixed large-Delta fixture the pruned-Y construction of part (b)
     must not sample more distance scales than part (a)'s full Y per
     cardinality scale window; weak form: both models are buildable and b's
     y-contact multiset is nonempty. *)
  let (idx, mu) = Lazy.force expline_f in
  let b = Doubling_b.build idx mu (Rng.create 18) in
  check_bool "pruned y nonempty" (Array.length (Doubling_b.y_contacts b 0) >= 1)

(* ----------------------------------------------------------- Theorem 5.5 *)

let test_single_link_grid () =
  let sp = Sp_metric.create (Graph_gen.grid 9 9) in
  let idx = Indexed.create (Metric.normalize (Sp_metric.metric sp)) in
  let mu = Measure.create idx (Net.Hierarchy.create idx) in
  let sl = Single_link.build sp mu (Rng.create 21) in
  let n = Indexed.size idx in
  (* 2^O(alpha) log^2 Delta hops; the diameter is 16 so log Delta = 4, give
     a generous constant. *)
  all_queries "5.5 grid" (fun u v -> Single_link.route sl ~src:u ~dst:v ~max_hops:300) n 300

let test_single_link_one_contact () =
  let sp = Sp_metric.create (Graph_gen.grid 6 6) in
  let idx = Indexed.create (Metric.normalize (Sp_metric.metric sp)) in
  let mu = Measure.create idx (Net.Hierarchy.create idx) in
  let sl = Single_link.build sp mu (Rng.create 22) in
  for u = 0 to 35 do
    let c = Single_link.contacts sl in
    (* local degree (<=4) + exactly one long contact *)
    check_bool "degree <= 5" (Array.length c.(u) <= 5);
    check_bool "long contact valid" (Single_link.long_contact sl u >= 0)
  done

(* -------------------------------------------------- STRUCTURES (Sec 5.2) *)

let structures_fixture =
  lazy
    (let idx = Indexed.create (Metric.normalize (Generators.uniform_line 64)) in
     (idx, Structures.build idx (Rng.create 31)))

let test_structures_x_uv_properties () =
  let (idx, s) = Lazy.force structures_fixture in
  let n = Indexed.size idx in
  for u = 0 to n - 1 do
    check_int "x_uu = 1" 1 (Structures.x_uv s u u);
    for v = 0 to n - 1 do
      if v <> u then begin
        let x = Structures.x_uv s u v in
        check_bool "x >= 2" (x >= 2);
        check_bool "x <= n" (x <= n);
        check_bool "symmetric" (x = Structures.x_uv s v u)
      end
    done
  done

let test_structures_x_uv_line_value () =
  (* On the uniform line, the smallest ball containing u and v has
     |u - v| + 1 nodes (center mid-way, interior nodes included) except at
     the boundary; sanity-check adjacent and far pairs. *)
  let (_, s) = Lazy.force structures_fixture in
  check_int "adjacent" 2 (Structures.x_uv s 10 11);
  check_bool "far pair large" (Structures.x_uv s 0 63 >= 32)

let test_structures_queries () =
  let (idx, s) = Lazy.force structures_fixture in
  let n = Indexed.size idx in
  let rng = Rng.create 33 in
  let delivered = ref 0 and total = ref 0 in
  for _ = 1 to 300 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      incr total;
      let r = Structures.route s ~src:u ~dst:v ~max_hops:100 in
      if r.Sw_model.delivered then incr delivered
    end
  done;
  (* STRUCTURES has Theta(log^2 n) contacts: on a UL-constrained line all
     (or almost all) queries complete. *)
  check_bool "most queries complete" (float_of_int !delivered >= 0.95 *. float_of_int !total)

let test_structures_probability_profile () =
  (* pi_u(v) * x_uv should be flat across v (by construction). *)
  let (idx, s) = Lazy.force structures_fixture in
  let n = Indexed.size idx in
  let u = 20 in
  let base = Structures.contact_probability s u 21 *. float_of_int (Structures.x_uv s u 21) in
  for v = 0 to n - 1 do
    if v <> u then begin
      let p = Structures.contact_probability s u v *. float_of_int (Structures.x_uv s u v) in
      check_bool "flat profile" (Float.abs (p -. base) < 1e-12)
    end
  done

(* --------------------------------------------------------- Kleinberg grid *)

let test_kleinberg_torus_distance () =
  let kg = Kleinberg_grid.build ~side:8 (Rng.create 41) in
  check_int "wraps x" 1 (Kleinberg_grid.dist kg 0 7);
  (* node 56 = (0,7): one wrap step in y; node 32 = (0,4): the y diameter. *)
  check_int "wraps y" 1 (Kleinberg_grid.dist kg 0 56);
  check_int "y diameter" 4 (Kleinberg_grid.dist kg 0 32)

let test_kleinberg_queries_complete () =
  let kg = Kleinberg_grid.build ~q:2 ~side:10 (Rng.create 42) in
  let n = Kleinberg_grid.size kg in
  let rng = Rng.create 43 in
  for _ = 1 to 400 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then
      check_bool "delivered"
        (Kleinberg_grid.route kg ~src:u ~dst:v ~max_hops:200).Sw_model.delivered
  done

let test_kleinberg_local_edges_present () =
  let kg = Kleinberg_grid.build ~side:5 (Rng.create 44) in
  let c = Kleinberg_grid.contacts kg in
  check_int "4 locals + 1 long" 5 (Array.length c.(0))

(* Theorem 5.4(b): on a UL-constrained metric the 5.2b router never needs
   its non-greedy step. *)
let test_54_no_nongreedy_on_ul_metric () =
  let idx = Indexed.create (Metric.normalize (Generators.ring 64)) in
  let mu = Measure.create idx (Net.Hierarchy.create idx) in
  let b = Doubling_b.build idx mu (Rng.create 51) in
  let n = Indexed.size idx in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let r = Doubling_b.route b ~src:u ~dst:v ~max_hops:100 in
        check_bool "delivered" r.Sw_model.delivered;
        check_int "greedy only (Thm 5.4b)" 0 r.Sw_model.nongreedy_hops
      end
    done
  done

let () =
  Alcotest.run "ron_smallworld"
    [
      ( "simulator",
        [
          Alcotest.test_case "chain route" `Quick test_sw_route_trivial;
          Alcotest.test_case "no contacts fails loudly" `Quick test_sw_route_no_contacts;
          Alcotest.test_case "hop budget" `Quick test_sw_route_hop_budget;
          Alcotest.test_case "degree stats" `Quick test_sw_out_degree_stats;
          Alcotest.test_case "sidestep policy" `Quick test_sidestep_policy_shape;
        ] );
      ( "thm52a",
        [
          Alcotest.test_case "grid all queries" `Quick test_a_grid_all_queries;
          Alcotest.test_case "exponential line all queries" `Quick test_a_expline_all_queries;
          Alcotest.test_case "multiple seeds" `Quick test_a_multiple_seeds;
          Alcotest.test_case "contact structure" `Quick test_a_contacts_structure;
          Alcotest.test_case "normalization required" `Quick test_a_requires_normalized;
        ] );
      ( "thm52b",
        [
          Alcotest.test_case "exponential line all queries" `Quick test_b_expline_all_queries;
          Alcotest.test_case "grid all queries" `Quick test_b_grid_all_queries;
          Alcotest.test_case "z contacts cover annuli" `Quick test_b_z_contacts_cover_annuli;
          Alcotest.test_case "pruned y nonempty" `Quick test_b_pruned_y_smaller_than_full_y;
        ] );
      ( "thm55",
        [
          Alcotest.test_case "grid queries" `Quick test_single_link_grid;
          Alcotest.test_case "exactly one long contact" `Quick test_single_link_one_contact;
        ] );
      ( "structures",
        [
          Alcotest.test_case "x_uv properties" `Quick test_structures_x_uv_properties;
          Alcotest.test_case "x_uv line values" `Quick test_structures_x_uv_line_value;
          Alcotest.test_case "queries" `Quick test_structures_queries;
          Alcotest.test_case "probability profile" `Quick test_structures_probability_profile;
        ] );
      ( "kleinberg",
        [
          Alcotest.test_case "torus distance" `Quick test_kleinberg_torus_distance;
          Alcotest.test_case "queries complete" `Quick test_kleinberg_queries_complete;
          Alcotest.test_case "contact counts" `Quick test_kleinberg_local_edges_present;
        ] );
      ("thm54", [ Alcotest.test_case "greedy-only on UL metrics" `Quick test_54_no_nongreedy_on_ul_metric ]);
    ]
