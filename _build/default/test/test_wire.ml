(* Tests for the bit-level wire formats: Bitio, Qfloat serialization, the
   Theorem 3.4 label codec, and the Theorem 2.1 routing-label codec. These
   materialize the paper's bit-counting claims as real bitstrings. *)

module Rng = Ron_util.Rng
module Bitio = Ron_util.Bitio
module Qfloat = Ron_util.Qfloat
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Triangulation = Ron_labeling.Triangulation
module Dls = Ron_labeling.Dls
module Basic = Ron_routing.Basic
module Sp_metric = Ron_graph.Sp_metric
module Graph_gen = Ron_graph.Graph_gen
module Scheme = Ron_routing.Scheme

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)

(* ---------------------------------------------------------------- Bitio *)

let test_bitio_roundtrip_fields () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.bits w 5 ~width:3;
  Bitio.Writer.bool w true;
  Bitio.Writer.bits w 1023 ~width:10;
  Bitio.Writer.bits w 0 ~width:7;
  Bitio.Writer.bool w false;
  check_int "length" (3 + 1 + 10 + 7 + 1) (Bitio.Writer.length w);
  let r = Bitio.Reader.of_writer w in
  check_int "field 1" 5 (Bitio.Reader.bits r ~width:3);
  check_bool "field 2" (Bitio.Reader.bool r);
  check_int "field 3" 1023 (Bitio.Reader.bits r ~width:10);
  check_int "field 4" 0 (Bitio.Reader.bits r ~width:7);
  check_bool "field 5" (not (Bitio.Reader.bool r));
  check_int "drained" 0 (Bitio.Reader.remaining r)

let test_bitio_rejects_bad_values () =
  let w = Bitio.Writer.create () in
  Alcotest.check_raises "too wide" (Invalid_argument "Bitio.Writer.bits: value too wide")
    (fun () -> Bitio.Writer.bits w 8 ~width:3);
  Alcotest.check_raises "negative" (Invalid_argument "Bitio.Writer.bits: negative value")
    (fun () -> Bitio.Writer.bits w (-1) ~width:3)

let test_bitio_truncation_detected () =
  let w = Bitio.Writer.create () in
  Bitio.Writer.bits w 42 ~width:6;
  let r = Bitio.Reader.of_writer w in
  ignore (Bitio.Reader.bits r ~width:6);
  Alcotest.check_raises "out of bits" (Invalid_argument "Bitio.Reader: out of bits") (fun () ->
      ignore (Bitio.Reader.bits r ~width:1))

let prop_bitio_roundtrip =
  QCheck.Test.make ~name:"bitio roundtrips random field sequences" ~count:300
    QCheck.(small_list (pair (int_bound 61) (int_bound 1_000_000)))
    (fun fields ->
      let fields =
        List.map
          (fun (width, v) ->
            let width = max 1 width in
            let v = if width >= 62 then v else v land ((1 lsl width) - 1) in
            (width, v))
          fields
      in
      let w = Bitio.Writer.create () in
      List.iter (fun (width, v) -> Bitio.Writer.bits w v ~width) fields;
      let r = Bitio.Reader.of_writer w in
      List.for_all (fun (width, v) -> Bitio.Reader.bits r ~width = v) fields)

(* --------------------------------------------------------- Qfloat wire *)

let prop_qfloat_wire_roundtrip =
  QCheck.Test.make ~name:"qfloat write/read = quantize" ~count:1000
    QCheck.(float_range 0.0 100_000.0)
    (fun x ->
      let c = Qfloat.codec ~mantissa_bits:6 ~max_exponent:30 in
      let w = Bitio.Writer.create () in
      Qfloat.write c w x;
      let r = Bitio.Reader.of_writer w in
      Bitio.Writer.length w = Qfloat.bits c && Qfloat.read c r = Qfloat.quantize c x)

(* ------------------------------------------------------- Dls label wire *)

let dls_fixture =
  lazy
    (let idx = Indexed.create (Generators.random_cloud (Rng.create 3) ~n:60 ~dim:2) in
     let tri = Triangulation.build idx ~delta:0.25 in
     (idx, Dls.build tri))

let test_dls_label_roundtrip_estimates () =
  let (idx, dls) = Lazy.force dls_fixture in
  let wc = Dls.wire_codec dls in
  let n = Indexed.size idx in
  let relabel u =
    let (bytes, _) = Dls.serialize wc (Dls.label dls u) in
    Dls.deserialize wc bytes
  in
  let wire = Array.init n relabel in
  for u = 0 to n - 1 do
    for v = u to n - 1 do
      let a = Dls.estimate (Dls.label dls u) (Dls.label dls v) in
      let b = Dls.estimate wire.(u) wire.(v) in
      check_bool "estimate identical through the wire" (Float.abs (a -. b) < 1e-12)
    done
  done

let test_dls_label_id_preserved () =
  let (_, dls) = Lazy.force dls_fixture in
  let wc = Dls.wire_codec dls in
  for u = 0 to 20 do
    let (bytes, bits) = Dls.serialize wc (Dls.label dls u) in
    check_bool "bit length matches bytes" (8 * Bytes.length bytes >= bits && bits > 0);
    check_int "id preserved" u (Dls.label_of_id (Dls.deserialize wc bytes))
  done

let test_dls_wire_close_to_accounting () =
  (* The serialized length must track the label_bits accounting: the wire
     adds only small count fields. *)
  let (_, dls) = Lazy.force dls_fixture in
  let wc = Dls.wire_codec dls in
  let acc = Dls.label_bits dls in
  Array.iteri
    (fun u bits_acc ->
      let (_, bits_wire) = Dls.serialize wc (Dls.label dls u) in
      check_bool
        (Printf.sprintf "wire %d vs accounting %d" bits_wire bits_acc)
        (float_of_int bits_wire <= (1.35 *. float_of_int bits_acc) +. 512.0))
    acc

let test_dls_truncated_label_rejected () =
  let (_, dls) = Lazy.force dls_fixture in
  let wc = Dls.wire_codec dls in
  let (bytes, _) = Dls.serialize wc (Dls.label dls 5) in
  let truncated = Bytes.sub bytes 0 (Bytes.length bytes / 2) in
  let ok =
    try
      ignore (Dls.deserialize wc truncated);
      (* A truncation that happens to fall beyond the last field can parse;
         anything else must raise, never loop or crash. *)
      true
    with Invalid_argument _ -> true
  in
  check_bool "truncation handled loudly" ok

(* ----------------------------------------------------- Basic label wire *)

let test_basic_label_roundtrip_routes () =
  let sp = Sp_metric.create (Graph_gen.grid 6 6) in
  let b = Basic.build sp ~delta:0.25 in
  for dst = 0 to 35 do
    let (bytes, bits) = Basic.serialize_label b dst in
    check_bool "bits positive" (bits > 0);
    let header = Basic.deserialize_label b bytes in
    for src = 0 to 35 do
      if src <> dst then begin
        let r1 = Basic.route b ~src ~dst in
        let r2 = Basic.route_header b ~src header in
        check_bool "delivered from wire label" r2.Scheme.delivered;
        check_bool "same path length" (Float.abs (r1.Scheme.length -. r2.Scheme.length) < 1e-9)
      end
    done
  done

let test_basic_label_wire_matches_accounting () =
  let sp = Sp_metric.create (Graph_gen.grid 6 6) in
  let b = Basic.build sp ~delta:0.25 in
  let acc = Basic.label_bits b in
  for dst = 0 to 35 do
    let (_, bits) = Basic.serialize_label b dst in
    check_int "wire = accounting" acc.(dst) bits
  done

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ron_wire"
    [
      ( "bitio",
        [
          Alcotest.test_case "field roundtrip" `Quick test_bitio_roundtrip_fields;
          Alcotest.test_case "bad values rejected" `Quick test_bitio_rejects_bad_values;
          Alcotest.test_case "truncation detected" `Quick test_bitio_truncation_detected;
          qt prop_bitio_roundtrip;
        ] );
      ("qfloat-wire", [ qt prop_qfloat_wire_roundtrip ]);
      ( "dls-wire",
        [
          Alcotest.test_case "estimates identical through the wire" `Slow
            test_dls_label_roundtrip_estimates;
          Alcotest.test_case "id preserved" `Quick test_dls_label_id_preserved;
          Alcotest.test_case "wire close to accounting" `Quick test_dls_wire_close_to_accounting;
          Alcotest.test_case "truncation handled" `Quick test_dls_truncated_label_rejected;
        ] );
      ( "basic-wire",
        [
          Alcotest.test_case "routes from wire labels" `Slow test_basic_label_roundtrip_routes;
          Alcotest.test_case "wire = accounting" `Quick test_basic_label_wire_matches_accounting;
        ] );
    ]
