.PHONY: all build test check bench bench-json trace-smoke fault-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate plus a smoke run of the JSON perf pipeline (tiny sizes so it
# stays fast; the committed BENCH_*.json files use the default 500,1000,2000).
check: build test
	dune exec bench/main.exe -- esub --json /tmp/ron_bench_smoke.json --sizes 100,200

bench:
	dune exec bench/main.exe

bench-json:
	dune exec bench/main.exe -- --json BENCH_$$(date +%Y-%m-%d).json

# Observability smoke: trace a routing run, then validate every JSONL event.
trace-smoke: build
	dune exec bin/ron_cli.exe -- route -m grid -n 64 -p 200 \
	  --trace /tmp/ron_trace_smoke.jsonl --metrics-out /tmp/ron_metrics_smoke.json
	dune exec bin/trace_check.exe /tmp/ron_trace_smoke.jsonl

# Fault smoke: a small fault-injection sweep (crashed nodes + drops + dead
# links with graceful-degradation fallbacks), then validate every JSONL
# trace event the faulty run emitted.
fault-smoke: build
	dune exec bin/ron_cli.exe -- fault -m grid -n 64 -p 200 \
	  --crash 0.08 --drop 0.02 --dead-links 0.02 \
	  --trace /tmp/ron_fault_smoke.jsonl --metrics-out /tmp/ron_fault_metrics.json
	dune exec bin/trace_check.exe /tmp/ron_fault_smoke.jsonl

clean:
	dune clean
