.PHONY: all build test check bench bench-json bench-diff scale-smoke trace-smoke fault-smoke churn-smoke profile-smoke telemetry-smoke serve-smoke slo-smoke clean

# Relative slowdown tolerated by bench-diff before a timing key fails
# (0.5 = 50% slower); override per-run: make bench-diff RON_BENCH_DIFF_THRESHOLD=1.0
RON_BENCH_DIFF_THRESHOLD ?= 0.5
export RON_BENCH_DIFF_THRESHOLD

# Committed baseline that bench-diff compares against.
BENCH_BASELINE ?= BENCH_2026-08-08.json

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate plus a smoke run of the JSON perf pipeline (tiny sizes so it
# stays fast; the committed BENCH_*.json files use the default 500,1000,2000).
check: build test
	dune exec bench/main.exe -- esub --json /tmp/ron_bench_smoke.json --sizes 100,200

bench:
	dune exec bench/main.exe

bench-json:
	dune exec bench/main.exe -- --json BENCH_$$(date +%Y-%m-%d).json

# Regression gate: measure a fresh (small) report and diff it against the
# committed baseline. Timing keys use RON_BENCH_DIFF_THRESHOLD; the
# deterministic keys (stretch, hops, counter deltas, table bits) must
# match exactly; sizes missing from either file are skipped.
bench-diff: build
	dune exec bench/main.exe -- esub --json /tmp/ron_bench_fresh.json --sizes 200,400
	dune exec bin/bench_diff.exe -- $(BENCH_BASELINE) /tmp/ron_bench_fresh.json \
	  --out /tmp/ron_bench_diff_verdict.json

# Scaling smoke: the near-linear pipeline (streamed torus -> on-demand
# oracle -> landmark labels -> sampled stretch) at n = 10^5, under a hard
# wall-clock budget, then diffed warn-only against the committed baseline
# (timing keys use the threshold; the deterministic label/stretch keys must
# match exactly; peak_rss_kb is recorded but not diffed).
SCALE_SMOKE_N ?= 100000
SCALE_SMOKE_BUDGET_S ?= 300
scale-smoke: build
	timeout $(SCALE_SMOKE_BUDGET_S) dune exec bench/main.exe -- \
	  --json /tmp/ron_scale_smoke.json --scale-only --scale $(SCALE_SMOKE_N)
	dune exec bin/bench_diff.exe -- $(BENCH_BASELINE) /tmp/ron_scale_smoke.json \
	  --warn-only --out /tmp/ron_scale_smoke_verdict.json

# Observability smoke: trace a routing run, then validate every JSONL event.
trace-smoke: build
	dune exec bin/ron_cli.exe -- route -m grid -n 64 -p 200 \
	  --trace /tmp/ron_trace_smoke.jsonl --metrics-out /tmp/ron_metrics_smoke.json
	dune exec bin/trace_check.exe /tmp/ron_trace_smoke.jsonl

# Fault smoke: a small fault-injection sweep (crashed nodes + drops + dead
# links with graceful-degradation fallbacks), then validate every JSONL
# trace event the faulty run emitted.
fault-smoke: build
	dune exec bin/ron_cli.exe -- fault -m grid -n 64 -p 200 \
	  --crash 0.08 --drop 0.02 --dead-links 0.02 \
	  --trace /tmp/ron_fault_smoke.jsonl --metrics-out /tmp/ron_fault_metrics.json
	dune exec bin/trace_check.exe /tmp/ron_fault_smoke.jsonl

# Churn smoke: the dynamic-membership sweep at a reduced landmark size,
# run at RON_JOBS=1 and 4 — the outputs must be byte-identical (the
# schedule and every repair are sequential seeded hashes) and the repair
# must stay incremental (churn.rebuilds = 0). Then one CLI run composing
# churn with per-hop drops. Outputs land in /tmp for CI to archive.
CHURN_SMOKE_N ?= 2000
churn-smoke: build
	RON_CHURN_N=$(CHURN_SMOKE_N) RON_JOBS=1 dune exec bench/main.exe -- churn \
	  > /tmp/ron_churn_smoke_j1.txt
	RON_CHURN_N=$(CHURN_SMOKE_N) RON_JOBS=4 dune exec bench/main.exe -- churn \
	  > /tmp/ron_churn_smoke_j4.txt
	cmp /tmp/ron_churn_smoke_j1.txt /tmp/ron_churn_smoke_j4.txt
	grep -q 'churn.rebuilds = 0' /tmp/ron_churn_smoke_j1.txt
	dune exec bin/ron_cli.exe -- churn -m grid -n 100 -p 300 \
	  --join-rate 0.05 --leave-rate 0.05 --crash 0 --drop 0.0125 --dead-links 0 \
	  | tee /tmp/ron_churn_smoke_cli.txt
	grep -q 'repair:' /tmp/ron_churn_smoke_cli.txt

# Telemetry smoke: the n = 10^5 scale run with the runtime sampler on,
# then validate the snapshot series (seq/ts monotone, typed sections) and
# render the per-series report. The JSONL lands in /tmp for CI to archive.
TELEMETRY_SMOKE_N ?= 100000
TELEMETRY_SMOKE_INTERVAL_MS ?= 200
telemetry-smoke: build
	timeout $(SCALE_SMOKE_BUDGET_S) dune exec bench/main.exe -- \
	  --json /tmp/ron_telemetry_smoke_bench.json --scale-only \
	  --scale $(TELEMETRY_SMOKE_N) \
	  --telemetry /tmp/ron_telemetry_smoke.jsonl \
	  --telemetry-interval $(TELEMETRY_SMOKE_INTERVAL_MS)
	dune exec bin/trace_check.exe -- --telemetry /tmp/ron_telemetry_smoke.jsonl
	dune exec bin/telemetry_report.exe -- /tmp/ron_telemetry_smoke.jsonl
	dune exec bin/telemetry_report.exe -- /tmp/ron_telemetry_smoke.jsonl --json \
	  > /tmp/ron_telemetry_smoke_report.json
	grep -q '"rss_kb"' /tmp/ron_telemetry_smoke_report.json
	grep -q '"gc.major_words"' /tmp/ron_telemetry_smoke_report.json
	grep -q '"gauge:oracle.rows_cached"' /tmp/ron_telemetry_smoke_report.json

# Serving smoke: freeze a scheme into an off-heap snapshot, serve a seeded
# Zipf-skewed batch workload from it twice — once warm (built in-process,
# saving the snapshot) and once cold (reloaded from the file) — and assert
# the two runs produced byte-identical results (same workload digest).
# RON_JOBS=4 on the cold run doubles as a jobs-invariance check.
SERVE_SMOKE_N ?= 100
SERVE_SMOKE_QUERIES ?= 20000
serve-smoke: build
	dune exec bin/ron_cli.exe -- serve --scheme basic -n $(SERVE_SMOKE_N) \
	  --queries $(SERVE_SMOKE_QUERIES) --snapshot /tmp/ron_serve_smoke.snap \
	  | tee /tmp/ron_serve_smoke_warm.txt
	RON_JOBS=4 dune exec bin/ron_cli.exe -- serve --load /tmp/ron_serve_smoke.snap \
	  --queries $(SERVE_SMOKE_QUERIES) \
	  | tee /tmp/ron_serve_smoke_cold.txt
	@warm=$$(grep -o 'digest=[0-9a-f]*' /tmp/ron_serve_smoke_warm.txt); \
	cold=$$(grep -o 'digest=[0-9a-f]*' /tmp/ron_serve_smoke_cold.txt); \
	if [ "$$warm" != "$$cold" ]; then \
	  echo "serve-smoke: warm/cold digests differ ($$warm vs $$cold)"; exit 1; \
	else echo "serve-smoke: warm/cold digests match ($$warm)"; fi

# SLO smoke: serve a batch with the burn-rate monitor, flight recorder,
# and Prometheus exposition all on; validate the exposition file, render
# the verdict through slo_report (human + JSON), and assert the verdict
# carries windows and a burn rate.
SLO_SMOKE_N ?= 100
SLO_SMOKE_QUERIES ?= 20000
slo-smoke: build
	dune exec bin/ron_cli.exe -- serve --scheme basic -n $(SLO_SMOKE_N) \
	  --queries $(SLO_SMOKE_QUERIES) \
	  --slo "p99<=50us,delivery>=0.99" --slo-out /tmp/ron_slo_smoke.json \
	  --flight 4 --expo /tmp/ron_slo_smoke.prom \
	  | tee /tmp/ron_slo_smoke_serve.txt
	grep -q '^flight recorded=' /tmp/ron_slo_smoke_serve.txt
	grep -q '^slo ' /tmp/ron_slo_smoke_serve.txt
	dune exec bin/trace_check.exe -- --expo /tmp/ron_slo_smoke.prom
	dune exec bin/slo_report.exe -- /tmp/ron_slo_smoke.json
	dune exec bin/slo_report.exe -- /tmp/ron_slo_smoke.json --json \
	  > /tmp/ron_slo_smoke_report.json
	grep -q '"max_burn_rate"' /tmp/ron_slo_smoke_report.json
	grep -q '"windows"' /tmp/ron_slo_smoke_report.json

# Profiler smoke: a profiled + traced routing run, then aggregate the trace
# into the per-span table / folded stacks and assert the phase profile is
# non-empty (construct.* and query.* phases must have fired).
profile-smoke: build
	dune exec bin/ron_cli.exe -- route -m grid -n 64 -p 200 \
	  --profile /tmp/ron_profile_smoke.json --trace /tmp/ron_profile_trace.jsonl
	dune exec bin/trace_check.exe /tmp/ron_profile_trace.jsonl
	dune exec bin/trace_report.exe -- /tmp/ron_profile_trace.jsonl \
	  --folded /tmp/ron_profile_folded.txt
	grep -q '"construct.basic"' /tmp/ron_profile_smoke.json
	grep -q '"query.routes"' /tmp/ron_profile_smoke.json

clean:
	dune clean
