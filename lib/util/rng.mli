(** Deterministic, splittable pseudo-random number generator.

    All randomized constructions in this library take an explicit generator so
    that experiments are reproducible. The implementation is SplitMix64
    (Steele, Lea & Flood 2014), which has a 64-bit state, passes BigCrush, and
    supports cheap splitting: [split t] returns an independent generator whose
    stream does not overlap with [t]'s for any practical purpose. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and the original then
    produce identical streams. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator seeded from it, for
    handing to a sub-computation without coupling its consumption to the
    parent's. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val mix : int -> int -> int
(** [mix a b] is a stateless, well-mixed, non-negative hash of the pair —
    one SplitMix64 finalizer round over [a + gamma * b]. Chain it
    ([mix (mix seed x) y]) to hash tuples. Because it is a pure function of
    its inputs, draws keyed this way are independent of evaluation order
    and of [RON_JOBS]; the fault layer uses it to key per-(query, hop)
    coin flips. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted_index : t -> float array -> int
(** [weighted_index t cumulative] samples an index proportionally to the
    increments of the (non-decreasing, positive-total) cumulative-sum array:
    index [i] is chosen with probability
    [(cumulative.(i) - cumulative.(i-1)) / total]. *)
