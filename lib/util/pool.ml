(* Chunked parallel-for over OCaml 5 domains — no external dependency, no
   work stealing. Iterations are split into [jobs] contiguous chunks, one
   domain per chunk; this keeps every worker on a cache-friendly contiguous
   index range and makes the work assignment independent of scheduling, so a
   deterministic body produces identical results at any job count.

   Job count: the [?jobs] argument wins, then the [RON_JOBS] environment
   variable, then [Domain.recommended_domain_count ()]. With one job (or
   from inside another pool region — domains must not be nested) the loop
   degrades to a plain sequential [for], so RON_JOBS=1 reproduces the
   pre-parallel behaviour exactly. *)

let env_jobs =
  lazy
    (match Sys.getenv_opt "RON_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | _ -> None)
    | None -> None)

(* Process-wide override (the CLI's --jobs flag); wins over RON_JOBS. *)
let default_override = ref None

let set_default_jobs j =
  match j with
  | Some j when j < 1 -> invalid_arg "Pool.set_default_jobs: jobs must be >= 1"
  | _ -> default_override := j

let jobs () =
  match !default_override with
  | Some j -> j
  | None -> (
    match Lazy.force env_jobs with
    | Some j -> j
    | None -> Domain.recommended_domain_count ())

(* True while the current domain is executing a pool chunk; nested calls
   then run sequentially instead of spawning domains from domains. *)
let inside : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let sequential_for lo hi f =
  for i = lo to hi - 1 do
    f i
  done

(* Observer hook for the obs layer (which sits above this library, so it
   cannot be called directly): fired once per top-level [parallel_for]
   batch with the effective job count and item count. Nested (inside-pool)
   calls do not fire — they are an implementation detail of the outer
   batch, and reporting them would make the batch sequence depend on the
   split. The default is a no-op; Ron_obs installs its hook at module
   initialization. *)
let observer : (jobs:int -> items:int -> unit) ref = ref (fun ~jobs:_ ~items:_ -> ())
let set_observer f = observer := f

(* Is the current domain executing a pool chunk right now? The telemetry
   sampler gates on this: sampling only outside chunks means the owner
   never reads shared shard state while workers mutate it, and the sample
   sequence cannot depend on how the work was split. *)
let inside_chunk () = Domain.DLS.get inside

let parallel_for ?jobs:j n f =
  if n > 0 then begin
    let j = match j with Some j -> max 1 j | None -> jobs () in
    let j = min j n in
    let nested = Domain.DLS.get inside in
    if not nested then !observer ~jobs:j ~items:n;
    if nested then sequential_for 0 n f
    else if j <= 1 then begin
      (* A top-level single-job run still marks its body as "in a chunk":
         chunk-gated code (nested-call detection, telemetry sampling) must
         behave identically at every job count, so the flag cannot depend
         on whether the chunk happens to execute on the caller. *)
      Domain.DLS.set inside true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set inside false)
        (fun () -> sequential_for 0 n f)
    end
    else begin
      (* Chunk c covers [c*base + min c rem, ...): sizes differ by <= 1. *)
      let base = n / j and rem = n mod j in
      let chunk_lo c = (c * base) + min c rem in
      let run c =
        Domain.DLS.set inside true;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set inside false)
          (fun () ->
            match sequential_for (chunk_lo c) (chunk_lo (c + 1)) f with
            | () -> None
            | exception e -> Some e)
      in
      let workers = Array.init (j - 1) (fun i -> Domain.spawn (fun () -> run (i + 1))) in
      let first = run 0 in
      let rest = Array.map Domain.join workers in
      (* Re-raise the first failure in chunk order, after every domain has
         been joined. *)
      let exn = Array.fold_left (fun acc e -> match acc with Some _ -> acc | None -> e) first rest in
      match exn with Some e -> raise e | None -> ()
    end
  end

let init ?jobs n f =
  if n <= 0 then [||]
  else begin
    (* Seed the array with f 0 computed on the calling domain, then fill the
       rest in parallel. *)
    let a = Array.make n (f 0) in
    parallel_for ?jobs (n - 1) (fun i -> a.(i + 1) <- f (i + 1));
    a
  end

let map ?jobs f a = init ?jobs (Array.length a) (fun i -> f a.(i))
