(** Chunked parallel-for over OCaml 5 domains.

    Iterations [0..n-1] are split into [jobs] contiguous chunks, one domain
    per chunk. The chunk boundaries depend only on [n] and [jobs], never on
    scheduling, so a body whose iterations are independent and deterministic
    produces {e identical} results at every job count — the repo's builds
    rely on this for reproducible experiment output.

    Job count resolution: the [?jobs] argument, else the [RON_JOBS]
    environment variable, else [Domain.recommended_domain_count ()].
    [jobs = 1] runs inline with no domain spawned; nested calls (from inside
    a pool worker) also degrade to sequential, so callers may parallelize
    freely at any layer. *)

val jobs : unit -> int
(** The default job count (the {!set_default_jobs} override, else
    [RON_JOBS], else the hardware recommendation). *)

val set_default_jobs : int option -> unit
(** Process-wide override of the default job count — what the CLI's
    [--jobs N] flag sets. [Some j] requires [j >= 1]; [None] restores the
    [RON_JOBS]/hardware resolution. Explicit [?jobs] arguments still win. *)

val set_observer : (jobs:int -> items:int -> unit) -> unit
(** Install the batch observer, fired once per top-level {!parallel_for}
    call (nested, inside-pool calls do not fire) with the effective job
    count and the item count. One observer; installing replaces the
    previous one. The obs layer installs its gauge/counter hook here at
    module initialization — regular user code should not need this. *)

val inside_chunk : unit -> bool
(** Is the calling domain currently executing a pool chunk? True on
    workers, and on the calling domain while it works its own chunk —
    including the whole body of a top-level [jobs = 1] run, so the answer
    at a given call site never depends on the job count. The telemetry
    sampler gates on this to keep its sample points chunk-free. *)

val parallel_for : ?jobs:int -> int -> (int -> unit) -> unit
(** [parallel_for n f] runs [f 0 .. f (n-1)], in parallel chunks when
    [jobs > 1]. If any iteration raises, every domain is still joined and
    the first exception (in chunk order) is re-raised. *)

val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [Array.init], parallel over chunks. [f 0] runs first on the calling
    domain (it seeds the result array); the remaining indices run in
    parallel. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [Array.map], parallel over chunks. *)
