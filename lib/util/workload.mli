(** Seeded, jobs-invariant query workloads for the serving loop.

    Draws are pure functions of (seed, global query index) via {!Rng.mix},
    so generated workloads are bit-identical at every [RON_JOBS] and under
    any evaluation order. *)

val u01 : seed:int -> int -> float
(** [u01 ~seed i] is a uniform deviate in [0, 1) keyed by the pair. *)

(** Zipf-skewed rank sampler: rank [k] (0-based) is drawn with probability
    proportional to [1 / (k+1)^s] — rank 0 is the hottest object. *)
module Zipf : sig
  type t

  val create : n:int -> s:float -> t
  (** [create ~n ~s] precomputes the normalized cumulative weights for [n]
      ranks with exponent [s >= 0] ([s = 0] degenerates to uniform). *)

  val size : t -> int
  val exponent : t -> float

  val mass : t -> int -> float
  (** Analytic probability of rank [k]. *)

  val cdf : t -> int -> float
  (** Analytic cumulative mass of ranks [0..k]; [cdf t (size t - 1) = 1]. *)

  val sample : t -> float -> int
  (** [sample t u] maps a uniform deviate in [0, 1) to a rank: the smallest
      [k] with [cdf t k > u]. Allocation-free. *)

  val sample_at : t -> seed:int -> int -> int
  (** [sample_at t ~seed i] is [sample t (u01 ~seed i)] — the deterministic
      rank for global query index [i]. *)
end
