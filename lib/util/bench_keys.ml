(* Shared classification of bench-JSON numeric keys, so every consumer
   (bench_diff today, future gates) agrees on which direction is "worse".

   Timing keys (seconds or nanoseconds) regress when they grow; throughput
   keys (queries per second and friends) regress when they shrink; anything
   else numeric is treated as deterministic and must match exactly. The
   throughput check runs first because "_per_s" also ends in "_s". *)

type direction = Throughput | Timing | Deterministic

let has_suffix s suffix = String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let classify key =
  if key = "qps" || has_suffix key "_qps" || has_suffix key "_per_s" then
    Throughput
  else if has_suffix key "_s" || contains key "_ns" then Timing
  else Deterministic
