(* Shared classification of bench-JSON numeric keys, so every consumer
   (bench_diff today, future gates) agrees on which direction is "worse".

   Timing keys (seconds or nanoseconds) regress when they grow; throughput
   keys (queries per second and friends) regress when they shrink; anything
   else numeric is treated as deterministic and must match exactly. The
   throughput check runs first because "_per_s" also ends in "_s". *)

type direction = Throughput | Timing | Deterministic

let has_suffix s suffix = String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let classify key =
  if key = "qps" || has_suffix key "_qps" || has_suffix key "_per_s" then
    Throughput
  else if has_suffix key "_s" || contains key "_ns" || contains key "burn_rate" then
    Timing
  else Deterministic

(* ------------------------------------------------------------- verdicts *)

type outcome = Same | Better | Worse | Changed

(* A baseline this small has no meaningful relative scale: a nonzero
   candidate against it must be judged by direction, not by ratio. *)
let zeroish x = Float.abs x < 1e-300

let verdict dir ~threshold ~det_threshold ~base ~next =
  if base = next then (Same, Some 0.0)
  else if not (Float.is_finite base && Float.is_finite next) then
    (* nan anywhere (or inf vs a finite number) can never silently pass:
       every float comparison with nan is false, so threshold checks on a
       nan ratio would report "ok". Flag it explicitly instead. *)
    (Changed, None)
  else if zeroish base then
    (match dir with
    | Timing -> ((if next > 0.0 then Worse else Better), None)
    | Throughput -> ((if next > 0.0 then Better else Worse), None)
    | Deterministic -> (Changed, None))
  else
    let d = (next -. base) /. Float.abs base in
    match dir with
    | Timing ->
      ((if d > threshold then Worse else if d < -.threshold then Better else Same), Some d)
    | Throughput ->
      ((if d < -.threshold then Worse else if d > threshold then Better else Same), Some d)
    | Deterministic ->
      ((if Float.abs d > det_threshold then Changed else Same), Some d)
