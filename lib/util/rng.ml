type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (bits64 t) }

(* Stateless hash combine: one SplitMix64 finalizer round over (a + gamma*b).
   Chaining [mix (mix seed q) h] gives a well-mixed pure function of the key
   tuple — no mutable state, so draws keyed this way are order-independent
   and bit-identical at any parallelism. The result is non-negative (top bit
   cleared) so it can seed [create] or be reduced by [mod]. *)
let mix a b =
  let z = Int64.add (Int64.of_int a) (Int64.mul golden_gamma (Int64.of_int b)) in
  Int64.to_int (Int64.logand (mix64 z) (Int64.of_int max_int))

(* Uniform int in [0, bound) by rejection on the top 62 bits, avoiding
   modulo bias. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let rec loop () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then loop () else v
  in
  loop ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  let rec u () =
    let x = float t 1.0 in
    if x = 0.0 then u () else x
  in
  let u1 = u () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let weighted_index t cumulative =
  let n = Array.length cumulative in
  if n = 0 then invalid_arg "Rng.weighted_index: empty array";
  let total = cumulative.(n - 1) in
  if not (total > 0.0) then invalid_arg "Rng.weighted_index: total must be positive";
  let x = float t total in
  (* Find the smallest index i with cumulative.(i) > x. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cumulative.(mid) > x then search lo mid else search (mid + 1) hi
  in
  search 0 (n - 1)
