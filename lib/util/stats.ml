let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n = 0 then nan
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)

(* nan on empty, like [mean]: folding from +/-infinity would report an
   infinite extremum for a sample that has no elements at all. *)
let minimum xs = if Array.length xs = 0 then nan else Array.fold_left min infinity xs
let maximum xs = if Array.length xs = 0 then nan else Array.fold_left max neg_infinity xs

(* Nearest-rank on an already-sorted sample: rank = ceil(p/100 * n),
   element at rank-1. Shared by trace_report and slo_report so the two
   tables agree on what "p999" means. *)
let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sorted = Array.copy xs in
    Fsort.sort_floats sorted;
    percentile_sorted sorted p
  end

let median xs = percentile xs 50.0

let of_ints a = Array.map float_of_int a

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let summarize xs =
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = minimum xs;
    p50 = percentile xs 50.0;
    p90 = percentile xs 90.0;
    p99 = percentile xs 99.0;
    max = maximum xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
