(** Shared direction classification for bench-JSON numeric keys.

    [bench_diff] (and anything else gating on bench output) uses this to
    decide how a relative threshold applies: {!Timing} keys are
    lower-is-better, {!Throughput} keys are higher-is-better, and
    {!Deterministic} keys must match exactly. *)

type direction =
  | Throughput  (** ["qps"], [*_qps], [*_per_s] — higher is better. *)
  | Timing  (** [*_s] or containing ["_ns"] — lower is better. *)
  | Deterministic  (** everything else — compare exactly. *)

val classify : string -> direction
(** [classify key] decides the direction for a numeric bench key. The
    throughput rule wins over the timing rule (["_per_s"] ends in ["_s"]). *)
