(** Shared direction classification for bench-JSON numeric keys.

    [bench_diff] (and anything else gating on bench output) uses this to
    decide how a relative threshold applies: {!Timing} keys are
    lower-is-better, {!Throughput} keys are higher-is-better, and
    {!Deterministic} keys must match exactly. *)

type direction =
  | Throughput  (** ["qps"], [*_qps], [*_per_s] — higher is better. *)
  | Timing
      (** [*_s], or containing ["_ns"] or ["burn_rate"] (SLO error-budget
          burn) — lower is better. *)
  | Deterministic  (** everything else — compare exactly. *)

val classify : string -> direction
(** [classify key] decides the direction for a numeric bench key. The
    throughput rule wins over the timing rule (["_per_s"] ends in ["_s"]). *)

type outcome =
  | Same  (** within threshold (or exactly equal, including equal infinities) *)
  | Better  (** beyond threshold in the good direction *)
  | Worse  (** beyond threshold in the bad direction — a regression *)
  | Changed
      (** a deterministic value changed, or a value is non-finite / has a
          zero baseline that admits no relative comparison — a mismatch *)

val verdict :
  direction ->
  threshold:float ->
  det_threshold:float ->
  base:float ->
  next:float ->
  outcome * float option
(** [verdict dir ~threshold ~det_threshold ~base ~next] judges one numeric
    bench key; the second component is the relative change when it is
    well-defined (finite values, nonzero baseline).

    Two edge classes are decided explicitly rather than through float
    comparisons that would silently pass:
    - a non-finite value on either side (nan ratios compare false against
      every threshold) is {!Changed};
    - a zero baseline with a nonzero candidate has no relative scale, so
      the key's direction decides — nonzero time appearing is {!Worse},
      throughput appearing is {!Better}, a deterministic change is
      {!Changed}. *)
