(* Monomorphic sorts for the hot paths. The generic [Array.sort compare]
   dispatches to the polymorphic comparator on every element pair — a C call
   that walks the representation — and the tuple variants additionally box a
   (float, int) pair per entry. The index layer sorts n rows of n entries, so
   both costs are O(n^2 log n); keeping the keys in a flat [float array] and
   comparing them with native float compares removes all of it. *)

let run = 24
(* Runs shorter than this are insertion-sorted before merging; 16-32 is the
   usual sweet spot and the exact value does not affect the result. *)

(* Stable insertion sort of d.[lo..hi] keyed on d, carrying v alongside.
   Strict [>] in the shift keeps equal keys in input order. *)
let insertion_dual (d : float array) (v : int array) lo hi =
  for i = lo + 1 to hi do
    let kd = Array.unsafe_get d i and kv = Array.unsafe_get v i in
    let j = ref (i - 1) in
    while !j >= lo && Array.unsafe_get d !j > kd do
      Array.unsafe_set d (!j + 1) (Array.unsafe_get d !j);
      Array.unsafe_set v (!j + 1) (Array.unsafe_get v !j);
      decr j
    done;
    Array.unsafe_set d (!j + 1) kd;
    Array.unsafe_set v (!j + 1) kv
  done

(* Stable merge of d.[lo..mid-1] and d.[mid..hi] via the scratch arrays. *)
let merge_dual (d : float array) (v : int array) (td : float array)
    (tv : int array) lo mid hi =
  Array.blit d lo td lo (hi - lo + 1);
  Array.blit v lo tv lo (hi - lo + 1);
  let i = ref lo and j = ref mid in
  for k = lo to hi do
    if
      !i < mid
      && (!j > hi || Array.unsafe_get td !i <= Array.unsafe_get td !j)
    then begin
      Array.unsafe_set d k (Array.unsafe_get td !i);
      Array.unsafe_set v k (Array.unsafe_get tv !i);
      incr i
    end
    else begin
      Array.unsafe_set d k (Array.unsafe_get td !j);
      Array.unsafe_set v k (Array.unsafe_get tv !j);
      incr j
    end
  done

let dual_sort ?scratch_d ?scratch_v (d : float array) (v : int array) =
  let n = Array.length d in
  if Array.length v <> n then invalid_arg "Fsort.dual_sort: length mismatch";
  if n > 1 then begin
    let lo = ref 0 in
    while !lo < n do
      insertion_dual d v !lo (min (!lo + run - 1) (n - 1));
      lo := !lo + run
    done;
    if n > run then begin
      let td =
        match scratch_d with
        | Some s when Array.length s >= n -> s
        | _ -> Array.make n 0.0
      and tv =
        match scratch_v with
        | Some s when Array.length s >= n -> s
        | _ -> Array.make n 0
      in
      let width = ref run in
      while !width < n do
        let lo = ref 0 in
        while !lo + !width < n do
          merge_dual d v td tv !lo (!lo + !width)
            (min (!lo + (2 * !width) - 1) (n - 1));
          lo := !lo + (2 * !width)
        done;
        width := 2 * !width
      done
    end
  end

let sort_floats (a : float array) =
  (* Piggyback on the dual sort; the carried ids are ignored. *)
  let n = Array.length a in
  if n > 1 then dual_sort a (Array.make n 0)

let sort_ints (a : int array) = Array.sort Int.compare a
