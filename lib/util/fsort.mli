(** Monomorphic, allocation-lean sorts for hot paths.

    The repo's inner loops sort [O(n^2)] entries per index build; these
    replace [Array.sort compare] (polymorphic compare, boxed tuples) with
    flat float/int array operations. *)

val dual_sort :
  ?scratch_d:float array -> ?scratch_v:int array -> float array -> int array -> unit
(** [dual_sort d v] sorts the parallel arrays [d] (keys) and [v] (payload)
    in place by non-decreasing key. The sort is {b stable}: entries with
    equal keys keep their input order — so when [v] starts as [0..n-1],
    equal keys end up tie-broken by ascending payload. Scratch buffers of
    length [>= Array.length d] may be supplied to avoid re-allocating
    across repeated sorts; their final contents are unspecified.
    @raise Invalid_argument if the arrays differ in length. *)

val sort_floats : float array -> unit
(** In-place, non-decreasing, monomorphic. *)

val sort_ints : int array -> unit
(** In-place, non-decreasing, monomorphic. *)
