(* Seeded, jobs-invariant query workloads for the serving loop.

   Every draw is a pure function of (seed, global index) through Rng.mix,
   so a workload is bit-identical at every RON_JOBS and independent of the
   order in which domains touch the queries — same discipline the fault
   layer uses for its per-(query, hop) coins. *)

(* [mix] returns a uniform value in [0, 2^62); scale by 2^-62 for [0, 1). *)
let u01 ~seed i = float_of_int (Rng.mix seed i) *. 0x1p-62

module Zipf = struct
  type t = { n : int; s : float; cdf : float array }

  let create ~n ~s =
    if n < 1 then invalid_arg "Workload.Zipf.create: n < 1";
    if not (s >= 0.0) then invalid_arg "Workload.Zipf.create: negative exponent";
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for k = 0 to n - 1 do
      acc := !acc +. (1.0 /. (float_of_int (k + 1) ** s));
      cdf.(k) <- !acc
    done;
    let total = !acc in
    for k = 0 to n - 1 do
      cdf.(k) <- cdf.(k) /. total
    done;
    (* Guard against rounding: the last bucket must absorb every u < 1. *)
    cdf.(n - 1) <- 1.0;
    { n; s; cdf }

  let size t = t.n
  let exponent t = t.s
  let mass t k = if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
  let cdf t k = t.cdf.(k)

  (* Smallest rank whose cumulative mass exceeds [u]; allocation-free. *)
  let sample t u =
    if not (u >= 0.0 && u < 1.0) then invalid_arg "Workload.Zipf.sample: u outside [0, 1)";
    let lo = ref 0 and hi = ref (t.n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo

  let sample_at t ~seed i = sample t (u01 ~seed i)
end
