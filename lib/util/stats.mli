(** Small summary-statistics toolkit used by the experiment harness. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on an empty array. *)

val stddev : float array -> float
(** Population standard deviation; [nan] on an empty array. *)

val minimum : float array -> float
(** Smallest element; [nan] on an empty array (not [infinity]). *)

val maximum : float array -> float
(** Largest element; [nan] on an empty array (not [neg_infinity]). *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]: nearest-rank percentile of the
    (internally sorted, input untouched) sample. *)

val median : float array -> float

val of_ints : int array -> float array
(** Convenience conversion for integer samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

(** On an empty array, [summarize] yields [count = 0] and [nan] in every
    float field. *)
val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit
