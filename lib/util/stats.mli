(** Small summary-statistics toolkit used by the experiment harness. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on an empty array. *)

val stddev : float array -> float
(** Population standard deviation; [nan] on an empty array. *)

val minimum : float array -> float
(** Smallest element; [nan] on an empty array (not [infinity]). *)

val maximum : float array -> float
(** Largest element; [nan] on an empty array (not [neg_infinity]). *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]: nearest-rank percentile of the
    (internally sorted, input untouched) sample. *)

val percentile_sorted : float array -> float -> float
(** [percentile_sorted xs p] is {!percentile} for a sample that is already
    sorted ascending: no copy, no re-sort. [nan] on an empty array. The
    rank rule (rank = ceil(p/100*n), element at rank-1) is the one the
    report tools and {!Ron_obs.Histogram.Bucketed} share. *)

val median : float array -> float

val of_ints : int array -> float array
(** Convenience conversion for integer samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

(** On an empty array, [summarize] yields [count = 0] and [nan] in every
    float field. *)
val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit
