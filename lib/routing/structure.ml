module Indexed = Ron_metric.Indexed
module Net = Ron_metric.Net
module Bits = Ron_util.Bits
module Rings = Ron_core.Rings
module Enumeration = Ron_core.Enumeration
module Translation = Ron_core.Translation
module Zooming = Ron_core.Zooming
module Pool = Ron_util.Pool
module Probe = Ron_obs.Probe

type t = {
  idx : Indexed.t;
  delta : float;
  scales : int;
  nets : int array array;
  rings : Rings.t;
  enums : Enumeration.t array array;
  zetas : Translation.t array array;
  zoomings : int array array;
  labels : Zooming.encoded array;
  ring_index_bits : int;
}

let build idx ~delta =
  if not (delta > 0.0 && delta <= 0.25) then
    invalid_arg "Structure.build: delta must be in (0, 1/4]";
  Ron_obs.Profile.phase "construct.structure" @@ fun () ->
  let n = Indexed.size idx in
  let diam = Float.max (Indexed.diameter idx) 1e-9 in
  let big_l = Indexed.log2_aspect_ratio idx in
  let scales = big_l + 1 in
  (* Nested nets: G_j is a (Delta/2^j)-net; G_L is the whole node set. *)
  let nets = Array.make scales [||] in
  nets.(0) <- Net.r_net idx ~r:diam ();
  for j = 1 to scales - 1 do
    nets.(j) <- Net.r_net idx ~seeds:nets.(j - 1) ~r:(diam /. Bits.pow2 j) ()
  done;
  let net_member =
    Array.map
      (fun pts ->
        let b = Array.make n false in
        Array.iter (fun u -> b.(u) <- true) pts;
        b)
      nets
  in
  let radius_of j = 4.0 *. diam /. (delta *. Bits.pow2 j) in
  let rings =
    Rings.of_membership idx ~scales ~radius_of ~member_of:(fun j v -> net_member.(j).(v))
  in
  (* The four per-node passes below read only immutable shared state
     (rings, nets, and the previous passes' finished arrays), so each runs
     as a parallel per-node fan-out; the passes themselves stay ordered
     because [Pool.init] is a barrier. *)
  let enums =
    Pool.init n (fun u ->
        Array.init scales (fun j -> Enumeration.of_array (Rings.ring rings u j).Rings.members))
  in
  let zoomings =
    Pool.init n (fun t_ -> Array.init scales (fun j -> fst (Indexed.nearest_of idx t_ nets.(j))))
  in
  let zetas =
    Pool.init n (fun u ->
        Array.init (scales - 1) (fun j ->
            let z = Translation.create () in
            let next_ring = (Rings.ring rings u (j + 1)).Rings.members in
            Array.iter
              (fun f ->
                let x = Enumeration.index_exn enums.(u).(j) f in
                Array.iter
                  (fun w ->
                    match Enumeration.index enums.(f).(j + 1) w with
                    | None -> ()
                    | Some y ->
                      Translation.add z ~x ~y ~z:(Enumeration.index_exn enums.(u).(j + 1) w))
                  next_ring)
              (Rings.ring rings u j).Rings.members;
            z))
  in
  let labels =
    Pool.init n (fun t_ ->
        let sequence = zoomings.(t_) in
        let enc =
          Zooming.encode ~sequence
            ~enum_of_prev:(fun j next -> Enumeration.index enums.(sequence.(j)).(j + 1) next)
            ~first_index:(Enumeration.index_exn enums.(t_).(0) sequence.(0))
        in
        if !Probe.on then Probe.label_node ();
        enc)
  in
  let ring_index_bits = Bits.index_bits (max 2 (Rings.max_ring_size rings)) in
  { idx; delta; scales; nets; rings; enums; zetas; zoomings; labels; ring_index_bits }

let decode t u label =
  Zooming.decode_walk ~translate:(fun j ~x ~y -> Translation.find t.zetas.(u).(j) ~x ~y) label

let intermediate_of t u m j = Enumeration.node t.enums.(u).(j) m.(j)

let zeta_bits_sparse t u =
  Array.fold_left
    (fun acc z ->
      acc
      + Translation.bits_sparse z ~x_bits:t.ring_index_bits ~y_bits:t.ring_index_bits
          ~z_bits:t.ring_index_bits)
    0 t.zetas.(u)

let zeta_bits_dense t =
  let k = max 2 (Rings.max_ring_size t.rings) in
  (t.scales - 1) * Translation.bits_dense ~x_card:k ~y_card:k ~z_bits:t.ring_index_bits

let label_bits t u =
  Zooming.bits t.labels.(u) ~index_bits:t.ring_index_bits + Bits.index_bits (Indexed.size t.idx)

let header_bits t =
  let n = Indexed.size t.idx in
  Array.fold_left
    (fun acc enc ->
      max acc
        (Zooming.bits enc ~index_bits:t.ring_index_bits
        + Bits.index_bits n
        + Bits.index_bits (t.scales + 1)))
    0 t.labels
