module Probe = Ron_obs.Probe
module Trace = Ron_obs.Trace

type 'h step = int -> 'h -> 'h action

and 'h action = Deliver | Forward of int * 'h | Drop

type outcome = Delivered | Truncated | Self_forward | Cycled | Dropped

let outcome_string = function
  | Delivered -> "delivered"
  | Truncated -> "truncated"
  | Self_forward -> "self_forward"
  | Cycled -> "cycled"
  | Dropped -> "dropped"

type result = {
  delivered : bool;
  outcome : outcome;
  hops : int;
  length : float;
  path : int list;
  max_header_bits : int;
}

let simulate ?(detect_cycles = true) ~dist ~step ~header_bits ~src ~header ~max_hops () =
  let finish outcome path acc_len hops max_hb =
    if !Probe.on then
      Probe.route_done ~hops ~header_bits_max:max_hb
        ~outcome:
          (match outcome with
          | Delivered -> `Delivered
          | Truncated -> `Truncated
          | Self_forward -> `Self_forward
          | Cycled -> `Cycled
          | Dropped -> `Dropped);
    if Trace.active () then
      Trace.event "route.done"
        ~args:
          [
            ("outcome", Ron_obs.Json.String (outcome_string outcome));
            ("hops", Ron_obs.Json.Int hops);
            ("header_bits_max", Ron_obs.Json.Int max_hb);
          ];
    {
      delivered = outcome = Delivered;
      outcome;
      hops;
      length = acc_len;
      path = List.rev path;
      max_header_bits = max_hb;
    }
  in
  (* Cycle detection is Brent's algorithm over (node, header) states: one
     saved state, one comparison per hop, with the checkpoint refreshed at
     every power-of-two hop count. The step function is a pure function of
     (node, header), so a revisited state proves the packet loops forever;
     a 2-cycle is caught within 4 hops instead of spinning to the budget.
     Callers whose step is NOT state-determined (the fault layer keys its
     drop draws by hop count) pass ~detect_cycles:false. *)
  let rec go node header acc_path acc_len hops max_hb ~saved_node ~saved_header ~power =
    let hb = header_bits header in
    if !Probe.on then Probe.header_bits hb;
    let max_hb = max max_hb hb in
    if detect_cycles && hops > 0 && node = saved_node && header = saved_header then
      finish Cycled acc_path acc_len hops max_hb
    else begin
      let saved_node, saved_header, power =
        if detect_cycles && hops = power then (node, header, 2 * power)
        else (saved_node, saved_header, power)
      in
      match step node header with
      | Deliver -> finish Delivered acc_path acc_len hops max_hb
      | Drop -> finish Dropped acc_path acc_len hops max_hb
      | Forward (next, header') ->
        (* A scheme forwarding to itself would spin forever; record it as a
           distinct failure outcome rather than crashing the whole run. *)
        if next = node then finish Self_forward acc_path acc_len hops max_hb
        else if hops >= max_hops then finish Truncated acc_path acc_len hops max_hb
        else begin
          if !Probe.on then begin
            Probe.hop ();
            (* Physical inequality: an untouched header is passed through as
               the same value, so [!=] detects genuine rewrites. *)
            if header' != header then Probe.header_rewrite ()
          end;
          if Trace.active () then
            Trace.event "route.hop"
              ~args:
                [
                  ("from", Ron_obs.Json.Int node);
                  ("to", Ron_obs.Json.Int next);
                  ("hop", Ron_obs.Json.Int (hops + 1));
                ];
          go next header' (next :: acc_path) (acc_len +. dist node next) (hops + 1) max_hb
            ~saved_node ~saved_header ~power
        end
    end
  in
  go src header [ src ] 0.0 0 0 ~saved_node:src ~saved_header:header ~power:1

(* A step-function transformer, polymorphic in the header type so one
   wrapper (e.g. the fault injector) serves every scheme. [alternates]
   gives the ranked fallback forwards a node's table can produce besides
   the primary one; [detect_cycles] travels with the wrapper because a
   wrapped step may stop being a pure function of (node, header). *)
type wrapper = {
  wrap : 'h. 'h step -> alternates:(int -> 'h -> (int * 'h) list) -> 'h step;
  detect_cycles : bool;
}

let identity_wrapper = { wrap = (fun step ~alternates:_ -> step); detect_cycles = true }

(* [compose outer inner]: the packet passes through [inner] first, then the
   combined step through [outer] — e.g. churn blocking inside, fault drops
   outside. Both layers see the same ranked alternates (they are links the
   node's table holds regardless of which wrapper consults them). Cycle
   detection survives only if both layers keep their steps state-determined. *)
let compose outer inner =
  if outer == identity_wrapper then inner
  else if inner == identity_wrapper then outer
  else
    {
      wrap =
        (fun step ~alternates -> outer.wrap (inner.wrap step ~alternates) ~alternates);
      detect_cycles = outer.detect_cycles && inner.detect_cycles;
    }

type table_stats = {
  max_table_bits : int;
  mean_table_bits : float;
  max_label_bits : int;
  header_bits : int;
  out_degree : int;
}

let stretch r d =
  if not r.delivered then invalid_arg "Scheme.stretch: packet not delivered";
  if d = 0.0 then (if r.length > 0.0 then infinity else 1.0) else r.length /. d
