module Probe = Ron_obs.Probe
module Trace = Ron_obs.Trace

type 'h step = int -> 'h -> 'h action

and 'h action = Deliver | Forward of int * 'h

type outcome = Delivered | Truncated | Self_forward

type result = {
  delivered : bool;
  outcome : outcome;
  hops : int;
  length : float;
  path : int list;
  max_header_bits : int;
}

let simulate ~dist ~step ~header_bits ~src ~header ~max_hops =
  let finish outcome path acc_len hops max_hb =
    if !Probe.on then
      Probe.route_done ~hops ~header_bits_max:max_hb
        ~delivered:(outcome = Delivered) ~truncated:(outcome = Truncated);
    if Trace.active () then
      Trace.event "route.done"
        ~args:
          [
            ( "outcome",
              Ron_obs.Json.String
                (match outcome with
                | Delivered -> "delivered"
                | Truncated -> "truncated"
                | Self_forward -> "self_forward") );
            ("hops", Ron_obs.Json.Int hops);
            ("header_bits_max", Ron_obs.Json.Int max_hb);
          ];
    {
      delivered = outcome = Delivered;
      outcome;
      hops;
      length = acc_len;
      path = List.rev path;
      max_header_bits = max_hb;
    }
  in
  let rec go node header acc_path acc_len hops max_hb =
    let hb = header_bits header in
    if !Probe.on then Probe.header_bits hb;
    let max_hb = max max_hb hb in
    match step node header with
    | Deliver -> finish Delivered acc_path acc_len hops max_hb
    | Forward (next, header') ->
      (* A scheme forwarding to itself would spin forever; record it as a
         distinct failure outcome rather than crashing the whole run. *)
      if next = node then finish Self_forward acc_path acc_len hops max_hb
      else if hops >= max_hops then finish Truncated acc_path acc_len hops max_hb
      else begin
        if !Probe.on then begin
          Probe.hop ();
          (* Physical inequality: an untouched header is passed through as
             the same value, so [!=] detects genuine rewrites. *)
          if header' != header then Probe.header_rewrite ()
        end;
        if Trace.active () then
          Trace.event "route.hop"
            ~args:
              [
                ("from", Ron_obs.Json.Int node);
                ("to", Ron_obs.Json.Int next);
                ("hop", Ron_obs.Json.Int (hops + 1));
              ];
        go next header' (next :: acc_path) (acc_len +. dist node next) (hops + 1) max_hb
      end
  in
  go src header [ src ] 0.0 0 0

type table_stats = {
  max_table_bits : int;
  mean_table_bits : float;
  max_label_bits : int;
  header_bits : int;
  out_degree : int;
}

let stretch r d =
  if not r.delivered then invalid_arg "Scheme.stretch: packet not delivered";
  if d = 0.0 then 1.0 else r.length /. d
