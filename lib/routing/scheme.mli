(** Routing-scheme plumbing: the local-step packet simulator and the
    measurements every scheme reports.

    A routing scheme (Section 1) assigns each node a routing table and a
    routing label; forwarding is {e local} — a function of the current
    node's table and the packet header only. The simulator enforces this
    shape: a scheme exposes a step function from (node, header) to the next
    hop, and the simulator walks it, accumulating the traversed length and
    the largest header it saw. *)

type 'h step = int -> 'h -> 'h action
(** The local forwarding decision at a node. *)

and 'h action =
  | Deliver  (** the current node is the target *)
  | Forward of int * 'h  (** next physical hop and the (possibly rewritten) header *)

type outcome =
  | Delivered  (** the step function returned [Deliver] *)
  | Truncated  (** the hop budget ran out before delivery *)
  | Self_forward  (** the scheme forwarded a packet to the node it was at *)

type result = {
  delivered : bool;  (** [outcome = Delivered], kept for convenience *)
  outcome : outcome;
  hops : int;
  length : float;  (** total metric length of the traversed hops *)
  path : int list;  (** nodes visited, source first; includes the target *)
  max_header_bits : int;
}

val simulate :
  dist:(int -> int -> float) ->
  step:'h step ->
  header_bits:('h -> int) ->
  src:int ->
  header:'h ->
  max_hops:int ->
  result
(** Runs the packet until [Deliver], the hop budget, or a self-forward (a
    broken scheme that would spin forever); the three cases are distinct
    [outcome]s, never exceptions. [dist] is charged on every [Forward]
    edge. When observability is on ({!Ron_obs.Probe.on}), each hop bumps
    the route counters and charges the current query ledger entry, and
    each simulation emits [route.hop]/[route.done] trace events when a
    trace sink is active. *)

type table_stats = {
  max_table_bits : int;
  mean_table_bits : float;
  max_label_bits : int;
  header_bits : int;
  out_degree : int;  (** max out-degree of the overlay/graph used *)
}

val stretch : result -> float -> float
(** [stretch r d]: [r.length / d]; 1.0 when [d = 0]. Raises if not
    delivered. *)
