(** Routing-scheme plumbing: the local-step packet simulator and the
    measurements every scheme reports.

    A routing scheme (Section 1) assigns each node a routing table and a
    routing label; forwarding is {e local} — a function of the current
    node's table and the packet header only. The simulator enforces this
    shape: a scheme exposes a step function from (node, header) to the next
    hop, and the simulator walks it, accumulating the traversed length and
    the largest header it saw. *)

type 'h step = int -> 'h -> 'h action
(** The local forwarding decision at a node. *)

and 'h action =
  | Deliver  (** the current node is the target *)
  | Forward of int * 'h  (** next physical hop and the (possibly rewritten) header *)
  | Drop
      (** the packet is lost at this node — produced by the fault-injection
          wrapper ({!Ron_fault.Fault.wrap}) when every ranked next hop is
          exhausted, never by a healthy scheme *)

type outcome =
  | Delivered  (** the step function returned [Deliver] *)
  | Truncated  (** the hop budget ran out before delivery *)
  | Self_forward  (** the scheme forwarded a packet to the node it was at *)
  | Cycled
      (** the packet revisited a (node, header) state — the step function is
          state-determined, so the walk was provably looping forever *)
  | Dropped  (** the step function returned [Drop] (injected fault) *)

val outcome_string : outcome -> string
(** Stable lowercase name ("delivered", "truncated", "self_forward",
    "cycled", "dropped") — the same strings the [route.done] trace events
    carry. *)

type result = {
  delivered : bool;  (** [outcome = Delivered], kept for convenience *)
  outcome : outcome;
  hops : int;
  length : float;  (** total metric length of the traversed hops *)
  path : int list;  (** nodes visited, source first; includes the target *)
  max_header_bits : int;
}

val simulate :
  ?detect_cycles:bool ->
  dist:(int -> int -> float) ->
  step:'h step ->
  header_bits:('h -> int) ->
  src:int ->
  header:'h ->
  max_hops:int ->
  unit ->
  result
(** Runs the packet until [Deliver], the hop budget, a self-forward, a
    revisited state, or a [Drop]; the cases are distinct [outcome]s, never
    exceptions. [dist] is charged on every [Forward] edge.

    [detect_cycles] (default true) runs Brent's cycle detection over
    (node, header) states — one saved state and one structural comparison
    per hop — so a looping scheme reports [Cycled] within O(cycle length)
    hops instead of spinning to [max_hops] and misreporting [Truncated].
    Pass [~detect_cycles:false] when the step function is not a pure
    function of (node, header) (e.g. the fault wrapper keys its drop draws
    by hop count, so a revisited state may legitimately take a different
    branch later).

    When observability is on ({!Ron_obs.Probe.on}), each hop bumps the
    route counters and charges the current query ledger entry, and each
    simulation emits [route.hop]/[route.done] trace events when a trace
    sink is active. *)

type wrapper = {
  wrap : 'h. 'h step -> alternates:(int -> 'h -> (int * 'h) list) -> 'h step;
  detect_cycles : bool;
}
(** A step-function transformer, polymorphic in the header type so a single
    wrapper — e.g. the fault injector in [Ron_fault] — can wrap every
    scheme. [alternates u h] lists the ranked fallback forwards (next hop,
    rewritten header) the node's own table can produce besides the primary
    one; each must use links the table already holds. [detect_cycles] rides
    along because a wrapped step may no longer be a pure function of
    (node, header), in which case {!simulate}'s cycle detection must be
    switched off. *)

val identity_wrapper : wrapper
(** Returns the step unchanged (physically equal — the wrapped route is
    byte-identical to the unwrapped one) and keeps cycle detection on. *)

val compose : wrapper -> wrapper -> wrapper
(** [compose outer inner]: wrap with [inner] first, then [outer] (so the
    outer layer sees the inner layer's decisions). Both receive the same
    ranked alternates; [detect_cycles] is the conjunction. Composing with
    {!identity_wrapper} on either side returns the other wrapper
    physically unchanged. *)

type table_stats = {
  max_table_bits : int;
  mean_table_bits : float;
  max_label_bits : int;
  header_bits : int;
  out_degree : int;  (** max out-degree of the overlay/graph used *)
}

val stretch : result -> float -> float
(** [stretch r d]: [r.length / d]. When [d = 0] the result is [1.0] for a
    zero-length path and [infinity] otherwise — a delivered-but-wandering
    packet to a coincident point must not read as perfect stretch. Raises
    if not delivered. *)
