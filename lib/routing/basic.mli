(** The (1 + delta)-stretch routing scheme of Theorem 2.1.

    For each distance scale [j], [G_j] is a [Delta/2^j]-net and the j-th
    ring of [u] is [Y_uj = B_u(r_j) ∩ G_j] with [r_j = 4 Delta/(delta 2^j)];
    each ring has at most [K = (16/delta)^alpha] members (Lemma 1.4). The
    routing label of a target [t] encodes its {e zooming sequence}
    [f_tj] (a j-ring neighbor of [t] within [Delta/2^j] of [t]) through host
    enumerations; a routing table holds the translation functions [zeta_uj]
    and first-hop pointers to all ring members. Packets chase intermediate
    targets that zoom in on [t] geometrically (Claim 2.4), each reached
    along an exact shortest path via first-hop pointers, for total stretch
    [<= (1+delta)/(1-delta) = 1 + O(delta)].

    Forwarding at a node uses {e only} that node's table and the packet
    header (Claim 2.2 is implemented literally: the zooming sequence is
    decoded index-by-index through the translation functions). *)

type t

val build : Ron_graph.Sp_metric.t -> delta:float -> t
(** [delta] in (0, 1/4] as in the theorem. Deterministic. *)

type header

val initial_header : t -> int -> header
(** [initial_header t dst]: header for a fresh packet to [dst] — the routing
    label of [dst] plus an unset intermediate-target level. *)

val route : t -> src:int -> dst:int -> Scheme.result
(** Simulate the packet through the underlying graph. *)

val route_wrapped : Scheme.wrapper -> t -> src:int -> dst:int -> Scheme.result
(** Like {!route}, but with the step function passed through the wrapper
    (e.g. the fault injector). The ranked alternates offered to the wrapper
    are the first hops toward the intermediate targets at every other
    zooming level, coarsest first — links the routing table already holds.
    [route] is [route_wrapped Scheme.identity_wrapper]. *)

val serialize_label : t -> int -> Bytes.t * int
(** [(bytes, bits)]: the routing label of a target as an actual bitstring
    (global id + encoded zooming sequence) — the concrete object whose
    length [label_bits] reports. *)

val deserialize_label : t -> Bytes.t -> header
(** Rebuild a fresh-packet header from a serialized label. Routing from it
    is identical to routing from [initial_header]. *)

val route_header : t -> src:int -> header -> Scheme.result

val scales : t -> int
(** Number of distance scales [L + 1] ([L = ceil(log2 Delta)]). *)

val max_ring_size : t -> int
(** The measured [K]. *)

val table_bits : t -> int array
(** Per-node routing-table size: sparse translation triples, first-hop
    pointers ([ceil(log2 Dout)] bits each), and the node's global id. *)

val table_bits_dense : t -> int array
(** Same, with the translation functions charged as dense [K^2 log K]
    matrices (the paper's accounting). *)

val label_bits : t -> int array
(** Routing-label sizes: the encoded zooming sequence plus the global id. *)

val header_bits : t -> int
(** Maximum packet-header size: label bits plus the intermediate level. *)

val ring : t -> int -> int -> int array
(** [ring t u j]: the members of [Y_uj] (for tests). *)

val zooming : t -> int -> int array
(** [zooming t u]: the sequence [f_uj] (for tests). *)

val rings_collection : t -> Ron_core.Rings.t
(** The scheme's live ring collection, borrowed read-only — the churn
    layer deep-copies it ({!Ron_core.Rings.copy}) and repairs the copy. *)

val substrate : t -> Ron_metric.Indexed.t
(** The indexed metric the rings were built over (for bounded-radius
    repair exploration). Borrowed. *)

(** {2 Export}

    Flat, string-free state extraction for the off-heap snapshot layer
    ([ron_serve]): everything the step function reads, as plain arrays.
    Arrays may share structure with the live value — treat them as borrowed
    and read-only. *)

type export = {
  x_n : int;
  x_scales : int;
  x_max_hops : int;  (** the routing budget [route] uses *)
  x_header_bits : int array;  (** per destination *)
  x_label_first : int array;
  x_label_rest : int array array;  (** per node, [scales - 1] entries *)
  x_enums : int array array array;  (** ring enumeration order, per (u, j) *)
  x_zetas : (int * int * int) array array array;
      (** translation triples of [(u, j)], sorted by [(x, y)] *)
  x_table : (int * int * float) array array;
      (** per node, sorted by neighbor: (intermediate, next hop, hop cost) *)
}

val export : t -> export
