(** The two-mode routing scheme of Theorem 4.2 / B.1, in its
    routing-on-metrics form (Section 4.1, Table 3).

    Mode M1 elaborates Theorem 2.1 with the Theorem 3.4 machinery: the
    packet header carries the target's distance label; at each node the
    label-only decoder identifies common beacons of the current node and
    the target, and the packet jumps to the identified beacon closest to
    the target, provided it makes geometric progress ("u-good" nodes,
    conditions (c1)-(c5)).

    When no identified beacon makes progress — exactly the Lemma B.5
    situation, a large gap between [d(v,t)] and the cardinality radii
    around [v] — the packet switches to mode M2: it hops to the designated
    hub [h_B] of a packing ball [B] near [v] (Lemma 3.1), whose members
    collectively store direct links to every node of the bigger ball
    [B' = B_(h,i-1)] (each member owns an id-range of [2^O(alpha)]
    targets); the hub forwards by target id to the owner [v_t], which
    delivers in one hop. If the scale was guessed too deep (the label-based
    estimate of [d(v,t)] is 3/2-approximate), the owner falls back one
    scale — scale 1's [B'] is the whole space, so delivery is guaranteed.

    Per Table 3, M1 storage is label-sized ([phi log n] flavored) and M2
    storage is [2^O(alpha) log n] direct routes per node. *)

type t

val build : ?m1_threshold:float -> Ron_metric.Indexed.t -> delta:float -> t
(** [delta] in (0, 1/8] as in Appendix B. Expensive: builds the full
    Theorem 3.4 label scheme plus the per-scale packing directories.

    [m1_threshold] (default 1/3) is the M1 goodness bound: the packet jumps
    to an identified beacon [w] only if its labeled distance to the target
    is at most [m1_threshold * estimate]; anything [< 1/2] preserves strict
    progress. Small values force the M2 directories to be exercised — used
    by tests and the T3 ablation. *)

val route : t -> src:int -> dst:int -> Scheme.result

val route_wrapped : Scheme.wrapper -> t -> src:int -> dst:int -> Scheme.result
(** Like {!route}, but with the step function passed through the wrapper
    (e.g. the fault injector). Alternates per mode: other identified
    beacons in M1; the scale-i directory's other members (provisional
    owners, scales >= 2 only) and coarser hub pointers at a hub; coarser
    hub pointers as an owner. All are links the M1/M2 tables already pay
    for. [route] is [route_wrapped Scheme.identity_wrapper]. *)

val mode2_switches : t -> int
(** Number of M1 -> M2 switches since construction (diagnostics). *)

val reset_counters : t -> unit

val table_bits_m1 : t -> int array
(** Per-node M1 storage: the node's own distance label (used for decoding)
    plus its beacon link ids. *)

val table_bits_m2 : t -> int array
(** Per-node M2 storage: hub pointers, range directories at hubs, and the
    owned target links. *)

val header_bits : t -> int
val out_degree : t -> int

(** {2 Export}

    Flat state extraction for the off-heap snapshot layer ([ron_serve]).
    Arrays may share structure with the live value — treat them as borrowed
    and read-only. *)

type export = {
  x_n : int;
  x_li : int;  (** scale count ([max 1] of the hierarchy's levels) *)
  x_max_hops : int;
  x_header_bits : int;  (** constant across routes *)
  x_m1_threshold : float;
  x_r_level : float array array;  (** [r_level idx u i], per node, [x_li] each *)
  x_hub_ptr : int array array;  (** covering-ball hubs, per node per scale *)
  x_hub_g : int array array;
      (** per scale, per node: global directory index hubbed there, or [-1] *)
  x_dir_members : int array array;  (** per global directory, sorted *)
  x_dir_boundaries : int array array;  (** parallel to [x_dir_members] *)
  x_owned : int array array array;  (** [i].[u]: sorted owned target ids *)
  x_dist : float array;  (** the [n * n] metric, row-major *)
  x_dls : Ron_labeling.Dls.export;
}

val export : t -> export
