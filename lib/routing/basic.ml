module Indexed = Ron_metric.Indexed
module Sp_metric = Ron_graph.Sp_metric
module Graph = Ron_graph.Graph
module Bits = Ron_util.Bits
module Rings = Ron_core.Rings
module Zooming = Ron_core.Zooming
module Pool = Ron_util.Pool
module Probe = Ron_obs.Probe

type t = {
  sp : Sp_metric.t;
  st : Structure.t;
  first_hop : (int, int) Hashtbl.t array; (* per node: neighbor -> out-edge index *)
}

type header = { label : Zooming.encoded; target : int; level : int option }

let scales t = t.st.Structure.scales

let ring t u j = Array.copy (Rings.ring t.st.Structure.rings u j).Rings.members

let zooming t u = Array.copy t.st.Structure.zoomings.(u)

let max_ring_size t = Rings.max_ring_size t.st.Structure.rings

(* Structural accessors for the churn layer: the live ring collection and
   the metric substrate it was built over, so incremental ring repair can
   explore each ring's own ball. Borrowed — callers must repair a copy. *)
let rings_collection t = t.st.Structure.rings
let substrate t = t.st.Structure.idx

let build sp ~delta =
  Ron_obs.Profile.phase "construct.basic" @@ fun () ->
  let idx = Indexed.create (Sp_metric.metric sp) in
  let st = Structure.build idx ~delta in
  let n = Indexed.size idx in
  (* Per-node fan-out: each table reads only shared immutable state (the
     apsp and u's own cached neighbor slot), so nodes build in parallel. *)
  let first_hop =
    Ron_obs.Profile.phase "tables" @@ fun () ->
    Pool.init n (fun u ->
        let tbl = Hashtbl.create 64 in
        Array.iter
          (fun v ->
            if v <> u && not (Hashtbl.mem tbl v) then
              Hashtbl.replace tbl v (Sp_metric.first_hop_index sp u v))
          (Rings.neighbors st.Structure.rings u);
        if !Probe.on then Probe.table_node ();
        tbl)
  in
  { sp; st; first_hop }

let initial_header t dst = { label = t.st.Structure.labels.(dst); target = dst; level = None }

let step t u (h : header) : header Scheme.action =
  if u = h.target then Deliver
  else begin
    let m = Structure.decode t.st u h.label in
    let jut = Array.length m - 1 in
    let forward_to j =
      let w = Structure.intermediate_of t.st u m j in
      if w = u then
        failwith "Basic.step: intermediate target equals current node (invariant broken)"
      else begin
        match Hashtbl.find_opt t.first_hop.(u) w with
        | None -> failwith "Basic.step: no first-hop pointer to intermediate target"
        | Some k -> Scheme.Forward (Graph.hop (Sp_metric.graph t.sp) u k, { h with level = Some j })
      end
    in
    match h.level with
    | None -> forward_to jut
    | Some j ->
      if j > jut then failwith "Basic.step: Claim 2.4(b) violated (j > j_ut)";
      let w = Structure.intermediate_of t.st u m j in
      if w = u then forward_to jut (* u is the intermediate target: re-zoom *)
      else forward_to j
  end

(* Ranked fallback forwards: first hops toward the intermediate targets at
   every other level, coarsest first — the same links the routing table
   already pays for, just aimed at a different member of the zooming
   sequence. Used only by the fault layer when the primary hop is dead. *)
let alternates t u (h : header) =
  if u = h.target then []
  else begin
    let m = Structure.decode t.st u h.label in
    let jut = Array.length m - 1 in
    let seen = Hashtbl.create 8 in
    let acc = ref [] in
    for j = 0 to jut do
      let w = Structure.intermediate_of t.st u m j in
      if w <> u then
        match Hashtbl.find_opt t.first_hop.(u) w with
        | None -> ()
        | Some k ->
          let next = Graph.hop (Sp_metric.graph t.sp) u k in
          if next <> u && not (Hashtbl.mem seen next) then begin
            Hashtbl.replace seen next ();
            acc := (next, { h with level = Some j }) :: !acc
          end
    done;
    !acc (* built 0..jut with prepends, so coarsest (jut) comes first *)
  end

let route_wrapped (w : Scheme.wrapper) t ~src ~dst =
  let n = Indexed.size t.st.Structure.idx in
  let hb = Structure.label_bits t.st dst + Bits.index_bits (scales t + 1) in
  Scheme.simulate ~detect_cycles:w.Scheme.detect_cycles
    ~dist:(fun a b -> Sp_metric.dist t.sp a b)
    ~step:(w.Scheme.wrap (step t) ~alternates:(alternates t))
    ~header_bits:(fun _ -> hb)
    ~src ~header:(initial_header t dst)
    ~max_hops:(max 64 (8 * n)) ()

let route t ~src ~dst = route_wrapped Scheme.identity_wrapper t ~src ~dst

let table_bits t =
  let n = Indexed.size t.st.Structure.idx in
  let g = Sp_metric.graph t.sp in
  let fh_bits = Bits.index_bits (max 2 (Graph.max_out_degree g)) in
  Array.init n (fun u ->
      Structure.zeta_bits_sparse t.st u
      + (Hashtbl.length t.first_hop.(u) * fh_bits)
      + Bits.index_bits n)

let table_bits_dense t =
  let n = Indexed.size t.st.Structure.idx in
  let g = Sp_metric.graph t.sp in
  let fh_bits = Bits.index_bits (max 2 (Graph.max_out_degree g)) in
  let dense = Structure.zeta_bits_dense t.st in
  Array.init n (fun u ->
      dense + (Hashtbl.length t.first_hop.(u) * fh_bits) + Bits.index_bits n)

let label_bits t =
  Array.init (Indexed.size t.st.Structure.idx) (fun u -> Structure.label_bits t.st u)

let header_bits t = Structure.header_bits t.st

(* ----------------------------------------------------------- Wire format *)

module Bitio = Ron_util.Bitio

let serialize_label t dst =
  let n = Indexed.size t.st.Structure.idx in
  let enc = t.st.Structure.labels.(dst) in
  let w = Bitio.Writer.create () in
  Bitio.Writer.bits w dst ~width:(Bits.index_bits n);
  Bitio.Writer.bits w enc.Zooming.first ~width:t.st.Structure.ring_index_bits;
  Array.iter
    (fun y -> Bitio.Writer.bits w y ~width:t.st.Structure.ring_index_bits)
    enc.Zooming.rest;
  (Bitio.Writer.to_bytes w, Bitio.Writer.length w)

let deserialize_label t bytes =
  let n = Indexed.size t.st.Structure.idx in
  let r = Bitio.Reader.of_bytes bytes in
  let target = Bitio.Reader.bits r ~width:(Bits.index_bits n) in
  let first = Bitio.Reader.bits r ~width:t.st.Structure.ring_index_bits in
  let rest =
    Array.init (t.st.Structure.scales - 1) (fun _ ->
        Bitio.Reader.bits r ~width:t.st.Structure.ring_index_bits)
  in
  { label = { Zooming.first; rest }; target; level = None }

let route_header t ~src header =
  let n = Indexed.size t.st.Structure.idx in
  let hb =
    Structure.label_bits t.st header.target + Bits.index_bits (t.st.Structure.scales + 1)
  in
  Scheme.simulate
    ~dist:(fun a b -> Sp_metric.dist t.sp a b)
    ~step:(step t)
    ~header_bits:(fun _ -> hb)
    ~src ~header
    ~max_hops:(max 64 (8 * n)) ()

(* ----------------------------------------------------------------- Export *)

type export = {
  x_n : int;
  x_scales : int;
  x_max_hops : int;
  x_header_bits : int array;
  x_label_first : int array;
  x_label_rest : int array array;
  x_enums : int array array array;
  x_zetas : (int * int * int) array array array;
  x_table : (int * int * float) array array;
}

let compare_xy (x1, y1, _) (x2, y2, _) =
  if x1 <> x2 then Int.compare x1 x2 else Int.compare y1 y2

let compare_w (w1, _, _) (w2, _, _) = Int.compare w1 w2

let export t =
  let st = t.st in
  let n = Indexed.size st.Structure.idx in
  let g = Sp_metric.graph t.sp in
  let scales = st.Structure.scales in
  {
    x_n = n;
    x_scales = scales;
    x_max_hops = max 64 (8 * n);
    x_header_bits =
      Array.init n (fun dst ->
          Structure.label_bits st dst + Bits.index_bits (scales + 1));
    x_label_first = Array.map (fun enc -> enc.Zooming.first) st.Structure.labels;
    x_label_rest = Array.map (fun enc -> Array.copy enc.Zooming.rest) st.Structure.labels;
    x_enums =
      Array.init n (fun u ->
          Array.init scales (fun j -> Ron_core.Enumeration.nodes st.Structure.enums.(u).(j)));
    x_zetas =
      Array.init n (fun u ->
          Array.map
            (fun z ->
              let e = Array.of_list (Ron_core.Translation.entries z) in
              Array.sort compare_xy e;
              e)
            st.Structure.zetas.(u));
    x_table =
      Array.init n (fun u ->
          let entries =
            Hashtbl.fold
              (fun w k acc ->
                let next = Graph.hop g u k in
                (w, next, Sp_metric.dist t.sp u next) :: acc)
              t.first_hop.(u) []
          in
          let a = Array.of_list entries in
          Array.sort compare_w a;
          a);
  }
