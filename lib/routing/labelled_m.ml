module Indexed = Ron_metric.Indexed
module Net = Ron_metric.Net
module Bits = Ron_util.Bits
module Triangulation = Ron_labeling.Triangulation
module Dls = Ron_labeling.Dls

type t = {
  idx : Indexed.t;
  delta : float;
  dls : Dls.t;
  nbrs : int array array;
  dls_bits : int array;
}

let build idx ~delta =
  if not (delta > 0.0 && delta < 2.0 /. 3.0) then
    invalid_arg "Labelled_m.build: delta must be in (0, 2/3)";
  if Indexed.size idx >= 2 && Indexed.min_distance idx < 1.0 then
    invalid_arg "Labelled_m.build: metric must be normalized";
  let n = Indexed.size idx in
  let tri = Triangulation.build idx ~delta:Labelled.dls_delta in
  let dls = Dls.build tri in
  let hier = Triangulation.hierarchy tri in
  let jmax = Net.Hierarchy.jmax hier in
  let nbrs =
    Array.init n (fun u ->
        let tbl = Hashtbl.create 32 in
        for j = 0 to jmax do
          let r = Bits.pow2 (j + 2) /. delta in
          Indexed.ball_iter idx u r (fun v _ ->
              if Net.Hierarchy.mem hier j v then Hashtbl.replace tbl v ())
        done;
        let a = Array.of_list (Hashtbl.fold (fun v () acc -> v :: acc) tbl []) in
        Ron_util.Fsort.sort_ints a;
        a)
  in
  { idx; delta; dls; nbrs; dls_bits = Dls.label_bits dls }

let step t u target : int Scheme.action =
  if u = target then Deliver
  else begin
    let lt = Dls.label t.dls target in
    let best = ref (-1) and best_d = ref infinity in
    Array.iter
      (fun v ->
        if v <> u then begin
          let d = Dls.estimate (Dls.label t.dls v) lt in
          if d < !best_d || (d = !best_d && v < !best) then begin
            best := v;
            best_d := d
          end
        end)
      t.nbrs.(u);
    if !best < 0 then failwith "Labelled_m.step: no neighbors";
    Forward (!best, target)
  end

let route t ~src ~dst =
  let n = Indexed.size t.idx in
  let hb = t.dls_bits.(dst) + Bits.index_bits n in
  Scheme.simulate
    ~dist:(fun a b -> Indexed.dist t.idx a b)
    ~step:(step t)
    ~header_bits:(fun _ -> hb)
    ~src ~header:dst
    ~max_hops:(max 64 (4 * n)) ()

let out_degree t = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 t.nbrs

let mean_out_degree t =
  let n = Array.length t.nbrs in
  float_of_int (Array.fold_left (fun acc a -> acc + Array.length a) 0 t.nbrs)
  /. float_of_int (max 1 n)

let table_bits t =
  let n = Indexed.size t.idx in
  Array.init n (fun u ->
      Array.fold_left (fun acc v -> acc + t.dls_bits.(v)) 0 t.nbrs.(u) + Bits.index_bits n)

let label_bits t = Array.copy t.dls_bits

let header_bits t =
  Array.fold_left max 0 t.dls_bits + Bits.index_bits (Indexed.size t.idx)
