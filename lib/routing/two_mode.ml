module Indexed = Ron_metric.Indexed
module Packing = Ron_metric.Packing
module Bits = Ron_util.Bits
module Triangulation = Ron_labeling.Triangulation
module Dls = Ron_labeling.Dls
module Pool = Ron_util.Pool
module Probe = Ron_obs.Probe

(* One M2 directory: a packing ball whose members collectively own direct
   links to every node of the enclosing ball B'. *)
type directory = {
  hub : int;
  members : int array; (* sorted ids of the packing ball B *)
  boundaries : int array; (* boundaries.(k): smallest target id owned by members.(k);
                             boundaries.(0) = 0; ids below boundaries.(k+1) belong to k *)
  owned : int array array; (* owned.(k): sorted ids of B' assigned to members.(k) *)
}

type t = {
  idx : Indexed.t;
  delta : float;
  m1_threshold : float;
  dls : Dls.t;
  li : int;
  dirs : directory array array; (* dirs.(i): all scale-i directories, i in 1..li-1 *)
  hub_dir : (int, int) Hashtbl.t array; (* hub_dir.(i): hub id -> index into dirs.(i) *)
  member_dir : int array array; (* member_dir.(i).(u) = directory index containing u, or -1 *)
  hub_ptr : int array array; (* hub_ptr.(u).(i) = hub of u's covering ball at scale i *)
  owned_lookup : (int, unit) Hashtbl.t array array; (* owned_lookup.(i).(u): u's owned targets *)
  mutable m2_switches : int;
}

let mode2_switches t = t.m2_switches
let reset_counters t = t.m2_switches <- 0

let build ?(m1_threshold = 1.0 /. 3.0) idx ~delta =
  if not (delta > 0.0 && delta <= 0.125) then
    invalid_arg "Two_mode.build: delta must be in (0, 1/8]";
  if not (m1_threshold > 0.0 && m1_threshold < 0.5) then
    invalid_arg "Two_mode.build: m1_threshold must be in (0, 1/2)";
  Ron_obs.Profile.phase "construct.two_mode" @@ fun () ->
  let n = Indexed.size idx in
  let tri = Triangulation.build idx ~delta in
  let dls = Dls.build tri in
  let li = Triangulation.levels tri in
  let dirs = Array.make (max 1 li) [||] in
  let hub_dir = Array.init (max 1 li) (fun _ -> Hashtbl.create 16) in
  let member_dir = Array.init (max 1 li) (fun _ -> Array.make n (-1)) in
  let owned_lookup = Array.init (max 1 li) (fun _ -> Array.init n (fun _ -> Hashtbl.create 1)) in
  (Ron_obs.Profile.phase "directories" @@ fun () ->
  for i = 1 to li - 1 do
    let packing = Triangulation.packing tri i in
    let make_directory b =
      let hub = b.Packing.center in
      let members = Array.copy b.Packing.members in
      Ron_util.Fsort.sort_ints members;
      let big_radius = Indexed.r_level idx hub (i - 1) in
      let big = Indexed.ball idx hub big_radius in
      Ron_util.Fsort.sort_ints big;
      let k = Array.length members in
      let total = Array.length big in
      let chunk = max 1 ((total + k - 1) / k) in
      let owned =
        Array.init k (fun m ->
            let lo = m * chunk in
            let hi = min total ((m + 1) * chunk) in
            if lo >= total then [||] else Array.sub big lo (hi - lo))
      in
      let boundaries =
        Array.init k (fun m -> if m = 0 then 0 else if m * chunk < total then big.(m * chunk) else n)
      in
      { hub; members; boundaries; owned }
    in
    (* Directories are independent (pure ball queries on the immutable
       index); build them in parallel. The registration pass below writes
       the shared lookup tables and stays serial. *)
    let ds = Pool.map make_directory (Packing.balls packing) in
    dirs.(i) <- ds;
    Array.iteri
      (fun di d ->
        Hashtbl.replace hub_dir.(i) d.hub di;
        Array.iteri
          (fun m v ->
            member_dir.(i).(v) <- di;
            Array.iter (fun tgt -> Hashtbl.replace owned_lookup.(i).(v) tgt ()) d.owned.(m))
          d.members)
      ds
  done);
  let hub_ptr =
    Ron_obs.Profile.phase "hub_ptrs" @@ fun () ->
    Pool.init n (fun u ->
        let ptr =
          Array.init (max 1 li) (fun i ->
              if i = 0 then u
              else (Packing.covering_ball (Triangulation.packing tri i) idx u).Packing.center)
        in
        if !Probe.on then Probe.table_node ();
        ptr)
  in
  { idx; delta; m1_threshold; dls; li; dirs; hub_dir; member_dir; hub_ptr; owned_lookup; m2_switches = 0 }

type mode = M1 | M2_hub of int | M2_owner of int

type header = { lt : Dls.label; target : int; mode : mode }

(* Scale for the M2 switch, from the label-only estimate d~ of d(u,t):
   the deepest i >= 1 whose previous-scale radius still dominates (4/3) d~
   (Lemma B.5's upper condition, conservatively with the overestimate). *)
let switch_scale t u d_est =
  let rec go i best =
    if i > t.li - 1 then best
    else if Indexed.r_level t.idx u (i - 1) >= 4.0 /. 3.0 *. d_est then go (i + 1) i
    else best
  in
  go 1 1

let owner_of dir target =
  (* Largest k with boundaries.(k) <= target. *)
  let k = Array.length dir.boundaries in
  let rec search lo hi =
    if lo >= hi then lo - 1
    else begin
      let mid = (lo + hi) / 2 in
      if dir.boundaries.(mid) <= target then search (mid + 1) hi else search lo mid
    end
  in
  let m = max 0 (search 0 k) in
  dir.members.(m)

let step t u (h : header) : header Scheme.action =
  if u = h.target then Deliver
  else begin
    (* Resolve the hub of u's covering ball at scale [i]. When u is its own
       hub (or its own owner) the lookup continues locally — the packet only
       leaves through an actual link, never to itself. Scale 1's directory
       spans the whole node set, so the recursion terminates. *)
    let rec resolve_scale i : header Scheme.action =
      if i < 1 then failwith "Two_mode.step: ran out of directory scales";
      let hub = t.hub_ptr.(u).(i) in
      if hub <> u then Forward (hub, { h with mode = M2_hub i })
      else at_hub i
    and at_hub i =
      match Hashtbl.find_opt t.hub_dir.(i) u with
      | None -> failwith "Two_mode.step: hub pointer does not name a hub"
      | Some di ->
        let owner = owner_of t.dirs.(i).(di) h.target in
        if owner <> u then Forward (owner, { h with mode = M2_owner i })
        else as_owner i
    and as_owner i =
      if Hashtbl.mem t.owned_lookup.(i).(u) h.target then Forward (h.target, { h with mode = M1 })
      else if i <= 1 then failwith "Two_mode.step: scale-1 directory must cover all targets"
      else resolve_scale (i - 1)
    in
    match h.mode with
    | M1 -> begin
      let lu = Dls.label t.dls u in
      let cands = Dls.candidates lu h.lt in
      let d_est =
        List.fold_left (fun acc (_, _, du, dv) -> Float.min acc (du +. dv)) infinity cands
      in
      if not (Float.is_finite d_est) then
        failwith "Two_mode.step: no common beacon identified (Theorem 3.4 violated)";
      let beacons = Dls.host_beacons t.dls u in
      (* Best identified beacon by proximity to the target, excluding u. *)
      let best = ref (-1) and best_dv = ref infinity in
      List.iter
        (fun (iu, _, _, dv) ->
          let w = beacons.(iu) in
          if w <> u && (dv < !best_dv || (dv = !best_dv && w < !best)) then begin
            best := w;
            best_dv := dv
          end)
        cands;
      if !best >= 0 && !best_dv <= d_est *. t.m1_threshold then Forward (!best, h)
      else begin
        (* Lemma B.5 territory: switch to mode M2. *)
        t.m2_switches <- t.m2_switches + 1;
        resolve_scale (switch_scale t u d_est)
      end
    end
    | M2_hub i -> at_hub i
    | M2_owner i -> as_owner i
  end

let header_bits t =
  let n = Indexed.size t.idx in
  Array.fold_left max 0 (Dls.label_bits t.dls)
  + Bits.index_bits n (* target id *)
  + 2 (* mode tag *)
  + Bits.index_bits (t.li + 1)

(* Ranked fallback forwards for the fault layer. Every alternate uses a
   link the node's M1/M2 tables already hold:
   - in M1, the other identified beacons (ranked by proximity to the
     target, the primary selection's own score);
   - at a hub (M2_hub i), the other members of the scale-i directory sent
     as provisional owners — safe for i >= 2 because a non-owner falls
     through [as_owner] to [resolve_scale (i-1)]; at scale 1 only the true
     owner may receive [M2_owner 1] (anyone else would violate the
     directory invariant), so there is no in-directory alternate;
   - as an owner (M2_owner i), the coarser hub pointers below the scale the
     primary resolution would use. *)
let alternates t u (h : header) =
  if u = h.target then []
  else begin
    let hub_chain below =
      let acc = ref [] in
      for i = 1 to min below (t.li - 1) do
        let hub = t.hub_ptr.(u).(i) in
        if hub <> u then acc := (hub, { h with mode = M2_hub i }) :: !acc
      done;
      !acc (* built 1..below with prepends, so coarser scales come first *)
    in
    let dedupe l =
      let seen = Hashtbl.create 8 in
      List.filter
        (fun (next, _) ->
          if next = u || Hashtbl.mem seen next then false
          else begin
            Hashtbl.replace seen next ();
            true
          end)
        l
    in
    match h.mode with
    | M1 ->
      let lu = Dls.label t.dls u in
      let cands = Dls.candidates lu h.lt in
      let beacons = Dls.host_beacons t.dls u in
      let ranked =
        List.sort
          (fun (dv1, w1) (dv2, w2) ->
            match Float.compare dv1 dv2 with 0 -> compare w1 w2 | c -> c)
          (List.filter_map
             (fun (iu, _, _, dv) ->
               let w = beacons.(iu) in
               if w = u then None else Some (dv, w))
             cands)
      in
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | (_, w) :: rest -> (w, h) :: take (k - 1) rest
      in
      dedupe (take 4 ranked @ hub_chain (t.li - 1))
    | M2_hub i -> (
      match Hashtbl.find_opt t.hub_dir.(i) u with
      | None -> dedupe (hub_chain (i - 1))
      | Some di ->
        let dir = t.dirs.(i).(di) in
        let owner = owner_of dir h.target in
        let members =
          if i >= 2 then
            List.filter_map
              (fun v -> if v = owner then None else Some (v, { h with mode = M2_owner i }))
              (Array.to_list dir.members)
          else []
        in
        dedupe (members @ hub_chain (i - 1)))
    | M2_owner i -> dedupe (hub_chain (i - 1))
  end

let route_wrapped (w : Scheme.wrapper) t ~src ~dst =
  let hb = header_bits t in
  Scheme.simulate ~detect_cycles:w.Scheme.detect_cycles
    ~dist:(fun a b -> Indexed.dist t.idx a b)
    ~step:(w.Scheme.wrap (step t) ~alternates:(alternates t))
    ~header_bits:(fun _ -> hb)
    ~src
    ~header:{ lt = Dls.label t.dls dst; target = dst; mode = M1 }
    ~max_hops:(max 64 (8 * t.li)) ()

let route t ~src ~dst = route_wrapped Scheme.identity_wrapper t ~src ~dst

let table_bits_m1 t =
  let n = Indexed.size t.idx in
  let id_bits = Bits.index_bits n in
  let lb = Dls.label_bits t.dls in
  Array.init n (fun u -> lb.(u) + (Array.length (Dls.host_beacons t.dls u) * id_bits))

let table_bits_m2 t =
  let n = Indexed.size t.idx in
  let id_bits = Bits.index_bits n in
  Array.init n (fun u ->
      let acc = ref ((t.li - 1) * id_bits) (* hub pointers *) in
      for i = 1 to t.li - 1 do
        (match Hashtbl.find_opt t.hub_dir.(i) u with
        | Some di ->
          let d = t.dirs.(i).(di) in
          acc := !acc + (Array.length d.boundaries * id_bits) (* range directory *)
                 + (Array.length d.members * id_bits) (* links to members *)
        | None -> ());
        acc := !acc + (Hashtbl.length t.owned_lookup.(i).(u) * id_bits) (* owned routes *)
      done;
      !acc)

let out_degree t =
  let n = Indexed.size t.idx in
  let best = ref 0 in
  for u = 0 to n - 1 do
    let links = Hashtbl.create 64 in
    Array.iter (fun v -> if v <> u then Hashtbl.replace links v ()) (Dls.host_beacons t.dls u);
    for i = 1 to t.li - 1 do
      if t.hub_ptr.(u).(i) <> u then Hashtbl.replace links t.hub_ptr.(u).(i) ();
      (match Hashtbl.find_opt t.hub_dir.(i) u with
      | Some di -> Array.iter (fun v -> if v <> u then Hashtbl.replace links v ()) t.dirs.(i).(di).members
      | None -> ());
      Hashtbl.iter (fun v () -> if v <> u then Hashtbl.replace links v ()) t.owned_lookup.(i).(u)
    done;
    best := max !best (Hashtbl.length links)
  done;
  !best

(* ----------------------------------------------------------------- Export *)

type export = {
  x_n : int;
  x_li : int;
  x_max_hops : int;
  x_header_bits : int;
  x_m1_threshold : float;
  x_r_level : float array array;
  x_hub_ptr : int array array;
  x_hub_g : int array array;
  x_dir_members : int array array;
  x_dir_boundaries : int array array;
  x_owned : int array array array;
  x_dist : float array;
  x_dls : Dls.export;
}

let export t =
  let n = Indexed.size t.idx in
  let li = max 1 t.li in
  let gcount = Array.fold_left (fun acc ds -> acc + Array.length ds) 0 t.dirs in
  let dir_members = Array.make (max 1 gcount) [||] in
  let dir_boundaries = Array.make (max 1 gcount) [||] in
  let hub_g = Array.init li (fun _ -> Array.make n (-1)) in
  let g = ref 0 in
  Array.iteri
    (fun i ds ->
      Array.iter
        (fun d ->
          dir_members.(!g) <- d.members;
          dir_boundaries.(!g) <- d.boundaries;
          hub_g.(i).(d.hub) <- !g;
          incr g)
        ds)
    t.dirs;
  let dist = Array.make (n * n) 0.0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      dist.((u * n) + v) <- Indexed.dist t.idx u v
    done
  done;
  {
    x_n = n;
    x_li = li;
    x_max_hops = max 64 (8 * t.li);
    x_header_bits = header_bits t;
    x_m1_threshold = t.m1_threshold;
    x_r_level = Array.init n (fun u -> Array.init li (fun i -> Indexed.r_level t.idx u i));
    x_hub_ptr = t.hub_ptr;
    x_hub_g = hub_g;
    x_dir_members = Array.sub dir_members 0 gcount;
    x_dir_boundaries = Array.sub dir_boundaries 0 gcount;
    x_owned =
      Array.init li (fun i ->
          Array.init n (fun u ->
              let a =
                Array.of_list
                  (Hashtbl.fold (fun k () acc -> k :: acc) t.owned_lookup.(i).(u) [])
              in
              Ron_util.Fsort.sort_ints a;
              a));
    x_dist = dist;
    x_dls = Dls.export t.dls;
  }
