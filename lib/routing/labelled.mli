(** The "really simple" (1 + delta)-stretch routing scheme of Theorem 4.1,
    built on distance labels as a black box (Figure 1's arrow from Theorem
    3.4).

    Fix a 3/2-approximate distance labeling scheme [L] (Theorem 3.4 with a
    suitable internal delta). The j-level neighbors of [u] are
    [F_j(u) = B_u(2^(j+2)/delta) ∩ F_j] for [2^j]-nets [F_j]; the routing
    table stores each neighbor's distance label and first-hop pointer. The
    packet header is the target's label plus the current intermediate
    target's global id. At an intermediate target, the node picks the
    neighbor [v] minimizing the labeled estimate [D(L_v, L_t)] — within
    [(3/2) delta d] of [t] — so intermediate targets converge geometrically
    and the total stretch is [1 + O(delta)].

    The payoff over Theorem 2.1 is header size independent of [log Delta]:
    [2^O(alpha) (log n)(log (1/delta * log Delta))] bits. *)

type t

val dls_delta : float
(** The internal accuracy of the black-box distance labeling: chosen so the
    labeled estimate is 3/2-approximate, as the theorem requires. *)

val build : Ron_graph.Sp_metric.t -> delta:float -> t
(** [delta] in (0, 2/3): the analysis needs the per-round contraction
    [(3/2) delta < 1]. *)

val route : t -> src:int -> dst:int -> Scheme.result

val route_wrapped : Scheme.wrapper -> t -> src:int -> dst:int -> Scheme.result
(** Like {!route}, but with the step function passed through the wrapper
    (e.g. the fault injector). The ranked alternates are the node's
    neighbors ordered by labeled distance estimate to the target — the
    primary selection's own score — each becoming the new intermediate
    target. [route] is [route_wrapped Scheme.identity_wrapper]. *)

val table_bits : t -> int array
(** Neighbor labels plus first-hop pointers. *)

val label_bits : t -> int array
(** The (distance-labeling) label of each node — what the header carries. *)

val header_bits : t -> int
val out_degree : t -> int
(** Max number of neighbors (the overlay degree). *)

val neighbors : t -> int -> int array

(** {2 Export}

    Flat state extraction for the off-heap snapshot layer ([ron_serve]).
    Arrays may share structure with the live value — treat them as borrowed
    and read-only. *)

type export = {
  x_n : int;
  x_max_hops : int;
  x_header_bits : int array;  (** per destination *)
  x_nbrs : int array array;  (** sorted distinct neighbor ids, per node *)
  x_table : (int * int * float) array array;
      (** per node, sorted by neighbor: (neighbor, next hop, hop cost) *)
  x_dls : Ron_labeling.Dls.export;
}

val export : t -> export
