module Sp_metric = Ron_graph.Sp_metric
module Graph = Ron_graph.Graph
module Bits = Ron_util.Bits

type t = { sp : Sp_metric.t }

let build sp = { sp }

let route t ~src ~dst =
  let g = Sp_metric.graph t.sp in
  let n = Graph.size g in
  let step u target =
    if u = target then Scheme.Deliver
    else Scheme.Forward (Sp_metric.next_toward t.sp u target, target)
  in
  Scheme.simulate
    ~dist:(fun a b -> Sp_metric.dist t.sp a b)
    ~step
    ~header_bits:(fun _ -> Bits.index_bits n)
    ~src ~header:dst ~max_hops:(max 64 (2 * n)) ()

let table_bits t =
  let g = Sp_metric.graph t.sp in
  let n = Graph.size g in
  let fh_bits = Bits.index_bits (max 2 (Graph.max_out_degree g)) in
  (* One first-hop entry per target, indexed by the target's global id. *)
  Array.make n ((n - 1) * fh_bits)

let header_bits t = Bits.index_bits (Graph.size (Sp_metric.graph t.sp))
