module Indexed = Ron_metric.Indexed
module Bits = Ron_util.Bits
module Rings = Ron_core.Rings
module Zooming = Ron_core.Zooming

type t = { st : Structure.t }

type header = { label : Zooming.encoded; target : int }

let build idx ~delta = { st = Structure.build idx ~delta }

let scales t = t.st.Structure.scales
let max_ring_size t = Rings.max_ring_size t.st.Structure.rings

(* Each step jumps straight to the best intermediate target: the overlay
   link to f_(t, j_ut). *)
let step t u (h : header) : header Scheme.action =
  if u = h.target then Deliver
  else begin
    let m = Structure.decode t.st u h.label in
    let jut = Array.length m - 1 in
    let w = Structure.intermediate_of t.st u m jut in
    if w = u then failwith "On_metric.step: intermediate target equals current node"
    else Forward (w, h)
  end

let route t ~src ~dst =
  let hb = Structure.label_bits t.st dst in
  Scheme.simulate
    ~dist:(fun a b -> Indexed.dist t.st.Structure.idx a b)
    ~step:(step t)
    ~header_bits:(fun _ -> hb)
    ~src
    ~header:{ label = t.st.Structure.labels.(dst); target = dst }
    ~max_hops:(max 64 (4 * t.st.Structure.scales)) ()

let out_degree t = Rings.max_out_degree t.st.Structure.rings

let mean_out_degree t =
  let n = Rings.size t.st.Structure.rings in
  let acc = ref 0 in
  for u = 0 to n - 1 do
    acc := !acc + Rings.out_degree t.st.Structure.rings u
  done;
  float_of_int !acc /. float_of_int n

let table_bits t =
  let n = Indexed.size t.st.Structure.idx in
  Array.init n (fun u -> Structure.zeta_bits_sparse t.st u + Bits.index_bits n)

let label_bits t =
  Array.init (Indexed.size t.st.Structure.idx) (fun u -> Structure.label_bits t.st u)

let header_bits t =
  let n = Indexed.size t.st.Structure.idx in
  Array.fold_left (fun acc u -> max acc (Structure.label_bits t.st u)) 0
    (Array.init n Fun.id)
