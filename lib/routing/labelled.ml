module Indexed = Ron_metric.Indexed
module Net = Ron_metric.Net
module Sp_metric = Ron_graph.Sp_metric
module Graph = Ron_graph.Graph
module Bits = Ron_util.Bits
module Triangulation = Ron_labeling.Triangulation
module Dls = Ron_labeling.Dls
module Pool = Ron_util.Pool
module Probe = Ron_obs.Probe

(* Internal delta for the black-box DLS: (1+2d)(1+d/8) <= 3/2 holds for
   d = 0.22. *)
let dls_delta = 0.22

type t = {
  sp : Sp_metric.t;
  idx : Indexed.t;
  delta : float;
  dls : Dls.t;
  nbrs : int array array; (* per node: sorted distinct neighbor ids *)
  first_hop : (int, int) Hashtbl.t array;
  dls_bits : int array;
}

let neighbors t u = Array.copy t.nbrs.(u)

let build sp ~delta =
  if not (delta > 0.0 && delta < 2.0 /. 3.0) then
    invalid_arg "Labelled.build: delta must be in (0, 2/3)";
  Ron_obs.Profile.phase "construct.labelled" @@ fun () ->
  let metric = Ron_metric.Metric.normalize (Sp_metric.metric sp) in
  let idx = Indexed.create metric in
  let n = Indexed.size idx in
  let tri = Triangulation.build idx ~delta:dls_delta in
  let dls = Dls.build tri in
  (* F_j = 2^j-nets (the hierarchy's levels); F_j(u) = B_u(2^(j+2)/delta). *)
  let hier = Triangulation.hierarchy tri in
  let jmax = Net.Hierarchy.jmax hier in
  (* Both per-node passes read only immutable state (the index, the
     hierarchy, and — for the second — the finished [nbrs]), so each is a
     parallel fan-out over nodes. *)
  let nbrs =
    Ron_obs.Profile.phase "neighbors" @@ fun () ->
    Pool.init n (fun u ->
        let tbl = Hashtbl.create 32 in
        for j = 0 to jmax do
          let r = Ron_util.Bits.pow2 (j + 2) /. delta in
          Indexed.ball_iter idx u r (fun v _ ->
              if Net.Hierarchy.mem hier j v then Hashtbl.replace tbl v ())
        done;
        let a = Array.of_list (Hashtbl.fold (fun v () acc -> v :: acc) tbl []) in
        Ron_util.Fsort.sort_ints a;
        a)
  in
  let first_hop =
    Ron_obs.Profile.phase "tables" @@ fun () ->
    Pool.init n (fun u ->
        let tbl = Hashtbl.create 32 in
        Array.iter
          (fun v -> if v <> u then Hashtbl.replace tbl v (Sp_metric.first_hop_index sp u v))
          nbrs.(u);
        if !Probe.on then Probe.table_node ();
        tbl)
  in
  { sp; idx; delta; dls; nbrs; first_hop; dls_bits = Dls.label_bits dls }

type header = { target : int; intermediate : int }

let step t ~score u (h : header) : header Scheme.action =
  if u = h.target then Deliver
  else begin
    let forward_to v h' =
      match Hashtbl.find_opt t.first_hop.(u) v with
      | Some k -> Scheme.Forward (Graph.hop (Sp_metric.graph t.sp) u k, h')
      | None -> failwith "Labelled.step: intermediate target is not a neighbor"
    in
    if h.intermediate = u then begin
      (* Select a new intermediate target: the neighbor minimizing the
         labeled distance estimate to the target. *)
      let best = ref (-1) and best_d = ref infinity in
      Array.iter
        (fun v ->
          if v <> u then begin
            let d = score v in
            if d < !best_d || (d = !best_d && v < !best) then begin
              best := v;
              best_d := d
            end
          end)
        t.nbrs.(u);
      if !best < 0 then failwith "Labelled.step: no neighbors";
      forward_to !best { h with intermediate = !best }
    end
    else forward_to h.intermediate h
  end

(* Ranked fallback forwards: the node's neighbors ordered by their labeled
   distance estimate to the target (the same score the primary selection
   uses), each re-aimed as the new intermediate target. Capped — the fault
   layer only ever needs the first few live ones. *)
let alternates t ~score u (h : header) =
  if u = h.target then []
  else begin
    let scored = ref [] in
    Array.iter
      (fun v -> if v <> u then scored := (score v, v) :: !scored)
      t.nbrs.(u);
    let ranked =
      List.sort
        (fun (d1, v1) (d2, v2) ->
          match Float.compare d1 d2 with 0 -> compare v1 v2 | c -> c)
        !scored
    in
    let seen = Hashtbl.create 8 in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | (_, v) :: rest -> (
        match Hashtbl.find_opt t.first_hop.(u) v with
        | None -> take k rest
        | Some i ->
          let next = Graph.hop (Sp_metric.graph t.sp) u i in
          if next = u || Hashtbl.mem seen next then take k rest
          else begin
            Hashtbl.replace seen next ();
            (next, { h with intermediate = v }) :: take (k - 1) rest
          end)
    in
    take 4 ranked
  end

let route_wrapped (w : Scheme.wrapper) t ~src ~dst =
  let n = Indexed.size t.idx in
  let hdr_bits _ = t.dls_bits.(dst) + Bits.index_bits n in
  (* Per-route memo of the labeled estimate v -> dst. The target never
     changes within a route, but intermediate re-selection re-scores a
     node's whole neighbor set, and fault detours re-select at every
     blocked hop — without the memo a long detour walk pays |nbrs| label
     decodes per revisited node instead of one array read. *)
  let lt = Dls.label t.dls dst in
  let memo = Array.make n nan in
  let score v =
    let s = memo.(v) in
    if Float.is_nan s then begin
      let s = Dls.estimate (Dls.label t.dls v) lt in
      memo.(v) <- s;
      s
    end
    else s
  in
  Scheme.simulate ~detect_cycles:w.Scheme.detect_cycles
    ~dist:(fun a b -> Sp_metric.dist t.sp a b)
    ~step:(w.Scheme.wrap (step t ~score) ~alternates:(alternates t ~score))
    ~header_bits:hdr_bits ~src
    ~header:{ target = dst; intermediate = src }
    ~max_hops:(max 64 (8 * n)) ()

let route t ~src ~dst = route_wrapped Scheme.identity_wrapper t ~src ~dst

let table_bits t =
  let g = Sp_metric.graph t.sp in
  let n = Indexed.size t.idx in
  let fh_bits = Bits.index_bits (max 2 (Graph.max_out_degree g)) in
  Array.init n (fun u ->
      Array.fold_left (fun acc v -> acc + t.dls_bits.(v) + fh_bits) 0 t.nbrs.(u)
      + Bits.index_bits n)

let label_bits t = Array.copy t.dls_bits

let header_bits t =
  let n = Indexed.size t.idx in
  Array.fold_left max 0 t.dls_bits + Bits.index_bits n

let out_degree t = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 t.nbrs

(* ----------------------------------------------------------------- Export *)

type export = {
  x_n : int;
  x_max_hops : int;
  x_header_bits : int array;
  x_nbrs : int array array;
  x_table : (int * int * float) array array;
  x_dls : Dls.export;
}

let compare_w (w1, _, _) (w2, _, _) = Int.compare w1 w2

let export t =
  let n = Indexed.size t.idx in
  let g = Sp_metric.graph t.sp in
  {
    x_n = n;
    x_max_hops = max 64 (8 * n);
    x_header_bits = Array.map (fun b -> b + Bits.index_bits n) t.dls_bits;
    x_nbrs = t.nbrs;
    x_table =
      Array.init n (fun u ->
          let entries =
            Hashtbl.fold
              (fun w k acc ->
                let next = Graph.hop g u k in
                (w, next, Sp_metric.dist t.sp u next) :: acc)
              t.first_hop.(u) []
          in
          let a = Array.of_list entries in
          Array.sort compare_w a;
          a);
    x_dls = Dls.export t.dls;
  }
