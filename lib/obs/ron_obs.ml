(* Top-level faucet for the observability stack: enable/disable the probes
   and render everything recorded so far as one deterministic JSON value.

   Determinism contract (tested): the snapshot contains no wall-clock data
   and every aggregate is computed over deterministically ordered inputs —
   counters are commutative int sums, histogram buffers are sorted before
   summarizing, ledger entries sort by (kind, id) with caller-assigned ids.
   Hence a run at RON_JOBS=4 snapshots byte-identically to RON_JOBS=1. *)

module Json = Json
module Counter = Counter
module Gauge = Gauge
module Histogram = Histogram
module Ledger = Ledger
module Trace = Trace
module Trace_read = Trace_read
module Probe = Probe
module Profile = Profile
module Telemetry = Telemetry
module Rss = Rss
module Flight = Flight
module Slo = Slo
module Expo = Expo
module Sparkline = Sparkline

let enable () = Probe.on := true
let disable () = Probe.on := false
let enabled () = !Probe.on

let reset () =
  Counter.reset_all ();
  Gauge.reset_all ();
  Histogram.reset_all ();
  Histogram.Bucketed.reset_all ();
  Ledger.reset ()

let summary_json (s : Ron_util.Stats.summary) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("mean", Json.Float s.mean);
      ("stddev", Json.Float s.stddev);
      ("min", Json.Float s.min);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p99", Json.Float s.p99);
      ("max", Json.Float s.max);
    ]

let counters_json () =
  Json.Obj
    (List.map (fun c -> (Counter.name c, Json.Int (Counter.value c))) (Counter.all ()))

(* Env gauges (worker counts, per-domain cache occupancy) depend on
   RON_JOBS by nature; the deterministic snapshot carries only the rest. *)
let gauges_json () =
  Json.Obj
    (List.filter_map
       (fun g ->
         if Gauge.written g && not (Gauge.env g) then
           Some (Gauge.name g, Json.Float (Gauge.value g))
         else None)
       (Gauge.all ()))

let bucketed_json () =
  Json.Obj
    (List.filter_map
       (fun h ->
         let s = Histogram.Bucketed.summary h in
         if s.Histogram.Bucketed.count = 0 then None
         else
           Some
             ( Histogram.Bucketed.name h,
               Json.Obj
                 [
                   ("count", Json.Int s.Histogram.Bucketed.count);
                   ("min", Json.Float s.Histogram.Bucketed.min);
                   ("max", Json.Float s.Histogram.Bucketed.max);
                   ("p50", Json.Float s.Histogram.Bucketed.p50);
                   ("p95", Json.Float s.Histogram.Bucketed.p95);
                   ("p99", Json.Float s.Histogram.Bucketed.p99);
                 ] ))
       (Histogram.Bucketed.all ()))

let histograms_json () =
  Json.Obj
    (List.filter_map
       (fun h ->
         let xs = Histogram.values h in
         if Array.length xs = 0 then None
         else Some (Histogram.name h, summary_json (Ron_util.Stats.summarize xs)))
       (Histogram.all ()))

(* One summary per ledger field, over all entries of the same kind. The
   field arrays are built in (kind, id) order and sorted again before
   summarizing so the mean's fold order is fixed. *)
let queries_json () =
  let entries = Ledger.entries () in
  let kinds =
    List.sort_uniq String.compare (List.map (fun (e : Ledger.entry) -> e.kind) entries)
  in
  let field name get group =
    let xs = Array.of_list (List.map (fun e -> float_of_int (get e)) group) in
    Ron_util.Fsort.sort_floats xs;
    (name, summary_json (Ron_util.Stats.summarize xs))
  in
  Json.Obj
    (List.map
       (fun kind ->
         let group =
           List.filter (fun (e : Ledger.entry) -> String.equal e.kind kind) entries
         in
         let header_max =
           List.fold_left
             (fun acc (e : Ledger.entry) -> max acc e.header_bits_max)
             0 group
         in
         ( kind,
           Json.Obj
             [
               ("count", Json.Int (List.length group));
               field "dist_evals" (fun e -> e.Ledger.dist_evals) group;
               field "ball_queries" (fun e -> e.Ledger.ball_queries) group;
               field "ring_lookups" (fun e -> e.Ledger.ring_lookups) group;
               field "ring_members" (fun e -> e.Ledger.ring_members) group;
               field "zoom_steps" (fun e -> e.Ledger.zoom_steps) group;
               field "hops" (fun e -> e.Ledger.hops) group;
               field "header_rewrites" (fun e -> e.Ledger.header_rewrites) group;
               field "table_touches" (fun e -> e.Ledger.table_touches) group;
               ("header_bits_max", Json.Int header_max);
             ] ))
       kinds)

let snapshot () =
  Json.Obj
    [
      ("schema", Json.String "ron-obs/1");
      ("counters", counters_json ());
      ("gauges", gauges_json ());
      ("histograms", histograms_json ());
      ("bucketed_histograms", bucketed_json ());
      ("queries", queries_json ());
    ]

let write_snapshot file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (snapshot ())))
