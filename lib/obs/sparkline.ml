(* Unicode block-element sparklines for sparse telemetry series, shared
   by telemetry_report and unit-tested directly. A series is (sample
   index, value) points in ascending index order over [0, samples);
   sections only carry a name once it has something to report, so indices
   may be sparse and may start late.

   Gaps are filled by carry-forward — and, crucially, samples *before*
   the first point carry the first point's value backward rather than a
   fabricated 0.0: a constant-valued series that starts late must render
   flat, not as a cliff from a zero it never reported. Flat series (and
   single-sample series, which are flat by construction) have no range to
   scale against and render as a run of mid-level blocks instead of
   dividing by zero. *)

let default_width = 40

let levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let mid_level = 3

let render ?(width = default_width) ~samples points =
  if samples <= 0 || points = [] || width <= 0 then ""
  else begin
    let filled = Array.make samples 0.0 in
    let first = snd (List.hd points) in
    let rec fill prev i points =
      if i >= samples then ()
      else
        match points with
        | (j, v) :: rest when j = i ->
          filled.(i) <- v;
          fill v (i + 1) rest
        | _ ->
          filled.(i) <- prev;
          fill prev (i + 1) points
    in
    fill first 0 points;
    let w = min width samples in
    let cols =
      Array.init w (fun c ->
          (* Column c averages the sample range it covers. *)
          let lo = c * samples / w and hi = max 1 ((c + 1) * samples / w) in
          let hi = max (lo + 1) hi in
          let sum = ref 0.0 in
          for i = lo to hi - 1 do
            sum := !sum +. filled.(i)
          done;
          !sum /. float_of_int (hi - lo))
    in
    let mn = Array.fold_left Float.min infinity cols in
    let mx = Array.fold_left Float.max neg_infinity cols in
    let buf = Buffer.create (3 * w) in
    Array.iter
      (fun v ->
        let level =
          if mx -. mn <= 0.0 then mid_level
          else
            let t = (v -. mn) /. (mx -. mn) in
            max 0 (min 7 (int_of_float (t *. 7.999)))
        in
        Buffer.add_string buf levels.(level))
      cols;
    Buffer.contents buf
  end
