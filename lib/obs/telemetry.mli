(** Periodic time-series snapshots (JSONL) for long runs: counter deltas,
    gauge levels, bounded-histogram summaries, plus optional process facts
    (Gc.quick_stat, current RSS). Cooperative sampling: instrumented loops
    call [if !active then tick ()], so the disabled cost is one load and a
    branch, like {!Probe.on}. Sampling is chunk-free: only the domain that
    called [start] samples, and only while it is outside every
    {!Ron_util.Pool} chunk — so a sample never races with worker-domain
    shard writes and the surviving sample points do not depend on how the
    work was split. The clock is injected like {!Trace}'s — under the
    default logical clock with [process_stats:false], the emitted series
    is bit-identical at every [RON_JOBS]. *)

val active : bool ref
(** Guard for call sites: [if !Telemetry.active then Telemetry.tick ()]. *)

val logical_clock : unit -> int64
(** Deterministic default clock: one tick per read. [start] without
    [?clock] resets it to zero. *)

val start :
  ?clock:(unit -> int64) -> ?interval:int64 -> ?process_stats:bool ->
  ?expo:string ->
  Trace.sink -> unit
(** Begin sampling into [sink] and emit the seq-0 baseline snapshot.
    [interval] is in clock units (default [1L], i.e. every tick under the
    logical clock; the CLI passes milliseconds converted to ns). [?expo]
    names a file to re-render in Prometheus text format ({!Expo.write},
    atomic rename) on every sample, so scrapers track the same cadence.
    Raises [Invalid_argument] if already started or [interval < 1]. *)

val tick : unit -> unit
(** Sample if on the starting domain, outside every pool chunk, and the
    clock has advanced at least one interval since the last snapshot;
    otherwise a no-op (that never reads the clock). *)

val sample : unit -> unit
(** Force a snapshot now (starting domain only, outside pool chunks). *)

val snapshots_emitted : unit -> int

val stop : unit -> unit
(** Emit a final snapshot, close the sink, and restore the default
    clock. Idempotent. *)
