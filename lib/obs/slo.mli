(** SLO burn-rate monitor for the serving path.

    Observations (latency, delivered?) are grouped into rolling windows
    of a fixed count; each window is evaluated over a
    {!Histogram.Bucketed} latency histogram against latency-quantile
    objectives ([p99<=2us]) and delivery-rate objectives
    ([delivery>=0.999]), with the error-budget burn rate per window:
    fraction of the budget the window actually consumed, where burn = 1
    means "spent exactly the budget" and > 1 means burning too fast.

    Feed from one domain only (the serving orchestrator, between
    batches, in qid order): windows are sequential state, and the single
    feeder plus integer-ratio arithmetic is what makes the verdict JSON
    byte-identical at every [RON_JOBS] under the deterministic logical
    clock. *)

type objective =
  | Latency of { q : float; label : string; limit : float }
      (** [p_q <= limit], [limit] in clock units (ns under the wall
          clock, cost units under the logical clock). *)
  | Delivery of { min_rate : float }  (** delivered fraction >= rate *)

val parse : string -> (objective list, string) result
(** Parse a spec like ["p99<=2us,delivery>=0.999"]. Latency terms are
    [pNN<=LIMIT] with an optional [ns]/[us]/[ms]/[s] suffix (unitless
    means raw clock units); delivery terms are [delivery>=RATE] with the
    rate in (0, 1). Comma-separated; spaces around terms are ignored. *)

val describe : objective list -> string
(** Canonical spec string (limits in base units). *)

val describe_objective : objective -> string

type t

val create : ?window:int -> ?name:string -> objective list -> t
(** [create objectives] — a monitor closing a window every [window]
    (default 2000) observations. The window latency histogram registers
    as ["<name>.window_latency"] (default name ["slo"]) so telemetry
    sees it live; it is reset here and at every window close. Raises
    [Invalid_argument] on [window < 1] or an empty objective list. *)

val window : t -> int
val spec : t -> string
val objectives : t -> objective list

val observe : t -> lat:float -> ok:bool -> unit
(** One served query: its latency in clock units and whether it counts
    as delivered. Closes (and evaluates) the window when it fills.
    Single-domain caller only. *)

val finish : t -> unit
(** Close the trailing partial window, if any observations are
    pending. *)

(** Evaluation of one objective over one window. *)
type window_result = {
  value : float;  (** measured quantile (latency) or rate (delivery) *)
  burn : float;  (** error-budget burn rate; clamped at 1e9 *)
  violated : bool;  (** the measured value itself crossed the limit *)
}

type window_summary = {
  w_index : int;
  w_count : int;
  w_ok : int;
  w_results : window_result array;  (** same order as [objectives] *)
}

val windows : t -> window_summary list
(** Closed windows, oldest first. *)

val windows_closed : t -> int
val violated_windows : t -> int

val max_burn : t -> float
(** Worst per-window burn rate seen so far (0 before any close). *)

val ok : t -> bool
(** No window violated any objective. *)

val to_json : ?flight:Json.t -> t -> Json.t
(** Machine-readable verdict, schema [ron-slo/1]: spec, objectives,
    every closed window with per-objective value/burn/violated, totals,
    and the overall [ok] bit. [?flight] (a {!Flight.to_json} dump)
    attaches the slow-query exemplars so [slo_report] can attribute them
    to violating windows. *)
