(** Process-wide gauges: current-level readings (cache occupancy, batch
    sizes) sharded per domain like {!Counter}. Each domain's shard keeps
    the last value that domain wrote; the merged reading sums all written
    shards, which commutes, so a gauge written only from the orchestrating
    domain is bit-identical at any [RON_JOBS]. *)

type t

(** [make ?env name] declares (or retrieves — idempotent per name) a
    gauge. [env] marks gauges whose value reflects the execution
    environment (worker count, per-domain cache sizes): they are excluded
    from deterministic snapshots and only surface next to other
    process-level telemetry fields. Default [false]. *)
val make : ?env:bool -> string -> t

val name : t -> string
val env : t -> bool

(** Last-write-wins on the calling domain's shard. *)
val set : t -> float -> unit

val set_int : t -> int -> unit

(** Adjust the calling domain's shard in place (e.g. +1/-1 level
    tracking). *)
val add : t -> float -> unit

(** Has any domain written this gauge since the last reset? *)
val written : t -> bool

(** Sum over written shards; [0.0] when never written. *)
val value : t -> float

(** Max over written shards; [neg_infinity] when never written. *)
val max_value : t -> float

val reset : t -> unit

(** Every registered gauge, sorted by name. *)
val all : unit -> t list

val reset_all : unit -> unit
