(* Per-query cost ledger. A query (one route, one Meridian lookup, one
   label estimate) is wrapped in [with_query], which installs a mutable
   cost entry in domain-local storage; the instrumented data structures
   bump whichever entry is current on their domain. Entries are collected
   in per-domain buffers and merged sorted by (kind, id), so as long as
   callers assign deterministic ids (e.g. the pair index), the merged
   ledger is identical at every RON_JOBS. *)

type entry = {
  kind : string;
  id : int;
  mutable dist_evals : int;
  mutable ball_queries : int;
  mutable ring_lookups : int;
  mutable ring_members : int;
  mutable zoom_steps : int;
  mutable hops : int;
  mutable header_rewrites : int;
  mutable header_bits_max : int;
  mutable table_touches : int;
}

let fresh ~kind ~id =
  {
    kind;
    id;
    dist_evals = 0;
    ball_queries = 0;
    ring_lookups = 0;
    ring_members = 0;
    zoom_steps = 0;
    hops = 0;
    header_rewrites = 0;
    header_bits_max = 0;
    table_touches = 0;
  }

(* The entry currently charged on this domain (innermost [with_query]). *)
let current_key : entry option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get current_key)

(* Completed entries, per-domain buffers registered like Counter shards. *)
type buf = { mutable entries : entry list }

let bufs_mu = Mutex.create ()
let bufs : buf list ref = ref []

let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { entries = [] } in
      Mutex.protect bufs_mu (fun () -> bufs := b :: !bufs);
      b)

let with_query ~kind ~id f =
  let cur = Domain.DLS.get current_key in
  let prev = !cur in
  let e = fresh ~kind ~id in
  cur := Some e;
  let record () =
    cur := prev;
    let b = Domain.DLS.get buf_key in
    b.entries <- e :: b.entries
  in
  match f () with
  | r ->
    record ();
    (r, e)
  | exception ex ->
    record ();
    raise ex

(* Bumps: no-ops unless a query is being charged on this domain. Callers
   gate on [Probe.on] first, so the disabled cost is one load + branch at
   the instrumentation site. *)

let bump_dist () = match current () with Some e -> e.dist_evals <- e.dist_evals + 1 | None -> ()

let bump_ball () =
  match current () with Some e -> e.ball_queries <- e.ball_queries + 1 | None -> ()

let bump_ring ~members =
  match current () with
  | Some e ->
    e.ring_lookups <- e.ring_lookups + 1;
    e.ring_members <- e.ring_members + members
  | None -> ()

let bump_zoom () = match current () with Some e -> e.zoom_steps <- e.zoom_steps + 1 | None -> ()
let bump_hop () = match current () with Some e -> e.hops <- e.hops + 1 | None -> ()

let bump_header_rewrite () =
  match current () with Some e -> e.header_rewrites <- e.header_rewrites + 1 | None -> ()

let note_header_bits bits =
  match current () with
  | Some e -> if bits > e.header_bits_max then e.header_bits_max <- bits
  | None -> ()

let bump_table () =
  match current () with Some e -> e.table_touches <- e.table_touches + 1 | None -> ()

let entries () =
  let bs = Mutex.protect bufs_mu (fun () -> !bufs) in
  let l = List.concat_map (fun b -> b.entries) bs in
  List.sort
    (fun a b ->
      let c = String.compare a.kind b.kind in
      if c <> 0 then c else Int.compare a.id b.id)
    l

let reset () =
  let bs = Mutex.protect bufs_mu (fun () -> !bufs) in
  List.iter (fun b -> b.entries <- []) bs
