(* Structured trace events as JSONL through a pluggable sink.

   The clock is injected state, not a Date-style global: callers configure
   [clock : unit -> int64] (nanoseconds, expected monotonic). The default
   is a logical atomic tick — deterministic and allocation-free — so tests
   and reproducible runs need no wall clock; the CLI injects a real one.

   When no sink is configured every [event]/[span] call is one load and a
   branch ([active] is false), so instrumented code pays ~nothing with
   tracing off. *)

type sink = { write : string -> unit; close : unit -> unit }

let null_sink = { write = (fun _ -> ()); close = (fun () -> ()) }

let channel_sink oc =
  let mu = Mutex.create () in
  {
    write =
      (fun line ->
        Mutex.protect mu (fun () ->
            output_string oc line;
            output_char oc '\n'));
    close = (fun () -> Mutex.protect mu (fun () -> close_out oc));
  }

let memory_sink () =
  let mu = Mutex.create () in
  let lines = ref [] in
  let sink =
    {
      write = (fun line -> Mutex.protect mu (fun () -> lines := line :: !lines));
      close = (fun () -> ());
    }
  in
  (sink, fun () -> Mutex.protect mu (fun () -> List.rev !lines))

let logical = Atomic.make 0
let logical_clock () = Int64.of_int (Atomic.fetch_and_add logical 1)

type state = {
  mutable sink : sink;
  mutable clock : unit -> int64;
  mutable is_active : bool;
}

let state = { sink = null_sink; clock = logical_clock; is_active = false }

let active () = state.is_active

let configure ?clock sink =
  (match clock with Some c -> state.clock <- c | None -> ());
  state.sink <- sink;
  state.is_active <- true

let stop () =
  let s = state.sink in
  state.sink <- null_sink;
  (* Restore the default clock too: a later [configure sink] (no ?clock)
     must get the deterministic logical tick, not silently inherit the
     previous run's wall clock. *)
  state.clock <- logical_clock;
  state.is_active <- false;
  s.close ()

let emit ph name args =
  let ts = state.clock () in
  let base =
    [
      ("ts", Json.Int (Int64.to_int ts));
      ("dom", Json.Int (Domain.self () :> int));
      ("ph", Json.String ph);
      ("name", Json.String name);
    ]
  in
  let fields = match args with [] -> base | args -> base @ [ ("args", Json.Obj args) ] in
  state.sink.write (Json.to_line (Json.Obj fields))

let event ?(args = []) name = if state.is_active then emit "i" name args

let span ?(args = []) name f =
  if not state.is_active then f ()
  else begin
    emit "B" name args;
    match f () with
    | r ->
      emit "E" name [];
      r
    | exception ex ->
      emit "E" name [ ("error", Json.String (Printexc.to_string ex)) ];
      raise ex
  end
