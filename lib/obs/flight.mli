(** Tail-latency flight recorder: per-domain sharded, windowed top-k
    retention of the slowest queries with full context (scheme, src/dst,
    outcome, hops, latency) and — for a deterministic
    {!Ron_util.Rng.mix}-sampled subset — the per-hop trace.

    Sharding follows the {!Counter}/{!Gauge} contract: each recording
    domain owns a private shard, [record] never locks and never
    allocates (preallocated entry records, pointer shifts only), and
    {!dump} merges shards under the strict total order "higher latency
    first, ties to the lower qid" — so dumps are bit-identical at every
    [RON_JOBS] whenever the recorded latencies are (the deterministic
    logical clock; wall-clock latencies are honest but not replayable).

    Ring-safety contract: at most [retain] distinct windows may be live
    among concurrently-recorded queries, or a ring slot could be
    recycled out of order. {!Ron_serve.Loop.run_observed} enforces this
    by capping its batch size at [window * (retain - 1)]. *)

type t

val create :
  ?window:int ->
  ?per_window:int ->
  ?retain:int ->
  ?trace_every:int ->
  ?trace_seed:int ->
  ?trace_cap:int ->
  unit ->
  t
(** [create ()] — a recorder keeping the [per_window] (default 8)
    slowest queries of each window of [window] (default 2048)
    consecutive qids, retaining the last [retain] (default 8) windows.
    One query in [trace_every] (default 32; [0] disables tracing) is
    deterministically sampled for per-hop trace capture, up to
    [trace_cap] (default 32) hops. Raises [Invalid_argument] when
    [window < 1], [per_window < 1], [retain < 2], or [trace_cap < 1]. *)

val window : t -> int
val per_window : t -> int
val retain : t -> int
val trace_every : t -> int

val want_trace : t -> int -> bool
(** [want_trace t qid]: is [qid] in the deterministic trace sample?
    Pure hash of the qid — same subset at every [RON_JOBS]. *)

val record :
  t ->
  qid:int ->
  scheme:int ->
  kind:int ->
  src:int ->
  dst:int ->
  outcome:int ->
  hops:int ->
  lat:int ->
  trace:int array ->
  trace_len:int ->
  unit
(** Record one served query. [lat] is in clock units (wall ns or logical
    cost). [trace_len < 0] means "trace not sampled"; otherwise the
    first [min trace_len trace_cap] elements of [trace] are copied into
    the entry's preallocated buffer. Allocation-free; single-writer per
    domain (the serving worker that ran the query). *)

val recorded : t -> int
(** Total [record] calls across shards. *)

val reset : t -> unit
(** Drop every retained entry. Do not race with concurrent records. *)

(** Immutable dump form of a retained slow query. *)
type exemplar = {
  x_window : int;
  x_qid : int;
  x_scheme : int;
  x_kind : int;
  x_src : int;
  x_dst : int;
  x_outcome : int;
  x_hops : int;
  x_lat : int;
  x_trace : int array option;
}

val dump : t -> (int * exemplar list) list
(** Retained windows ascending, each with its exact global top-k
    (latency descending, qid ascending within ties). Only the last
    [retain] windows are reported. *)

val exemplar_count : t -> int
(** Total exemplars across retained windows. *)

val to_json : t -> Json.t
(** Schema [ron-flight/1]: parameters, [recorded], and the {!dump}
    windows with their exemplars (sampled traces included inline). *)
