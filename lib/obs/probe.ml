(* The instrumentation surface the rest of the repo talks to.

   Every call site is written as

     if !Ron_obs.Probe.on then Ron_obs.Probe.dist_eval ()

   so the disabled cost is one global load and a fall-through branch — the
   bench --json query loops run at full speed with observability off. The
   helpers themselves assume the guard already happened and do the real
   work: bump the process-wide counter and charge the current ledger entry
   (if a query is active on this domain). *)

let on = ref false

(* -- counters, one per instrumented event kind -------------------------- *)

let dist_evals = Counter.make "metric.dist_evals"
let ball_queries = Counter.make "metric.ball_queries"
let ring_probes = Counter.make "rings.probes"
let ring_members_scanned = Counter.make "rings.members_scanned"
let zoom_decode_steps = Counter.make "zoom.decode_steps"
let zoom_encode_steps = Counter.make "zoom.encode_steps"
let translation_lookups = Counter.make "core.translation_lookups"
let route_hops = Counter.make "route.hops"
let route_header_rewrites = Counter.make "route.header_rewrites"
let route_delivered = Counter.make "route.outcome.delivered"
let route_truncated = Counter.make "route.outcome.truncated"
let route_self_forward = Counter.make "route.outcome.self_forward"
let route_cycled = Counter.make "route.outcome.cycled"
let route_dropped = Counter.make "route.outcome.dropped"
let table_touches = Counter.make "labeling.table_touches"
let meridian_probes = Counter.make "meridian.probes"
let meridian_hops = Counter.make "meridian.hops"

(* Construction-side counters: one bump per unit of preprocessing fan-out,
   so building routing tables / labels / rings is an observed cost, not just
   a wall-clock one. Shard sums are commutative, so totals are identical at
   every RON_JOBS. *)
let sssp_sources = Counter.make "construct.sssp_sources"
let oracle_hits = Counter.make "oracle.row_hits"
let oracle_builds = Counter.make "oracle.row_builds"
let oracle_evicts = Counter.make "oracle.row_evicts"
let table_nodes = Counter.make "construct.table_nodes"
let label_nodes = Counter.make "construct.label_nodes"
let ring_nodes = Counter.make "construct.ring_nodes"
let pool_batches = Counter.make "pool.batches"

(* Serving-loop counters: queries completed and batches dispatched by the
   frozen-snapshot serving loop. Commutative sums, identical at every
   RON_JOBS. *)
let serve_queries = Counter.make "serve.queries"
let serve_batches = Counter.make "serve.batches"

(* Fault-injection counters: one bump per injected fault or per fallback the
   retry/detour policy took. Commutative sums, so totals are identical at
   every RON_JOBS. *)
let fault_drops = Counter.make "fault.drops_injected"
let fault_crashed_hits = Counter.make "fault.crashed_hits"
let fault_dead_links = Counter.make "fault.dead_link_hits"
let fault_retries = Counter.make "fault.retries"
let fault_detours = Counter.make "fault.detours"

(* Churn counters: membership events applied, table entries touched by
   incremental repair, stale entries hit at route time, and — the
   incrementality invariant — from-scratch reconstructions, which the
   repair paths never perform (tests pin this counter at 0). *)
let churn_joins = Counter.make "churn.joins"
let churn_leaves = Counter.make "churn.leaves"
let churn_repair_updates = Counter.make "churn.repair_updates"
let churn_refills = Counter.make "churn.refills"
let churn_relabels = Counter.make "churn.relabels"
let churn_stale_hits = Counter.make "churn.stale_hits"
let churn_detours = Counter.make "churn.detours"
let churn_rebuilds = Counter.make "churn.rebuilds"

(* -- gauges ------------------------------------------------------------- *)

(* Current-level readings for telemetry. The oracle occupancy and the
   effective worker count reflect the execution environment (how many
   per-domain caches exist, what RON_JOBS resolved to), so they are [env]
   gauges — excluded from deterministic snapshots and only emitted next
   to the other process-level telemetry fields. Batch items are set from
   the orchestrating domain only, so that gauge stays deterministic. *)
let oracle_rows = Gauge.make ~env:true "oracle.rows_cached"
let pool_jobs = Gauge.make ~env:true "pool.jobs"
let pool_batch_items = Gauge.make "pool.batch_items"

(* Serving-loop gauges, set from the orchestrating domain only (so both
   stay deterministic): queries in flight in the current batch, and the
   batch size the loop is dispatching. *)
let serve_inflight = Gauge.make "serve.inflight"
let serve_batch_size = Gauge.make "serve.batch_size"

(* Churn gauges, set from the (sequential) event-application loop only:
   how many nodes are currently live, and how many invalidated labels are
   waiting for their local re-label. *)
let churn_live_nodes = Gauge.make "churn.live_nodes"
let churn_repair_backlog = Gauge.make "churn.repair_backlog"

(* SLO-monitor counters and gauges, driven from the sequential
   window-close path only (Slo.observe feeds from the orchestrating
   domain), so every reading is deterministic: windows closed, objective
   violations, the closing window's worst burn rate, and the running
   worst across windows. The flight-recorder exemplar level is set after
   a dump, also from one domain. *)
let slo_windows = Counter.make "slo.windows"
let slo_violations = Counter.make "slo.violations"
let slo_burn = Gauge.make "slo.burn_rate"
let slo_worst_burn = Gauge.make "slo.worst_burn_rate"
let flight_exemplars = Gauge.make "flight.exemplars"

(* -- histograms --------------------------------------------------------- *)

let route_hops_hist = Histogram.make "route.hops_per_query"
let route_header_bits_hist = Histogram.make "route.header_bits_per_query"
let meridian_probes_hist = Histogram.make "meridian.probes_per_query"

(* -- helpers (call only under [if !on]) --------------------------------- *)

let dist_eval () =
  Counter.incr dist_evals;
  Ledger.bump_dist ()

let ball_query () =
  Counter.incr ball_queries;
  Ledger.bump_ball ()

let ring_probe ~members =
  Counter.incr ring_probes;
  Counter.add ring_members_scanned members;
  Ledger.bump_ring ~members

let zoom_decode_step () =
  Counter.incr zoom_decode_steps;
  Ledger.bump_zoom ()

let zoom_encode_step () = Counter.incr zoom_encode_steps

let translation_lookup () =
  Counter.incr translation_lookups;
  Ledger.bump_table ()

let hop () =
  Counter.incr route_hops;
  Ledger.bump_hop ()

let header_rewrite () =
  Counter.incr route_header_rewrites;
  Ledger.bump_header_rewrite ()

let header_bits bits = Ledger.note_header_bits bits

let route_done ~hops ~header_bits_max ~outcome =
  Counter.incr
    (match outcome with
    | `Delivered -> route_delivered
    | `Truncated -> route_truncated
    | `Self_forward -> route_self_forward
    | `Cycled -> route_cycled
    | `Dropped -> route_dropped);
  Histogram.observe_int route_hops_hist hops;
  Histogram.observe_int route_header_bits_hist header_bits_max;
  Ledger.note_header_bits header_bits_max

let table_touch () =
  Counter.incr table_touches;
  Ledger.bump_table ()

(* The distance evaluation itself goes through Indexed.dist, which already
   charges the ledger; this counter only tags it as a Meridian probe. *)
let meridian_probe () = Counter.incr meridian_probes

let meridian_hop () =
  Counter.incr meridian_hops;
  Ledger.bump_hop ()

(* Construction events are not per-query: they bump counters only (no
   ledger charge). *)
let sssp_source () = Counter.incr sssp_sources
let oracle_hit () = Counter.incr oracle_hits
let oracle_build () = Counter.incr oracle_builds
let oracle_evict () = Counter.incr oracle_evicts
let oracle_occupancy rows = Gauge.set_int oracle_rows rows
(* Serve events are bumped once per batch from the orchestrating domain
   (the hot query loop itself stays probe-free). *)
let serve_batch ~size ~inflight =
  Counter.incr serve_batches;
  Counter.add serve_queries size;
  Gauge.set_int serve_batch_size size;
  Gauge.set_int serve_inflight inflight

let table_node () = Counter.incr table_nodes
let label_node () = Counter.incr label_nodes
let ring_node () = Counter.incr ring_nodes

(* Pool batches are observed through Pool's hook (the util layer cannot
   call up into this one). Installed unconditionally at module init; the
   [!on] check inside keeps disabled runs at a load and a branch per
   top-level batch. *)
let () =
  Ron_util.Pool.set_observer (fun ~jobs ~items ->
      if !on then begin
        Counter.incr pool_batches;
        Gauge.set_int pool_jobs jobs;
        Gauge.set_int pool_batch_items items
      end)

(* Fault events bump counters only; the simulator's hop/route counters keep
   charging the ledger, so per-query costs already include detour hops. *)
let fault_drop () = Counter.incr fault_drops
let fault_crashed_hit () = Counter.incr fault_crashed_hits
let fault_dead_link () = Counter.incr fault_dead_links
let fault_retry () = Counter.incr fault_retries
let fault_detour () = Counter.incr fault_detours

(* Churn events: counters only (event application is not a per-query cost);
   the route-time stale/detour events ride on queries like fault events. *)
let churn_join () = Counter.incr churn_joins
let churn_leave () = Counter.incr churn_leaves
let churn_repair ~updates = Counter.add churn_repair_updates updates
let churn_refill () = Counter.incr churn_refills
let churn_relabel () = Counter.incr churn_relabels
let churn_stale_hit () = Counter.incr churn_stale_hits
let churn_detour () = Counter.incr churn_detours
let churn_rebuild () = Counter.incr churn_rebuilds
let churn_levels ~live ~backlog =
  Gauge.set_int churn_live_nodes live;
  Gauge.set_int churn_repair_backlog backlog

(* SLO window close: bump the window counter, add that window's objective
   violations, and set both burn gauges (sequential caller only). *)
let slo_window ~violations ~burn ~worst_burn =
  Counter.incr slo_windows;
  Counter.add slo_violations violations;
  Gauge.set slo_burn burn;
  Gauge.set slo_worst_burn worst_burn

let flight_exemplar_level n = Gauge.set_int flight_exemplars n
