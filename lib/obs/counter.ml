(* Process-wide counters, sharded per domain. Each domain that bumps a
   counter lazily creates (and registers) a private shard, so bumps are
   plain unsynchronized int stores — no contention on the hot path. The
   total is the sum of the shards: addition commutes, so the value is
   independent of how Pool distributed the work, and snapshots are
   bit-identical at any RON_JOBS. Shards of finished domains stay
   registered, keeping their contribution. *)

type t = {
  name : string;
  mu : Mutex.t;
  shards : int ref list ref;
  key : int ref Domain.DLS.key;
}

let registry_mu = Mutex.create ()
let registry : t list ref = ref []

(* Idempotent per name: a second [make "x"] returns the first counter, so a
   name appears once in snapshots no matter how often it is (re)declared. *)
let make name =
  Mutex.protect registry_mu (fun () ->
      match List.find_opt (fun t -> String.equal t.name name) !registry with
      | Some t -> t
      | None ->
        let mu = Mutex.create () in
        let shards = ref [] in
        let key =
          Domain.DLS.new_key (fun () ->
              let s = ref 0 in
              Mutex.protect mu (fun () -> shards := s :: !shards);
              s)
        in
        let t = { name; mu; shards; key } in
        registry := t :: !registry;
        t)

let name t = t.name

let incr t =
  let s = Domain.DLS.get t.key in
  s := !s + 1

let add t by =
  let s = Domain.DLS.get t.key in
  s := !s + by

let value t = Mutex.protect t.mu (fun () -> List.fold_left (fun a s -> a + !s) 0 !(t.shards))

let reset t = Mutex.protect t.mu (fun () -> List.iter (fun s -> s := 0) !(t.shards))

let all () =
  let l = Mutex.protect registry_mu (fun () -> !registry) in
  List.sort (fun a b -> String.compare a.name b.name) l

let reset_all () = List.iter reset (all ())
