(* Tail-latency flight recorder: a fixed-capacity per-domain top-k ring
   that retains the slowest queries per window with their full context
   (scheme, src/dst, outcome, hops, latency, and — for a deterministic
   Rng.mix-sampled subset of queries — the per-hop ledger trace).

   Sharded per domain like Counter/Gauge: each recording domain owns a
   private shard, so [record] is plain unsynchronized stores into
   preallocated entry records — no locks, no allocation on the hot path.
   A shard is a ring of [retain] window slots; a query with id [qid]
   belongs to window [qid / window] and lands in slot [w mod retain],
   which lazily resets when it still holds an older window. Each slot
   keeps its top [per_window] entries under the strict total order
   "higher latency first, ties broken by lower qid" — a total order, so
   the per-shard top-k sets merge to the exact global per-window top-k no
   matter how Pool sharded the queries, and [dump] is bit-identical at
   every RON_JOBS whenever the recorded latencies are (i.e. under the
   deterministic logical clock; wall-clock latencies are honest but not
   replayable).

   Ring-safety contract: within any span of concurrently-recorded
   queries, at most [retain] distinct windows may be live, or a slot
   could be recycled out of order and drop entries from a window the
   dump still reports. Loop.run_observed enforces this by capping its
   batch size at [window * (retain - 1)]; batches are barriers and qids
   only grow across them, so recycling always evicts windows that fall
   outside the retained range anyway. *)

type entry = {
  mutable e_qid : int;
  mutable e_scheme : int;
  mutable e_kind : int;
  mutable e_src : int;
  mutable e_dst : int;
  mutable e_outcome : int;
  mutable e_hops : int;
  mutable e_lat : int;
  e_trace : int array;
  mutable e_trace_len : int; (* -1: trace not sampled for this query *)
}

type slot = {
  mutable window : int; (* -1: never used *)
  entries : entry array; (* dense prefix of [len] live entries, ranked *)
  mutable len : int;
}

type shard = { slots : slot array; mutable recorded : int }

type t = {
  window : int;
  per_window : int;
  retain : int;
  trace_every : int;
  trace_seed : int;
  trace_cap : int;
  mu : Mutex.t;
  shards : shard list ref;
  key : shard Domain.DLS.key;
}

let create ?(window = 2048) ?(per_window = 8) ?(retain = 8) ?(trace_every = 32)
    ?(trace_seed = 0x5eed) ?(trace_cap = 32) () =
  if window < 1 then invalid_arg "Flight.create: window < 1";
  if per_window < 1 then invalid_arg "Flight.create: per_window < 1";
  if retain < 2 then invalid_arg "Flight.create: retain < 2";
  if trace_cap < 1 then invalid_arg "Flight.create: trace_cap < 1";
  let mu = Mutex.create () in
  let shards = ref [] in
  let fresh_entry () =
    {
      e_qid = 0; e_scheme = 0; e_kind = 0; e_src = 0; e_dst = 0;
      e_outcome = 0; e_hops = 0; e_lat = 0;
      e_trace = Array.make trace_cap 0; e_trace_len = -1;
    }
  in
  let key =
    Domain.DLS.new_key (fun () ->
        let s =
          {
            slots =
              Array.init retain (fun _ ->
                  { window = -1; entries = Array.init per_window (fun _ -> fresh_entry ()); len = 0 });
            recorded = 0;
          }
        in
        Mutex.protect mu (fun () -> shards := s :: !shards);
        s)
  in
  { window; per_window; retain; trace_every; trace_seed; trace_cap; mu; shards; key }

let window t = t.window
let per_window t = t.per_window
let retain t = t.retain
let trace_every t = t.trace_every

(* Deterministic trace sampling: a pure hash of the query id, so the
   sampled subset is the same at every RON_JOBS and across reruns. *)
let want_trace t qid =
  t.trace_every > 0 && Ron_util.Rng.mix t.trace_seed qid mod t.trace_every = 0

(* Strict total order over entries: slower first, ties to the lower qid.
   Total because qids are unique, which is what makes per-shard top-k
   sets merge to the exact global top-k. *)
let outranks lat qid (e : entry) = lat > e.e_lat || (lat = e.e_lat && qid < e.e_qid)

let record t ~qid ~scheme ~kind ~src ~dst ~outcome ~hops ~lat ~trace ~trace_len =
  let sh = Domain.DLS.get t.key in
  sh.recorded <- sh.recorded + 1;
  let w = qid / t.window in
  let slot = sh.slots.(w mod t.retain) in
  if slot.window <> w then begin
    slot.window <- w;
    slot.len <- 0
  end;
  let k = t.per_window in
  (* Common case first: the window is full and the newcomer does not
     outrank even the weakest retained entry — one compare, no scan. *)
  if slot.len = k && not (outranks lat qid slot.entries.(k - 1)) then ()
  else begin
  (* Insertion position: past every entry that outranks the newcomer. *)
  let p = ref 0 in
  while !p < slot.len && not (outranks lat qid slot.entries.(!p)) do
    incr p
  done;
  if !p < k then begin
    (* Reuse the record that falls off the end (or the next preallocated
       one): shifting moves pointers only, so recording never allocates. *)
    let e =
      if slot.len < k then begin
        let e = slot.entries.(slot.len) in
        for i = slot.len downto !p + 1 do
          slot.entries.(i) <- slot.entries.(i - 1)
        done;
        slot.len <- slot.len + 1;
        e
      end
      else begin
        let e = slot.entries.(k - 1) in
        for i = k - 1 downto !p + 1 do
          slot.entries.(i) <- slot.entries.(i - 1)
        done;
        e
      end
    in
    slot.entries.(!p) <- e;
    e.e_qid <- qid;
    e.e_scheme <- scheme;
    e.e_kind <- kind;
    e.e_src <- src;
    e.e_dst <- dst;
    e.e_outcome <- outcome;
    e.e_hops <- hops;
    e.e_lat <- lat;
    if trace_len < 0 then e.e_trace_len <- -1
    else begin
      let tl = min trace_len t.trace_cap in
      Array.blit trace 0 e.e_trace 0 tl;
      e.e_trace_len <- tl
    end
  end
  end

let recorded t =
  let shards = Mutex.protect t.mu (fun () -> !(t.shards)) in
  List.fold_left (fun a s -> a + s.recorded) 0 shards

let reset t =
  Mutex.protect t.mu (fun () ->
      List.iter
        (fun sh ->
          sh.recorded <- 0;
          Array.iter
            (fun (slot : slot) ->
              slot.window <- -1;
              slot.len <- 0)
            sh.slots)
        !(t.shards))

(* Immutable dump form. *)
type exemplar = {
  x_window : int;
  x_qid : int;
  x_scheme : int;
  x_kind : int;
  x_src : int;
  x_dst : int;
  x_outcome : int;
  x_hops : int;
  x_lat : int;
  x_trace : int array option;
}

(* Merge every shard into the exact global per-window top-k. Windows
   older than [max_window - retain + 1] may have been partially recycled
   in some shard, so only the last [retain] windows are reported — which
   is also the recorder's stated retention. *)
let dump t =
  let shards = Mutex.protect t.mu (fun () -> !(t.shards)) in
  let by_window : (int, entry list ref) Hashtbl.t = Hashtbl.create 16 in
  let max_w = ref (-1) in
  List.iter
    (fun sh ->
      Array.iter
        (fun (slot : slot) ->
          if slot.window >= 0 then begin
            if slot.window > !max_w then max_w := slot.window;
            let l =
              match Hashtbl.find_opt by_window slot.window with
              | Some l -> l
              | None ->
                let l = ref [] in
                Hashtbl.add by_window slot.window l;
                l
            in
            for i = 0 to slot.len - 1 do
              l := slot.entries.(i) :: !l
            done
          end)
        sh.slots)
    shards;
  let cutoff = !max_w - t.retain + 1 in
  let windows =
    Hashtbl.fold (fun w _ l -> if w >= cutoff then w :: l else l) by_window []
    |> List.sort Int.compare
  in
  List.map
    (fun w ->
      let entries =
        !(Hashtbl.find by_window w)
        |> List.sort (fun a b ->
               if a.e_lat <> b.e_lat then Int.compare b.e_lat a.e_lat
               else Int.compare a.e_qid b.e_qid)
      in
      let top = List.filteri (fun i _ -> i < t.per_window) entries in
      ( w,
        List.map
          (fun e ->
            {
              x_window = w;
              x_qid = e.e_qid;
              x_scheme = e.e_scheme;
              x_kind = e.e_kind;
              x_src = e.e_src;
              x_dst = e.e_dst;
              x_outcome = e.e_outcome;
              x_hops = e.e_hops;
              x_lat = e.e_lat;
              x_trace =
                (if e.e_trace_len < 0 then None
                 else Some (Array.sub e.e_trace 0 e.e_trace_len));
            })
          top ))
    windows

let exemplar_count t = List.fold_left (fun a (_, es) -> a + List.length es) 0 (dump t)

let exemplar_json (x : exemplar) =
  let base =
    [
      ("qid", Json.Int x.x_qid);
      ("scheme", Json.Int x.x_scheme);
      ("kind", Json.Int x.x_kind);
      ("src", Json.Int x.x_src);
      ("dst", Json.Int x.x_dst);
      ("outcome", Json.Int x.x_outcome);
      ("hops", Json.Int x.x_hops);
      ("lat", Json.Int x.x_lat);
    ]
  in
  match x.x_trace with
  | None -> Json.Obj base
  | Some tr ->
    Json.Obj
      (base @ [ ("trace", Json.List (Array.to_list (Array.map (fun v -> Json.Int v) tr))) ])

let to_json t =
  let windows = dump t in
  Json.Obj
    [
      ("schema", Json.String "ron-flight/1");
      ("window", Json.Int t.window);
      ("per_window", Json.Int t.per_window);
      ("retain", Json.Int t.retain);
      ("trace_every", Json.Int t.trace_every);
      ("recorded", Json.Int (recorded t));
      ( "windows",
        Json.List
          (List.map
             (fun (w, es) ->
               Json.Obj
                 [
                   ("window", Json.Int w);
                   ("exemplars", Json.List (List.map exemplar_json es));
                 ])
             windows) );
    ]
