(** Observability for the rings-of-neighbors stack: process-wide counters
    and histograms (per-domain shards, deterministic merge), JSONL trace
    events with an injected clock, and a per-query cost ledger.

    The snapshot is byte-identical across [RON_JOBS] settings: counters are
    commutative sums, histogram values are sorted before summarizing, and
    ledger entries sort by caller-assigned [(kind, id)]. It contains no
    wall-clock data. *)

module Json = Json
module Counter = Counter
module Gauge = Gauge
module Histogram = Histogram
module Ledger = Ledger
module Trace = Trace
module Trace_read = Trace_read
module Probe = Probe
module Profile = Profile
module Telemetry = Telemetry
module Rss = Rss
module Flight = Flight
module Slo = Slo
module Expo = Expo
module Sparkline = Sparkline

val enable : unit -> unit
(** Turn the probes on ([Probe.on := true]). *)

val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero all counters, gauges, histograms (raw and bucketed), and ledger
    entries. *)

val snapshot : unit -> Json.t
(** Deterministic summary: [{"schema":"ron-obs/1","counters":{...},
    "gauges":{...},"histograms":{...},"bucketed_histograms":{...},
    "queries":{...}}]. Counters sort by name; gauges include only written,
    non-env ones; each histogram reports a {!Ron_util.Stats.summary} (and
    each bucketed histogram its {!Histogram.Bucketed.summary}); ledger
    entries group by kind with per-field summaries. *)

val write_snapshot : string -> unit
(** Write [snapshot ()] as pretty JSON to a file. *)
