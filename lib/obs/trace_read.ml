(* Reader-side of the JSONL trace format: parse lines back into events and
   validate the stream's structural invariants. Shared by bin/trace_check
   (the CI validator) and bin/trace_report (the span aggregator), and unit
   tested directly — the emitters in Trace and the checks here must agree
   on the schema or the smoke targets break. *)

type ph = B | E | I

type event = {
  ts : int;
  dom : int;
  ph : ph;
  name : string;
  args : (string * Json.t) list;
}

let ph_string = function B -> "B" | E -> "E" | I -> "i"

let parse_line line =
  match Json.of_string line with
  | Error e -> Error e
  | Ok j -> (
    let int_field k =
      match Json.member k j with
      | Some (Json.Int v) -> Ok v
      | Some _ -> Error (Printf.sprintf "field %S is not an integer" k)
      | None -> Error (Printf.sprintf "missing %S" k)
    in
    match int_field "ts" with
    | Error e -> Error e
    | Ok ts -> (
      match int_field "dom" with
      | Error e -> Error e
      | Ok dom -> (
        match Json.member "name" j with
        | Some (Json.String name) -> (
          let ph =
            match Json.member "ph" j with
            | Some (Json.String "B") -> Ok B
            | Some (Json.String "E") -> Ok E
            | Some (Json.String "i") -> Ok I
            | Some (Json.String other) ->
              Error (Printf.sprintf "unknown phase %S (expected B, E or i)" other)
            | Some _ -> Error "field \"ph\" is not a string"
            | None -> Error "missing \"ph\""
          in
          match ph with
          | Error e -> Error e
          | Ok ph -> (
            match Json.member "args" j with
            | None -> Ok { ts; dom; ph; name; args = [] }
            | Some (Json.Obj args) -> Ok { ts; dom; ph; name; args }
            | Some _ -> Error "field \"args\" is not an object"))
        | Some _ -> Error "field \"name\" is not a string"
        | None -> Error "missing \"name\"")))

(* Structural validation over a whole stream:
   - the ["error"] arg (what [Trace.span] emits when the wrapped function
     raises) may appear only on "E" events and must be a string;
   - per domain, "B"/"E" events balance like brackets: every "E" closes the
     innermost open "B" of the same name (spans are synchronous, so they
     strictly nest within a domain), and no span stays open at the end. *)
let validate events =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let stack dom = Option.value (Hashtbl.find_opt stacks dom) ~default:[] in
  let rec go i = function
    | [] -> (
      match Hashtbl.fold (fun dom st acc -> ((dom, st) :: acc)) stacks [] with
      | [] -> Ok i
      | opens -> (
        match List.find_opt (fun (_, st) -> st <> []) opens with
        | Some (dom, name :: _) ->
          Error (Printf.sprintf "span %S on domain %d is never closed" name dom)
        | _ -> Ok i))
    | e :: rest -> (
      let err fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "event %d: %s" (i + 1) s)) fmt in
      match List.assoc_opt "error" e.args with
      | Some v when e.ph <> E ->
        ignore v;
        err "\"error\" arg on a %S event (only \"E\" may carry one)" (ph_string e.ph)
      | Some (Json.String _) | None -> (
        match e.ph with
        | I -> go (i + 1) rest
        | B ->
          Hashtbl.replace stacks e.dom (e.name :: stack e.dom);
          go (i + 1) rest
        | E -> (
          match stack e.dom with
          | [] -> err "\"E\" %S on domain %d closes no open span" e.name e.dom
          | top :: tl ->
            if String.equal top e.name then begin
              Hashtbl.replace stacks e.dom tl;
              go (i + 1) rest
            end
            else err "\"E\" %S on domain %d does not match open span %S" e.name e.dom top))
      | Some _ -> err "\"error\" arg is not a string")
  in
  go 0 events

let parse_lines lines =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (i + 1) acc rest
      else begin
        match parse_line line with
        | Ok e -> go (i + 1) (e :: acc) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" (i + 1) e)
      end
  in
  go 1 [] lines

let read_file file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec slurp acc =
        match input_line ic with
        | line -> slurp (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      parse_lines (slurp []))
