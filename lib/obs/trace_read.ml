(* Reader-side of the JSONL trace format: parse lines back into events and
   validate the stream's structural invariants. Shared by bin/trace_check
   (the CI validator) and bin/trace_report (the span aggregator), and unit
   tested directly — the emitters in Trace and the checks here must agree
   on the schema or the smoke targets break. *)

type ph = B | E | I

type event = {
  ts : int;
  dom : int;
  ph : ph;
  name : string;
  args : (string * Json.t) list;
}

let ph_string = function B -> "B" | E -> "E" | I -> "i"

let parse_line line =
  match Json.of_string line with
  | Error e -> Error e
  | Ok j -> (
    let int_field k =
      match Json.member k j with
      | Some (Json.Int v) -> Ok v
      | Some _ -> Error (Printf.sprintf "field %S is not an integer" k)
      | None -> Error (Printf.sprintf "missing %S" k)
    in
    match int_field "ts" with
    | Error e -> Error e
    | Ok ts -> (
      match int_field "dom" with
      | Error e -> Error e
      | Ok dom -> (
        match Json.member "name" j with
        | Some (Json.String name) -> (
          let ph =
            match Json.member "ph" j with
            | Some (Json.String "B") -> Ok B
            | Some (Json.String "E") -> Ok E
            | Some (Json.String "i") -> Ok I
            | Some (Json.String other) ->
              Error (Printf.sprintf "unknown phase %S (expected B, E or i)" other)
            | Some _ -> Error "field \"ph\" is not a string"
            | None -> Error "missing \"ph\""
          in
          match ph with
          | Error e -> Error e
          | Ok ph -> (
            match Json.member "args" j with
            | None -> Ok { ts; dom; ph; name; args = [] }
            | Some (Json.Obj args) -> Ok { ts; dom; ph; name; args }
            | Some _ -> Error "field \"args\" is not an object"))
        | Some _ -> Error "field \"name\" is not a string"
        | None -> Error "missing \"name\"")))

(* Structural validation over a whole stream:
   - the ["error"] arg (what [Trace.span] emits when the wrapped function
     raises) may appear only on "E" events and must be a string;
   - per domain, "B"/"E" events balance like brackets: every "E" closes the
     innermost open "B" of the same name (spans are synchronous, so they
     strictly nest within a domain), and no span stays open at the end. *)
let validate events =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let stack dom = Option.value (Hashtbl.find_opt stacks dom) ~default:[] in
  let rec go i = function
    | [] -> (
      match Hashtbl.fold (fun dom st acc -> ((dom, st) :: acc)) stacks [] with
      | [] -> Ok i
      | opens -> (
        match List.find_opt (fun (_, st) -> st <> []) opens with
        | Some (dom, name :: _) ->
          Error (Printf.sprintf "span %S on domain %d is never closed" name dom)
        | _ -> Ok i))
    | e :: rest -> (
      let err fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "event %d: %s" (i + 1) s)) fmt in
      match List.assoc_opt "error" e.args with
      | Some v when e.ph <> E ->
        ignore v;
        err "\"error\" arg on a %S event (only \"E\" may carry one)" (ph_string e.ph)
      | Some (Json.String _) | None -> (
        match e.ph with
        | I -> go (i + 1) rest
        | B ->
          Hashtbl.replace stacks e.dom (e.name :: stack e.dom);
          go (i + 1) rest
        | E -> (
          match stack e.dom with
          | [] -> err "\"E\" %S on domain %d closes no open span" e.name e.dom
          | top :: tl ->
            if String.equal top e.name then begin
              Hashtbl.replace stacks e.dom tl;
              go (i + 1) rest
            end
            else err "\"E\" %S on domain %d does not match open span %S" e.name e.dom top))
      | Some _ -> err "\"error\" arg is not a string")
  in
  go 0 events

let parse_lines lines =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (i + 1) acc rest
      else begin
        match parse_line line with
        | Ok e -> go (i + 1) (e :: acc) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" (i + 1) e)
      end
  in
  go 1 [] lines

let read_file file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec slurp acc =
        match input_line ic with
        | line -> slurp (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      parse_lines (slurp []))

(* -- telemetry snapshot records ----------------------------------------- *)

(* One Telemetry JSONL sample, parsed shallowly: the fixed header fields
   are extracted and typed; the section payloads stay as Json.t so the
   validator below and telemetry_report can each walk what they need. *)
type snapshot = {
  sts : int;
  seq : int;
  counters : (string * Json.t) list;
  gauges : (string * Json.t) list;
  hists : (string * Json.t) list;
  gc : (string * Json.t) list option;
  rss_kb : int option;
}

let parse_snapshot_line line =
  match Json.of_string line with
  | Error e -> Error e
  | Ok j -> (
    let int_field k =
      match Json.member k j with
      | Some (Json.Int v) -> Ok v
      | Some _ -> Error (Printf.sprintf "field %S is not an integer" k)
      | None -> Error (Printf.sprintf "missing %S" k)
    in
    let obj_field k =
      match Json.member k j with
      | Some (Json.Obj fields) -> Ok fields
      | Some _ -> Error (Printf.sprintf "field %S is not an object" k)
      | None -> Error (Printf.sprintf "missing %S" k)
    in
    match Json.member "kind" j with
    | Some (Json.String "sample") -> (
      match (int_field "ts", int_field "seq") with
      | Error e, _ | _, Error e -> Error e
      | Ok sts, Ok seq -> (
        match (obj_field "counters", obj_field "gauges", obj_field "hists") with
        | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
        | Ok counters, Ok gauges, Ok hists -> (
          let gc =
            match Json.member "gc" j with
            | None -> Ok None
            | Some (Json.Obj fields) -> Ok (Some fields)
            | Some _ -> Error "field \"gc\" is not an object"
          in
          let rss =
            match Json.member "rss_kb" j with
            | None -> Ok None
            | Some (Json.Int v) -> Ok (Some v)
            | Some _ -> Error "field \"rss_kb\" is not an integer"
          in
          match (gc, rss) with
          | Error e, _ | _, Error e -> Error e
          | Ok gc, Ok rss_kb -> Ok { sts; seq; counters; gauges; hists; gc; rss_kb })))
    | Some (Json.String other) -> Error (Printf.sprintf "unknown record kind %S" other)
    | Some _ -> Error "field \"kind\" is not a string"
    | None -> Error "missing \"kind\"")

let is_number = function Json.Int _ | Json.Float _ -> true | _ -> false

(* Structural validation of a telemetry series:
   - seq starts at 0 and increases by exactly 1 (one writer, no loss);
   - ts is non-decreasing (clocks are monotone, logical or wall);
   - counter deltas are integers, gauge values numbers;
   - every histogram summary carries integer count >= 1 and numeric
     min/max/p50/p95/p99 (empty histograms are omitted at emission);
   - gc fields are numbers and rss_kb is non-negative when present. *)
let validate_snapshots snaps =
  let err i fmt =
    Printf.ksprintf (fun s -> Error (Printf.sprintf "sample %d: %s" (i + 1) s)) fmt
  in
  let rec go i prev_ts = function
    | [] -> Ok i
    | s :: rest ->
      if s.seq <> i then err i "seq %d, expected %d" s.seq i
      else if s.sts < prev_ts then err i "ts %d goes backwards (previous %d)" s.sts prev_ts
      else if s.rss_kb <> None && Option.get s.rss_kb < 0 then
        err i "negative rss_kb"
      else begin
        let bad_counter =
          List.find_opt (fun (_, v) -> match v with Json.Int _ -> false | _ -> true) s.counters
        in
        let bad_gauge = List.find_opt (fun (_, v) -> not (is_number v)) s.gauges in
        let bad_gc =
          match s.gc with
          | None -> None
          | Some fields -> List.find_opt (fun (_, v) -> not (is_number v)) fields
        in
        let bad_hist =
          List.find_opt
            (fun (_, v) ->
              match v with
              | Json.Obj fields ->
                (match List.assoc_opt "count" fields with
                | Some (Json.Int c) when c >= 1 -> false
                | _ -> true)
                || List.exists
                     (fun k ->
                       match List.assoc_opt k fields with
                       | Some v -> not (is_number v)
                       | None -> true)
                     [ "min"; "max"; "p50"; "p95"; "p99" ]
              | _ -> true)
            s.hists
        in
        match (bad_counter, bad_gauge, bad_gc, bad_hist) with
        | Some (k, _), _, _, _ -> err i "counter %S is not an integer delta" k
        | _, Some (k, _), _, _ -> err i "gauge %S is not a number" k
        | _, _, Some (k, _), _ -> err i "gc field %S is not a number" k
        | _, _, _, Some (k, _) -> err i "histogram %S is not a well-formed summary" k
        | None, None, None, None -> go (i + 1) s.sts rest
      end
  in
  go 0 min_int snaps

let parse_snapshot_lines lines =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (i + 1) acc rest
      else begin
        match parse_snapshot_line line with
        | Ok s -> go (i + 1) (s :: acc) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" (i + 1) e)
      end
  in
  go 1 [] lines

let read_snapshot_file file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec slurp acc =
        match input_line ic with
        | line -> slurp (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      parse_snapshot_lines (slurp []))
