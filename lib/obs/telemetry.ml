(* Periodic time-series snapshots for long runs: counter deltas, gauge
   levels, bounded-histogram summaries, and (optionally) process facts —
   Gc.quick_stat and current RSS — as one JSONL record per sample.

   The sampler is cooperative, not a thread: instrumented loops call

     if !Ron_obs.Telemetry.active then Ron_obs.Telemetry.tick ()

   so the disabled cost is one global load and a fall-through branch, the
   same contract as [Probe.on]. A tick samples only when (a) it runs on
   the domain that called [start] and outside any Pool chunk — in-chunk
   ticks return before touching the clock, so the series never depends on
   how Pool split the work and a sample never races with worker-domain
   shard writes — and (b) the injected clock has advanced past the
   sampling interval since the last emission.

   The clock is injected like [Trace]'s: the default is a logical atomic
   tick (reset to zero by [start] so repeated runs in one process emit
   identical timestamps), and the CLI injects wall-clock nanoseconds.
   Under the logical clock with [process_stats:false] the whole series is
   bit-identical at every RON_JOBS — deterministic counters and non-env
   gauges only; [process_stats:true] adds the inherently nondeterministic
   fields (GC, RSS, env gauges such as effective worker count and
   per-domain cache occupancy). *)

let active = ref false

let logical = Atomic.make 0
let logical_clock () = Int64.of_int (Atomic.fetch_and_add logical 1)

type state = {
  mutable sink : Trace.sink;
  mutable clock : unit -> int64;
  mutable interval : int64;
  mutable last : int64;
  mutable seq : int;
  mutable owner : int;
  mutable process_stats : bool;
  mutable expo : string option; (* Prometheus exposition target, refreshed per sample *)
  prev : (string, int) Hashtbl.t; (* counter name -> value at last sample *)
}

let state =
  {
    sink = Trace.null_sink;
    clock = logical_clock;
    interval = 1L;
    last = 0L;
    seq = 0;
    owner = -1;
    process_stats = true;
    expo = None;
    prev = Hashtbl.create 64;
  }

let counters_delta_json () =
  let fields =
    List.filter_map
      (fun c ->
        let name = Counter.name c in
        let v = Counter.value c in
        let p = match Hashtbl.find_opt state.prev name with Some p -> p | None -> 0 in
        Hashtbl.replace state.prev name v;
        if v = p then None else Some (name, Json.Int (v - p)))
      (Counter.all ())
  in
  Json.Obj fields

let gauges_json () =
  Json.Obj
    (List.filter_map
       (fun g ->
         if Gauge.written g && ((not (Gauge.env g)) || state.process_stats) then
           Some (Gauge.name g, Json.Float (Gauge.value g))
         else None)
       (Gauge.all ()))

let hists_json () =
  Json.Obj
    (List.filter_map
       (fun h ->
         let s = Histogram.Bucketed.summary h in
         if s.Histogram.Bucketed.count = 0 then None
         else
           Some
             ( Histogram.Bucketed.name h,
               Json.Obj
                 [
                   ("count", Json.Int s.Histogram.Bucketed.count);
                   ("min", Json.Float s.Histogram.Bucketed.min);
                   ("max", Json.Float s.Histogram.Bucketed.max);
                   ("p50", Json.Float s.Histogram.Bucketed.p50);
                   ("p95", Json.Float s.Histogram.Bucketed.p95);
                   ("p99", Json.Float s.Histogram.Bucketed.p99);
                 ] ))
       (Histogram.Bucketed.all ()))

let gc_json () =
  let s = Gc.quick_stat () in
  Json.Obj
    [
      ("minor_words", Json.Float s.Gc.minor_words);
      ("promoted_words", Json.Float s.Gc.promoted_words);
      ("major_words", Json.Float s.Gc.major_words);
      ("minor_collections", Json.Int s.Gc.minor_collections);
      ("major_collections", Json.Int s.Gc.major_collections);
      ("compactions", Json.Int s.Gc.compactions);
      ("heap_words", Json.Int s.Gc.heap_words);
    ]

let emit ts =
  let base =
    [
      ("kind", Json.String "sample");
      ("ts", Json.Int (Int64.to_int ts));
      ("seq", Json.Int state.seq);
      ("counters", counters_delta_json ());
      ("gauges", gauges_json ());
      ("hists", hists_json ());
    ]
  in
  let fields =
    if not state.process_stats then base
    else
      base
      @ [ ("gc", gc_json ()) ]
      @ (match Rss.current_kb () with
        | Some kb -> [ ("rss_kb", Json.Int kb) ]
        | None -> [])
  in
  state.sink.write (Json.to_line (Json.Obj fields));
  (* Refresh the Prometheus exposition on the same cadence: the atomic
     rename means a scraper racing the rewrite still reads a complete
     file. Emitting happens outside every Pool chunk (see [may_sample]),
     so the registry merges here cannot race worker shards either. *)
  (match state.expo with Some file -> Expo.write file | None -> ());
  state.seq <- state.seq + 1;
  state.last <- ts

let start ?clock ?(interval = 1L) ?(process_stats = true) ?expo sink =
  if !active then invalid_arg "Telemetry.start: already started";
  if Int64.compare interval 1L < 0 then
    invalid_arg "Telemetry.start: interval must be >= 1";
  state.expo <- expo;
  (match clock with
  | Some c -> state.clock <- c
  | None ->
    (* Restart logical time so every default-clock run emits the same
       timestamps — the cross-RON_JOBS bit-identity contract. *)
    Atomic.set logical 0;
    state.clock <- logical_clock);
  state.sink <- sink;
  state.interval <- interval;
  state.seq <- 0;
  state.owner <- (Domain.self () :> int);
  state.process_stats <- process_stats;
  Hashtbl.reset state.prev;
  (* Deltas are measured from [start]: prime each counter's baseline with
     its standing total, so activity before start never shows as a delta
     when the sampler attaches to a warm process. *)
  List.iter
    (fun c -> Hashtbl.replace state.prev (Counter.name c) (Counter.value c))
    (Counter.all ());
  active := true;
  (* Baseline sample: seq 0 with all-zero deltas, so even short runs have
     a series. *)
  emit (state.clock ())

(* Sampling is chunk-free: only the owner domain, and only while it is
   not executing a Pool chunk. The check runs BEFORE the clock read, so
   skipped ticks advance nothing — the clock-read sequence at the
   surviving sample points is independent of RON_JOBS, which is what
   makes the logical-clock series bit-identical across job counts. It is
   also what makes a sample safe: outside every chunk, no worker domain
   exists, so merging counter/gauge/histogram shards cannot race with
   concurrent writes. *)
let may_sample () =
  (Domain.self () :> int) = state.owner && not (Ron_util.Pool.inside_chunk ())

let sample () = if !active && may_sample () then emit (state.clock ())

let tick () =
  if !active && may_sample () then begin
    let now = state.clock () in
    if Int64.compare (Int64.sub now state.last) state.interval >= 0 then emit now
  end

let snapshots_emitted () = state.seq

let stop () =
  if !active then begin
    (* Final sample before closing so the series always covers run end. *)
    if (Domain.self () :> int) = state.owner then emit (state.clock ());
    let s = state.sink in
    state.sink <- Trace.null_sink;
    state.clock <- logical_clock;
    state.owner <- -1;
    state.expo <- None;
    Hashtbl.reset state.prev;
    active := false;
    s.close ()
  end
