(** Value histograms, sharded per domain (see {!Counter} for the sharding
    contract). Observations are stored raw; [values] returns the merged,
    sorted sample, which depends only on the multiset observed — so
    summaries are bit-identical at every [RON_JOBS]. For deterministic
    snapshots record values (hops, bits, lengths), not wall-clock times. *)

type t

val make : string -> t
(** Create and register. Names should be unique. *)

val name : t -> string

val observe : t -> float -> unit
val observe_int : t -> int -> unit

val count : t -> int
(** Total observations across shards. *)

val values : t -> float array
(** All observations, merged and sorted ascending. *)

val reset : t -> unit
(** Drop every observation. Do not race with concurrent observes. *)

val all : unit -> t list
(** Every registered histogram, sorted by name. *)

val reset_all : unit -> unit

(** Bounded log-bucketed histograms (HDR/DDSketch-style): O(occupied
    buckets) memory regardless of observation count, quantiles within one
    bucket — a factor of [gamma = (1+e)/(1-e)] — of the exact raw-sample
    quantile under the {!Ron_util.Stats.percentile} rank rule. Finite
    positive values are log-bucketed; zeros and negatives count in a
    dedicated zero bucket with representative [0.0]; non-finite values
    (nan, infinities) are rejected — tallied in {!Bucketed.nonfinite_count}
    without touching buckets, counts, or min/max. Sharded per domain with
    commutative merges, so summaries are bit-identical at every
    [RON_JOBS]. This registry is separate from the raw-sample one
    above. *)
module Bucketed : sig
  type t

  type summary = {
    count : int;
    min : float;
    max : float;
    p50 : float;
    p95 : float;
    p99 : float;
  }

  val make : ?relative_error:float -> string -> t
  (** Create and register (idempotent per name; the first declaration's
      [relative_error] wins). Default relative error 1%. Raises
      [Invalid_argument] unless [relative_error] is in (0, 1). *)

  val name : t -> string
  val relative_error : t -> float
  val gamma : t -> float

  val observe : t -> float -> unit
  val observe_int : t -> int -> unit

  val count : t -> int
  (** Total accepted (finite) observations across shards. Rejected
      non-finite inputs are not included; see {!nonfinite_count}. *)

  val nonfinite_count : t -> int
  (** Rejected observations (nan, +/-infinity) across shards. These never
      enter the buckets or min/max, so a stray non-finite sample cannot
      corrupt quantiles. *)

  val bucket_count : t -> int
  (** Occupied (merged) log buckets — the memory footprint proxy. *)

  val buckets : t -> (float * int) array
  (** Merged occupied buckets as [(inclusive upper bound, count)] sorted
      ascending; the zero bucket appears first as [(0.0, count)] when
      occupied. Bit-identical at every [RON_JOBS]. Feeds the Prometheus
      cumulative-bucket exposition ({!Ron_obs.Expo}) and the SLO
      fraction-over-limit computation ({!Ron_obs.Slo}). *)

  val approx_sum : t -> float
  (** Deterministic approximate sum of the accepted observations: counts
      times geometric bucket midpoints (clamped to the observed extrema),
      folded in bucket order — within a factor of [gamma] of the exact
      sum, and independent of sharding (an exact per-shard float
      accumulator would not be). [0.0] when empty. *)

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [0, 1]; [nan] when empty. [q = 1.0]
      returns the exact recorded maximum, not a bucket representative. *)

  val summary : t -> summary
  (** count/min/max/p50/p95/p99; min/max are exact, quantiles within one
      bucket. All [nan] except [count] when empty. *)

  val reset : t -> unit
  (** Drop every observation. Do not race with concurrent observes. *)

  val all : unit -> t list
  (** Every registered bucketed histogram, sorted by name. *)

  val reset_all : unit -> unit
end
