(** Value histograms, sharded per domain (see {!Counter} for the sharding
    contract). Observations are stored raw; [values] returns the merged,
    sorted sample, which depends only on the multiset observed — so
    summaries are bit-identical at every [RON_JOBS]. For deterministic
    snapshots record values (hops, bits, lengths), not wall-clock times. *)

type t

val make : string -> t
(** Create and register. Names should be unique. *)

val name : t -> string

val observe : t -> float -> unit
val observe_int : t -> int -> unit

val count : t -> int
(** Total observations across shards. *)

val values : t -> float array
(** All observations, merged and sorted ascending. *)

val reset : t -> unit
(** Drop every observation. Do not race with concurrent observes. *)

val all : unit -> t list
(** Every registered histogram, sorted by name. *)

val reset_all : unit -> unit
