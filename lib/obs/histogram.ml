(* Value histograms, sharded per domain like Counter. Each shard is a
   growable flat float buffer; [values] concatenates every shard and sorts
   (monomorphic Fsort), so the result depends only on the multiset of
   observations — not on which domain recorded which — and downstream
   summaries (Ron_util.Stats over the sorted array) are bit-identical at
   every RON_JOBS.

   Observations are stored raw, not bucketed: the repo's histograms hold
   thousands of per-query values, and exact percentiles beat approximate
   buckets at that scale. Record values (hops, bits, lengths), not wall
   times, anywhere a deterministic snapshot is required. *)

type shard = { mutable data : float array; mutable len : int }

type t = {
  name : string;
  mu : Mutex.t;
  shards : shard list ref;
  key : shard Domain.DLS.key;
}

let registry_mu = Mutex.create ()
let registry : t list ref = ref []

(* Idempotent per name, like Counter.make. *)
let make name =
  Mutex.protect registry_mu (fun () ->
      match List.find_opt (fun t -> String.equal t.name name) !registry with
      | Some t -> t
      | None ->
        let mu = Mutex.create () in
        let shards = ref [] in
        let key =
          Domain.DLS.new_key (fun () ->
              let s = { data = [||]; len = 0 } in
              Mutex.protect mu (fun () -> shards := s :: !shards);
              s)
        in
        let t = { name; mu; shards; key } in
        registry := t :: !registry;
        t)

let name t = t.name

let observe t x =
  let s = Domain.DLS.get t.key in
  if s.len = Array.length s.data then begin
    let grown = Array.make (max 16 (2 * s.len)) 0.0 in
    Array.blit s.data 0 grown 0 s.len;
    s.data <- grown
  end;
  s.data.(s.len) <- x;
  s.len <- s.len + 1

let observe_int t i = observe t (float_of_int i)

let count t = Mutex.protect t.mu (fun () -> List.fold_left (fun a s -> a + s.len) 0 !(t.shards))

let values t =
  let shards = Mutex.protect t.mu (fun () -> !(t.shards)) in
  let total = List.fold_left (fun a s -> a + s.len) 0 shards in
  let out = Array.make (max 1 total) 0.0 in
  let off = ref 0 in
  List.iter
    (fun s ->
      Array.blit s.data 0 out !off s.len;
      off := !off + s.len)
    shards;
  let out = if total = Array.length out then out else Array.sub out 0 total in
  Ron_util.Fsort.sort_floats out;
  out

let reset t = Mutex.protect t.mu (fun () -> List.iter (fun s -> s.len <- 0) !(t.shards))

let all () =
  let l = Mutex.protect registry_mu (fun () -> !registry) in
  List.sort (fun a b -> String.compare a.name b.name) l

let reset_all () = List.iter reset (all ())

(* Bounded log-bucketed histograms (HDR/DDSketch-style) for serving-scale
   workloads where holding raw samples is the memory bug the telemetry is
   supposed to catch. A finite positive value v lands in bucket
   floor(log v / log gamma) with gamma = (1+e)/(1-e) for relative error e;
   zeros and negatives count in a dedicated zero bucket with
   representative 0.0. Non-finite inputs (nan, +/-infinity — e.g. stretch
   values computed against an unreachable node) are rejected: they bump a
   separate [nonfinite] tally and never touch the buckets, the totals, or
   min/max, so one bad sample cannot corrupt the summary. Memory is
   O(occupied buckets) per domain — for e = 1%, about 1150 buckets per
   decade-spanning workload, independent of observation count.

   Quantiles use the same rank rule as Ron_util.Stats.percentile
   (rank = ceil(q*n), element at rank-1) over the cumulative bucket
   counts, answering with the bucket's geometric midpoint gamma^(i+0.5)
   clamped to the observed [min, max]. Bucket index is monotone in the
   value, so the rank-r element of the sorted raw sample lies in the
   bucket the estimator picks: the answer is within one bucket — a factor
   of gamma — of the exact raw-sample quantile (tested by QCheck). The
   boundary q = 1.0 bypasses the bucket estimate entirely and returns the
   exact recorded max, matching the raw-sample maximum bit-for-bit.

   Shard counts merge by per-bucket addition and min/max by order-free
   extrema, so summaries are bit-identical at every RON_JOBS. *)
module Bucketed = struct
  type shard = {
    tbl : (int, int ref) Hashtbl.t;
    mutable zero : int;
    mutable nonfinite : int;
    mutable total : int;
    mutable mn : float;
    mutable mx : float;
  }

  type t = {
    name : string;
    gamma : float;
    log_gamma : float;
    relative_error : float;
    mu : Mutex.t;
    shards : shard list ref;
    key : shard Domain.DLS.key;
  }

  type summary = {
    count : int;
    min : float;
    max : float;
    p50 : float;
    p95 : float;
    p99 : float;
  }

  let registry_mu = Mutex.create ()
  let registry : t list ref = ref []

  (* Idempotent per name, like Counter.make; the [relative_error] of the
     first declaration wins. *)
  let make ?(relative_error = 0.01) name =
    if not (relative_error > 0.0 && relative_error < 1.0) then
      invalid_arg "Histogram.Bucketed.make: relative_error outside (0, 1)";
    Mutex.protect registry_mu (fun () ->
        match List.find_opt (fun t -> String.equal t.name name) !registry with
        | Some t -> t
        | None ->
          let gamma = (1.0 +. relative_error) /. (1.0 -. relative_error) in
          let mu = Mutex.create () in
          let shards = ref [] in
          let key =
            Domain.DLS.new_key (fun () ->
                let s =
                  { tbl = Hashtbl.create 64; zero = 0; nonfinite = 0;
                    total = 0; mn = infinity; mx = neg_infinity }
                in
                Mutex.protect mu (fun () -> shards := s :: !shards);
                s)
          in
          let t =
            { name; gamma; log_gamma = log gamma; relative_error; mu; shards; key }
          in
          registry := t :: !registry;
          t)

  let name t = t.name
  let relative_error t = t.relative_error
  let gamma t = t.gamma

  let observe t x =
    let s = Domain.DLS.get t.key in
    if not (Float.is_finite x) then
      (* Rejected, tallied apart: nan/inf must not poison min/max or shift
         quantile ranks. *)
      s.nonfinite <- s.nonfinite + 1
    else begin
      if x > 0.0 then begin
        let idx = int_of_float (Float.floor (log x /. t.log_gamma)) in
        (* [find] over [find_opt]: the hit path (every observation after a
           bucket's first) must not allocate an option. *)
        (match Hashtbl.find s.tbl idx with
        | r -> incr r
        | exception Not_found -> Hashtbl.add s.tbl idx (ref 1));
        if x < s.mn then s.mn <- x;
        if x > s.mx then s.mx <- x
      end
      else begin
        s.zero <- s.zero + 1;
        if 0.0 < s.mn then s.mn <- 0.0;
        if 0.0 > s.mx then s.mx <- 0.0
      end;
      s.total <- s.total + 1
    end

  let observe_int t i = observe t (float_of_int i)

  let count t =
    Mutex.protect t.mu (fun () ->
        List.fold_left (fun a s -> a + s.total) 0 !(t.shards))

  let nonfinite_count t =
    Mutex.protect t.mu (fun () ->
        List.fold_left (fun a s -> a + s.nonfinite) 0 !(t.shards))

  (* Merge every shard: (zero count, sorted (bucket, count) array, total,
     min, max). Addition and extrema commute, so the merge is independent
     of shard registration order. *)
  let merged t =
    let shards = Mutex.protect t.mu (fun () -> !(t.shards)) in
    let acc = Hashtbl.create 64 in
    let zero = ref 0 and total = ref 0 in
    let mn = ref infinity and mx = ref neg_infinity in
    List.iter
      (fun s ->
        zero := !zero + s.zero;
        total := !total + s.total;
        if s.mn < !mn then mn := s.mn;
        if s.mx > !mx then mx := s.mx;
        Hashtbl.iter
          (fun idx c ->
            match Hashtbl.find_opt acc idx with
            | Some r -> r := !r + !c
            | None -> Hashtbl.add acc idx (ref !c))
          s.tbl)
      shards;
    let buckets =
      Hashtbl.fold (fun idx c l -> (idx, !c) :: l) acc []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> Array.of_list
    in
    (!zero, buckets, !total, !mn, !mx)

  let bucket_count t =
    let _, buckets, _, _, _ = merged t in
    Array.length buckets

  (* Merged occupied buckets as (inclusive upper bound, count), ascending.
     The zero bucket (zeros and negatives, representative 0.0) leads as
     (0.0, count) when occupied; log bucket i spans (gamma^i, gamma^(i+1)]
     and is reported by its upper edge. This is the cumulative-bucket view
     the Prometheus exposition and the SLO fraction-above-limit
     computation both consume; it depends only on the merged multiset, so
     it is bit-identical at every RON_JOBS. *)
  let buckets t =
    let zero, bs, _, _, _ = merged t in
    let logs =
      Array.map
        (fun (idx, c) -> (exp (float_of_int (idx + 1) *. t.log_gamma), c))
        bs
    in
    if zero = 0 then logs else Array.append [| (0.0, zero) |] logs

  (* Deterministic approximate sum: per-bucket count times the bucket's
     geometric midpoint (clamped to the observed [min, max]), folded in
     bucket order. Within a factor of gamma of the exact sum, and — unlike
     a per-shard float accumulator — independent of how Pool sharded the
     observations. Zero-bucket entries contribute their representative
     0.0. *)
  let approx_sum t =
    let _, bs, total, mn, mx = merged t in
    if total = 0 then 0.0
    else
      Array.fold_left
        (fun a (idx, c) ->
          let mid = exp ((float_of_int idx +. 0.5) *. t.log_gamma) in
          let mid = Stdlib.max mn (Stdlib.min mx mid) in
          a +. (float_of_int c *. mid))
        0.0 bs

  let quantile_of_merged t (zero, buckets, total, mn, mx) q =
    if total = 0 then nan
    else begin
      let rank =
        let r = int_of_float (ceil (q *. float_of_int total)) in
        Stdlib.max 1 (Stdlib.min total r)
      in
      if rank <= zero then 0.0
      else if rank = total then
        (* q = 1.0 (or a rank landing on the last element): the maximum is
           tracked exactly, so answer with it instead of the top bucket's
           midpoint. *)
        mx
      else begin
        let seen = ref zero and est = ref mx in
        (try
           Array.iter
             (fun (idx, c) ->
               seen := !seen + c;
               if !seen >= rank then begin
                 est := exp ((float_of_int idx +. 0.5) *. t.log_gamma);
                 raise Exit
               end)
             buckets
         with Exit -> ());
        Stdlib.max mn (Stdlib.min mx !est)
      end
    end

  let quantile t q = quantile_of_merged t (merged t) q

  let summary t =
    let ((_, _, total, mn, mx) as m) = merged t in
    {
      count = total;
      min = (if total = 0 then nan else mn);
      max = (if total = 0 then nan else mx);
      p50 = quantile_of_merged t m 0.50;
      p95 = quantile_of_merged t m 0.95;
      p99 = quantile_of_merged t m 0.99;
    }

  let reset t =
    Mutex.protect t.mu (fun () ->
        List.iter
          (fun s ->
            Hashtbl.reset s.tbl;
            s.zero <- 0;
            s.nonfinite <- 0;
            s.total <- 0;
            s.mn <- infinity;
            s.mx <- neg_infinity)
          !(t.shards))

  let all () =
    let l = Mutex.protect registry_mu (fun () -> !registry) in
    List.sort (fun a b -> String.compare a.name b.name) l

  let reset_all () = List.iter reset (all ())
end
