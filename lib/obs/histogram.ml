(* Value histograms, sharded per domain like Counter. Each shard is a
   growable flat float buffer; [values] concatenates every shard and sorts
   (monomorphic Fsort), so the result depends only on the multiset of
   observations — not on which domain recorded which — and downstream
   summaries (Ron_util.Stats over the sorted array) are bit-identical at
   every RON_JOBS.

   Observations are stored raw, not bucketed: the repo's histograms hold
   thousands of per-query values, and exact percentiles beat approximate
   buckets at that scale. Record values (hops, bits, lengths), not wall
   times, anywhere a deterministic snapshot is required. *)

type shard = { mutable data : float array; mutable len : int }

type t = {
  name : string;
  mu : Mutex.t;
  shards : shard list ref;
  key : shard Domain.DLS.key;
}

let registry_mu = Mutex.create ()
let registry : t list ref = ref []

(* Idempotent per name, like Counter.make. *)
let make name =
  Mutex.protect registry_mu (fun () ->
      match List.find_opt (fun t -> String.equal t.name name) !registry with
      | Some t -> t
      | None ->
        let mu = Mutex.create () in
        let shards = ref [] in
        let key =
          Domain.DLS.new_key (fun () ->
              let s = { data = [||]; len = 0 } in
              Mutex.protect mu (fun () -> shards := s :: !shards);
              s)
        in
        let t = { name; mu; shards; key } in
        registry := t :: !registry;
        t)

let name t = t.name

let observe t x =
  let s = Domain.DLS.get t.key in
  if s.len = Array.length s.data then begin
    let grown = Array.make (max 16 (2 * s.len)) 0.0 in
    Array.blit s.data 0 grown 0 s.len;
    s.data <- grown
  end;
  s.data.(s.len) <- x;
  s.len <- s.len + 1

let observe_int t i = observe t (float_of_int i)

let count t = Mutex.protect t.mu (fun () -> List.fold_left (fun a s -> a + s.len) 0 !(t.shards))

let values t =
  let shards = Mutex.protect t.mu (fun () -> !(t.shards)) in
  let total = List.fold_left (fun a s -> a + s.len) 0 shards in
  let out = Array.make (max 1 total) 0.0 in
  let off = ref 0 in
  List.iter
    (fun s ->
      Array.blit s.data 0 out !off s.len;
      off := !off + s.len)
    shards;
  let out = if total = Array.length out then out else Array.sub out 0 total in
  Ron_util.Fsort.sort_floats out;
  out

let reset t = Mutex.protect t.mu (fun () -> List.iter (fun s -> s.len <- 0) !(t.shards))

let all () =
  let l = Mutex.protect registry_mu (fun () -> !registry) in
  List.sort (fun a b -> String.compare a.name b.name) l

let reset_all () = List.iter reset (all ())
