(** Process resident-set-size readings, normalised to kB. *)

val current_kb : unit -> int option
(** Current RSS from [/proc/self/statm]; [None] where /proc is
    unavailable (non-Linux). Cheap enough to call per telemetry sample. *)

val peak_kb : unit -> int option
(** Peak RSS: the kernel's VmHWM high-water mark when /proc is available,
    otherwise getrusage max-RSS (units already normalised to kB on every
    platform, including macOS's bytes). *)

val getrusage_peak_kb : unit -> int option
(** The getrusage max-RSS reading alone, in kB; [None] if the call fails.
    Exposed for tests of the fallback path. *)
