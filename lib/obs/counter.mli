(** Process-wide event counters, sharded per domain.

    Bumps touch only the calling domain's shard (no locks, no contention);
    [value] merges the shards by integer addition, so totals are identical
    at every [RON_JOBS] for a deterministic workload. Counters live in a
    global registry from creation (intended pattern: create once at module
    initialization, as [Probe] does) and are never unregistered. *)

type t

val make : string -> t
(** Create and register a counter. Names should be unique — snapshots key
    counters by name. *)

val name : t -> string

val incr : t -> unit
(** Add 1 to the calling domain's shard. *)

val add : t -> int -> unit
(** Add an arbitrary amount. *)

val value : t -> int
(** Sum over all shards (including those of finished domains). *)

val reset : t -> unit
(** Zero every shard. Do not race with concurrent bumps. *)

val all : unit -> t list
(** Every registered counter, sorted by name. *)

val reset_all : unit -> unit
