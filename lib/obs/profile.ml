(* Hierarchical phase profiler: where wall-clock time and allocation go.

   [phase name f] nests: a phase started inside another phase records under
   the path "outer/inner". Each completed phase charges its per-domain shard
   with one sample — wall time from the injected clock, plus the deltas of
   [Gc.quick_stat] (minor/promoted/major words, minor/major collections,
   compactions) across the call. Self time is total time minus the time
   spent in directly nested phases *on the same domain*; phases running on
   pool workers appear as their own roots (worker time is concurrent with
   the orchestrating phase, so subtracting it would be a lie).

   Like Counter, shards merge deterministically: [stats] sums per-path
   across shards and sorts by path, so the report's shape (paths, counts)
   is independent of how Pool distributed the work. The recorded times are
   as deterministic as the injected clock — the default is the same logical
   atomic tick Trace uses, so tests need no wall clock; the CLI and the
   bench inject a real one.

   Off by default: with [on = false] every [phase] call is one global load
   and a branch around a tail call, the same contract as [Probe.on] —
   deterministic snapshots and bit-identity tests are untouched. *)

type agg = {
  mutable count : int;
  mutable total_ns : int64;
  mutable self_ns : int64;
  mutable minor_words : float;
  mutable promoted_words : float;
  mutable major_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
  mutable compactions : int;
}

type stat = {
  path : string;
  count : int;
  total_ns : int64;
  self_ns : int64;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

type frame = {
  frame_path : string;
  t0 : int64;
  g0 : Gc.stat;
  mutable child_ns : int64;
}

type shard = {
  table : (string, agg) Hashtbl.t;
  mutable stack : frame list;
}

let on = ref false

let logical = Atomic.make 0
let logical_clock () = Int64.of_int (Atomic.fetch_and_add logical 1)

let clock = ref logical_clock

let registry_mu = Mutex.create ()
let registry : shard list ref = ref []

let shard_key : shard Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { table = Hashtbl.create 32; stack = [] } in
      Mutex.protect registry_mu (fun () -> registry := s :: !registry);
      s)

let enable ?clock:c () =
  (match c with Some c -> clock := c | None -> ());
  on := true

let disable () =
  on := false;
  (* Restore the deterministic default so a later [enable ()] (no ?clock)
     does not silently inherit a previous run's wall clock — the same leak
     Trace.stop had. *)
  clock := logical_clock

let enabled () = !on

let reset () =
  let shards = Mutex.protect registry_mu (fun () -> !registry) in
  List.iter
    (fun s ->
      Hashtbl.reset s.table;
      s.stack <- [])
    shards

let find_agg table path =
  match Hashtbl.find_opt table path with
  | Some a -> a
  | None ->
    let a =
      {
        count = 0;
        total_ns = 0L;
        self_ns = 0L;
        minor_words = 0.0;
        promoted_words = 0.0;
        major_words = 0.0;
        minor_collections = 0;
        major_collections = 0;
        compactions = 0;
      }
    in
    Hashtbl.replace table path a;
    a

let phase name f =
  if not !on then f ()
  else begin
    let sh = Domain.DLS.get shard_key in
    let path =
      match sh.stack with
      | [] -> name
      | parent :: _ -> parent.frame_path ^ "/" ^ name
    in
    let fr = { frame_path = path; t0 = !clock (); g0 = Gc.quick_stat (); child_ns = 0L } in
    sh.stack <- fr :: sh.stack;
    let finish () =
      let t1 = !clock () in
      let g1 = Gc.quick_stat () in
      (match sh.stack with _ :: tl -> sh.stack <- tl | [] -> ());
      let total = Int64.sub t1 fr.t0 in
      (match sh.stack with
      | parent :: _ -> parent.child_ns <- Int64.add parent.child_ns total
      | [] -> ());
      let a = find_agg sh.table path in
      a.count <- a.count + 1;
      a.total_ns <- Int64.add a.total_ns total;
      a.self_ns <- Int64.add a.self_ns (Int64.sub total fr.child_ns);
      a.minor_words <- a.minor_words +. (g1.Gc.minor_words -. fr.g0.Gc.minor_words);
      a.promoted_words <- a.promoted_words +. (g1.Gc.promoted_words -. fr.g0.Gc.promoted_words);
      a.major_words <- a.major_words +. (g1.Gc.major_words -. fr.g0.Gc.major_words);
      a.minor_collections <-
        a.minor_collections + (g1.Gc.minor_collections - fr.g0.Gc.minor_collections);
      a.major_collections <-
        a.major_collections + (g1.Gc.major_collections - fr.g0.Gc.major_collections);
      a.compactions <- a.compactions + (g1.Gc.compactions - fr.g0.Gc.compactions)
    in
    (* Mirror the phase into the trace stream when a sink is active:
       [Trace.span] is a no-op otherwise, and it owns the B/E (and
       error-on-unwind) shape, so trace_report sees the same phases the
       profile table reports. *)
    match Trace.span name f with
    | r ->
      finish ();
      r
    | exception ex ->
      finish ();
      raise ex
  end

let stats () =
  let shards = Mutex.protect registry_mu (fun () -> !registry) in
  let merged : (string, agg) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.iter
        (fun path (a : agg) ->
          let m = find_agg merged path in
          m.count <- m.count + a.count;
          m.total_ns <- Int64.add m.total_ns a.total_ns;
          m.self_ns <- Int64.add m.self_ns a.self_ns;
          m.minor_words <- m.minor_words +. a.minor_words;
          m.promoted_words <- m.promoted_words +. a.promoted_words;
          m.major_words <- m.major_words +. a.major_words;
          m.minor_collections <- m.minor_collections + a.minor_collections;
          m.major_collections <- m.major_collections + a.major_collections;
          m.compactions <- m.compactions + a.compactions)
        s.table)
    shards;
  let rows =
    Hashtbl.fold
      (fun path (a : agg) acc ->
        {
          path;
          count = a.count;
          total_ns = a.total_ns;
          self_ns = a.self_ns;
          minor_words = a.minor_words;
          promoted_words = a.promoted_words;
          major_words = a.major_words;
          minor_collections = a.minor_collections;
          major_collections = a.major_collections;
          compactions = a.compactions;
        }
        :: acc)
      merged []
  in
  List.sort (fun a b -> String.compare a.path b.path) rows

let stat_json (s : stat) =
  Json.Obj
    [
      ("path", Json.String s.path);
      ("count", Json.Int s.count);
      ("total_ns", Json.Int (Int64.to_int s.total_ns));
      ("self_ns", Json.Int (Int64.to_int s.self_ns));
      ("minor_words", Json.Float s.minor_words);
      ("promoted_words", Json.Float s.promoted_words);
      ("major_words", Json.Float s.major_words);
      ("minor_collections", Json.Int s.minor_collections);
      ("major_collections", Json.Int s.major_collections);
      ("compactions", Json.Int s.compactions);
    ]

let to_json () =
  Json.Obj
    [
      ("schema", Json.String "ron-profile/1");
      ("phases", Json.List (List.map stat_json (stats ())));
    ]

let write file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_json ())))

let pp oc =
  let rows = stats () in
  let ms ns = Int64.to_float ns /. 1e6 in
  let mw w = w /. 1e6 in
  Printf.fprintf oc "%-44s %8s %12s %12s %10s %10s %6s %6s\n" "phase" "count" "total_ms"
    "self_ms" "minor_Mw" "major_Mw" "min_gc" "maj_gc";
  Printf.fprintf oc "%s\n" (String.make 114 '-');
  List.iter
    (fun s ->
      Printf.fprintf oc "%-44s %8d %12.3f %12.3f %10.3f %10.3f %6d %6d\n" s.path s.count
        (ms s.total_ns) (ms s.self_ns) (mw s.minor_words) (mw s.major_words)
        s.minor_collections s.major_collections)
    rows
