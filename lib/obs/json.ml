(* Minimal JSON: one value type, a correct string escaper (shared by the
   bench report, the CLI metrics snapshot, and the trace sink), a pretty and
   a single-line printer, and a small recursive-descent parser so traces can
   be validated and round-tripped without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- output *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let escape s =
  let b = Buffer.create (String.length s + 8) in
  add_escaped b s;
  Buffer.contents b

let add_string_lit b s =
  Buffer.add_char b '"';
  add_escaped b s;
  Buffer.add_char b '"'

(* Non-finite floats have no JSON spelling; they become null. *)
let add_float b f =
  if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.9g" f)
  else Buffer.add_string b "null"

let rec emit b indent = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | String s -> add_string_lit b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_string b "[";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string b ",";
        Buffer.add_string b ("\n" ^ String.make (indent + 2) ' ');
        emit b (indent + 2) item)
      items;
    Buffer.add_string b ("\n" ^ String.make indent ' ' ^ "]")
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_string b "{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",";
        Buffer.add_string b ("\n" ^ String.make (indent + 2) ' ');
        add_string_lit b k;
        Buffer.add_string b ": ";
        emit b (indent + 2) v)
      fields;
    Buffer.add_string b ("\n" ^ String.make indent ' ' ^ "}")

let rec emit_compact b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | String s -> add_string_lit b s
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        emit_compact b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        add_string_lit b k;
        Buffer.add_char b ':';
        emit_compact b v)
      fields;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 4096 in
  emit b 0 j;
  Buffer.add_char b '\n';
  Buffer.contents b

let to_line j =
  let b = Buffer.create 256 in
  emit_compact b j;
  Buffer.contents b

(* ---------------------------------------------------------------- input *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail (Printf.sprintf "bad literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then fail "truncated escape";
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* Re-encode the code point as UTF-8. Surrogate pairs are not
             recombined; the obs layer never emits them. *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail (Printf.sprintf "unknown escape \\%c" c));
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
    while !pos < n && is_num s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            fields ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error e -> Error e

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
