(** Unicode block-element sparklines for sparse telemetry series.

    A series is (sample index, value) points in ascending index order
    over [0, samples); indices may be sparse (a section only reports a
    name once it has data). Gaps are carry-forward filled; samples before
    the first point carry the first point's value *backward*, so a
    late-starting constant series renders flat instead of as a cliff from
    a fabricated zero. *)

val default_width : int
(** Default column budget (40). *)

val levels : string array
(** The eight block glyphs, lowest to highest. *)

val mid_level : int
(** Index into {!levels} used for series with no range to scale against
    (constant-valued, or a single sample). *)

val render : ?width:int -> samples:int -> (int * float) list -> string
(** [render ~samples points] resamples to at most [width] columns (each
    column averages the samples it covers) and scales to the series' own
    [min, max]. Flat and single-sample series render as a run of
    {!mid_level} blocks — never a division by zero or a degenerate
    all-low/all-high ramp. Returns [""] when [samples <= 0], [points] is
    empty, or [width <= 0]. *)
