(* Process-wide gauges, sharded per domain like Counter. A gauge holds a
   "current level" (cache occupancy, batch size, effective job count)
   rather than a monotone count: each domain's shard keeps the last value
   that domain wrote, and the merged reading is the sum over shards that
   have been written at all. Sum commutes, so the reading is independent
   of registration order; a gauge written only from the orchestrating
   domain reads back exactly its last write at any RON_JOBS, which is what
   deterministic snapshots rely on.

   Gauges whose value necessarily reflects the execution environment
   (effective worker count, per-domain cache occupancy summed over a
   RON_JOBS-dependent number of caches) are declared with [~env:true] and
   excluded from deterministic surfaces: [Ron_obs.snapshot] skips them,
   and [Telemetry] only emits them alongside the other process-level
   fields (GC, RSS) that are already nondeterministic. *)

type shard = { mutable v : float; mutable written : bool }

type t = {
  name : string;
  env : bool;
  mu : Mutex.t;
  shards : shard list ref;
  key : shard Domain.DLS.key;
}

let registry_mu = Mutex.create ()
let registry : t list ref = ref []

(* Idempotent per name, like Counter.make; the [env] flag of the first
   declaration wins. *)
let make ?(env = false) name =
  Mutex.protect registry_mu (fun () ->
      match List.find_opt (fun t -> String.equal t.name name) !registry with
      | Some t -> t
      | None ->
        let mu = Mutex.create () in
        let shards = ref [] in
        let key =
          Domain.DLS.new_key (fun () ->
              let s = { v = 0.0; written = false } in
              Mutex.protect mu (fun () -> shards := s :: !shards);
              s)
        in
        let t = { name; env; mu; shards; key } in
        registry := t :: !registry;
        t)

let name t = t.name
let env t = t.env

let set t x =
  let s = Domain.DLS.get t.key in
  s.v <- x;
  s.written <- true

let set_int t i = set t (float_of_int i)

let add t by =
  let s = Domain.DLS.get t.key in
  s.v <- s.v +. by;
  s.written <- true

let written t =
  Mutex.protect t.mu (fun () -> List.exists (fun s -> s.written) !(t.shards))

let value t =
  Mutex.protect t.mu (fun () ->
      List.fold_left (fun a s -> if s.written then a +. s.v else a) 0.0 !(t.shards))

let max_value t =
  Mutex.protect t.mu (fun () ->
      List.fold_left
        (fun a s -> if s.written then Float.max a s.v else a)
        neg_infinity !(t.shards))

let reset t =
  Mutex.protect t.mu (fun () ->
      List.iter
        (fun s ->
          s.v <- 0.0;
          s.written <- false)
        !(t.shards))

let all () =
  let l = Mutex.protect registry_mu (fun () -> !registry) in
  List.sort (fun a b -> String.compare a.name b.name) l

let reset_all () = List.iter reset (all ())
