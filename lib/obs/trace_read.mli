(** Reader side of the JSONL trace format: parse {!Trace}'s output back
    into events and validate the stream's structural invariants. Shared by
    [bin/trace_check] and [bin/trace_report]. *)

type ph = B | E | I

type event = {
  ts : int;
  dom : int;
  ph : ph;
  name : string;
  args : (string * Json.t) list;  (** [[]] when the event carried no args *)
}

val ph_string : ph -> string

val parse_line : string -> (event, string) result
(** One JSONL line to one event; rejects missing/ill-typed [ts], [dom],
    [ph], [name], or a non-object [args]. *)

val parse_lines : string list -> (event list, string) result
(** Parse every non-blank line, failing with a 1-based line number. *)

val read_file : string -> (event list, string) result

val validate : event list -> (int, string) result
(** Check the whole stream: the ["error"] arg (emitted by {!Trace.span}
    when the wrapped function raises) appears only on ["E"] events and is a
    string, and per domain every ["E"] closes the innermost open ["B"] of
    the same name with nothing left open at the end. Returns the event
    count. *)
