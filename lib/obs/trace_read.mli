(** Reader side of the JSONL trace format: parse {!Trace}'s output back
    into events and validate the stream's structural invariants. Shared by
    [bin/trace_check] and [bin/trace_report]. *)

type ph = B | E | I

type event = {
  ts : int;
  dom : int;
  ph : ph;
  name : string;
  args : (string * Json.t) list;  (** [[]] when the event carried no args *)
}

val ph_string : ph -> string

val parse_line : string -> (event, string) result
(** One JSONL line to one event; rejects missing/ill-typed [ts], [dom],
    [ph], [name], or a non-object [args]. *)

val parse_lines : string list -> (event list, string) result
(** Parse every non-blank line, failing with a 1-based line number. *)

val read_file : string -> (event list, string) result

val validate : event list -> (int, string) result
(** Check the whole stream: the ["error"] arg (emitted by {!Trace.span}
    when the wrapped function raises) appears only on ["E"] events and is a
    string, and per domain every ["E"] closes the innermost open ["B"] of
    the same name with nothing left open at the end. Returns the event
    count. *)

(** {2 Telemetry snapshot records}

    Reader side of {!Telemetry}'s JSONL samples, shared by
    [bin/trace_check --telemetry] and [bin/telemetry_report]. *)

type snapshot = {
  sts : int;  (** the sample's clock reading ([ts] in the record) *)
  seq : int;
  counters : (string * Json.t) list;
  gauges : (string * Json.t) list;
  hists : (string * Json.t) list;
  gc : (string * Json.t) list option;
  rss_kb : int option;
}

val parse_snapshot_line : string -> (snapshot, string) result
(** One JSONL line to one snapshot; rejects non-["sample"] kinds and
    missing/ill-typed header fields. Section payloads are kept as raw
    JSON fields for {!validate_snapshots} and report rendering. *)

val parse_snapshot_lines : string list -> (snapshot list, string) result
val read_snapshot_file : string -> (snapshot list, string) result

val validate_snapshots : snapshot list -> (int, string) result
(** Check a whole series: [seq] counts 0,1,2,… with no gaps, [ts] never
    goes backwards, counter deltas are integers, gauges and gc fields are
    numbers, histogram summaries carry [count >= 1] plus numeric
    min/max/p50/p95/p99, and [rss_kb] is non-negative when present.
    Returns the sample count. *)
