/* Process memory facts the OCaml stdlib does not expose: getrusage
   max-RSS (the portable peak fallback when /proc is unavailable) and the
   page size (to convert /proc/self/statm pages to kB). Units are
   normalised to kB here so the OCaml side never branches on platform. */

#include <caml/mlvalues.h>
#include <sys/resource.h>
#include <unistd.h>

CAMLprim value ron_obs_maxrss_kb(value unit)
{
  struct rusage ru;
  long kb;
  (void)unit;
  if (getrusage(RUSAGE_SELF, &ru) != 0)
    return Val_long(-1);
  kb = (long)ru.ru_maxrss;
#ifdef __APPLE__
  kb /= 1024; /* macOS reports bytes, Linux kB */
#endif
  return Val_long(kb);
}

CAMLprim value ron_obs_page_size(value unit)
{
  long ps = sysconf(_SC_PAGESIZE);
  (void)unit;
  return Val_long(ps > 0 ? ps : 4096);
}
