(* Resident-set-size readings, normalised to kB. Current RSS comes from
   /proc/self/statm (pages, converted via the stub's page size) — the
   cheapest per-sample source, a single short read. Peak RSS prefers the
   kernel's VmHWM high-water mark and falls back to getrusage max-RSS
   where /proc is unavailable (non-Linux), so bench reports keep a peak
   column everywhere. *)

external maxrss_kb_stub : unit -> int = "ron_obs_maxrss_kb"
external page_size_stub : unit -> int = "ron_obs_page_size"

let page_kb = lazy (max 1 (page_size_stub () / 1024))

let current_kb () =
  match open_in "/proc/self/statm" with
  | exception Sys_error _ -> None
  | ic ->
    let r =
      match input_line ic with
      | exception End_of_file -> None
      | line -> (
        (* "size resident shared text lib data dt", all in pages. *)
        match String.split_on_char ' ' line with
        | _ :: resident :: _ ->
          Option.map (fun p -> p * Lazy.force page_kb) (int_of_string_opt resident)
        | _ -> None)
    in
    close_in ic;
    r

let vmhwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          let digits =
            String.to_seq line
            |> Seq.filter (fun c -> c >= '0' && c <= '9')
            |> String.of_seq
          in
          int_of_string_opt digits
        else scan ()
    in
    let r = scan () in
    close_in ic;
    r

let getrusage_peak_kb () =
  let kb = maxrss_kb_stub () in
  if kb > 0 then Some kb else None

let peak_kb () =
  match vmhwm_kb () with Some k -> Some k | None -> getrusage_peak_kb ()
