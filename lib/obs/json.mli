(** The one JSON encoder/parser shared by the bench report, the CLI metrics
    snapshot, and the trace sink — hand-rolled, no external dependency.

    Strings are escaped correctly for arbitrary bytes (quotes, backslashes,
    and all control characters); non-finite floats print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val to_string : t -> string
(** Pretty-printed (2-space indent), newline-terminated. *)

val to_line : t -> string
(** Compact single-line form, no trailing newline — one JSONL record. *)

val of_string : string -> (t, string) result
(** Parse one complete JSON value (plus surrounding whitespace). Numbers
    without [./e/E] parse as [Int]; others as [Float]. *)

val member : string -> t -> t option
(** [member k (Obj fields)] looks up [k]; [None] on non-objects. *)
