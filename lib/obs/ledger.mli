(** Per-query cost accounting.

    [with_query] installs a mutable cost entry in domain-local storage; the
    instrumented substrate ({!Probe} call sites in the metric index, rings,
    zooming, routing simulator, labelings, and Meridian) bumps whichever
    entry is current on its domain. This turns "routing decisions use only
    the local table" into an audited quantity: the entry records exactly
    the ring lookups, zoom iterations, hops, header rewrites, and
    table-entry touches the query actually performed.

    Entries merge sorted by [(kind, id)]; give queries deterministic ids
    (e.g. the sampled-pair index) and the ledger is identical at every
    [RON_JOBS]. *)

type entry = {
  kind : string;
  id : int;
  mutable dist_evals : int;  (** metric distance evaluations *)
  mutable ball_queries : int;  (** sorted-row binary searches *)
  mutable ring_lookups : int;  (** rings probed *)
  mutable ring_members : int;  (** ring members scanned across lookups *)
  mutable zoom_steps : int;  (** zooming-sequence decode iterations *)
  mutable hops : int;  (** forwarding decisions taken *)
  mutable header_rewrites : int;  (** hops that rewrote the packet header *)
  mutable header_bits_max : int;  (** header-size high-water mark *)
  mutable table_touches : int;  (** translation/beacon table entries examined *)
}

val with_query : kind:string -> id:int -> (unit -> 'a) -> 'a * entry
(** Run [f] charging a fresh entry (restoring any outer entry after), then
    record the entry in the global ledger and return it. *)

val current : unit -> entry option
(** The entry currently charged on this domain, if any. *)

(** Bump helpers used by {!Probe}; no-ops when no query is active. *)

val bump_dist : unit -> unit
val bump_ball : unit -> unit
val bump_ring : members:int -> unit
val bump_zoom : unit -> unit
val bump_hop : unit -> unit
val bump_header_rewrite : unit -> unit
val note_header_bits : int -> unit
val bump_table : unit -> unit

val entries : unit -> entry list
(** All recorded entries, sorted by [(kind, id)]. *)

val reset : unit -> unit
(** Drop all recorded entries. Do not race with active queries. *)
