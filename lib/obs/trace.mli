(** Trace events (spans and instants) written as JSONL through a pluggable
    sink.

    Each record is one line: [{"ts":<int>,"dom":<domain>,"ph":"B"|"E"|"i",
    "name":<string>,"args":{...}?}]. The timestamp comes from an {e
    injected} clock ([unit -> int64] nanoseconds); the default is a logical
    atomic tick (deterministic, no wall-clock dependency) and the CLI
    injects a real monotonic-ish clock. With no sink configured, [event]
    and [span] cost one load and a branch. *)

type sink = { write : string -> unit; close : unit -> unit }

val null_sink : sink

val channel_sink : out_channel -> sink
(** Line-at-a-time writes under a mutex (safe from multiple domains);
    [close] closes the channel. *)

val memory_sink : unit -> sink * (unit -> string list)
(** In-memory sink for tests; the thunk returns the lines written so far in
    order. *)

val logical_clock : unit -> int64
(** The default deterministic clock: a process-wide atomic tick. *)

val configure : ?clock:(unit -> int64) -> sink -> unit
(** Install a sink (and optionally a clock) and activate tracing. *)

val stop : unit -> unit
(** Deactivate tracing, close the previous sink, and restore the default
    {!logical_clock} (so a later [configure] without [?clock] does not
    inherit a stale injected clock). *)

val active : unit -> bool

val event : ?args:(string * Json.t) list -> string -> unit
(** Emit one instant event (no-op when inactive). *)

val span : ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Wrap [f] in begin/end events; exceptions are recorded on the end event
    and re-raised. *)
