(** Prometheus text-format exposition of the observability snapshot.

    Renders every registered counter (as [*_total]), every written gauge
    (env gauges included — this is an operational surface, not a
    deterministic one), every bucketed histogram (cumulative le-buckets,
    [+Inf], [_sum], [_count]; [_sum] is the deterministic bucket-midpoint
    approximation), and a [ron_build_info] gauge. Metric names are the
    registry names with non-Prometheus characters mapped to ['_'] and a
    ["ron_"] prefix. *)

val sanitize : string -> string
(** Registry name to Prometheus name (["ron_"] prefix, ['.'] → ['_']). *)

val render : unit -> string
(** The full exposition as one text blob. *)

val write : string -> unit
(** [write file] renders and publishes by atomic rename ([file ^ ".tmp"]
    then [Sys.rename]): a concurrent reader sees the old exposition or
    the new one, never a torn one. Raises [Sys_error] when the target
    is not writable. *)

val validate_string : string -> (int, string) result
(** Line-oriented validation: HELP/TYPE syntax, metric and label name
    syntax, every sample declared by a preceding TYPE, histogram
    invariants (le bounds increasing, cumulative counts non-decreasing,
    [+Inf] present, [_count] = [+Inf] bucket, [_sum] present). Returns
    the number of sample lines, or the first error with its line
    number. *)

val validate_file : string -> (int, string) result
(** {!validate_string} over a file's contents. Raises [Sys_error] when
    unreadable. *)
