(** Instrumentation points for the repo's hot surfaces.

    Contract: call sites guard with [if !Probe.on then Probe.<helper> ()],
    so the disabled cost is one global load plus a branch; the helpers
    assume the guard already happened. Each helper bumps its process-wide
    {!Counter} and charges the current {!Ledger} entry, if any. *)

val on : bool ref
(** The master switch. Set it before spawning Pool domains (they inherit
    the store visibly through [Domain.spawn]). *)

(** Counters, exposed so reports can read totals directly. *)

val dist_evals : Counter.t
val ball_queries : Counter.t
val ring_probes : Counter.t
val ring_members_scanned : Counter.t
val zoom_decode_steps : Counter.t
val zoom_encode_steps : Counter.t
val translation_lookups : Counter.t
val route_hops : Counter.t
val route_header_rewrites : Counter.t
val route_delivered : Counter.t
val route_truncated : Counter.t
val route_self_forward : Counter.t
val route_cycled : Counter.t
val route_dropped : Counter.t
val table_touches : Counter.t
val meridian_probes : Counter.t
val meridian_hops : Counter.t

(** Construction-side counters (preprocessing fan-out units). *)

val sssp_sources : Counter.t
val oracle_hits : Counter.t
val oracle_builds : Counter.t
val oracle_evicts : Counter.t
val table_nodes : Counter.t
val label_nodes : Counter.t
val ring_nodes : Counter.t
val pool_batches : Counter.t

(** Serving-loop counters (queries completed, batches dispatched). *)

val serve_queries : Counter.t
val serve_batches : Counter.t

(** Gauges (current levels, for telemetry snapshots). [oracle_rows] and
    [pool_jobs] are [env] gauges: their values depend on the execution
    environment, so deterministic surfaces exclude them. *)

val oracle_rows : Gauge.t
val pool_jobs : Gauge.t
val pool_batch_items : Gauge.t
val serve_inflight : Gauge.t
val serve_batch_size : Gauge.t

(** Fault-injection counters (injected faults and fallback decisions). *)

val fault_drops : Counter.t
val fault_crashed_hits : Counter.t
val fault_dead_links : Counter.t
val fault_retries : Counter.t
val fault_detours : Counter.t

(** Churn counters (membership events, incremental-repair work, route-time
    staleness). [churn_rebuilds] counts from-scratch reconstructions — the
    incremental repair paths never bump it, and tests pin it at 0. *)

val churn_joins : Counter.t
val churn_leaves : Counter.t
val churn_repair_updates : Counter.t
val churn_refills : Counter.t
val churn_relabels : Counter.t
val churn_stale_hits : Counter.t
val churn_detours : Counter.t
val churn_rebuilds : Counter.t

(** Churn gauges, set from the sequential event-application loop only. *)

val churn_live_nodes : Gauge.t
val churn_repair_backlog : Gauge.t

(** SLO-monitor counters and gauges, driven from the sequential
    window-close path only, so every reading is deterministic. *)

val slo_windows : Counter.t
val slo_violations : Counter.t
val slo_burn : Gauge.t
val slo_worst_burn : Gauge.t
val flight_exemplars : Gauge.t

val route_hops_hist : Histogram.t
val route_header_bits_hist : Histogram.t
val meridian_probes_hist : Histogram.t

(** Helpers (call only under [if !on]). *)

val dist_eval : unit -> unit
val ball_query : unit -> unit
val ring_probe : members:int -> unit
val zoom_decode_step : unit -> unit
val zoom_encode_step : unit -> unit
val translation_lookup : unit -> unit
val hop : unit -> unit
val header_rewrite : unit -> unit
val header_bits : int -> unit

val route_done :
  hops:int ->
  header_bits_max:int ->
  outcome:[ `Delivered | `Truncated | `Self_forward | `Cycled | `Dropped ] ->
  unit
(** Called once per simulated route: outcome counter, per-query histograms,
    and the ledger's header high-water mark. *)

val table_touch : unit -> unit
val meridian_probe : unit -> unit
val meridian_hop : unit -> unit

val sssp_source : unit -> unit
(** One shortest-path source solved ({!Ron_graph.Dijkstra}). *)

val oracle_hit : unit -> unit
(** One distance-oracle row served from the per-domain cache. *)

val oracle_build : unit -> unit
(** One distance-oracle row computed (cache miss). *)

val oracle_evict : unit -> unit
(** One distance-oracle row evicted from a full per-domain cache. *)

val oracle_occupancy : int -> unit
(** Record the calling domain's current cached-row count (env gauge). *)

val serve_batch : size:int -> inflight:int -> unit
(** One serving-loop batch dispatched: bumps the batch counter, adds
    [size] completed queries, and sets both serve gauges. Call from the
    orchestrating domain only. *)

val table_node : unit -> unit
(** One node's routing table built. *)

val label_node : unit -> unit
(** One node's distance label built. *)

val ring_node : unit -> unit
(** One node's rings populated. *)

(** Fault-event helpers (call only under [if !on]; counters only, no ledger
    charge — detour hops are already charged by the simulator's hop probe). *)

val fault_drop : unit -> unit
val fault_crashed_hit : unit -> unit
val fault_dead_link : unit -> unit
val fault_retry : unit -> unit
val fault_detour : unit -> unit

(** Churn helpers (call only under [if !on]; counters/gauges only). *)

val churn_join : unit -> unit
val churn_leave : unit -> unit

val churn_repair : updates:int -> unit
(** [updates] table entries touched while repairing one event. *)

val churn_refill : unit -> unit
(** One ring/table slot re-filled by bounded exploration. *)

val churn_relabel : unit -> unit
(** One invalidated label locally recomputed. *)

val churn_stale_hit : unit -> unit
(** A route consulted a table entry naming a departed node. *)

val churn_detour : unit -> unit
(** A route recovered from a stale entry through a ranked alternate. *)

val churn_rebuild : unit -> unit
(** A from-scratch reconstruction — never called by incremental repair. *)

val churn_levels : live:int -> backlog:int -> unit
(** Set the live-node and repair-backlog gauges (sequential caller only). *)

val slo_window : violations:int -> burn:float -> worst_burn:float -> unit
(** One SLO window closed: [violations] objectives violated in it, its
    worst burn rate, and the running worst across all closed windows
    (sequential caller only). *)

val flight_exemplar_level : int -> unit
(** Set the flight-recorder exemplar gauge after a dump (sequential
    caller only). *)
