(* SLO burn-rate monitor for the serving path: rolling windows of a
   fixed observation count, each evaluated against latency-quantile
   objectives ("p99<=2us") and delivery-rate objectives
   ("delivery>=0.999") over a Histogram.Bucketed window, with the error
   budget burn rate computed per window:

     latency  p_q <= L : burn = fraction of observations above L
                                divided by the budget (1 - q)
     delivery      >= R : burn = (1 - delivered/count) / (1 - R)

   burn = 1.0 means the window spent its budget exactly; > 1 means the
   objective is burning faster than it can afford (the window violates
   once the measured quantile/rate itself crosses the limit).

   Feed observations from one domain only (the serving orchestrator,
   between batches, in qid order): windows are sequential state, and a
   single feeder is what makes verdicts bit-identical at every RON_JOBS
   when latencies come from the deterministic logical clock. All
   arithmetic is int ratios and parsed constants — no accumulation-order
   float sums — so the verdict JSON is byte-stable.

   The per-window latency histogram lives in the Bucketed registry (so
   telemetry snapshots see "slo.window_latency" live) and resets at
   every window close. *)

type objective =
  | Latency of { q : float; label : string; limit : float }
  | Delivery of { min_rate : float }

(* A zero error budget (q = 1 or min_rate = 1 cannot be written, but a
   spec like delivery>=1.0 is rejected at parse time anyway) would make
   burn infinite; any overrun is clamped here so JSON stays finite. *)
let burn_cap = 1e9

(* ------------------------------------------------------------ parsing *)

let parse_limit s =
  let scaled mult s =
    match float_of_string_opt s with
    | Some v when v > 0.0 && Float.is_finite v -> Ok (v *. mult)
    | _ -> Error (Printf.sprintf "bad latency limit %S" s)
  in
  let n = String.length s in
  let has_suffix suf = n > String.length suf && Filename.check_suffix s suf in
  let chop suf = String.sub s 0 (n - String.length suf) in
  if has_suffix "ns" then scaled 1.0 (chop "ns")
  else if has_suffix "us" then scaled 1e3 (chop "us")
  else if has_suffix "ms" then scaled 1e6 (chop "ms")
  else if has_suffix "s" then scaled 1e9 (chop "s")
  else scaled 1.0 s (* unitless: raw clock units (the logical clock) *)

let parse_term term =
  let split op =
    match String.index_opt term '=' with
    | Some i
      when i > 0
           && i + 1 < String.length term
           && term.[i - 1] = op ->
      Some (String.sub term 0 (i - 1), String.sub term (i + 1) (String.length term - i - 1))
    | _ -> None
  in
  match split '<' with
  | Some (lhs, rhs) ->
    if String.length lhs >= 2 && lhs.[0] = 'p' then begin
      let digits = String.sub lhs 1 (String.length lhs - 1) in
      if String.for_all (fun c -> c >= '0' && c <= '9') digits && digits <> "" then
        match float_of_string_opt ("0." ^ digits) with
        | Some q when q > 0.0 && q < 1.0 -> (
          match parse_limit rhs with
          | Ok limit -> Ok (Latency { q; label = lhs; limit })
          | Error e -> Error e)
        | _ -> Error (Printf.sprintf "bad quantile %S" lhs)
      else Error (Printf.sprintf "bad quantile %S" lhs)
    end
    else Error (Printf.sprintf "bad objective %S (want pNN<=LIMIT)" term)
  | None -> (
    match split '>' with
    | Some (lhs, rhs) ->
      if String.equal lhs "delivery" then
        match float_of_string_opt rhs with
        | Some r when r > 0.0 && r < 1.0 -> Ok (Delivery { min_rate = r })
        | _ -> Error (Printf.sprintf "bad delivery rate %S (want a rate in (0, 1))" rhs)
      else Error (Printf.sprintf "bad objective %S (want delivery>=RATE)" term)
    | None -> Error (Printf.sprintf "bad objective %S (want pNN<=LIMIT or delivery>=RATE)" term))

let parse spec =
  let terms =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if terms = [] then Error "empty SLO spec"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | t :: rest -> ( match parse_term t with Ok o -> go (o :: acc) rest | Error e -> Error e)
    in
    go [] terms

let describe_objective = function
  | Latency { label; limit; _ } -> Printf.sprintf "%s<=%g" label limit
  | Delivery { min_rate } -> Printf.sprintf "delivery>=%g" min_rate

let describe objectives = String.concat "," (List.map describe_objective objectives)

(* ------------------------------------------------------- evaluation *)

type window_result = { value : float; burn : float; violated : bool }

type window_summary = {
  w_index : int;
  w_count : int;
  w_ok : int;
  w_results : window_result array; (* objective order *)
}

type t = {
  objectives : objective array;
  spec : string;
  win : int;
  hist : Histogram.Bucketed.t;
  mutable w_index : int;
  mutable w_count : int;
  mutable w_ok : int;
  mutable summaries : window_summary list; (* newest first *)
  mutable max_burn : float;
  mutable violated_windows : int;
  mutable total_obs : int;
  mutable total_ok : int;
}

let create ?(window = 2000) ?(name = "slo") objectives =
  if window < 1 then invalid_arg "Slo.create: window < 1";
  if objectives = [] then invalid_arg "Slo.create: no objectives";
  let hist = Histogram.Bucketed.make (name ^ ".window_latency") in
  (* The registry is idempotent per name: a previous monitor with the
     same name may have left observations behind. *)
  Histogram.Bucketed.reset hist;
  {
    objectives = Array.of_list objectives;
    spec = describe objectives;
    win = window;
    hist;
    w_index = 0;
    w_count = 0;
    w_ok = 0;
    summaries = [];
    max_burn = 0.0;
    violated_windows = 0;
    total_obs = 0;
    total_ok = 0;
  }

let window t = t.win
let spec t = t.spec
let objectives t = Array.to_list t.objectives

(* Observations strictly above the limit, counted by bucket midpoint (the
   same representative the quantile estimator answers with), so value-
   and burn-violations agree to within one bucket. *)
let above_limit hist limit =
  let half = sqrt (Histogram.Bucketed.gamma hist) in
  Array.fold_left
    (fun a (upper, c) ->
      let mid = if upper = 0.0 then 0.0 else upper /. half in
      if mid > limit then a + c else a)
    0
    (Histogram.Bucketed.buckets hist)

let eval t ~count ~okc = function
  | Latency { q; limit; _ } ->
    let value = Histogram.Bucketed.quantile t.hist q in
    let above = above_limit t.hist limit in
    let budget = (1.0 -. q) *. float_of_int count in
    let burn =
      if above = 0 then 0.0
      else if budget <= 0.0 then burn_cap
      else Float.min burn_cap (float_of_int above /. budget)
    in
    { value; burn; violated = value > limit }
  | Delivery { min_rate } ->
    let rate = float_of_int okc /. float_of_int count in
    let err = count - okc in
    let budget = (1.0 -. min_rate) *. float_of_int count in
    let burn =
      if err = 0 then 0.0
      else if budget <= 0.0 then burn_cap
      else Float.min burn_cap (float_of_int err /. budget)
    in
    { value = rate; burn; violated = rate < min_rate }

let close t =
  let count = t.w_count and okc = t.w_ok in
  let results = Array.map (eval t ~count ~okc) t.objectives in
  let violations = Array.fold_left (fun a r -> if r.violated then a + 1 else a) 0 results in
  let wburn = Array.fold_left (fun a r -> Float.max a r.burn) 0.0 results in
  if wburn > t.max_burn then t.max_burn <- wburn;
  if violations > 0 then t.violated_windows <- t.violated_windows + 1;
  t.summaries <-
    { w_index = t.w_index; w_count = count; w_ok = okc; w_results = results } :: t.summaries;
  t.total_obs <- t.total_obs + count;
  t.total_ok <- t.total_ok + okc;
  if !Probe.on then Probe.slo_window ~violations ~burn:wburn ~worst_burn:t.max_burn;
  Histogram.Bucketed.reset t.hist;
  t.w_index <- t.w_index + 1;
  t.w_count <- 0;
  t.w_ok <- 0

let observe t ~lat ~ok =
  Histogram.Bucketed.observe t.hist lat;
  t.w_count <- t.w_count + 1;
  if ok then t.w_ok <- t.w_ok + 1;
  if t.w_count >= t.win then close t

let finish t = if t.w_count > 0 then close t

let windows t = List.rev t.summaries
let windows_closed t = List.length t.summaries
let violated_windows t = t.violated_windows
let max_burn t = t.max_burn
let ok t = t.violated_windows = 0

(* ------------------------------------------------------------- verdict *)

let objective_json = function
  | Latency { q; label; limit } ->
    Json.Obj
      [
        ("kind", Json.String "latency");
        ("p", Json.String label);
        ("q", Json.Float q);
        ("limit", Json.Float limit);
      ]
  | Delivery { min_rate } ->
    Json.Obj [ ("kind", Json.String "delivery"); ("min_rate", Json.Float min_rate) ]

let result_json o (r : window_result) =
  Json.Obj
    [
      ("objective", Json.String (describe_objective o));
      ("value", Json.Float r.value);
      ("burn", Json.Float r.burn);
      ("violated", Json.Bool r.violated);
    ]

let window_json t (w : window_summary) =
  Json.Obj
    [
      ("window", Json.Int w.w_index);
      ("count", Json.Int w.w_count);
      ("delivered", Json.Int w.w_ok);
      ( "results",
        Json.List (List.map2 result_json (Array.to_list t.objectives) (Array.to_list w.w_results))
      );
    ]

let to_json ?flight t =
  let base =
    [
      ("schema", Json.String "ron-slo/1");
      ("spec", Json.String t.spec);
      ("window", Json.Int t.win);
      ("objectives", Json.List (List.map objective_json (Array.to_list t.objectives)));
      ("windows", Json.List (List.map (window_json t) (windows t)));
      ( "totals",
        Json.Obj
          [
            ("windows", Json.Int (List.length t.summaries));
            ("violated_windows", Json.Int t.violated_windows);
            ("max_burn", Json.Float t.max_burn);
            ("observations", Json.Int t.total_obs);
            ("delivered", Json.Int t.total_ok);
          ] );
      ("ok", Json.Bool (ok t));
    ]
  in
  match flight with None -> Json.Obj base | Some f -> Json.Obj (base @ [ ("flight", f) ])
