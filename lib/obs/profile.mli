(** Hierarchical phase profiler with GC accounting.

    [phase name f] runs [f], recording wall time (from an {e injected}
    clock) and [Gc.quick_stat] deltas under the phase's {e path} — phase
    names joined with ["/"] down the nesting chain on the current domain.
    Aggregation is per-domain (like {!Counter} shards) with a deterministic
    merge: {!stats} sums per path and sorts by path, so the report's shape
    is identical at every [RON_JOBS].

    Off by default: when {!on} is [false], [phase] is one global load and a
    branch around calling [f] — the repo's deterministic outputs and
    bit-identity tests are untouched. The default clock is a logical atomic
    tick (deterministic, allocation-free); the CLI's [--profile] and the
    bench inject a real nanosecond clock.

    Self time is total minus directly nested phases {e on the same
    domain}; a phase entered on a pool worker is its own root, so worker
    time (concurrent with the orchestrating phase) is never subtracted.
    Within one domain the self times of a phase tree sum exactly to the
    root's total. GC words are [Gc.quick_stat] deltas observed by the
    calling domain — allocation on concurrently running domains is charged
    to their own phases (or nowhere), not to the caller's. *)

val on : bool ref
(** The master switch, [Probe.on]-style: call sites pay a single branch
    when off. Prefer {!enable}/{!disable} over setting it directly — they
    also manage the injected clock. *)

val enable : ?clock:(unit -> int64) -> unit -> unit
(** Turn profiling on, optionally installing a clock ([unit -> int64]
    nanoseconds, expected monotonic). Without [?clock] the current clock is
    kept (the deterministic logical tick unless a previous [enable]
    installed one and {!disable} has not run since). *)

val disable : unit -> unit
(** Turn profiling off and restore the default logical clock, so a later
    [enable ()] does not inherit a stale wall clock. *)

val enabled : unit -> bool

val logical_clock : unit -> int64
(** The default deterministic clock: a process-wide atomic tick. *)

val phase : string -> (unit -> 'a) -> 'a
(** [phase name f] runs [f] under [name], nested inside the innermost
    enclosing phase on this domain. Exceptions still record the sample and
    re-raise. When {!on} is false, exactly [f ()]. When a {!Trace} sink is
    also active, the phase is mirrored as a [Trace.span], so trace files
    carry the same B/E span structure the profile table aggregates. *)

type stat = {
  path : string;  (** "outer/inner" phase path, the sort key *)
  count : int;
  total_ns : int64;
  self_ns : int64;  (** total minus directly nested same-domain phases *)
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

val stats : unit -> stat list
(** Merged across domains, sorted by path. *)

val reset : unit -> unit
(** Drop all recorded samples (and any dangling frames). *)

val to_json : unit -> Json.t
(** [{"schema":"ron-profile/1","phases":[{...}, ...]}], phases sorted by
    path. *)

val write : string -> unit
(** Write {!to_json} as pretty JSON to a file. *)

val pp : out_channel -> unit
(** Human-readable table: count, total/self ms, minor/major Mwords,
    collection counts per phase. *)
