(* Prometheus text-format exposition of the full observability snapshot:
   counters (as *_total), gauges, bucketed histograms (cumulative
   le-buckets, +Inf, _sum, _count), and a build-info gauge — rendered to
   a string and published by atomic rename, so a scraper never reads a
   torn file. The same numbers bench --json reports, in the format
   external collectors already speak.

   Unlike Ron_obs.snapshot, which is a deterministic surface, the
   exposition is an operational one: env gauges (pool.jobs,
   oracle.rows_cached) are included, and the histogram _sum is the
   deterministic bucket-midpoint approximation (Bucketed.approx_sum).

   The validator is deliberately line-oriented (the same shape
   trace_check's other modes use): it checks name/label/value syntax,
   that every sample's metric was TYPE-declared first, and the histogram
   invariants (cumulative buckets non-decreasing, +Inf present, _count
   equal to the +Inf bucket, _sum present). *)

(* '.' and any other character outside a Prometheus name becomes '_';
   every metric is prefixed "ron_". *)
let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      in
      if not ok then Bytes.set b i '_')
    b;
  "ron_" ^ Bytes.to_string b

let add_float_sample buf name labels v =
  Buffer.add_string buf name;
  Buffer.add_string buf labels;
  Buffer.add_char buf ' ';
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.9g" v);
  Buffer.add_char buf '\n'

let render () =
  let buf = Buffer.create 4096 in
  let header name kind help =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  header "ron_build_info" "gauge" "Build and schema information for the ron exposition.";
  Buffer.add_string buf
    (Printf.sprintf "ron_build_info{ocaml_version=%S,schema=\"ron-obs/1\",word_size=\"%d\"} 1\n"
       Sys.ocaml_version Sys.word_size);
  List.iter
    (fun c ->
      let name = sanitize (Counter.name c) ^ "_total" in
      header name "counter" (Printf.sprintf "ron counter %s." (Counter.name c));
      add_float_sample buf name "" (float_of_int (Counter.value c)))
    (Counter.all ());
  List.iter
    (fun g ->
      if Gauge.written g then begin
        let name = sanitize (Gauge.name g) in
        header name "gauge" (Printf.sprintf "ron gauge %s." (Gauge.name g));
        add_float_sample buf name "" (Gauge.value g)
      end)
    (Gauge.all ());
  List.iter
    (fun h ->
      let name = sanitize (Histogram.Bucketed.name h) in
      header name "histogram"
        (Printf.sprintf "ron bucketed histogram %s (log buckets, relative error %g)."
           (Histogram.Bucketed.name h)
           (Histogram.Bucketed.relative_error h));
      let total = Histogram.Bucketed.count h in
      let cum = ref 0 in
      Array.iter
        (fun (upper, c) ->
          cum := !cum + c;
          add_float_sample buf (name ^ "_bucket")
            (Printf.sprintf "{le=\"%.9g\"}" upper)
            (float_of_int !cum))
        (Histogram.Bucketed.buckets h);
      add_float_sample buf (name ^ "_bucket") "{le=\"+Inf\"}" (float_of_int total);
      add_float_sample buf (name ^ "_sum") "" (Histogram.Bucketed.approx_sum h);
      add_float_sample buf (name ^ "_count") "" (float_of_int total))
    (Histogram.Bucketed.all ());
  Buffer.contents buf

(* Publish atomically: write a sibling temp file, then rename over the
   target — rename within a directory is atomic, so a concurrent scraper
   sees either the old exposition or the new one, never a prefix. *)
let write file =
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  (try output_string oc (render ())
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp file

(* ---------------------------------------------------------- validator *)

let valid_name s =
  s <> ""
  && (let c = s.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':')
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       s

let parse_value tok =
  match tok with
  | "+Inf" -> Some infinity
  | "-Inf" -> Some neg_infinity
  | "NaN" -> Some nan
  | _ -> ( match float_of_string_opt tok with Some v -> Some v | None -> None)

(* Parse [name{labels}] from a sample line; returns (name, le-label if
   present, rest-offset). Labels are k="v" pairs; escapes inside values
   are skipped over but not interpreted. *)
let parse_sample_head line =
  let n = String.length line in
  let i = ref 0 in
  while
    !i < n
    &&
    let c = line.[!i] in
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  do
    incr i
  done;
  let name = String.sub line 0 !i in
  if name = "" then Error "missing metric name"
  else if !i < n && line.[!i] = '{' then begin
    incr i;
    let le = ref None in
    let rec labels () =
      if !i >= n then Error "unterminated label set"
      else if line.[!i] = '}' then begin
        incr i;
        Ok ()
      end
      else begin
        let ks = !i in
        while
          !i < n
          &&
          let c = line.[!i] in
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
        do
          incr i
        done;
        let k = String.sub line ks (!i - ks) in
        if k = "" then Error "empty label name"
        else if !i + 1 >= n || line.[!i] <> '=' || line.[!i + 1] <> '"' then
          Error (Printf.sprintf "label %s: expected =\"" k)
        else begin
          i := !i + 2;
          let vs = !i in
          let rec scan () =
            if !i >= n then Error "unterminated label value"
            else if line.[!i] = '\\' then begin
              i := !i + 2;
              scan ()
            end
            else if line.[!i] = '"' then begin
              let v = String.sub line vs (!i - vs) in
              incr i;
              if k = "le" then le := Some v;
              if !i < n && line.[!i] = ',' then begin
                incr i;
                labels ()
              end
              else labels ()
            end
            else begin
              incr i;
              scan ()
            end
          in
          scan ()
        end
      end
    in
    match labels () with Ok () -> Ok (name, !le, !i) | Error e -> Error e
  end
  else Ok (name, None, !i)

type hist_state = {
  mutable buckets : (float * float) list; (* (le, cumulative) newest first *)
  mutable has_inf : bool;
  mutable inf_value : float;
  mutable sum_seen : bool;
  mutable count_seen : bool;
  mutable count_value : float;
}

(* Strip a histogram-series suffix to find the declared family name. *)
let family name =
  let strip suf =
    let ls = String.length suf in
    let ln = String.length name in
    if ln > ls && String.sub name (ln - ls) ls = suf then Some (String.sub name 0 (ln - ls))
    else None
  in
  match strip "_bucket" with
  | Some base -> (base, `Bucket)
  | None -> (
    match strip "_sum" with
    | Some base -> (base, `Sum)
    | None -> ( match strip "_count" with Some base -> (base, `Count) | None -> (name, `Plain)))

let validate_string s =
  let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let hists : (string, hist_state) Hashtbl.t = Hashtbl.create 8 in
  let samples = ref 0 in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let lines = String.split_on_char '\n' s in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest ->
      let next () = go (lineno + 1) rest in
      if line = "" then next ()
      else if String.length line >= 1 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "HELP" :: name :: _ :: _ ->
          if valid_name name then next () else err lineno (Printf.sprintf "bad HELP name %S" name)
        | "#" :: "TYPE" :: [ name; kind ] ->
          if not (valid_name name) then err lineno (Printf.sprintf "bad TYPE name %S" name)
          else if not (List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
          then err lineno (Printf.sprintf "bad TYPE kind %S" kind)
          else if Hashtbl.mem types name then
            err lineno (Printf.sprintf "duplicate TYPE for %s" name)
          else begin
            Hashtbl.add types name kind;
            if kind = "histogram" then
              Hashtbl.add hists name
                {
                  buckets = [];
                  has_inf = false;
                  inf_value = nan;
                  sum_seen = false;
                  count_seen = false;
                  count_value = nan;
                };
            next ()
          end
        | "#" :: "HELP" :: _ -> err lineno "malformed HELP line"
        | _ -> err lineno "malformed comment line (want # HELP or # TYPE)"
      end
      else begin
        match parse_sample_head line with
        | Error e -> err lineno e
        | Ok (name, le, off) -> (
          if not (valid_name name) then err lineno (Printf.sprintf "bad metric name %S" name)
          else begin
            let value_tok = String.trim (String.sub line off (String.length line - off)) in
            match parse_value value_tok with
            | None -> err lineno (Printf.sprintf "bad sample value %S" value_tok)
            | Some v -> (
              let base, series = family name in
              let declared n =
                match Hashtbl.find_opt types n with
                | Some k -> Some (n, k)
                | None -> None
              in
              (* A histogram sample belongs to its family; anything else
                 must be declared under its own name. *)
              let decl =
                match series with
                | `Plain -> declared name
                | _ -> ( match declared base with Some d -> Some d | None -> declared name)
              in
              match decl with
              | None -> err lineno (Printf.sprintf "sample for undeclared metric %s" name)
              | Some (fam, kind) ->
                incr samples;
                (if kind = "histogram" then
                   match Hashtbl.find_opt hists fam with
                   | None -> ()
                   | Some h -> (
                     match series with
                     | `Bucket -> (
                       match le with
                       | None -> ()
                       | Some le_s ->
                         let le_v =
                           match parse_value le_s with Some f -> f | None -> nan
                         in
                         if le_v = infinity then begin
                           h.has_inf <- true;
                           h.inf_value <- v
                         end
                         else h.buckets <- (le_v, v) :: h.buckets)
                     | `Sum -> h.sum_seen <- true
                     | `Count ->
                       h.count_seen <- true;
                       h.count_value <- v
                     | `Plain -> ()));
                (* le is only meaningful on buckets; a bucket sample with
                   no le label is malformed. *)
                if kind = "histogram" && series = `Bucket && le = None then
                  err lineno (Printf.sprintf "%s_bucket without le label" fam)
                else next ())
          end)
      end
  in
  match go 1 lines with
  | Error e -> Error e
  | Ok () ->
    let check name h acc =
      match acc with
      | Error _ -> acc
      | Ok () ->
        let bs = List.rev h.buckets in
        let rec monotone prev = function
          | [] -> true
          | (_, c) :: rest -> c >= prev && monotone c rest
        in
        let rec le_increasing = function
          | (a, _) :: ((b, _) :: _ as rest) -> a < b && le_increasing rest
          | _ -> true
        in
        if not (monotone 0.0 bs) then
          Error (Printf.sprintf "histogram %s: cumulative buckets decrease" name)
        else if not (le_increasing bs) then
          Error (Printf.sprintf "histogram %s: le bounds not increasing" name)
        else if not h.has_inf then Error (Printf.sprintf "histogram %s: missing +Inf bucket" name)
        else if not h.count_seen then Error (Printf.sprintf "histogram %s: missing _count" name)
        else if h.count_value <> h.inf_value then
          Error (Printf.sprintf "histogram %s: _count %g <> +Inf bucket %g" name h.count_value h.inf_value)
        else if not h.sum_seen then Error (Printf.sprintf "histogram %s: missing _sum" name)
        else if (match bs with [] -> false | _ -> snd (List.nth bs (List.length bs - 1)) > h.inf_value)
        then Error (Printf.sprintf "histogram %s: finite bucket exceeds +Inf" name)
        else Ok ()
    in
    (match Hashtbl.fold check hists (Ok ()) with
    | Error e -> Error e
    | Ok () -> if !samples = 0 then Error "no samples" else Ok !samples)

let validate_file file =
  let ic = open_in file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  validate_string s
