module Pool = Ron_util.Pool
module Probe = Ron_obs.Probe
module Profile = Ron_obs.Profile

type sssp = { source : int; dist : float array; first_hop : int array }

type apsp = { ap_n : int; ap_dist : floatarray; ap_fh : int array }

(* ------------------------------------------------------------------------ *)
(* Flat, allocation-lean core.

   The heap holds no records: entry [i] is a float priority in [heap_d.(i)]
   and an int key in [heap_x.(i)] packing [(first_hop + 1) << k | node],
   where [2^k] is the first power of two with [n <= 2^k]. Since
   [node < 2^k], integer order on the packed key is exactly the
   lexicographic order on [(first_hop, node)], so

     d_i < d_j  ||  (d_i = d_j && x_i < x_j)

   reproduces the reference comparator with two monomorphic compares and no
   allocation. Distinct live entries never compare equal (a push requires a
   strict [(d, fh)] improvement over the recorded tentative), so the pop
   sequence — and therefore every output bit — is independent of the heap's
   internal layout and identical to the reference implementation's.

   All per-source state lives in one scratch struct, allocated once per
   domain (via DLS) and reused across sources: running [all_pairs] performs
   no per-source allocation beyond the shared output arrays. *)

type scratch = {
  mutable cap : int; (* node capacity the buffers are sized for *)
  mutable dist : float array;
  mutable fh : int array;
  mutable settled : Bytes.t;
  mutable heap_d : float array;
  mutable heap_x : int array;
  mutable heap_len : int;
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        cap = 0;
        dist = [||];
        fh = [||];
        settled = Bytes.empty;
        heap_d = [||];
        heap_x = [||];
        heap_len = 0;
      })

let scratch_for n =
  let sc = Domain.DLS.get scratch_key in
  if sc.cap < n then begin
    sc.cap <- n;
    sc.dist <- Array.make n infinity;
    sc.fh <- Array.make n (-1);
    sc.settled <- Bytes.make n '\000';
    (* Heap capacity grows on demand; seed it with room for a few pushes per
       node, the common case on bounded-degree graphs. *)
    sc.heap_d <- Array.make (4 * n) 0.0;
    sc.heap_x <- Array.make (4 * n) 0;
    sc.heap_len <- 0
  end;
  sc

let heap_push sc d x =
  let len = sc.heap_len in
  if len = Array.length sc.heap_d then begin
    let bigger_d = Array.make (2 * len) 0.0 and bigger_x = Array.make (2 * len) 0 in
    Array.blit sc.heap_d 0 bigger_d 0 len;
    Array.blit sc.heap_x 0 bigger_x 0 len;
    sc.heap_d <- bigger_d;
    sc.heap_x <- bigger_x
  end;
  let hd = sc.heap_d and hx = sc.heap_x in
  (* Sift up by hole-movement: no swaps, one final store. *)
  let i = ref len in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pd = Array.unsafe_get hd p in
    if d < pd || (d = pd && x < Array.unsafe_get hx p) then begin
      Array.unsafe_set hd !i pd;
      Array.unsafe_set hx !i (Array.unsafe_get hx p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set hd !i d;
  Array.unsafe_set hx !i x;
  sc.heap_len <- len + 1

(* Remove the minimum; the caller reads it from [sc.heap_d.(0)]/[heap_x.(0)]
   before calling. *)
let heap_drop_min sc =
  let len = sc.heap_len - 1 in
  sc.heap_len <- len;
  if len > 0 then begin
    let hd = sc.heap_d and hx = sc.heap_x in
    let d = Array.unsafe_get hd len and x = Array.unsafe_get hx len in
    (* Sift the former last element down from the root, hole-movement. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= len then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < len then begin
            let ld = Array.unsafe_get hd l and rd = Array.unsafe_get hd r in
            if rd < ld || (rd = ld && Array.unsafe_get hx r < Array.unsafe_get hx l) then r
            else l
          end
          else l
        in
        let cd = Array.unsafe_get hd c in
        if cd < d || (cd = d && Array.unsafe_get hx c < x) then begin
          Array.unsafe_set hd !i cd;
          Array.unsafe_set hx !i (Array.unsafe_get hx c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set hd !i d;
    Array.unsafe_set hx !i x
  end

(* CSR view of the adjacency: arc [k] of node [u] lives at flat position
   [off.(u) + k], destinations in one int array and weights in one float
   array. One flattening per traversal batch replaces a boxed-record load
   per scanned edge with two unsafe array reads, and the three arrays are
   immutable — shared read-only across the pool's domains. *)
type csr = { off : int array; dst : int array; w : floatarray }

let csr_of g =
  let n = Graph.size g in
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + Graph.out_degree g u
  done;
  let m = off.(n) in
  let dst = Array.make m 0 in
  let w = Float.Array.create m in
  for u = 0 to n - 1 do
    let edges = Graph.out_edges g u in
    let base = off.(u) in
    Array.iteri
      (fun k e ->
        dst.(base + k) <- e.Graph.dst;
        Float.Array.set w (base + k) e.Graph.weight)
      edges
  done;
  { off; dst; w }

(* One source, into the scratch buffers. *)
let run_core csr n sc source =
  let dist = sc.dist and fh = sc.fh and settled = sc.settled in
  Array.fill dist 0 n infinity;
  Array.fill fh 0 n (-1);
  Bytes.fill settled 0 n '\000';
  sc.heap_len <- 0;
  dist.(source) <- 0.0;
  (* Packing width: first power of two holding a node id, so unpacking is a
     mask/shift instead of a division. *)
  let shift =
    let k = ref 1 in
    while 1 lsl !k < n do incr k done;
    !k
  in
  let mask = (1 lsl shift) - 1 in
  (* fh = -1 packs to 0 lsl shift lor node. *)
  heap_push sc 0.0 source;
  let off = csr.off and adj = csr.dst and wts = csr.w in
  while sc.heap_len > 0 do
    let d = Array.unsafe_get sc.heap_d 0 and x = Array.unsafe_get sc.heap_x 0 in
    heap_drop_min sc;
    let node = x land mask in
    if Bytes.unsafe_get settled node = '\000' then begin
      Bytes.unsafe_set settled node '\001';
      let efh = (x lsr shift) - 1 in
      Array.unsafe_set dist node d;
      Array.unsafe_set fh node efh;
      let lo = Array.unsafe_get off node in
      let hi = Array.unsafe_get off (node + 1) in
      for e = lo to hi - 1 do
        let v = Array.unsafe_get adj e in
        if Bytes.unsafe_get settled v = '\000' then begin
          let nd = d +. Float.Array.unsafe_get wts e in
          let nfh = if node = source then e - lo else efh in
          let dv = Array.unsafe_get dist v in
          if nd < dv || (nd = dv && nfh < Array.unsafe_get fh v) then begin
            Array.unsafe_set dist v nd;
            Array.unsafe_set fh v nfh;
            heap_push sc nd (((nfh + 1) lsl shift) lor v)
          end
        end
      done
    end
  done;
  fh.(source) <- -1

let run g source =
  let n = Graph.size g in
  let sc = scratch_for n in
  run_core (csr_of g) n sc source;
  if !Probe.on then Probe.sssp_source ();
  { source; dist = Array.sub sc.dist 0 n; first_hop = Array.sub sc.fh 0 n }

let all_pairs ?jobs g =
  Profile.phase "dijkstra.all_pairs" @@ fun () ->
  let n = Graph.size g in
  let csr = csr_of g in
  let ap_dist = Float.Array.create (n * n) in
  let ap_fh = Array.make (n * n) (-1) in
  Pool.parallel_for ?jobs n (fun s ->
      let sc = scratch_for n in
      run_core csr n sc s;
      let off = s * n in
      for v = 0 to n - 1 do
        Float.Array.unsafe_set ap_dist (off + v) (Array.unsafe_get sc.dist v);
        Array.unsafe_set ap_fh (off + v) (Array.unsafe_get sc.fh v)
      done;
      if !Probe.on then Probe.sssp_source ());
  { ap_n = n; ap_dist; ap_fh }

let size a = a.ap_n
let distance a u v = Float.Array.get a.ap_dist ((u * a.ap_n) + v)
let first_hop a u v = a.ap_fh.((u * a.ap_n) + v)

let sssp_of a s =
  let n = a.ap_n in
  {
    source = s;
    dist = Array.init n (fun v -> Float.Array.get a.ap_dist ((s * n) + v));
    first_hop = Array.sub a.ap_fh (s * n) n;
  }

let next_node g s v =
  if v = s.source then invalid_arg "Dijkstra.next_node: target is the source";
  let k = s.first_hop.(v) in
  if k < 0 then invalid_arg "Dijkstra.next_node: unreachable target";
  Graph.hop g s.source k

let next_toward g a u v =
  if v = u then invalid_arg "Dijkstra.next_toward: target is the source";
  let k = first_hop a u v in
  if k < 0 then invalid_arg "Dijkstra.next_toward: unreachable target";
  Graph.hop g u k

(* ------------------------------------------------------------------------ *)
(* The pre-optimization implementation (one boxed record per heap entry,
   polymorphic tuple compare in [less], one record-of-arrays per source),
   kept verbatim as the measured baseline for bench/main.exe --json and the
   equivalence tests — the Dijkstra analogue of [Indexed.create_reference]. *)

module Reference_heap = struct
  type entry = { d : float; fh : int; node : int }

  type t = { mutable a : entry array; mutable len : int }

  let create () = { a = Array.make 64 { d = 0.0; fh = 0; node = 0 }; len = 0 }

  let less x y = x.d < y.d || (x.d = y.d && (x.fh, x.node) < (y.fh, y.node))

  let swap h i j =
    let tmp = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- tmp

  let push h e =
    if h.len = Array.length h.a then begin
      let bigger = Array.make (2 * h.len) e in
      Array.blit h.a 0 bigger 0 h.len;
      h.a <- bigger
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && less h.a.(!i) h.a.((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.a.(0) <- h.a.(h.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.len && less h.a.(l) h.a.(!smallest) then smallest := l;
          if r < h.len && less h.a.(r) h.a.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            swap h !i !smallest;
            i := !smallest
          end
          else continue := false
        done
      end;
      Some top
    end
end

let run_reference g source =
  let n = Graph.size g in
  let dist = Array.make n infinity in
  let first_hop = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Reference_heap.create () in
  dist.(source) <- 0.0;
  Reference_heap.push heap { d = 0.0; fh = -1; node = source };
  let rec loop () =
    match Reference_heap.pop heap with
    | None -> ()
    | Some e ->
      if not settled.(e.node) then begin
        settled.(e.node) <- true;
        dist.(e.node) <- e.d;
        first_hop.(e.node) <- e.fh;
        Array.iteri
          (fun k edge ->
            let v = edge.Graph.dst in
            if not settled.(v) then begin
              let nd = e.d +. edge.Graph.weight in
              let nfh = if e.node = source then k else e.fh in
              if nd < dist.(v) || (nd = dist.(v) && nfh < first_hop.(v)) then begin
                dist.(v) <- nd;
                first_hop.(v) <- nfh;
                Reference_heap.push heap { d = nd; fh = nfh; node = v }
              end
            end)
          (Graph.out_edges g e.node)
      end;
      loop ()
  in
  loop ();
  first_hop.(source) <- -1;
  { source; dist; first_hop }

let all_pairs_reference g = Array.init (Graph.size g) (fun s -> run_reference g s)
