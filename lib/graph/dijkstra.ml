module Pool = Ron_util.Pool
module Probe = Ron_obs.Probe
module Profile = Ron_obs.Profile

type sssp = { source : int; dist : float array; first_hop : int array }

type apsp = { ap_n : int; ap_dist : floatarray; ap_fh : int array }

(* ------------------------------------------------------------------------ *)
(* Flat, allocation-lean core.

   The heap holds no records: entry [i] is a float priority in [heap_d.(i)]
   and an int key in [heap_x.(i)] packing [(first_hop + 1) << k | node],
   where [2^k] is the first power of two with [n <= 2^k]. Since
   [node < 2^k], integer order on the packed key is exactly the
   lexicographic order on [(first_hop, node)], so

     d_i < d_j  ||  (d_i = d_j && x_i < x_j)

   reproduces the reference comparator with two monomorphic compares and no
   allocation. Distinct live entries never compare equal (a push requires a
   strict [(d, fh)] improvement over the recorded tentative), so the pop
   sequence — and therefore every output bit — is independent of the heap's
   internal layout and identical to the reference implementation's.

   All per-source state lives in one scratch struct, allocated once per
   domain (via DLS) and reused across sources: running [all_pairs] performs
   no per-source allocation beyond the shared output arrays. *)

type scratch = {
  mutable cap : int; (* node capacity the buffers are sized for *)
  mutable dist : float array;
  mutable fh : int array;
  mutable settled : Bytes.t;
  mutable heap_d : float array;
  mutable heap_x : int array;
  mutable heap_len : int;
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        cap = 0;
        dist = [||];
        fh = [||];
        settled = Bytes.empty;
        heap_d = [||];
        heap_x = [||];
        heap_len = 0;
      })

let scratch_for n =
  let sc = Domain.DLS.get scratch_key in
  if sc.cap < n then begin
    sc.cap <- n;
    sc.dist <- Array.make n infinity;
    sc.fh <- Array.make n (-1);
    sc.settled <- Bytes.make n '\000';
    (* Heap capacity grows on demand; seed it with room for a few pushes per
       node, the common case on bounded-degree graphs. *)
    sc.heap_d <- Array.make (4 * n) 0.0;
    sc.heap_x <- Array.make (4 * n) 0;
    sc.heap_len <- 0
  end;
  sc

let heap_push sc d x =
  let len = sc.heap_len in
  if len = Array.length sc.heap_d then begin
    let bigger_d = Array.make (2 * len) 0.0 and bigger_x = Array.make (2 * len) 0 in
    Array.blit sc.heap_d 0 bigger_d 0 len;
    Array.blit sc.heap_x 0 bigger_x 0 len;
    sc.heap_d <- bigger_d;
    sc.heap_x <- bigger_x
  end;
  let hd = sc.heap_d and hx = sc.heap_x in
  (* Sift up by hole-movement: no swaps, one final store. *)
  let i = ref len in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pd = Array.unsafe_get hd p in
    if d < pd || (d = pd && x < Array.unsafe_get hx p) then begin
      Array.unsafe_set hd !i pd;
      Array.unsafe_set hx !i (Array.unsafe_get hx p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set hd !i d;
  Array.unsafe_set hx !i x;
  sc.heap_len <- len + 1

(* Remove the minimum; the caller reads it from [sc.heap_d.(0)]/[heap_x.(0)]
   before calling. *)
let heap_drop_min sc =
  let len = sc.heap_len - 1 in
  sc.heap_len <- len;
  if len > 0 then begin
    let hd = sc.heap_d and hx = sc.heap_x in
    let d = Array.unsafe_get hd len and x = Array.unsafe_get hx len in
    (* Sift the former last element down from the root, hole-movement. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= len then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < len then begin
            let ld = Array.unsafe_get hd l and rd = Array.unsafe_get hd r in
            if rd < ld || (rd = ld && Array.unsafe_get hx r < Array.unsafe_get hx l) then r
            else l
          end
          else l
        in
        let cd = Array.unsafe_get hd c in
        if cd < d || (cd = d && Array.unsafe_get hx c < x) then begin
          Array.unsafe_set hd !i cd;
          Array.unsafe_set hx !i (Array.unsafe_get hx c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set hd !i d;
    Array.unsafe_set hx !i x
  end

(* CSR view of the adjacency: arc [k] of node [u] lives at flat position
   [off.(u) + k], destinations in one int array and weights in one float
   array. One flattening per traversal batch replaces a boxed-record load
   per scanned edge with two unsafe array reads, and the three arrays are
   immutable — shared read-only across the pool's domains. *)
type csr = { off : int array; dst : int array; w : floatarray }

(* The graph itself is CSR now, so this is a zero-copy view: no per-traversal
   flattening cost, and the three arrays are immutable — shared read-only
   across the pool's domains. *)
let csr_of g =
  let off, dst, w = Graph.csr g in
  { off; dst; w }

(* One source, into the scratch buffers. *)
let run_core csr n sc source =
  let dist = sc.dist and fh = sc.fh and settled = sc.settled in
  Array.fill dist 0 n infinity;
  Array.fill fh 0 n (-1);
  Bytes.fill settled 0 n '\000';
  sc.heap_len <- 0;
  dist.(source) <- 0.0;
  (* Packing width: first power of two holding a node id, so unpacking is a
     mask/shift instead of a division. *)
  let shift =
    let k = ref 1 in
    while 1 lsl !k < n do incr k done;
    !k
  in
  let mask = (1 lsl shift) - 1 in
  (* fh = -1 packs to 0 lsl shift lor node. *)
  heap_push sc 0.0 source;
  let off = csr.off and adj = csr.dst and wts = csr.w in
  while sc.heap_len > 0 do
    let d = Array.unsafe_get sc.heap_d 0 and x = Array.unsafe_get sc.heap_x 0 in
    heap_drop_min sc;
    let node = x land mask in
    if Bytes.unsafe_get settled node = '\000' then begin
      Bytes.unsafe_set settled node '\001';
      let efh = (x lsr shift) - 1 in
      Array.unsafe_set dist node d;
      Array.unsafe_set fh node efh;
      let lo = Array.unsafe_get off node in
      let hi = Array.unsafe_get off (node + 1) in
      for e = lo to hi - 1 do
        let v = Array.unsafe_get adj e in
        if Bytes.unsafe_get settled v = '\000' then begin
          let nd = d +. Float.Array.unsafe_get wts e in
          let nfh = if node = source then e - lo else efh in
          let dv = Array.unsafe_get dist v in
          if nd < dv || (nd = dv && nfh < Array.unsafe_get fh v) then begin
            Array.unsafe_set dist v nd;
            Array.unsafe_set fh v nfh;
            heap_push sc nd (((nfh + 1) lsl shift) lor v)
          end
        end
      done
    end
  done;
  fh.(source) <- -1

let run g source =
  let n = Graph.size g in
  let sc = scratch_for n in
  run_core (csr_of g) n sc source;
  if !Probe.on then Probe.sssp_source ();
  { source; dist = Array.sub sc.dist 0 n; first_hop = Array.sub sc.fh 0 n }

(* ------------------------------------------------------------------------ *)
(* Radius-limited single-source runs.

   [run_core] pays an O(n) scratch reset per source — fine when every source
   is visited once, fatal when n bounded explorations each touch a ball of a
   few dozen nodes. The bounded scratch instead stamps every touched cell
   with a per-run generation counter: a cell is valid only if its stamp
   matches the current run, so reset is [gen <- gen + 1] and the cost of a
   run is proportional to the ball actually explored, not to n.

   The radius bound is enforced at push time: a tentative distance
   [nd > radius] is never enqueued. With positive weights every prefix of a
   shortest path is strictly shorter, so any node whose true distance is
   [<= radius] is reached entirely through in-radius pushes — the settled
   set is exactly [{ v | dist(v) <= radius }] and every settled distance /
   first-hop bit matches the unbounded run (pushes beyond the radius are
   dominated entries that never decide a final label). The heap therefore
   drains exactly when the ball is exhausted: the early exit is structural
   rather than a popped-distance test. *)

type bounded = {
  center : int;
  radius : float;
  nodes : int array;  (** settled nodes in pop (increasing-distance) order *)
  dists : float array;
  hops : int array;
}

type bscratch = {
  mutable bcap : int;
  mutable bdist : float array;
  mutable bfh : int array;
  mutable stamp : int array; (* tentative label valid iff stamp.(v) = gen *)
  mutable done_stamp : int array; (* settled iff done_stamp.(v) = gen *)
  mutable gen : int;
  mutable bheap_d : float array;
  mutable bheap_x : int array;
  mutable bheap_len : int;
  mutable out_nodes : int array; (* settled output, grows on demand *)
  mutable out_dist : float array;
  mutable out_fh : int array;
  mutable out_len : int;
}

let bscratch_key : bscratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        bcap = 0;
        bdist = [||];
        bfh = [||];
        stamp = [||];
        done_stamp = [||];
        gen = 0;
        bheap_d = [||];
        bheap_x = [||];
        bheap_len = 0;
        out_nodes = [||];
        out_dist = [||];
        out_fh = [||];
        out_len = 0;
      })

let bscratch_for n =
  let sc = Domain.DLS.get bscratch_key in
  if sc.bcap < n then begin
    sc.bcap <- n;
    sc.bdist <- Array.make n infinity;
    sc.bfh <- Array.make n (-1);
    sc.stamp <- Array.make n 0;
    sc.done_stamp <- Array.make n 0;
    sc.gen <- 0;
    if Array.length sc.bheap_d = 0 then begin
      sc.bheap_d <- Array.make 256 0.0;
      sc.bheap_x <- Array.make 256 0
    end;
    if Array.length sc.out_nodes = 0 then begin
      sc.out_nodes <- Array.make 256 0;
      sc.out_dist <- Array.make 256 0.0;
      sc.out_fh <- Array.make 256 0
    end
  end;
  sc

let bheap_push sc d x =
  let len = sc.bheap_len in
  if len = Array.length sc.bheap_d then begin
    let bigger_d = Array.make (2 * len) 0.0 and bigger_x = Array.make (2 * len) 0 in
    Array.blit sc.bheap_d 0 bigger_d 0 len;
    Array.blit sc.bheap_x 0 bigger_x 0 len;
    sc.bheap_d <- bigger_d;
    sc.bheap_x <- bigger_x
  end;
  let hd = sc.bheap_d and hx = sc.bheap_x in
  let i = ref len in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pd = Array.unsafe_get hd p in
    if d < pd || (d = pd && x < Array.unsafe_get hx p) then begin
      Array.unsafe_set hd !i pd;
      Array.unsafe_set hx !i (Array.unsafe_get hx p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set hd !i d;
  Array.unsafe_set hx !i x;
  sc.bheap_len <- len + 1

let bheap_drop_min sc =
  let len = sc.bheap_len - 1 in
  sc.bheap_len <- len;
  if len > 0 then begin
    let hd = sc.bheap_d and hx = sc.bheap_x in
    let d = Array.unsafe_get hd len and x = Array.unsafe_get hx len in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= len then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < len then begin
            let ld = Array.unsafe_get hd l and rd = Array.unsafe_get hd r in
            if rd < ld || (rd = ld && Array.unsafe_get hx r < Array.unsafe_get hx l) then r
            else l
          end
          else l
        in
        let cd = Array.unsafe_get hd c in
        if cd < d || (cd = d && Array.unsafe_get hx c < x) then begin
          Array.unsafe_set hd !i cd;
          Array.unsafe_set hx !i (Array.unsafe_get hx c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set hd !i d;
    Array.unsafe_set hx !i x
  end

let record_settled sc node d fh =
  let len = sc.out_len in
  if len = Array.length sc.out_nodes then begin
    let nodes = Array.make (2 * len) 0
    and dist = Array.make (2 * len) 0.0
    and fhs = Array.make (2 * len) 0 in
    Array.blit sc.out_nodes 0 nodes 0 len;
    Array.blit sc.out_dist 0 dist 0 len;
    Array.blit sc.out_fh 0 fhs 0 len;
    sc.out_nodes <- nodes;
    sc.out_dist <- dist;
    sc.out_fh <- fhs
  end;
  sc.out_nodes.(len) <- node;
  sc.out_dist.(len) <- d;
  sc.out_fh.(len) <- fh;
  sc.out_len <- len + 1

let run_bounded g source ~radius =
  if not (radius >= 0.0) then invalid_arg "Dijkstra.run_bounded: radius must be non-negative";
  let n = Graph.size g in
  if source < 0 || source >= n then invalid_arg "Dijkstra.run_bounded: source out of range";
  let csr = csr_of g in
  let sc = bscratch_for n in
  sc.gen <- sc.gen + 1;
  let gen = sc.gen in
  let bdist = sc.bdist and bfh = sc.bfh and stamp = sc.stamp and done_stamp = sc.done_stamp in
  sc.bheap_len <- 0;
  sc.out_len <- 0;
  let shift =
    let k = ref 1 in
    while 1 lsl !k < n do incr k done;
    !k
  in
  let mask = (1 lsl shift) - 1 in
  bdist.(source) <- 0.0;
  bfh.(source) <- -1;
  stamp.(source) <- gen;
  bheap_push sc 0.0 source;
  let off = csr.off and adj = csr.dst and wts = csr.w in
  while sc.bheap_len > 0 do
    let d = Array.unsafe_get sc.bheap_d 0 and x = Array.unsafe_get sc.bheap_x 0 in
    bheap_drop_min sc;
    let node = x land mask in
    if Array.unsafe_get done_stamp node <> gen then begin
      Array.unsafe_set done_stamp node gen;
      let efh = (x lsr shift) - 1 in
      let efh = if node = source then -1 else efh in
      record_settled sc node d efh;
      let lo = Array.unsafe_get off node in
      let hi = Array.unsafe_get off (node + 1) in
      for e = lo to hi - 1 do
        let v = Array.unsafe_get adj e in
        if Array.unsafe_get done_stamp v <> gen then begin
          let nd = d +. Float.Array.unsafe_get wts e in
          if nd <= radius then begin
            let nfh = if node = source then e - lo else efh in
            let fresh = Array.unsafe_get stamp v <> gen in
            let dv = if fresh then infinity else Array.unsafe_get bdist v in
            if
              nd < dv
              || (nd = dv && (fresh || nfh < Array.unsafe_get bfh v))
            then begin
              Array.unsafe_set bdist v nd;
              Array.unsafe_set bfh v nfh;
              Array.unsafe_set stamp v gen;
              bheap_push sc nd (((nfh + 1) lsl shift) lor v)
            end
          end
        end
      done
    end
  done;
  if !Probe.on then Probe.sssp_source ();
  {
    center = source;
    radius;
    nodes = Array.sub sc.out_nodes 0 sc.out_len;
    dists = Array.sub sc.out_dist 0 sc.out_len;
    hops = Array.sub sc.out_fh 0 sc.out_len;
  }

(* ------------------------------------------------------------------------ *)
(* On-demand distance oracle: cached single-source rows.

   [row t s] returns the full SSSP row from [s], computing it with the same
   flat [run_core] as {!all_pairs} (so every bit matches the eager matrix)
   and caching it in a per-domain LRU keyed by source. Per-domain caches
   need no locks, and because rows are pure functions of the graph, the
   results are independent of which domain computes them — [RON_JOBS]
   changes timing, never bits. Memory is bounded by
   [capacity * 16 bytes * n] per domain that actually queries. *)

module Oracle = struct
  type row = { row_dist : float array; row_fh : int array }

  type slot = { srow : row; mutable last : int }

  type cache = { tbl : (int, slot) Hashtbl.t; mutable tick : int }

  type t = {
    ograph : Graph.t;
    on : int;
    ocsr : csr;
    ocapacity : int;
    cache_key : cache Domain.DLS.key;
  }

  (* Cap the per-domain cache near 64 MB of rows, floor of two so a
     ping-pong between two sources (the symmetric-dist pattern) still
     hits. [RON_ORACLE_ROWS] overrides. *)
  let default_capacity n =
    match Sys.getenv_opt "RON_ORACLE_ROWS" with
    | Some s when (match int_of_string_opt s with Some k -> k > 0 | None -> false) ->
      int_of_string s
    | _ -> max 2 (min 32 (4_194_304 / max n 1))

  let create ?capacity g =
    let n = Graph.size g in
    let ocapacity =
      match capacity with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Dijkstra.Oracle.create: capacity must be positive"
      | None -> default_capacity n
    in
    {
      ograph = g;
      on = n;
      ocsr = csr_of g;
      ocapacity;
      cache_key = Domain.DLS.new_key (fun () -> { tbl = Hashtbl.create 61; tick = 0 });
    }

  let size t = t.on
  let capacity t = t.ocapacity

  let row t s =
    if s < 0 || s >= t.on then invalid_arg "Dijkstra.Oracle: source out of range";
    let c = Domain.DLS.get t.cache_key in
    c.tick <- c.tick + 1;
    match Hashtbl.find_opt c.tbl s with
    | Some slot ->
      slot.last <- c.tick;
      if !Probe.on then Probe.oracle_hit ();
      slot.srow
    | None ->
      let n = t.on in
      let sc = scratch_for n in
      run_core t.ocsr n sc s;
      let r = { row_dist = Array.sub sc.dist 0 n; row_fh = Array.sub sc.fh 0 n } in
      if Hashtbl.length c.tbl >= t.ocapacity then begin
        (* Evict the least-recently-used row (linear scan: capacity is
           small by construction). *)
        let victim = ref (-1) and oldest = ref max_int in
        Hashtbl.iter
          (fun k slot ->
            if slot.last < !oldest then begin
              oldest := slot.last;
              victim := k
            end)
          c.tbl;
        if !victim >= 0 then begin
          Hashtbl.remove c.tbl !victim;
          if !Probe.on then Probe.oracle_evict ()
        end
      end;
      Hashtbl.add c.tbl s { srow = r; last = c.tick };
      if !Probe.on then begin
        Probe.oracle_build ();
        Probe.sssp_source ();
        Probe.oracle_occupancy (Hashtbl.length c.tbl)
      end;
      (* Row builds are the oracle's unit of heavy work — a natural
         telemetry cadence for long on-demand phases. *)
      if !Ron_obs.Telemetry.active then Ron_obs.Telemetry.tick ();
      r

  (* The returned arrays are the cache's own storage: read-only. *)
  let distances t s = (row t s).row_dist
  let first_hops t s = (row t s).row_fh
  let distance t u v = (distances t u).(v)
  let first_hop t u v = (first_hops t u).(v)
end

let all_pairs ?jobs g =
  Profile.phase "dijkstra.all_pairs" @@ fun () ->
  let n = Graph.size g in
  let csr = csr_of g in
  let ap_dist = Float.Array.create (n * n) in
  let ap_fh = Array.make (n * n) (-1) in
  Pool.parallel_for ?jobs n (fun s ->
      let sc = scratch_for n in
      run_core csr n sc s;
      let off = s * n in
      for v = 0 to n - 1 do
        Float.Array.unsafe_set ap_dist (off + v) (Array.unsafe_get sc.dist v);
        Array.unsafe_set ap_fh (off + v) (Array.unsafe_get sc.fh v)
      done;
      if !Probe.on then Probe.sssp_source ());
  { ap_n = n; ap_dist; ap_fh }

let size a = a.ap_n
let distance a u v = Float.Array.get a.ap_dist ((u * a.ap_n) + v)
let first_hop a u v = a.ap_fh.((u * a.ap_n) + v)

let sssp_of a s =
  let n = a.ap_n in
  {
    source = s;
    dist = Array.init n (fun v -> Float.Array.get a.ap_dist ((s * n) + v));
    first_hop = Array.sub a.ap_fh (s * n) n;
  }

let next_node g s v =
  if v = s.source then invalid_arg "Dijkstra.next_node: target is the source";
  let k = s.first_hop.(v) in
  if k < 0 then invalid_arg "Dijkstra.next_node: unreachable target";
  Graph.hop g s.source k

let next_toward g a u v =
  if v = u then invalid_arg "Dijkstra.next_toward: target is the source";
  let k = first_hop a u v in
  if k < 0 then invalid_arg "Dijkstra.next_toward: unreachable target";
  Graph.hop g u k

(* ------------------------------------------------------------------------ *)
(* The pre-optimization implementation (one boxed record per heap entry,
   polymorphic tuple compare in [less], one record-of-arrays per source),
   kept verbatim as the measured baseline for bench/main.exe --json and the
   equivalence tests — the Dijkstra analogue of [Indexed.create_reference]. *)

module Reference_heap = struct
  type entry = { d : float; fh : int; node : int }

  type t = { mutable a : entry array; mutable len : int }

  let create () = { a = Array.make 64 { d = 0.0; fh = 0; node = 0 }; len = 0 }

  let less x y = x.d < y.d || (x.d = y.d && (x.fh, x.node) < (y.fh, y.node))

  let swap h i j =
    let tmp = h.a.(i) in
    h.a.(i) <- h.a.(j);
    h.a.(j) <- tmp

  let push h e =
    if h.len = Array.length h.a then begin
      let bigger = Array.make (2 * h.len) e in
      Array.blit h.a 0 bigger 0 h.len;
      h.a <- bigger
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && less h.a.(!i) h.a.((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.a.(0) <- h.a.(h.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.len && less h.a.(l) h.a.(!smallest) then smallest := l;
          if r < h.len && less h.a.(r) h.a.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            swap h !i !smallest;
            i := !smallest
          end
          else continue := false
        done
      end;
      Some top
    end
end

let run_reference g source =
  let n = Graph.size g in
  let dist = Array.make n infinity in
  let first_hop = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Reference_heap.create () in
  dist.(source) <- 0.0;
  Reference_heap.push heap { d = 0.0; fh = -1; node = source };
  let rec loop () =
    match Reference_heap.pop heap with
    | None -> ()
    | Some e ->
      if not settled.(e.node) then begin
        settled.(e.node) <- true;
        dist.(e.node) <- e.d;
        first_hop.(e.node) <- e.fh;
        Array.iteri
          (fun k edge ->
            let v = edge.Graph.dst in
            if not settled.(v) then begin
              let nd = e.d +. edge.Graph.weight in
              let nfh = if e.node = source then k else e.fh in
              if nd < dist.(v) || (nd = dist.(v) && nfh < first_hop.(v)) then begin
                dist.(v) <- nd;
                first_hop.(v) <- nfh;
                Reference_heap.push heap { d = nd; fh = nfh; node = v }
              end
            end)
          (Graph.out_edges g e.node)
      end;
      loop ()
  in
  loop ();
  first_hop.(source) <- -1;
  { source; dist; first_hop }

let all_pairs_reference g = Array.init (Graph.size g) (fun s -> run_reference g s)
