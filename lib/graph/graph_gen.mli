(** Graph generators whose shortest-path metrics are doubling.

    These provide the "doubling graphs" of Sections 2 and 4: grid graphs
    (doubling dimension ~2), random geometric graphs (the standard model of
    wireless/network topologies), rings with chords, and a line graph with
    exponentially growing edge weights whose metric has super-polynomial
    aspect ratio (stress case for the (log Delta) factors). *)

val grid : int -> int -> Graph.t
(** [grid w h]: 4-neighbor grid, unit weights, undirected. *)

val torus : int -> int -> Graph.t
(** Wrap-around grid (used by the Kleinberg small-world baseline). *)

val random_geometric : Ron_util.Rng.t -> n:int -> radius:float -> Graph.t
(** [n] uniform points in the unit square; undirected edges between pairs at
    l2 distance [<= radius], weighted by distance. If the result is
    disconnected, nearest-pair bridges are added between components, so the
    result is always connected. *)

val random_geometric_cells : Ron_util.Rng.t -> n:int -> radius:float -> Graph.t
(** Cell-bucketed {!random_geometric}: same model, near-linear construction
    (points in unboxed arrays, neighbor search over a radius-sized cell
    grid, edges streamed CSR-natively with no edge list). Connectivity is
    guaranteed at generation time by chaining component representatives
    (min-node order, Euclidean weight) — O(n + m) total, so it scales to
    millions of nodes. Edge {e set} equals {!random_geometric}'s geometric
    edges; adjacency order and bridge choices differ, so it is a distinct
    generator, not a bit-compatible replacement. *)

val ring_with_chords : Ron_util.Rng.t -> n:int -> chords:int -> Graph.t
(** Cycle of [n] unit edges plus [chords] random chords weighted by ring
    distance (so the metric is unchanged but path diversity increases). *)

val exponential_line_graph : int -> Graph.t
(** Path graph over the exponential line: edge [i ~ i+1] of weight
    [2^(i+1) - 2^i]; its shortest-path metric is the exponential line. *)
