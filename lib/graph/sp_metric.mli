(** Shortest-paths metric of a weighted graph, with routing support.

    Bundles the all-pairs shortest-path computation: the induced metric
    (a "doubling graph" in the paper's sense is a graph whose [Sp_metric]
    has low doubling dimension), first-hop lookup, and shortest-path-walk
    simulation used by every routing scheme. *)

type t

val create : ?jobs:int -> Graph.t -> t
(** Requires a connected graph. The all-pairs computation is parallelized
    over sources (see {!Dijkstra.all_pairs}); the result is identical at
    every job count. *)

val graph : t -> Graph.t
val metric : t -> Ron_metric.Metric.t
(** The induced shortest-paths metric (same node ids). *)

val dist : t -> int -> int -> float

val first_hop_index : t -> int -> int -> int
(** [first_hop_index t u v]: index (into [u]'s out-edges) of the first edge
    of the canonical shortest [u->v] path; [v <> u]. *)

val next_toward : t -> int -> int -> int
(** The node after [u] on the canonical shortest path toward [v]. *)

val path : t -> int -> int -> int list
(** Full canonical shortest path from [u] to [v], inclusive. *)
