(** Shortest-paths metric of a weighted graph, with routing support.

    Bundles the shortest-path ground truth behind one interface with two
    backends:

    - {e Eager} — the full all-pairs matrix ({!Dijkstra.all_pairs}): O(n^2)
      memory, O(1) lookups. The reference path, default for small n.
    - {e On-demand} — the cached row oracle ({!Dijkstra.Oracle}): near-linear
      memory, rows computed lazily. The million-node path.

    Both backends run the same single-source core, so every distance and
    first-hop bit is identical between modes; only time/space trade-offs
    differ. Mode selection: the [?mode] argument, else the [RON_SP_MODE]
    environment variable ([eager] | [ondemand] | [auto]), else automatic
    (eager iff [n <= 4096]).

    The induced metric (a "doubling graph" in the paper's sense is a graph
    whose [Sp_metric] has low doubling dimension) canonicalizes symmetric
    distances on the smaller endpoint, and first-hop lookup plus
    shortest-path-walk simulation serve every routing scheme. *)

type t

type mode = Eager | On_demand

val create : ?jobs:int -> ?mode:mode -> Graph.t -> t
(** Requires a connected graph. In eager mode the all-pairs computation is
    parallelized over sources (see {!Dijkstra.all_pairs}); in on-demand mode
    construction is O(1) and rows are computed at first touch. The metric's
    values are identical at every job count and in both modes. *)

val graph : t -> Graph.t
val metric : t -> Ron_metric.Metric.t
(** The induced shortest-paths metric (same node ids). *)

val mode : t -> mode

val dist : t -> int -> int -> float

val distances_from : t -> int -> float array
(** [distances_from t s]: a fresh copy of the raw SSSP row from [s]
    (direction [s -> v], {e not} symmetric-canonicalized — on undirected
    graphs the two can differ in the last ulp). One row computation in
    on-demand mode; the building block for landmark schemes. *)

val first_hop_index : t -> int -> int -> int
(** [first_hop_index t u v]: index (into [u]'s out-edges) of the first edge
    of the canonical shortest [u->v] path; [v <> u]. *)

val next_toward : t -> int -> int -> int
(** The node after [u] on the canonical shortest path toward [v]. *)

val path : t -> int -> int -> int list
(** Full canonical shortest path from [u] to [v], inclusive. *)

val sample_ground_truth : t -> seed:int -> count:int -> (int * int * float) array
(** [sample_ground_truth t ~seed ~count]: [count] seeded random pairs
    [(u, v)] with [u <> v], each with its exact metric distance — the
    scalable stand-in for full-matrix stretch measurement. Evaluation is
    grouped by row internally (one SSSP per touched source in on-demand
    mode) but the result is a pure function of (graph, seed, count):
    identical in both modes and at every [RON_JOBS]. *)
