type edge = { dst : int; weight : float }

(* CSR adjacency: the arcs out of node [u] are the slice
   [off.(u) .. off.(u+1) - 1] of [dst]/[w]. Three flat arrays instead of an
   array-of-arrays keeps the whole structure in a handful of contiguous
   allocations (no per-node boxing, no per-edge records), which is what lets
   traversals run zero-copy at n = 10^6. *)
type t = { n : int; off : int array; dst : int array; w : floatarray }

let check_arc n u v weight =
  if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.create: node out of range";
  if u = v then invalid_arg "Graph.create: self-loop";
  if not (weight > 0.0 && Float.is_finite weight) then
    invalid_arg "Graph.create: weight must be positive"

(* Two-pass CSR build from a re-runnable arc producer: pass one counts
   degrees, pass two fills the arrays. [produce] is called exactly twice and
   must emit the same arcs in the same order both times (it is handed a
   fresh [add] callback each time). Per-node arc order is emission order. *)
let of_arc_stream n produce =
  if n < 1 then invalid_arg "Graph.create: need at least one node";
  let deg = Array.make n 0 in
  let m = ref 0 in
  produce (fun u v weight ->
      check_arc n u v weight;
      deg.(u) <- deg.(u) + 1;
      incr m);
  let off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off.(u + 1) <- off.(u) + deg.(u)
  done;
  let m = !m in
  let dst = Array.make (max m 1) 0 in
  let w = Float.Array.create (max m 1) in
  (* Reuse [deg] as the per-node write cursor. *)
  Array.blit off 0 deg 0 n;
  let filled = ref 0 in
  produce (fun u v weight ->
      let i = deg.(u) in
      if i >= off.(u + 1) then invalid_arg "Graph.of_arc_stream: passes disagree";
      deg.(u) <- i + 1;
      dst.(i) <- v;
      Float.Array.set w i weight;
      incr filled);
  if !filled <> m then invalid_arg "Graph.of_arc_stream: passes disagree";
  { n; off; dst; w }

let of_edge_stream n produce =
  of_arc_stream n (fun add -> produce (fun u v weight -> add u v weight; add v u weight))

let create n arcs =
  of_arc_stream n (fun add -> List.iter (fun (u, v, weight) -> add u v weight) arcs)

let undirected n edges =
  of_edge_stream n (fun add -> List.iter (fun (u, v, weight) -> add u v weight) edges)

let size t = t.n
let csr t = (t.off, t.dst, t.w)

let out_degree t u = t.off.(u + 1) - t.off.(u)

let out_edges t u =
  let base = t.off.(u) in
  Array.init (t.off.(u + 1) - base) (fun k ->
      { dst = t.dst.(base + k); weight = Float.Array.get t.w (base + k) })

let iter_out t u f =
  for i = t.off.(u) to t.off.(u + 1) - 1 do
    f t.dst.(i) (Float.Array.get t.w i)
  done

let max_out_degree t =
  let best = ref 0 in
  for u = 0 to t.n - 1 do
    let d = t.off.(u + 1) - t.off.(u) in
    if d > !best then best := d
  done;
  !best

let edge_count t = t.off.(t.n)

let hop t u k =
  let base = t.off.(u) in
  if k < 0 || base + k >= t.off.(u + 1) then invalid_arg "Graph.hop: edge index out of range";
  t.dst.(base + k)

let is_connected t =
  let n = t.n in
  (* Symmetrize into a reverse-CSR of int arrays, then run an explicit-stack
     DFS: no recursion, no lists, O(n + m) ints total. *)
  let rdeg = Array.make n 0 in
  for i = 0 to t.off.(n) - 1 do
    let v = t.dst.(i) in
    rdeg.(v) <- rdeg.(v) + 1
  done;
  let roff = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    roff.(u + 1) <- roff.(u) + rdeg.(u)
  done;
  let rdst = Array.make (max t.off.(n) 1) 0 in
  Array.blit roff 0 rdeg 0 n;
  for u = 0 to n - 1 do
    for i = t.off.(u) to t.off.(u + 1) - 1 do
      let v = t.dst.(i) in
      rdst.(rdeg.(v)) <- u;
      rdeg.(v) <- rdeg.(v) + 1
    done
  done;
  let seen = Array.make n false in
  let stack = Array.make n 0 in
  let top = ref 1 in
  stack.(0) <- 0;
  seen.(0) <- true;
  let visited = ref 1 in
  while !top > 0 do
    decr top;
    let u = stack.(!top) in
    for i = t.off.(u) to t.off.(u + 1) - 1 do
      let v = t.dst.(i) in
      if not seen.(v) then begin
        seen.(v) <- true;
        incr visited;
        stack.(!top) <- v;
        incr top
      end
    done;
    for i = roff.(u) to roff.(u + 1) - 1 do
      let v = rdst.(i) in
      if not seen.(v) then begin
        seen.(v) <- true;
        incr visited;
        stack.(!top) <- v;
        incr top
      end
    done
  done;
  !visited = n
