module Rng = Ron_util.Rng

(* The lattice generators stream edges straight into the CSR builder — no
   intermediate edge list, so generation is O(n) words at any n. The
   historical list-built versions pushed (right, down) per cell onto a list
   and then reversed it; emitting cells in reverse order with (down, right)
   per cell reproduces that adjacency order bit-for-bit, which the golden
   generator tests pin down. *)

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Graph_gen.grid";
  let id x y = (y * w) + x in
  Graph.of_edge_stream (w * h) (fun add ->
      for y = h - 1 downto 0 do
        for x = w - 1 downto 0 do
          if y + 1 < h then add (id x y) (id x (y + 1)) 1.0;
          if x + 1 < w then add (id x y) (id (x + 1) y) 1.0
        done
      done)

let torus w h =
  if w < 3 || h < 3 then invalid_arg "Graph_gen.torus";
  let id x y = (y * w) + x in
  Graph.of_edge_stream (w * h) (fun add ->
      for y = h - 1 downto 0 do
        for x = w - 1 downto 0 do
          add (id x y) (id x ((y + 1) mod h)) 1.0;
          add (id x y) (id ((x + 1) mod w) y) 1.0
        done
      done)

let random_geometric rng ~n ~radius =
  if n < 2 then invalid_arg "Graph_gen.random_geometric";
  let pts = Array.init n (fun _ -> (Rng.float rng 1.0, Rng.float rng 1.0)) in
  let d u v =
    let (x1, y1) = pts.(u) and (x2, y2) = pts.(v) in
    Float.hypot (x1 -. x2) (y1 -. y2)
  in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let duv = d u v in
      if duv <= radius && duv > 0.0 then edges := (u, v, duv) :: !edges
    done
  done;
  (* Bridge components via nearest cross-component pairs until connected. *)
  let comp = Array.init n (fun i -> i) in
  let rec find i = if comp.(i) = i then i else (comp.(i) <- find comp.(i); comp.(i)) in
  let union i j = comp.(find i) <- find j in
  List.iter (fun (u, v, _) -> union u v) !edges;
  let rec connect () =
    let roots = Array.init n find in
    let root0 = roots.(0) in
    let other = ref (-1) in
    for i = 0 to n - 1 do
      if roots.(i) <> root0 && !other < 0 then other := i
    done;
    if !other >= 0 then begin
      (* Nearest pair between component of 0 and the rest. *)
      let best = ref (-1, -1) and best_d = ref infinity in
      for u = 0 to n - 1 do
        if roots.(u) = root0 then
          for v = 0 to n - 1 do
            if roots.(v) <> root0 then begin
              let duv = d u v in
              if duv < !best_d && duv > 0.0 then begin
                best := (u, v);
                best_d := duv
              end
            end
          done
      done;
      let (u, v) = !best in
      edges := (u, v, !best_d) :: !edges;
      union u v;
      connect ()
    end
  in
  connect ();
  Graph.undirected n !edges

(* Cell-bucketed random geometric graph: the near-linear path for large n.
   Points live in two unboxed floatarrays (no tuple cloud); the unit square
   is cut into cells of side >= radius, so each point's neighbors lie in its
   3x3 cell block and edge enumeration is O(n * mean cell load). The edge
   stream is a pure function of the drawn points, so the two CSR-builder
   passes see identical arcs. Connectivity is guaranteed at generation time:
   a union-find pass over the same stream finds components, which are then
   chained rep-to-rep (increasing min-node order) — O(alpha) per edge, no
   O(n^2) nearest-pair scan. *)
let random_geometric_cells rng ~n ~radius =
  if n < 2 then invalid_arg "Graph_gen.random_geometric_cells";
  if not (radius > 0.0 && radius <= 1.0) then
    invalid_arg "Graph_gen.random_geometric_cells: radius must be in (0, 1]";
  let px = Float.Array.create n and py = Float.Array.create n in
  for i = 0 to n - 1 do
    Float.Array.set px i (Rng.float rng 1.0);
    Float.Array.set py i (Rng.float rng 1.0)
  done;
  let cells =
    let by_radius = int_of_float (1.0 /. radius) in
    let by_n = int_of_float (Float.sqrt (float_of_int n)) in
    max 1 (min by_radius (max 1 by_n))
  in
  let cell_of i =
    let cx = min (cells - 1) (int_of_float (Float.Array.get px i *. float_of_int cells)) in
    let cy = min (cells - 1) (int_of_float (Float.Array.get py i *. float_of_int cells)) in
    (cx, cy)
  in
  (* Bucket point ids by cell, CSR-style; ids ascend within each bucket. *)
  let ncell = cells * cells in
  let cnt = Array.make ncell 0 in
  for i = 0 to n - 1 do
    let cx, cy = cell_of i in
    let c = (cy * cells) + cx in
    cnt.(c) <- cnt.(c) + 1
  done;
  let coff = Array.make (ncell + 1) 0 in
  for c = 0 to ncell - 1 do
    coff.(c + 1) <- coff.(c) + cnt.(c)
  done;
  let bkt = Array.make n 0 in
  Array.blit coff 0 cnt 0 ncell;
  for i = 0 to n - 1 do
    let cx, cy = cell_of i in
    let c = (cy * cells) + cx in
    bkt.(cnt.(c)) <- i;
    cnt.(c) <- cnt.(c) + 1
  done;
  let dist_between u v =
    Float.hypot
      (Float.Array.get px u -. Float.Array.get px v)
      (Float.Array.get py u -. Float.Array.get py v)
  in
  (* Enumerate geometric edges (u < v) in a fixed deterministic order. *)
  let iter_geo_edges f =
    for u = 0 to n - 1 do
      let cx, cy = cell_of u in
      for dy = -1 to 1 do
        let yy = cy + dy in
        if yy >= 0 && yy < cells then
          for dx = -1 to 1 do
            let xx = cx + dx in
            if xx >= 0 && xx < cells then begin
              let c = (yy * cells) + xx in
              for k = coff.(c) to coff.(c + 1) - 1 do
                let v = bkt.(k) in
                if v > u then begin
                  let duv = dist_between u v in
                  if duv <= radius && duv > 0.0 then f u v duv
                end
              done
            end
          done
      done
    done
  in
  (* Union-find pass, then chain component representatives. *)
  let comp = Array.init n (fun i -> i) in
  let rec find i = if comp.(i) = i then i else (comp.(i) <- find comp.(i); comp.(i)) in
  let union i j = comp.(find i) <- find j in
  iter_geo_edges (fun u v _ -> union u v);
  let bridges = ref [] in
  let prev_rep = ref (-1) in
  for i = 0 to n - 1 do
    if find i = i then begin
      if !prev_rep >= 0 then begin
        let d = Float.max (dist_between !prev_rep i) 1e-12 in
        bridges := (!prev_rep, i, d) :: !bridges
      end;
      prev_rep := i
    end
  done;
  let bridges = List.rev !bridges in
  Graph.of_edge_stream n (fun add ->
      iter_geo_edges add;
      List.iter (fun (u, v, d) -> add u v d) bridges)

let ring_with_chords rng ~n ~chords =
  if n < 3 then invalid_arg "Graph_gen.ring_with_chords";
  let ring_dist u v =
    let k = abs (u - v) in
    float_of_int (min k (n - k))
  in
  let edges = ref [] in
  for u = 0 to n - 1 do
    edges := (u, (u + 1) mod n, 1.0) :: !edges
  done;
  for _ = 1 to chords do
    let u = Rng.int rng n in
    let v = Rng.int rng n in
    if u <> v && ring_dist u v > 1.0 then edges := (u, v, ring_dist u v) :: !edges
  done;
  Graph.undirected n !edges

let exponential_line_graph n =
  if n < 2 then invalid_arg "Graph_gen.exponential_line_graph";
  if n > 52 then invalid_arg "Graph_gen.exponential_line_graph: n too large";
  let edges =
    List.init (n - 1) (fun i ->
        (i, i + 1, Float.of_int ((1 lsl (i + 1)) - (1 lsl i))))
  in
  Graph.undirected n edges
