module Rng = Ron_util.Rng

type mode = Eager | On_demand

type backend = Apsp of Dijkstra.apsp | Oracle of Dijkstra.Oracle.t

type t = { graph : Graph.t; backend : backend; metric : Ron_metric.Metric.t }

(* Below this size the full matrix is two 128 MB-ish arrays at worst and the
   eager build is seconds; above it the O(n^2) wall bites and the oracle
   wins. Existing experiments all sit below the threshold, so defaults keep
   their output byte-identical. *)
let eager_threshold = 4096

let mode_of_env () =
  match Sys.getenv_opt "RON_SP_MODE" with
  | Some "eager" -> Some Eager
  | Some ("ondemand" | "on-demand" | "oracle") -> Some On_demand
  | Some "auto" | Some "" | None -> None
  | Some other -> invalid_arg ("Sp_metric: bad RON_SP_MODE " ^ other)

let resolve_mode mode n =
  match mode with
  | Some m -> m
  | None -> (
    match mode_of_env () with
    | Some m -> m
    | None -> if n <= eager_threshold then Eager else On_demand)

let raw_dist backend u v =
  match backend with
  | Apsp a -> Dijkstra.distance a u v
  | Oracle o -> Dijkstra.Oracle.distance o u v

let create ?jobs ?mode g =
  Ron_obs.Profile.phase "construct.sp_metric" @@ fun () ->
  if not (Graph.is_connected g) then invalid_arg "Sp_metric.create: graph must be connected";
  let n = Graph.size g in
  let backend =
    match resolve_mode mode n with
    | Eager -> Apsp (Dijkstra.all_pairs ?jobs g)
    | On_demand -> Oracle (Dijkstra.Oracle.create g)
  in
  (* On an undirected graph the two directions can differ in the last ulp
     (float additions in opposite order); canonicalize on the smaller
     endpoint so the metric is exactly symmetric. *)
  let symmetric_dist u v =
    if u <= v then raw_dist backend u v else raw_dist backend v u
  in
  let metric = Ron_metric.Metric.create ~name:"sp-metric" n symmetric_dist in
  { graph = g; backend; metric }

let graph t = t.graph
let metric t = t.metric
let mode t = match t.backend with Apsp _ -> Eager | Oracle _ -> On_demand

let dist t u v =
  if u <= v then raw_dist t.backend u v else raw_dist t.backend v u

let distances_from t s =
  match t.backend with
  | Apsp a ->
    let n = Dijkstra.size a in
    Array.init n (fun v -> Dijkstra.distance a s v)
  | Oracle o -> Array.copy (Dijkstra.Oracle.distances o s)

let first_hop_index t u v =
  if u = v then invalid_arg "Sp_metric.first_hop_index: u = v";
  match t.backend with
  | Apsp a -> Dijkstra.first_hop a u v
  | Oracle o -> Dijkstra.Oracle.first_hop o u v

let next_toward t u v =
  match t.backend with
  | Apsp a -> Dijkstra.next_toward t.graph a u v
  | Oracle o ->
    if v = u then invalid_arg "Dijkstra.next_toward: target is the source";
    let k = Dijkstra.Oracle.first_hop o u v in
    if k < 0 then invalid_arg "Dijkstra.next_toward: unreachable target";
    Graph.hop t.graph u k

let path t u v =
  let rec go acc cur =
    if cur = v then List.rev (v :: acc)
    else go (cur :: acc) (next_toward t cur v)
  in
  go [] u

(* Seeded exact ground truth on a pair sample: the scalable stand-in for
   "compare against the full matrix" at large n. Pairs are drawn in one
   deterministic stream; evaluation is grouped by canonical (smaller)
   endpoint so the oracle computes each touched row once, then results are
   returned in draw order — so the output is a pure function of (graph,
   seed, count), independent of mode and RON_JOBS. *)
let sample_ground_truth t ~seed ~count =
  if count < 0 then invalid_arg "Sp_metric.sample_ground_truth: negative count";
  let n = Graph.size t.graph in
  if n < 2 then invalid_arg "Sp_metric.sample_ground_truth: need at least two nodes";
  let rng = Rng.create seed in
  let us = Array.make count 0 and vs = Array.make count 0 in
  for i = 0 to count - 1 do
    let u = Rng.int rng n in
    let v = ref (Rng.int rng n) in
    while !v = u do v := Rng.int rng n done;
    us.(i) <- u;
    vs.(i) <- !v
  done;
  let order = Array.init count (fun i -> i) in
  let key i = if us.(i) <= vs.(i) then us.(i) else vs.(i) in
  Array.sort
    (fun a b ->
      let c = Int.compare (key a) (key b) in
      if c <> 0 then c else Int.compare a b)
    order;
  let out = Array.make count 0.0 in
  Array.iter
    (fun i ->
      out.(i) <- dist t us.(i) vs.(i);
      if !Ron_obs.Telemetry.active then Ron_obs.Telemetry.tick ())
    order;
  Array.init count (fun i -> (us.(i), vs.(i), out.(i)))
