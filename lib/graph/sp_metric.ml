type t = { graph : Graph.t; apsp : Dijkstra.apsp; metric : Ron_metric.Metric.t }

let create ?jobs g =
  Ron_obs.Profile.phase "construct.sp_metric" @@ fun () ->
  if not (Graph.is_connected g) then invalid_arg "Sp_metric.create: graph must be connected";
  let apsp = Dijkstra.all_pairs ?jobs g in
  let n = Graph.size g in
  (* On an undirected graph the two directions can differ in the last ulp
     (float additions in opposite order); canonicalize on the smaller
     endpoint so the metric is exactly symmetric. *)
  let symmetric_dist u v =
    if u <= v then Dijkstra.distance apsp u v else Dijkstra.distance apsp v u
  in
  let metric = Ron_metric.Metric.create ~name:"sp-metric" n symmetric_dist in
  { graph = g; apsp; metric }

let graph t = t.graph
let metric t = t.metric

let dist t u v =
  if u <= v then Dijkstra.distance t.apsp u v else Dijkstra.distance t.apsp v u

let first_hop_index t u v =
  if u = v then invalid_arg "Sp_metric.first_hop_index: u = v";
  Dijkstra.first_hop t.apsp u v

let next_toward t u v = Dijkstra.next_toward t.graph t.apsp u v

let path t u v =
  let rec go acc cur =
    if cur = v then List.rev (v :: acc)
    else go (cur :: acc) (next_toward t cur v)
  in
  go [] u
