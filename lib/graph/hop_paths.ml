(* Hop-bounded Bellman–Ford: best.(v) after h rounds is the length of the
   shortest src->v path with at most h hops. A target's answer is the first
   h at which best.(v) <= stretch * d(src, v). *)

let min_hops_within_stretch sp ~src ~stretch =
  if stretch < 1.0 then invalid_arg "Hop_paths.min_hops_within_stretch: stretch must be >= 1";
  let g = Sp_metric.graph sp in
  let n = Graph.size g in
  let off, dst, w = Graph.csr g in
  let best = Array.make n infinity in
  best.(src) <- 0.0;
  let answer = Array.make n (-1) in
  answer.(src) <- 0;
  let tol = 1.0 +. 1e-12 in
  let unresolved = ref (n - 1) in
  let h = ref 0 in
  let next = Array.make n infinity in
  while !unresolved > 0 && !h <= n do
    incr h;
    Array.blit best 0 next 0 n;
    for u = 0 to n - 1 do
      let bu = best.(u) in
      if bu < infinity then
        for e = off.(u) to off.(u + 1) - 1 do
          let cand = bu +. Float.Array.get w e in
          let v = dst.(e) in
          if cand < next.(v) then next.(v) <- cand
        done
    done;
    Array.blit next 0 best 0 n;
    for v = 0 to n - 1 do
      if answer.(v) < 0 && best.(v) <= stretch *. Sp_metric.dist sp src v *. tol then begin
        answer.(v) <- !h;
        decr unresolved
      end
    done
  done;
  if !unresolved > 0 then failwith "Hop_paths: graph not connected";
  answer

let n_delta sp ~stretch =
  let n = Graph.size (Sp_metric.graph sp) in
  let worst = ref 0 in
  for src = 0 to n - 1 do
    Array.iter (fun h -> worst := max !worst h) (min_hops_within_stretch sp ~src ~stretch)
  done;
  !worst
