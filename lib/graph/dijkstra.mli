(** Single-source and all-pairs shortest paths with first-hop extraction.

    The routing schemes never store whole paths — only the {e first-hop
    pointer} from [u] towards a neighbor [v]: the index of the first edge of
    some shortest [u->v] path in [u]'s out-edge list (proof of Theorem 2.1).
    Dijkstra from every source yields both the distance matrix (the
    shortest-paths metric of the graph) and all first-hop pointers.

    To make "the" shortest path well defined even with distance ties, ties
    are broken deterministically: among equal-length paths the one whose
    first edge has the smallest index wins (propagated along the search).

    The substrate is allocation-lean: the priority queue is a flat binary
    heap over a [float array] of priorities and an [int array] of packed
    [(first_hop, node)] keys, the adjacency is flattened once per traversal
    batch into a CSR view (offset/destination [int array]s plus a weight
    [floatarray], shared read-only across domains), and each domain reuses
    one preallocated scratch buffer across sources. All-pairs results live
    in two shared flat [n * n] arrays (an unboxed [floatarray] of distances,
    an [int array] of first hops) rather than [n] boxed per-source
    records. *)

type sssp = {
  source : int;
  dist : float array;
  first_hop : int array;
      (** [first_hop.(v)]: index into [out_edges g source] of the first edge
          of the chosen shortest path to [v]; [-1] for [v = source] or
          unreachable [v]. *)
}

val run : Graph.t -> int -> sssp

type bounded = {
  center : int;
  radius : float;
  nodes : int array;
      (** Settled nodes — exactly [{ v | dist(center, v) <= radius }] — in
          pop (increasing-distance, deterministic tie-broken) order. *)
  dists : float array;  (** [dists.(i)]: distance to [nodes.(i)]. *)
  hops : int array;
      (** [hops.(i)]: first-hop edge index toward [nodes.(i)]; [-1] for the
          center itself. *)
}

val run_bounded : Graph.t -> int -> radius:float -> bounded
(** Radius-limited Dijkstra with early exit: tentative distances beyond
    [radius] are never enqueued, so the run costs O(ball) — not O(n) — per
    call (per-domain generation-stamped scratch, no O(n) reset). Every
    distance and first-hop bit agrees with {!run} restricted to the ball.
    The workhorse for ring/annulus and local-ball construction. *)

module Oracle : sig
  (** On-demand distance oracle: SSSP rows computed lazily with the same
      core as {!all_pairs} (bit-identical results) and cached in a
      per-domain LRU keyed by source. Lock-free; [RON_JOBS] never changes
      bits. Memory: [capacity] rows of 16 bytes per node, per querying
      domain. *)

  type t

  val create : ?capacity:int -> Graph.t -> t
  (** Default capacity keeps the per-domain cache near 64 MB (at least 2
      rows, at most 32); [RON_ORACLE_ROWS] overrides. *)

  val size : t -> int
  val capacity : t -> int

  val distances : t -> int -> float array
  (** [distances t s]: the full distance row from [s]. Returns the cache's
      own array — read-only, and only valid until [capacity] further
      distinct-source queries on this domain. Copy to retain. *)

  val first_hops : t -> int -> int array
  (** First-hop row from [s], same caching contract as {!distances}. *)

  val distance : t -> int -> int -> float
  val first_hop : t -> int -> int -> int
end

type apsp
(** All-pairs results in flat row-major storage: the distance and first-hop
    from [u] to [v] live at offset [u * n + v]. *)

val all_pairs : ?jobs:int -> Graph.t -> apsp
(** One Dijkstra per source, parallelized over sources ({!Ron_util.Pool}:
    [?jobs], else [RON_JOBS], else the hardware recommendation). Sources
    write disjoint rows, so the result is bit-identical at every job count,
    and identical to {!all_pairs_reference}. O(n (m + n log n)) work. *)

val size : apsp -> int
val distance : apsp -> int -> int -> float
val first_hop : apsp -> int -> int -> int
(** [-1] for [v = u] or unreachable [v]. *)

val sssp_of : apsp -> int -> sssp
(** Materialize one source's row as a boxed {!sssp} (copies). *)

val next_node : Graph.t -> sssp -> int -> int
(** [next_node g s v]: the node reached by following [s]'s first hop toward
    [v]. Raises [Invalid_argument] if [v] is the source or unreachable. *)

val next_toward : Graph.t -> apsp -> int -> int -> int
(** [next_toward g a u v]: the node after [u] on the canonical shortest
    [u -> v] path. Raises [Invalid_argument] if [v = u] or unreachable. *)

val run_reference : Graph.t -> int -> sssp
(** The pre-optimization implementation (record-per-entry heap, polymorphic
    tuple compare, boxed per-source results), kept as the measured baseline
    for [bench/main.exe --json] and the equivalence tests — the Dijkstra
    analogue of {!Ron_metric.Indexed.create_reference}. Produces outputs
    bit-identical to {!run}/{!all_pairs}. *)

val all_pairs_reference : Graph.t -> sssp array
