(** Weighted graphs: the connectivity substrate for routing schemes.

    A routing scheme routes over the physical edges of a graph [G]; edge
    weights are delays. Edges out of a node are held in a fixed order — the
    paper's enumeration [phi_u] of outgoing links — so a first-hop pointer
    is just an index of [ceil(log2 Dout)] bits into this list.

    The adjacency lives in CSR form (offset / destination / weight flat
    arrays): a handful of contiguous allocations regardless of n, so
    million-node graphs build and traverse without per-node or per-edge
    boxing. Traversal layers ({!Dijkstra}) read the arrays zero-copy via
    {!csr}. *)

type edge = { dst : int; weight : float }

type t

val create : int -> (int * int * float) list -> t
(** [create n arcs]: directed graph with arcs [(src, dst, weight)]; weights
    must be positive, self-loops rejected. Arc order per node is the order
    of the input list. *)

val undirected : int -> (int * int * float) list -> t
(** Adds both directions of every edge. *)

val of_arc_stream : int -> ((int -> int -> float -> unit) -> unit) -> t
(** [of_arc_stream n produce]: build CSR-natively from a streamed arc
    producer — no intermediate edge list. [produce add] must call
    [add u v w] once per arc; it is invoked exactly twice (a counting pass,
    then a fill pass) and must emit the same arcs in the same order both
    times. Per-node arc order is emission order. Raises [Invalid_argument]
    on bad arcs or if the two passes disagree. *)

val of_edge_stream : int -> ((int -> int -> float -> unit) -> unit) -> t
(** Undirected {!of_arc_stream}: each emitted edge adds both arcs
    (forward then reverse, adjacent in emission order). *)

val size : t -> int

val csr : t -> int array * int array * floatarray
(** [csr g] is the internal [(off, dst, w)] CSR triple, zero-copy: arcs of
    [u] occupy indices [off.(u) .. off.(u+1)-1] of [dst]/[w]. Read-only —
    mutating the arrays corrupts the graph. *)

val out_edges : t -> int -> edge array
(** Materializes a fresh array of [u]'s out-arcs (reference/test path; hot
    loops should use {!csr} or {!iter_out}). *)

val iter_out : t -> int -> (int -> float -> unit) -> unit
(** [iter_out g u f] calls [f dst weight] per out-arc of [u], in arc order,
    without allocating. *)

val out_degree : t -> int -> int
val max_out_degree : t -> int

val edge_count : t -> int
(** Number of arcs. *)

val hop : t -> int -> int -> int
(** [hop g u k]: destination of the [k]-th outgoing edge of [u]. *)

val is_connected : t -> bool
(** Weak connectivity via an explicit-stack DFS over arcs in both
    directions — iterative, O(n + m) ints, safe at n = 10^6. *)
