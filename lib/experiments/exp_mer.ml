module C = Exp_common
module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Meridian = Ron_smallworld.Meridian

type quality = { exact : int; total : int; worst_ratio : float; hops_max : int; probes_max : int }

let query_quality t idx targets members rng =
  let exact = ref 0 and total = ref 0 and ratio = ref 1.0 and hops = ref 0 and probes = ref 0 in
  (* Hops and probes are read from the observed cost ledger (each query is
     charged to an entry keyed by its target index), not from the walk's
     self-reported counters. *)
  let was_on = !Ron_obs.Probe.on in
  Ron_obs.Probe.on := true;
  Fun.protect
    ~finally:(fun () -> Ron_obs.Probe.on := was_on)
    (fun () ->
      Array.iteri
        (fun i tgt ->
          let start = members.(Rng.int rng (Array.length members)) in
          let (r, e) =
            Ron_obs.Ledger.with_query ~kind:"meridian" ~id:i (fun () ->
                Meridian.closest t ~start ~target:tgt)
          in
          let truth = Meridian.exact_closest t tgt in
          incr total;
          if r.Meridian.found = truth then incr exact
          else begin
            let a = Indexed.dist idx r.Meridian.found tgt and b = Indexed.dist idx truth tgt in
            ratio := Float.max !ratio (a /. Float.max b 1e-12)
          end;
          hops := max !hops e.Ron_obs.Ledger.hops;
          probes := max !probes e.Ron_obs.Ledger.dist_evals)
        targets);
  { exact = !exact; total = !total; worst_ratio = !ratio; hops_max = !hops; probes_max = !probes }

let run () =
  C.section "MER" "Object location in practice: Meridian-style closest-node queries";
  let rng = Rng.create 57 in
  let idx =
    Indexed.create
      (Generators.clustered_latency (Rng.split rng) ~clusters:8 ~per_cluster:50 ~spread:30.0
         ~access:6.0)
  in
  let n = Indexed.size idx in
  let perm = Array.init n Fun.id in
  Rng.shuffle rng perm;
  let cut = n / 5 in
  let targets = Array.sub perm 0 cut and members = Array.sub perm cut (n - cut) in

  C.subsection
    (Printf.sprintf "closest-member queries, %d members, %d held-out targets (latency metric)"
       (Array.length members) (Array.length targets));
  C.header
    [
      C.cell ~w:10 "ring size"; C.cell ~w:10 "deg mean"; C.cell ~w:12 "exact hits";
      C.cell ~w:12 "worst ratio"; C.cell ~w:10 "hops max"; C.cell ~w:11 "probes max";
    ];
  List.iter
    (fun k ->
      let t = Meridian.build idx (Rng.split rng) ~ring_size:k ~members in
      let q = query_quality t idx targets members (Rng.split rng) in
      let (_, dmean) = Meridian.out_degree t in
      C.row
        [
          C.cell_int ~w:10 k; C.cell_float ~w:10 ~prec:1 dmean;
          C.cell ~w:12 (Printf.sprintf "%d/%d" q.exact q.total);
          C.cell_float ~w:12 q.worst_ratio; C.cell_int ~w:10 q.hops_max;
          C.cell_int ~w:11 q.probes_max;
        ])
    [ 2; 4; 8; 16 ];
  C.note "Bigger rings buy accuracy (the Meridian trade): with k=16 nearly every";
  C.note "query lands on the true closest member, in O(log Delta) hops and a few";
  C.note "dozen distance probes — no global knowledge anywhere.";

  C.subsection "multi-range queries (ring size 8): members within r of a target";
  let t8 = Meridian.build idx (Rng.split rng) ~ring_size:8 ~members in
  C.header
    [
      C.cell ~w:10 "radius"; C.cell ~w:14 "recall"; C.cell ~w:12 "precision";
      C.cell ~w:12 "probes max";
    ];
  List.iter
    (fun radius ->
      let found = ref 0 and truth_n = ref 0 and probes = ref 0 and precise = ref true in
      Array.iter
        (fun tgt ->
          let r = Meridian.within t8 ~start:members.(0) ~target:tgt ~radius in
          let truth = Meridian.exact_within t8 tgt radius in
          found := !found + Array.length r.Meridian.matches;
          truth_n := !truth_n + Array.length truth;
          probes := max !probes r.Meridian.range_measurements;
          Array.iter
            (fun v -> if not (Array.exists (( = ) v) truth) then precise := false)
            r.Meridian.matches)
        targets;
      C.row
        [
          C.cell_float ~w:10 ~prec:0 radius;
          C.cell ~w:14 (Printf.sprintf "%d/%d" !found !truth_n);
          C.cell ~w:12 (if !precise then "exact" else "VIOLATED");
          C.cell_int ~w:12 !probes;
        ])
    [ 20.0; 60.0; 150.0 ];
  C.note "Returned members always satisfy the radius (exact precision); recall is";
  C.note "best-effort like Meridian's and grows with the radius as the ring walk";
  C.note "has more members to pivot through.";

  C.subsection "the same overlay under churn: 25% of members leave, 25% fresh join";
  let t = Meridian.build idx (Rng.split rng) ~ring_size:8 ~members in
  let before = query_quality t idx targets members (Rng.split rng) in
  (* Churn: remove a quarter of members, add the first quarter of targets. *)
  let leavers = Array.sub members 0 (Array.length members / 4) in
  Array.iter (fun u -> Meridian.leave t u) leavers;
  let joiners = Array.sub targets 0 (Array.length targets / 4) in
  Array.iter (fun u -> Meridian.join t (Rng.split rng) u) joiners;
  let remaining = Meridian.members t in
  let still_targets =
    Array.of_list
      (List.filter (fun v -> not (Meridian.is_member t v)) (Array.to_list targets))
  in
  let after = query_quality t idx still_targets remaining (Rng.split rng) in
  C.header [ C.cell ~w:10 "phase"; C.cell ~w:12 "exact hits"; C.cell ~w:12 "worst ratio" ];
  C.row
    [
      C.cell ~w:10 "before";
      C.cell ~w:12 (Printf.sprintf "%d/%d" before.exact before.total);
      C.cell_float ~w:12 before.worst_ratio;
    ];
  C.row
    [
      C.cell ~w:10 "after";
      C.cell ~w:12 (Printf.sprintf "%d/%d" after.exact after.total);
      C.cell_float ~w:12 after.worst_ratio;
    ];
  C.note "Rings are maintained incrementally through joins and leaves (the";
  C.note "distributed-maintenance question Section 6 raises); query quality is";
  C.note "unchanged after 50% membership turnover."
