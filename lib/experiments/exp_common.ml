module Rng = Ron_util.Rng
module Scheme = Ron_routing.Scheme

let section id title =
  Printf.printf "\n================================================================================\n";
  Printf.printf "[%s] %s\n" id title;
  Printf.printf "================================================================================\n"

let subsection title = Printf.printf "\n--- %s ---\n" title

let row cells = Printf.printf "%s\n" (String.concat " " cells)

let header cells =
  row cells;
  let width = List.fold_left (fun acc c -> acc + String.length c + 1) 0 cells - 1 in
  Printf.printf "%s\n" (String.make (max 1 width) '-')

let cell ?(w = 12) s =
  let len = String.length s in
  if len >= w then String.sub s 0 w else s ^ String.make (w - len) ' '

let cell_int ?w i = cell ?w (string_of_int i)

let cell_float ?w ?(prec = 3) f = cell ?w (Printf.sprintf "%.*f" prec f)

let note s = Printf.printf "  | %s\n" s

let sample_pairs rng ~n ~count =
  let rec go acc k guard =
    if k = 0 || guard > 50 * count then List.rev acc
    else begin
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v then go ((u, v) :: acc) (k - 1) guard else go acc k (guard + 1)
    end
  in
  go [] count 0

type route_quality = {
  queries : int;
  failures : int;
  truncated : int;
  self_forwards : int;
  cycled : int;
  dropped : int;
  stretch_max : float;
  stretch_mean : float;
  hops_max : int;
  hops_mean : float;
  ring_lookups_mean : float;
  ring_lookups_max : int;
  dist_evals_mean : float;
  zoom_steps_mean : float;
}

let collect_routes_keyed ?(parallel = true) ~route ~dist pairs =
  (* The route evaluations are independent, so they run in parallel; the
     aggregation below folds the per-pair results in index order, making the
     output bit-identical to a sequential run (float sums are not
     reassociated). Pass ~parallel:false for schemes whose [route] mutates
     shared state (e.g. Two_mode's mode-switch counters).

     Observability is forced on for the duration so the cost columns report
     what the queries actually did (ring lookups, distance evaluations,
     zoom steps) rather than re-deriving them from scheme parameters. Each
     pair is charged to a ledger entry keyed by its index, which keeps the
     ledger — and hence any snapshot taken afterwards — identical at every
     RON_JOBS. *)
  let pairs_a = Array.of_list pairs in
  let np = Array.length pairs_a in
  let eval i =
    let (u, v) = pairs_a.(i) in
    let r = Ron_obs.Ledger.with_query ~kind:"route" ~id:i (fun () -> route ~query:i u v) in
    if !Ron_obs.Telemetry.active then Ron_obs.Telemetry.tick ();
    r
  in
  let was_on = !Ron_obs.Probe.on in
  Ron_obs.Probe.on := true;
  let results =
    Fun.protect
      ~finally:(fun () -> Ron_obs.Probe.on := was_on)
      (fun () ->
        Ron_obs.Profile.phase "query.routes" (fun () ->
            if parallel then Ron_util.Pool.init np eval else Array.init np eval))
  in
  let queries = ref 0 and truncated = ref 0 and self_forwards = ref 0 in
  let cycled = ref 0 and dropped = ref 0 in
  let smax = ref 0.0 and ssum = ref 0.0 in
  let hmax = ref 0 and hsum = ref 0 in
  let rsum = ref 0 and rmax = ref 0 and dsum = ref 0 and zsum = ref 0 in
  Array.iteri
    (fun i (r, (e : Ron_obs.Ledger.entry)) ->
      let (u, v) = pairs_a.(i) in
      incr queries;
      rsum := !rsum + e.ring_lookups;
      rmax := max !rmax e.ring_lookups;
      dsum := !dsum + e.dist_evals;
      zsum := !zsum + e.zoom_steps;
      (match r.Scheme.outcome with
      | Scheme.Delivered ->
        let s = Scheme.stretch r (dist u v) in
        smax := Float.max !smax s;
        ssum := !ssum +. s;
        hmax := max !hmax e.hops;
        hsum := !hsum + e.hops
      | Scheme.Truncated -> incr truncated
      | Scheme.Self_forward -> incr self_forwards
      | Scheme.Cycled -> incr cycled
      | Scheme.Dropped -> incr dropped))
    results;
  let failures = !truncated + !self_forwards + !cycled + !dropped in
  let ok = max 1 (!queries - failures) in
  let nq = max 1 !queries in
  {
    queries = !queries;
    failures;
    truncated = !truncated;
    self_forwards = !self_forwards;
    cycled = !cycled;
    dropped = !dropped;
    stretch_max = !smax;
    stretch_mean = !ssum /. float_of_int ok;
    hops_max = !hmax;
    hops_mean = float_of_int !hsum /. float_of_int ok;
    ring_lookups_mean = float_of_int !rsum /. float_of_int nq;
    ring_lookups_max = !rmax;
    dist_evals_mean = float_of_int !dsum /. float_of_int nq;
    zoom_steps_mean = float_of_int !zsum /. float_of_int nq;
  }

let collect_routes ?parallel ~route ~dist pairs =
  collect_routes_keyed ?parallel ~route:(fun ~query:_ u v -> route u v) ~dist pairs

let pp_quality q =
  Printf.sprintf "stretch max %.3f mean %.3f | hops max %d mean %.1f | fails %d/%d" q.stretch_max
    q.stretch_mean q.hops_max q.hops_mean q.failures q.queries

let pp_observed q =
  Printf.sprintf
    "observed: ring lookups mean %.1f max %d | dist evals mean %.1f | zoom steps mean %.1f%s"
    q.ring_lookups_mean q.ring_lookups_max q.dist_evals_mean q.zoom_steps_mean
    (if q.truncated > 0 || q.self_forwards > 0 || q.cycled > 0 || q.dropped > 0 then
       Printf.sprintf " | truncated %d self-forward %d cycled %d dropped %d" q.truncated
         q.self_forwards q.cycled q.dropped
     else "")
