module Rng = Ron_util.Rng
module Scheme = Ron_routing.Scheme

let section id title =
  Printf.printf "\n================================================================================\n";
  Printf.printf "[%s] %s\n" id title;
  Printf.printf "================================================================================\n"

let subsection title = Printf.printf "\n--- %s ---\n" title

let row cells = Printf.printf "%s\n" (String.concat " " cells)

let header cells =
  row cells;
  let width = List.fold_left (fun acc c -> acc + String.length c + 1) 0 cells - 1 in
  Printf.printf "%s\n" (String.make (max 1 width) '-')

let cell ?(w = 12) s =
  let len = String.length s in
  if len >= w then String.sub s 0 w else s ^ String.make (w - len) ' '

let cell_int ?w i = cell ?w (string_of_int i)

let cell_float ?w ?(prec = 3) f = cell ?w (Printf.sprintf "%.*f" prec f)

let note s = Printf.printf "  | %s\n" s

let sample_pairs rng ~n ~count =
  let rec go acc k guard =
    if k = 0 || guard > 50 * count then List.rev acc
    else begin
      let u = Rng.int rng n and v = Rng.int rng n in
      if u <> v then go ((u, v) :: acc) (k - 1) guard else go acc k (guard + 1)
    end
  in
  go [] count 0

type route_quality = {
  queries : int;
  failures : int;
  stretch_max : float;
  stretch_mean : float;
  hops_max : int;
  hops_mean : float;
}

let collect_routes ?(parallel = true) ~route ~dist pairs =
  (* The route evaluations are independent, so they run in parallel; the
     aggregation below folds the per-pair results in list order, making the
     output bit-identical to a sequential run (float sums are not
     reassociated). Pass ~parallel:false for schemes whose [route] mutates
     shared state (e.g. Two_mode's mode-switch counters). *)
  let pairs_a = Array.of_list pairs in
  let results =
    if parallel then Ron_util.Pool.map (fun (u, v) -> route u v) pairs_a
    else Array.map (fun (u, v) -> route u v) pairs_a
  in
  let queries = ref 0 and failures = ref 0 in
  let smax = ref 0.0 and ssum = ref 0.0 in
  let hmax = ref 0 and hsum = ref 0 in
  Array.iteri
    (fun i r ->
      let (u, v) = pairs_a.(i) in
      incr queries;
      if not r.Scheme.delivered then incr failures
      else begin
        let s = Scheme.stretch r (dist u v) in
        smax := Float.max !smax s;
        ssum := !ssum +. s;
        hmax := max !hmax r.Scheme.hops;
        hsum := !hsum + r.Scheme.hops
      end)
    results;
  let ok = max 1 (!queries - !failures) in
  {
    queries = !queries;
    failures = !failures;
    stretch_max = !smax;
    stretch_mean = !ssum /. float_of_int ok;
    hops_max = !hmax;
    hops_mean = float_of_int !hsum /. float_of_int ok;
  }

let pp_quality q =
  Printf.sprintf "stretch max %.3f mean %.3f | hops max %d mean %.1f | fails %d/%d" q.stretch_max
    q.stretch_mean q.hops_max q.hops_mean q.failures q.queries
