(** Shared plumbing for the experiment harness: fixed-width table printing,
    pair sampling, and route-quality aggregation. Every experiment module
    exposes [run : unit -> unit] that prints one paper-artifact section. *)

val section : string -> string -> unit
(** [section id title] prints the experiment banner. *)

val subsection : string -> unit

val row : string list -> unit
(** Print one table row; columns are pre-formatted cells. *)

val header : string list -> unit
(** Print a header row plus a rule. *)

val cell : ?w:int -> string -> string
(** Right-pad/truncate to [w] (default 12). *)

val cell_int : ?w:int -> int -> string
val cell_float : ?w:int -> ?prec:int -> float -> string

val note : string -> unit
(** Indented free-form commentary line. *)

val sample_pairs : Ron_util.Rng.t -> n:int -> count:int -> (int * int) list
(** Up to [count] ordered pairs with distinct endpoints. *)

type route_quality = {
  queries : int;
  failures : int;
  stretch_max : float;
  stretch_mean : float;
  hops_max : int;
  hops_mean : float;
}

val collect_routes :
  ?parallel:bool ->
  route:(int -> int -> Ron_routing.Scheme.result) ->
  dist:(int -> int -> float) ->
  (int * int) list ->
  route_quality
(** Evaluate each pair's route and aggregate. With [parallel] (the default)
    the route calls are spread over domains and the aggregation folds in
    list order, so the result is bit-identical to a sequential run; [route]
    must then be pure. Pass [~parallel:false] for schemes whose route
    mutates shared state. *)

val pp_quality : route_quality -> string
