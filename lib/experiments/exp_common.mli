(** Shared plumbing for the experiment harness: fixed-width table printing,
    pair sampling, and route-quality aggregation. Every experiment module
    exposes [run : unit -> unit] that prints one paper-artifact section. *)

val section : string -> string -> unit
(** [section id title] prints the experiment banner. *)

val subsection : string -> unit

val row : string list -> unit
(** Print one table row; columns are pre-formatted cells. *)

val header : string list -> unit
(** Print a header row plus a rule. *)

val cell : ?w:int -> string -> string
(** Right-pad/truncate to [w] (default 12). *)

val cell_int : ?w:int -> int -> string
val cell_float : ?w:int -> ?prec:int -> float -> string

val note : string -> unit
(** Indented free-form commentary line. *)

val sample_pairs : Ron_util.Rng.t -> n:int -> count:int -> (int * int) list
(** Up to [count] ordered pairs with distinct endpoints. *)

type route_quality = {
  queries : int;
  failures : int;  (** [truncated + self_forwards + cycled + dropped] *)
  truncated : int;  (** hop budget exhausted *)
  self_forwards : int;  (** scheme forwarded a packet to itself *)
  cycled : int;  (** packet revisited a (node, header) state *)
  dropped : int;  (** packet lost to an injected fault *)
  stretch_max : float;
  stretch_mean : float;
  hops_max : int;
  hops_mean : float;
  ring_lookups_mean : float;  (** observed per query, from the cost ledger *)
  ring_lookups_max : int;
  dist_evals_mean : float;
  zoom_steps_mean : float;
}

val collect_routes :
  ?parallel:bool ->
  route:(int -> int -> Ron_routing.Scheme.result) ->
  dist:(int -> int -> float) ->
  (int * int) list ->
  route_quality
(** Evaluate each pair's route and aggregate. With [parallel] (the default)
    the route calls are spread over domains and the aggregation folds in
    list order, so the result is bit-identical to a sequential run; [route]
    must then be pure. Pass [~parallel:false] for schemes whose route
    mutates shared state.

    Observability ({!Ron_obs.Probe.on}) is forced on while the routes run
    (and restored after): each pair is charged to a ledger entry keyed by
    its index, and the cost columns ([ring_lookups_*], [dist_evals_mean],
    [zoom_steps_mean], [hops_*]) come from those observed entries. *)

val collect_routes_keyed :
  ?parallel:bool ->
  route:(query:int -> int -> int -> Ron_routing.Scheme.result) ->
  dist:(int -> int -> float) ->
  (int * int) list ->
  route_quality
(** Like {!collect_routes}, but passes [route] the pair's index as
    [~query]. The fault layer keys its deterministic draws by (query, hop),
    so the index — stable across RON_JOBS and list order — is the right
    query identity. *)

val pp_quality : route_quality -> string

val pp_observed : route_quality -> string
(** One-line summary of the observed per-query costs (and the failure
    breakdown when any query failed). *)
