(** Churn experiment: sweep symmetric join/leave rates against each scheme
    with incremental repair — ring refill by bounded-radius exploration
    (Basic), neighbor/directory overlay repair (Labelled, Two-mode),
    ranked Meridian ring replacement, and local-ball re-labeling at scale
    (Landmark) — reporting delivery rate, stretch inflation, query-time
    staleness, and repair cost per event. Rate 0 is byte-identical to
    running with no churn layer. The sweep is a pure function of its fixed
    seeds: output is byte-identical across [RON_JOBS] settings and reruns
    (the Landmark subsection's size is [RON_CHURN_N], default 10000). *)

val run : unit -> unit
