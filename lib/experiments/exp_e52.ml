module C = Exp_common
module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
module Doubling_a = Ron_smallworld.Doubling_a
module Doubling_b = Ron_smallworld.Doubling_b
module Sw_model = Ron_smallworld.Sw_model

let fixture m =
  let idx = Indexed.create m in
  (idx, Measure.create idx (Net.Hierarchy.create idx))

type sw_quality = { hops_max : int; hops_mean : float; fails : int; nongreedy : int }

let collect route n rng queries max_hops =
  (* Draw every query endpoint first, consuming the RNG stream exactly as
     the sequential loop did; the (pure) route evaluations then run in
     parallel, and the reduction below is over ints only, so the reported
     numbers are identical at any job count. *)
  let qs = Array.make queries (0, 0) in
  for i = 0 to queries - 1 do
    (* Same [let ... and ...] form as the seed loop, so the two draws hit
       the stream in the same order. *)
    let u = Rng.int rng n and v = Rng.int rng n in
    qs.(i) <- (u, v)
  done;
  let results =
    Ron_util.Pool.map
      (fun (u, v) -> if u <> v then Some (route u v ~max_hops) else None)
      qs
  in
  let hmax = ref 0 and hsum = ref 0 and fails = ref 0 and ok = ref 0 and ng = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some r ->
        if r.Sw_model.delivered then begin
          incr ok;
          hmax := max !hmax r.Sw_model.hops;
          hsum := !hsum + r.Sw_model.hops;
          ng := !ng + r.Sw_model.nongreedy_hops
        end
        else incr fails)
    results;
  {
    hops_max = !hmax;
    hops_mean = float_of_int !hsum /. float_of_int (max 1 !ok);
    fails = !fails;
    nongreedy = !ng;
  }

let run_a () =
  C.section "E-5.2a" "Theorem 5.2a: greedy small worlds, O(log n) hops, degree ~ log n log Delta";
  let rng = Rng.create 520 in

  C.subsection "hops and degree vs n (2-d clouds, c = 1)";
  C.header
    [
      C.cell ~w:8 "n"; C.cell ~w:9 "log2 n"; C.cell ~w:9 "deg max"; C.cell ~w:10 "deg mean";
      C.cell ~w:10 "hops max"; C.cell ~w:10 "hops mean"; C.cell ~w:6 "fails";
    ];
  List.iter
    (fun n ->
      let (idx, mu) = fixture (Generators.random_cloud (Rng.split rng) ~n ~dim:2) in
      let a = Doubling_a.build ~c:1 idx mu (Rng.split rng) in
      let (dmax, dmean) = Doubling_a.out_degree a in
      let q =
        collect (fun u v -> Doubling_a.route a ~src:u ~dst:v) n (Rng.split rng) 1500 300
      in
      C.row
        [
          C.cell_int ~w:8 n; C.cell_int ~w:9 (Indexed.log2_size idx);
          C.cell_int ~w:9 dmax; C.cell_float ~w:10 ~prec:1 dmean;
          C.cell_int ~w:10 q.hops_max; C.cell_float ~w:10 ~prec:2 q.hops_mean;
          C.cell_int ~w:6 q.fails;
        ])
    [ 256; 512; 1024; 2048 ];
  C.note "hops stay O(log n) (here far below it) as n grows 8x; degree grows";
  C.note "like (log n)(log Delta), sub-linearly in n.";

  C.subsection "the headline: Delta exponential in n (exponential line), still O(log n) hops";
  C.header
    [
      C.cell ~w:8 "n"; C.cell ~w:9 "log2(D)"; C.cell ~w:9 "deg max";
      C.cell ~w:10 "hops max"; C.cell ~w:10 "hops mean"; C.cell ~w:6 "fails";
    ];
  List.iter
    (fun n ->
      let (idx, mu) = fixture (Generators.exponential_line n) in
      let a = Doubling_a.build idx mu (Rng.split rng) in
      let (dmax, _) = Doubling_a.out_degree a in
      let q = collect (fun u v -> Doubling_a.route a ~src:u ~dst:v) n (Rng.split rng) 1500 200 in
      C.row
        [
          C.cell_int ~w:8 n; C.cell_int ~w:9 (Indexed.log2_aspect_ratio idx);
          C.cell_int ~w:9 dmax;
          C.cell_int ~w:10 q.hops_max; C.cell_float ~w:10 ~prec:2 q.hops_mean;
          C.cell_int ~w:6 q.fails;
        ])
    [ 16; 24; 32; 40; 48 ]

let run_b () =
  C.section "E-5.2b" "Theorem 5.2b: breaking the log Delta out-degree barrier (sidestep routing)";
  let rng = Rng.create 521 in

  C.subsection "degree of models (a) vs (b) as log Delta grows at n = 512 (c = 1)";
  C.header
    [
      C.cell ~w:10 "clusters"; C.cell ~w:9 "log2(D)"; C.cell ~w:11 "deg A mean";
      C.cell ~w:11 "deg B mean"; C.cell ~w:11 "hops A/B"; C.cell ~w:11 "fails A/B";
      C.cell ~w:10 "nongreedy";
    ];
  List.iter
    (fun clusters ->
      let per = 512 / clusters in
      let (idx, mu) =
        fixture (Generators.exponential_clusters (Rng.split rng) ~clusters ~per_cluster:per ~base:16.0)
      in
      let n = Indexed.size idx in
      let a = Doubling_a.build ~c:1 idx mu (Rng.split rng) in
      let b = Doubling_b.build ~c:1 idx mu (Rng.split rng) in
      let (_, da) = Doubling_a.out_degree a in
      let (_, db) = Doubling_b.out_degree b in
      let qa = collect (fun u v -> Doubling_a.route a ~src:u ~dst:v) n (Rng.split rng) 1000 300 in
      let qb = collect (fun u v -> Doubling_b.route b ~src:u ~dst:v) n (Rng.split rng) 1000 300 in
      C.row
        [
          C.cell_int ~w:10 clusters; C.cell_int ~w:9 (Indexed.log2_aspect_ratio idx);
          C.cell_float ~w:11 ~prec:1 da; C.cell_float ~w:11 ~prec:1 db;
          C.cell ~w:11 (Printf.sprintf "%d/%d" qa.hops_max qb.hops_max);
          C.cell ~w:11 (Printf.sprintf "%d/%d" qa.fails qb.fails);
          C.cell_int ~w:10 qb.nongreedy;
        ])
    [ 4; 8; 16; 32; 64 ];
  C.note "Model A's mean degree grows with log Delta; model B's stays closer to";
  C.note "flat — but at feasible Delta the paper's window cap (3x+3)loglogD never";
  C.note "truncates (it exceeds log Delta until log Delta ~ thousands), so B's";
  C.note "saving comes only from the per-scale windows. The ablation below caps";
  C.note "the window to ~sqrt(log Delta) to exhibit the intended asymptotic shape.";

  C.subsection "window-cap ablation at clusters=64 (log Delta ~ 256): degree vs delivery";
  C.header
    [
      C.cell ~w:12 "window cap"; C.cell ~w:11 "deg B mean"; C.cell ~w:10 "hops max";
      C.cell ~w:10 "nongreedy"; C.cell ~w:6 "fails";
    ];
  let (idx, mu) =
    fixture (Generators.exponential_clusters (Rng.split rng) ~clusters:64 ~per_cluster:8 ~base:16.0)
  in
  let n = Indexed.size idx in
  let log_delta = float_of_int (Indexed.log2_aspect_ratio idx) in
  let caps =
    [
      ("paper", None);
      ("3*sqrt(logD)", Some (int_of_float (3.0 *. sqrt log_delta)));
      ("sqrt(logD)", Some (int_of_float (sqrt log_delta)));
      ("2", Some 2);
    ]
  in
  List.iter
    (fun (label, cap) ->
      let b =
        match cap with
        | None -> Doubling_b.build ~c:1 idx mu (Rng.split rng)
        | Some window_cap -> Doubling_b.build ~c:1 ~window_cap idx mu (Rng.split rng)
      in
      let (_, db) = Doubling_b.out_degree b in
      let q = collect (fun u v -> Doubling_b.route b ~src:u ~dst:v) n (Rng.split rng) 1000 300 in
      C.row
        [
          C.cell ~w:12 label; C.cell_float ~w:11 ~prec:1 db;
          C.cell_int ~w:10 q.hops_max; C.cell_int ~w:10 q.nongreedy; C.cell_int ~w:6 q.fails;
        ])
    caps
