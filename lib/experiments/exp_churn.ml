module C = Exp_common
module Rng = Ron_util.Rng
module Graph_gen = Ron_graph.Graph_gen
module Sp_metric = Ron_graph.Sp_metric
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Basic = Ron_routing.Basic
module Labelled = Ron_routing.Labelled
module Two_mode = Ron_routing.Two_mode
module Scheme = Ron_routing.Scheme
module Fault = Ron_fault.Fault
module Meridian = Ron_smallworld.Meridian
module Landmark = Ron_labeling.Landmark
module Churn = Ron_churn.Churn
module Counter = Ron_obs.Counter
module Probe = Ron_obs.Probe

(* Churn sweep: symmetric join/leave rates over a fixed slot budget. Rate 0
   produces a null schedule — no events, identity wrapper — so that row is
   byte-identical to routing with no churn layer at all. The schedule seed
   is fixed; the whole sweep is a pure function of the code and runs
   bit-identically at every RON_JOBS. *)
let rates = [ 0.0; 0.02; 0.05; 0.1 ]

let churn_seed = 9191
let slots = 120

let schedule_for ?eligible ~n rate =
  Churn.Schedule.make ~seed:churn_seed ?eligible ~n ~slots ~join_rate:rate
    ~leave_rate:rate ()

(* The landmark subsection exercises repair at scale; override for smoke
   runs (RON_CHURN_N=2000) without recompiling. Committed expectation
   output uses the default. *)
let landmark_n () =
  match Sys.getenv_opt "RON_CHURN_N" with
  | None | Some "" -> 10_000
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 16 -> n
      | _ -> failwith (Printf.sprintf "bad RON_CHURN_N %S" s))

(* Apply the schedule with probes forced on, so the churn.* counters see
   the repair work even when the harness runs without observability. *)
let apply_probed sched st ~on_leave ~on_join ?backlog () =
  let was_on = !Probe.on in
  Probe.on := true;
  Fun.protect
    ~finally:(fun () -> Probe.on := was_on)
    (fun () -> Churn.Driver.apply sched st ~on_leave ~on_join ?backlog ())

type churn_counts = { stale_hits : int; detours : int }

let with_churn_counts f =
  let s0 = Counter.value Probe.churn_stale_hits in
  let d0 = Counter.value Probe.churn_detours in
  let x = f () in
  ( x,
    {
      stale_hits = Counter.value Probe.churn_stale_hits - s0;
      detours = Counter.value Probe.churn_detours - d0;
    } )

let ev_cell (s : Churn.Driver.summary) =
  C.cell ~w:9 (Printf.sprintf "%dJ/%dL" s.Churn.Driver.joins s.Churn.Driver.leaves)

let per_event total events = float_of_int total /. float_of_int (max 1 events)

let sweep_header () =
  C.header
    [
      C.cell ~w:5 "rate"; C.cell ~w:9 "events"; C.cell ~w:6 "pairs";
      C.cell ~w:9 "del.rate"; C.cell ~w:11 "stretch mn"; C.cell ~w:8 "inflate";
      C.cell ~w:8 "stale/q"; C.cell ~w:9 "detour/q"; C.cell ~w:7 "rep/ev";
      C.cell ~w:9 "refill/ev"; C.cell ~w:6 "stale";
    ]

(* One sweep row: apply the rate's schedule through the scheme's repair
   hooks, then route the still-live sampled pairs through the churn
   wrapper (optionally composed under an extra fault wrapper). [stale] is
   the repair structure's residual stale-reference count — the invariant
   the incremental repair maintains at 0. *)
let sweep_row ?(label = None) ?(extra = fun ~query:_ -> Scheme.identity_wrapper)
    ~rate ~make_repair ~route_wrapped ~dist ~parallel pairs base_stretch =
  let sched, st, on_leave, on_join, backlog, stale_after = make_repair rate in
  let summary = apply_probed sched st ~on_leave ~on_join ?backlog () in
  let events = summary.Churn.Driver.joins + summary.Churn.Driver.leaves in
  let live_pairs =
    List.filter (fun (u, v) -> Churn.is_live st u && Churn.is_live st v) pairs
  in
  let cw = Churn.wrapper st in
  let route ~query u v =
    route_wrapped (Scheme.compose (extra ~query) cw) ~src:u ~dst:v
  in
  let q, cc =
    with_churn_counts (fun () ->
        C.collect_routes_keyed ~parallel ~route ~dist live_pairs)
  in
  if Float.is_nan !base_stretch then base_stretch := q.C.stretch_mean;
  let nq = max 1 q.C.queries in
  let delivered = q.C.queries - q.C.failures in
  C.row
    [
      (match label with
      | Some s -> C.cell ~w:5 s
      | None -> C.cell_float ~w:5 ~prec:2 rate);
      ev_cell summary;
      C.cell_int ~w:6 q.C.queries;
      C.cell_float ~w:9 (float_of_int delivered /. float_of_int nq);
      C.cell_float ~w:11 q.C.stretch_mean;
      C.cell_float ~w:8 (q.C.stretch_mean /. !base_stretch);
      C.cell_float ~w:8 (float_of_int cc.stale_hits /. float_of_int nq);
      C.cell_float ~w:9 (float_of_int cc.detours /. float_of_int nq);
      C.cell_float ~w:7 ~prec:1 (per_event summary.Churn.Driver.cost.Churn.updates events);
      C.cell_float ~w:9 ~prec:1 (per_event summary.Churn.Driver.cost.Churn.refills events);
      C.cell_int ~w:6 (stale_after ());
    ];
  if q.C.failures > 0 then C.note (C.pp_observed q);
  if !Ron_obs.Telemetry.active then Ron_obs.Telemetry.tick ()

let run () =
  C.section "CHURN"
    "Dynamic membership: seeded joins/leaves with incremental ring repair";
  let rebuilds0 = Counter.value Probe.churn_rebuilds in
  let rng = Rng.create 83 in

  let sp = Sp_metric.create (Graph_gen.grid 10 10) in
  let n = Ron_graph.Graph.size (Sp_metric.graph sp) in
  let pairs = C.sample_pairs (Rng.split rng) ~n ~count:500 in
  let dist u v = Sp_metric.dist sp u v in

  C.subsection "Thm 2.1 (Basic) on grid10x10: ring refill by bounded-radius exploration";
  let b = Basic.build sp ~delta:0.25 in
  let make_repair rate =
    let sched = schedule_for ~n rate in
    let st = Churn.state_of_schedule sched in
    let rr = Churn.Ring_repair.create st (Basic.substrate b) (Basic.rings_collection b) in
    ( sched, st,
      (fun v -> Churn.Ring_repair.leave rr v),
      (fun v -> Churn.Ring_repair.join rr v),
      None,
      fun () -> Churn.Ring_repair.stale_members rr )
  in
  let base = ref nan in
  sweep_header ();
  List.iter
    (fun rate ->
      sweep_row ~rate ~make_repair
        ~route_wrapped:(fun w ~src ~dst -> Basic.route_wrapped w b ~src ~dst)
        ~dist ~parallel:true pairs base)
    rates;
  (* One composed row: churn at 0.05 plus per-hop message drops — the two
     wrappers stack through Scheme.compose, drops outermost. *)
  let fdrop = Fault.make ~seed:4242 ~crash_fraction:0.0 ~drop_rate:0.0125 ~dead_link_fraction:0.0 ~n () in
  sweep_row ~label:(Some "+drop") ~extra:(fun ~query -> Fault.wrapper fdrop ~query)
    ~rate:0.05 ~make_repair
    ~route_wrapped:(fun w ~src ~dst -> Basic.route_wrapped w b ~src ~dst)
    ~dist ~parallel:true pairs base;
  C.note "Leaves are repaired in place: each ring that lost a member refills with";
  C.note "the nearest live node inside the ring's own ball (never a rebuild).";

  C.subsection "Thm 4.1 (Labelled) on grid10x10: neighbor-table overlay repair";
  let l = Labelled.build sp ~delta:0.25 in
  let lrows = Array.init n (fun u -> Labelled.neighbors l u) in
  let make_repair rate =
    let sched = schedule_for ~n rate in
    let st = Churn.state_of_schedule sched in
    let ov =
      Churn.Overlay.create st lrows
        ~relabel_cost:(fun v -> Array.length lrows.(v))
    in
    ( sched, st,
      (fun v -> Churn.Overlay.leave ov v),
      (fun v -> Churn.Overlay.join ov v),
      Some (fun () -> Churn.Overlay.backlog ov),
      fun () -> Churn.Overlay.stale_entries ov )
  in
  let base = ref nan in
  sweep_header ();
  List.iter
    (fun rate ->
      sweep_row ~rate ~make_repair
        ~route_wrapped:(fun w ~src ~dst -> Labelled.route_wrapped w l ~src ~dst)
        ~dist ~parallel:true pairs base)
    rates;
  C.note "A departed neighbor is substituted from the referrer's own pristine row;";
  C.note "a rejoin re-derives its label and is re-adopted at its old positions.";

  (* Grids are degenerate for two-mode churn (every node self-hubs a
     singleton directory, so there is nothing to repair); the clustered
     latency metric produces real cross-node hub and directory entries. *)
  C.subsection "Thm 4.2 (Two-mode) on clustered latencies: hub + directory overlay repair";
  let idx8 =
    Indexed.create
      (Generators.clustered_latency (Rng.split rng) ~clusters:6 ~per_cluster:30
         ~spread:30.0 ~access:6.0)
  in
  let n8 = Indexed.size idx8 in
  let tm = Two_mode.build idx8 ~delta:0.125 in
  let x = Two_mode.export tm in
  (* Per-node row: the node's covering-ball hub pointers, then the member
     lists of every global directory hubbed at it — churn repairs the
     node's slice of the shared directory structure. *)
  let tmrows =
    Array.init n8 (fun u ->
        let dirs = ref [] in
        for i = Array.length x.Two_mode.x_hub_g - 1 downto 0 do
          let g = x.Two_mode.x_hub_g.(i).(u) in
          if g >= 0 then dirs := x.Two_mode.x_dir_members.(g) :: !dirs
        done;
        Array.concat (x.Two_mode.x_hub_ptr.(u) :: !dirs))
  in
  let scales8 = Array.length x.Two_mode.x_hub_g in
  let pairs8 = C.sample_pairs (Rng.split rng) ~n:n8 ~count:300 in
  let make_repair rate =
    let sched = schedule_for ~n:n8 rate in
    let st = Churn.state_of_schedule sched in
    let ov = Churn.Overlay.create st tmrows ~relabel_cost:(fun _ -> scales8) in
    ( sched, st,
      (fun v -> Churn.Overlay.leave ov v),
      (fun v -> Churn.Overlay.join ov v),
      Some (fun () -> Churn.Overlay.backlog ov),
      fun () -> Churn.Overlay.stale_entries ov )
  in
  let base = ref nan in
  sweep_header ();
  List.iter
    (fun rate ->
      sweep_row ~rate ~make_repair
        ~route_wrapped:(fun w ~src ~dst -> Two_mode.route_wrapped w tm ~src ~dst)
        ~dist:(fun u v -> Indexed.dist idx8 u v)
        ~parallel:false pairs8 base)
    rates;
  C.note "Directory entries are repaired at their hub node; any live member of a";
  C.note "scale-i directory can stand in for a departed one.";

  C.subsection "Meridian: membership churn with ranked ring replacement";
  let idxm =
    Indexed.create
      (Generators.clustered_latency (Rng.split rng) ~clusters:6 ~per_cluster:30
         ~spread:30.0 ~access:6.0)
  in
  let nm = Indexed.size idxm in
  let perm = Array.init nm Fun.id in
  Rng.shuffle rng perm;
  let cut = nm / 5 in
  let targets = Array.sub perm 0 cut and members = Array.sub perm cut (nm - cut) in
  let m0 = Meridian.build idxm (Rng.split rng) ~ring_size:8 ~members in
  let starts = Array.map (fun _ -> members.(Rng.int rng (Array.length members))) targets in
  C.header
    [
      C.cell ~w:5 "rate"; C.cell ~w:9 "events"; C.cell ~w:8 "queries";
      C.cell ~w:11 "exact hits"; C.cell ~w:12 "worst ratio"; C.cell ~w:7 "rep/ev";
      C.cell ~w:9 "refill/ev";
    ];
  List.iter
    (fun rate ->
      let sched = schedule_for ~eligible:(fun v -> Meridian.is_member m0 v) ~n:nm rate in
      let st = Churn.state_of_schedule sched in
      let mc = Meridian.copy m0 in
      let mrng = Rng.create (Rng.mix churn_seed 0x7e5d) in
      let summary =
        apply_probed sched st
          ~on_leave:(fun v ->
            let updates, refills = Meridian.leave_counted mc v in
            { Churn.updates; refills; relabels = 0 })
          ~on_join:(fun v ->
            let w = Meridian.join_counted mc mrng v in
            { Churn.updates = w; refills = w; relabels = 0 })
          ()
      in
      let events = summary.Churn.Driver.joins + summary.Churn.Driver.leaves in
      let exact = ref 0 and total = ref 0 and ratio = ref 1.0 in
      Array.iteri
        (fun i tgt ->
          let start = starts.(i) in
          if Churn.is_live st start then begin
            let r = Meridian.closest mc ~start ~target:tgt in
            let truth = Meridian.exact_closest mc tgt in
            incr total;
            if r.Meridian.found = truth then incr exact
            else begin
              let a = Indexed.dist idxm r.Meridian.found tgt
              and b = Indexed.dist idxm truth tgt in
              ratio := Float.max !ratio (a /. Float.max b 1e-12)
            end
          end)
        targets;
      C.row
        [
          C.cell_float ~w:5 ~prec:2 rate;
          ev_cell summary;
          C.cell_int ~w:8 !total;
          C.cell ~w:11 (Printf.sprintf "%d/%d" !exact !total);
          C.cell_float ~w:12 !ratio;
          C.cell_float ~w:7 ~prec:1 (per_event summary.Churn.Driver.cost.Churn.updates events);
          C.cell_float ~w:9 ~prec:1 (per_event summary.Churn.Driver.cost.Churn.refills events);
        ];
      if !Ron_obs.Telemetry.active then Ron_obs.Telemetry.tick ())
    rates;
  C.note "leave_counted answers Section 6's maintenance question incrementally:";
  C.note "each ring that lost the departed member refills with the nearest live";
  C.note "same-annulus member — queries keep settling on near-optimal nodes.";

  let nl = landmark_n () in
  C.subsection (Printf.sprintf "Landmark labeling on torus (n=%d): ball repair at scale" nl);
  let side = max 2 (int_of_float (Float.round (sqrt (float_of_int nl)))) in
  let g = Graph_gen.torus side side in
  let nn = Ron_graph.Graph.size g in
  let spl = Sp_metric.create g in
  let k = max 4 (min 32 (1 + Ron_util.Bits.ilog2_floor nn)) in
  let lm = Landmark.build spl (Rng.create 97) ~k ~local_radius:2.0 in
  let is_beacon = Array.make nn false in
  Array.iter (fun b -> is_beacon.(b) <- true) (Landmark.beacons lm);
  let balls = Array.init nn (fun u -> Landmark.ball_members lm u) in
  C.header
    [
      C.cell ~w:5 "rate"; C.cell ~w:9 "events"; C.cell ~w:7 "live";
      C.cell ~w:7 "rep/ev"; C.cell ~w:9 "refill/ev"; C.cell ~w:10 "relabel/ev";
      C.cell ~w:8 "backlog"; C.cell ~w:6 "stale";
    ];
  List.iter
    (fun rate ->
      let sched = schedule_for ~eligible:(fun v -> not is_beacon.(v)) ~n:nn rate in
      let st = Churn.state_of_schedule sched in
      let ov =
        Churn.Overlay.create st balls
          ~relabel_cost:(fun v -> k + Array.length balls.(v))
      in
      let summary =
        apply_probed sched st
          ~on_leave:(fun v -> Churn.Overlay.leave ov v)
          ~on_join:(fun v -> Churn.Overlay.join ov v)
          ~backlog:(fun () -> Churn.Overlay.backlog ov)
          ()
      in
      let events = summary.Churn.Driver.joins + summary.Churn.Driver.leaves in
      C.row
        [
          C.cell_float ~w:5 ~prec:2 rate;
          ev_cell summary;
          C.cell_int ~w:7 (Churn.live_count st);
          C.cell_float ~w:7 ~prec:1 (per_event summary.Churn.Driver.cost.Churn.updates events);
          C.cell_float ~w:9 ~prec:1 (per_event summary.Churn.Driver.cost.Churn.refills events);
          C.cell_float ~w:10 ~prec:1 (per_event summary.Churn.Driver.cost.Churn.relabels events);
          C.cell_int ~w:8 (Churn.Overlay.backlog ov);
          C.cell_int ~w:6 (Churn.Overlay.stale_entries ov);
        ];
      if !Ron_obs.Telemetry.active then Ron_obs.Telemetry.tick ())
    rates;
  C.note "Beacons are fenced off the schedule (their rows are load-bearing); a";
  C.note "rejoining node re-derives k beacon distances plus its ball — per-event";
  C.note "work stays bounded by the event's footprint, independent of n.";
  C.note
    (Printf.sprintf "churn.rebuilds = %d (incremental repair only; must stay 0)"
       (Counter.value Probe.churn_rebuilds - rebuilds0))
