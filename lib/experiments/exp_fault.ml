module C = Exp_common
module Rng = Ron_util.Rng
module Graph_gen = Ron_graph.Graph_gen
module Sp_metric = Ron_graph.Sp_metric
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Basic = Ron_routing.Basic
module Labelled = Ron_routing.Labelled
module Two_mode = Ron_routing.Two_mode
module Fault = Ron_fault.Fault
module Meridian = Ron_smallworld.Meridian
module Counter = Ron_obs.Counter
module Probe = Ron_obs.Probe

(* One shared fault axis: at rate r, a fraction r of nodes crash, and both
   the per-hop drop coin and the dead-link coin fire at r/4. The model seed
   is fixed, so the whole sweep is a pure function of the code. *)
let rates = [ 0.0; 0.01; 0.02; 0.05; 0.1 ]

let fault_seed = 4242

let fault_for ~n rate =
  Fault.make ~seed:fault_seed ~crash_fraction:rate ~drop_rate:(rate /. 4.0)
    ~dead_link_fraction:(rate /. 4.0) ~n ()

type fault_counts = { detours : int; retries : int; injected : int }

let with_fault_counts f =
  let d0 = Counter.value Probe.fault_detours in
  let r0 = Counter.value Probe.fault_retries in
  let i0 =
    Counter.value Probe.fault_drops
    + Counter.value Probe.fault_crashed_hits
    + Counter.value Probe.fault_dead_links
  in
  let x = f () in
  let counts =
    {
      detours = Counter.value Probe.fault_detours - d0;
      retries = Counter.value Probe.fault_retries - r0;
      injected =
        Counter.value Probe.fault_drops
        + Counter.value Probe.fault_crashed_hits
        + Counter.value Probe.fault_dead_links
        - i0;
    }
  in
  (x, counts)

let live_pairs f pairs = List.filter (fun (u, v) -> not (Fault.crashed f u || Fault.crashed f v)) pairs

let sweep_header () =
  C.header
    [
      C.cell ~w:6 "rate"; C.cell ~w:7 "pairs"; C.cell ~w:10 "delivered"; C.cell ~w:9 "del.rate";
      C.cell ~w:11 "stretch mn"; C.cell ~w:9 "inflate"; C.cell ~w:9 "detour/q";
      C.cell ~w:9 "retry/q"; C.cell ~w:9 "faults";
    ]

let sweep_rows ~n ~route_wrapped ~dist ~parallel pairs =
  let base_stretch = ref nan in
  List.iter
    (fun rate ->
      let f = fault_for ~n rate in
      let pairs = live_pairs f pairs in
      let route ~query u v = route_wrapped (Fault.wrapper f ~query) ~src:u ~dst:v in
      let (q, fc) = with_fault_counts (fun () -> C.collect_routes_keyed ~parallel ~route ~dist pairs) in
      if Float.is_nan !base_stretch then base_stretch := q.C.stretch_mean;
      let nq = max 1 q.C.queries in
      let delivered = q.C.queries - q.C.failures in
      C.row
        [
          C.cell_float ~w:6 ~prec:2 rate;
          C.cell_int ~w:7 q.C.queries;
          C.cell_int ~w:10 delivered;
          C.cell_float ~w:9 (float_of_int delivered /. float_of_int nq);
          C.cell_float ~w:11 q.C.stretch_mean;
          C.cell_float ~w:9 (q.C.stretch_mean /. !base_stretch);
          C.cell_float ~w:9 (float_of_int fc.detours /. float_of_int nq);
          C.cell_float ~w:9 (float_of_int fc.retries /. float_of_int nq);
          C.cell_int ~w:9 fc.injected;
        ];
      if q.C.failures > 0 then C.note (C.pp_observed q);
      if !Ron_obs.Telemetry.active then Ron_obs.Telemetry.tick ())
    rates

let run () =
  C.section "FAULT"
    "Graceful degradation: routing and object location under injected faults";
  let rng = Rng.create 77 in

  let sp = Sp_metric.create (Graph_gen.grid 10 10) in
  let n = Ron_graph.Graph.size (Sp_metric.graph sp) in
  let pairs = C.sample_pairs (Rng.split rng) ~n ~count:500 in
  let dist u v = Sp_metric.dist sp u v in

  C.subsection "Thm 2.1 (Basic) on grid10x10: crashed nodes + message drop + dead links";
  let b = Basic.build sp ~delta:0.25 in
  sweep_header ();
  sweep_rows ~n ~parallel:true
    ~route_wrapped:(fun w ~src ~dst -> Basic.route_wrapped w b ~src ~dst)
    ~dist pairs;
  C.note "Detours re-aim the packet at another zooming level's intermediate";
  C.note "target; delivery degrades gracefully while stretch inflates mildly.";

  C.subsection "Thm 4.1 (Labelled) on grid10x10: same fault axis";
  let l = Labelled.build sp ~delta:0.25 in
  sweep_header ();
  sweep_rows ~n ~parallel:true
    ~route_wrapped:(fun w ~src ~dst -> Labelled.route_wrapped w l ~src ~dst)
    ~dist pairs;
  C.note "Fallbacks are the next-best neighbors by labeled estimate, so a dead";
  C.note "primary hop costs one re-ranking, not the query.";

  C.subsection "Thm 4.2 (Two-mode) on grid8x8: same fault axis (sequential routes)";
  let idx8 = Indexed.create (Generators.grid2d 8 8) in
  let n8 = Indexed.size idx8 in
  let tm = Two_mode.build idx8 ~delta:0.125 in
  let pairs8 = C.sample_pairs (Rng.split rng) ~n:n8 ~count:300 in
  sweep_header ();
  sweep_rows ~n:n8 ~parallel:false
    ~route_wrapped:(fun w ~src ~dst -> Two_mode.route_wrapped w tm ~src ~dst)
    ~dist:(fun u v -> Indexed.dist idx8 u v)
    pairs8;
  C.note "M2 directories offer natural redundancy: any member of a scale-i";
  C.note "directory (i >= 2) can stand in for a crashed owner.";

  C.subsection "Meridian closest-node queries under the same fault axis";
  let idxm =
    Indexed.create
      (Generators.clustered_latency (Rng.split rng) ~clusters:6 ~per_cluster:30 ~spread:30.0
         ~access:6.0)
  in
  let nm = Indexed.size idxm in
  let perm = Array.init nm Fun.id in
  Rng.shuffle rng perm;
  let cut = nm / 5 in
  let targets = Array.sub perm 0 cut and members = Array.sub perm cut (nm - cut) in
  let t = Meridian.build idxm (Rng.split rng) ~ring_size:8 ~members in
  let starts = Array.map (fun _ -> members.(Rng.int rng (Array.length members))) targets in
  C.header
    [
      C.cell ~w:6 "rate"; C.cell ~w:8 "queries"; C.cell ~w:11 "exact hits";
      C.cell ~w:12 "worst ratio"; C.cell ~w:10 "probes mn"; C.cell ~w:9 "faults";
    ];
  List.iter
    (fun rate ->
      let f = fault_for ~n:nm rate in
      let exact = ref 0 and total = ref 0 and ratio = ref 1.0 and probes = ref 0 in
      let ((), fc) =
        with_fault_counts (fun () ->
            let was_on = !Probe.on in
            Probe.on := true;
            Fun.protect
              ~finally:(fun () -> Probe.on := was_on)
              (fun () ->
                Array.iteri
                  (fun i tgt ->
                    let start = starts.(i) in
                    if not (Fault.crashed f start || Fault.crashed f tgt) then begin
                      let r = Meridian.closest ~fault:(f, i) t ~start ~target:tgt in
                      let truth = Meridian.exact_closest t tgt in
                      incr total;
                      probes := !probes + r.Meridian.measurements;
                      if r.Meridian.found = truth then incr exact
                      else begin
                        let a = Indexed.dist idxm r.Meridian.found tgt
                        and b = Indexed.dist idxm truth tgt in
                        ratio := Float.max !ratio (a /. Float.max b 1e-12)
                      end
                    end)
                  targets))
      in
      C.row
        [
          C.cell_float ~w:6 ~prec:2 rate;
          C.cell_int ~w:8 !total;
          C.cell ~w:11 (Printf.sprintf "%d/%d" !exact !total);
          C.cell_float ~w:12 !ratio;
          C.cell_float ~w:10 ~prec:1 (float_of_int !probes /. float_of_int (max 1 !total));
          C.cell_int ~w:9 fc.injected;
        ])
    rates;
  C.note "Invisible (crashed/unreachable/dropped) ring members are skipped and the";
  C.note "walk advances through the rest of the ring — the query settles on a";
  C.note "slightly worse member instead of failing: rings are their own fallback."
