module C = Exp_common
module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Metric = Ron_metric.Metric
module On_metric = Ron_routing.On_metric

let max_arr = Array.fold_left max 0

let metric_row name m rng =
  let idx = Indexed.create m in
  let n = Indexed.size idx in
  let s = On_metric.build idx ~delta:0.25 in
  let pairs = C.sample_pairs rng ~n ~count:800 in
  let q =
    C.collect_routes
      ~route:(fun u v -> On_metric.route s ~src:u ~dst:v)
      ~dist:(fun u v -> Indexed.dist idx u v)
      pairs
  in
  C.row
    [
      C.cell ~w:14 name; C.cell_int ~w:6 n;
      C.cell_int ~w:8 (Indexed.log2_aspect_ratio idx);
      C.cell_int ~w:8 (On_metric.out_degree s);
      C.cell_float ~w:9 ~prec:1 (On_metric.mean_out_degree s);
      C.cell_int ~w:10 (max_arr (On_metric.table_bits s));
      C.cell_int ~w:9 (On_metric.header_bits s);
      C.cell_float ~w:8 q.C.stretch_max;
      C.cell_int ~w:6 q.C.hops_max;
      C.cell_int ~w:6 q.C.failures;
    ];
  C.note (C.pp_observed q)

let run () =
  C.section "T2" "Table 2: (1+delta)-stretch routing schemes on doubling metrics";
  let rng = Rng.create 202 in
  C.header
    [
      C.cell ~w:14 "metric"; C.cell ~w:6 "n"; C.cell ~w:8 "log2(D)";
      C.cell ~w:8 "deg max"; C.cell ~w:9 "deg mean"; C.cell ~w:10 "tbl bits";
      C.cell ~w:9 "hdr bits"; C.cell ~w:8 "stretch"; C.cell ~w:6 "hops"; C.cell ~w:6 "fails";
    ];
  metric_row "grid10x10" (Generators.grid2d 10 10) (Rng.split rng);
  metric_row "cloud200" (Generators.random_cloud (Rng.split rng) ~n:200 ~dim:2) (Rng.split rng);
  metric_row "cloud200d3" (Generators.random_cloud (Rng.split rng) ~n:200 ~dim:3) (Rng.split rng);
  metric_row "expline28" (Generators.exponential_line 28) (Rng.split rng);
  metric_row "expclust8x16"
    (Generators.exponential_clusters (Rng.split rng) ~clusters:8 ~per_cluster:16 ~base:32.0)
    (Rng.split rng);
  metric_row "latency240"
    (Generators.clustered_latency (Rng.split rng) ~clusters:6 ~per_cluster:40 ~spread:30.0
       ~access:6.0)
    (Rng.split rng);
  C.subsection "Theorem 4.1 on metrics (Table 2 row 3): same out-degree, label-sized tables";
  C.header
    [
      C.cell ~w:14 "metric"; C.cell ~w:6 "n"; C.cell ~w:8 "deg max"; C.cell ~w:9 "deg mean";
      C.cell ~w:11 "tbl bits"; C.cell ~w:10 "hdr bits"; C.cell ~w:8 "stretch"; C.cell ~w:6 "fails";
    ];
  List.iter
    (fun (name, m) ->
      let idx = Indexed.create m in
      let n = Indexed.size idx in
      let s = Ron_routing.Labelled_m.build idx ~delta:0.25 in
      let pairs = C.sample_pairs (Rng.split rng) ~n ~count:500 in
      let q =
        C.collect_routes
          ~route:(fun u v -> Ron_routing.Labelled_m.route s ~src:u ~dst:v)
          ~dist:(fun u v -> Indexed.dist idx u v)
          pairs
      in
      C.row
        [
          C.cell ~w:14 name; C.cell_int ~w:6 n;
          C.cell_int ~w:8 (Ron_routing.Labelled_m.out_degree s);
          C.cell_float ~w:9 ~prec:1 (Ron_routing.Labelled_m.mean_out_degree s);
          C.cell_int ~w:11 (max_arr (Ron_routing.Labelled_m.table_bits s));
          C.cell_int ~w:10 (Ron_routing.Labelled_m.header_bits s);
          C.cell_float ~w:8 q.C.stretch_max;
          C.cell_int ~w:6 q.C.failures;
        ])
    [
      ("grid8x8", Generators.grid2d 8 8);
      ("expline24", Generators.exponential_line 24);
      ("expclust6x12",
       Generators.exponential_clusters (Rng.split rng) ~clusters:6 ~per_cluster:12 ~base:64.0);
    ];
  C.note "Table 2's Thm 2.1 row: out-degree (1/delta)^O(alpha) log Delta, table bits";
  C.note "(1/delta)^O(alpha) phi log Delta, header O(alpha log(1/delta)) log Delta.";
  C.note "Out-degree on expline28 tracks log Delta with a small constant (the rings";
  C.note "of an exponential line hold O(1) net points each); hop counts stay at most";
  C.note "the number of scales because every hop jumps straight to the next";
  C.note "intermediate target over an overlay link."
