module C = Exp_common
module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Metric = Ron_metric.Metric
module Two_mode = Ron_routing.Two_mode

let max_arr = Array.fold_left max 0
let mean_arr a =
  float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int (max 1 (Array.length a))

let run () =
  C.section "T3" "Table 3: Theorem 4.2/B.1's two routing modes (metric form)";
  let rng = Rng.create 303 in
  C.header
    [
      C.cell ~w:14 "metric"; C.cell ~w:6 "n"; C.cell ~w:11 "M1 bits max";
      C.cell ~w:11 "M2 bits max"; C.cell ~w:11 "M2 bits avg"; C.cell ~w:9 "hdr bits";
      C.cell ~w:8 "stretch"; C.cell ~w:9 "switches"; C.cell ~w:6 "fails";
    ];
  List.iter
    (fun (name, m) ->
      let idx = Indexed.create m in
      let n = Indexed.size idx in
      let tm = Two_mode.build idx ~delta:0.125 in
      Two_mode.reset_counters tm;
      let pairs = C.sample_pairs (Rng.split rng) ~n ~count:600 in
      (* Two_mode.route counts mode switches in shared state: sequential. *)
      let q =
        C.collect_routes ~parallel:false
          ~route:(fun u v -> Two_mode.route tm ~src:u ~dst:v)
          ~dist:(fun u v -> Indexed.dist idx u v)
          pairs
      in
      C.row
        [
          C.cell ~w:14 name; C.cell_int ~w:6 n;
          C.cell_int ~w:11 (max_arr (Two_mode.table_bits_m1 tm));
          C.cell_int ~w:11 (max_arr (Two_mode.table_bits_m2 tm));
          C.cell_float ~w:11 ~prec:0 (mean_arr (Two_mode.table_bits_m2 tm));
          C.cell_int ~w:9 (Two_mode.header_bits tm);
          C.cell_float ~w:8 q.C.stretch_max;
          C.cell_int ~w:9 (Two_mode.mode2_switches tm);
          C.cell_int ~w:6 q.C.failures;
        ];
      C.note (C.pp_observed q))
    [
      ("grid8x8", Generators.grid2d 8 8);
      ("cloud120", Generators.random_cloud (Rng.split rng) ~n:120 ~dim:2);
      ("expline24", Generators.exponential_line 24);
      ("expclust6x16",
       Generators.exponential_clusters (Rng.split rng) ~clusters:6 ~per_cluster:16 ~base:64.0);
    ];
  C.subsection "the Theorem 4.2 hypothesis measured: N_delta on real topologies";
  (* The graph form of the theorem assumes (1+delta)-stretch paths with at
     most N_delta ~ k log n hops ("a natural property of a good network
     topology"); we measure N_delta with hop-bounded Bellman-Ford. *)
  C.header
    [
      C.cell ~w:14 "graph"; C.cell ~w:6 "n"; C.cell ~w:9 "log2 n";
      C.cell ~w:14 "N_d (d=1/8)"; C.cell ~w:14 "N_d (d=1/4)";
    ];
  List.iter
    (fun (name, g) ->
      let sp = Ron_graph.Sp_metric.create g in
      let n = Ron_graph.Graph.size g in
      C.row
        [
          C.cell ~w:14 name; C.cell_int ~w:6 n;
          C.cell_int ~w:9 (Ron_util.Bits.ilog2_ceil (max 2 n));
          C.cell_int ~w:14 (Ron_graph.Hop_paths.n_delta sp ~stretch:1.125);
          C.cell_int ~w:14 (Ron_graph.Hop_paths.n_delta sp ~stretch:1.25);
        ])
    [
      ("grid10x10", Ron_graph.Graph_gen.grid 10 10);
      ("geo120", Ron_graph.Graph_gen.random_geometric (Rng.split rng) ~n:120 ~radius:0.15);
      ("ring64+chords", Ron_graph.Graph_gen.ring_with_chords (Rng.split rng) ~n:64 ~chords:40);
      ("expline20", Ron_graph.Graph_gen.exponential_line_graph 20);
    ];
  C.note "On these topologies N_delta sits at roughly the hop diameter (unit-edge";
  C.note "graphs have no hop shortcuts to buy with stretch), i.e. N_delta ~ 2-3x";
  C.note "log2 n here and growing slowly with n. The theorem's hypothesis asks for";
  C.note "hop-efficient shortcut structure; the metric form of the scheme (used";
  C.note "above) needs no such assumption, which is why we implement that form.";

  C.subsection "forcing mode M2 (strict M1 threshold): the directories must deliver";
  C.header
    [
      C.cell ~w:14 "threshold"; C.cell ~w:8 "stretch"; C.cell ~w:9 "hops max";
      C.cell ~w:9 "switches"; C.cell ~w:6 "fails";
    ];
  let idx =
    Indexed.create
      (Generators.exponential_clusters (Rng.split rng) ~clusters:12 ~per_cluster:8 ~base:64.0)
  in
  let n = Indexed.size idx in
  List.iter
    (fun thr ->
      let tm = Two_mode.build ~m1_threshold:thr idx ~delta:0.125 in
      Two_mode.reset_counters tm;
      let pairs = C.sample_pairs (Rng.split rng) ~n ~count:600 in
      let q =
        C.collect_routes ~parallel:false
          ~route:(fun u v -> Two_mode.route tm ~src:u ~dst:v)
          ~dist:(fun u v -> Indexed.dist idx u v)
          pairs
      in
      C.row
        [
          C.cell_float ~w:14 thr; C.cell_float ~w:8 q.C.stretch_max;
          C.cell_int ~w:9 q.C.hops_max; C.cell_int ~w:9 (Two_mode.mode2_switches tm);
          C.cell_int ~w:6 q.C.failures;
        ])
    [ 0.333; 0.05; 0.005 ];
  C.note "With a strict threshold M1 gives up early and the packing-ball";
  C.note "directories carry the packet (hub -> owner -> target): delivery stays";
  C.note "perfect and the detour stays bounded, at the cost of extra stretch —";
  C.note "the behaviour the Appendix B analysis prices at O(delta * d).";
  C.note "";
  C.note "Table 3's shape: M1 storage is label-sized; M2 storage is a per-node";
  C.note "constant number of direct routes per cardinality scale (2^O(alpha) log n";
  C.note "routes; in the metric form each route is one link id). 'switches' counts";
  C.note "M1->M2 transitions across the sampled routes: M2 is the rare escape";
  C.note "hatch, not the common path."
