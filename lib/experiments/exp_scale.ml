module C = Exp_common
module Rng = Ron_util.Rng
module Graph = Ron_graph.Graph
module Graph_gen = Ron_graph.Graph_gen
module Sp_metric = Ron_graph.Sp_metric
module Landmark = Ron_labeling.Landmark

(* The scaling regime: everything here must stay near-linear in n. The
   shortest-path ground truth goes through the on-demand oracle (no n^2
   matrix), stretch is measured on a seeded pair sample (no n^2 sweep),
   and the scheme under test is the landmark + local-ball labeling — the
   one construction in the repo with no quadratic term.

   Output discipline: only deterministic quantities are printed (label
   bits, ball sizes, sampled stretch). Wall times and RSS belong to the
   bench JSON report ("scale" section), not here, so this experiment's
   stdout is byte-identical across machines, reruns, and RON_JOBS. *)

let default_sizes = [ 1024; 4096; 10_000 ]

(* RON_SCALE_SIZES=100000,1000000 runs the big sweep without recompiling;
   the committed expectation files use the default. *)
let sizes () =
  match Sys.getenv_opt "RON_SCALE_SIZES" with
  | None | Some "" -> default_sizes
  | Some s ->
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
    |> List.map (fun x ->
           match int_of_string_opt x with
           | Some n when n >= 4 -> n
           | _ -> failwith (Printf.sprintf "bad RON_SCALE_SIZES entry %S" x))

let beacons_for n = max 4 (min 32 (1 + Ron_util.Bits.ilog2_floor n))

type point = {
  n : int;
  arcs : int;
  k : int;
  ball_mean : float;
  ball_max : int;
  bits_mean : float;
  bits_max : int;
  exact : int;
  pairs : int;
  hi_mean : float;
  hi_max : float;
  lo_mean : float;
}

let measure n =
  let side = max 2 (int_of_float (Float.round (sqrt (float_of_int n)))) in
  let g = Graph_gen.torus side side in
  let nn = Graph.size g in
  let sp = Sp_metric.create g in
  let lm = Landmark.build sp (Rng.create 97) ~k:(beacons_for nn) ~local_radius:2.0 in
  let truth = Sp_metric.sample_ground_truth sp ~seed:1009 ~count:500 in
  let exact = ref 0 and hi_sum = ref 0.0 and hi_max = ref 1.0 and lo_sum = ref 0.0 in
  Array.iter
    (fun (u, v, d) ->
      let lo, hi = Landmark.estimate lm u v in
      if Float.equal lo hi then incr exact;
      let rhi = hi /. d and rlo = lo /. d in
      hi_sum := !hi_sum +. rhi;
      lo_sum := !lo_sum +. rlo;
      hi_max := Float.max !hi_max rhi)
    truth;
  let bits = Landmark.label_bits lm in
  let bits_max = Array.fold_left max 0 bits in
  let bits_mean =
    float_of_int (Array.fold_left ( + ) 0 bits) /. float_of_int nn
  in
  let ball_sum = ref 0 and ball_max = ref 0 in
  for u = 0 to nn - 1 do
    let b = Landmark.ball_size lm u in
    ball_sum := !ball_sum + b;
    ball_max := max !ball_max b;
    if !Ron_obs.Telemetry.active then Ron_obs.Telemetry.tick ()
  done;
  let pairs = Array.length truth in
  {
    n = nn;
    arcs = 2 * Graph.edge_count g;
    k = Landmark.order lm;
    ball_mean = float_of_int !ball_sum /. float_of_int nn;
    ball_max = !ball_max;
    bits_mean;
    bits_max;
    exact = !exact;
    pairs;
    hi_mean = !hi_sum /. float_of_int pairs;
    hi_max = !hi_max;
    lo_mean = !lo_sum /. float_of_int pairs;
  }

let run () =
  C.section "SCALE"
    "Million-node regime: landmark + local-ball labels over the on-demand oracle";
  C.note "Torus graphs (unit weights, side = round(sqrt n)); beacons k = min(32,";
  C.note "1 + floor(log2 n)); local balls of radius 2. Stretch: 500 seeded sample";
  C.note "pairs against oracle ground truth (no all-pairs matrix is ever built).";
  C.header
    [
      C.cell ~w:9 "n"; C.cell ~w:9 "arcs"; C.cell ~w:4 "k"; C.cell ~w:8 "ball mn";
      C.cell ~w:8 "ball mx"; C.cell ~w:10 "bits/node"; C.cell ~w:9 "bits max";
      C.cell ~w:9 "exact"; C.cell ~w:8 "lo mn"; C.cell ~w:8 "hi mn"; C.cell ~w:8 "hi max";
    ];
  List.iter
    (fun n ->
      let p = measure n in
      C.row
        [
          C.cell_int ~w:9 p.n;
          C.cell_int ~w:9 p.arcs;
          C.cell_int ~w:4 p.k;
          C.cell_float ~w:8 ~prec:2 p.ball_mean;
          C.cell_int ~w:8 p.ball_max;
          C.cell_float ~w:10 ~prec:1 p.bits_mean;
          C.cell_int ~w:9 p.bits_max;
          C.cell ~w:9 (Printf.sprintf "%d/%d" p.exact p.pairs);
          C.cell_float ~w:8 p.lo_mean;
          C.cell_float ~w:8 p.hi_mean;
          C.cell_float ~w:8 p.hi_max;
        ])
    (sizes ());
  C.note "lo <= d <= hi always (landmark sandwich); lo = hi on in-ball and";
  C.note "beacon-endpoint pairs. Label bits grow as O(k log n + ball), not O(n).";
  C.note "Construction wall times and peak RSS for this regime live in the bench";
  C.note "JSON report's \"scale\" section (see EXPERIMENTS.md, Scaling)."
