module C = Exp_common
module Rng = Ron_util.Rng
module Graph = Ron_graph.Graph
module Graph_gen = Ron_graph.Graph_gen
module Sp_metric = Ron_graph.Sp_metric
module Basic = Ron_routing.Basic
module Labelled = Ron_routing.Labelled
module Full_table = Ron_routing.Full_table

let max_arr = Array.fold_left max 0
let mean_arr a = float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int (Array.length a)

let graph_row name sp ~delta ~with_labelled rng =
  let n = Graph.size (Sp_metric.graph sp) in
  let pairs = C.sample_pairs rng ~n ~count:800 in
  let dist u v = Sp_metric.dist sp u v in
  (* Baseline. *)
  let ft = Full_table.build sp in
  let q0 = C.collect_routes ~route:(fun u v -> Full_table.route ft ~src:u ~dst:v) ~dist pairs in
  C.row
    [
      C.cell ~w:14 name; C.cell ~w:10 "trivial"; C.cell_int ~w:6 n;
      C.cell_int ~w:10 (max_arr (Full_table.table_bits ft));
      C.cell_int ~w:10 (Full_table.header_bits ft);
      C.cell_float ~w:8 q0.C.stretch_max; C.cell_int ~w:6 q0.C.failures;
    ];
  (* Theorem 2.1. *)
  let b = Basic.build sp ~delta in
  let q1 = C.collect_routes ~route:(fun u v -> Basic.route b ~src:u ~dst:v) ~dist pairs in
  C.row
    [
      C.cell ~w:14 name; C.cell ~w:10 "thm2.1"; C.cell_int ~w:6 n;
      C.cell_int ~w:10 (max_arr (Basic.table_bits b));
      C.cell_int ~w:10 (Basic.header_bits b);
      C.cell_float ~w:8 q1.C.stretch_max; C.cell_int ~w:6 q1.C.failures;
    ];
  C.note (C.pp_observed q1);
  (* Theorem 4.1 (expensive at larger n: the black-box DLS construction). *)
  if with_labelled then begin
    let l = Labelled.build sp ~delta in
    let q2 = C.collect_routes ~route:(fun u v -> Labelled.route l ~src:u ~dst:v) ~dist pairs in
    C.row
      [
        C.cell ~w:14 name; C.cell ~w:10 "thm4.1"; C.cell_int ~w:6 n;
        C.cell_int ~w:10 (max_arr (Labelled.table_bits l));
        C.cell_int ~w:10 (Labelled.header_bits l);
        C.cell_float ~w:8 q2.C.stretch_max; C.cell_int ~w:6 q2.C.failures;
      ]
  end

let run () =
  C.section "T1" "Table 1: (1+delta)-stretch routing schemes on doubling graphs";
  let delta = 0.25 in
  let rng = Rng.create 101 in
  C.header
    [
      C.cell ~w:14 "graph"; C.cell ~w:10 "scheme"; C.cell ~w:6 "n";
      C.cell ~w:10 "tbl bits"; C.cell ~w:10 "hdr bits"; C.cell ~w:8 "stretch";
      C.cell ~w:6 "fails";
    ];
  graph_row "grid8x8" (Sp_metric.create (Graph_gen.grid 8 8)) ~delta ~with_labelled:true
    (Rng.split rng);
  graph_row "grid12x12" (Sp_metric.create (Graph_gen.grid 12 12)) ~delta ~with_labelled:false
    (Rng.split rng);
  graph_row "geo100"
    (Sp_metric.create (Graph_gen.random_geometric (Rng.split rng) ~n:100 ~radius:0.16))
    ~delta ~with_labelled:true (Rng.split rng);
  graph_row "geo225"
    (Sp_metric.create (Graph_gen.random_geometric (Rng.split rng) ~n:225 ~radius:0.11))
    ~delta ~with_labelled:false (Rng.split rng);
  graph_row "expline24" (Sp_metric.create (Graph_gen.exponential_line_graph 24)) ~delta
    ~with_labelled:true (Rng.split rng);
  C.note "Paper's shape: stretch <= 1+O(delta) always (trivial is exactly 1);";
  C.note "Thm 2.1 header/label bits ~ (log Delta)(log K), independent of n;";
  C.note "Thm 4.1 header ~ DLS label: (log n)(log log Delta) asymptotically, but its";
  C.note "constants ((1/delta)^O(alpha)) dominate at these n — see E-4.1 for the";
  C.note "Delta-scaling that Table 1 row 4 is actually about.";
  (* Header-vs-log-Delta scaling on exponential-line graphs: the (log Delta)
     factor of Thm 2.1's header is visible directly. *)
  C.subsection "Thm 2.1 header bits vs log2(Delta) (exponential-line graphs)";
  C.header [ C.cell ~w:8 "n"; C.cell ~w:10 "log2(D)"; C.cell ~w:12 "hdr bits"; C.cell ~w:12 "tbl bits" ];
  List.iter
    (fun n ->
      let sp = Sp_metric.create (Graph_gen.exponential_line_graph n) in
      let b = Basic.build sp ~delta in
      let idx = Ron_metric.Indexed.create (Sp_metric.metric sp) in
      C.row
        [
          C.cell_int ~w:8 n;
          C.cell_int ~w:10 (Ron_metric.Indexed.log2_aspect_ratio idx);
          C.cell_int ~w:12 (Basic.header_bits b);
          C.cell_int ~w:12 (max_arr (Basic.table_bits b));
        ])
    [ 12; 18; 24; 30; 36 ];
  C.note "header grows linearly in log Delta (one ring index per scale), as the";
  C.note (Printf.sprintf "table's O(alpha log(1/delta) log Delta) row predicts; mean table bits also");
  ignore mean_arr;
  C.note "track (1/delta)^O(alpha) log Delta."
