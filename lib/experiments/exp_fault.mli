(** Fault-tolerance experiment: sweep the fault rate (crashed nodes,
    per-hop message drop, dead links — one shared axis) against each
    routing scheme and the Meridian object-location walk, reporting
    delivery rate, stretch inflation, and detour/retry costs. The sweep is
    a pure function of its fixed seeds: output is byte-identical across
    [RON_JOBS] settings and reruns. *)

val run : unit -> unit
