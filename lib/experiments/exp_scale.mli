(** Scaling experiment: the landmark + local-ball labeling built over the
    on-demand shortest-path oracle, measured on tori of growing size with
    sampled (never all-pairs) stretch. Prints only deterministic
    quantities — label bits, ball sizes, sampled lo/hi stretch — so the
    output is byte-identical across reruns and [RON_JOBS]; wall-clock and
    memory for the same regime are reported by the bench JSON "scale"
    section. [RON_SCALE_SIZES] (comma-separated node counts) overrides the
    default sweep. *)

val run : unit -> unit
