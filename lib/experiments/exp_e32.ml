module C = Exp_common
module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Metric = Ron_metric.Metric
module Triangulation = Ron_labeling.Triangulation
module Beacon = Ron_labeling.Beacon

(* All-pairs quality of a triangulation. The per-source scans are
   independent (Triangulation.estimate is pure), so sources run in
   parallel; the per-source partials combine with max / integer sums, which
   are order-insensitive, so the totals match a sequential run exactly. *)
let quality tri idx delta =
  let n = Indexed.size idx in
  let partials =
    Ron_util.Pool.init n (fun u ->
        let worst_plus = ref 0.0 and worst_ratio = ref 0.0 and bad = ref 0 and total = ref 0 in
        for v = u + 1 to n - 1 do
          incr total;
          match Triangulation.estimate tri u v with
          | (lo, hi) ->
            let d = Indexed.dist idx u v in
            worst_plus := Float.max !worst_plus (hi /. d);
            if lo > 0.0 then worst_ratio := Float.max !worst_ratio (hi /. lo) else incr bad;
            if lo > 0.0 && hi /. lo > 1.0 +. (2.0 *. delta) then incr bad
          | exception Failure _ -> incr bad
        done;
        (!worst_plus, !worst_ratio, !bad, !total))
  in
  Array.fold_left
    (fun (wp, wr, bad, total) (wp', wr', bad', total') ->
      (Float.max wp wp', Float.max wr wr', bad + bad', total + total'))
    (0.0, 0.0, 0, 0) partials

let run () =
  C.section "E-3.2" "Theorem 3.2: (0,delta)-triangulation vs the (eps,delta) beacon baseline";
  let delta = 0.25 in
  let rng = Rng.create 32 in

  C.subsection "zero bad pairs across metric families (delta = 0.25)";
  C.header
    [
      C.cell ~w:14 "metric"; C.cell ~w:6 "n"; C.cell ~w:7 "order";
      C.cell ~w:10 "D+/d max"; C.cell ~w:10 "D+/D- max"; C.cell ~w:12 "bound 1+2d";
      C.cell ~w:10 "bad pairs";
    ];
  List.iter
    (fun (name, m) ->
      let idx = Indexed.create m in
      let tri = Triangulation.build idx ~delta in
      let (wp, wr, bad, total) = quality tri idx delta in
      C.row
        [
          C.cell ~w:14 name; C.cell_int ~w:6 (Indexed.size idx);
          C.cell_int ~w:7 (Triangulation.order tri);
          C.cell_float ~w:10 wp; C.cell_float ~w:10 wr;
          C.cell_float ~w:12 (1.0 +. (2.0 *. delta));
          C.cell ~w:10 (Printf.sprintf "%d/%d" bad total);
        ])
    [
      ("grid9x9", Generators.grid2d 9 9);
      ("cloud150", Generators.random_cloud (Rng.split rng) ~n:150 ~dim:2);
      ("expline24", Generators.exponential_line 24);
      ("latency180",
       Generators.clustered_latency (Rng.split rng) ~clusters:6 ~per_cluster:30 ~spread:30.0
         ~access:6.0);
      ("expclust", Generators.exponential_clusters (Rng.split rng) ~clusters:10 ~per_cluster:16 ~base:16.0);
    ];

  C.subsection "the baseline's flaw: common beacons leave an eps-fraction uncertified";
  C.header [ C.cell ~w:14 "metric"; C.cell ~w:10 "k beacons"; C.cell ~w:22 "pairs w/o guarantee" ];
  let idx = Indexed.create (Metric.normalize (Generators.uniform_line 200)) in
  List.iter
    (fun k ->
      let b = Beacon.build idx (Rng.split rng) ~k in
      C.row
        [
          C.cell ~w:14 "line200"; C.cell_int ~w:10 k;
          C.cell ~w:22 (Printf.sprintf "%.2f%%" (100.0 *. Beacon.bad_fraction b ~delta:(2.0 *. delta)));
        ])
    [ 2; 8; 32; 128 ];
  C.note "Theorem 3.2's rows above have 0 bad pairs by construction; the shared-";
  C.note "beacon scheme keeps a positive bad fraction even with many beacons.";

  C.subsection "order vs n (uniform lines, delta=0.45): paper predicts O_alpha,delta(log n)";
  C.header
    [
      C.cell ~w:8 "n"; C.cell ~w:16 "order (paper)"; C.cell ~w:16 "order (rf=2,nd=1)";
      C.cell ~w:16 "order (rf=1,nd=.5)";
    ];
  List.iter
    (fun n ->
      let idx = Indexed.create (Metric.normalize (Generators.uniform_line n)) in
      let t_paper = Triangulation.build idx ~delta:0.45 in
      let t_mid = Triangulation.build ~radius_factor:2.0 ~net_divisor:1.0 idx ~delta:0.45 in
      let t_tight = Triangulation.build ~radius_factor:1.0 ~net_divisor:0.5 idx ~delta:0.45 in
      C.row
        [
          C.cell_int ~w:8 n;
          C.cell_int ~w:16 (Triangulation.order t_paper);
          C.cell_int ~w:16 (Triangulation.order t_mid);
          C.cell_int ~w:16 (Triangulation.order t_tight);
        ])
    [ 64; 128; 256; 512; 1024 ];
  C.note "With the paper's constants (radius 12r/delta, net spacing delta r/4) the";
  C.note "order saturates at n until n >> (96/delta^2)^alpha — the theory constants";
  C.note "are astronomical at laptop scale. Tightened constants expose the log n";
  C.note "shape; the ablation below confirms how much accuracy margin they cost.";

  C.subsection "Section 6 diagnostic: size-scale / distance-scale alignment";
  (* The paper's closing intuition for an Omega(log n) triangulation lower
     bound: around each node there are ~log n cardinality scales; when their
     radii are spread over distinct distance scales, a reasonable label
     should pay at least one beacon per scale. We measure, per metric, the
     mean number of distinct distance octaves among {r_ui} and compare with
     the measured order. *)
  C.header
    [
      C.cell ~w:14 "metric"; C.cell ~w:9 "log2 n"; C.cell ~w:16 "aligned scales";
      C.cell ~w:16 "order (tight)";
    ];
  List.iter
    (fun (name, m) ->
      let idxm = Indexed.create m in
      let n = Indexed.size idxm in
      let li = Indexed.log2_size idxm + 1 in
      let total = ref 0 in
      for u = 0 to n - 1 do
        let octaves = Hashtbl.create 16 in
        for i = 0 to li - 1 do
          let r = Indexed.r_level idxm u i in
          if r > 0.0 then
            Hashtbl.replace octaves (int_of_float (Float.floor (Ron_util.Bits.flog2 r))) ()
        done;
        total := !total + Hashtbl.length octaves
      done;
      let tight = Triangulation.build ~radius_factor:2.0 ~net_divisor:1.0 idxm ~delta:0.45 in
      C.row
        [
          C.cell ~w:14 name; C.cell_int ~w:9 (Indexed.log2_size idxm);
          C.cell_float ~w:16 ~prec:1 (float_of_int !total /. float_of_int n);
          C.cell_int ~w:16 (Triangulation.order tight);
        ])
    [
      ("line512", Metric.normalize (Generators.uniform_line 512));
      ("expline24", Generators.exponential_line 24);
      ("expclust", Generators.exponential_clusters (Rng.split rng) ~clusters:10 ~per_cluster:16 ~base:16.0);
    ];
  C.note "Even the tightened construction pays well above one beacon per aligned";
  C.note "scale — consistent with the paper's conjecture that sub-logarithmic";
  C.note "order would be very surprising.";

  C.subsection "constant ablation on cloud150 (delta=0.45): order vs worst D+/D-";
  C.header
    [
      C.cell ~w:18 "constants"; C.cell ~w:7 "order"; C.cell ~w:10 "D+/d max";
      C.cell ~w:10 "D+/D- max"; C.cell ~w:10 "bad pairs";
    ];
  let idx = Indexed.create (Generators.random_cloud (Rng.split rng) ~n:150 ~dim:2) in
  List.iter
    (fun (label, rf, nd) ->
      let tri = Triangulation.build ~radius_factor:rf ~net_divisor:nd idx ~delta:0.45 in
      let (wp, wr, bad, total) = quality tri idx 0.45 in
      C.row
        [
          C.cell ~w:18 label; C.cell_int ~w:7 (Triangulation.order tri);
          C.cell_float ~w:10 wp; C.cell_float ~w:10 wr;
          C.cell ~w:10 (Printf.sprintf "%d/%d" bad total);
        ])
    [
      ("paper (12, 4)", 12.0, 4.0);
      ("(4, 2)", 4.0, 2.0);
      ("(2, 1)", 2.0, 1.0);
      ("(1, 0.5)", 1.0, 0.5);
      ("(0.5, 0.25)", 0.5, 0.25);
    ]
