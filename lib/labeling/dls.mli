(** (1 + delta)-approximate distance labeling without global identifiers
    (Theorem 3.4): [(O(1/delta))^O(alpha) (log n)(log log Delta)] bits per
    label.

    The scheme elaborates the Theorem 3.2 triangulation: the label of [u]
    stores quantized distances to [u]'s X/Y-beacons indexed by [u]'s host
    enumeration, the translation functions [zeta_ui], and [u]'s zooming
    sequence encoded through {e virtual} enumerations. Virtual neighbors
    [T_u = X_u ∪ Z_u ∪ (∪_{v in X_u} Z_v)], with
    [Z_uj = B_u(2^j) ∩ G_(log2 (2^j delta / 64))], exist only to give
    consecutive zooming elements (and the final common beacon) decodable
    pointers (Claim 3.5).

    {b Decoding uses only the two labels}: [estimate] never touches the
    metric. It walks both zooming sequences through both labels' translation
    maps (the Claim 2.2 walk), joining the maps' [(f, .)] entries on the
    shared virtual indices to identify common beacons, and returns the best
    [D+] upper bound. The proof guarantees a common beacon within
    [delta * d] of one endpoint is identified, so
    [estimate <= (1 + 2 delta)(1 + delta/8) d] and [estimate >= d]. *)

type t
(** A built scheme (the centralized constructor's view). *)

type label
(** A self-contained node label. *)

val build : ?z_divisor:float -> Triangulation.t -> t
(** Build on top of a Theorem 3.2 triangulation (which fixes [delta], the
    packings and the net hierarchy). [z_divisor] (default 64, the paper's
    constant) sets the Z-ring net spacing [2^j delta / z_divisor]. *)

val triangulation : t -> Triangulation.t

val label : t -> int -> label
val label_of_id : label -> int
(** The node's global identifier (kept in the label as in the paper; used
    only for the [u = v] short-circuit, never for decoding). *)

val candidates : label -> label -> (int * int * float * float) list
(** [candidates l_u l_v]: the common beacons the label-only decoder can
    identify, as tuples [(i_u, i_v, d_u, d_v)] of the beacon's host index
    and quantized distance in each label. [estimate] is the minimum of
    [d_u + d_v] over this list. Empty only for labels from different
    schemes. Exposed for the Theorem 4.2 routing scheme, whose mode M1
    jumps to the identified beacon closest to the target. *)

val host_beacons : t -> int -> int array
(** [host_beacons t u]: node ids in [u]'s host-enumeration order, so that a
    candidate's [i_u] can be resolved to an address by node [u] (local
    knowledge: these are [u]'s own neighbors). *)

val estimate : label -> label -> float
(** [estimate l_u l_v]: a [D+] upper bound on [d(u,v)] computed from the two
    labels alone. Raises [Failure] if no common beacon can be identified —
    Theorem 3.4 proves this cannot happen on labels from one scheme; it
    does happen on labels from different schemes (failure injection). *)

val virtual_neighbors : t -> int -> int array
(** [T_u], for tests. *)

val zooming_sequence : t -> int -> int array
(** [f_ui] for [i = 0 .. levels-1], for tests. *)

(** {2 Wire format}

    Labels can be serialized to actual bitstrings, proving the storage
    claims byte-for-byte: the scheme-wide constants (field widths, the
    distance codec) form a {!wire_codec} that a deployment would ship once;
    each label is then a self-contained bitstring. Estimation from
    deserialized labels is bit-identical to estimation from built ones. *)

type wire_codec

val wire_codec : t -> wire_codec

val serialize : wire_codec -> label -> Bytes.t * int
(** [(bytes, bits)]: the encoded label and its exact bit length. *)

val deserialize : wire_codec -> Bytes.t -> label
(** Raises [Invalid_argument] on truncated or corrupt input that walks off
    the end of the bitstring. *)

val label_bits : t -> int array
(** Exact per-label storage: quantized distances, sparse translation
    triples, the encoded zooming sequence, and the global id. *)

val max_label_bits : t -> int

(** {2 Export}

    Flat, string-free state extraction for the off-heap snapshot layer
    ([ron_serve]). Arrays may share structure with the live value — treat
    them as borrowed and read-only. *)

type export = {
  x_n : int;
  x_levels : int;  (** translation maps per label ([levels - 1]) *)
  x_prefix_len : int;
  x_max_virt : int;  (** scratch bound: 1 + the largest virtual index *)
  x_dists : float array array;  (** quantized host distances, per node *)
  x_zoom_first : int array;
  x_zoom_rest : int array array;
  x_zetas : (int * int * int) array array array;
      (** [(x, y, z)] triples of [zetas.(u).(j)], sorted by [(x, y)] *)
  x_hosts : int array array;  (** host enumeration order, per node *)
}

val export : t -> export
