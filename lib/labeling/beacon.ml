module Indexed = Ron_metric.Indexed
module Rng = Ron_util.Rng
module Bits = Ron_util.Bits
module Qfloat = Ron_util.Qfloat

type t = { idx : Indexed.t; beacons : int array }

let build idx rng ~k =
  let n = Indexed.size idx in
  if k < 1 || k > n then invalid_arg "Beacon.build: k out of range";
  let perm = Array.init n Fun.id in
  Rng.shuffle rng perm;
  let beacons = Array.sub perm 0 k in
  Ron_util.Fsort.sort_ints beacons;
  { idx; beacons }

let beacons t = Array.copy t.beacons
let order t = Array.length t.beacons

let estimate t u v =
  if u = v then (0.0, 0.0)
  else
    Array.fold_left
      (fun (lo, hi) b ->
        if !Ron_obs.Probe.on then Ron_obs.Probe.table_touch ();
        let da = Indexed.dist t.idx u b and db = Indexed.dist t.idx v b in
        (Float.max lo (Float.abs (da -. db)), Float.min hi (da +. db)))
      (0.0, infinity) t.beacons

let bad_fraction t ~delta =
  let n = Indexed.size t.idx in
  (* O(n^2) estimate sweep: each row u counts its own pairs (u, v > u), the
     integer row counts are summed afterwards — parallel over rows, with a
     result independent of the job count. *)
  let rows =
    Ron_util.Pool.init n (fun u ->
        let bad = ref 0 and total = ref 0 in
        for v = u + 1 to n - 1 do
          incr total;
          let (lo, hi) = estimate t u v in
          if lo <= 0.0 || hi > (1.0 +. delta) *. lo then incr bad
        done;
        (!bad, !total))
  in
  let bad = Array.fold_left (fun acc (b, _) -> acc + b) 0 rows in
  let total = Array.fold_left (fun acc (_, t) -> acc + t) 0 rows in
  if total = 0 then 0.0 else float_of_int bad /. float_of_int total

let label_bits t =
  let n = Indexed.size t.idx in
  let codec =
    Qfloat.codec_for ~delta:0.25 ~aspect_ratio:(Float.max 2.0 (Indexed.aspect_ratio t.idx))
  in
  ignore (Bits.index_bits n);
  Array.make n (Array.length t.beacons * Qfloat.bits codec)
