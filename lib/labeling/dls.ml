module Indexed = Ron_metric.Indexed
module Net = Ron_metric.Net
module Bits = Ron_util.Bits
module Qfloat = Ron_util.Qfloat
module Enumeration = Ron_core.Enumeration
module Translation = Ron_core.Translation
module Pool = Ron_util.Pool
module Probe = Ron_obs.Probe

type label = {
  id : int;
  prefix_len : int;
  dists : float array; (* quantized distance to the k-th host-enumerated beacon *)
  zetas : Translation.t array; (* zetas.(i) translates scale-i pointers *)
  zoom_first : int; (* phi_u(f_u0), an index into the canonical prefix *)
  zoom_rest : int array; (* zoom_rest.(i) = psi_(f_ui)(f_(u,i+1)) *)
  bits : int;
}

type wire_codec = {
  wc_n : int;
  wc_li : int;
  wc_prefix_len : int;
  wc_host_bits : int;
  wc_virt_bits : int;
  wc_qcodec : Qfloat.codec;
}

type t = {
  tri : Triangulation.t;
  labels : label array;
  virtuals : int array array; (* T_u sorted, for tests *)
  zooms : int array array;
  host_order : int array array; (* host_order.(u).(k) = node at phi_u index k *)
  wire : wire_codec;
}

let triangulation t = t.tri
let label t u = t.labels.(u)
let label_of_id l = l.id
let virtual_neighbors t u = Array.copy t.virtuals.(u)
let zooming_sequence t u = Array.copy t.zooms.(u)
let label_bits t = Array.map (fun l -> l.bits) t.labels
let max_label_bits t = Array.fold_left (fun acc l -> max acc l.bits) 0 t.labels
let host_beacons t u = Array.copy t.host_order.(u)

(* Deduplicate a list of node ids into a sorted array. Node ids are < n, so
   a per-domain mark array beats a fresh Hashtbl per call: the build calls
   this O(n) times per pass, and the scratch makes each call allocate only
   its result. Marks are cleared by re-walking the output, so cost tracks
   the list length, not n. *)
type dedup_scratch = { mutable dcap : int; mutable mark : Bytes.t; mutable buf : int array }

let dedup_key : dedup_scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { dcap = 0; mark = Bytes.empty; buf = [||] })

let sorted_distinct n lst =
  let sc = Domain.DLS.get dedup_key in
  if sc.dcap < n then begin
    sc.dcap <- n;
    sc.mark <- Bytes.make n '\000';
    sc.buf <- Array.make n 0
  end;
  let mark = sc.mark and buf = sc.buf in
  let len = ref 0 in
  List.iter
    (fun v ->
      if Bytes.unsafe_get mark v = '\000' then begin
        Bytes.unsafe_set mark v '\001';
        buf.(!len) <- v;
        incr len
      end)
    lst;
  let a = Array.sub buf 0 !len in
  for i = 0 to !len - 1 do
    Bytes.unsafe_set mark a.(i) '\000'
  done;
  Ron_util.Fsort.sort_ints a;
  a

let build ?(z_divisor = 64.0) tri =
  Ron_obs.Profile.phase "construct.dls" @@ fun () ->
  let idx = Triangulation.idx tri in
  let delta = Triangulation.delta tri in
  let hier = Triangulation.hierarchy tri in
  let n = Indexed.size idx in
  let li = Triangulation.levels tri in
  let jmax = Net.Hierarchy.jmax hier in
  (* --- Z-rings: Z_uj = B_u(2^j) ∩ G_l, l = log2(2^j * delta / z_divisor). *)
  let z_level j =
    let r = Bits.pow2 j *. delta /. z_divisor in
    if r <= 1.0 then 0 else int_of_float (Float.floor (Bits.flog2 r))
  in
  let z_of u =
    let acc = ref [] in
    for j = 1 to jmax do
      let level = z_level j in
      Indexed.ball_iter idx u (Bits.pow2 j) (fun v _ ->
          if Net.Hierarchy.mem hier level v then acc := v :: !acc)
    done;
    !acc
  in
  (* Every per-node pass in this build reads only the immutable index,
     hierarchy, triangulation, and earlier passes' finished arrays, so each
     runs as a parallel fan-out over nodes ([Pool.init]/[Pool.map] are
     barriers, keeping the passes ordered). *)
  let z_sets = Ron_obs.Profile.phase "z_rings" @@ fun () -> Pool.init n z_of in
  (* --- X_u across scales. *)
  let x_all u =
    let acc = ref [] in
    for i = 0 to li - 1 do
      Array.iter (fun v -> acc := v :: !acc) (Triangulation.x_neighbors tri u i)
    done;
    !acc
  in
  (* --- Virtual neighbors T_u and enumerations psi_u. *)
  let virtuals =
    Ron_obs.Profile.phase "virtuals" @@ fun () ->
    Pool.init n (fun u ->
        let xs = x_all u in
        let via_x = List.concat_map (fun v -> z_sets.(v)) (sorted_distinct n xs |> Array.to_list) in
        sorted_distinct n (List.concat [ xs; z_sets.(u); via_x ]))
  in
  let psi = Pool.map Enumeration.of_array virtuals in
  (* Dense inverse of every psi: [psi_inv.(v).(w)] is [Enumeration.index
     psi.(v) w] with [-1] for absent. The zeta join below probes psi
     |S_i| * |S_(i+1)| times per node per scale; an array read there instead
     of a Hashtbl probe is the difference between minutes and seconds. The
     n^2 ints are within the Indexed-backed schemes' existing memory class
     (the metric itself is already materialized at n^2 floats). *)
  let psi_inv =
    Pool.init n (fun v ->
        let inv = Array.make n (-1) in
        Array.iteri (fun k w -> inv.(w) <- k) (Enumeration.nodes psi.(v));
        inv)
  in
  let max_virtual = Array.fold_left (fun acc a -> max acc (Array.length a)) 1 virtuals in
  (* --- Host neighbor sets per scale and host enumerations phi_u with the
     canonical scale-0 prefix. *)
  let scale_set u i =
    sorted_distinct n
      (List.concat
         [
           Array.to_list (Triangulation.x_neighbors tri u i);
           Array.to_list (Triangulation.y_neighbors tri u i);
         ])
  in
  let scale_sets =
    Ron_obs.Profile.phase "hosts" @@ fun () ->
    Pool.init n (fun u -> Array.init li (fun i -> scale_set u i))
  in
  let prefix_nodes = scale_sets.(0).(0) in
  (* Scale-0 sets coincide for every node by construction; the prefix is
     canonical. *)
  let prefix = Enumeration.of_array prefix_nodes in
  let prefix_len = Enumeration.size prefix in
  let phi =
    Pool.init n (fun u ->
        let rest =
          sorted_distinct n (List.concat_map Array.to_list (Array.to_list scale_sets.(u)))
        in
        Enumeration.with_prefix ~prefix rest)
  in
  let max_host = Array.fold_left (fun acc e -> max acc (Enumeration.size e)) 1 (Array.map Fun.id phi) in
  (* --- Zooming sequences: f_ui = nearest node of G_(log2 (r_ui/4)). *)
  let zoom_of u =
    Array.init li (fun i ->
        let r = Indexed.r_level idx u i in
        let level =
          if r <= 4.0 then 0 else int_of_float (Float.floor (Bits.flog2 (r /. 4.0)))
        in
        fst (Net.Hierarchy.nearest hier level u))
  in
  let zooms = Ron_obs.Profile.phase "zooms" @@ fun () -> Pool.init n zoom_of in
  (* --- Translation maps zeta_ui. [phi_inv_u] is the dense inverse of
     phi.(u), built once per node by the labels pass; probing it and
     [psi_inv] turns the scale-set join into pure array reads while adding
     exactly the same entries in the same order as the enumeration-backed
     lookups did. *)
  let zetas_of u phi_inv_u =
    Array.init (li - 1) (fun i ->
        let this_scale = scale_sets.(u).(i) in
        let next_scale = scale_sets.(u).(i + 1) in
        (* Count pass: joined pairs are distinct (x per v, y per w), so the
           count is the exact entry total — the table allocates once, with
           no doubling or rehash garbage. *)
        let hits = ref 0 in
        Array.iter
          (fun v ->
            let piv = psi_inv.(v) in
            Array.iter (fun w -> if piv.(w) >= 0 then incr hits) next_scale)
          this_scale;
        let z = Translation.create ~size_hint:!hits () in
        Array.iter
          (fun v ->
            let x = phi_inv_u.(v) in
            if x < 0 then failwith "Dls.build: scale-set node outside phi";
            let piv = psi_inv.(v) in
            Array.iter
              (fun w ->
                let y = piv.(w) in
                if y >= 0 then begin
                  let zz = phi_inv_u.(w) in
                  if zz < 0 then failwith "Dls.build: scale-set node outside phi";
                  Translation.add z ~x ~y ~z:zz
                end)
              next_scale)
          this_scale;
        z)
  in
  (* --- Quantized distances. *)
  let codec =
    Qfloat.codec_for ~delta ~aspect_ratio:(Float.max 2.0 (Indexed.aspect_ratio idx))
  in
  let labels =
    Ron_obs.Profile.phase "labels" @@ fun () ->
    Pool.init n (fun u ->
        let e = phi.(u) in
        let k = Enumeration.size e in
        let dists =
          Array.init k (fun idx_k -> Qfloat.quantize codec (Indexed.dist idx u (Enumeration.node e idx_k)))
        in
        let phi_inv_u = Array.make n (-1) in
        Array.iteri (fun k w -> phi_inv_u.(w) <- k) (Enumeration.nodes e);
        let zetas = zetas_of u phi_inv_u in
        let f = zooms.(u) in
        let zoom_first =
          match Enumeration.index prefix f.(0) with
          | Some i -> i
          | None -> failwith "Dls.build: f_u0 outside the canonical prefix"
        in
        let zoom_rest =
          Array.init (li - 1) (fun i ->
              let y = psi_inv.(f.(i)).(f.(i + 1)) in
              if y >= 0 then y
              else failwith "Dls.build: Claim 3.5(c) violated: f_(u,i+1) not virtual at f_ui")
        in
        let host_bits = Bits.index_bits max_host in
        let virt_bits = Bits.index_bits max_virtual in
        let zeta_bits =
          Array.fold_left
            (fun acc z ->
              acc + Translation.bits_sparse z ~x_bits:host_bits ~y_bits:virt_bits ~z_bits:host_bits)
            0 zetas
        in
        let bits =
          Bits.index_bits n (* global id *)
          + (k * Qfloat.bits codec) (* distance array *)
          + zeta_bits
          + host_bits (* zoom_first *)
          + ((li - 1) * virt_bits) (* zoom_rest *)
        in
        if !Probe.on then Probe.label_node ();
        { id = u; prefix_len; dists; zetas; zoom_first; zoom_rest; bits })
  in
  let host_order = Array.init n (fun u -> Enumeration.nodes phi.(u)) in
  let wire =
    {
      wc_n = n;
      wc_li = li;
      wc_prefix_len = prefix_len;
      wc_host_bits = Bits.index_bits max_host;
      wc_virt_bits = Bits.index_bits max_virtual;
      wc_qcodec = codec;
    }
  in
  { tri; labels; virtuals; zooms; host_order; wire }

(* ------------------------------------------------------------- Decoding *)

(* Walk [src]'s zooming sequence through the translation maps of both labels
   simultaneously. [a] tracks the current element's index in [la]'s host
   enumeration, [b] in [lb]'s. At each level we (1) record the element itself
   as a common beacon, (2) join the two maps' (element, .) entry lists on the
   virtual index to find more common beacons, then (3) step to the next
   element. [emit ia ib] receives host-index pairs (la-index, lb-index). *)
let walk_candidates ~src ~la ~lb ~emit =
  let levels = Array.length la.zetas in
  let a = ref src.zoom_first and b = ref src.zoom_first in
  (try
     for j = 0 to levels - 1 do
       emit !a !b;
       (* Join on virtual indices. *)
       let right = Hashtbl.create 16 in
       List.iter (fun (y, z) -> Hashtbl.replace right y z) (Translation.entries_with_x lb.zetas.(j) ~x:!b);
       List.iter
         (fun (y, z_a) ->
           match Hashtbl.find_opt right y with
           | Some z_b -> emit z_a z_b
           | None -> ())
         (Translation.entries_with_x la.zetas.(j) ~x:!a);
       (* Step down the zooming sequence. *)
       let y = src.zoom_rest.(j) in
       match (Translation.find la.zetas.(j) ~x:!a ~y, Translation.find lb.zetas.(j) ~x:!b ~y) with
       | Some a', Some b' ->
         a := a';
         b := b'
       | _ -> raise Exit
     done;
     emit !a !b
   with Exit -> ())

let candidates l_u l_v =
  if l_u.prefix_len <> l_v.prefix_len then failwith "Dls.candidates: labels from different schemes";
  let acc = ref [] in
  let emit iu iv =
    if iu < Array.length l_u.dists && iv < Array.length l_v.dists then
      acc := (iu, iv, l_u.dists.(iu), l_v.dists.(iv)) :: !acc
  in
  (* Canonical prefix: index k names the same node in both labels. *)
  for k = 0 to l_u.prefix_len - 1 do
    emit k k
  done;
  (* Zoom in on v, reading indices in both labels. *)
  walk_candidates ~src:l_v ~la:l_u ~lb:l_v ~emit:(fun a b -> emit a b);
  (* Symmetrically zoom in on u. *)
  walk_candidates ~src:l_u ~la:l_v ~lb:l_u ~emit:(fun a b -> emit b a);
  !acc

let estimate l_u l_v =
  if l_u.id = l_v.id then 0.0
  else begin
    let best =
      List.fold_left
        (fun acc (_, _, du, dv) -> Float.min acc (du +. dv))
        infinity (candidates l_u l_v)
    in
    if Float.is_finite best then best
    else failwith "Dls.estimate: no common beacon identified (Theorem 3.4 violated)"
  end

(* ----------------------------------------------------------- Wire format *)

module Bitio = Ron_util.Bitio

let wire_codec t = t.wire

let serialize wc l =
  let w = Bitio.Writer.create () in
  let host v = Bitio.Writer.bits w v ~width:wc.wc_host_bits in
  let virt v = Bitio.Writer.bits w v ~width:wc.wc_virt_bits in
  Bitio.Writer.bits w l.id ~width:(Bits.index_bits wc.wc_n);
  let k = Array.length l.dists in
  Bitio.Writer.bits w k ~width:(wc.wc_host_bits + 1);
  Array.iter (fun d -> Qfloat.write wc.wc_qcodec w d) l.dists;
  Array.iter
    (fun zeta ->
      let entries = Translation.entries zeta in
      Bitio.Writer.bits w (List.length entries)
        ~width:(wc.wc_host_bits + wc.wc_virt_bits + 1);
      List.iter
        (fun (x, y, z) ->
          host x;
          virt y;
          host z)
        (List.sort
           (fun (a1, b1, c1) (a2, b2, c2) ->
             if a1 <> a2 then Int.compare a1 a2
             else if b1 <> b2 then Int.compare b1 b2
             else Int.compare c1 c2)
           entries))
    l.zetas;
  host l.zoom_first;
  Array.iter virt l.zoom_rest;
  (Bitio.Writer.to_bytes w, Bitio.Writer.length w)

let deserialize wc bytes =
  let r = Bitio.Reader.of_bytes bytes in
  let host () = Bitio.Reader.bits r ~width:wc.wc_host_bits in
  let virt () = Bitio.Reader.bits r ~width:wc.wc_virt_bits in
  let id = Bitio.Reader.bits r ~width:(Bits.index_bits wc.wc_n) in
  let k = Bitio.Reader.bits r ~width:(wc.wc_host_bits + 1) in
  let dists = Array.init k (fun _ -> Qfloat.read wc.wc_qcodec r) in
  let zetas =
    Array.init (wc.wc_li - 1) (fun _ ->
        let zeta = Translation.create () in
        let count = Bitio.Reader.bits r ~width:(wc.wc_host_bits + wc.wc_virt_bits + 1) in
        for _ = 1 to count do
          let x = host () in
          let y = virt () in
          let z = host () in
          Translation.add zeta ~x ~y ~z
        done;
        zeta)
  in
  let zoom_first = host () in
  let zoom_rest = Array.init (wc.wc_li - 1) (fun _ -> virt ()) in
  {
    id;
    prefix_len = wc.wc_prefix_len;
    dists;
    zetas;
    zoom_first;
    zoom_rest;
    bits = 8 * Bytes.length bytes;
  }

(* ----------------------------------------------------------------- Export *)

type export = {
  x_n : int;
  x_levels : int;
  x_prefix_len : int;
  x_max_virt : int;
  x_dists : float array array;
  x_zoom_first : int array;
  x_zoom_rest : int array array;
  x_zetas : (int * int * int) array array array;
  x_hosts : int array array;
}

let compare_xy (x1, y1, _) (x2, y2, _) =
  if x1 <> x2 then Int.compare x1 x2 else Int.compare y1 y2

let export t =
  let n = Array.length t.labels in
  let levels = if n = 0 then 0 else Array.length t.labels.(0).zetas in
  let max_virt = ref 1 in
  let zetas =
    Array.map
      (fun l ->
        Array.map
          (fun z ->
            let e = Array.of_list (Translation.entries z) in
            Array.iter (fun (_, y, _) -> if y + 1 > !max_virt then max_virt := y + 1) e;
            Array.sort compare_xy e;
            e)
          l.zetas)
      t.labels
  in
  Array.iter
    (fun l ->
      Array.iter (fun y -> if y + 1 > !max_virt then max_virt := y + 1) l.zoom_rest)
    t.labels;
  {
    x_n = n;
    x_levels = levels;
    x_prefix_len = (if n = 0 then 0 else t.labels.(0).prefix_len);
    x_max_virt = !max_virt;
    x_dists = Array.map (fun l -> l.dists) t.labels;
    x_zoom_first = Array.map (fun l -> l.zoom_first) t.labels;
    x_zoom_rest = Array.map (fun l -> l.zoom_rest) t.labels;
    x_zetas = zetas;
    x_hosts = t.host_order;
  }
