(** Landmark + local-ball distance labeling: the near-linear scheme for the
    million-node regime.

    The Indexed-backed schemes (DLS, triangulation, beacons over a
    materialized metric) all carry O(n^2) state somewhere; this scheme
    carries [k] full beacon rows ([k] single-source runs through the
    on-demand oracle) plus one bounded-radius ball per node
    ({!Ron_graph.Dijkstra.run_bounded} — the "ring of neighbors" giving
    local exactness). Estimates: exact for pairs inside a ball or involving
    a beacon; otherwise the classic landmark sandwich
    [max_i |d(u,b_i) - d(v,b_i)| <= d(u,v) <= min_i d(u,b_i) + d(v,b_i)].

    Construction is parallel over beacons and over balls, and bit-identical
    at every [RON_JOBS]. *)

type t

val build :
  ?jobs:int -> Ron_graph.Sp_metric.t -> Ron_util.Rng.t -> k:int -> local_radius:float -> t
(** [build sp rng ~k ~local_radius]: [k] beacons drawn by seeded shuffle
    (sorted, like {!Beacon.build}), one radius-[local_radius] ball per node.
    O(k (m + n log n)) for rows plus O(n * ball) for balls — no O(n^2)
    term. *)

val order : t -> int
(** Number of beacons. *)

val beacons : t -> int array
val size : t -> int
val local_radius : t -> float

val ball_size : t -> int -> int
(** Nodes within [local_radius] of [u] (including [u] itself). *)

val ball_members : t -> int -> int array
(** Fresh copy of [u]'s local-ball node ids, ascending, [u] included —
    the per-node "ring of neighbors" the churn layer repairs. *)

val estimate : t -> int -> int -> float * float
(** [(lo, hi)] distance bounds; [lo = hi] exactly when the pair resolves
    exactly (same node, in-ball, or a beacon endpoint). *)

val label_bits : t -> int array
(** Per-node storage: own id + [k] quantized beacon distances + the ball as
    (id, quantized distance) pairs — quantization via {!Ron_util.Qfloat}
    with the paper's [delta = 1/4] codec. *)

(** {2 Export}

    Flat state extraction for the off-heap snapshot layer ([ron_serve]).
    Arrays may share structure with the live value — treat them as borrowed
    and read-only. *)

type export = {
  x_n : int;
  x_beacons : int array;  (** sorted beacon ids *)
  x_rows : float array array;  (** [x_rows.(i).(v)]: beacon [i] to [v] *)
  x_col : int array;  (** beacon index of [v], or [-1] *)
  x_ball_off : int array;  (** CSR over per-node local balls *)
  x_ball_node : int array;
  x_ball_dist : float array;
}

val export : t -> export
