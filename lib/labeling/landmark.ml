module Rng = Ron_util.Rng
module Bits = Ron_util.Bits
module Qfloat = Ron_util.Qfloat
module Pool = Ron_util.Pool
module Probe = Ron_obs.Probe
module Profile = Ron_obs.Profile
module Graph = Ron_graph.Graph
module Dijkstra = Ron_graph.Dijkstra
module Sp_metric = Ron_graph.Sp_metric

(* Near-linear distance labeling for the million-node regime: k seeded
   beacons with full SSSP rows (k single-source runs through the on-demand
   oracle) plus one bounded-radius ball per node (the "ring of neighbors"
   local exactness). Total state is k rows + sum of ball sizes — no O(n^2)
   structure anywhere, unlike the Indexed-backed schemes. *)

type t = {
  n : int;
  beacons : int array;
  rows : float array array; (* rows.(i).(v): dist from beacons.(i) to v *)
  col : int array; (* col.(v): beacon index of v, or -1 *)
  ball_off : int array; (* CSR over per-node local balls *)
  ball_node : int array; (* node ids, ascending within each ball *)
  ball_dist : float array;
  local_radius : float;
  qbits : int;
  id_bits : int;
}

(* Sort a ball's (node, dist) parallel arrays by node id — insertion sort:
   balls are small by construction, and the sort is deterministic. *)
let sort_ball nodes dists =
  let len = Array.length nodes in
  for i = 1 to len - 1 do
    let nv = nodes.(i) and dv = dists.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && nodes.(!j) > nv do
      nodes.(!j + 1) <- nodes.(!j);
      dists.(!j + 1) <- dists.(!j);
      decr j
    done;
    nodes.(!j + 1) <- nv;
    dists.(!j + 1) <- dv
  done

let build ?jobs sp rng ~k ~local_radius =
  Profile.phase "construct.landmark" @@ fun () ->
  let g = Sp_metric.graph sp in
  let n = Graph.size g in
  if k < 1 || k > n then invalid_arg "Landmark.build: k out of range";
  if not (local_radius >= 0.0) then invalid_arg "Landmark.build: negative radius";
  let perm = Array.init n Fun.id in
  Rng.shuffle rng perm;
  let beacons = Array.sub perm 0 k in
  Ron_util.Fsort.sort_ints beacons;
  let col = Array.make n (-1) in
  Array.iteri (fun i b -> col.(b) <- i) beacons;
  let rows =
    Profile.phase "beacon_rows" @@ fun () ->
    Pool.init ?jobs k (fun i -> Sp_metric.distances_from sp beacons.(i))
  in
  let balls =
    Profile.phase "local_balls" @@ fun () ->
    Pool.init ?jobs n (fun u ->
        let b = Dijkstra.run_bounded g u ~radius:local_radius in
        let nodes = b.Dijkstra.nodes and dists = b.Dijkstra.dists in
        sort_ball nodes dists;
        if !Probe.on then Probe.ring_node ();
        (* In-chunk ticks are no-ops (sampling is chunk-free); this fires
           exactly once per build, via Pool.init's seed call for u = 0,
           giving a snapshot at the start of the long ball phase. *)
        if !Ron_obs.Telemetry.active then Ron_obs.Telemetry.tick ();
        (nodes, dists))
  in
  Profile.phase "labels" @@ fun () ->
  let ball_off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    ball_off.(u + 1) <- ball_off.(u) + Array.length (fst balls.(u))
  done;
  let total = ball_off.(n) in
  let ball_node = Array.make (max total 1) 0 in
  let ball_dist = Array.make (max total 1) 0.0 in
  for u = 0 to n - 1 do
    let nodes, dists = balls.(u) in
    Array.blit nodes 0 ball_node ball_off.(u) (Array.length nodes);
    Array.blit dists 0 ball_dist ball_off.(u) (Array.length dists);
    if !Probe.on then Probe.label_node ();
    if !Ron_obs.Telemetry.active then Ron_obs.Telemetry.tick ()
  done;
  (* Aspect ratio for the distance codec, from the beacon rows (global
     reach) — every stored distance is <= the largest row entry. *)
  let max_d = ref 1.0 and min_d = ref infinity in
  Array.iter
    (fun row ->
      Array.iter
        (fun d ->
          if Float.is_finite d && d > 0.0 then begin
            if d > !max_d then max_d := d;
            if d < !min_d then min_d := d
          end)
        row)
    rows;
  let aspect = if Float.is_finite !min_d && !min_d > 0.0 then !max_d /. !min_d else 2.0 in
  let codec = Qfloat.codec_for ~delta:0.25 ~aspect_ratio:(Float.max 2.0 aspect) in
  {
    n;
    beacons;
    rows;
    col;
    ball_off;
    ball_node;
    ball_dist;
    local_radius;
    qbits = Qfloat.bits codec;
    id_bits = Bits.index_bits n;
  }

let order t = Array.length t.beacons
let beacons t = Array.copy t.beacons
let size t = t.n
let local_radius t = t.local_radius
let ball_size t u = t.ball_off.(u + 1) - t.ball_off.(u)

(* Fresh copy of [u]'s ball membership (ascending node ids, [u] included):
   the reference list the churn layer's table overlay repairs. *)
let ball_members t u =
  Array.sub t.ball_node t.ball_off.(u) (ball_size t u)

(* Binary search [v] in [u]'s ball; the exact stored distance, or nan. *)
let ball_find t u v =
  let lo = ref t.ball_off.(u) and hi = ref (t.ball_off.(u + 1) - 1) in
  let found = ref Float.nan in
  while Float.is_nan !found && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = t.ball_node.(mid) in
    if x = v then found := t.ball_dist.(mid)
    else if x < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let estimate t u v =
  if u = v then (0.0, 0.0)
  else begin
    let d = ball_find t u v in
    if not (Float.is_nan d) then (d, d)
    else if t.col.(v) >= 0 then begin
      (* [v] is a beacon: its row holds the exact distance. *)
      if !Probe.on then Probe.table_touch ();
      let d = t.rows.(t.col.(v)).(u) in
      (d, d)
    end
    else if t.col.(u) >= 0 then begin
      if !Probe.on then Probe.table_touch ();
      let d = t.rows.(t.col.(u)).(v) in
      (d, d)
    end
    else begin
      let lo = ref 0.0 and hi = ref infinity in
      for i = 0 to Array.length t.beacons - 1 do
        if !Probe.on then Probe.table_touch ();
        let row = t.rows.(i) in
        let da = row.(u) and db = row.(v) in
        let diff = Float.abs (da -. db) in
        if diff > !lo then lo := diff;
        if da +. db < !hi then hi := da +. db
      done;
      (!lo, !hi)
    end
  end

let label_bits t =
  Array.init t.n (fun u ->
      (* Per-node label: k quantized beacon distances, plus the local ball
         as (id, quantized distance) pairs, plus the node's own id. *)
      t.id_bits
      + (Array.length t.beacons * t.qbits)
      + (ball_size t u * (t.id_bits + t.qbits)))

(* ----------------------------------------------------------------- Export *)

type export = {
  x_n : int;
  x_beacons : int array;
  x_rows : float array array;
  x_col : int array;
  x_ball_off : int array;
  x_ball_node : int array;
  x_ball_dist : float array;
}

let export t =
  {
    x_n = t.n;
    x_beacons = t.beacons;
    x_rows = t.rows;
    x_col = t.col;
    x_ball_off = t.ball_off;
    x_ball_node = t.ball_node;
    x_ball_dist = t.ball_dist;
  }
