module Indexed = Ron_metric.Indexed
module Net = Ron_metric.Net
module Packing = Ron_metric.Packing
module Bits = Ron_util.Bits
module Qfloat = Ron_util.Qfloat
module Pool = Ron_util.Pool
module Probe = Ron_obs.Probe

type t = {
  idx : Indexed.t;
  delta : float;
  levels : int;
  hierarchy : Net.Hierarchy.t;
  packings : Packing.t array;
  xn : int array array array; (* xn.(u).(i) *)
  yn : int array array array;
  beacon_dist : (int, float) Hashtbl.t array; (* per node: beacon -> distance *)
}

let idx t = t.idx
let delta t = t.delta
let levels t = t.levels
let hierarchy t = t.hierarchy
let packing t i = t.packings.(i)
let x_neighbors t u i = t.xn.(u).(i)
let y_neighbors t u i = t.yn.(u).(i)

(* Net level of the Y-ring at scale i, given the ball radius r_ui. *)
let y_net_level r_ui delta ~net_divisor =
  if r_ui <= 0.0 then 0
  else max 0 (int_of_float (Float.floor (Bits.flog2 (delta *. r_ui /. net_divisor))))

let build ?(radius_factor = 12.0) ?(net_divisor = 4.0) idx_ ~delta =
  if not (delta > 0.0 && delta < 0.5) then
    invalid_arg "Triangulation.build: delta must be in (0, 1/2)";
  if Indexed.size idx_ >= 2 && Indexed.min_distance idx_ < 1.0 then
    invalid_arg "Triangulation.build: metric must be normalized";
  Ron_obs.Profile.phase "construct.triangulation" @@ fun () ->
  let n = Indexed.size idx_ in
  let levels = Indexed.log2_size idx_ + 1 in
  let hierarchy = Net.Hierarchy.create idx_ in
  let packings =
    Array.init levels (fun i -> Packing.create idx_ ~eps:(1.0 /. Bits.pow2 i))
  in
  let aspect = Float.max 2.0 (Indexed.diameter idx_) in
  (* X-type: designated nodes h_B of packing balls B with
     d(u, h_B) + radius <= r_(u, i-1) (Appendix-B form of "B inside the
     previous ball"); at i = 0 the previous radius is unbounded. *)
  (* The three per-node passes are pure reads of the immutable index,
     packings, and hierarchy (plus, for the last, the finished xn/yn):
     parallel fan-out over nodes, barriers between passes. *)
  let xn =
    Pool.init n (fun u ->
        Array.init levels (fun i ->
            let r_prev = Indexed.r_level idx_ u (i - 1) in
            let keep b =
              Indexed.dist idx_ u b.Packing.center +. b.Packing.radius <= r_prev
            in
            Array.to_list (Packing.balls packings.(i))
            |> List.filter keep
            |> List.map (fun b -> b.Packing.center)
            |> Array.of_list))
  in
  (* Y-type: net points of G_(j_i) within 12 r_ui / delta. Scale 0 is made
     canonical (identical for all nodes): the whole space intersected with
     G_(floor(log2 (delta * Delta / 8))) — a superset of the paper's
     per-node Y_u0, needed so that all host enumerations can share their
     scale-0 prefix (see DESIGN.md). *)
  let y0_level =
    max 0 (int_of_float (Float.floor (Bits.flog2 (delta *. aspect /. (2.0 *. net_divisor)))))
  in
  let y0 = Array.copy (Net.Hierarchy.level hierarchy y0_level) in
  Ron_util.Fsort.sort_ints y0;
  let yn =
    Pool.init n (fun u ->
        Array.init levels (fun i ->
            if i = 0 then y0
            else begin
              let r_ui = Indexed.r_level idx_ u i in
              let level = y_net_level r_ui delta ~net_divisor in
              let radius = radius_factor *. r_ui /. delta in
              Indexed.ball_filter idx_ u radius (fun v ->
                  Net.Hierarchy.mem hierarchy level v)
            end))
  in
  let beacon_dist =
    Pool.init n (fun u ->
        let tbl = Hashtbl.create 64 in
        let addall arr =
          Array.iter (fun b -> if not (Hashtbl.mem tbl b) then
                         Hashtbl.replace tbl b (Indexed.dist idx_ u b)) arr
        in
        Array.iter addall xn.(u);
        Array.iter addall yn.(u);
        if !Probe.on then Probe.label_node ();
        tbl)
  in
  { idx = idx_; delta; levels; hierarchy; packings; xn; yn; beacon_dist }

let beacons t u =
  let out = Hashtbl.fold (fun b _ acc -> b :: acc) t.beacon_dist.(u) [] in
  let a = Array.of_list out in
  Ron_util.Fsort.sort_ints a;
  a

let order t =
  let best = ref 0 in
  Array.iter (fun tbl -> best := max !best (Hashtbl.length tbl)) t.beacon_dist;
  !best

let fold_common t u v f init =
  (* Iterate over the smaller table for speed. *)
  let a, b =
    if Hashtbl.length t.beacon_dist.(u) <= Hashtbl.length t.beacon_dist.(v) then
      (t.beacon_dist.(u), t.beacon_dist.(v))
    else (t.beacon_dist.(v), t.beacon_dist.(u))
  in
  Hashtbl.fold
    (fun beacon da acc ->
      if !Ron_obs.Probe.on then Ron_obs.Probe.table_touch ();
      match Hashtbl.find_opt b beacon with
      | Some db -> f acc beacon da db
      | None -> acc)
    a init

let estimate t u v =
  if u = v then (0.0, 0.0)
  else begin
    let (lo, hi, wit) =
      fold_common t u v
        (fun (lo, hi, wit) beacon da db ->
          let s = da +. db and d = Float.abs (da -. db) in
          let hi, wit = if s < hi then (s, beacon) else (hi, wit) in
          ((Float.max lo d), hi, wit))
        (0.0, infinity, -1)
    in
    if wit < 0 then failwith "Triangulation.estimate: no common beacon (Theorem 3.2 violated)";
    (lo, hi)
  end

let estimate_plus t u v = snd (estimate t u v)
let estimate_minus t u v = fst (estimate t u v)

let witness t u v =
  if u = v then u
  else begin
    let (_, wit) =
      fold_common t u v
        (fun (hi, wit) beacon da db ->
          let s = da +. db in
          if s < hi then (s, beacon) else (hi, wit))
        (infinity, -1)
    in
    if wit < 0 then failwith "Triangulation.witness: no common beacon";
    wit
  end

let label_bits t =
  let n = Indexed.size t.idx in
  let id_bits = Bits.index_bits n in
  let codec = Qfloat.codec_for ~delta:t.delta ~aspect_ratio:(Float.max 2.0 (Indexed.aspect_ratio t.idx)) in
  let per_entry = id_bits + Qfloat.bits codec in
  Array.init n (fun u -> Hashtbl.length t.beacon_dist.(u) * per_entry)
