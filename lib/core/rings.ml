module Indexed = Ron_metric.Indexed
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
module Rng = Ron_util.Rng
module Pool = Ron_util.Pool
module Fsort = Ron_util.Fsort

type ring = { scale : int; radius : float; members : int array }

type t = {
  rings : ring array array;
  (* Distinct-neighbor sets are needed once per node but queried many times
     (out_degree, max_out_degree, link enumeration), so the dedup is
     computed lazily and cached. *)
  neighbors_cache : int array option array;
}

let of_rings rings = { rings; neighbors_cache = Array.make (Array.length rings) None }

(* Deep copy: member arrays are duplicated so in-place repair (the churn
   layer) never aliases the pristine collection; the dedup cache restarts
   cold. *)
let copy t =
  {
    rings =
      Array.map
        (fun rs -> Array.map (fun r -> { r with members = Array.copy r.members }) rs)
        t.rings;
    neighbors_cache = Array.make (Array.length t.rings) None;
  }

let ring t u i =
  let r = t.rings.(u).(i) in
  if !Ron_obs.Probe.on then
    Ron_obs.Probe.ring_probe ~members:(Array.length r.members);
  r
let rings_of t u = t.rings.(u)
let scales t u = Array.length t.rings.(u)
let size t = Array.length t.rings

let compute_neighbors t u =
  let tbl = Hashtbl.create 64 in
  Array.iter (fun r -> Array.iter (fun v -> Hashtbl.replace tbl v ()) r.members) t.rings.(u);
  let out = Array.of_list (Hashtbl.fold (fun v () acc -> v :: acc) tbl []) in
  Fsort.sort_ints out;
  out

let cached_neighbors t u =
  match t.neighbors_cache.(u) with
  | Some a -> a
  | None ->
    let a = compute_neighbors t u in
    t.neighbors_cache.(u) <- Some a;
    a

(* A copy, so callers may mutate the result without corrupting the cache. *)
let neighbors t u = Array.copy (cached_neighbors t u)

let out_degree t u = Array.length (cached_neighbors t u)

let max_out_degree t =
  let best = ref 0 in
  for u = 0 to size t - 1 do
    best := max !best (out_degree t u)
  done;
  !best

let max_ring_size t =
  Array.fold_left
    (fun acc rs -> Array.fold_left (fun a r -> max a (Array.length r.members)) acc rs)
    0 t.rings

let of_membership idx ~scales ~radius_of ~member_of =
  let n = Indexed.size idx in
  of_rings
    (Pool.init n (fun u ->
         Array.init scales (fun i ->
             let radius = radius_of i in
             let members = Indexed.ball_filter idx u radius (member_of i) in
             Fsort.sort_ints members;
             { scale = i; radius; members })))

let net_rings idx hier ~scales ~radius_of ~level_of =
  let n = Indexed.size idx in
  of_rings
    (Pool.init n (fun u ->
         Array.init scales (fun i ->
             let radius = radius_of i in
             let level = level_of i in
             let members =
               Indexed.ball_filter idx u radius (fun v -> Net.Hierarchy.mem hier level v)
             in
             { scale = i; radius; members })))

let uniform_rings idx rng ~scales ~samples =
  let n = Indexed.size idx in
  (* Sequential on purpose: the draws consume one shared RNG stream, and the
     per-node work after the index is built is O(samples). *)
  of_rings
    (Array.init n (fun u ->
         Array.init scales (fun i ->
             let p = if i >= 62 then max_int else 1 lsl i in
             let k = if p >= n then 1 else (n + p - 1) / p in
             let radius = Indexed.radius_for_count idx u k in
             let ball = Indexed.ball idx u radius in
             let members = Array.init samples (fun _ -> Rng.pick rng ball) in
             { scale = i; radius; members })))

let measure_rings idx mu rng ~scales ~samples ~radius_of =
  let n = Indexed.size idx in
  (* Sequential for the same reason as [uniform_rings]. *)
  of_rings
    (Array.init n (fun u ->
         let cum = Measure.cumulative_by_distance mu idx u in
         Array.init scales (fun j ->
             let radius = radius_of j in
             let count = Indexed.ball_count idx u radius in
             let prefix = Array.sub cum 0 (max 1 count) in
             let members =
               Array.init samples (fun _ ->
                   let k = Rng.weighted_index rng prefix in
                   fst (Indexed.nth_neighbor idx u k))
             in
             { scale = j; radius; members })))

(* In-place membership surgery for incremental repair. Both operations
   invalidate [u]'s dedup cache; neither reallocates the member array, so a
   repaired collection keeps its footprint. *)

let replace_member t u i ~at ~with_ =
  let r = t.rings.(u).(i) in
  if at < 0 || at >= Array.length r.members then
    invalid_arg "Rings.replace_member: slot out of range";
  r.members.(at) <- with_;
  t.neighbors_cache.(u) <- None

let find_member t u i v =
  let r = t.rings.(u).(i) in
  let out = ref (-1) in
  (try
     Array.iteri
       (fun k w ->
         if w = v then begin
           out := k;
           raise Exit
         end)
       r.members
   with Exit -> ());
  !out

let check_containment idx t =
  let ok = ref true in
  Array.iteri
    (fun u rs ->
      Array.iter
        (fun r ->
          Array.iter
            (fun v -> if Indexed.dist idx u v > r.radius +. 1e-9 then ok := false)
            r.members)
        rs)
    t.rings;
  !ok
