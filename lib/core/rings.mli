(** Rings of neighbors — the paper's unifying data structure (Section 1).

    Every node [u] stores pointers to some nodes ("neighbors"), partitioned
    into rings: for an increasing sequence of balls [{B_i}] around [u], the
    neighbors in the i-th ring lie inside [B_i]. The radii of the balls and
    the selection of neighbors inside them depend on the application; the
    paper singles out two canonical collections (Section 1, "The unifying
    technique"):

    - {b cardinality-scaled, uniform}: the ball [B_i] is the smallest ball
      around [u] with at least [n / 2^i] nodes, and the i-ring neighbors are
      sampled uniformly from its node set (the X-type neighbors of
      Theorems 3.2 and 5.2);
    - {b radius-scaled}: the ball [B_i] has radius growing geometrically,
      and the i-ring neighbors are either the points of a [2^j]-net inside
      it (deterministic: routing and labeling) or sampled from a doubling
      measure (randomized: small worlds, "uniform in the space region").

    This module provides both constructions over the substrate and the
    accounting shared by all applications. *)

type ring = {
  scale : int;  (** the ring's index [i] *)
  radius : float;  (** radius of the ball [B_i] *)
  members : int array;  (** the neighbors of the ring, duplicates possible in
                            sampled collections, never containing [u] unless
                            the construction selects it *)
}

type t
(** A collection: one array of rings per node. *)

val of_rings : ring array array -> t

val ring : t -> int -> int -> ring
(** [ring t u i]: the i-th ring of node [u]. *)

val rings_of : t -> int -> ring array
val scales : t -> int -> int
(** Number of rings of a node. *)

val size : t -> int
(** Number of nodes. *)

val neighbors : t -> int -> int array
(** Distinct neighbors of [u] across all rings, sorted ascending. The dedup
    is computed once per node and cached; the returned array is a fresh
    copy. *)

val out_degree : t -> int -> int
(** [Array.length (neighbors t u)], served from the per-node cache. *)

val max_out_degree : t -> int
(** Maximum [out_degree] over all nodes; after the first call every
    node's dedup is cached, so repeated accounting queries are O(n). *)

val max_ring_size : t -> int

val of_membership :
  Ron_metric.Indexed.t ->
  scales:int ->
  radius_of:(int -> float) ->
  member_of:(int -> int -> bool) ->
  t
(** Generic deterministic rings: ring [i] of [u] is [B_u(radius_of i)]
    filtered by [member_of i], with members listed in ascending node id (so
    rings that coincide as sets get identical enumeration orders across
    nodes — the canonical-sharing requirement of host enumerations).
    Nodes are built in parallel ({!Ron_util.Pool}): [radius_of] and
    [member_of] must be pure, and the result is identical at any job
    count. *)

val net_rings :
  Ron_metric.Indexed.t ->
  Ron_metric.Net.Hierarchy.t ->
  scales:int ->
  radius_of:(int -> float) ->
  level_of:(int -> int) ->
  t
(** Deterministic radius-scaled rings: ring [i] of [u] is
    [B_u(radius_of i)] intersected with the net [G_(level_of i)].
    This is the [Y_uj = B_u(r_j) ∩ G_j] construction of Theorem 2.1 and the
    Y-neighbor construction of Theorem 3.2. *)

val uniform_rings :
  Ron_metric.Indexed.t ->
  Ron_util.Rng.t ->
  scales:int ->
  samples:int ->
  t
(** Cardinality-scaled uniform rings: ring [i] of [u] consists of [samples]
    independent uniform draws from the smallest ball around [u] holding at
    least [ceil(n / 2^i)] nodes (the X-type neighbors of Theorem 5.2). *)

val measure_rings :
  Ron_metric.Indexed.t ->
  Ron_metric.Measure.t ->
  Ron_util.Rng.t ->
  scales:int ->
  samples:int ->
  radius_of:(int -> float) ->
  t
(** Radius-scaled measure-weighted rings: ring [j] of [u] consists of
    [samples] draws from [B_u(radius_of j)] proportionally to a doubling
    measure (the Y-type neighbors of Theorem 5.2a). *)

val copy : t -> t
(** Deep copy: member arrays are duplicated (in-place repair of the copy
    never corrupts the original) and the dedup cache restarts cold. *)

val replace_member : t -> int -> int -> at:int -> with_:int -> unit
(** [replace_member t u i ~at ~with_]: overwrite slot [at] of ring [i] of
    node [u] and invalidate [u]'s neighbor-dedup cache. The incremental
    repair primitive — O(1) plus the cache refill on next access. *)

val find_member : t -> int -> int -> int -> int
(** [find_member t u i v]: first slot of ring [i] of [u] holding [v], or
    [-1]. *)

val check_containment : Ron_metric.Indexed.t -> t -> bool
(** Structural invariant: every ring member lies inside its ring's ball. *)
