type encoded = { first : int; rest : int array }

let encode ~sequence ~enum_of_prev ~first_index =
  let k = Array.length sequence in
  if k = 0 then invalid_arg "Zooming.encode: empty sequence";
  let rest =
    Array.init (k - 1) (fun j ->
        if !Ron_obs.Probe.on then Ron_obs.Probe.zoom_encode_step ();
        match enum_of_prev j sequence.(j + 1) with
        | Some i -> i
        | None ->
          invalid_arg
            (Printf.sprintf
               "Zooming.encode: element %d not enumerable at its predecessor (Claim 2.3/3.5 violated)"
               (j + 1)))
  in
  { first = first_index; rest }

let decode_walk ~translate enc =
  let acc = ref [ enc.first ] in
  let m = ref enc.first in
  let continue = ref true in
  let j = ref 0 in
  while !continue && !j < Array.length enc.rest do
    if !Ron_obs.Probe.on then Ron_obs.Probe.zoom_decode_step ();
    match translate !j ~x:!m ~y:enc.rest.(!j) with
    | None -> continue := false
    | Some next ->
      acc := next :: !acc;
      m := next;
      incr j
  done;
  Array.of_list (List.rev !acc)

let bits enc ~index_bits = (1 + Array.length enc.rest) * index_bits
