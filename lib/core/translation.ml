type t = {
  table : (int * int, int) Hashtbl.t;
  by_x : (int, (int * int) list ref) Hashtbl.t;
}

let create () = { table = Hashtbl.create 16; by_x = Hashtbl.create 16 }

let add t ~x ~y ~z =
  match Hashtbl.find_opt t.table (x, y) with
  | Some z' when z' = z -> ()
  | Some _ -> invalid_arg "Translation.add: conflicting entry"
  | None ->
    Hashtbl.replace t.table (x, y) z;
    let bucket =
      match Hashtbl.find_opt t.by_x x with
      | Some b -> b
      | None ->
        let b = ref [] in
        Hashtbl.replace t.by_x x b;
        b
    in
    bucket := (y, z) :: !bucket

let find t ~x ~y =
  if !Ron_obs.Probe.on then Ron_obs.Probe.translation_lookup ();
  Hashtbl.find_opt t.table (x, y)

let entries t = Hashtbl.fold (fun (x, y) z acc -> (x, y, z) :: acc) t.table []

let entries_with_x t ~x =
  match Hashtbl.find_opt t.by_x x with Some b -> !b | None -> []

let entry_count t = Hashtbl.length t.table

let bits_sparse t ~x_bits ~y_bits ~z_bits = entry_count t * (x_bits + y_bits + z_bits)

let bits_dense ~x_card ~y_card ~z_bits = x_card * y_card * z_bits
