(* Flat storage: the DLS zeta join inserts tens of millions of entries per
   labelled build, and the retained tables dominate that scheme's memory, so
   entries live in unboxed int arrays instead of a boxed stdlib Hashtbl.

   - [(x, y)] packs into one immediate int ([x lsl 31 lor y]; enumeration
     indices are < 2^31).
   - An insertion log ([log_key]/[log_z]/[log_next]) holds the entries in
     add order; [log_next] chains entries sharing an [x] (newest first,
     matching the bucket order of the previous implementation).
   - An open-addressing table ([hkeys]/[hvals], linear probing, Murmur3
     finalizer hash, load factor <= 1/2) gives O(1) [find] and the
     immediate conflicting-add check.

   Per entry: 5 ints of log/chain plus ~4 ints of hash slots — no
   per-entry allocation at all. *)

type t = {
  mutable cap : int; (* hash capacity, power of two *)
  mutable hkeys : int array; (* packed key, or -1 for empty *)
  mutable hvals : int array; (* log index *)
  mutable log_key : int array;
  mutable log_z : int array;
  mutable log_next : int array; (* next log index with the same x, or -1 *)
  mutable heads : int array; (* chain head per x, or -1; grows on demand *)
  mutable len : int;
}

let shift = 31
let mask = (1 lsl shift) - 1

let hash key cap =
  (* Murmur3-style finalizer (odd 62-bit multipliers: OCaml ints are 63
     bits): full-width mix, then mask to the table. *)
  let k = key lxor (key lsr 33) in
  let k = k * 0x2545F4914F6CDD1D in
  let k = k lxor (k lsr 33) in
  let k = k * 0x1A85EC53A85EC5B5 in
  let k = k lxor (k lsr 33) in
  k land (cap - 1)

let next_pow2 k =
  let c = ref 16 in
  while !c < k do
    c := 2 * !c
  done;
  !c

let create ?(size_hint = 0) () =
  let logc = max 8 size_hint in
  let cap = next_pow2 ((2 * size_hint) + 1) in
  {
    cap;
    hkeys = Array.make cap (-1);
    hvals = Array.make cap 0;
    log_key = Array.make logc 0;
    log_z = Array.make logc 0;
    log_next = Array.make logc (-1);
    heads = [||];
    len = 0;
  }

let rehash t cap =
  let hkeys = Array.make cap (-1) and hvals = Array.make cap 0 in
  for i = 0 to t.len - 1 do
    let key = t.log_key.(i) in
    let j = ref (hash key cap) in
    while hkeys.(!j) >= 0 do
      j := (!j + 1) land (cap - 1)
    done;
    hkeys.(!j) <- key;
    hvals.(!j) <- i
  done;
  t.cap <- cap;
  t.hkeys <- hkeys;
  t.hvals <- hvals

let add t ~x ~y ~z =
  let key = (x lsl shift) lor y in
  let cap = t.cap in
  let j = ref (hash key cap) in
  let hkeys = t.hkeys in
  (* [!j] stays masked to [cap - 1], so the unsafe accesses are in bounds. *)
  while
    let k = Array.unsafe_get hkeys !j in
    k >= 0 && k <> key
  do
    j := (!j + 1) land (cap - 1)
  done;
  if Array.unsafe_get hkeys !j = key then begin
    if t.log_z.(t.hvals.(!j)) <> z then invalid_arg "Translation.add: conflicting entry"
  end
  else begin
    let i = t.len in
    if i = Array.length t.log_key then begin
      let bigger = 2 * i in
      let nk = Array.make bigger 0 and nz = Array.make bigger 0 and nn = Array.make bigger (-1) in
      Array.blit t.log_key 0 nk 0 i;
      Array.blit t.log_z 0 nz 0 i;
      Array.blit t.log_next 0 nn 0 i;
      t.log_key <- nk;
      t.log_z <- nz;
      t.log_next <- nn
    end;
    t.log_key.(i) <- key;
    t.log_z.(i) <- z;
    if x >= Array.length t.heads then begin
      let bigger = Array.make (max 16 (2 * (x + 1))) (-1) in
      Array.blit t.heads 0 bigger 0 (Array.length t.heads);
      t.heads <- bigger
    end;
    t.log_next.(i) <- t.heads.(x);
    t.heads.(x) <- i;
    t.len <- i + 1;
    t.hkeys.(!j) <- key;
    t.hvals.(!j) <- i;
    if 2 * t.len >= cap then rehash t (2 * cap)
  end

let find t ~x ~y =
  if !Ron_obs.Probe.on then Ron_obs.Probe.translation_lookup ();
  let key = (x lsl shift) lor y in
  let cap = t.cap in
  let j = ref (hash key cap) in
  let hkeys = t.hkeys in
  while
    let k = Array.unsafe_get hkeys !j in
    k >= 0 && k <> key
  do
    j := (!j + 1) land (cap - 1)
  done;
  if Array.unsafe_get hkeys !j = key then Some t.log_z.(t.hvals.(!j)) else None

let entries t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    let key = t.log_key.(i) in
    acc := (key lsr shift, key land mask, t.log_z.(i)) :: !acc
  done;
  !acc

let entries_with_x t ~x =
  if x >= Array.length t.heads then []
  else begin
    let acc = ref [] in
    let i = ref t.heads.(x) in
    let out = ref [] in
    while !i >= 0 do
      let key = t.log_key.(!i) in
      acc := (key land mask, t.log_z.(!i)) :: !acc;
      i := t.log_next.(!i)
    done;
    (* [acc] collected oldest-last; reverse to newest-first (the historical
       bucket order). *)
    List.iter (fun e -> out := e :: !out) !acc;
    !out
  end

let entry_count t = t.len

let bits_sparse t ~x_bits ~y_bits ~z_bits = entry_count t * (x_bits + y_bits + z_bits)

let bits_dense ~x_card ~y_card ~z_bits = x_card * y_card * z_bits
