(** Translation functions zeta (Figure 2; proofs of Theorems 2.1 and 3.4).

    A translation function lets a node [u] convert a pointer expressed in
    some {e other} node's enumeration into its own: given the index of [f]
    in [u]'s enumeration and the index of [w] in [f]'s enumeration, it
    returns the index of [w] in [u]'s enumeration — or null when [w] is not
    a neighbor of [u], which is exactly how routing and decoding detect that
    they must stop zooming. Stored sparsely as triples [(x, y, z)]. *)

type t

val create : ?size_hint:int -> unit -> t
(** [size_hint] presizes the internal storage for that many entries, so a
    caller that can count before filling (the DLS zeta join) pays no
    doubling or rehash garbage. Purely an optimization: contents are
    identical for any hint. *)

val add : t -> x:int -> y:int -> z:int -> unit
(** Raises [Invalid_argument] if [(x, y)] is already bound to a different
    [z] (the function would be ill-defined). Rebinding to the same [z] is a
    no-op. *)

val find : t -> x:int -> y:int -> int option

val entries : t -> (int * int * int) list
(** All triples, in unspecified order. *)

val entries_with_x : t -> x:int -> (int * int) list
(** All [(y, z)] with [(x, y) -> z]: the "entries of the form (f, .)" scan
    used by the distance-labeling decoder. *)

val entry_count : t -> int

val bits_sparse : t -> x_bits:int -> y_bits:int -> z_bits:int -> int
(** Storage as a list of triples. *)

val bits_dense : x_card:int -> y_card:int -> z_bits:int -> int
(** Storage as a dense [x_card * y_card] matrix of [z] values (the paper's
    [K^2 ceil(log K)] accounting). *)
