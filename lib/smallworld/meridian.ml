module Indexed = Ron_metric.Indexed
module Bits = Ron_util.Bits
module Rng = Ron_util.Rng
module Pool = Ron_util.Pool
module Probe = Ron_obs.Probe

type t = {
  idx : Indexed.t;
  ring_size : int;
  scales : int;
  member : bool array;
  mutable member_count : int;
  rings : int list array array; (* rings.(u).(i): scale-i ring of member u *)
}

let scale_of t d =
  (* Annulus index: d in (2^(i-1), 2^i] maps to i; d <= 1 maps to 0. *)
  if d <= 1.0 then 0
  else min (t.scales - 1) (int_of_float (Float.ceil (Bits.flog2 d)))

let members t =
  let out = ref [] in
  Array.iteri (fun u m -> if m then out := u :: !out) t.member;
  Array.of_list (List.rev !out)

let is_member t u = t.member.(u)

let ring t u i =
  if i < 0 || i >= t.scales then [||] else Array.of_list t.rings.(u).(i)

let out_degree t =
  let maxd = ref 0 and sum = ref 0 and count = ref 0 in
  Array.iteri
    (fun u rs ->
      if t.member.(u) then begin
        let tbl = Hashtbl.create 16 in
        Array.iter (fun l -> List.iter (fun v -> Hashtbl.replace tbl v ()) l) rs;
        let d = Hashtbl.length tbl in
        maxd := max !maxd d;
        sum := !sum + d;
        incr count
      end)
    t.rings;
  (!maxd, float_of_int !sum /. float_of_int (max 1 !count))

(* Insert [v] into [u]'s ring for their distance, reservoir-style: rings
   keep at most [ring_size] entries; beyond that an existing entry is
   replaced with probability ring_size/occupancy (approximated by random
   eviction), keeping the ring a uniform-ish sample of the annulus.
   Returns whether the ring changed, so churn repair can count entry
   updates. *)
let insert_scaled t rng u v i =
  let current = t.rings.(u).(i) in
  if List.mem v current then false
  else if List.length current < t.ring_size then begin
    t.rings.(u).(i) <- v :: current;
    true
  end
  else begin
    let slot = Rng.int rng (t.ring_size + 1) in
    if slot < t.ring_size then begin
      t.rings.(u).(i) <- v :: List.filteri (fun k _ -> k <> slot) current;
      true
    end
    else false
  end

let insert_into_ring t rng u v =
  if u <> v && t.member.(u) && t.member.(v) then
    ignore (insert_scaled t rng u v (scale_of t (Indexed.dist t.idx u v)))

let rebuild_rings_of t rng u =
  Array.iteri (fun i _ -> t.rings.(u).(i) <- []) t.rings.(u);
  Array.iteri
    (fun v m -> if m && v <> u then insert_into_ring t rng u v)
    t.member

let build idx rng ~ring_size ~members =
  if Indexed.size idx >= 2 && Indexed.min_distance idx < 1.0 then
    invalid_arg "Meridian.build: metric must be normalized";
  if ring_size < 1 then invalid_arg "Meridian.build: ring_size must be positive";
  if Array.length members = 0 then invalid_arg "Meridian.build: no members";
  Ron_obs.Profile.phase "construct.meridian" @@ fun () ->
  let n = Indexed.size idx in
  let scales = Indexed.log2_aspect_ratio idx + 1 in
  let member = Array.make n false in
  Array.iter
    (fun u ->
      if u < 0 || u >= n then invalid_arg "Meridian.build: member out of range";
      member.(u) <- true)
    members;
  let member_count = Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 member in
  let rings = Array.init n (fun _ -> Array.make scales []) in
  let t = { idx; ring_size; scales; member; member_count; rings } in
  (* Fill rings in a random order so reservoir eviction is unbiased. *)
  let order = Array.copy members in
  Rng.shuffle rng order;
  (* The O(m^2) annulus classification (one distance + scale per ordered
     pair) is the expensive part and touches no shared mutable state, so it
     is precomputed in parallel into per-member byte rows. The reservoir
     fill below stays serial: it consumes the shared RNG stream in exactly
     the original order, so the built rings are bit-identical at every job
     count. *)
  let m = Array.length order in
  if scales <= 255 then begin
    let rows =
      Ron_obs.Profile.phase "annuli" @@ fun () ->
      Pool.init m (fun a ->
          let u = order.(a) in
          let row = Bytes.create m in
          for b = 0 to m - 1 do
            Bytes.unsafe_set row b
              (Char.unsafe_chr (scale_of t (Indexed.dist idx u order.(b))))
          done;
          if !Probe.on then Probe.ring_node ();
          row)
    in
    Ron_obs.Profile.phase "reservoir" @@ fun () ->
    Array.iteri
      (fun a u ->
        let row = rows.(a) in
        Array.iteri
          (fun b v ->
            if u <> v then ignore (insert_scaled t rng u v (Char.code (Bytes.unsafe_get row b))))
          order)
      order
  end
  else Array.iter (fun u -> Array.iter (fun v -> insert_into_ring t rng u v) order) order;
  t

type result = { found : int; hops : int; measurements : int; path : int list }

module Fault = Ron_fault.Fault

let closest ?fault t ~start ~target =
  if not t.member.(start) then invalid_arg "Meridian.closest: start is not a member";
  (match fault with
  | Some (f, _) when Fault.crashed f start ->
    invalid_arg "Meridian.closest: start node is crashed"
  | _ -> ());
  let measurements = ref 0 in
  let measure v =
    incr measurements;
    if !Ron_obs.Probe.on then Ron_obs.Probe.meridian_probe ();
    Indexed.dist t.idx v target
  in
  (* Under a fault model, a ring candidate is invisible to the walk when it
     crashed, its link from the polling node is dead, or its measurement
     reply is dropped (a coin keyed by a serial attempt counter, so the
     schedule is a pure function of the (model, query) pair). The walk then
     simply advances to the best visible candidate — the rings are their
     own fallback. *)
  let attempts = ref 0 in
  let visible u v =
    match fault with
    | None -> true
    | Some (f, query) ->
      let k = !attempts in
      incr attempts;
      if Fault.crashed f v then begin
        if !Ron_obs.Probe.on then Ron_obs.Probe.fault_crashed_hit ();
        false
      end
      else if Fault.link_dead f u v then begin
        if !Ron_obs.Probe.on then Ron_obs.Probe.fault_dead_link ();
        false
      end
      else if Fault.drops f ~query ~hop:k then begin
        if !Ron_obs.Probe.on then Ron_obs.Probe.fault_drop ();
        false
      end
      else true
  in
  let advance u best =
    if !Ron_obs.Probe.on then Ron_obs.Probe.meridian_hop ();
    if Ron_obs.Trace.active () then
      Ron_obs.Trace.event "meridian.hop"
        ~args:[ ("from", Ron_obs.Json.Int u); ("to", Ron_obs.Json.Int best) ]
  in
  let rec go u d hops acc =
    (* Poll ring members at scales up to ~2d: anything farther from u than
       2d cannot be closer than d/2 to the target (triangle inequality), so
       those rings are not worth probing — Meridian's beta-restriction. *)
    let limit = scale_of t (2.0 *. d) in
    let best = ref u and best_d = ref d in
    for i = 0 to min limit (t.scales - 1) do
      let members = t.rings.(u).(i) in
      if !Ron_obs.Probe.on then
        Ron_obs.Probe.ring_probe ~members:(List.length members);
      List.iter
        (fun v ->
          if visible u v then begin
            let dv = measure v in
            if dv < !best_d || (dv = !best_d && v < !best) then begin
              best := v;
              best_d := dv
            end
          end)
        members
    done;
    (* Forward only on geometric progress (factor 1/2 as in Meridian),
       otherwise settle here. *)
    if !best <> u && !best_d <= d /. 2.0 then begin
      advance u !best;
      go !best !best_d (hops + 1) (!best :: acc)
    end
    else if !best <> u && !best_d < d then begin
      (* Sub-geometric improvement: take it once, then the next poll decides;
         progress is still strict so the walk terminates. *)
      advance u !best;
      go !best !best_d (hops + 1) (!best :: acc)
    end
    else { found = u; hops; measurements = !measurements; path = List.rev acc }
  in
  let d0 = measure start in
  go start d0 0 [ start ]

let exact_closest t target =
  let best = ref (-1) and best_d = ref infinity in
  Array.iteri
    (fun u m ->
      if m then begin
        let d = Indexed.dist t.idx u target in
        if d < !best_d || (d = !best_d && u < !best) then begin
          best := u;
          best_d := d
        end
      end)
    t.member;
  !best

let join t rng u =
  if t.member.(u) then invalid_arg "Meridian.join: already a member";
  t.member.(u) <- true;
  t.member_count <- t.member_count + 1;
  rebuild_rings_of t rng u;
  (* Gossip into others' rings. *)
  Array.iteri (fun v m -> if m && v <> u then insert_into_ring t rng v u) t.member

let leave t u =
  if not t.member.(u) then invalid_arg "Meridian.leave: not a member";
  if t.member_count <= 1 then invalid_arg "Meridian.leave: cannot empty the overlay";
  t.member.(u) <- false;
  t.member_count <- t.member_count - 1;
  Array.iteri (fun i _ -> t.rings.(u).(i) <- []) t.rings.(u);
  Array.iteri
    (fun v m ->
      if m then
        Array.iteri (fun i l -> t.rings.(v).(i) <- List.filter (( <> ) u) l) t.rings.(v))
    t.member

(* --------------------------------------------------------------- churn *)

(* Deep copy (rings and membership), so a churn run repairs its own overlay
   while the pristine instance keeps serving other sweeps. The Indexed
   substrate is shared — it is immutable. *)
let copy t =
  {
    t with
    member = Array.copy t.member;
    rings = Array.map Array.copy t.rings;
  }

(* Annulus bounds of scale [i], matching [scale_of]: (2^(i-1), 2^i], with
   scale 0 = (0, 1] and the clamped top scale open-ended. *)
let annulus_bounds t i =
  let lo = if i = 0 then 0.0 else Float.of_int (1 lsl (i - 1)) in
  let hi = if i >= t.scales - 1 then infinity else Float.of_int (1 lsl i) in
  (lo, hi)

(* Counted join: the joining node fills its own rings from the live
   membership and gossips itself into theirs — bounded per-event work, no
   global reconstruction. Returns table entries written. *)
let join_counted t rng u =
  join t rng u;
  let inserted = ref 0 in
  Array.iter (fun l -> inserted := !inserted + List.length l) t.rings.(u);
  Array.iteri
    (fun v m ->
      if m && v <> u then
        Array.iter (fun l -> if List.mem u l then incr inserted) t.rings.(v))
    t.member;
  !inserted

(* Counted leave with ranked refill: after purging [u], every ring that
   lost it is topped back up with the nearest live member of the same
   annulus not already present — Meridian's ranked-replacement repair.
   Returns (entries touched, slots refilled). *)
let leave_counted t u =
  if not t.member.(u) then invalid_arg "Meridian.leave_counted: not a member";
  if t.member_count <= 1 then invalid_arg "Meridian.leave_counted: cannot empty the overlay";
  t.member.(u) <- false;
  t.member_count <- t.member_count - 1;
  let updates = ref 0 and refills = ref 0 in
  Array.iteri
    (fun i l ->
      updates := !updates + List.length l;
      t.rings.(u).(i) <- [])
    t.rings.(u);
  Array.iteri
    (fun v m ->
      if m then
        Array.iteri
          (fun i l ->
            if List.mem u l then begin
              let purged = List.filter (( <> ) u) l in
              incr updates;
              let lo, hi = annulus_bounds t i in
              let cands = Indexed.annulus t.idx v lo hi in
              let pick = ref (-1) in
              (try
                 Array.iter
                   (fun w ->
                     if w <> v && t.member.(w) && not (List.mem w purged) then begin
                       pick := w;
                       raise Exit
                     end)
                   cands
               with Exit -> ());
              if !pick >= 0 then begin
                t.rings.(v).(i) <- !pick :: purged;
                incr updates;
                incr refills
              end
              else t.rings.(v).(i) <- purged
            end)
          t.rings.(v))
    t.member;
  (!updates, !refills)

type range_result = { matches : int array; range_hops : int; range_measurements : int }

let within t ~start ~target ~radius =
  if radius < 0.0 then invalid_arg "Meridian.within: negative radius";
  (* Phase 1: locate the closest member (re-using the nearest-node walk). *)
  let seed = closest t ~start ~target in
  let measurements = ref seed.measurements in
  let matches = Hashtbl.create 16 in
  let consulted = Hashtbl.create 16 in
  let queue = Queue.create () in
  let consider v =
    if not (Hashtbl.mem consulted v) then begin
      Hashtbl.replace consulted v ();
      incr measurements;
      if !Ron_obs.Probe.on then Ron_obs.Probe.meridian_probe ();
      if Indexed.dist t.idx v target <= radius then begin
        Hashtbl.replace matches v ();
        Queue.add v queue
      end
    end
  in
  consider seed.found;
  let hops = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr hops;
    (* A member v with d(u,v) > d(u,target) + radius cannot match, so only
       ring scales up to that limit are polled. *)
    let du = Indexed.dist t.idx u target in
    let limit = scale_of t (du +. radius) in
    for i = 0 to min limit (t.scales - 1) do
      let members = t.rings.(u).(i) in
      if !Ron_obs.Probe.on then
        Ron_obs.Probe.ring_probe ~members:(List.length members);
      List.iter consider members
    done
  done;
  let out = Array.of_list (Hashtbl.fold (fun v () acc -> v :: acc) matches []) in
  Ron_util.Fsort.sort_ints out;
  { matches = out; range_hops = !hops; range_measurements = !measurements }

let exact_within t target radius =
  let out = ref [] in
  Array.iteri
    (fun u m -> if m && Indexed.dist t.idx u target <= radius then out := u :: !out)
    t.member;
  let a = Array.of_list !out in
  Ron_util.Fsort.sort_ints a;
  a

(* ----------------------------------------------------------------- Export *)

type export = {
  x_n : int;
  x_scales : int;
  x_members : int array;
  x_rings : int array array array;
  x_dist : float array;
}

let export t =
  let n = Indexed.size t.idx in
  let dist = Array.make (n * n) 0.0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      dist.((u * n) + v) <- Indexed.dist t.idx u v
    done
  done;
  {
    x_n = n;
    x_scales = t.scales;
    x_members = members t;
    x_rings = Array.map (fun rs -> Array.map Array.of_list rs) t.rings;
    x_dist = dist;
  }
