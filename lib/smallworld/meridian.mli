(** Meridian-style closest-node discovery over rings of neighbors
    (Section 6; Wong–Slivkins–Sirer, SIGCOMM 2005 [57]).

    The paper closes by noting that rings of neighbors are "the framework
    used … practically in Meridian, a system for nearest-neighbor and
    multi-range queries in a peer-to-peer network". This module implements
    that object-location service over the same substrate: every member node
    keeps, for each distance scale [i], a ring of up to [ring_size] members
    sampled from the annulus [(2^(i-1), 2^i]] around it.

    A {e closest-node query} locates the member nearest to an external
    target point given only the ability to measure distances to the target:
    the current node measures its ring members against the target and
    forwards to the best one provided it (multiplicatively) beats the
    current distance; otherwise the search stops. On doubling metrics the
    ring structure guarantees geometric progress, so searches take
    O(log Delta) hops; the number of distance measurements per hop is the
    ring cardinality within the polling radius.

    Membership is dynamic: [join] and [leave] maintain the rings (the open
    question the paper's Section 6 raises — here solved centrally-assisted:
    a joining node fills its rings from its own measurements and inserts
    itself into other members' rings by reservoir sampling). *)

type t

val build : Ron_metric.Indexed.t -> Ron_util.Rng.t -> ring_size:int -> members:int array -> t
(** [build idx rng ~ring_size ~members]: an overlay over [members] (a
    subset of the metric's nodes). The metric must be normalized. *)

val members : t -> int array
val is_member : t -> int -> bool

val ring : t -> int -> int -> int array
(** [ring t u i]: the scale-i ring of member [u]. *)

val out_degree : t -> int * float

type result = {
  found : int;  (** the member the search settled on *)
  hops : int;
  measurements : int;  (** target-distance probes issued *)
  path : int list;
}

val closest : ?fault:Ron_fault.Fault.t * int -> t -> start:int -> target:int -> result
(** [closest t ~start ~target]: locate the member closest to [target]
    (which need not be a member), starting from member [start], using only
    ring state and distance measurements to [target].

    [?fault:(model, query)] runs the walk under fault injection: crashed
    ring members, dead links from the polling node, and dropped measurement
    replies (coins keyed by the model's seed, [query], and a serial attempt
    counter — deterministic for a given pair) all make a candidate
    invisible, and the walk advances to the best visible one instead: the
    rings are their own fallback, so the search degrades (possibly settling
    on a worse member) rather than failing. Raises [Invalid_argument] if
    [start] itself is crashed. *)

val exact_closest : t -> int -> int
(** Ground truth for tests: the member genuinely closest to a target. *)

type range_result = {
  matches : int array;  (** members found within the radius, sorted *)
  range_hops : int;  (** members whose rings were consulted *)
  range_measurements : int;
}

val within : t -> start:int -> target:int -> radius:float -> range_result
(** Multi-range query (the second Meridian query type the paper's Section 6
    cites): collect members within [radius] of [target]. Locates the
    closest member first, then explores outward over rings, consulting only
    members that are themselves within the radius and polling only ring
    scales that can intersect the query ball. Returned members all satisfy
    the radius (exact precision); recall is best-effort, like Meridian's. *)

val exact_within : t -> int -> float -> int array
(** Ground truth for tests. *)

val join : t -> Ron_util.Rng.t -> int -> unit
(** Add a node of the underlying metric to the overlay and stitch it into
    the rings. Raises [Invalid_argument] if it is already a member. *)

val leave : t -> int -> unit
(** Remove a member and purge it from every ring. Raises
    [Invalid_argument] if it is not a member or is the last member. *)

val copy : t -> t
(** Deep copy of the overlay (membership and rings); the immutable metric
    substrate is shared. Churn runs repair the copy, leaving the pristine
    instance intact. *)

val join_counted : t -> Ron_util.Rng.t -> int -> int
(** {!join} that also returns the number of ring entries written (the
    joining node's own rings plus its gossip insertions) — the churn
    layer's repair-cost accounting. *)

val leave_counted : t -> int -> int * int
(** {!leave} followed by ranked refill: every ring that lost the departed
    member is topped back up with the nearest live member of the same
    annulus not already present. Returns (entries touched, slots
    refilled). Incremental — per-event work is bounded by the departed
    node's ring presence; no ring is rebuilt from scratch. *)

(** {2 Export}

    Flat state extraction for the off-heap snapshot layer ([ron_serve]).
    Ring arrays preserve each ring's live list order, which the closest-
    member walk depends on for tie-breaking parity. *)

type export = {
  x_n : int;
  x_scales : int;
  x_members : int array;  (** ascending member ids *)
  x_rings : int array array array;  (** per node, per scale, in ring order *)
  x_dist : float array;  (** the [n * n] metric, row-major *)
}

val export : t -> export
