exception Covered

(* u is within (strict) distance r of a marked point iff the prefix of its
   sorted row below r contains one; scanning the ball beats scanning the
   point set, and the binary search makes the empty case O(log n). *)
let near_marked idx marked u r =
  match
    Indexed.ball_iter idx u r (fun v d -> if d < r && marked.(v) then raise Covered)
  with
  | () -> false
  | exception Covered -> true

let r_net idx ?(seeds = [||]) ~r () =
  let n = Indexed.size idx in
  let in_seed = Array.make n false in
  Array.iter (fun p -> in_seed.(p) <- true) seeds;
  (* Phase 1 (parallel, deterministic): which nodes survive the seeds. *)
  let ok = Array.make n false in
  Ron_util.Pool.parallel_for n (fun u -> ok.(u) <- not (near_marked idx in_seed u r));
  (* Phase 2 (sequential greedy, as in the paper): add survivors in id
     order, skipping nodes covered by an earlier addition. *)
  let in_new = Array.make n false in
  let added = ref [] in
  for u = 0 to n - 1 do
    if ok.(u) && not (near_marked idx in_new u r) then begin
      in_new.(u) <- true;
      added := u :: !added
    end
  done;
  Array.append seeds (Array.of_list (List.rev !added))

let is_r_net idx net ~r =
  let n = Indexed.size idx in
  let packing = ref true in
  Array.iteri
    (fun i u ->
      Array.iteri (fun j v -> if j > i && Indexed.dist idx u v < r then packing := false) net)
    net;
  let covering = ref true in
  for u = 0 to n - 1 do
    let covered = Array.exists (fun p -> Indexed.dist idx u p <= r) net in
    if not covered then covering := false
  done;
  !packing && !covering

module Hierarchy = struct
  type t = {
    idx : Indexed.t;
    levels : int array array; (* levels.(j) = points of G_j *)
    member : bool array array; (* member.(j).(u) *)
    jmax : int;
  }

  let create idx =
    if Indexed.size idx >= 2 && Indexed.min_distance idx < 1.0 then
      invalid_arg "Net.Hierarchy.create: metric must be normalized (min distance >= 1)";
    let n = Indexed.size idx in
    let jmax =
      if n < 2 then 0
      else max 1 (int_of_float (ceil (Ron_util.Bits.flog2 (Indexed.diameter idx))))
    in
    let levels = Array.make (jmax + 1) [||] in
    (* Top level: a single node covers everything since 2^jmax >= Delta. *)
    levels.(jmax) <- [| 0 |];
    for j = jmax - 1 downto 0 do
      let r = Ron_util.Bits.pow2 j in
      levels.(j) <- r_net idx ~seeds:levels.(j + 1) ~r ()
    done;
    let member =
      Array.map
        (fun pts ->
          let b = Array.make n false in
          Array.iter (fun u -> b.(u) <- true) pts;
          b)
        levels
    in
    { idx; levels; member; jmax }

  let jmax t = t.jmax

  let clamp t j = max 0 (min t.jmax j)

  let level t j = t.levels.(clamp t j)

  let mem t j u = t.member.(clamp t j).(u)

  let max_level_of t u =
    let rec go j = if j < 0 then -1 else if t.member.(j).(u) then j else go (j - 1) in
    go t.jmax

  let nearest t j u = Indexed.nearest_of t.idx u (level t j)

  let radius t j = Ron_util.Bits.pow2 (clamp t j)
end
