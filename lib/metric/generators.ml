module Rng = Ron_util.Rng

let lp_dist p a b =
  let k = Array.length a in
  if p = infinity then begin
    let m = ref 0.0 in
    for i = 0 to k - 1 do
      m := Float.max !m (Float.abs (a.(i) -. b.(i)))
    done;
    !m
  end
  else begin
    let acc = ref 0.0 in
    for i = 0 to k - 1 do
      acc := !acc +. (Float.abs (a.(i) -. b.(i)) ** p)
    done;
    !acc ** (1.0 /. p)
  end

let euclidean ~name ?(p = 2.0) points =
  if p < 1.0 then invalid_arg "Generators.euclidean: p must be >= 1";
  let n = Array.length points in
  if n = 0 then invalid_arg "Generators.euclidean: no points";
  Metric.create ~name n (fun u v -> lp_dist p points.(u) points.(v))

let grid2d w h =
  if w < 1 || h < 1 then invalid_arg "Generators.grid2d";
  let points =
    Array.init (w * h) (fun i -> [| float_of_int (i mod w); float_of_int (i / w) |])
  in
  euclidean ~name:(Printf.sprintf "grid2d-%dx%d" w h) points

let random_cloud rng ~n ~dim =
  if n < 1 || dim < 1 then invalid_arg "Generators.random_cloud";
  let fresh () = Array.init dim (fun _ -> Rng.float rng 1.0) in
  let points = Array.init n (fun _ -> fresh ()) in
  (* Enforce distinctness: resample any point that collides. *)
  let rec fix u guard =
    if guard > 1000 then failwith "random_cloud: could not separate points";
    let bad = ref false in
    for v = 0 to n - 1 do
      if v <> u && lp_dist 2.0 points.(u) points.(v) = 0.0 then bad := true
    done;
    if !bad then begin
      points.(u) <- fresh ();
      fix u (guard + 1)
    end
  in
  for u = 0 to n - 1 do
    fix u 0
  done;
  Metric.normalize (euclidean ~name:(Printf.sprintf "cloud-n%d-d%d" n dim) points)

let exponential_line n =
  if n < 2 then invalid_arg "Generators.exponential_line";
  if n > 52 then invalid_arg "Generators.exponential_line: n too large for exact floats";
  let xs = Array.init n (fun i -> Float.of_int (1 lsl i)) in
  Metric.create ~name:(Printf.sprintf "expline-%d" n) n (fun u v -> Float.abs (xs.(u) -. xs.(v)))

let exponential_clusters rng ~clusters ~per_cluster ~base =
  if clusters < 2 || per_cluster < 1 then invalid_arg "Generators.exponential_clusters";
  if base < 2.0 then invalid_arg "Generators.exponential_clusters: base must be >= 2";
  if base ** Float.of_int clusters > 1e300 then
    invalid_arg "Generators.exponential_clusters: aspect ratio overflows floats";
  let n = clusters * per_cluster in
  (* Members are spread over [scale, 1.5 * scale]: the spread is relative to
     the cluster's scale so it survives float precision at huge magnitudes
     (an absolute unit jitter underflows beyond ~2^52). Each cluster is a
     scaled copy of a bounded blob, so the metric stays doubling. *)
  let xs =
    Array.init n (fun i ->
        let cluster = i / per_cluster in
        let scale = base ** Float.of_int cluster in
        scale *. (1.0 +. Rng.float rng 0.5))
  in
  (* Enforce distinct positions with a relative bump. *)
  Ron_util.Fsort.sort_floats xs;
  for i = 1 to n - 1 do
    if xs.(i) <= xs.(i - 1) then xs.(i) <- xs.(i - 1) *. (1.0 +. 1e-9)
  done;
  let m =
    Metric.create ~name:(Printf.sprintf "expclusters-%dx%d" clusters per_cluster) n
      (fun u v -> Float.abs (xs.(u) -. xs.(v)))
  in
  Metric.normalize m

let uniform_line n =
  if n < 2 then invalid_arg "Generators.uniform_line";
  Metric.create ~name:(Printf.sprintf "line-%d" n) n (fun u v ->
      Float.abs (float_of_int u -. float_of_int v))

let ring n =
  if n < 3 then invalid_arg "Generators.ring";
  Metric.create ~name:(Printf.sprintf "ring-%d" n) n (fun u v ->
      let k = abs (u - v) in
      float_of_int (min k (n - k)))

let clustered_latency rng ~clusters ~per_cluster ~spread ~access =
  if clusters < 1 || per_cluster < 1 then invalid_arg "Generators.clustered_latency";
  let n = clusters * per_cluster in
  let centers =
    Array.init clusters (fun _ -> (Rng.float rng 1000.0, Rng.float rng 1000.0))
  in
  let points =
    Array.init n (fun i ->
        let (cx, cy) = centers.(i / per_cluster) in
        let angle = Rng.float rng (2.0 *. Float.pi) in
        let radius = Rng.float rng spread in
        [| cx +. (radius *. cos angle); cy +. (radius *. sin angle) |])
  in
  let delays = Array.init n (fun _ -> Rng.float rng access) in
  (* Canonicalize the argument order so the float summation is performed
     identically for (u,v) and (v,u): exact symmetry. *)
  let base = Metric.create ~name:"latency" n (fun u v ->
      if u = v then 0.0
      else begin
        let a = min u v and b = max u v in
        lp_dist 2.0 points.(a) points.(b) +. delays.(a) +. delays.(b)
      end)
  in
  Metric.normalize base

let three_point_example delta =
  if delta <= 2.0 then invalid_arg "Generators.three_point_example: Delta must exceed 2";
  let xs = [| 1.0; 2.0; delta |] in
  Metric.create ~name:"three-point" 3 (fun u v -> Float.abs (xs.(u) -. xs.(v)))
