type ball = { center : int; radius : float; members : int array }

type t = { eps : float; n : int; balls : ball array; owner : int array }

(* The Appendix-A descent for one node: returns a candidate ball. *)
let candidate idx ~eps u =
  let n = Indexed.size idx in
  let meas members_count = float_of_int members_count /. float_of_int n in
  let r_u = Indexed.r_eps idx u eps in
  if r_u = 0.0 then { center = u; radius = 0.0; members = [| u |] }
  else begin
    let rec descend c rho =
      if rho < Indexed.min_distance idx then
        (* Only the center remains: the "heavy single node" case. *)
        { center = c; radius = 0.0; members = [| c |] }
      else begin
        let members = Indexed.ball idx c rho in
        let centers = Doubling.greedy_cover idx members ~radius:(rho /. 8.0) in
        (* Heaviest cover ball by global measure. *)
        let best = ref centers.(0) and best_count = ref (-1) in
        Array.iter
          (fun v ->
            let k = Indexed.ball_count idx v (rho /. 8.0) in
            if k > !best_count then begin
              best := v;
              best_count := k
            end)
          centers;
        let v = !best in
        if meas (Indexed.ball_count idx v (rho /. 2.0)) <= eps then
          { center = v; radius = rho /. 8.0; members = Indexed.ball idx v (rho /. 8.0) }
        else descend v (rho /. 2.0)
      end
    in
    descend u r_u
  end

let create idx ~eps =
  if not (eps > 0.0 && eps <= 1.0) then invalid_arg "Packing.create: eps must be in (0,1]";
  let n = Indexed.size idx in
  (* Each descent reads only the immutable index: parallel over nodes. The
     maximal-disjoint scan below is order-dependent and stays serial. *)
  let candidates = Ron_util.Pool.init n (fun u -> candidate idx ~eps u) in
  (* Maximal disjoint subfamily, scanning candidates in node order. *)
  let owner = Array.make n (-1) in
  let chosen = ref [] in
  let count = ref 0 in
  Array.iter
    (fun b ->
      let disjoint = Array.for_all (fun v -> owner.(v) < 0) b.members in
      if disjoint then begin
        Array.iter (fun v -> owner.(v) <- !count) b.members;
        chosen := b :: !chosen;
        incr count
      end)
    candidates;
  { eps; n; balls = Array.of_list (List.rev !chosen); owner }

let eps t = t.eps
let balls t = t.balls

let measure_of t b = float_of_int (Array.length b.members) /. float_of_int t.n

let ball_index_of_member t u = if t.owner.(u) < 0 then None else Some t.owner.(u)

let covering_ball t idx u =
  if Array.length t.balls = 0 then invalid_arg "Packing.covering_ball: empty packing";
  let score b = Indexed.dist idx u b.center +. b.radius in
  let best = ref t.balls.(0) and best_score = ref (score t.balls.(0)) in
  Array.iter
    (fun b ->
      let s = score b in
      if s < !best_score then begin
        best := b;
        best_score := s
      end)
    t.balls;
  !best
