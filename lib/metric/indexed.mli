(** A metric with per-node sorted distance arrays: the workhorse index.

    Every construction in the paper repeatedly needs closed balls [B_u(r)]
    and the radii [r_u(eps)] of the smallest balls of a given measure
    (Section 1.1). Precomputing, for each node, the array of
    [(distance, node)] pairs sorted by distance makes both O(log n). *)

type t

val create : ?jobs:int -> Metric.t -> t
(** O(n^2 log n) preprocessing. Rows are unboxed [float array]/[int array]
    pairs sorted by a monomorphic float-keyed sort; equal distances are
    tie-broken by ascending node id. Construction is parallelized over
    domains ([?jobs], else [RON_JOBS], else the hardware recommendation —
    see {!Ron_util.Pool}); the result is identical at every job count. *)

val create_reference : Metric.t -> t
(** The pre-optimization construction (boxed tuples, polymorphic compare,
    sequential), kept as the measured baseline for [bench/main.exe --json]
    and for equivalence tests. Produces a result identical to {!create}. *)

val metric : t -> Metric.t
val size : t -> int
val dist : t -> int -> int -> float

val diameter : t -> float
val min_distance : t -> float
val aspect_ratio : t -> float

val log2_aspect_ratio : t -> int
(** [ceil(log2 (aspect_ratio))], at least 1: the number of distance scales,
    the paper's [log Delta]. *)

val log2_size : t -> int
(** [ceil(log2 n)], at least 1: the number of cardinality scales, the
    paper's [log n]. *)

val nth_neighbor : t -> int -> int -> int * float
(** [nth_neighbor t u k] is the [k]-th closest node to [u] (k = 0 is [u]
    itself) together with its distance. *)

val ball : t -> int -> float -> int array
(** [ball t u r]: nodes of the closed ball [B_u(r)], in non-decreasing order
    of distance from [u] (so [u] first), equal distances in ascending node
    id. Negative radius yields [[||]]. *)

val ball_count : t -> int -> float -> int
(** Cardinality of the closed ball, computed without materializing it. *)

val ball_iter : t -> int -> float -> (int -> float -> unit) -> unit
(** Iterate [(node, distance)] over the closed ball without allocation. *)

val ball_filter : t -> int -> float -> (int -> bool) -> int array
(** [ball_filter t u r keep]: the members of the closed ball [B_u(r)]
    satisfying [keep], in non-decreasing order of distance from [u] —
    [ball] composed with a filter, without the intermediate array/list
    round-trip. *)

val annulus : t -> int -> float -> float -> int array
(** [annulus t u r_in r_out]: nodes [v] with [r_in < d(u,v) <= r_out]. *)

val radius_for_count : t -> int -> int -> float
(** [radius_for_count t u k]: radius of the smallest closed ball around [u]
    containing at least [k] nodes (counting [u]); requires [1 <= k <= n]. *)

val r_eps : t -> int -> float -> float
(** [r_eps t u eps]: the paper's [r_u(eps)] — the radius of the smallest
    closed ball around [u] of counting measure at least [eps], i.e.
    containing at least [ceil(eps * n)] nodes. *)

val r_level : t -> int -> int -> float
(** [r_level t u i] is [r_u(2^-i)], the paper's [r_ui]: smallest ball with at
    least [ceil(n / 2^i)] nodes. [r_level t u 0] spans the whole space; for
    [i >= log2_size t] it is 0 (the singleton ball). Out-of-range [i < 0]
    returns [infinity] (the paper's convention [r_(u,-1)] = unbounded). *)

val nearest_of : t -> int -> int array -> int * float
(** [nearest_of t u candidates]: the candidate closest to [u] (ties broken by
    smallest node id) and its distance; candidates must be non-empty. *)
