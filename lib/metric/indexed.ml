(* Distances and node ids are kept in parallel unboxed arrays (rather than
   tuple arrays) so that an index over n nodes costs ~16 n^2 bytes; this is
   what allows the experiments to run at n in the thousands. Rows are built
   with no per-entry boxing and sorted by a monomorphic float-keyed merge
   sort (Ron_util.Fsort); rows are independent, so construction is
   parallelized over domains (Ron_util.Pool, RON_JOBS). *)
type t = {
  metric : Metric.t;
  (* sorted_d.(u).(k) / sorted_v.(u).(k): distance and id of the k-th
     closest node to u (k = 0 is u itself). Equal distances are tie-broken
     by ascending node id: ids start in increasing order and the sort is
     stable. *)
  sorted_d : float array array;
  sorted_v : int array array;
  diameter : float;
  min_distance : float;
}

let finish m sorted_d sorted_v =
  let n = Metric.size m in
  let diameter = ref 0.0 and dmin = ref infinity in
  for u = 0 to n - 1 do
    let far = sorted_d.(u).(n - 1) in
    if far > !diameter then diameter := far;
    if n > 1 then begin
      let near = sorted_d.(u).(1) in
      if near < !dmin then dmin := near
    end
  done;
  { metric = m; sorted_d; sorted_v; diameter = !diameter; min_distance = !dmin }

(* Per-domain merge-sort scratch, reused across rows (and across calls);
   grown on demand. Each domain sees its own pair, so parallel row builds
   never share a buffer. *)
let scratch : (float array * int array) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref ([||], [||]))

let with_scratch n =
  let r = Domain.DLS.get scratch in
  let (d, _) = !r in
  if Array.length d >= n then !r
  else begin
    let s = (Array.make n 0.0, Array.make n 0) in
    r := s;
    s
  end

let create ?jobs m =
  let n = Metric.size m in
  let sorted_d = Array.make n [||] and sorted_v = Array.make n [||] in
  Ron_util.Pool.parallel_for ?jobs n (fun u ->
      let d = Array.make n 0.0 and v = Array.make n 0 in
      for w = 0 to n - 1 do
        Array.unsafe_set d w (Metric.dist m u w);
        Array.unsafe_set v w w
      done;
      let (scratch_d, scratch_v) = with_scratch n in
      Ron_util.Fsort.dual_sort ~scratch_d ~scratch_v d v;
      sorted_d.(u) <- d;
      sorted_v.(u) <- v);
  finish m sorted_d sorted_v

(* The pre-optimization construction (boxed (float, int) tuples sorted with
   the polymorphic comparator), kept verbatim as the baseline that
   bench/main.exe --json and the equivalence tests measure against. Tuple
   order (distance, id) ties by id, matching [create]. *)
let create_reference m =
  let n = Metric.size m in
  let sorted_d = Array.make n [||] and sorted_v = Array.make n [||] in
  for u = 0 to n - 1 do
    let row = Array.init n (fun v -> (Metric.dist m u v, v)) in
    Array.sort compare row;
    sorted_d.(u) <- Array.map fst row;
    sorted_v.(u) <- Array.map snd row
  done;
  finish m sorted_d sorted_v

let metric t = t.metric
let size t = Metric.size t.metric
let dist t u v =
  if !Ron_obs.Probe.on then Ron_obs.Probe.dist_eval ();
  Metric.dist t.metric u v
let diameter t = t.diameter
let min_distance t = t.min_distance

let aspect_ratio t = if size t < 2 then 1.0 else t.diameter /. t.min_distance

let log2_aspect_ratio t =
  let a = aspect_ratio t in
  max 1 (int_of_float (ceil (Ron_util.Bits.flog2 (max 2.0 a))))

let log2_size t = max 1 (Ron_util.Bits.ilog2_ceil (max 2 (size t)))

let nth_neighbor t u k = (t.sorted_v.(u).(k), t.sorted_d.(u).(k))

(* Number of nodes at distance <= r from u: binary search for the last index
   with distance <= r. *)
let count_le t u r =
  if !Ron_obs.Probe.on then Ron_obs.Probe.ball_query ();
  if r < 0.0 then 0
  else begin
    let row = t.sorted_d.(u) in
    let n = Array.length row in
    let rec go lo hi =
      (* invariant: row.(lo-1) <= r (or lo = 0), row.(hi) > r (or hi = n) *)
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if row.(mid) <= r then go (mid + 1) hi else go lo mid
    in
    go 0 n
  end

let ball_count = count_le

let ball t u r =
  let k = count_le t u r in
  Array.sub t.sorted_v.(u) 0 k

let ball_iter t u r f =
  let k = count_le t u r in
  for i = 0 to k - 1 do
    f t.sorted_v.(u).(i) t.sorted_d.(u).(i)
  done

let ball_filter t u r keep =
  let k = count_le t u r in
  let row = t.sorted_v.(u) in
  let out = Array.make k 0 in
  let m = ref 0 in
  for i = 0 to k - 1 do
    let v = Array.unsafe_get row i in
    if keep v then begin
      Array.unsafe_set out !m v;
      incr m
    end
  done;
  if !m = k then out else Array.sub out 0 !m

let annulus t u r_in r_out =
  let k_in = count_le t u r_in and k_out = count_le t u r_out in
  Array.sub t.sorted_v.(u) k_in (max 0 (k_out - k_in))

let radius_for_count t u k =
  if !Ron_obs.Probe.on then Ron_obs.Probe.ball_query ();
  let n = size t in
  if k < 1 || k > n then invalid_arg "Indexed.radius_for_count";
  t.sorted_d.(u).(k - 1)

let r_eps t u eps =
  let n = size t in
  let k = int_of_float (ceil (eps *. float_of_int n)) in
  radius_for_count t u (max 1 (min n k))

let r_level t u i =
  if i < 0 then infinity
  else begin
    let n = size t in
    (* ceil (n / 2^i), computed in integers to avoid float rounding. *)
    let p = if i >= 62 then max_int else 1 lsl i in
    let k = if p >= n then 1 else (n + p - 1) / p in
    radius_for_count t u k
  end

let nearest_of t u candidates =
  if Array.length candidates = 0 then invalid_arg "Indexed.nearest_of: empty";
  let best = ref candidates.(0) and best_d = ref (dist t u candidates.(0)) in
  Array.iter
    (fun v ->
      let d = dist t u v in
      if d < !best_d || (d = !best_d && v < !best) then begin
        best := v;
        best_d := d
      end)
    candidates;
  (!best, !best_d)
