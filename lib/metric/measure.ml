module Rng = Ron_util.Rng

type t = { mu : float array }

let create idx hier =
  let n = Indexed.size idx in
  let jmax = Net.Hierarchy.jmax hier in
  (* mass_at.(u) is the mass of u at the level currently being processed. *)
  let mass_at = Array.make n 0.0 in
  Array.iter (fun u -> mass_at.(u) <- 1.0 /. float_of_int (Array.length (Net.Hierarchy.level hier jmax)))
    (Net.Hierarchy.level hier jmax);
  for j = jmax - 1 downto 0 do
    (* Assign each level-j point to its nearest level-(j+1) parent (a point
       that is itself in G_(j+1) is its own parent, distance 0). The
       nearest-parent searches are independent, hence parallel; every node
       has exactly one parent, so the mass split below is order-free. *)
    let pts = Net.Hierarchy.level hier j in
    let parent =
      Ron_util.Pool.map (fun q -> fst (Net.Hierarchy.nearest hier (j + 1) q)) pts
    in
    let kid_count = Array.make n 0 in
    Array.iter (fun p -> kid_count.(p) <- kid_count.(p) + 1) parent;
    let next = Array.make n 0.0 in
    Array.iteri
      (fun i q ->
        let p = parent.(i) in
        next.(q) <- mass_at.(p) /. float_of_int kid_count.(p))
      pts;
    Array.blit next 0 mass_at 0 n
  done;
  (* G_0 is the whole node set on a normalized metric, so every node now has
     positive mass. *)
  { mu = mass_at }

let mass t u = t.mu.(u)

let ball_mass t idx u r =
  let acc = ref 0.0 in
  Indexed.ball_iter idx u r (fun v _ -> acc := !acc +. t.mu.(v));
  !acc

let cumulative_by_distance t idx u =
  let n = Indexed.size idx in
  let c = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    let (v, _) = Indexed.nth_neighbor idx u k in
    acc := !acc +. t.mu.(v);
    c.(k) <- !acc
  done;
  c

let doubling_constant_estimate t idx ?(samples = 200) rng =
  let n = Indexed.size idx in
  let worst = ref 1.0 in
  for _ = 1 to samples do
    let u = Rng.int rng n in
    let k = 2 + Rng.int rng (max 1 (n - 2)) in
    let r = Indexed.radius_for_count idx u k in
    if r > 0.0 then begin
      let big = ball_mass t idx u r and small = ball_mass t idx u (r /. 2.0) in
      if small > 0.0 then worst := Float.max !worst (big /. small)
    end
  done;
  !worst
