module Rng = Ron_util.Rng
module Scheme = Ron_routing.Scheme
module Probe = Ron_obs.Probe
module Trace = Ron_obs.Trace

(* The failure model is entirely value-determined: the crashed set is fixed
   at [make] time from the seed, and the per-hop / per-link coin flips are
   pure functions of (seed, query, hop) and (seed, link) through [Rng.mix].
   Nothing here owns mutable state shared between queries, which is what
   makes a fault sweep bit-identical at every RON_JOBS. *)
type t = {
  seed : int;
  n : int;
  drop_rate : float;
  dead_link_fraction : float;
  crashed_set : bool array; (* length n; all-false when crash_fraction = 0 *)
  crash_count : int;
}

let none =
  {
    seed = 0;
    n = 0;
    drop_rate = 0.0;
    dead_link_fraction = 0.0;
    crashed_set = [||];
    crash_count = 0;
  }

(* Domain-separation tags for the independent streams drawn from one seed. *)
let tag_crash = 0x1c0de
let tag_drop = 0x2d509
let tag_link = 0x3dead

let make ?(seed = 0) ?(crash_fraction = 0.0) ?(drop_rate = 0.0) ?(dead_link_fraction = 0.0) ~n ()
    =
  if n < 0 then invalid_arg "Fault.make: n must be non-negative";
  let check name x =
    if not (x >= 0.0 && x < 1.0) then
      invalid_arg (Printf.sprintf "Fault.make: %s must be in [0, 1)" name)
  in
  check "crash_fraction" crash_fraction;
  check "drop_rate" drop_rate;
  check "dead_link_fraction" dead_link_fraction;
  Ron_obs.Profile.phase "fault.make" @@ fun () ->
  let k = int_of_float (crash_fraction *. float_of_int n) in
  let crashed_set = Array.make (max 1 n) false in
  if k > 0 then begin
    (* A seeded shuffle of the node ids; the first k are the casualties. *)
    let order = Array.init n Fun.id in
    Rng.shuffle (Rng.create (Rng.mix seed tag_crash)) order;
    for i = 0 to k - 1 do
      crashed_set.(order.(i)) <- true
    done
  end;
  { seed; n; drop_rate; dead_link_fraction; crashed_set; crash_count = k }

let is_null t = t.drop_rate = 0.0 && t.dead_link_fraction = 0.0 && t.crash_count = 0

let seed t = t.seed
let crash_count t = t.crash_count
let drop_rate t = t.drop_rate
let dead_link_fraction t = t.dead_link_fraction

let crashed t v = t.crash_count > 0 && v >= 0 && v < t.n && t.crashed_set.(v)

let crashed_nodes t =
  if t.crash_count = 0 then [||]
  else begin
    let out = Array.make t.crash_count 0 in
    let j = ref 0 in
    for v = 0 to t.n - 1 do
      if t.crashed_set.(v) then begin
        out.(!j) <- v;
        incr j
      end
    done;
    out
  end

(* Uniform float in [0, 1) from a keyed hash. [Rng.mix] masks to the native
   int range, i.e. 62 value bits — divide by 2^62, not 2^63, or every draw
   lands in [0, 0.5) and the effective rates double. *)
let unit_float h = float_of_int h /. 4.611686018427387904e18 (* 2^62 *)

let link_dead t u v =
  t.dead_link_fraction > 0.0
  &&
  (* Normalize so both directions of a link agree on its fate. *)
  let a = min u v and b = max u v in
  unit_float (Rng.mix (Rng.mix (Rng.mix t.seed tag_link) a) b) < t.dead_link_fraction

let drops t ~query ~hop =
  t.drop_rate > 0.0
  && unit_float (Rng.mix (Rng.mix (Rng.mix t.seed tag_drop) query) hop) < t.drop_rate

let describe t =
  if is_null t then "fault-free"
  else
    Printf.sprintf "seed %d | crashed %d/%d | drop %.3f | dead links %.3f" t.seed t.crash_count
      t.n t.drop_rate t.dead_link_fraction

let wrapper t ~query : Scheme.wrapper =
  if is_null t then Scheme.identity_wrapper
  else
    {
      (* Drop draws are keyed by the hop count, so the wrapped step is no
         longer a pure function of (node, header): a revisited state may
         legitimately take a different branch later. Brent detection off. *)
      Scheme.detect_cycles = false;
      wrap =
        (fun step ~alternates ->
          (* One counter per wrapped route; [Scheme.simulate] invokes the
             step sequentially, so the hop index is deterministic. *)
          let hop = ref 0 in
          fun u h ->
            let k = !hop in
            incr hop;
            if drops t ~query ~hop:k then begin
              if !Probe.on then Probe.fault_drop ();
              if Trace.active () then
                Trace.event "fault.drop"
                  ~args:[ ("node", Ron_obs.Json.Int u); ("hop", Ron_obs.Json.Int k) ];
              Scheme.Drop
            end
            else
              match step u h with
              | Scheme.Deliver -> Scheme.Deliver
              | Scheme.Drop -> Scheme.Drop
              | Scheme.Forward (next, h') ->
                let blocked v =
                  if crashed t v then begin
                    if !Probe.on then Probe.fault_crashed_hit ();
                    true
                  end
                  else if link_dead t u v then begin
                    if !Probe.on then Probe.fault_dead_link ();
                    true
                  end
                  else false
                in
                if not (blocked next) then Scheme.Forward (next, h')
                else begin
                  (* The primary hop is dead: walk the scheme's ranked
                     alternates and detour through the first live one. The
                     search is the fault layer's own query-time cost, so it
                     is a profiler phase of its own (count = blocked hops). *)
                  Ron_obs.Profile.phase "fault.detour_search" @@ fun () ->
                  let rec try_alts = function
                    | [] ->
                      if Trace.active () then
                        Trace.event "fault.exhausted"
                          ~args:[ ("node", Ron_obs.Json.Int u); ("hop", Ron_obs.Json.Int k) ];
                      Scheme.Drop
                    | (v, h'') :: rest ->
                      if v = next then try_alts rest
                      else begin
                        if !Probe.on then Probe.fault_retry ();
                        if blocked v then try_alts rest
                        else begin
                          if !Probe.on then Probe.fault_detour ();
                          if Trace.active () then
                            Trace.event "fault.detour"
                              ~args:
                                [
                                  ("node", Ron_obs.Json.Int u);
                                  ("dead", Ron_obs.Json.Int next);
                                  ("via", Ron_obs.Json.Int v);
                                  ("hop", Ron_obs.Json.Int k);
                                ];
                          Scheme.Forward (v, h'')
                        end
                      end
                  in
                  try_alts (alternates u h)
                end);
    }
