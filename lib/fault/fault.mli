(** Deterministic fault injection and graceful degradation for the packet
    simulator.

    A fault model bundles three seeded failure processes:

    - a {e crashed-node set}: a fixed fraction of nodes selected once per
      model from the seed — a crashed node never accepts a packet;
    - {e per-hop Bernoulli message drop}: each step of each query flips a
      coin keyed by (seed, query, hop) — a lost packet is simply gone;
    - {e dead links}: each (undirected) node pair flips a coin keyed by
      (seed, endpoints) — a dead link blocks forwarding in both directions
      while leaving its endpoints alive.

    All three are pure functions of the seed and their keys ({!Ron_util.Rng.mix}
    hash chains — no mutable generator state), so a fault sweep is
    bit-identical across [RON_JOBS] settings, evaluation orders, and reruns.

    {!wrapper} turns a model into a {!Ron_routing.Scheme.wrapper}: the
    wrapped step draws the drop coin, checks the primary next hop against
    the crashed set and dead links, and on failure detours through the
    scheme's ranked alternate hops — the retry/fallback policy — returning
    {!Ron_routing.Scheme.Drop} only when every alternate is dead too. The
    scheme itself never learns faults exist. *)

type t

val none : t
(** The null model: no crashes, no drops, no dead links. *)

val make :
  ?seed:int ->
  ?crash_fraction:float ->
  ?drop_rate:float ->
  ?dead_link_fraction:float ->
  n:int ->
  unit ->
  t
(** [make ~n ()] builds a model over node ids [0..n-1]. All rates default
    to [0.0] and must lie in [[0, 1)]; [crash_fraction] crashes
    [floor (crash_fraction * n)] seed-chosen nodes. Equal arguments yield
    an identical model (the crashed set included). *)

val is_null : t -> bool
(** No failure process is active — {!wrapper} degenerates to
    {!Ron_routing.Scheme.identity_wrapper}, so routing through it is
    byte-identical to the fault-free path. *)

val seed : t -> int
val crash_count : t -> int
val drop_rate : t -> float
val dead_link_fraction : t -> float

val crashed : t -> int -> bool
(** [crashed t v]: is node [v] in the crashed set? (Out-of-range ids are
    not crashed.) Use it to exclude dead endpoints when sampling query
    pairs. *)

val crashed_nodes : t -> int array
(** The crashed set, ascending. *)

val link_dead : t -> int -> int -> bool
(** [link_dead t u v]: is the (undirected) link between [u] and [v] dead?
    Symmetric in its arguments. *)

val drops : t -> query:int -> hop:int -> bool
(** The Bernoulli drop draw for the given (query, hop) key — exposed for
    tests that pin the schedule. *)

val describe : t -> string
(** One-line human summary ("seed 7 | crashed 12/400 | drop 0.010 | ..."). *)

val wrapper : t -> query:int -> Ron_routing.Scheme.wrapper
(** The fault-injecting step transformer for one query, to pass to a
    scheme's [route_wrapped]. [query] keys the drop draws; use a stable
    query index, not anything order-dependent.

    When a fault fires or a fallback is taken the wrapper bumps the
    [fault.*] probe counters (under {!Ron_obs.Probe.on}) and emits
    [fault.drop] / [fault.detour] / [fault.exhausted] trace events (under
    an active sink). The wrapper disables the simulator's cycle detection —
    drop draws are keyed by hop count, so the wrapped step is not a pure
    function of (node, header) — except in the {!is_null} case, which
    returns the identity wrapper unchanged. *)
