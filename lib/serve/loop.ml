(* The batch serving loop over a frozen server.

   Workloads are generated off-heap as Bigarray columns whose entries are
   pure functions of (seed, global query index) — [Rng.mix] draws and the
   Zipf sampler from [Ron_util.Workload] — so a workload is bit-identical
   at every RON_JOBS and under any evaluation order. Execution shards each
   batch across Pool domains into disjoint result slots, so result columns
   (and their digest) are also jobs-invariant. *)

module A1 = Bigarray.Array1
module Pool = Ron_util.Pool
module Rng = Ron_util.Rng
module Workload = Ron_util.Workload
module Probe = Ron_obs.Probe
module Gauge = Ron_obs.Gauge
module Telemetry = Ron_obs.Telemetry
module Flight = Ron_obs.Flight
module Slo = Ron_obs.Slo

type ints = Image.ints
type floats = Image.floats

let[@inline always] ig (a : ints) i = A1.unsafe_get a i

let default_batch = 65536

(* ------------------------------------------------------------- workload *)

type workload = { wq : int; w_kind : ints; w_src : ints; w_dst : ints }

let queries w = w.wq
let kind_of w i = ig w.w_kind i
let src_of w i = ig w.w_src i
let dst_of w i = ig w.w_dst i

(* Per-query draw streams, keyed off the workload seed. *)
let kind_seed seed = Rng.mix seed 1
let dst_seed seed = Rng.mix seed 2
let src_seed seed = Rng.mix seed 3

let prepare t ~seed ~queries ~zipf_s ~route_frac ~dist_frac =
  if queries < 0 then invalid_arg "Loop.prepare: negative query count";
  if not (route_frac >= 0.0 && dist_frac >= 0.0 && route_frac +. dist_frac <= 1.0) then
    invalid_arg "Loop.prepare: traffic mix must be non-negative and sum to at most 1";
  let n = Server.size t in
  let zipf = Workload.Zipf.create ~n ~s:zipf_s in
  let srcs = Server.sources t in
  let w_kind = Image.ints_create queries in
  let w_src = Image.ints_create queries in
  let w_dst = Image.ints_create queries in
  let ks = kind_seed seed and ds = dst_seed seed and ss = src_seed seed in
  for i = 0 to queries - 1 do
    let uk = Workload.u01 ~seed:ks i in
    let kind =
      if uk < route_frac then 0 else if uk < route_frac +. dist_frac then 1 else 2
    in
    A1.unsafe_set w_kind i (Server.effective_kind t kind);
    (* Zipf rank k names node k: rank 0 is the hottest target. *)
    A1.unsafe_set w_dst i (Workload.Zipf.sample_at zipf ~seed:ds i);
    let r = Rng.mix ss i in
    let src =
      match srcs with Some members -> ig members (r mod A1.dim members) | None -> r mod n
    in
    A1.unsafe_set w_src i src
  done;
  { wq = queries; w_kind; w_src; w_dst }

(* -------------------------------------------------------------- results *)

(* Result columns, by effective kind:
   route:  ra = outcome, rb = hops, rx = path length, ry = header bits
   dist:   ra = 0,       rb = 0,    rx = lower bound, ry = upper bound
   locate: ra = found,   rb = hops, rx = measurements, ry = 0 *)
type results = { ra : ints; rb : ints; rx : floats; ry : floats }

let results_create q =
  {
    ra = Image.ints_create q;
    rb = Image.ints_create q;
    rx = Image.floats_create q;
    ry = Image.floats_create q;
  }

(* One query into result slot [i]. Top-level and float-free (floats move
   straight from scratch slots into the float64 columns, unboxed), so the
   steady-state loop body allocates nothing. *)
let run_query t sc work res i =
  let kind = ig work.w_kind i in
  Server.query t sc ~kind ~src:(ig work.w_src i) ~dst:(ig work.w_dst i);
  if kind = 0 then begin
    A1.unsafe_set res.ra i sc.Server.r_outcome;
    A1.unsafe_set res.rb i sc.Server.r_hops;
    A1.unsafe_set res.rx i sc.Server.fbuf.(2);
    A1.unsafe_set res.ry i (float_of_int sc.Server.r_aux)
  end
  else if kind = 1 then begin
    A1.unsafe_set res.ra i 0;
    A1.unsafe_set res.rb i 0;
    A1.unsafe_set res.rx i sc.Server.fbuf.(3);
    A1.unsafe_set res.ry i sc.Server.fbuf.(4)
  end
  else begin
    A1.unsafe_set res.ra i sc.Server.r_next;
    A1.unsafe_set res.rb i sc.Server.r_hops;
    A1.unsafe_set res.rx i (float_of_int sc.Server.r_aux);
    A1.unsafe_set res.ry i 0.0
  end

(* ------------------------------------------------------------ execution *)

(* Run the whole workload in batches of [batch], each sharded across Pool
   domains into disjoint result slots. Chunk boundaries depend only on
   (size, jobs), so results are bit-identical at every job count. *)
let run ?(batch = default_batch) ?jobs t work res =
  if batch < 1 then invalid_arg "Loop.run: batch must be positive";
  let q = work.wq in
  let b = ref 0 in
  while !b < q do
    let b0 = !b in
    let size = min batch (q - b0) in
    if !Probe.on then Probe.serve_batch ~size ~inflight:size;
    Pool.parallel_for ?jobs size (fun k ->
        run_query t (Server.scratch_for t) work res (b0 + k));
    if !Telemetry.active then Telemetry.tick ();
    b := b0 + size
  done;
  if !Probe.on then Gauge.set_int Probe.serve_inflight 0

(* ----------------------------------------------------------- observed run *)

(* The latency clock for observed serving. Wall mode reads gettimeofday
   around each query (honest nanoseconds, not replayable); logical mode
   charges a deterministic per-query cost — 1 for a dist lookup, else
   [hops * 256 + min aux 255] — a pure function of the query's result, so
   observed latencies (hence flight dumps and SLO verdicts) are
   bit-identical at every RON_JOBS. *)
let[@inline] logical_cost (sc : Server.scratch) kind =
  if kind = 1 then 1 else (sc.Server.r_hops * 256) + min sc.Server.r_aux 255

(* One observed query: optional per-hop capture, latency on the chosen
   clock, a flight-recorder record, and the query's slot in the latency
   column feeding the SLO monitor. Runs on the worker domain; every write
   outside the scratch goes to slot [i] of an off-heap column or into the
   worker's own flight shard, so workers never contend. *)
let observed_query t sc work res ~scheme ~wall ~flight ~lat_col i =
  let want_tr = match flight with Some f -> Flight.want_trace f i | None -> false in
  sc.Server.log_hops <- want_tr;
  let t0 = if wall then Unix.gettimeofday () else 0.0 in
  run_query t sc work res i;
  let kind = ig work.w_kind i in
  let lat =
    if wall then int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)
    else logical_cost sc kind
  in
  (match flight with
  | Some f ->
    let outcome = if kind = 0 then sc.Server.r_outcome else 0 in
    let trace_len =
      if want_tr then min sc.Server.hop_len (Array.length sc.Server.hop_log) else -1
    in
    Flight.record f ~qid:i ~scheme ~kind ~src:(ig work.w_src i) ~dst:(ig work.w_dst i)
      ~outcome ~hops:sc.Server.r_hops ~lat ~trace:sc.Server.hop_log ~trace_len
  | None -> ());
  (match lat_col with
  | Some col -> A1.unsafe_set col i (float_of_int lat)
  | None -> ());
  (* Leave the shared scratch clean for any later plain [run]. *)
  sc.Server.log_hops <- false

(* [run] plus observability: flight recording on the workers, SLO feeding
   from the orchestrator. Same batching/sharding as [run], so the result
   columns are identical to an unobserved run's. *)
let run_observed ?(batch = default_batch) ?jobs ?(wall = false) ?flight ?slo t work res =
  if batch < 1 then invalid_arg "Loop.run_observed: batch must be positive";
  (* Ring safety: cap the batch so concurrently-recorded qids span at most
     [retain - 1] flight windows — a slot is never recycled mid-batch, and
     across batch barriers recycling only evicts windows the dump has
     already aged out. *)
  let batch =
    match flight with
    | Some fr -> max 1 (min batch (Flight.window fr * (Flight.retain fr - 1)))
    | None -> batch
  in
  let scheme = Server.scheme_tag t in
  let lat_col = match slo with Some _ -> Some (Image.floats_create work.wq) | None -> None in
  let q = work.wq in
  let b = ref 0 in
  while !b < q do
    let b0 = !b in
    let size = min batch (q - b0) in
    if !Probe.on then Probe.serve_batch ~size ~inflight:size;
    Pool.parallel_for ?jobs size (fun k ->
        observed_query t (Server.scratch_for t) work res ~scheme ~wall ~flight ~lat_col
          (b0 + k));
    (* Feed the SLO monitor from the orchestrator, between batches, in qid
       order: windows are sequential state, and the single ordered feeder
       is what keeps the verdict jobs-invariant under the logical clock. *)
    (match (slo, lat_col) with
    | Some s, Some col ->
      for i = b0 to b0 + size - 1 do
        let kind = ig work.w_kind i in
        let ok =
          if kind = 0 then ig res.ra i = 0
          else if kind = 2 then ig res.ra i >= 0
          else true
        in
        Slo.observe s ~lat:(A1.unsafe_get col i) ~ok
      done
    | _ -> ());
    if !Telemetry.active then Telemetry.tick ();
    b := b0 + size
  done;
  (match slo with Some s -> Slo.finish s | None -> ());
  if !Probe.on then Gauge.set_int Probe.serve_inflight 0

(* --------------------------------------------------------------- digest *)

let fnv_prime = 0x100000001b3L

(* Order-sensitive digest of the result columns; equal digests at
   different job counts certify bit-identical serving output. *)
let digest res =
  let mix h c = Int64.mul (Int64.logxor h c) fnv_prime in
  let h = 0xcbf29ce484222325L in
  let h = mix h (Image.checksum_ints res.ra) in
  let h = mix h (Image.checksum_ints res.rb) in
  let h = mix h (Image.checksum_floats res.rx) in
  let h = mix h (Image.checksum_floats res.ry) in
  Int64.to_int (Int64.logand h Int64.max_int)

(* -------------------------------------------------- latency measurement *)

(* Sequential per-query latency pass (wall-clock per query, ns) into a
   bounded-memory bucketed histogram. Separate from the throughput run:
   two gettimeofday calls per query would tax qps. *)
let measure_latency ?(limit = max_int) t work res hist =
  let q = min limit work.wq in
  let sc = Server.scratch_for t in
  for i = 0 to q - 1 do
    let t0 = Unix.gettimeofday () in
    run_query t sc work res i;
    let t1 = Unix.gettimeofday () in
    Ron_obs.Histogram.Bucketed.observe hist ((t1 -. t0) *. 1e9)
  done

(* ------------------------------------------------------------- GC audit *)

(* Steady-state minor-heap allocation per query, in words: one warm pass
   grows every scratch buffer, then an audited sequential pass is measured
   with [Gc.quick_stat] deltas. The quick_stat records themselves cost a
   few dozen words total, amortized to ~0 over the workload. *)
let minor_words_per_query t work res =
  if work.wq = 0 then 0.0
  else begin
    let sc = Server.scratch_for t in
    for i = 0 to work.wq - 1 do
      run_query t sc work res i
    done;
    let s0 = Gc.quick_stat () in
    for i = 0 to work.wq - 1 do
      run_query t sc work res i
    done;
    let s1 = Gc.quick_stat () in
    (s1.Gc.minor_words -. s0.Gc.minor_words) /. float_of_int work.wq
  end
