(* Frozen, off-heap query servers.

   [freeze_*] packs a constructed scheme's exported state into an
   {!Image.t} (Bigarray sections, int-indexed, string-free); [of_image]
   wraps the sections — zero-copy — into per-scheme flat views whose query
   functions replicate the live step functions and [Scheme.simulate]'s
   Brent loop operation for operation, so frozen results are byte-identical
   to the live scheme's.

   The hot path allocates nothing in steady state. The discipline, for the
   non-flambda middle end: every loop is a top-level tail-recursive
   function over ints (inner [let rec]s with free variables allocate a
   closure per call), no hot function takes or returns a float (both are
   boxed across non-inlined calls — float flow goes through the scratch
   [fbuf] float array, whose reads and writes are unboxed), and results
   land in caller-owned scratch registers. Verified by the [Gc.quick_stat]
   minor-words audit in the bench. *)

module A1 = Bigarray.Array1

type ints = Image.ints
type floats = Image.floats

let[@inline always] ig (a : ints) i = A1.unsafe_get a i
let[@inline always] fg (a : floats) i = A1.unsafe_get a i

(* Outcome codes, in declaration order of [Scheme.outcome]. *)
let code_delivered = 0
let code_truncated = 1
let code_self_forward = 2
let code_cycled = 3

(* ------------------------------------------------------- per-domain scratch *)

(* All per-query mutable state. Float accumulators live in [fbuf];
   everything else is ints. Grown only by [prepare_scratch], so
   steady-state queries never allocate.

   fbuf slots: 0 dls min / meridian d; 1 dls best_dv / meridian best_d;
   2 route length; 3 lo; 4 hi; 5 neighbor-selection best_d; 6 score
   result; 7 switch-scale threshold. *)
type scratch = {
  mutable m : int array; (* decoded zooming sequence (Basic) *)
  mutable right_gen : int array; (* DLS join: generation stamp per virtual *)
  mutable right_val : int array;
  mutable gen : int;
  mutable memo_d : float array; (* Labelled per-route score memo *)
  mutable memo_gen : int array;
  mutable mgen : int;
  fbuf : float array;
  mutable best_w : int; (* dls_scan beacon register *)
  mutable sel_w : int; (* neighbor-selection register *)
  mutable r_outcome : int;
  mutable r_hops : int;
  mutable r_next : int; (* found member (locate) *)
  mutable r_aux : int; (* header bits (route) / measurements (locate) *)
  (* Per-hop trace capture for the flight recorder: visited nodes land in
     [hop_log] while [log_hops] is set (the observed loop arms it for the
     deterministically sampled queries only). [hop_len] keeps counting
     past the buffer so callers can see truncation; when off, each hop
     pays one load and a fall-through branch — nothing is written and
     nothing allocates, preserving the 0-words-per-query budget. *)
  hop_log : int array;
  mutable hop_len : int;
  mutable log_hops : bool;
}

let scratch_key : scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        m = [||];
        right_gen = [||];
        right_val = [||];
        gen = 0;
        memo_d = [||];
        memo_gen = [||];
        mgen = 0;
        fbuf = Array.make 8 0.0;
        best_w = -1;
        sel_w = -1;
        r_outcome = 0;
        r_hops = 0;
        r_next = 0;
        r_aux = 0;
        hop_log = Array.make 64 0;
        hop_len = 0;
        log_hops = false;
      })

let ensure sc ~decode ~virt ~nodes =
  if Array.length sc.m < decode then sc.m <- Array.make decode 0;
  if Array.length sc.right_gen < virt then begin
    sc.right_gen <- Array.make virt 0;
    sc.right_val <- Array.make virt 0;
    sc.gen <- 0
  end;
  if Array.length sc.memo_d < nodes then begin
    sc.memo_d <- Array.make nodes 0.0;
    sc.memo_gen <- Array.make nodes 0;
    sc.mgen <- 0
  end

(* ------------------------------------------------------------ frozen DLS *)

type fdls = {
  dn : int;
  dlevels : int;
  dprefix : int;
  dmax_virt : int;
  d_off : ints; (* n+1: CSR over per-node host distances (and hosts) *)
  d_val : floats;
  zoom_first : ints; (* n *)
  zoom_rest : ints; (* n * dlevels *)
  z_off : ints; (* n * dlevels + 1 *)
  z_x : ints;
  z_y : ints;
  z_z : ints;
}

(* First index in [s, e) with zx.(i) >= x (entries sorted by (x, y)). *)
let rec z_lower (zx : ints) s e x =
  if s >= e then s
  else begin
    let mid = (s + e) / 2 in
    if ig zx mid < x then z_lower zx (mid + 1) e x else z_lower zx s mid x
  end

(* Exact (x, y) lookup in [s, e): the z value, or -1. *)
let rec z_find (zx : ints) (zy : ints) (zz : ints) s e x y =
  if s >= e then -1
  else begin
    let mid = (s + e) / 2 in
    let mx = ig zx mid in
    if mx < x || (mx = x && ig zy mid < y) then z_find zx zy zz (mid + 1) e x y
    else if mx = x && ig zy mid = y then ig zz mid
    else z_find zx zy zz s mid x y
  end

(* One candidate pair (iu, iv): fold (du + dv) into fbuf.(0); when
   [exclude >= 0], also track the lex-min (dv, host) beacon excluding that
   node — the Two_mode M1 selection. Mirrors [Dls.candidates]'s emit
   guard; both folds are order-independent, so scan order need not match
   the live candidate list order. *)
let[@inline] dls_emit fd (hosts : ints) sc ~exclude du0 dv0 ku kv iu iv =
  if iu < ku && iv < kv then begin
    let du = fg fd.d_val (du0 + iu) and dv = fg fd.d_val (dv0 + iv) in
    let s = du +. dv in
    if s < sc.fbuf.(0) then sc.fbuf.(0) <- s;
    if exclude >= 0 then begin
      let w = ig hosts (du0 + iu) in
      if w <> exclude && (dv < sc.fbuf.(1) || (dv = sc.fbuf.(1) && w < sc.best_w)) then begin
        sc.best_w <- w;
        sc.fbuf.(1) <- dv
      end
    end
  end

(* Stamp lb's (x = b) run of level-j entries into the y -> z scratch map
   (replacing the live walk's per-level Hashtbl). *)
let rec dls_fill fd sc gen i eb b =
  if i < eb && ig fd.z_x i = b then begin
    let y = ig fd.z_y i in
    sc.right_gen.(y) <- gen;
    sc.right_val.(y) <- ig fd.z_z i;
    dls_fill fd sc gen (i + 1) eb b
  end

(* Join la's (x = a) run against the stamped map, emitting each match. *)
let rec dls_join fd hosts sc ~exclude du0 dv0 ku kv flip gen i ea a =
  if i < ea && ig fd.z_x i = a then begin
    let y = ig fd.z_y i in
    if sc.right_gen.(y) = gen then begin
      let za = ig fd.z_z i and zb = sc.right_val.(y) in
      if flip then dls_emit fd hosts sc ~exclude du0 dv0 ku kv zb za
      else dls_emit fd hosts sc ~exclude du0 dv0 ku kv za zb
    end;
    dls_join fd hosts sc ~exclude du0 dv0 ku kv flip gen (i + 1) ea a
  end

(* The zoom walk of [Dls.walk_candidates] over the flat layout: emit the
   current (a, b) pair, join the two labels' level-j entry runs, then step
   both sides through the source's zoom label; the walk stops silently on
   a failed step, and the final emit fires only when every level stepped
   (j = levels is emit-only). [la]/[lb] are node ids; [flip] swaps the
   emitted pair — the live code's second, symmetric walk. *)
let rec dls_level fd hosts sc ~exclude du0 dv0 ku kv src la lb flip j a b =
  if flip then dls_emit fd hosts sc ~exclude du0 dv0 ku kv b a
  else dls_emit fd hosts sc ~exclude du0 dv0 ku kv a b;
  let levels = fd.dlevels in
  if j < levels then begin
    sc.gen <- sc.gen + 1;
    let gen = sc.gen in
    let sb = ig fd.z_off ((lb * levels) + j) and eb = ig fd.z_off ((lb * levels) + j + 1) in
    dls_fill fd sc gen (z_lower fd.z_x sb eb b) eb b;
    let sa = ig fd.z_off ((la * levels) + j) and ea = ig fd.z_off ((la * levels) + j + 1) in
    dls_join fd hosts sc ~exclude du0 dv0 ku kv flip gen (z_lower fd.z_x sa ea a) ea a;
    let y = ig fd.zoom_rest ((src * levels) + j) in
    let a' = z_find fd.z_x fd.z_y fd.z_z sa ea a y in
    if a' >= 0 then begin
      let b' = z_find fd.z_x fd.z_y fd.z_z sb eb b y in
      if b' >= 0 then
        dls_level fd hosts sc ~exclude du0 dv0 ku kv src la lb flip (j + 1) a' b'
    end
  end

let rec dls_prefix fd hosts sc ~exclude du0 dv0 ku kv k kmax =
  if k < kmax then begin
    dls_emit fd hosts sc ~exclude du0 dv0 ku kv k k;
    dls_prefix fd hosts sc ~exclude du0 dv0 ku kv (k + 1) kmax
  end

(* Candidate scan for the pair (u, v): after the call, fbuf.(0) holds
   min (du + dv) over common beacons (infinity if none) and — when
   [exclude >= 0] — best_w / fbuf.(1) hold the lex-min (dv, host) beacon.
   Matches folding [Dls.candidates]: the candidate multisets agree and
   both folds are order-independent (min / lex-min). *)
let dls_scan fd hosts sc ~u ~v ~exclude =
  sc.fbuf.(0) <- infinity;
  if exclude >= 0 then begin
    sc.fbuf.(1) <- infinity;
    sc.best_w <- -1
  end;
  let du0 = ig fd.d_off u and dv0 = ig fd.d_off v in
  let ku = ig fd.d_off (u + 1) - du0 and kv = ig fd.d_off (v + 1) - dv0 in
  dls_prefix fd hosts sc ~exclude du0 dv0 ku kv 0 fd.dprefix;
  let zv = ig fd.zoom_first v and zu = ig fd.zoom_first u in
  dls_level fd hosts sc ~exclude du0 dv0 ku kv v u v false 0 zv zv;
  dls_level fd hosts sc ~exclude du0 dv0 ku kv u v u true 0 zu zu

(* ---------------------------------------------------------- frozen views *)

type fbasic = {
  bn : int;
  bscales : int;
  bmax_hops : int;
  bhb : ints;
  blabel_first : ints;
  blabel_rest : ints; (* n * (scales - 1) *)
  benum_off : ints; (* n * scales + 1 *)
  benum_node : ints;
  bz_off : ints; (* n * (scales - 1) + 1 *)
  bz_x : ints;
  bz_y : ints;
  bz_z : ints;
  bt_off : ints; (* n + 1 *)
  bt_w : ints;
  bt_next : ints;
  bt_cost : floats;
}

type flab = {
  ln : int;
  lmax_hops : int;
  lhb : ints;
  lnbr_off : ints;
  lnbr : ints;
  lt_off : ints;
  lt_w : ints;
  lt_next : ints;
  lt_cost : floats;
  ldls : fdls;
}

type ftm = {
  tn : int;
  tli : int;
  tmax_hops : int;
  thb : int;
  tm1_threshold : float;
  thub_ptr : ints; (* n * li *)
  thub_g : ints; (* li * n; -1 where the node is no hub *)
  tdir_off : ints; (* dirs + 1 *)
  tdir_mem : ints;
  tdir_bnd : ints;
  town_off : ints; (* li * n + 1 *)
  town_tgt : ints;
  tr_level : floats; (* n * li *)
  tdmat : floats; (* n * n *)
  thosts : ints; (* parallel to the DLS d_val *)
  tdls : fdls;
}

type fmer = {
  mn : int;
  mscales : int;
  mmembers : ints;
  mr_off : ints; (* n * scales + 1 *)
  mr_node : ints;
  mdmat : floats; (* n * n *)
}

type flm = {
  gn : int;
  gk : int;
  gcol : ints;
  grows : floats; (* k * n row-major *)
  gball_off : ints;
  gball_node : ints;
  gball_dist : floats;
}

type view =
  | Basic of fbasic
  | Labelled of flab
  | Two_mode of ftm
  | Meridian of fmer
  | Landmark of flm

type t = { img : Image.t; view : view }

let image t = t.img
let byte_size t = Image.byte_size t.img
let save t file = Image.save t.img file

let tag_basic = 1
let tag_labelled = 2
let tag_two_mode = 3
let tag_meridian = 4
let tag_landmark = 5

let scheme_tag t = t.img.Image.scheme

let scheme_name t =
  match t.view with
  | Basic _ -> "basic"
  | Labelled _ -> "labelled"
  | Two_mode _ -> "two_mode"
  | Meridian _ -> "meridian"
  | Landmark _ -> "landmark"

let size t =
  match t.view with
  | Basic b -> b.bn
  | Labelled l -> l.ln
  | Two_mode m -> m.tn
  | Meridian m -> m.mn
  | Landmark g -> g.gn

(* Source population for workloads: Meridian walks must start at members. *)
let sources t = match t.view with Meridian m -> Some m.mmembers | _ -> None

(* Warm the per-domain scratch to this server's bounds (call once per
   domain before the audited loop so steady-state queries never grow it). *)
let prepare_scratch t sc =
  match t.view with
  | Basic b -> ensure sc ~decode:(b.bscales + 1) ~virt:1 ~nodes:1
  | Labelled l -> ensure sc ~decode:1 ~virt:l.ldls.dmax_virt ~nodes:l.ldls.dn
  | Two_mode m -> ensure sc ~decode:1 ~virt:m.tdls.dmax_virt ~nodes:1
  | Meridian _ | Landmark _ -> ensure sc ~decode:1 ~virt:1 ~nodes:1

let scratch_for t =
  let sc = Domain.DLS.get scratch_key in
  prepare_scratch t sc;
  sc

(* ------------------------------------------------------------- freezing *)

let csr_off lens =
  let n = Array.length lens in
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + lens.(i)
  done;
  off

let flat_ints (arrs : int array array) =
  let off = csr_off (Array.map Array.length arrs) in
  let data = Image.ints_create off.(Array.length arrs) in
  Array.iteri
    (fun i a -> Array.iteri (fun k v -> A1.unsafe_set data (off.(i) + k) v) a)
    arrs;
  (Image.ints_of_array off, data)

(* Flatten per-cell (x, y, z) triple arrays into a CSR offset array plus
   three parallel columns. *)
let flat_triples (segs : (int * int * int) array array) =
  let off = csr_off (Array.map Array.length segs) in
  let total = off.(Array.length segs) in
  let xs = Image.ints_create total
  and ys = Image.ints_create total
  and zs = Image.ints_create total in
  Array.iteri
    (fun s seg ->
      Array.iteri
        (fun k (x, y, z) ->
          A1.unsafe_set xs (off.(s) + k) x;
          A1.unsafe_set ys (off.(s) + k) y;
          A1.unsafe_set zs (off.(s) + k) z)
        seg)
    segs;
  (Image.ints_of_array off, xs, ys, zs)

(* Flatten per-node (w, next, cost) routing tables. *)
let flat_table (table : (int * int * float) array array) =
  let off = csr_off (Array.map Array.length table) in
  let total = off.(Array.length table) in
  let ws = Image.ints_create total and nexts = Image.ints_create total in
  let costs = Image.floats_create total in
  Array.iteri
    (fun u tbl ->
      Array.iteri
        (fun k (w, next, c) ->
          A1.unsafe_set ws (off.(u) + k) w;
          A1.unsafe_set nexts (off.(u) + k) next;
          A1.unsafe_set costs (off.(u) + k) c)
        tbl)
    table;
  (Image.ints_of_array off, ws, nexts, costs)

(* DLS pack: 8 int sections + 1 float section, appended in order:
   meta, d_off, zoom_first, zoom_rest, z_off, z_x, z_y, z_z | d_val. *)
let dls_isecs (e : Ron_labeling.Dls.export) =
  let open Ron_labeling.Dls in
  let n = e.x_n and levels = e.x_levels in
  let segs = Array.make (n * levels) [||] in
  Array.iteri
    (fun u per_u -> Array.iteri (fun j z -> segs.((u * levels) + j) <- z) per_u)
    e.x_zetas;
  let z_off, z_x, z_y, z_z = flat_triples segs in
  [
    Image.ints_of_array [| e.x_n; e.x_levels; e.x_prefix_len; e.x_max_virt |];
    Image.ints_of_array (csr_off (Array.map Array.length e.x_dists));
    Image.ints_of_array e.x_zoom_first;
    Image.ints_of_array (Array.concat (Array.to_list e.x_zoom_rest));
    z_off;
    z_x;
    z_y;
    z_z;
  ]

let dls_fsecs (e : Ron_labeling.Dls.export) =
  [ Image.floats_of_array (Array.concat (Array.to_list e.Ron_labeling.Dls.x_dists)) ]

let dls_of_secs (isecs : ints array) (fsecs : floats array) i0 f0 =
  let meta = isecs.(i0) in
  {
    dn = ig meta 0;
    dlevels = ig meta 1;
    dprefix = ig meta 2;
    dmax_virt = ig meta 3;
    d_off = isecs.(i0 + 1);
    d_val = fsecs.(f0);
    zoom_first = isecs.(i0 + 2);
    zoom_rest = isecs.(i0 + 3);
    z_off = isecs.(i0 + 4);
    z_x = isecs.(i0 + 5);
    z_y = isecs.(i0 + 6);
    z_z = isecs.(i0 + 7);
  }

let freeze_basic (e : Ron_routing.Basic.export) =
  let open Ron_routing.Basic in
  let n = e.x_n and scales = e.x_scales in
  let enum_segs = Array.make (n * scales) [||] in
  Array.iteri
    (fun u per_u -> Array.iteri (fun j a -> enum_segs.((u * scales) + j) <- a) per_u)
    e.x_enums;
  let enum_off, enum_node = flat_ints enum_segs in
  let zsegs = Array.make (n * (scales - 1)) [||] in
  Array.iteri
    (fun u per_u -> Array.iteri (fun j z -> zsegs.((u * (scales - 1)) + j) <- z) per_u)
    e.x_zetas;
  let z_off, z_x, z_y, z_z = flat_triples zsegs in
  let t_off, t_w, t_next, t_cost = flat_table e.x_table in
  {
    Image.scheme = tag_basic;
    isecs =
      [|
        Image.ints_of_array [| n; scales; e.x_max_hops |];
        Image.ints_of_array e.x_header_bits;
        Image.ints_of_array e.x_label_first;
        Image.ints_of_array (Array.concat (Array.to_list e.x_label_rest));
        enum_off;
        enum_node;
        z_off;
        z_x;
        z_y;
        z_z;
        t_off;
        t_w;
        t_next;
      |];
    fsecs = [| t_cost |];
  }

let freeze_labelled (e : Ron_routing.Labelled.export) =
  let open Ron_routing.Labelled in
  let nbr_off, nbr = flat_ints e.x_nbrs in
  let t_off, t_w, t_next, t_cost = flat_table e.x_table in
  {
    Image.scheme = tag_labelled;
    isecs =
      Array.of_list
        ([
           Image.ints_of_array [| e.x_n; e.x_max_hops |];
           Image.ints_of_array e.x_header_bits;
           nbr_off;
           nbr;
           t_off;
           t_w;
           t_next;
         ]
        @ dls_isecs e.x_dls);
    fsecs = Array.of_list (t_cost :: dls_fsecs e.x_dls);
  }

let freeze_two_mode (e : Ron_routing.Two_mode.export) =
  let open Ron_routing.Two_mode in
  let n = e.x_n and li = e.x_li in
  let dir_off, dir_mem = flat_ints e.x_dir_members in
  let _, dir_bnd = flat_ints e.x_dir_boundaries in
  let own_segs = Array.make (li * n) [||] in
  Array.iteri
    (fun i per_u -> Array.iteri (fun u a -> own_segs.((i * n) + u) <- a) per_u)
    e.x_owned;
  let own_off, own_tgt = flat_ints own_segs in
  {
    Image.scheme = tag_two_mode;
    isecs =
      Array.of_list
        ([
           Image.ints_of_array [| n; li; e.x_max_hops; e.x_header_bits |];
           Image.ints_of_array (Array.concat (Array.to_list e.x_hub_ptr));
           Image.ints_of_array (Array.concat (Array.to_list e.x_hub_g));
           dir_off;
           dir_mem;
           dir_bnd;
           own_off;
           own_tgt;
           Image.ints_of_array
             (Array.concat (Array.to_list e.x_dls.Ron_labeling.Dls.x_hosts));
         ]
        @ dls_isecs e.x_dls);
    fsecs =
      Array.of_list
        ([
           Image.floats_of_array [| e.x_m1_threshold |];
           Image.floats_of_array (Array.concat (Array.to_list e.x_r_level));
           Image.floats_of_array e.x_dist;
         ]
        @ dls_fsecs e.x_dls);
  }

let freeze_meridian (e : Ron_smallworld.Meridian.export) =
  let open Ron_smallworld.Meridian in
  let n = e.x_n and scales = e.x_scales in
  let segs = Array.make (n * scales) [||] in
  Array.iteri
    (fun u per_u -> Array.iteri (fun i r -> segs.((u * scales) + i) <- r) per_u)
    e.x_rings;
  let r_off, r_node = flat_ints segs in
  {
    Image.scheme = tag_meridian;
    isecs =
      [|
        Image.ints_of_array [| n; scales |];
        Image.ints_of_array e.x_members;
        r_off;
        r_node;
      |];
    fsecs = [| Image.floats_of_array e.x_dist |];
  }

let freeze_landmark (e : Ron_labeling.Landmark.export) =
  let open Ron_labeling.Landmark in
  let k = Array.length e.x_beacons in
  let rows = Image.floats_create (k * e.x_n) in
  Array.iteri
    (fun i row -> Array.iteri (fun v d -> A1.unsafe_set rows ((i * e.x_n) + v) d) row)
    e.x_rows;
  {
    Image.scheme = tag_landmark;
    isecs =
      [|
        Image.ints_of_array [| e.x_n; k |];
        Image.ints_of_array e.x_beacons;
        Image.ints_of_array e.x_col;
        Image.ints_of_array e.x_ball_off;
        Image.ints_of_array e.x_ball_node;
      |];
    fsecs = [| rows; Image.floats_of_array e.x_ball_dist |];
  }

(* --------------------------------------------------------------- viewing *)

let of_image (img : Image.t) =
  let need ni nf what =
    if Array.length img.Image.isecs <> ni || Array.length img.Image.fsecs <> nf then
      Error
        (Printf.sprintf "%s image: expected %d int / %d float sections, got %d / %d" what
           ni nf
           (Array.length img.Image.isecs)
           (Array.length img.Image.fsecs))
    else Ok ()
  in
  let i = img.Image.isecs and f = img.Image.fsecs in
  match img.Image.scheme with
  | 1 -> (
    match need 13 1 "basic" with
    | Error e -> Error e
    | Ok () ->
      let meta = i.(0) in
      Ok
        {
          img;
          view =
            Basic
              {
                bn = ig meta 0;
                bscales = ig meta 1;
                bmax_hops = ig meta 2;
                bhb = i.(1);
                blabel_first = i.(2);
                blabel_rest = i.(3);
                benum_off = i.(4);
                benum_node = i.(5);
                bz_off = i.(6);
                bz_x = i.(7);
                bz_y = i.(8);
                bz_z = i.(9);
                bt_off = i.(10);
                bt_w = i.(11);
                bt_next = i.(12);
                bt_cost = f.(0);
              };
        })
  | 2 -> (
    match need 15 2 "labelled" with
    | Error e -> Error e
    | Ok () ->
      let meta = i.(0) in
      Ok
        {
          img;
          view =
            Labelled
              {
                ln = ig meta 0;
                lmax_hops = ig meta 1;
                lhb = i.(1);
                lnbr_off = i.(2);
                lnbr = i.(3);
                lt_off = i.(4);
                lt_w = i.(5);
                lt_next = i.(6);
                lt_cost = f.(0);
                ldls = dls_of_secs i f 7 1;
              };
        })
  | 3 -> (
    match need 17 4 "two_mode" with
    | Error e -> Error e
    | Ok () ->
      let meta = i.(0) in
      Ok
        {
          img;
          view =
            Two_mode
              {
                tn = ig meta 0;
                tli = ig meta 1;
                tmax_hops = ig meta 2;
                thb = ig meta 3;
                tm1_threshold = fg f.(0) 0;
                thub_ptr = i.(1);
                thub_g = i.(2);
                tdir_off = i.(3);
                tdir_mem = i.(4);
                tdir_bnd = i.(5);
                town_off = i.(6);
                town_tgt = i.(7);
                thosts = i.(8);
                tr_level = f.(1);
                tdmat = f.(2);
                tdls = dls_of_secs i f 9 3;
              };
        })
  | 4 -> (
    match need 4 1 "meridian" with
    | Error e -> Error e
    | Ok () ->
      let meta = i.(0) in
      Ok
        {
          img;
          view =
            Meridian
              {
                mn = ig meta 0;
                mscales = ig meta 1;
                mmembers = i.(1);
                mr_off = i.(2);
                mr_node = i.(3);
                mdmat = f.(0);
              };
        })
  | 5 -> (
    match need 5 2 "landmark" with
    | Error e -> Error e
    | Ok () ->
      let meta = i.(0) in
      Ok
        {
          img;
          view =
            Landmark
              {
                gn = ig meta 0;
                gk = ig meta 1;
                gcol = i.(2);
                grows = f.(0);
                gball_off = i.(3);
                gball_node = i.(4);
                gball_dist = f.(1);
              };
        })
  | tag -> Error (Printf.sprintf "unknown scheme tag %d" tag)

let exn_of_result = function
  | Ok t -> t
  | Error msg -> failwith ("Server.of_image: " ^ msg)

let freeze_basic_t e = exn_of_result (of_image (freeze_basic e))
let freeze_labelled_t e = exn_of_result (of_image (freeze_labelled e))
let freeze_two_mode_t e = exn_of_result (of_image (freeze_two_mode e))
let freeze_meridian_t e = exn_of_result (of_image (freeze_meridian e))
let freeze_landmark_t e = exn_of_result (of_image (freeze_landmark e))

let load file =
  match Image.load file with Error e -> Error e | Ok img -> of_image img

(* ------------------------------------------------------------ Basic route *)

(* Index of [w] in the sorted CSR run [s, e) of [tw], or -1. *)
let rec tbl_find (tw : ints) s e w =
  if s >= e then -1
  else begin
    let mid = (s + e) / 2 in
    let mw = ig tw mid in
    if mw < w then tbl_find tw (mid + 1) e w
    else if mw = w then mid
    else tbl_find tw s mid w
  end

(* Append a visited node to the hop trace; counting continues past the
   buffer so the recorder can tell a truncated trace from a full one. *)
let[@inline] log_hop sc node =
  if sc.log_hops then begin
    if sc.hop_len < Array.length sc.hop_log then sc.hop_log.(sc.hop_len) <- node;
    sc.hop_len <- sc.hop_len + 1
  end

let[@inline] finish sc code hops aux =
  sc.r_outcome <- code;
  sc.r_hops <- hops;
  sc.r_aux <- aux

(* Walk dst's zooming label through u's translation maps level by level,
   exactly like [Zooming.decode_walk]; fills sc.m and returns jut, the
   last valid index. *)
let rec basic_walk fb sc ~u ~dst sm1 j mm =
  if j >= sm1 then j
  else begin
    let y = ig fb.blabel_rest ((dst * sm1) + j) in
    let s = ig fb.bz_off ((u * sm1) + j) and e = ig fb.bz_off ((u * sm1) + j + 1) in
    let z = z_find fb.bz_x fb.bz_y fb.bz_z s e mm y in
    if z < 0 then j
    else begin
      sc.m.(j + 1) <- z;
      basic_walk fb sc ~u ~dst sm1 (j + 1) z
    end
  end

let basic_decode fb sc ~u ~dst =
  let first = ig fb.blabel_first dst in
  sc.m.(0) <- first;
  basic_walk fb sc ~u ~dst (fb.bscales - 1) 0 first

(* [Scheme.simulate]'s Brent loop with the Basic header state reduced to
   its varying [level] field (-1 = None): per hop, cycle check first, then
   checkpoint refresh at power-of-two hop counts, then the step. *)
let rec basic_go fb sc ~dst ~hb node level saved_node saved_level power hops =
  if hops > 0 && node = saved_node && level = saved_level then
    finish sc code_cycled hops hb
  else begin
    let refresh = hops = power in
    let saved_node = if refresh then node else saved_node in
    let saved_level = if refresh then level else saved_level in
    let power = if refresh then 2 * power else power in
    if node = dst then finish sc code_delivered hops hb
    else begin
      let jut = basic_decode fb sc ~u:node ~dst in
      let j =
        if level = -1 then jut
        else if level > jut then failwith "Serve.basic: Claim 2.4(b) violated (j > j_ut)"
        else begin
          let w =
            ig fb.benum_node (ig fb.benum_off ((node * fb.bscales) + level) + sc.m.(level))
          in
          if w = node then jut (* node is the intermediate target: re-zoom *) else level
        end
      in
      let w = ig fb.benum_node (ig fb.benum_off ((node * fb.bscales) + j) + sc.m.(j)) in
      if w = node then
        failwith "Serve.basic: intermediate target equals current node (invariant broken)";
      let e = tbl_find fb.bt_w (ig fb.bt_off node) (ig fb.bt_off (node + 1)) w in
      if e < 0 then failwith "Serve.basic: no first-hop pointer to intermediate target";
      let next = ig fb.bt_next e in
      if next = node then finish sc code_self_forward hops hb
      else if hops >= fb.bmax_hops then finish sc code_truncated hops hb
      else begin
        sc.fbuf.(2) <- sc.fbuf.(2) +. fg fb.bt_cost e;
        log_hop sc next;
        basic_go fb sc ~dst ~hb next j saved_node saved_level power (hops + 1)
      end
    end
  end

let basic_route fb sc ~src ~dst =
  sc.fbuf.(2) <- 0.0;
  basic_go fb sc ~dst ~hb:(ig fb.bhb dst) src (-1) src (-1) 1 0

(* --------------------------------------------------------- Labelled route *)

let dummy_hosts : ints = Image.ints_create 0

(* score(v) = labeled estimate v -> dst, memoized per route; result in
   fbuf.(6). [Dls.estimate] short-circuits identical labels to 0; the
   finiteness test is [d -. d = 0.0], i.e. Float.is_finite inlined. *)
let lab_score fl sc ~dst v =
  if v = dst then sc.fbuf.(6) <- 0.0
  else if sc.memo_gen.(v) = sc.mgen then sc.fbuf.(6) <- sc.memo_d.(v)
  else begin
    dls_scan fl.ldls dummy_hosts sc ~u:v ~v:dst ~exclude:(-1);
    let d = sc.fbuf.(0) in
    if not (d -. d = 0.0) then
      failwith "Serve.labelled: no common beacon identified (Theorem 3.4 violated)";
    sc.memo_d.(v) <- d;
    sc.memo_gen.(v) <- sc.mgen;
    sc.fbuf.(6) <- d
  end

(* Select the neighbor of [u] minimizing (score, id) into sel_w/fbuf.(5). *)
let rec lab_select fl sc ~dst e e1 u =
  if e < e1 then begin
    let v = ig fl.lnbr e in
    if v <> u then begin
      lab_score fl sc ~dst v;
      let d = sc.fbuf.(6) in
      if d < sc.fbuf.(5) || (d = sc.fbuf.(5) && v < sc.sel_w) then begin
        sc.sel_w <- v;
        sc.fbuf.(5) <- d
      end
    end;
    lab_select fl sc ~dst (e + 1) e1 u
  end

let rec lab_go fl sc ~dst ~hb node inter saved_node saved_inter power hops =
  if hops > 0 && node = saved_node && inter = saved_inter then
    finish sc code_cycled hops hb
  else begin
    let refresh = hops = power in
    let saved_node = if refresh then node else saved_node in
    let saved_inter = if refresh then inter else saved_inter in
    let power = if refresh then 2 * power else power in
    if node = dst then finish sc code_delivered hops hb
    else begin
      let target =
        if inter = node then begin
          (* Re-select the intermediate target among node's neighbors. *)
          sc.fbuf.(5) <- infinity;
          sc.sel_w <- -1;
          lab_select fl sc ~dst (ig fl.lnbr_off node) (ig fl.lnbr_off (node + 1)) node;
          if sc.sel_w < 0 then failwith "Serve.labelled: no neighbors";
          sc.sel_w
        end
        else inter
      in
      let e = tbl_find fl.lt_w (ig fl.lt_off node) (ig fl.lt_off (node + 1)) target in
      if e < 0 then failwith "Serve.labelled: intermediate target is not a neighbor";
      let next = ig fl.lt_next e in
      if next = node then finish sc code_self_forward hops hb
      else if hops >= fl.lmax_hops then finish sc code_truncated hops hb
      else begin
        sc.fbuf.(2) <- sc.fbuf.(2) +. fg fl.lt_cost e;
        log_hop sc next;
        lab_go fl sc ~dst ~hb next target saved_node saved_inter power (hops + 1)
      end
    end
  end

let lab_route fl sc ~src ~dst =
  sc.fbuf.(2) <- 0.0;
  sc.mgen <- sc.mgen + 1;
  lab_go fl sc ~dst ~hb:(ig fl.lhb dst) src src src src 1 0

(* --------------------------------------------------------- Two_mode route *)

(* Mode encoding: 0 = M1, 2i = M2_hub i, 2i+1 = M2_owner i (i >= 1). *)

let rec tm_owned_find (tgt : ints) s e target =
  if s >= e then false
  else begin
    let mid = (s + e) / 2 in
    let mv = ig tgt mid in
    if mv < target then tm_owned_find tgt (mid + 1) e target
    else if mv = target then true
    else tm_owned_find tgt s mid target
  end

(* Largest index with boundaries <= target in the directory run at [s]. *)
let rec tm_dir_search fm s lo hi target =
  if lo >= hi then lo - 1
  else begin
    let mid = (lo + hi) / 2 in
    if ig fm.tdir_bnd (s + mid) <= target then tm_dir_search fm s (mid + 1) hi target
    else tm_dir_search fm s lo mid target
  end

(* [Two_mode.owner_of] over the flat directory [g]. *)
let tm_owner_of fm g target =
  let s = ig fm.tdir_off g and e = ig fm.tdir_off (g + 1) in
  let m = max 0 (tm_dir_search fm s 0 (e - s) target) in
  ig fm.tdir_mem (s + m)

(* The M2 resolution chain of [Two_mode.step] at node [u]: each function
   either writes (r_next, r_aux = next mode) and returns 1 (Forward) or
   recurses locally — the packet only leaves through an actual link. *)
let rec tm_resolve fm sc ~u ~dst i =
  if i < 1 then failwith "Serve.two_mode: ran out of directory scales";
  let hub = ig fm.thub_ptr ((u * fm.tli) + i) in
  if hub <> u then begin
    sc.r_next <- hub;
    sc.r_aux <- 2 * i;
    1
  end
  else tm_at_hub fm sc ~u ~dst i

and tm_at_hub fm sc ~u ~dst i =
  let g = ig fm.thub_g ((i * fm.tn) + u) in
  if g < 0 then failwith "Serve.two_mode: hub pointer does not name a hub";
  let owner = tm_owner_of fm g dst in
  if owner <> u then begin
    sc.r_next <- owner;
    sc.r_aux <- (2 * i) + 1;
    1
  end
  else tm_as_owner fm sc ~u ~dst i

and tm_as_owner fm sc ~u ~dst i =
  let s = ig fm.town_off ((i * fm.tn) + u) and e = ig fm.town_off ((i * fm.tn) + u + 1) in
  if tm_owned_find fm.town_tgt s e dst then begin
    sc.r_next <- dst;
    sc.r_aux <- 0;
    1
  end
  else if i <= 1 then failwith "Serve.two_mode: scale-1 directory must cover all targets"
  else tm_resolve fm sc ~u ~dst (i - 1)

(* [Two_mode.switch_scale]: deepest i >= 1 whose previous-scale radius
   still dominates the (4/3) d~ threshold in fbuf.(7). *)
let rec tm_switch fm sc ~u i best =
  if i > fm.tli - 1 then best
  else if fg fm.tr_level ((u * fm.tli) + i - 1) >= sc.fbuf.(7) then
    tm_switch fm sc ~u (i + 1) i
  else best

(* One [Two_mode.step] at [u]: 0 = Deliver, 1 = Forward via (r_next,
   r_aux = mode). *)
let tm_step fm sc ~u ~dst ~mode =
  if u = dst then 0
  else if mode = 0 then begin
    dls_scan fm.tdls fm.thosts sc ~u ~v:dst ~exclude:u;
    let d_est = sc.fbuf.(0) in
    if not (d_est -. d_est = 0.0) then
      failwith "Serve.two_mode: no common beacon identified (Theorem 3.4 violated)";
    if sc.best_w >= 0 && sc.fbuf.(1) <= d_est *. fm.tm1_threshold then begin
      sc.r_next <- sc.best_w;
      sc.r_aux <- 0;
      1
    end
    else begin
      sc.fbuf.(7) <- 4.0 /. 3.0 *. d_est;
      tm_resolve fm sc ~u ~dst (tm_switch fm sc ~u 1 1)
    end
  end
  else if mode land 1 = 0 then tm_at_hub fm sc ~u ~dst (mode / 2)
  else tm_as_owner fm sc ~u ~dst (mode / 2)

let rec tm_go fm sc ~dst node mode saved_node saved_mode power hops =
  if hops > 0 && node = saved_node && mode = saved_mode then
    finish sc code_cycled hops fm.thb
  else begin
    let refresh = hops = power in
    let saved_node = if refresh then node else saved_node in
    let saved_mode = if refresh then mode else saved_mode in
    let power = if refresh then 2 * power else power in
    if tm_step fm sc ~u:node ~dst ~mode = 0 then finish sc code_delivered hops fm.thb
    else begin
      let next = sc.r_next and mode' = sc.r_aux in
      if next = node then finish sc code_self_forward hops fm.thb
      else if hops >= fm.tmax_hops then finish sc code_truncated hops fm.thb
      else begin
        sc.fbuf.(2) <- sc.fbuf.(2) +. fg fm.tdmat ((node * fm.tn) + next);
        log_hop sc next;
        tm_go fm sc ~dst next mode' saved_node saved_mode power (hops + 1)
      end
    end
  end

let tm_route fm sc ~src ~dst =
  sc.fbuf.(2) <- 0.0;
  tm_go fm sc ~dst src 0 src 0 1 0

(* ------------------------------------------------- labeled dist estimates *)

(* The DLS estimate both label-based schemes expose as their distance
   query; [Dls.estimate] short-circuits identical labels to 0. Result in
   fbuf.(3) = fbuf.(4) (a point estimate, not an interval). [what] only
   selects the failure message. *)
let dls_estimate fd sc ~src ~dst ~what =
  if src = dst then begin
    sc.fbuf.(3) <- 0.0;
    sc.fbuf.(4) <- 0.0
  end
  else begin
    dls_scan fd dummy_hosts sc ~u:src ~v:dst ~exclude:(-1);
    let d = sc.fbuf.(0) in
    if not (d -. d = 0.0) then
      if what = 0 then
        failwith "Serve.labelled: no common beacon identified (Theorem 3.4 violated)"
      else failwith "Serve.two_mode: no common beacon identified (Theorem 3.4 violated)";
    sc.fbuf.(3) <- d;
    sc.fbuf.(4) <- d
  end

(* -------------------------------------------------------- Meridian locate *)

(* Poll one ring of [u], folding the lex-min (distance-to-target, id) into
   (sel_w, fbuf.(1)) and counting each measurement in r_aux. *)
let rec mer_poll fm sc ~target e e1 =
  if e < e1 then begin
    let v = ig fm.mr_node e in
    sc.r_aux <- sc.r_aux + 1;
    let dv = fg fm.mdmat ((v * fm.mn) + target) in
    if dv < sc.fbuf.(1) || (dv = sc.fbuf.(1) && v < sc.sel_w) then begin
      sc.sel_w <- v;
      sc.fbuf.(1) <- dv
    end;
    mer_poll fm sc ~target (e + 1) e1
  end

let rec mer_rings fm sc ~target u i top =
  if i <= top then begin
    mer_poll fm sc ~target
      (ig fm.mr_off ((u * fm.mscales) + i))
      (ig fm.mr_off ((u * fm.mscales) + i + 1));
    mer_rings fm sc ~target u (i + 1) top
  end

(* [Meridian.closest] without faults: poll rings at scales up to ~2d
   (the scale cap is [Bits.flog2] inlined), advance on strict progress.
   fbuf.(0) carries d across hops. *)
let rec mer_go fm sc ~target u hops =
  let d = sc.fbuf.(0) in
  let limit =
    if 2.0 *. d <= 1.0 then 0
    else min (fm.mscales - 1) (int_of_float (Float.ceil (log (2.0 *. d) /. log 2.0)))
  in
  sc.sel_w <- u;
  sc.fbuf.(1) <- d;
  mer_rings fm sc ~target u 0 (min limit (fm.mscales - 1));
  let best = sc.sel_w in
  let bd = sc.fbuf.(1) in
  if best <> u && (bd <= d /. 2.0 || bd < d) then begin
    sc.fbuf.(0) <- bd;
    log_hop sc best;
    mer_go fm sc ~target best (hops + 1)
  end
  else begin
    sc.r_outcome <- 0;
    sc.r_hops <- hops;
    sc.r_next <- u
  end

let mer_locate fm sc ~start ~target =
  sc.r_aux <- 1 (* the initial self-measurement *);
  sc.fbuf.(0) <- fg fm.mdmat ((start * fm.mn) + target);
  mer_go fm sc ~target start 0

(* -------------------------------------------------------- Landmark bounds *)

(* Index of [v] in the sorted ball run [s, e), or -1 (index-returning so
   the recursion stays float-free). *)
let rec lm_ball_idx (nodes : ints) s e v =
  if s >= e then -1
  else begin
    let mid = (s + e) / 2 in
    let x = ig nodes mid in
    if x < v then lm_ball_idx nodes (mid + 1) e v
    else if x = v then mid
    else lm_ball_idx nodes s mid v
  end

let rec lm_beacons g sc ~u ~v i =
  if i < g.gk then begin
    let da = fg g.grows ((i * g.gn) + u) and db = fg g.grows ((i * g.gn) + v) in
    let diff = Float.abs (da -. db) in
    if diff > sc.fbuf.(3) then sc.fbuf.(3) <- diff;
    if da +. db < sc.fbuf.(4) then sc.fbuf.(4) <- da +. db;
    lm_beacons g sc ~u ~v (i + 1)
  end

(* [Landmark.estimate]'s exact branch order: exact on self, exact inside
   the beacon ball, exact when either endpoint is a beacon, else the
   triangle bounds over all beacons. *)
let lm_estimate g sc ~u ~v =
  if u = v then begin
    sc.fbuf.(3) <- 0.0;
    sc.fbuf.(4) <- 0.0
  end
  else begin
    let bi = lm_ball_idx g.gball_node (ig g.gball_off u) (ig g.gball_off (u + 1)) v in
    if bi >= 0 then begin
      let d = fg g.gball_dist bi in
      sc.fbuf.(3) <- d;
      sc.fbuf.(4) <- d
    end
    else begin
      let cv = ig g.gcol v in
      if cv >= 0 then begin
        let d = fg g.grows ((cv * g.gn) + u) in
        sc.fbuf.(3) <- d;
        sc.fbuf.(4) <- d
      end
      else begin
        let cu = ig g.gcol u in
        if cu >= 0 then begin
          let d = fg g.grows ((cu * g.gn) + v) in
          sc.fbuf.(3) <- d;
          sc.fbuf.(4) <- d
        end
        else begin
          sc.fbuf.(3) <- 0.0;
          sc.fbuf.(4) <- infinity;
          lm_beacons g sc ~u ~v 0
        end
      end
    end
  end

(* ----------------------------------------------------------- dispatching *)

(* Query kinds (workload side): 0 route, 1 dist, 2 locate. Each scheme
   collapses unsupported kinds onto its native operation. *)

let effective_kind t kind =
  match t.view with
  | Basic _ -> 0
  | Labelled _ | Two_mode _ -> if kind = 1 then 1 else 0
  | Meridian _ -> 2
  | Landmark _ -> 1

(* Execute one query, writing the scratch result registers:
   route (kind 0):  r_outcome, r_hops, r_aux = header bits, fbuf.(2) = length
   dist (kind 1):   fbuf.(3) = lo, fbuf.(4) = hi
   locate (kind 2): r_next = found, r_hops, r_aux = measurements *)
let query t sc ~kind ~src ~dst =
  sc.r_outcome <- 0;
  sc.r_hops <- 0;
  sc.r_next <- 0;
  sc.r_aux <- 0;
  if sc.log_hops then sc.hop_len <- 0;
  sc.fbuf.(2) <- 0.0;
  sc.fbuf.(3) <- 0.0;
  sc.fbuf.(4) <- 0.0;
  match t.view with
  | Basic b -> basic_route b sc ~src ~dst
  | Labelled l ->
    if kind = 1 then dls_estimate l.ldls sc ~src ~dst ~what:0 else lab_route l sc ~src ~dst
  | Two_mode m ->
    if kind = 1 then dls_estimate m.tdls sc ~src ~dst ~what:1 else tm_route m sc ~src ~dst
  | Meridian m -> mer_locate m sc ~start:src ~target:dst
  | Landmark g -> lm_estimate g sc ~u:src ~v:dst
