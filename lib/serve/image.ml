(* Off-heap snapshot images: a frozen scheme is a tag plus two ordered
   lists of Bigarray sections (native ints and float64s), saved to disk in
   a versioned, checksummed, mmap-friendly layout.

   File layout (everything 8-byte aligned, little-endian int64 header):

     magic "RONSRV01"                                   8 bytes
     version | scheme tag | word_size | #isecs | #fsecs 5 x int64
     per int section:   length | FNV-1a checksum        2 x int64 each
     per float section: length | FNV-1a checksum        2 x int64 each
     int section payloads, in order                     8 bytes/elt
     float section payloads, in order                   8 bytes/elt

   Sections are mapped with [Unix.map_file] (private mapping) on load, so
   a snapshot larger than RAM still serves; the checksum pass touches each
   word once and rejects torn or corrupted files before any query runs. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { scheme : int; isecs : ints array; fsecs : floats array }

let magic = "RONSRV01"
let version = 1

let ints_create n : ints = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n
let floats_create n : floats = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let ints_of_array a =
  let b = ints_create (Array.length a) in
  Array.iteri (fun i v -> Bigarray.Array1.unsafe_set b i v) a;
  b

let floats_of_array a =
  let b = floats_create (Array.length a) in
  Array.iteri (fun i v -> Bigarray.Array1.unsafe_set b i v) a;
  b

(* -- checksums: FNV-1a over the 64-bit words of a section ---------------- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let checksum_ints (a : ints) =
  let h = ref fnv_offset in
  for i = 0 to Bigarray.Array1.dim a - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Bigarray.Array1.unsafe_get a i))) fnv_prime
  done;
  !h

let checksum_floats (a : floats) =
  let h = ref fnv_offset in
  for i = 0 to Bigarray.Array1.dim a - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.bits_of_float (Bigarray.Array1.unsafe_get a i)))
        fnv_prime
  done;
  !h

(* -- sizes --------------------------------------------------------------- *)

let header_bytes t =
  (* magic + 5 header words + (len, checksum) per section *)
  8 + (8 * 5) + (16 * (Array.length t.isecs + Array.length t.fsecs))

let payload_words t =
  Array.fold_left (fun acc s -> acc + Bigarray.Array1.dim s) 0 t.isecs
  + Array.fold_left (fun acc s -> acc + Bigarray.Array1.dim s) 0 t.fsecs

let byte_size t = header_bytes t + (8 * payload_words t)

(* -- save ---------------------------------------------------------------- *)

let bytes_set_i64 buf off v =
  for k = 0 to 7 do
    Bytes.set buf (off + k) (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * k)) 0xffL)))
  done

let bytes_get_i64 buf off =
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get buf (off + k))))
  done;
  !v

let write_all fd buf = ignore (Unix.write fd buf 0 (Bytes.length buf))

let map_ints fd ~pos n : ints =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int Bigarray.c_layout true [| n |])

let map_floats fd ~pos n : floats =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.float64 Bigarray.c_layout true [| n |])

let save t file =
  let hb = header_bytes t in
  let buf = Bytes.create hb in
  Bytes.blit_string magic 0 buf 0 8;
  bytes_set_i64 buf 8 (Int64.of_int version);
  bytes_set_i64 buf 16 (Int64.of_int t.scheme);
  bytes_set_i64 buf 24 (Int64.of_int Sys.word_size);
  bytes_set_i64 buf 32 (Int64.of_int (Array.length t.isecs));
  bytes_set_i64 buf 40 (Int64.of_int (Array.length t.fsecs));
  let off = ref 48 in
  Array.iter
    (fun s ->
      bytes_set_i64 buf !off (Int64.of_int (Bigarray.Array1.dim s));
      bytes_set_i64 buf (!off + 8) (checksum_ints s);
      off := !off + 16)
    t.isecs;
  Array.iter
    (fun s ->
      bytes_set_i64 buf !off (Int64.of_int (Bigarray.Array1.dim s));
      bytes_set_i64 buf (!off + 8) (checksum_floats s);
      off := !off + 16)
    t.fsecs;
  let fd = Unix.openfile file [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write_all fd buf;
      (* Mapping past the current end grows the file; blit each section
         straight into its mapped window. *)
      let pos = ref hb in
      Array.iter
        (fun s ->
          let n = Bigarray.Array1.dim s in
          if n > 0 then begin
            let dst = map_ints fd ~pos:!pos n in
            Bigarray.Array1.blit s dst
          end;
          pos := !pos + (8 * n))
        t.isecs;
      Array.iter
        (fun s ->
          let n = Bigarray.Array1.dim s in
          if n > 0 then begin
            let dst = map_floats fd ~pos:!pos n in
            Bigarray.Array1.blit s dst
          end;
          pos := !pos + (8 * n))
        t.fsecs)

(* -- load ---------------------------------------------------------------- *)

let read_exactly fd n =
  let buf = Bytes.create n in
  let got = ref 0 in
  (try
     while !got < n do
       let r = Unix.read fd buf !got (n - !got) in
       if r = 0 then raise Exit;
       got := !got + r
     done
   with Exit -> ());
  if !got = n then Some buf else None

let map_ints_ro fd ~pos n : ints =
  if n = 0 then ints_create 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.int Bigarray.c_layout false [| n |])

let map_floats_ro fd ~pos n : floats =
  if n = 0 then floats_create 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.float64 Bigarray.c_layout false [| n |])

let load file =
  match Unix.openfile file [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "%s: %s" file (Unix.error_message e))
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        match read_exactly fd 48 with
        | None -> Error (Printf.sprintf "%s: truncated header" file)
        | Some hdr ->
          if Bytes.sub_string hdr 0 8 <> magic then
            Error (Printf.sprintf "%s: bad magic (not a snapshot)" file)
          else if bytes_get_i64 hdr 8 <> Int64.of_int version then
            Error
              (Printf.sprintf "%s: unsupported snapshot version %Ld" file (bytes_get_i64 hdr 8))
          else if bytes_get_i64 hdr 24 <> Int64.of_int Sys.word_size then
            Error
              (Printf.sprintf "%s: word size mismatch (snapshot %Ld, host %d)" file
                 (bytes_get_i64 hdr 24) Sys.word_size)
          else begin
            let scheme = Int64.to_int (bytes_get_i64 hdr 16) in
            let n_isecs = Int64.to_int (bytes_get_i64 hdr 32) in
            let n_fsecs = Int64.to_int (bytes_get_i64 hdr 40) in
            if n_isecs < 0 || n_fsecs < 0 || n_isecs + n_fsecs > 4096 then
              Error (Printf.sprintf "%s: implausible section counts" file)
            else
              match read_exactly fd (16 * (n_isecs + n_fsecs)) with
              | None -> Error (Printf.sprintf "%s: truncated section table" file)
              | Some tbl -> (
                let lens = Array.init (n_isecs + n_fsecs) (fun i -> Int64.to_int (bytes_get_i64 tbl (16 * i))) in
                let sums = Array.init (n_isecs + n_fsecs) (fun i -> bytes_get_i64 tbl ((16 * i) + 8)) in
                if Array.exists (fun l -> l < 0) lens then
                  Error (Printf.sprintf "%s: negative section length" file)
                else
                  try
                    let pos = ref (48 + (16 * (n_isecs + n_fsecs))) in
                    let isecs =
                      Array.init n_isecs (fun i ->
                          let s = map_ints_ro fd ~pos:!pos lens.(i) in
                          pos := !pos + (8 * lens.(i));
                          if checksum_ints s <> sums.(i) then
                            failwith (Printf.sprintf "int section %d checksum mismatch" i);
                          s)
                    in
                    let fsecs =
                      Array.init n_fsecs (fun i ->
                          let s = map_floats_ro fd ~pos:!pos lens.(n_isecs + i) in
                          pos := !pos + (8 * lens.(n_isecs + i));
                          if checksum_floats s <> sums.(n_isecs + i) then
                            failwith (Printf.sprintf "float section %d checksum mismatch" i);
                          s)
                    in
                    Ok { scheme; isecs; fsecs }
                  with
                  | Failure msg -> Error (Printf.sprintf "%s: %s" file msg)
                  | Unix.Unix_error (e, _, _) ->
                    Error (Printf.sprintf "%s: truncated payload (%s)" file (Unix.error_message e))
                  | Sys_error msg -> Error (Printf.sprintf "%s: %s" file msg))
          end)
