(** Canonical scheme constructions for the serving layer: CLI, bench, and
    tests freeze the same live instances. *)

type live =
  | L_basic of Ron_routing.Basic.t
  | L_labelled of Ron_routing.Labelled.t
  | L_two_mode of Ron_routing.Two_mode.t
  | L_meridian of Ron_smallworld.Meridian.t
  | L_landmark of Ron_labeling.Landmark.t

val names : string list
(** The five servable scheme names, in scheme-tag order. *)

val build_live : scheme:string -> n:int -> seed:int -> live
(** Build the named scheme at roughly [n] nodes (graph-backed schemes
    round [n] to a grid). Raises [Failure] on an unknown name. *)

val freeze : live -> Server.t
val build : scheme:string -> n:int -> seed:int -> Server.t
