(** The batch serving loop: seeded workloads, sharded execution, digests.

    Workload columns are pure functions of (seed, query index), so the
    same seed yields the same workload at every [RON_JOBS]; execution
    writes each query's result into its own slot of off-heap result
    columns, so serving output (and its digest) is bit-identical at every
    job count. *)

type ints = Image.ints
type floats = Image.floats

val default_batch : int

(** {1 Workloads} *)

type workload

val queries : workload -> int

val kind_of : workload -> int -> int
(** Effective kind of query [i] (0 route, 1 dist, 2 locate). *)

val src_of : workload -> int -> int
val dst_of : workload -> int -> int

val prepare :
  Server.t ->
  seed:int ->
  queries:int ->
  zipf_s:float ->
  route_frac:float ->
  dist_frac:float ->
  workload
(** A seeded mixed workload: each query's kind is drawn from the
    (route, dist, locate) mix with weights [route_frac], [dist_frac],
    [1 - route_frac - dist_frac], then collapsed through
    {!Server.effective_kind}; targets are Zipf(s)-skewed over node ids
    (rank 0 hottest); sources are uniform over the server's source
    population. *)

(** {1 Results} *)

(** Off-heap result columns, by effective kind:
    route — [ra] outcome, [rb] hops, [rx] path length, [ry] header bits;
    dist — [rx] lower bound, [ry] upper bound;
    locate — [ra] found member, [rb] hops, [rx] measurements. *)
type results = { ra : ints; rb : ints; rx : floats; ry : floats }

val results_create : int -> results

val run_query : Server.t -> Server.scratch -> workload -> results -> int -> unit
(** Execute query [i] into result slot [i]; allocation-free in steady
    state. *)

val run : ?batch:int -> ?jobs:int -> Server.t -> workload -> results -> unit
(** Run the whole workload in batches of [batch] (default
    {!default_batch}), each sharded across Pool domains. Fires the serve
    probes and a telemetry tick once per batch, from the orchestrating
    domain. *)

val run_observed :
  ?batch:int ->
  ?jobs:int ->
  ?wall:bool ->
  ?flight:Ron_obs.Flight.t ->
  ?slo:Ron_obs.Slo.t ->
  Server.t ->
  workload ->
  results ->
  unit
(** {!run} plus observability: each query's latency is measured on the
    wall clock ([wall:true], nanoseconds) or the deterministic logical
    clock (default: cost [1] for a dist lookup, else
    [hops * 256 + min aux 255] — a pure function of the result, so flight
    dumps and SLO verdicts are bit-identical at every [RON_JOBS]).
    Workers record into [flight] (batch size is capped at
    [window * (retain - 1)] to honor its ring-safety contract); the
    orchestrator feeds [slo] between batches in qid order — a route
    counts as delivered on outcome 0, a locate when a member was found,
    a dist always — and closes its trailing window at the end. Result
    columns are identical to an unobserved {!run}'s. *)

val digest : results -> int
(** Order-sensitive FNV digest of all four result columns (non-negative).
    Equal digests across job counts certify bit-identical output. *)

(** {1 Measurement} *)

val measure_latency :
  ?limit:int ->
  Server.t ->
  workload ->
  results ->
  Ron_obs.Histogram.Bucketed.t ->
  unit
(** Sequential pass observing per-query wall-clock latency (ns) for the
    first [limit] queries. *)

val minor_words_per_query : Server.t -> workload -> results -> float
(** Steady-state minor-heap allocation per query, in words: one warm
    sequential pass, then a measured pass under [Gc.quick_stat] deltas.
    ~0 when the hot path is allocation-free. *)
