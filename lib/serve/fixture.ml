(* Canonical scheme constructions for the serving layer: the CLI, the
   bench serve section, and the round-trip tests all freeze the same live
   instances, so "frozen matches live" means the same thing everywhere. *)

module Rng = Ron_util.Rng
module Generators = Ron_metric.Generators
module Indexed = Ron_metric.Indexed
module Graph_gen = Ron_graph.Graph_gen
module Sp_metric = Ron_graph.Sp_metric

type live =
  | L_basic of Ron_routing.Basic.t
  | L_labelled of Ron_routing.Labelled.t
  | L_two_mode of Ron_routing.Two_mode.t
  | L_meridian of Ron_smallworld.Meridian.t
  | L_landmark of Ron_labeling.Landmark.t

let names = [ "basic"; "labelled"; "two_mode"; "meridian"; "landmark" ]

(* Grid side for the graph-backed schemes: n is treated as a node budget. *)
let side_of n = max 2 (int_of_float (Float.round (sqrt (float_of_int n))))

let build_live ~scheme ~n ~seed =
  match scheme with
  | "basic" ->
    let side = side_of n in
    let sp = Sp_metric.create (Graph_gen.grid side side) in
    L_basic (Ron_routing.Basic.build sp ~delta:0.25)
  | "labelled" ->
    let side = side_of n in
    let sp = Sp_metric.create (Graph_gen.grid side side) in
    L_labelled (Ron_routing.Labelled.build sp ~delta:0.25)
  | "two_mode" ->
    let idx = Indexed.create (Generators.random_cloud (Rng.create seed) ~n ~dim:2) in
    L_two_mode (Ron_routing.Two_mode.build idx ~delta:0.125)
  | "meridian" ->
    let rng = Rng.create seed in
    let idx = Indexed.create (Generators.random_cloud (Rng.split rng) ~n ~dim:2) in
    let nn = Indexed.size idx in
    let perm = Array.init nn Fun.id in
    Rng.shuffle rng perm;
    (* Hold out a fifth of the nodes as non-member targets (Meridian's
       locate queries may name any node, member or not). *)
    let members = Array.sub perm (nn / 5) (nn - (nn / 5)) in
    L_meridian (Ron_smallworld.Meridian.build idx (Rng.split rng) ~ring_size:8 ~members)
  | "landmark" ->
    let side = side_of n in
    let sp = Sp_metric.create (Graph_gen.torus side side) in
    let nn = Ron_graph.Graph.size (Sp_metric.graph sp) in
    (* Beacon count grows with log n, not sqrt n: k full rows are the
       scheme's only superlinear term, and the million-node snapshot must
       stay O(n log n) bytes (same rule as the bench scale section). *)
    let k = max 4 (min 32 (1 + Ron_util.Bits.ilog2_floor nn)) in
    L_landmark (Ron_labeling.Landmark.build sp (Rng.create (seed + 97)) ~k ~local_radius:2.0)
  | other -> failwith (Printf.sprintf "unknown serve scheme %S" other)

let freeze = function
  | L_basic s -> Server.freeze_basic_t (Ron_routing.Basic.export s)
  | L_labelled s -> Server.freeze_labelled_t (Ron_routing.Labelled.export s)
  | L_two_mode s -> Server.freeze_two_mode_t (Ron_routing.Two_mode.export s)
  | L_meridian s -> Server.freeze_meridian_t (Ron_smallworld.Meridian.export s)
  | L_landmark s -> Server.freeze_landmark_t (Ron_labeling.Landmark.export s)

let build ~scheme ~n ~seed = freeze (build_live ~scheme ~n ~seed)
