(** Frozen, off-heap query servers.

    A constructed scheme is exported, packed into an {!Image.t} (Bigarray
    sections, int-indexed, string-free), and served through flat views
    whose query loops replicate the live step functions and
    [Scheme.simulate]'s Brent cycle detection operation for operation —
    frozen results are byte-identical to the live scheme's. The hot path
    is zero-allocation in steady state: all per-query mutable state lives
    in a preallocated per-domain {!scratch}, results land in its
    registers, and no hot function passes or returns a float. *)

type ints = Image.ints
type floats = Image.floats

(** {1 Scratch} *)

(** Per-domain query state. Query results are read from the [r_*]
    registers and [fbuf] slots documented at {!query}; the remaining
    fields are internal working storage. *)
type scratch = {
  mutable m : int array;
  mutable right_gen : int array;
  mutable right_val : int array;
  mutable gen : int;
  mutable memo_d : float array;
  mutable memo_gen : int array;
  mutable mgen : int;
  fbuf : float array;
  mutable best_w : int;
  mutable sel_w : int;
  mutable r_outcome : int;
  mutable r_hops : int;
  mutable r_next : int;
  mutable r_aux : int;
  hop_log : int array;
  mutable hop_len : int;
  mutable log_hops : bool;
}
(** [hop_log]/[hop_len]/[log_hops]: per-hop trace capture for the flight
    recorder. While [log_hops] is set, every route/locate hop appends the
    visited node to [hop_log] (and [hop_len] keeps counting past the
    buffer, so truncation is visible); while clear — the default — each
    hop costs one load and a fall-through branch, preserving the
    0-words-per-query hot path. *)

(** {1 Servers} *)

type t

val freeze_basic : Ron_routing.Basic.export -> Image.t
val freeze_labelled : Ron_routing.Labelled.export -> Image.t
val freeze_two_mode : Ron_routing.Two_mode.export -> Image.t
val freeze_meridian : Ron_smallworld.Meridian.export -> Image.t
val freeze_landmark : Ron_labeling.Landmark.export -> Image.t

val freeze_basic_t : Ron_routing.Basic.export -> t
val freeze_labelled_t : Ron_routing.Labelled.export -> t
val freeze_two_mode_t : Ron_routing.Two_mode.export -> t
val freeze_meridian_t : Ron_smallworld.Meridian.export -> t
val freeze_landmark_t : Ron_labeling.Landmark.export -> t

val of_image : Image.t -> (t, string) result
(** Wrap an image's sections — zero-copy — into a server, validating the
    scheme tag and per-scheme section counts. *)

val load : string -> (t, string) result
(** [Image.load] followed by {!of_image}. *)

val save : t -> string -> unit
val image : t -> Image.t

val byte_size : t -> int
(** Exact on-disk size of the underlying snapshot. *)

val scheme_tag : t -> int
(** 1 basic, 2 labelled, 3 two_mode, 4 meridian, 5 landmark. *)

val scheme_name : t -> string
val size : t -> int

val sources : t -> ints option
(** Source population for workloads: [Some members] for Meridian (walks
    must start at ring members), [None] for node-id-uniform schemes. *)

val scratch_for : t -> scratch
(** This domain's scratch, grown to the server's bounds. Call once per
    domain (per server) before the query loop; {!query} itself never grows
    the scratch. *)

val prepare_scratch : t -> scratch -> unit

(** {1 Queries} *)

val effective_kind : t -> int -> int
(** The kind actually executed for a requested kind (0 route, 1 dist,
    2 locate): each scheme collapses unsupported kinds onto its native
    operation. *)

val query : t -> scratch -> kind:int -> src:int -> dst:int -> unit
(** Execute one query on this domain's scratch; allocation-free in steady
    state. Results, by effective kind:

    - route (0): [r_outcome] (0 delivered, 1 truncated, 2 self-forward,
      3 cycled), [r_hops], [r_aux] = header bits, [fbuf.(2)] = path
      length;
    - dist (1): [fbuf.(3)] = lower bound, [fbuf.(4)] = upper bound (equal
      for the label-based point estimates);
    - locate (2): [r_next] = found member, [r_hops], [r_aux] =
      measurements. *)
