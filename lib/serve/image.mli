(** Off-heap snapshot images.

    A frozen scheme is a scheme tag plus ordered arrays of off-heap
    sections: native-int and float64 {!Bigarray.Array1} slabs. Images save
    to a versioned, checksummed, 8-byte-aligned file and load back through
    [Unix.map_file], so a snapshot serves without copying its payload onto
    the OCaml heap. *)

type ints = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  scheme : int;  (** 1 basic, 2 labelled, 3 two_mode, 4 meridian, 5 landmark *)
  isecs : ints array;
  fsecs : floats array;
}

val ints_create : int -> ints
val floats_create : int -> floats
val ints_of_array : int array -> ints
val floats_of_array : float array -> floats

val checksum_ints : ints -> int64
(** FNV-1a over the section's words; also used by the serve digest. *)

val checksum_floats : floats -> int64

val byte_size : t -> int
(** Exact on-disk size of the image: header + section table + payloads. *)

val save : t -> string -> unit
(** [save t file] writes magic, version, scheme tag, word size, per-section
    lengths and checksums, then the raw section payloads. *)

val load : string -> (t, string) result
(** [load file] maps each section back (private mapping) and verifies every
    per-section checksum; any mismatch, truncation, version or word-size
    difference is an [Error] describing the first problem found. *)
