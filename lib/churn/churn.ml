module Rng = Ron_util.Rng
module Probe = Ron_obs.Probe
module Scheme = Ron_routing.Scheme
module Indexed = Ron_metric.Indexed
module Rings = Ron_core.Rings

(* Dynamic membership over a frozen scheme: a seeded, jobs-invariant
   schedule of joins and leaves, a routing wrapper that detours around
   departed nodes via the scheme's own ranked alternates, and incremental
   repair of neighbor tables — substitute-or-tombstone on a leave, local
   re-label plus re-adoption on a rejoin. Nothing here rebuilds a structure
   from scratch; the [churn.rebuilds] probe counter exists precisely so
   tests can pin that it stays at zero. *)

(* Domain-separation tags, disjoint from the fault layer's
   (0x1c0de / 0x2d509 / 0x3dead). *)
let tag_down = 0x4d07a
let tag_event = 0x5ca1e
let tag_node = 0x6c01b

(* Map a mixed hash (non-negative, < 2^62) to [0, 1). *)
let unit_float h = float_of_int h /. 4.611686018427387904e18 (* 2^62 *)

type cost = { updates : int; refills : int; relabels : int }

let zero_cost = { updates = 0; refills = 0; relabels = 0 }

let add_cost a b =
  {
    updates = a.updates + b.updates;
    refills = a.refills + b.refills;
    relabels = a.relabels + b.relabels;
  }

(* ---------------------------------------------------------------- Schedule *)

module Schedule = struct
  type kind = Join | Leave

  type event = { slot : int; kind : kind; node : int }

  type t = {
    seed : int;
    n : int;
    slots : int;
    join_rate : float;
    leave_rate : float;
    eligible_count : int;
    initial_down : int array;
    events : event array;
  }

  (* The schedule is a pure function of (seed, parameters): one coin per
     slot decides join / leave / nothing, one hash picks the node from the
     relevant pool. Pools use swap-remove so each draw is O(1) and the
     whole generation is sequential — RON_JOBS never touches it. A live
     floor of half the eligible population keeps leaves from draining the
     system; joins only re-admit previously departed nodes (the rejoin
     model: tables for a genuinely new node are a construction problem,
     not a repair problem). *)
  let make ?(seed = 0) ?(initial_down_fraction = 0.0) ?(eligible = fun _ -> true)
      ~n ~slots ~join_rate ~leave_rate () =
    if n < 0 then invalid_arg "Churn.Schedule.make: negative n";
    if slots < 0 then invalid_arg "Churn.Schedule.make: negative slots";
    if
      (not (join_rate >= 0.0))
      || (not (leave_rate >= 0.0))
      || join_rate +. leave_rate > 1.0
    then invalid_arg "Churn.Schedule.make: rates must be >= 0 and sum to <= 1";
    if not (initial_down_fraction >= 0.0 && initial_down_fraction < 1.0) then
      invalid_arg "Churn.Schedule.make: initial_down_fraction out of [0, 1)";
    let pool = ref [] in
    for v = n - 1 downto 0 do
      if eligible v then pool := v :: !pool
    done;
    let order = Array.of_list !pool in
    let m = Array.length order in
    Rng.shuffle (Rng.create (Rng.mix seed tag_down)) order;
    (* Clamp the seed-down count so the live floor holds from slot 0. *)
    let k =
      min (m / 2) (int_of_float (initial_down_fraction *. float_of_int m))
    in
    let initial_down = Array.sub order 0 k in
    Array.sort compare initial_down;
    let floor_live = m - (m / 2) in
    let down = Array.make (max m 1) 0 and live = Array.make (max m 1) 0 in
    Array.blit order 0 down 0 k;
    Array.blit order k live 0 (m - k);
    let down_len = ref k and live_len = ref (m - k) in
    let events = ref [] in
    for s = 0 to slots - 1 do
      let u = unit_float (Rng.mix (Rng.mix seed tag_event) s) in
      let h = Rng.mix (Rng.mix seed tag_node) s in
      if u < join_rate then begin
        if !down_len > 0 then begin
          let p = h mod !down_len in
          let v = down.(p) in
          down.(p) <- down.(!down_len - 1);
          decr down_len;
          live.(!live_len) <- v;
          incr live_len;
          events := { slot = s; kind = Join; node = v } :: !events
        end
      end
      else if u < join_rate +. leave_rate then
        if !live_len > floor_live then begin
          let p = h mod !live_len in
          let v = live.(p) in
          live.(p) <- live.(!live_len - 1);
          decr live_len;
          down.(!down_len) <- v;
          incr down_len;
          events := { slot = s; kind = Leave; node = v } :: !events
        end
    done;
    {
      seed;
      n;
      slots;
      join_rate;
      leave_rate;
      eligible_count = m;
      initial_down;
      events = Array.of_list (List.rev !events);
    }

  let events t = t.events
  let initial_down t = t.initial_down
  let eligible_count t = t.eligible_count
  let is_null t = Array.length t.events = 0 && Array.length t.initial_down = 0

  let describe t =
    let joins =
      Array.fold_left
        (fun a e -> if e.kind = Join then a + 1 else a)
        0 t.events
    in
    Fmt.str "churn seed=%d slots=%d join=%.3f leave=%.3f events=%d (%d joins, %d leaves) initial_down=%d"
      t.seed t.slots t.join_rate t.leave_rate (Array.length t.events) joins
      (Array.length t.events - joins)
      (Array.length t.initial_down)
end

(* ------------------------------------------------------------- Live state *)

type state = { n : int; live : bool array; mutable live_count : int }

let state_of_schedule (s : Schedule.t) =
  let live = Array.make (max s.Schedule.n 1) true in
  Array.iter (fun v -> live.(v) <- false) s.Schedule.initial_down;
  {
    n = s.Schedule.n;
    live;
    live_count = s.Schedule.n - Array.length s.Schedule.initial_down;
  }

let fresh_state n = { n; live = Array.make (max n 1) true; live_count = n }
let is_live st v = st.live.(v)
let live_count st = st.live_count
let down_count st = st.n - st.live_count

let mark_leave st v =
  if not st.live.(v) then invalid_arg "Churn.mark_leave: node already down";
  st.live.(v) <- false;
  st.live_count <- st.live_count - 1

let mark_join st v =
  if st.live.(v) then invalid_arg "Churn.mark_join: node already live";
  st.live.(v) <- true;
  st.live_count <- st.live_count + 1

(* --------------------------------------------------------- Routing wrapper *)

(* The frozen scheme tables keep referencing departed nodes; the wrapper is
   the query-time staleness story. A forward into a dead node is a stale
   hit; the walk then detours to the first live ranked alternate, or drops
   when the table offers none. The live set is frozen for the duration of a
   routing batch (events apply between batches), so the wrapped step is
   still a pure function of (node, header) and cycle detection stays on. *)
let wrapper st : Scheme.wrapper =
  if st.live_count = st.n then Scheme.identity_wrapper
  else
    {
      Scheme.wrap =
        (fun step ~alternates u h ->
          match step u h with
          | (Scheme.Deliver | Scheme.Drop) as a -> a
          | Scheme.Forward (v, _) as a ->
              if st.live.(v) then a
              else begin
                if !Probe.on then Probe.churn_stale_hit ();
                let rec try_alts = function
                  | [] -> Scheme.Drop
                  | (w, hw) :: rest ->
                      if w <> v && st.live.(w) then begin
                        if !Probe.on then Probe.churn_detour ();
                        Scheme.Forward (w, hw)
                      end
                      else try_alts rest
                in
                try_alts (alternates u h)
              end);
      detect_cycles = true;
    }

(* ------------------------------------------------------------ Overlay *)

module Overlay = struct
  (* Generic incremental repair over per-node id rows (a directory, a
     neighbor list, a local ball): pristine rows kept immutable beside a
     mutated working copy, with reverse indexes over both so per-event
     work is proportional to the departed node's footprint, never to n.
     [-1] is the empty slot (tombstone). *)
  type t = {
    st : state;
    pristine : int array array;
    cur : int array array;
    prist_refs : (int * int) list array;  (* v -> (u, slot) with u <> v *)
    mutable cur_refs : (int * int) list array;
    valid : bool array;  (* label validity; a rejoin re-derives its label *)
    relabel_cost : int -> int;
    substitute : (u:int -> slot:int -> exclude:(int -> bool) -> int) option;
    mutable backlog : int;  (* invalidated labels not yet re-derived *)
  }

  let row_contains row w = Array.exists (fun x -> x = w) row

  (* Ranked fallback when the host scheme supplies none: the first live
     member of the referrer's own pristine row — a link its table already
     holds. *)
  let default_substitute t ~u ~slot:_ ~exclude =
    let row = t.pristine.(u) in
    let best = ref (-1) in
    (try
       Array.iter
         (fun w ->
           if w >= 0 && w <> u && t.st.live.(w) && not (exclude w) then begin
             best := w;
             raise Exit
           end)
         row
     with Exit -> ());
    !best

  let subst t ~u ~slot ~exclude =
    match t.substitute with
    | Some f -> f ~u ~slot ~exclude
    | None -> default_substitute t ~u ~slot ~exclude

  (* [probe=false] covers construction-time reconciliation of the
     initially-down set: real repair work, but not a scheduled event, so
     it must not show up in the per-event counters. *)
  let leave_repair ~probe t v =
    let updates = ref 0 and refills = ref 0 in
    if t.valid.(v) then begin
      t.valid.(v) <- false;
      t.backlog <- t.backlog + 1
    end;
    let entries = t.cur_refs.(v) in
    List.iter
      (fun (u, pos) ->
        if t.st.live.(u) then begin
          let exclude w = w = v || row_contains t.cur.(u) w in
          let w = subst t ~u ~slot:pos ~exclude in
          t.cur.(u).(pos) <- w;
          incr updates;
          if w >= 0 then begin
            t.cur_refs.(w) <- (u, pos) :: t.cur_refs.(w);
            incr refills;
            if probe && !Probe.on then Probe.churn_refill ()
          end
        end
        (* A dormant referrer keeps its stale slot: the row is not
           consulted while its owner is down, and the owner's own rejoin
           restores it wholesale. *))
      entries;
    t.cur_refs.(v) <- List.filter (fun (u, _) -> not t.st.live.(u)) entries;
    { updates = !updates; refills = !refills; relabels = 0 }

  let join_repair ~probe t v =
    let updates = ref 0 and refills = ref 0 and relabels = ref 0 in
    if not t.valid.(v) then begin
      t.valid.(v) <- true;
      t.backlog <- t.backlog - 1;
      relabels := t.relabel_cost v;
      if probe && !Probe.on then Probe.churn_relabel ()
    end;
    (* Restore the rejoiner's own row toward pristine, substituting for
       members that are themselves down. *)
    let prow = t.pristine.(v) and crow = t.cur.(v) in
    for pos = 0 to Array.length prow - 1 do
      let pw = prow.(pos) in
      let desired =
        if pw < 0 then -1
        else if pw = v || t.st.live.(pw) then pw
        else subst t ~u:v ~slot:pos ~exclude:(fun w -> row_contains crow w)
      in
      if crow.(pos) <> desired then begin
        let old = crow.(pos) in
        if old >= 0 && old <> v then
          t.cur_refs.(old) <- List.filter (fun e -> e <> (v, pos)) t.cur_refs.(old);
        crow.(pos) <- desired;
        if desired >= 0 && desired <> v then begin
          t.cur_refs.(desired) <- (v, pos) :: t.cur_refs.(desired);
          incr refills;
          if probe && !Probe.on then Probe.churn_refill ()
        end;
        incr updates
      end
    done;
    (* Re-adopt the rejoiner at its pristine positions in live referrers,
       evicting whatever substitute sat there. *)
    List.iter
      (fun (u, pos) ->
        if t.st.live.(u) && t.cur.(u).(pos) <> v && not (row_contains t.cur.(u) v)
        then begin
          let old = t.cur.(u).(pos) in
          if old >= 0 then
            t.cur_refs.(old) <- List.filter (fun e -> e <> (u, pos)) t.cur_refs.(old);
          t.cur.(u).(pos) <- v;
          t.cur_refs.(v) <- (u, pos) :: t.cur_refs.(v);
          incr updates
        end)
      t.prist_refs.(v);
    { updates = !updates; refills = !refills; relabels = !relabels }

  let create ?substitute st rows ~relabel_cost =
    let n = st.n in
    if Array.length rows <> n then
      invalid_arg "Churn.Overlay.create: row count mismatch";
    let pristine = Array.map Array.copy rows in
    let cur = Array.map Array.copy pristine in
    let prist_refs = Array.make (max n 1) [] in
    for u = n - 1 downto 0 do
      let row = pristine.(u) in
      for pos = Array.length row - 1 downto 0 do
        let v = row.(pos) in
        if v >= 0 && v <> u then prist_refs.(v) <- (u, pos) :: prist_refs.(v)
      done
    done;
    let t =
      {
        st;
        pristine;
        cur;
        prist_refs;
        cur_refs = Array.map (fun l -> l) prist_refs;
        valid = Array.make (max n 1) true;
        relabel_cost;
        substitute;
        backlog = 0;
      }
    in
    (* Reconcile rows with nodes that are already down at creation time. *)
    for v = 0 to n - 1 do
      if not st.live.(v) then ignore (leave_repair ~probe:false t v)
    done;
    t

  let leave t v = leave_repair ~probe:true t v
  let join t v = join_repair ~probe:true t v

  let stale_entries t =
    let c = ref 0 in
    for u = 0 to t.st.n - 1 do
      if t.st.live.(u) then
        Array.iter (fun w -> if w >= 0 && not t.st.live.(w) then incr c) t.cur.(u)
    done;
    !c

  let backlog t = t.backlog
  let valid_label t u = t.valid.(u)
  let row t u = Array.copy t.cur.(u)
end

(* --------------------------------------------------------- Ring repair *)

module Ring_repair = struct
  (* Incremental repair of a rings-of-neighbors collection: a leave
     replaces every live occurrence of the departed node with the nearest
     live node inside the ring's own ball (bounded-radius exploration —
     the candidate order is the substrate's distance order, so the refill
     is ranked); a rejoin restores its own rings and re-adopts it at its
     pristine positions. The pristine collection is borrowed read-only;
     all mutation lands on a deep working copy. *)
  type t = {
    st : state;
    idx : Indexed.t;
    pristine : Rings.t;
    work : Rings.t;
    prist_refs : (int * int * int) list array;  (* v -> (u, ring i, slot) *)
    mutable cur_refs : (int * int * int) list array;
  }

  let ring_contains members w = Array.exists (fun x -> x = w) members

  (* Nearest live candidate inside ring [i] of [u]'s ball, excluding the
     node being replaced and current members; [-1] when the ball holds no
     live substitute (the slot becomes a tombstone). *)
  let substitute t u i ~avoid =
    let r = (Rings.rings_of t.work u).(i) in
    let best = ref (-1) in
    (try
       Indexed.ball_iter t.idx u r.Rings.radius (fun w _d ->
           if
             w <> u && w <> avoid && t.st.live.(w)
             && not (ring_contains r.Rings.members w)
           then begin
             best := w;
             raise Exit
           end)
     with Exit -> ());
    !best

  let leave_repair ~probe t v =
    let updates = ref 0 and refills = ref 0 in
    let entries = t.cur_refs.(v) in
    List.iter
      (fun (u, i, slot) ->
        if t.st.live.(u) then begin
          let w = substitute t u i ~avoid:v in
          Rings.replace_member t.work u i ~at:slot ~with_:w;
          incr updates;
          if w >= 0 then begin
            t.cur_refs.(w) <- (u, i, slot) :: t.cur_refs.(w);
            incr refills;
            if probe && !Probe.on then Probe.churn_refill ()
          end
        end)
      entries;
    t.cur_refs.(v) <- List.filter (fun (u, _, _) -> not t.st.live.(u)) entries;
    { updates = !updates; refills = !refills; relabels = 0 }

  let join_repair ~probe t v =
    let updates = ref 0 and refills = ref 0 in
    (* Restore the rejoiner's own rings toward pristine. *)
    let prings = Rings.rings_of t.pristine v in
    Array.iteri
      (fun i (pr : Rings.ring) ->
        let cur = (Rings.rings_of t.work v).(i) in
        Array.iteri
          (fun slot pw ->
            let desired =
              if pw = v || (pw >= 0 && t.st.live.(pw)) then pw
              else substitute t v i ~avoid:pw
            in
            if cur.Rings.members.(slot) <> desired then begin
              let old = cur.Rings.members.(slot) in
              if old >= 0 && old <> v then
                t.cur_refs.(old) <-
                  List.filter (fun e -> e <> (v, i, slot)) t.cur_refs.(old);
              Rings.replace_member t.work v i ~at:slot ~with_:desired;
              if desired >= 0 && desired <> v then begin
                t.cur_refs.(desired) <- (v, i, slot) :: t.cur_refs.(desired);
                incr refills;
                if probe && !Probe.on then Probe.churn_refill ()
              end;
              incr updates
            end)
          pr.Rings.members)
      prings;
    (* Re-adopt at pristine positions in live referrers. *)
    List.iter
      (fun (u, i, slot) ->
        if t.st.live.(u) then begin
          let r = (Rings.rings_of t.work u).(i) in
          if r.Rings.members.(slot) <> v && not (ring_contains r.Rings.members v)
          then begin
            let old = r.Rings.members.(slot) in
            if old >= 0 then
              t.cur_refs.(old) <-
                List.filter (fun e -> e <> (u, i, slot)) t.cur_refs.(old);
            Rings.replace_member t.work u i ~at:slot ~with_:v;
            t.cur_refs.(v) <- (u, i, slot) :: t.cur_refs.(v);
            incr updates
          end
        end)
      t.prist_refs.(v);
    { updates = !updates; refills = !refills; relabels = 0 }

  let create st idx rings =
    let n = Rings.size rings in
    if n <> st.n then invalid_arg "Churn.Ring_repair.create: size mismatch";
    let prist_refs = Array.make (max n 1) [] in
    for u = n - 1 downto 0 do
      let rs = Rings.rings_of rings u in
      for i = Array.length rs - 1 downto 0 do
        let members = rs.(i).Rings.members in
        for slot = Array.length members - 1 downto 0 do
          let v = members.(slot) in
          if v >= 0 && v <> u then
            prist_refs.(v) <- (u, i, slot) :: prist_refs.(v)
        done
      done
    done;
    let t =
      {
        st;
        idx;
        pristine = rings;
        work = Rings.copy rings;
        prist_refs;
        cur_refs = Array.map (fun l -> l) prist_refs;
      }
    in
    for v = 0 to n - 1 do
      if not st.live.(v) then ignore (leave_repair ~probe:false t v)
    done;
    t

  let leave t v = leave_repair ~probe:true t v
  let join t v = join_repair ~probe:true t v

  let stale_members t =
    let c = ref 0 in
    for u = 0 to t.st.n - 1 do
      if t.st.live.(u) then
        Array.iter
          (fun (r : Rings.ring) ->
            Array.iter
              (fun w -> if w >= 0 && w <> u && not t.st.live.(w) then incr c)
              r.Rings.members)
          (Rings.rings_of t.work u)
    done;
    !c

  let rings t = t.work
end

(* ------------------------------------------------------------- Driver *)

module Driver = struct
  type summary = { joins : int; leaves : int; cost : cost }

  (* Apply every scheduled event in slot order: flip the live flag, run the
     per-scheme repair, account the work. Strictly sequential — the shared
     counters and the swap-style repairs both require it — which is fine:
     repair cost is bounded by the event's footprint, not by n. *)
  let apply sched st ~on_leave ~on_join ?(backlog = fun () -> 0) () =
    let total = ref zero_cost and joins = ref 0 and leaves = ref 0 in
    Array.iter
      (fun (e : Schedule.event) ->
        let c =
          match e.Schedule.kind with
          | Schedule.Join ->
              mark_join st e.Schedule.node;
              incr joins;
              if !Probe.on then Probe.churn_join ();
              on_join e.Schedule.node
          | Schedule.Leave ->
              mark_leave st e.Schedule.node;
              incr leaves;
              if !Probe.on then Probe.churn_leave ();
              on_leave e.Schedule.node
        in
        total := add_cost !total c;
        if !Probe.on then begin
          Probe.churn_repair ~updates:c.updates;
          Probe.churn_levels ~live:st.live_count ~backlog:(backlog ())
        end)
      (Schedule.events sched);
    { joins = !joins; leaves = !leaves; cost = !total }
end
