(** Churn: dynamic joins and leaves over a frozen rings-of-neighbors
    scheme, with incremental repair.

    The paper's structures are built once over a static node set; Section 6
    points at the dynamic setting (Meridian's open maintenance question).
    This layer supplies the missing machinery in three pieces, all
    jobs-invariant:

    - {!Schedule}: a seeded event sequence of node departures and rejoins,
      a pure function of (seed, parameters) — bit-identical at any
      [RON_JOBS];
    - {!wrapper}: query-time staleness — a routing wrapper that detours
      around departed next hops via the scheme's own ranked alternates;
    - {!Overlay} / {!Ring_repair}: incremental table repair —
      substitute-or-tombstone on a leave, local re-label plus re-adoption
      on a rejoin. Per-event work is bounded by the event's footprint;
      nothing rebuilds from scratch (the [churn.rebuilds] probe counter
      exists so tests can pin that it stays at zero). *)

type cost = { updates : int; refills : int; relabels : int }
(** Repair-work accounting for one event (or an aggregate): table entries
    written, of which slots re-filled with a live substitute, and label
    entries re-derived by a rejoin. *)

val zero_cost : cost
val add_cost : cost -> cost -> cost

(** {2 Event schedule} *)

module Schedule : sig
  type kind = Join | Leave

  type event = { slot : int; kind : kind; node : int }

  type t

  val make :
    ?seed:int ->
    ?initial_down_fraction:float ->
    ?eligible:(int -> bool) ->
    n:int ->
    slots:int ->
    join_rate:float ->
    leave_rate:float ->
    unit ->
    t
  (** One independent coin per slot: with probability [join_rate] a
      departed node rejoins, with probability [leave_rate] a live node
      leaves; otherwise the slot is quiet. Node picks are seeded hashes
      over swap-remove pools, so generation is strictly sequential and
      deterministic. The rejoin model: joins only re-admit nodes that are
      currently down, seeded by [initial_down_fraction] of the eligible
      population (clamped to half); leaves respect a live floor of half
      the eligible population. [eligible] fences off load-bearing nodes
      (beacons, non-members) that the host scheme cannot lose.

      Raises [Invalid_argument] on negative [n]/[slots], rates outside
      [[0, 1]] or summing past 1, or [initial_down_fraction] outside
      [[0, 1)). *)

  val events : t -> event array
  val initial_down : t -> int array
  (** Ascending node ids down at slot 0 (tables were built including
      them). *)

  val eligible_count : t -> int

  val is_null : t -> bool
  (** No events and nobody initially down — churn at rate 0 must be
      indistinguishable from no churn layer at all. *)

  val describe : t -> string
end

(** {2 Live-set state} *)

type state
(** Mutable live/down flags plus a count; shared by the wrapper and the
    repair structures, mutated only by {!mark_join}/{!mark_leave} (the
    {!Driver} does this for you). *)

val state_of_schedule : Schedule.t -> state
(** All nodes live except the schedule's initially-down set. *)

val fresh_state : int -> state
(** All [n] nodes live. *)

val is_live : state -> int -> bool
val live_count : state -> int
val down_count : state -> int

val mark_leave : state -> int -> unit
(** Raises [Invalid_argument] if the node is already down. *)

val mark_join : state -> int -> unit
(** Raises [Invalid_argument] if the node is already live. *)

(** {2 Routing under churn} *)

val wrapper : state -> Ron_routing.Scheme.wrapper
(** Blocks forwards into departed nodes (a [churn.stale_hits] probe per
    block) and detours to the first live ranked alternate
    ([churn.detours]), dropping the packet when the table offers none.
    The live set must be frozen while routing (apply events between
    batches): the wrapped step then stays a pure function of
    (node, header) and cycle detection stays on. When every node is live
    this is {!Ron_routing.Scheme.identity_wrapper} itself — routes are
    byte-identical to the unwrapped scheme. Compose with the fault
    wrapper via {!Ron_routing.Scheme.compose}. *)

(** {2 Incremental repair: generic id rows} *)

module Overlay : sig
  (** Repair over per-node id rows (a directory, a neighbor list, a local
      ball): pristine rows are kept immutable beside a mutated working
      copy, with reverse indexes over both, so a leave touches exactly the
      departed node's referrers and a rejoin touches exactly its pristine
      footprint. [-1] marks an empty slot (tombstone: no live substitute
      was available). *)

  type t

  val create :
    ?substitute:(u:int -> slot:int -> exclude:(int -> bool) -> int) ->
    state ->
    int array array ->
    relabel_cost:(int -> int) ->
    t
  (** [create st rows ~relabel_cost]: rows are copied; negative entries
      are treated as already-empty slots. [substitute ~u ~slot ~exclude]
      proposes a ranked live replacement for a lost member of [u]'s row
      (it must return a live node not excluded and never [u], or [-1]);
      the default takes the first live member of [u]'s own pristine row.
      [relabel_cost v] is the number of label entries a rejoining [v]
      re-derives. Nodes already down in [st] are reconciled silently
      (construction, not a scheduled event — no probe bumps). *)

  val leave : t -> int -> cost
  (** Repair after the node was marked down ({!mark_leave} first):
      substitute-or-tombstone at every live referrer, and invalidate the
      departed node's label. *)

  val join : t -> int -> cost
  (** Repair after the node was marked live ({!mark_join} first): re-derive
      its label ([relabel_cost] entries, one [churn.relabels] probe),
      restore its own row toward pristine, and re-adopt it at its pristine
      positions in live referrers. *)

  val stale_entries : t -> int
  (** Entries of live rows referencing down nodes — 0 after every repaired
      event (the repair invariant tests pin). *)

  val backlog : t -> int
  (** Invalidated labels not yet re-derived, i.e. currently-down nodes
      whose state the overlay has seen — the repair-backlog gauge. *)

  val valid_label : t -> int -> bool
  val row : t -> int -> int array
  (** Fresh copy of the current (repaired) row. *)
end

(** {2 Incremental repair: rings of neighbors} *)

module Ring_repair : sig
  (** Repair over a {!Ron_core.Rings.t} collection. A leave replaces every
      live occurrence of the departed node with the nearest live node
      inside the ring's own ball — bounded-radius exploration, candidates
      in the substrate's distance order, so the refill is ranked. A rejoin
      restores the node's own rings and re-adopts it at its pristine
      positions. The pristine collection is borrowed read-only; all
      mutation lands on a deep working copy. *)

  type t

  val create : state -> Ron_metric.Indexed.t -> Ron_core.Rings.t -> t
  (** Nodes already down in the state are reconciled silently, as in
      {!Overlay.create}. *)

  val leave : t -> int -> cost
  val join : t -> int -> cost

  val stale_members : t -> int
  (** Ring members of live nodes referencing down nodes — 0 after every
      repaired event. *)

  val rings : t -> Ron_core.Rings.t
  (** The working copy (contains [-1] tombstones where no in-ball live
      substitute existed). *)
end

(** {2 Event application} *)

module Driver : sig
  type summary = { joins : int; leaves : int; cost : cost }

  val apply :
    Schedule.t ->
    state ->
    on_leave:(int -> cost) ->
    on_join:(int -> cost) ->
    ?backlog:(unit -> int) ->
    unit ->
    summary
  (** Apply every scheduled event in slot order: flip the live flag, run
      the per-scheme repair callback, account the work. Bumps the
      [churn.joins]/[churn.leaves]/[churn.repair_updates] counters and the
      [churn.live_nodes]/[churn.repair_backlog] gauges per event (when
      probes are on). Strictly sequential by design. *)
end
