(* Tests for the ron_graph library: Graph, Dijkstra, Sp_metric, Graph_gen. *)

module Rng = Ron_util.Rng
module Graph = Ron_graph.Graph
module Dijkstra = Ron_graph.Dijkstra
module Sp_metric = Ron_graph.Sp_metric
module Graph_gen = Ron_graph.Graph_gen
module Metric = Ron_metric.Metric

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)
let check_float msg = Alcotest.(check (float 1e-9)) msg

(* ---------------------------------------------------------------- Graph *)

let test_graph_basics () =
  let g = Graph.undirected 4 [ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 1.5) ] in
  check_int "size" 4 (Graph.size g);
  check_int "degree of 1" 2 (Graph.out_degree g 1);
  check_int "max degree" 2 (Graph.max_out_degree g);
  check_int "arcs" 6 (Graph.edge_count g);
  check_bool "connected" (Graph.is_connected g)

let test_graph_rejects_bad_input () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self-loop") (fun () ->
      ignore (Graph.create 2 [ (0, 0, 1.0) ]));
  Alcotest.check_raises "bad weight" (Invalid_argument "Graph.create: weight must be positive")
    (fun () -> ignore (Graph.create 2 [ (0, 1, 0.0) ]));
  Alcotest.check_raises "range" (Invalid_argument "Graph.create: node out of range") (fun () ->
      ignore (Graph.create 2 [ (0, 5, 1.0) ]))

let test_graph_disconnected () =
  let g = Graph.undirected 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  check_bool "disconnected" (not (Graph.is_connected g))

(* ------------------------------------------------------------- Dijkstra *)

let floyd_warshall g =
  let n = Graph.size g in
  let d = Array.make_matrix n n infinity in
  for u = 0 to n - 1 do
    d.(u).(u) <- 0.0;
    Array.iter
      (fun e -> d.(u).(e.Graph.dst) <- Float.min d.(u).(e.Graph.dst) e.Graph.weight)
      (Graph.out_edges g u)
  done;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) +. d.(k).(j) < d.(i).(j) then d.(i).(j) <- d.(i).(k) +. d.(k).(j)
      done
    done
  done;
  d

let random_graph seed n extra =
  let rng = Rng.create seed in
  (* Random spanning tree plus extra random edges: always connected. *)
  let edges = ref [] in
  for v = 1 to n - 1 do
    let u = Rng.int rng v in
    edges := (u, v, 0.5 +. Rng.float rng 4.5) :: !edges
  done;
  for _ = 1 to extra do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then edges := (u, v, 0.5 +. Rng.float rng 4.5) :: !edges
  done;
  Graph.undirected n !edges

let test_dijkstra_matches_floyd_warshall () =
  let g = random_graph 1 40 60 in
  let fw = floyd_warshall g in
  let ap = Dijkstra.all_pairs g in
  for u = 0 to 39 do
    for v = 0 to 39 do
      check_bool "distance agrees" (Float.abs (fw.(u).(v) -. Dijkstra.distance ap u v) < 1e-9)
    done
  done

let test_flat_apsp_matches_reference () =
  (* The flat heap must reproduce the boxed reference implementation bit for
     bit: distances by float equality (not tolerance), first hops exactly. *)
  List.iter
    (fun seed ->
      let n = 30 + (seed * 7) in
      let g = random_graph (100 + seed) n (2 * n) in
      let ap = Dijkstra.all_pairs g in
      let ref_ap = Dijkstra.all_pairs_reference g in
      for u = 0 to n - 1 do
        let s = ref_ap.(u) in
        for v = 0 to n - 1 do
          check_bool "dist bit-identical"
            (Float.equal (Dijkstra.distance ap u v) s.Dijkstra.dist.(v));
          check_int "first hop identical" s.Dijkstra.first_hop.(v) (Dijkstra.first_hop ap u v)
        done
      done)
    [ 1; 2; 3 ]

let test_all_pairs_jobs_bit_identical () =
  (* Same contract as test_pool.ml: any job count, identical bits. *)
  let g = random_graph 11 60 120 in
  let a1 = Dijkstra.all_pairs ~jobs:1 g in
  let a4 = Dijkstra.all_pairs ~jobs:4 g in
  for u = 0 to 59 do
    for v = 0 to 59 do
      check_bool "dist jobs=1 = jobs=4" (Float.equal (Dijkstra.distance a1 u v) (Dijkstra.distance a4 u v));
      check_int "fh jobs=1 = jobs=4" (Dijkstra.first_hop a1 u v) (Dijkstra.first_hop a4 u v)
    done
  done

let prop_flat_apsp_vs_floyd_warshall =
  QCheck.Test.make ~name:"flat all-pairs matches Floyd-Warshall on random connected graphs"
    ~count:12
    QCheck.(int_range 5 45)
    (fun n ->
      let g = random_graph (n * 13 + 5) n (3 * n / 2) in
      let fw = floyd_warshall g in
      let ap = Dijkstra.all_pairs g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Float.abs (fw.(u).(v) -. Dijkstra.distance ap u v) > 1e-9 then ok := false;
          (* The first hop must start a shortest path: one edge of the right
             weight, then a shortest remainder. *)
          if u <> v then begin
            let next = Dijkstra.next_toward g ap u v in
            let w =
              Array.fold_left
                (fun acc e -> if e.Graph.dst = next then Float.min acc e.Graph.weight else acc)
                infinity (Graph.out_edges g u)
            in
            if Float.abs (w +. fw.(next).(v) -. fw.(u).(v)) > 1e-9 then ok := false
          end
        done
      done;
      !ok)

let test_dijkstra_first_hop_walk () =
  (* Walking first hops from u must reach v with total length = dist. *)
  let g = random_graph 2 50 80 in
  let sp = Sp_metric.create g in
  for u = 0 to 49 do
    for v = 0 to 49 do
      if u <> v then begin
        let rec walk cur acc guard =
          if guard > 1000 then Alcotest.fail "walk did not terminate";
          if cur = v then acc
          else begin
            let next = Sp_metric.next_toward sp cur v in
            (* Parallel edges are possible in the random graph: a shortest
               path uses the lightest one. *)
            let w =
              Array.fold_left
                (fun acc e -> if e.Graph.dst = next then Float.min acc e.Graph.weight else acc)
                infinity (Graph.out_edges g cur)
            in
            walk next (acc +. w) (guard + 1)
          end
        in
        let len = walk u 0.0 0 in
        check_bool "walk length = distance" (Float.abs (len -. Sp_metric.dist sp u v) < 1e-6)
      end
    done
  done

let test_dijkstra_source () =
  let g = random_graph 3 10 10 in
  let s = Dijkstra.run g 4 in
  check_float "self distance" 0.0 s.Dijkstra.dist.(4);
  check_int "self first hop" (-1) s.Dijkstra.first_hop.(4)

let test_sp_metric_is_metric () =
  let g = random_graph 4 30 40 in
  let sp = Sp_metric.create g in
  check_bool "valid metric" (Result.is_ok (Metric.check (Sp_metric.metric sp)))

let test_sp_metric_path () =
  let g = Graph_gen.grid 5 5 in
  let sp = Sp_metric.create g in
  let p = Sp_metric.path sp 0 24 in
  check_int "path hops" 9 (List.length p);
  check_int "starts at src" 0 (List.hd p);
  check_int "ends at dst" 24 (List.nth p 8)

(* ------------------------------------------------------------ Graph_gen *)

let test_grid_properties () =
  let g = Graph_gen.grid 6 4 in
  check_int "size" 24 (Graph.size g);
  check_bool "connected" (Graph.is_connected g);
  check_int "max degree" 4 (Graph.max_out_degree g);
  let sp = Sp_metric.create g in
  check_float "manhattan distance" 8.0 (Sp_metric.dist sp 0 23)

let test_torus_properties () =
  let g = Graph_gen.torus 5 5 in
  check_bool "connected" (Graph.is_connected g);
  let sp = Sp_metric.create g in
  (* Wrap-around: opposite corner is 2+2 away, not 4+4. *)
  check_float "torus wraps" 4.0 (Sp_metric.dist sp 0 18)

let test_random_geometric_connected () =
  List.iter
    (fun seed ->
      let g = Graph_gen.random_geometric (Rng.create seed) ~n:80 ~radius:0.12 in
      check_bool "forced connectivity" (Graph.is_connected g))
    [ 1; 2; 3; 4; 5 ]

let test_ring_with_chords_metric () =
  (* Chords are weighted by ring distance, so the metric equals the plain
     ring metric. *)
  let g = Graph_gen.ring_with_chords (Rng.create 8) ~n:20 ~chords:15 in
  let sp = Sp_metric.create g in
  for u = 0 to 19 do
    for v = 0 to 19 do
      let k = abs (u - v) in
      let expect = float_of_int (min k (20 - k)) in
      check_bool "ring metric preserved" (Float.abs (Sp_metric.dist sp u v -. expect) < 1e-9)
    done
  done

let test_exponential_line_graph_metric () =
  let g = Graph_gen.exponential_line_graph 10 in
  let sp = Sp_metric.create g in
  check_float "endpoints" (float_of_int ((1 lsl 9) - 1)) (Sp_metric.dist sp 0 9);
  check_float "middle" (float_of_int ((1 lsl 5) - (1 lsl 2))) (Sp_metric.dist sp 2 5)

(* ------------------------------------------------------------ Hop_paths *)

module Hop_paths = Ron_graph.Hop_paths

let test_hop_paths_grid_exact () =
  (* At stretch 1 on a unit grid, the minimum hop count is the Manhattan
     distance itself. *)
  let sp = Sp_metric.create (Graph_gen.grid 5 5) in
  let hops = Hop_paths.min_hops_within_stretch sp ~src:0 ~stretch:1.0 in
  for v = 0 to 24 do
    check_int "hops = manhattan" (int_of_float (Sp_metric.dist sp 0 v)) hops.(v)
  done

let test_hop_paths_monotone_in_stretch () =
  let g = random_graph 6 40 80 in
  let sp = Sp_metric.create g in
  let tight = Hop_paths.min_hops_within_stretch sp ~src:3 ~stretch:1.0 in
  let loose = Hop_paths.min_hops_within_stretch sp ~src:3 ~stretch:1.5 in
  Array.iteri (fun v h -> check_bool "looser stretch never needs more hops" (loose.(v) <= h)) tight

let test_hop_paths_witness_exists () =
  (* The reported hop count must be achievable: verify against a BFS-like
     layered check that some path with that many hops and allowed length
     exists (we recompute independently with one extra round and equality). *)
  let g = random_graph 7 30 50 in
  let sp = Sp_metric.create g in
  let hops = Hop_paths.min_hops_within_stretch sp ~src:0 ~stretch:1.25 in
  (* h = 0 only for the source; every other node needs at least 1 hop and at
     most n-1 hops. *)
  check_int "source" 0 hops.(0);
  Array.iteri (fun v h -> if v <> 0 then check_bool "range" (h >= 1 && h < 30)) hops

let test_n_delta_small_on_geometric () =
  (* The paper's claim: good topologies have small N_delta. *)
  let g = Graph_gen.random_geometric (Rng.create 5) ~n:60 ~radius:0.25 in
  let sp = Sp_metric.create g in
  let nd = Hop_paths.n_delta sp ~stretch:1.25 in
  check_bool (Printf.sprintf "N_delta=%d small" nd) (nd <= 20)

let test_hop_paths_rejects_bad_stretch () =
  let sp = Sp_metric.create (Graph_gen.grid 3 3) in
  Alcotest.check_raises "stretch < 1"
    (Invalid_argument "Hop_paths.min_hops_within_stretch: stretch must be >= 1") (fun () ->
      ignore (Hop_paths.min_hops_within_stretch sp ~src:0 ~stretch:0.9))

(* ----------------------------------------------- on-demand oracle golden *)

(* Every backend must reproduce the eager all-pairs matrix bit for bit:
   distances by Float.equal, first hops exactly. *)

let test_oracle_matches_all_pairs () =
  let n = 90 in
  let g = random_graph 21 n 150 in
  let ap = Dijkstra.all_pairs g in
  (* capacity 3 << 90 sources: the LRU must evict and recompute, and
     recomputed rows must still be bit-identical. *)
  let o = Dijkstra.Oracle.create ~capacity:3 g in
  check_int "capacity" 3 (Dijkstra.Oracle.capacity o);
  for u = 0 to n - 1 do
    let dist = Dijkstra.Oracle.distances o u in
    let hops = Dijkstra.Oracle.first_hops o u in
    for v = 0 to n - 1 do
      check_bool "oracle dist = apsp" (Float.equal dist.(v) (Dijkstra.distance ap u v));
      check_int "oracle hop = apsp" (Dijkstra.first_hop ap u v) hops.(v)
    done
  done;
  (* Revisit sources long since evicted, via the element accessors. *)
  for u = 0 to 20 do
    check_bool "re-derived row identical"
      (Float.equal (Dijkstra.Oracle.distance o u (n - 1 - u)) (Dijkstra.distance ap u (n - 1 - u)));
    check_int "re-derived hop identical" (Dijkstra.first_hop ap u (u + 7))
      (Dijkstra.Oracle.first_hop o u (u + 7))
  done

let test_run_bounded_matches_run () =
  let g = random_graph 22 70 120 in
  List.iter
    (fun radius ->
      for src = 0 to 69 do
        let full = Dijkstra.run g src in
        let b = Dijkstra.run_bounded g src ~radius in
        check_bool "radius recorded" (Float.equal b.Dijkstra.radius radius);
        (* Settled set is exactly the closed ball. *)
        let expect = ref 0 in
        Array.iter (fun d -> if d <= radius then incr expect) full.Dijkstra.dist;
        check_int "ball size" !expect (Array.length b.Dijkstra.nodes);
        let prev = ref neg_infinity in
        Array.iteri
          (fun i v ->
            check_bool "dist bit-identical on ball"
              (Float.equal b.Dijkstra.dists.(i) full.Dijkstra.dist.(v));
            check_int "hop bit-identical on ball" full.Dijkstra.first_hop.(v) b.Dijkstra.hops.(i);
            check_bool "pop order nondecreasing" (b.Dijkstra.dists.(i) >= !prev);
            prev := b.Dijkstra.dists.(i))
          b.Dijkstra.nodes
      done)
    [ 0.0; 2.5; 6.0; 1e9 ]

let test_sp_metric_modes_bit_identical () =
  let n = 80 in
  let g = random_graph 23 n 130 in
  let eager = Sp_metric.create ~mode:Sp_metric.Eager g in
  let lazy_ = Sp_metric.create ~mode:Sp_metric.On_demand g in
  check_bool "modes recorded"
    (Sp_metric.mode eager = Sp_metric.Eager && Sp_metric.mode lazy_ = Sp_metric.On_demand);
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      check_bool "dist identical across modes"
        (Float.equal (Sp_metric.dist eager u v) (Sp_metric.dist lazy_ u v));
      if u <> v then
        check_int "first hop identical across modes" (Sp_metric.first_hop_index eager u v)
          (Sp_metric.first_hop_index lazy_ u v)
    done;
    let re = Sp_metric.distances_from eager u and rl = Sp_metric.distances_from lazy_ u in
    for v = 0 to n - 1 do
      check_bool "raw row identical across modes" (Float.equal re.(v) rl.(v))
    done
  done

let test_sample_ground_truth_golden () =
  let g = random_graph 24 120 200 in
  let eager = Sp_metric.create ~mode:Sp_metric.Eager g in
  let lazy1 = Sp_metric.create ~jobs:1 ~mode:Sp_metric.On_demand g in
  let lazy4 = Sp_metric.create ~jobs:4 ~mode:Sp_metric.On_demand g in
  let se = Sp_metric.sample_ground_truth eager ~seed:5 ~count:400 in
  let s1 = Sp_metric.sample_ground_truth lazy1 ~seed:5 ~count:400 in
  let s4 = Sp_metric.sample_ground_truth lazy4 ~seed:5 ~count:400 in
  check_int "sample size" 400 (Array.length se);
  check_bool "eager = ondemand jobs1" (se = s1);
  check_bool "ondemand jobs1 = jobs4" (s1 = s4);
  Array.iter
    (fun (u, v, d) ->
      check_bool "distinct endpoints" (u <> v);
      check_bool "distance is ground truth" (Float.equal d (Sp_metric.dist eager u v)))
    se

(* --------------------------------------------- streamed generator golden *)

(* The CSR arrays of the streamed grid/torus, pinned to the adjacency order
   of the original list-built generators (verified bit-for-bit against the
   old implementation when the streaming path landed): routing first-hop
   indices point into this order, so silently permuting it would change
   every scheme's bits. *)
let test_grid_csr_golden () =
  let off, dst, w = Graph.csr (Graph_gen.grid 3 2) in
  Alcotest.(check (array int)) "grid off" [| 0; 2; 5; 7; 9; 12; 14 |] off;
  Alcotest.(check (array int)) "grid dst" [| 3; 1; 4; 2; 0; 5; 1; 4; 0; 5; 3; 1; 4; 2 |] dst;
  Float.Array.iter (fun x -> check_float "grid unit weight" 1.0 x) w

let test_torus_csr_golden () =
  let off, dst, _ = Graph.csr (Graph_gen.torus 3 3) in
  Alcotest.(check (array int)) "torus off" [| 0; 4; 8; 12; 16; 20; 24; 28; 32; 36 |] off;
  Alcotest.(check (array int)) "torus dst"
    [| 6; 2; 3; 1; 7; 4; 2; 0; 8; 5; 0; 1; 5; 6; 4; 0; 7; 5; 3; 1; 8; 3; 4; 2; 8; 0; 7; 3; 1; 8; 6; 4; 2; 6; 7; 5 |]
    dst

let test_is_connected_deep_path () =
  (* A path this long overflowed the call stack under the old recursive
     DFS; the iterative version must handle it, in both verdict polarities. *)
  let n = 200_000 in
  let path = Graph.of_edge_stream n (fun emit -> for v = 0 to n - 2 do emit v (v + 1) 1.0 done) in
  check_bool "long path connected" (Graph.is_connected path);
  let broken =
    Graph.of_edge_stream n (fun emit ->
        for v = 0 to n - 2 do
          if v <> n / 2 then emit v (v + 1) 1.0
        done)
  in
  check_bool "broken path disconnected" (not (Graph.is_connected broken))

let test_random_geometric_cells_connected () =
  List.iter
    (fun seed ->
      let g = Graph_gen.random_geometric_cells (Rng.create seed) ~n:2000 ~radius:0.02 in
      check_bool "cells generator forced connectivity" (Graph.is_connected g))
    [ 1; 2; 3 ]

(* ------------------------------------------------------ landmark labels *)

module Landmark = Ron_labeling.Landmark

let test_landmark_sandwich () =
  let g = Graph_gen.torus 12 12 in
  let sp = Sp_metric.create ~mode:Sp_metric.Eager g in
  let lm = Landmark.build sp (Rng.create 31) ~k:8 ~local_radius:2.0 in
  let n = Graph.size g in
  check_int "beacon count" 8 (Landmark.order lm);
  for u = 0 to n - 1 do
    (* Radius-2 ball on a unit torus: u, 4 neighbors, 8 at distance 2. *)
    check_int "ball size" 13 (Landmark.ball_size lm u);
    for v = 0 to n - 1 do
      let d = Sp_metric.dist sp u v in
      let lo, hi = Landmark.estimate lm u v in
      check_bool "lower bound holds" (lo <= d);
      check_bool "upper bound holds" (d <= hi);
      if d <= 2.0 then check_bool "in-ball pairs exact" (Float.equal lo d && Float.equal hi d)
    done
  done;
  let is_beacon = Array.make n false in
  Array.iter (fun b -> is_beacon.(b) <- true) (Landmark.beacons lm);
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if is_beacon.(u) || is_beacon.(v) then begin
        let lo, hi = Landmark.estimate lm u v in
        check_bool "beacon-endpoint pairs exact"
          (Float.equal lo hi && Float.equal hi (Sp_metric.dist sp u v))
      end
    done
  done;
  Array.iter (fun bits -> check_bool "positive label bits" (bits > 0)) (Landmark.label_bits lm)

let test_landmark_jobs_bit_identical () =
  let g = Graph_gen.torus 10 10 in
  let sp = Sp_metric.create ~mode:Sp_metric.On_demand g in
  let lm1 = Landmark.build ~jobs:1 sp (Rng.create 31) ~k:6 ~local_radius:2.0 in
  let lm4 = Landmark.build ~jobs:4 sp (Rng.create 31) ~k:6 ~local_radius:2.0 in
  Alcotest.(check (array int)) "beacons identical" (Landmark.beacons lm1) (Landmark.beacons lm4);
  Alcotest.(check (array int)) "label bits identical" (Landmark.label_bits lm1)
    (Landmark.label_bits lm4);
  for u = 0 to 99 do
    for v = 0 to 99 do
      let lo1, hi1 = Landmark.estimate lm1 u v and lo4, hi4 = Landmark.estimate lm4 u v in
      check_bool "estimates identical" (Float.equal lo1 lo4 && Float.equal hi1 hi4)
    done
  done

(* --------------------------------------------------------------- QCheck *)

let prop_dijkstra_triangle =
  QCheck.Test.make ~name:"shortest-path metric satisfies triangle inequality" ~count:15
    QCheck.(int_range 5 40)
    (fun n ->
      let g = random_graph (n * 3 + 1) n (2 * n) in
      let sp = Sp_metric.create g in
      Result.is_ok (Metric.check (Sp_metric.metric sp)))

let prop_first_hop_progress =
  QCheck.Test.make ~name:"first hops strictly reduce distance to target" ~count:15
    QCheck.(int_range 5 40)
    (fun n ->
      let g = random_graph (n * 5 + 2) n n in
      let sp = Sp_metric.create g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v then begin
            let next = Sp_metric.next_toward sp u v in
            if not (Sp_metric.dist sp next v < Sp_metric.dist sp u v) then ok := false
          end
        done
      done;
      !ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ron_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "bad input rejected" `Quick test_graph_rejects_bad_input;
          Alcotest.test_case "disconnected detected" `Quick test_graph_disconnected;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "matches Floyd-Warshall" `Quick test_dijkstra_matches_floyd_warshall;
          Alcotest.test_case "flat apsp = reference, bit for bit" `Quick
            test_flat_apsp_matches_reference;
          Alcotest.test_case "all_pairs bit-identical across jobs" `Quick
            test_all_pairs_jobs_bit_identical;
          Alcotest.test_case "first-hop walks" `Quick test_dijkstra_first_hop_walk;
          Alcotest.test_case "source fields" `Quick test_dijkstra_source;
          Alcotest.test_case "sp metric valid" `Quick test_sp_metric_is_metric;
          Alcotest.test_case "sp path" `Quick test_sp_metric_path;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "oracle = all_pairs, bit for bit (LRU evicting)" `Quick
            test_oracle_matches_all_pairs;
          Alcotest.test_case "run_bounded = run on the ball" `Quick test_run_bounded_matches_run;
          Alcotest.test_case "eager/on-demand modes bit-identical" `Quick
            test_sp_metric_modes_bit_identical;
          Alcotest.test_case "sampled ground truth golden" `Quick test_sample_ground_truth_golden;
        ] );
      ( "landmark",
        [
          Alcotest.test_case "sandwich bounds + local exactness" `Quick test_landmark_sandwich;
          Alcotest.test_case "bit-identical across jobs" `Quick test_landmark_jobs_bit_identical;
        ] );
      ( "generators",
        [
          Alcotest.test_case "grid" `Quick test_grid_properties;
          Alcotest.test_case "grid CSR golden" `Quick test_grid_csr_golden;
          Alcotest.test_case "torus CSR golden" `Quick test_torus_csr_golden;
          Alcotest.test_case "is_connected on deep paths" `Quick test_is_connected_deep_path;
          Alcotest.test_case "random geometric cells connected" `Quick
            test_random_geometric_cells_connected;
          Alcotest.test_case "torus" `Quick test_torus_properties;
          Alcotest.test_case "random geometric connected" `Quick test_random_geometric_connected;
          Alcotest.test_case "ring with chords" `Quick test_ring_with_chords_metric;
          Alcotest.test_case "exponential line graph" `Quick test_exponential_line_graph_metric;
        ] );
      ( "hop-paths",
        [
          Alcotest.test_case "grid exact" `Quick test_hop_paths_grid_exact;
          Alcotest.test_case "monotone in stretch" `Quick test_hop_paths_monotone_in_stretch;
          Alcotest.test_case "witness range" `Quick test_hop_paths_witness_exists;
          Alcotest.test_case "N_delta small on geometric" `Quick test_n_delta_small_on_geometric;
          Alcotest.test_case "stretch validation" `Quick test_hop_paths_rejects_bad_stretch;
        ] );
      ( "properties",
        [ qt prop_dijkstra_triangle; qt prop_first_hop_progress; qt prop_flat_apsp_vs_floyd_warshall ]
      );
    ]
