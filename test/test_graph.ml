(* Tests for the ron_graph library: Graph, Dijkstra, Sp_metric, Graph_gen. *)

module Rng = Ron_util.Rng
module Graph = Ron_graph.Graph
module Dijkstra = Ron_graph.Dijkstra
module Sp_metric = Ron_graph.Sp_metric
module Graph_gen = Ron_graph.Graph_gen
module Metric = Ron_metric.Metric

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)
let check_float msg = Alcotest.(check (float 1e-9)) msg

(* ---------------------------------------------------------------- Graph *)

let test_graph_basics () =
  let g = Graph.undirected 4 [ (0, 1, 1.0); (1, 2, 2.0); (2, 3, 1.5) ] in
  check_int "size" 4 (Graph.size g);
  check_int "degree of 1" 2 (Graph.out_degree g 1);
  check_int "max degree" 2 (Graph.max_out_degree g);
  check_int "arcs" 6 (Graph.edge_count g);
  check_bool "connected" (Graph.is_connected g)

let test_graph_rejects_bad_input () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.create: self-loop") (fun () ->
      ignore (Graph.create 2 [ (0, 0, 1.0) ]));
  Alcotest.check_raises "bad weight" (Invalid_argument "Graph.create: weight must be positive")
    (fun () -> ignore (Graph.create 2 [ (0, 1, 0.0) ]));
  Alcotest.check_raises "range" (Invalid_argument "Graph.create: node out of range") (fun () ->
      ignore (Graph.create 2 [ (0, 5, 1.0) ]))

let test_graph_disconnected () =
  let g = Graph.undirected 4 [ (0, 1, 1.0); (2, 3, 1.0) ] in
  check_bool "disconnected" (not (Graph.is_connected g))

(* ------------------------------------------------------------- Dijkstra *)

let floyd_warshall g =
  let n = Graph.size g in
  let d = Array.make_matrix n n infinity in
  for u = 0 to n - 1 do
    d.(u).(u) <- 0.0;
    Array.iter
      (fun e -> d.(u).(e.Graph.dst) <- Float.min d.(u).(e.Graph.dst) e.Graph.weight)
      (Graph.out_edges g u)
  done;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) +. d.(k).(j) < d.(i).(j) then d.(i).(j) <- d.(i).(k) +. d.(k).(j)
      done
    done
  done;
  d

let random_graph seed n extra =
  let rng = Rng.create seed in
  (* Random spanning tree plus extra random edges: always connected. *)
  let edges = ref [] in
  for v = 1 to n - 1 do
    let u = Rng.int rng v in
    edges := (u, v, 0.5 +. Rng.float rng 4.5) :: !edges
  done;
  for _ = 1 to extra do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then edges := (u, v, 0.5 +. Rng.float rng 4.5) :: !edges
  done;
  Graph.undirected n !edges

let test_dijkstra_matches_floyd_warshall () =
  let g = random_graph 1 40 60 in
  let fw = floyd_warshall g in
  let ap = Dijkstra.all_pairs g in
  for u = 0 to 39 do
    for v = 0 to 39 do
      check_bool "distance agrees" (Float.abs (fw.(u).(v) -. Dijkstra.distance ap u v) < 1e-9)
    done
  done

let test_flat_apsp_matches_reference () =
  (* The flat heap must reproduce the boxed reference implementation bit for
     bit: distances by float equality (not tolerance), first hops exactly. *)
  List.iter
    (fun seed ->
      let n = 30 + (seed * 7) in
      let g = random_graph (100 + seed) n (2 * n) in
      let ap = Dijkstra.all_pairs g in
      let ref_ap = Dijkstra.all_pairs_reference g in
      for u = 0 to n - 1 do
        let s = ref_ap.(u) in
        for v = 0 to n - 1 do
          check_bool "dist bit-identical"
            (Float.equal (Dijkstra.distance ap u v) s.Dijkstra.dist.(v));
          check_int "first hop identical" s.Dijkstra.first_hop.(v) (Dijkstra.first_hop ap u v)
        done
      done)
    [ 1; 2; 3 ]

let test_all_pairs_jobs_bit_identical () =
  (* Same contract as test_pool.ml: any job count, identical bits. *)
  let g = random_graph 11 60 120 in
  let a1 = Dijkstra.all_pairs ~jobs:1 g in
  let a4 = Dijkstra.all_pairs ~jobs:4 g in
  for u = 0 to 59 do
    for v = 0 to 59 do
      check_bool "dist jobs=1 = jobs=4" (Float.equal (Dijkstra.distance a1 u v) (Dijkstra.distance a4 u v));
      check_int "fh jobs=1 = jobs=4" (Dijkstra.first_hop a1 u v) (Dijkstra.first_hop a4 u v)
    done
  done

let prop_flat_apsp_vs_floyd_warshall =
  QCheck.Test.make ~name:"flat all-pairs matches Floyd-Warshall on random connected graphs"
    ~count:12
    QCheck.(int_range 5 45)
    (fun n ->
      let g = random_graph (n * 13 + 5) n (3 * n / 2) in
      let fw = floyd_warshall g in
      let ap = Dijkstra.all_pairs g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Float.abs (fw.(u).(v) -. Dijkstra.distance ap u v) > 1e-9 then ok := false;
          (* The first hop must start a shortest path: one edge of the right
             weight, then a shortest remainder. *)
          if u <> v then begin
            let next = Dijkstra.next_toward g ap u v in
            let w =
              Array.fold_left
                (fun acc e -> if e.Graph.dst = next then Float.min acc e.Graph.weight else acc)
                infinity (Graph.out_edges g u)
            in
            if Float.abs (w +. fw.(next).(v) -. fw.(u).(v)) > 1e-9 then ok := false
          end
        done
      done;
      !ok)

let test_dijkstra_first_hop_walk () =
  (* Walking first hops from u must reach v with total length = dist. *)
  let g = random_graph 2 50 80 in
  let sp = Sp_metric.create g in
  for u = 0 to 49 do
    for v = 0 to 49 do
      if u <> v then begin
        let rec walk cur acc guard =
          if guard > 1000 then Alcotest.fail "walk did not terminate";
          if cur = v then acc
          else begin
            let next = Sp_metric.next_toward sp cur v in
            (* Parallel edges are possible in the random graph: a shortest
               path uses the lightest one. *)
            let w =
              Array.fold_left
                (fun acc e -> if e.Graph.dst = next then Float.min acc e.Graph.weight else acc)
                infinity (Graph.out_edges g cur)
            in
            walk next (acc +. w) (guard + 1)
          end
        in
        let len = walk u 0.0 0 in
        check_bool "walk length = distance" (Float.abs (len -. Sp_metric.dist sp u v) < 1e-6)
      end
    done
  done

let test_dijkstra_source () =
  let g = random_graph 3 10 10 in
  let s = Dijkstra.run g 4 in
  check_float "self distance" 0.0 s.Dijkstra.dist.(4);
  check_int "self first hop" (-1) s.Dijkstra.first_hop.(4)

let test_sp_metric_is_metric () =
  let g = random_graph 4 30 40 in
  let sp = Sp_metric.create g in
  check_bool "valid metric" (Result.is_ok (Metric.check (Sp_metric.metric sp)))

let test_sp_metric_path () =
  let g = Graph_gen.grid 5 5 in
  let sp = Sp_metric.create g in
  let p = Sp_metric.path sp 0 24 in
  check_int "path hops" 9 (List.length p);
  check_int "starts at src" 0 (List.hd p);
  check_int "ends at dst" 24 (List.nth p 8)

(* ------------------------------------------------------------ Graph_gen *)

let test_grid_properties () =
  let g = Graph_gen.grid 6 4 in
  check_int "size" 24 (Graph.size g);
  check_bool "connected" (Graph.is_connected g);
  check_int "max degree" 4 (Graph.max_out_degree g);
  let sp = Sp_metric.create g in
  check_float "manhattan distance" 8.0 (Sp_metric.dist sp 0 23)

let test_torus_properties () =
  let g = Graph_gen.torus 5 5 in
  check_bool "connected" (Graph.is_connected g);
  let sp = Sp_metric.create g in
  (* Wrap-around: opposite corner is 2+2 away, not 4+4. *)
  check_float "torus wraps" 4.0 (Sp_metric.dist sp 0 18)

let test_random_geometric_connected () =
  List.iter
    (fun seed ->
      let g = Graph_gen.random_geometric (Rng.create seed) ~n:80 ~radius:0.12 in
      check_bool "forced connectivity" (Graph.is_connected g))
    [ 1; 2; 3; 4; 5 ]

let test_ring_with_chords_metric () =
  (* Chords are weighted by ring distance, so the metric equals the plain
     ring metric. *)
  let g = Graph_gen.ring_with_chords (Rng.create 8) ~n:20 ~chords:15 in
  let sp = Sp_metric.create g in
  for u = 0 to 19 do
    for v = 0 to 19 do
      let k = abs (u - v) in
      let expect = float_of_int (min k (20 - k)) in
      check_bool "ring metric preserved" (Float.abs (Sp_metric.dist sp u v -. expect) < 1e-9)
    done
  done

let test_exponential_line_graph_metric () =
  let g = Graph_gen.exponential_line_graph 10 in
  let sp = Sp_metric.create g in
  check_float "endpoints" (float_of_int ((1 lsl 9) - 1)) (Sp_metric.dist sp 0 9);
  check_float "middle" (float_of_int ((1 lsl 5) - (1 lsl 2))) (Sp_metric.dist sp 2 5)

(* ------------------------------------------------------------ Hop_paths *)

module Hop_paths = Ron_graph.Hop_paths

let test_hop_paths_grid_exact () =
  (* At stretch 1 on a unit grid, the minimum hop count is the Manhattan
     distance itself. *)
  let sp = Sp_metric.create (Graph_gen.grid 5 5) in
  let hops = Hop_paths.min_hops_within_stretch sp ~src:0 ~stretch:1.0 in
  for v = 0 to 24 do
    check_int "hops = manhattan" (int_of_float (Sp_metric.dist sp 0 v)) hops.(v)
  done

let test_hop_paths_monotone_in_stretch () =
  let g = random_graph 6 40 80 in
  let sp = Sp_metric.create g in
  let tight = Hop_paths.min_hops_within_stretch sp ~src:3 ~stretch:1.0 in
  let loose = Hop_paths.min_hops_within_stretch sp ~src:3 ~stretch:1.5 in
  Array.iteri (fun v h -> check_bool "looser stretch never needs more hops" (loose.(v) <= h)) tight

let test_hop_paths_witness_exists () =
  (* The reported hop count must be achievable: verify against a BFS-like
     layered check that some path with that many hops and allowed length
     exists (we recompute independently with one extra round and equality). *)
  let g = random_graph 7 30 50 in
  let sp = Sp_metric.create g in
  let hops = Hop_paths.min_hops_within_stretch sp ~src:0 ~stretch:1.25 in
  (* h = 0 only for the source; every other node needs at least 1 hop and at
     most n-1 hops. *)
  check_int "source" 0 hops.(0);
  Array.iteri (fun v h -> if v <> 0 then check_bool "range" (h >= 1 && h < 30)) hops

let test_n_delta_small_on_geometric () =
  (* The paper's claim: good topologies have small N_delta. *)
  let g = Graph_gen.random_geometric (Rng.create 5) ~n:60 ~radius:0.25 in
  let sp = Sp_metric.create g in
  let nd = Hop_paths.n_delta sp ~stretch:1.25 in
  check_bool (Printf.sprintf "N_delta=%d small" nd) (nd <= 20)

let test_hop_paths_rejects_bad_stretch () =
  let sp = Sp_metric.create (Graph_gen.grid 3 3) in
  Alcotest.check_raises "stretch < 1"
    (Invalid_argument "Hop_paths.min_hops_within_stretch: stretch must be >= 1") (fun () ->
      ignore (Hop_paths.min_hops_within_stretch sp ~src:0 ~stretch:0.9))

(* --------------------------------------------------------------- QCheck *)

let prop_dijkstra_triangle =
  QCheck.Test.make ~name:"shortest-path metric satisfies triangle inequality" ~count:15
    QCheck.(int_range 5 40)
    (fun n ->
      let g = random_graph (n * 3 + 1) n (2 * n) in
      let sp = Sp_metric.create g in
      Result.is_ok (Metric.check (Sp_metric.metric sp)))

let prop_first_hop_progress =
  QCheck.Test.make ~name:"first hops strictly reduce distance to target" ~count:15
    QCheck.(int_range 5 40)
    (fun n ->
      let g = random_graph (n * 5 + 2) n n in
      let sp = Sp_metric.create g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v then begin
            let next = Sp_metric.next_toward sp u v in
            if not (Sp_metric.dist sp next v < Sp_metric.dist sp u v) then ok := false
          end
        done
      done;
      !ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ron_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "bad input rejected" `Quick test_graph_rejects_bad_input;
          Alcotest.test_case "disconnected detected" `Quick test_graph_disconnected;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "matches Floyd-Warshall" `Quick test_dijkstra_matches_floyd_warshall;
          Alcotest.test_case "flat apsp = reference, bit for bit" `Quick
            test_flat_apsp_matches_reference;
          Alcotest.test_case "all_pairs bit-identical across jobs" `Quick
            test_all_pairs_jobs_bit_identical;
          Alcotest.test_case "first-hop walks" `Quick test_dijkstra_first_hop_walk;
          Alcotest.test_case "source fields" `Quick test_dijkstra_source;
          Alcotest.test_case "sp metric valid" `Quick test_sp_metric_is_metric;
          Alcotest.test_case "sp path" `Quick test_sp_metric_path;
        ] );
      ( "generators",
        [
          Alcotest.test_case "grid" `Quick test_grid_properties;
          Alcotest.test_case "torus" `Quick test_torus_properties;
          Alcotest.test_case "random geometric connected" `Quick test_random_geometric_connected;
          Alcotest.test_case "ring with chords" `Quick test_ring_with_chords_metric;
          Alcotest.test_case "exponential line graph" `Quick test_exponential_line_graph_metric;
        ] );
      ( "hop-paths",
        [
          Alcotest.test_case "grid exact" `Quick test_hop_paths_grid_exact;
          Alcotest.test_case "monotone in stretch" `Quick test_hop_paths_monotone_in_stretch;
          Alcotest.test_case "witness range" `Quick test_hop_paths_witness_exists;
          Alcotest.test_case "N_delta small on geometric" `Quick test_n_delta_small_on_geometric;
          Alcotest.test_case "stretch validation" `Quick test_hop_paths_rejects_bad_stretch;
        ] );
      ( "properties",
        [ qt prop_dijkstra_triangle; qt prop_first_hop_progress; qt prop_flat_apsp_vs_floyd_warshall ]
      );
    ]
