(* Tests for ron_fault: the deterministic failure models, the retry/
   fallback wrapper, and the two bit-identity guarantees the experiment
   pipeline leans on — same seed => same fault schedule at every job
   count, and a null model => byte-identical to the fault-free path. *)

module Rng = Ron_util.Rng
module Pool = Ron_util.Pool
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Graph_gen = Ron_graph.Graph_gen
module Sp_metric = Ron_graph.Sp_metric
module Scheme = Ron_routing.Scheme
module Basic = Ron_routing.Basic
module Labelled = Ron_routing.Labelled
module Two_mode = Ron_routing.Two_mode
module Meridian = Ron_smallworld.Meridian
module Fault = Ron_fault.Fault

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)

let sp_fixture = lazy (Sp_metric.create (Graph_gen.grid 8 8))

let sample_pairs rng ~n ~count =
  List.init count (fun _ ->
      let u = Rng.int rng n in
      let v = Rng.int rng n in
      (u, v))
  |> List.filter (fun (u, v) -> u <> v)

(* ---------------------------------------------------------------- model *)

let test_make_deterministic () =
  let mk () =
    Fault.make ~seed:7 ~crash_fraction:0.1 ~drop_rate:0.05 ~dead_link_fraction:0.05 ~n:200 ()
  in
  let a = mk () and b = mk () in
  check_bool "crashed sets equal" (Fault.crashed_nodes a = Fault.crashed_nodes b);
  check_bool "describe equal" (Fault.describe a = Fault.describe b);
  for q = 0 to 20 do
    for hop = 0 to 20 do
      check_bool "drop schedule equal"
        (Fault.drops a ~query:q ~hop = Fault.drops b ~query:q ~hop)
    done
  done;
  for u = 0 to 40 do
    for v = 0 to 40 do
      check_bool "dead links equal" (Fault.link_dead a u v = Fault.link_dead b u v)
    done
  done

let test_make_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "crash_fraction 1.0 rejected"
    (bad (fun () -> Fault.make ~crash_fraction:1.0 ~n:10 ()));
  check_bool "negative drop_rate rejected" (bad (fun () -> Fault.make ~drop_rate:(-0.1) ~n:10 ()));
  check_bool "dead_link_fraction 2.0 rejected"
    (bad (fun () -> Fault.make ~dead_link_fraction:2.0 ~n:10 ()));
  check_bool "negative n rejected" (bad (fun () -> Fault.make ~n:(-1) ()))

let test_crashed_set () =
  let n = 200 in
  let f = Fault.make ~seed:3 ~crash_fraction:0.1 ~n () in
  check_int "floor(0.1 * 200) crashed" 20 (Fault.crash_count f);
  let set = Fault.crashed_nodes f in
  check_int "crashed_nodes length" 20 (Array.length set);
  Array.iter (fun v -> check_bool "listed node is crashed" (Fault.crashed f v)) set;
  let listed v = Array.exists (( = ) v) set in
  for v = 0 to n - 1 do
    check_bool "crashed iff listed" (Fault.crashed f v = listed v)
  done;
  check_bool "out of range not crashed" (not (Fault.crashed f (-1) || Fault.crashed f n))

let test_link_dead_symmetric () =
  let f = Fault.make ~seed:5 ~dead_link_fraction:0.3 ~n:60 () in
  let some_dead = ref false and some_live = ref false in
  for u = 0 to 59 do
    for v = 0 to 59 do
      let d = Fault.link_dead f u v in
      check_bool "symmetric" (d = Fault.link_dead f v u);
      if u <> v then if d then some_dead := true else some_live := true
    done
  done;
  check_bool "some links dead at 0.3" !some_dead;
  check_bool "some links live at 0.3" !some_live

let test_drop_schedule_varies () =
  let f = Fault.make ~seed:9 ~drop_rate:0.5 ~n:10 () in
  let hits = ref 0 and total = 0 + (50 * 50) in
  for q = 0 to 49 do
    for hop = 0 to 49 do
      if Fault.drops f ~query:q ~hop then incr hits
    done
  done;
  (* A fair-ish coin: both outcomes occur, and the rate is in the right
     ballpark (the draws are a hash chain, not a statistical claim). *)
  check_bool "some drops" (!hits > total / 4);
  check_bool "some passes" (!hits < 3 * total / 4)

(* -------------------------------------------------------------- wrapper *)

(* Drive the wrap closure directly with a toy step: the primary next hop is
   always a crashed node, so the packet survives iff the alternates list
   offers a live one. *)
let test_wrapper_detours_to_live_alternate () =
  let f = Fault.make ~seed:1 ~crash_fraction:0.3 ~n:10 () in
  let crashed_v = (Fault.crashed_nodes f).(0) in
  let live_v =
    let v = ref 0 in
    while Fault.crashed f !v do incr v done;
    !v
  in
  let w = Fault.wrapper f ~query:0 in
  check_bool "cycle detection off under faults" (not w.Scheme.detect_cycles);
  let step _ () = Scheme.Forward (crashed_v, ()) in
  let wrapped = w.Scheme.wrap step ~alternates:(fun _ () -> [ (crashed_v, ()); (live_v, ()) ]) in
  (match wrapped 8 () with
  | Scheme.Forward (v, ()) -> check_int "detoured to the live alternate" live_v v
  | _ -> Alcotest.fail "expected a detour Forward");
  let wrapped_dead = w.Scheme.wrap step ~alternates:(fun _ () -> [ (crashed_v, ()) ]) in
  (match wrapped_dead 8 () with
  | Scheme.Drop -> ()
  | _ -> Alcotest.fail "expected Drop when every alternate is dead")

let test_wrapper_drop_schedule_matches_simulate () =
  (* A pure line walk under a drop-only model: the simulator's outcome is
     predictable from the drop schedule alone. *)
  let f = Fault.make ~seed:2 ~drop_rate:0.4 ~n:16 () in
  let hops_to_deliver = 6 in
  List.iter
    (fun query ->
      let first_drop = ref None in
      for hop = hops_to_deliver - 1 downto 0 do
        if Fault.drops f ~query ~hop then first_drop := Some hop
      done;
      let w = Fault.wrapper f ~query in
      let step u () = if u = hops_to_deliver then Scheme.Deliver else Scheme.Forward (u + 1, ()) in
      let r =
        Scheme.simulate ~detect_cycles:w.Scheme.detect_cycles
          ~dist:(fun _ _ -> 1.0)
          ~step:(w.Scheme.wrap step ~alternates:(fun _ () -> []))
          ~header_bits:(fun () -> 0)
          ~src:0 ~header:() ~max_hops:100 ()
      in
      match !first_drop with
      | None ->
        check_bool "delivered when no coin fires" (r.Scheme.outcome = Scheme.Delivered);
        check_int "full walk" hops_to_deliver r.Scheme.hops
      | Some k ->
        check_bool "dropped when a coin fires" (r.Scheme.outcome = Scheme.Dropped);
        check_int "dropped at the scheduled hop" k r.Scheme.hops)
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* -------------------------------------------- rate 0 => byte-identical *)

let test_null_wrapper_is_identity () =
  let f = Fault.make ~seed:99 ~n:50 () in
  check_bool "all-zero rates are null" (Fault.is_null f);
  check_bool "null wrapper is THE identity wrapper"
    (Fault.wrapper f ~query:0 == Scheme.identity_wrapper);
  check_bool "none is null" (Fault.is_null Fault.none)

let test_rate_zero_identical_graph_schemes () =
  let sp = Lazy.force sp_fixture in
  let n = Ron_graph.Graph.size (Sp_metric.graph sp) in
  let null = Fault.make ~seed:4242 ~n () in
  let pairs = sample_pairs (Rng.create 21) ~n ~count:200 in
  let b = Basic.build sp ~delta:0.25 in
  let l = Labelled.build sp ~delta:0.25 in
  List.iteri
    (fun i (u, v) ->
      let w = Fault.wrapper null ~query:i in
      check_bool "basic identical"
        (Basic.route b ~src:u ~dst:v = Basic.route_wrapped w b ~src:u ~dst:v);
      check_bool "labelled identical"
        (Labelled.route l ~src:u ~dst:v = Labelled.route_wrapped w l ~src:u ~dst:v))
    pairs

let test_rate_zero_identical_two_mode () =
  let idx = Indexed.create (Generators.grid2d 6 6) in
  let tm = Two_mode.build idx ~delta:0.125 in
  let n = Indexed.size idx in
  let pairs = sample_pairs (Rng.create 22) ~n ~count:100 in
  let null = Fault.make ~seed:7 ~n () in
  List.iteri
    (fun i (u, v) ->
      let w = Fault.wrapper null ~query:i in
      check_bool "two-mode identical"
        (Two_mode.route tm ~src:u ~dst:v = Two_mode.route_wrapped w tm ~src:u ~dst:v))
    pairs

let test_rate_zero_identical_meridian () =
  let idx = Indexed.create (Generators.random_cloud (Rng.create 4) ~n:120 ~dim:2) in
  let members = Array.init 100 Fun.id in
  let t = Meridian.build idx (Rng.create 5) ~ring_size:6 ~members in
  let null = Fault.make ~seed:1 ~n:120 () in
  for target = 100 to 119 do
    let start = target mod 100 in
    check_bool "meridian identical"
      (Meridian.closest t ~start ~target
      = Meridian.closest ~fault:(null, target) t ~start ~target)
  done

(* ------------------------------------------- jobs-invariant schedules *)

let test_fault_routes_jobs_invariant () =
  (* The whole point of keying every draw by (seed, query, hop): routing a
     batch under faults must give identical results at jobs=1 and jobs=4,
     whatever the evaluation order. *)
  let sp = Lazy.force sp_fixture in
  let n = Ron_graph.Graph.size (Sp_metric.graph sp) in
  let b = Basic.build sp ~delta:0.25 in
  let f =
    Fault.make ~seed:4242 ~crash_fraction:0.1 ~drop_rate:0.02 ~dead_link_fraction:0.02 ~n ()
  in
  let pairs =
    sample_pairs (Rng.create 31) ~n ~count:300
    |> List.filter (fun (u, v) -> not (Fault.crashed f u || Fault.crashed f v))
    |> Array.of_list
  in
  let run ~jobs =
    Pool.init ~jobs (Array.length pairs) (fun i ->
        let (u, v) = pairs.(i) in
        Basic.route_wrapped (Fault.wrapper f ~query:i) b ~src:u ~dst:v)
  in
  let r1 = run ~jobs:1 and r4 = run ~jobs:4 in
  check_bool "jobs=1 equals jobs=4" (r1 = r4);
  check_bool "rerun equals first run" (run ~jobs:4 = r4);
  (* The sweep actually exercised the fault machinery. *)
  check_bool "some packets dropped"
    (Array.exists (fun r -> r.Scheme.outcome = Scheme.Dropped) r1);
  let d = Array.fold_left (fun a r -> if r.Scheme.delivered then a + 1 else a) 0 r1 in
  check_bool
    (Printf.sprintf "most packets still delivered (%d/%d)" d (Array.length pairs))
    (2 * d > Array.length pairs)

let () =
  Alcotest.run "ron_fault"
    [
      ( "model",
        [
          Alcotest.test_case "make is deterministic" `Quick test_make_deterministic;
          Alcotest.test_case "make validates rates" `Quick test_make_validation;
          Alcotest.test_case "crashed set" `Quick test_crashed_set;
          Alcotest.test_case "dead links symmetric" `Quick test_link_dead_symmetric;
          Alcotest.test_case "drop schedule varies" `Quick test_drop_schedule_varies;
        ] );
      ( "wrapper",
        [
          Alcotest.test_case "detours to live alternate" `Quick
            test_wrapper_detours_to_live_alternate;
          Alcotest.test_case "drop schedule drives simulate" `Quick
            test_wrapper_drop_schedule_matches_simulate;
        ] );
      ( "rate zero",
        [
          Alcotest.test_case "null wrapper is identity" `Quick test_null_wrapper_is_identity;
          Alcotest.test_case "graph schemes byte-identical" `Quick
            test_rate_zero_identical_graph_schemes;
          Alcotest.test_case "two-mode byte-identical" `Quick test_rate_zero_identical_two_mode;
          Alcotest.test_case "meridian byte-identical" `Quick test_rate_zero_identical_meridian;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fault routes jobs-invariant" `Quick
            test_fault_routes_jobs_invariant;
        ] );
    ]
