(* Tests for the ron_serve library: frozen snapshots must route
   byte-identically to the live schemes they were frozen from, survive a
   save/load round-trip unchanged at every job count, and reject corrupted
   images. *)

module Server = Ron_serve.Server
module Loop = Ron_serve.Loop
module Fixture = Ron_serve.Fixture
module Image = Ron_serve.Image
module Scheme = Ron_routing.Scheme

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let outcome_code = function
  | Scheme.Delivered -> 0
  | Scheme.Truncated -> 1
  | Scheme.Self_forward -> 2
  | Scheme.Cycled -> 3
  | Scheme.Dropped -> 4

(* One small workload per scheme; labelled is per-query expensive, so its
   instance and workload stay tiny. *)
let case scheme = if scheme = "labelled" then (scheme, 49, 60) else (scheme, 100, 300)

let workload_for t ~queries =
  Loop.prepare t ~seed:11 ~queries ~zipf_s:1.1 ~route_frac:0.6 ~dist_frac:0.3

(* ------------------------------------------- frozen vs live, per query *)

(* The reference result for query [i], computed through the live scheme's
   own public API. Labelled/two_mode dist queries have no public live
   estimator; those are covered by the round-trip and jobs invariance
   checks instead. *)
let check_against_live live t work res i =
  let kind = Loop.kind_of work i and src = Loop.src_of work i and dst = Loop.dst_of work i in
  let tag = Printf.sprintf "%s q%d (%d->%d)" (Server.scheme_name t) i src dst in
  let module A1 = Bigarray.Array1 in
  let route_matches (r : Scheme.result) =
    check_int (tag ^ " outcome") (outcome_code r.Scheme.outcome) (A1.get res.Loop.ra i);
    check_int (tag ^ " hops") r.Scheme.hops (A1.get res.Loop.rb i);
    check_bool (tag ^ " length") (Float.equal r.Scheme.length (A1.get res.Loop.rx i));
    check_int (tag ^ " header bits") r.Scheme.max_header_bits
      (int_of_float (A1.get res.Loop.ry i))
  in
  match (live, kind) with
  | (Fixture.L_basic s, 0) -> route_matches (Ron_routing.Basic.route s ~src ~dst)
  | (Fixture.L_labelled s, 0) -> route_matches (Ron_routing.Labelled.route s ~src ~dst)
  | (Fixture.L_two_mode s, 0) -> route_matches (Ron_routing.Two_mode.route s ~src ~dst)
  | (Fixture.L_meridian s, 2) ->
    let r = Ron_smallworld.Meridian.closest s ~start:src ~target:dst in
    check_int (tag ^ " found") r.Ron_smallworld.Meridian.found (A1.get res.Loop.ra i);
    check_int (tag ^ " hops") r.Ron_smallworld.Meridian.hops (A1.get res.Loop.rb i);
    check_int (tag ^ " measurements") r.Ron_smallworld.Meridian.measurements
      (int_of_float (A1.get res.Loop.rx i))
  | (Fixture.L_landmark s, 1) ->
    let (lo, hi) = Ron_labeling.Landmark.estimate s src dst in
    check_bool (tag ^ " lo") (Float.equal lo (A1.get res.Loop.rx i));
    check_bool (tag ^ " hi") (Float.equal hi (A1.get res.Loop.ry i))
  | ((Fixture.L_labelled _ | Fixture.L_two_mode _), 1) -> ()
  | _ -> Alcotest.failf "%s: unexpected effective kind %d" tag kind

let test_matches_live scheme () =
  let (scheme, n, queries) = case scheme in
  let live = Fixture.build_live ~scheme ~n ~seed:5 in
  let t = Fixture.freeze live in
  let work = workload_for t ~queries in
  let res = Loop.results_create queries in
  Loop.run ~jobs:1 t work res;
  for i = 0 to queries - 1 do
    check_against_live live t work res i
  done

(* --------------------------------------- round-trip and jobs invariance *)

let test_roundtrip scheme () =
  let (scheme, n, queries) = case scheme in
  let t = Fixture.build ~scheme ~n ~seed:5 in
  let work = workload_for t ~queries in
  let res = Loop.results_create queries in
  Loop.run ~jobs:1 t work res;
  let reference = Loop.digest res in
  Loop.run ~jobs:4 t work res;
  check_int (scheme ^ " jobs=4 digest") reference (Loop.digest res);
  let file = Filename.temp_file "ron_serve_test" ".snap" in
  Server.save t file;
  let loaded =
    match Server.load file with
    | Ok t -> t
    | Error e -> Alcotest.failf "%s: load failed: %s" scheme e
  in
  Sys.remove file;
  check_int (scheme ^ " loaded tag") (Server.scheme_tag t) (Server.scheme_tag loaded);
  check_int (scheme ^ " loaded size") (Server.size t) (Server.size loaded);
  Loop.run ~jobs:1 loaded work res;
  check_int (scheme ^ " loaded jobs=1 digest") reference (Loop.digest res);
  Loop.run ~jobs:4 loaded work res;
  check_int (scheme ^ " loaded jobs=4 digest") reference (Loop.digest res)

(* ------------------------------------------------- corruption rejection *)

let test_corrupt_rejected () =
  let t = Fixture.build ~scheme:"meridian" ~n:60 ~seed:5 in
  let file = Filename.temp_file "ron_serve_test" ".snap" in
  Server.save t file;
  (* Flip one byte in the last section's payload: the per-section FNV
     checksum must catch it. *)
  let fd = Unix.openfile file [ Unix.O_RDWR ] 0 in
  let size = (Unix.fstat fd).Unix.st_size in
  ignore (Unix.lseek fd (size - 5) Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
  ignore (Unix.lseek fd (size - 5) Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  (match Server.load file with
  | Ok _ -> Alcotest.fail "corrupted snapshot accepted"
  | Error e -> check_bool "mentions checksum" (contains e "checksum"));
  Sys.remove file

let test_truncated_rejected () =
  let t = Fixture.build ~scheme:"landmark" ~n:49 ~seed:5 in
  let file = Filename.temp_file "ron_serve_test" ".snap" in
  Server.save t file;
  let size = (Unix.stat file).Unix.st_size in
  let fd = Unix.openfile file [ Unix.O_RDWR ] 0 in
  Unix.ftruncate fd (size / 2);
  Unix.close fd;
  (match Server.load file with
  | Ok _ -> Alcotest.fail "truncated snapshot accepted"
  | Error _ -> ());
  Sys.remove file

(* ------------------------------------------------------------ GC audit *)

let test_zero_alloc scheme () =
  let (scheme, n, queries) = case scheme in
  let t = Fixture.build ~scheme ~n ~seed:5 in
  let work = workload_for t ~queries in
  let res = Loop.results_create queries in
  let words = Loop.minor_words_per_query t work res in
  check_bool
    (Printf.sprintf "%s steady-state allocation ~ 0 (got %.3f words/query)" scheme words)
    (words <= 8.0)

(* ------------------------------------- observed serving: jobs invariance *)

module Flight = Ron_obs.Flight
module Slo = Ron_obs.Slo

(* Under the logical clock the per-query cost is a pure function of the
   result, so the flight dump and the SLO verdict must be byte-identical
   at every job count — and recording must not perturb the result columns
   themselves. *)
let test_observed_invariant scheme () =
  let (scheme, n, queries) = case scheme in
  let t = Fixture.build ~scheme ~n ~seed:5 in
  let work = workload_for t ~queries in
  let res = Loop.results_create queries in
  let observed jobs =
    let fr = Flight.create ~window:32 ~per_window:4 ~retain:4 ~trace_every:4 () in
    let objs =
      match Slo.parse "p95<=65536,delivery>=0.5" with
      | Ok o -> o
      | Error e -> Alcotest.fail e
    in
    let s = Slo.create ~window:(max 1 (queries / 5)) ~name:("slo.test." ^ scheme) objs in
    Loop.run_observed ~jobs ~flight:fr ~slo:s t work res;
    ( Ron_obs.Json.to_string (Flight.to_json fr),
      Ron_obs.Json.to_string (Slo.to_json ~flight:(Flight.to_json fr) s) )
  in
  let (f1, v1) = observed 1 in
  let d_obs = Loop.digest res in
  let (f4, v4) = observed 4 in
  Alcotest.(check string) (scheme ^ " flight dump jobs-invariant") f1 f4;
  Alcotest.(check string) (scheme ^ " slo verdict jobs-invariant") v1 v4;
  Loop.run ~jobs:1 t work res;
  check_int (scheme ^ " observed digest matches plain run") (Loop.digest res) d_obs

let () =
  let per_scheme mk = List.map (fun s -> mk s) Fixture.names in
  Alcotest.run "ron_serve"
    [
      ("frozen matches live",
       per_scheme (fun s -> Alcotest.test_case s `Quick (test_matches_live s)));
      ("snapshot round-trip",
       per_scheme (fun s -> Alcotest.test_case s `Quick (test_roundtrip s)));
      ("corruption",
       [
         Alcotest.test_case "checksum flip rejected" `Quick test_corrupt_rejected;
         Alcotest.test_case "truncation rejected" `Quick test_truncated_rejected;
       ]);
      ("zero allocation",
       per_scheme (fun s -> Alcotest.test_case s `Quick (test_zero_alloc s)));
      ("observed serving",
       per_scheme (fun s -> Alcotest.test_case s `Quick (test_observed_invariant s)));
    ]
