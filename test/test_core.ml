(* Tests for ron_core: rings of neighbors, enumerations, translation
   functions, zooming sequences. *)

module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
module Enumeration = Ron_core.Enumeration
module Translation = Ron_core.Translation
module Rings = Ron_core.Rings
module Zooming = Ron_core.Zooming

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)

let grid = lazy (Indexed.create (Generators.grid2d 8 8))
let hier = lazy (Net.Hierarchy.create (Lazy.force grid))

(* ---------------------------------------------------------- Enumeration *)

let test_enum_roundtrip () =
  let e = Enumeration.of_array [| 10; 3; 7 |] in
  check_int "size" 3 (Enumeration.size e);
  check_int "node 0" 10 (Enumeration.node e 0);
  check_int "index of 7" 2 (Enumeration.index_exn e 7);
  check_bool "mem" (Enumeration.mem e 3);
  check_bool "not mem" (not (Enumeration.mem e 4));
  check_bool "missing index" (Enumeration.index e 99 = None)

let test_enum_duplicates_rejected () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Enumeration.of_array: duplicate node")
    (fun () -> ignore (Enumeration.of_array [| 1; 2; 1 |]))

let test_enum_with_prefix () =
  let prefix = Enumeration.of_array [| 5; 6 |] in
  let e = Enumeration.with_prefix ~prefix [| 6; 9; 5; 2 |] in
  check_int "prefix first" 5 (Enumeration.node e 0);
  check_int "prefix second" 6 (Enumeration.node e 1);
  check_int "fresh after prefix" 9 (Enumeration.node e 2);
  check_int "size deduplicated" 4 (Enumeration.size e)

let test_enum_index_bits () =
  check_int "1 entry still costs a bit" 1 (Enumeration.index_bits (Enumeration.of_array [| 4 |]));
  check_int "5 entries" 3 (Enumeration.index_bits (Enumeration.of_array [| 0; 1; 2; 3; 4 |]))

(* ---------------------------------------------------------- Translation *)

let test_translation_basic () =
  let t = Translation.create () in
  Translation.add t ~x:1 ~y:2 ~z:3;
  Translation.add t ~x:1 ~y:4 ~z:5;
  check_bool "find hit" (Translation.find t ~x:1 ~y:2 = Some 3);
  check_bool "find miss" (Translation.find t ~x:9 ~y:9 = None);
  check_int "entry count" 2 (Translation.entry_count t);
  check_int "entries_with_x" 2 (List.length (Translation.entries_with_x t ~x:1));
  check_int "entries_with_x miss" 0 (List.length (Translation.entries_with_x t ~x:2))

let test_translation_conflict () =
  let t = Translation.create () in
  Translation.add t ~x:0 ~y:0 ~z:1;
  (* Same binding is idempotent. *)
  Translation.add t ~x:0 ~y:0 ~z:1;
  check_int "idempotent" 1 (Translation.entry_count t);
  Alcotest.check_raises "conflict" (Invalid_argument "Translation.add: conflicting entry")
    (fun () -> Translation.add t ~x:0 ~y:0 ~z:2)

let test_translation_bits () =
  let t = Translation.create () in
  Translation.add t ~x:0 ~y:1 ~z:2;
  Translation.add t ~x:3 ~y:4 ~z:5;
  check_int "sparse bits" (2 * (3 + 4 + 5)) (Translation.bits_sparse t ~x_bits:3 ~y_bits:4 ~z_bits:5);
  check_int "dense bits" (7 * 11 * 5) (Translation.bits_dense ~x_card:7 ~y_card:11 ~z_bits:5)

(* ---------------------------------------------------------------- Rings *)

let test_net_rings_thm21_shape () =
  (* The Theorem 2.1 rings: G_j is a Delta/2^j-net, r_j = 4 Delta/(delta 2^j). *)
  let idx = Lazy.force grid and h = Lazy.force hier in
  let delta = 0.25 in
  let big_l = Indexed.log2_aspect_ratio idx in
  let aspect = Indexed.diameter idx in
  let rings =
    Rings.net_rings idx h ~scales:(big_l + 1)
      ~radius_of:(fun j -> 4.0 *. aspect /. (delta *. Float.of_int (1 lsl j)))
      ~level_of:(fun j -> big_l - j)
  in
  check_bool "containment" (Rings.check_containment idx rings);
  (* Ring 0 contains the single top net point for every node. *)
  for u = 0 to Indexed.size idx - 1 do
    let r0 = Rings.ring rings u 0 in
    check_bool "ring 0 nonempty" (Array.length r0.Rings.members >= 1)
  done;
  (* Every node has itself in the last ring (level 0 net = all nodes,
     radius >= 4/delta > 0). *)
  for u = 0 to Indexed.size idx - 1 do
    let last = Rings.ring rings u big_l in
    check_bool "self in last ring" (Array.exists (( = ) u) last.Rings.members)
  done

let test_net_rings_bounded_cardinality () =
  (* Lemma 1.4: |B_u(r_j) ∩ G_j| <= (4 r_j / 2^level)^alpha. With
     r_j = 4 Delta/(delta 2^j) and net radius Delta/2^j the bound is
     (16/delta)^alpha. Check a concrete cap for the grid (alpha <= 3). *)
  let idx = Lazy.force grid and h = Lazy.force hier in
  let delta = 0.5 in
  let big_l = Indexed.log2_aspect_ratio idx in
  let aspect = Indexed.diameter idx in
  let rings =
    Rings.net_rings idx h ~scales:(big_l + 1)
      ~radius_of:(fun j -> 4.0 *. aspect /. (delta *. Float.of_int (1 lsl j)))
      ~level_of:(fun j -> big_l - j)
  in
  let cap = int_of_float ((16.0 /. delta) ** 3.0) in
  check_bool "K bounded by (16/delta)^alpha" (Rings.max_ring_size rings <= cap)

let test_uniform_rings () =
  let idx = Lazy.force grid in
  let rng = Rng.create 5 in
  let scales = Indexed.log2_size idx + 1 in
  let rings = Rings.uniform_rings idx rng ~scales ~samples:8 in
  check_bool "containment" (Rings.check_containment idx rings);
  for u = 0 to Indexed.size idx - 1 do
    check_int "all rings present" scales (Rings.scales rings u);
    (* Deepest ring samples from the singleton ball: only u itself. *)
    let deep = Rings.ring rings u (scales - 1) in
    check_bool "deep ring is self" (Array.for_all (( = ) u) deep.Rings.members)
  done

let test_uniform_rings_shift_clamp () =
  (* The per-scale population target is n / 2^i; rings.ml clamps the shift
     at i >= 62 so deep scales don't overflow into a negative (or zero)
     divisor. Every scale past log2 n already targets a count of 1, clamped
     scales included: the ball is the singleton {u}. *)
  let idx = Lazy.force grid in
  let n = Indexed.size idx in
  List.iter
    (fun scales ->
      let rng = Rng.create 11 in
      let rings = Rings.uniform_rings idx rng ~scales ~samples:4 in
      check_bool "containment" (Rings.check_containment idx rings);
      for u = 0 to n - 1 do
        check_int "all scales present" scales (Rings.scales rings u);
        let deepest = Rings.ring rings u (scales - 1) in
        for i = Indexed.log2_size idx + 1 to scales - 1 do
          let r = Rings.ring rings u i in
          check_bool "singleton ball past log2 n" (Array.for_all (( = ) u) r.Rings.members);
          check_bool "radius equals deepest ring's" (r.Rings.radius = deepest.Rings.radius)
        done
      done)
    [ 61; 62; 63 ]

let prop_uniform_ring_radii_monotone =
  (* Ball populations shrink as the scale deepens, so ring radii must be
     monotone non-increasing in the scale index — including across the
     i >= 62 shift clamp. *)
  QCheck.Test.make ~name:"uniform ring radii monotone non-increasing in scale" ~count:25
    QCheck.(pair (int_range 2 70) (int_range 0 10_000))
    (fun (scales, seed) ->
      let idx = Lazy.force grid in
      let rings = Rings.uniform_rings idx (Rng.create seed) ~scales ~samples:2 in
      let ok = ref true in
      for u = 0 to Indexed.size idx - 1 do
        for i = 1 to scales - 1 do
          if (Rings.ring rings u i).Rings.radius > (Rings.ring rings u (i - 1)).Rings.radius
          then ok := false
        done
      done;
      !ok)

let test_measure_rings () =
  let idx = Lazy.force grid in
  let h = Lazy.force hier in
  let mu = Measure.create idx h in
  let rng = Rng.create 6 in
  let scales = Net.Hierarchy.jmax h + 1 in
  let rings =
    Rings.measure_rings idx mu rng ~scales ~samples:8 ~radius_of:(fun j ->
        Float.of_int (1 lsl j))
  in
  check_bool "containment" (Rings.check_containment idx rings);
  (* Scale-0 balls have radius 1: members at distance <= 1. *)
  let r0 = Rings.ring rings 0 0 in
  Array.iter (fun v -> check_bool "close" (Indexed.dist idx 0 v <= 1.0)) r0.Rings.members

let test_rings_accounting () =
  let idx = Lazy.force grid in
  let rng = Rng.create 9 in
  let rings = Rings.uniform_rings idx rng ~scales:3 ~samples:4 in
  check_int "sizes" 64 (Rings.size rings);
  check_bool "out degree positive" (Rings.out_degree rings 0 >= 1);
  check_bool "max out degree sane" (Rings.max_out_degree rings <= 12);
  check_bool "max ring size" (Rings.max_ring_size rings = 4)

let test_rings_neighbors_canonical () =
  (* [neighbors] is the canonical adjacency view: sorted ascending, no
     duplicates, exactly the union of the ring members. Parallel builders
     and serialized outputs rely on this order being deterministic. *)
  let idx = Lazy.force grid in
  let rng = Rng.create 13 in
  let rings = Rings.uniform_rings idx rng ~scales:4 ~samples:6 in
  for u = 0 to Rings.size rings - 1 do
    let nbrs = Rings.neighbors rings u in
    for i = 1 to Array.length nbrs - 1 do
      check_bool "sorted strictly ascending" (nbrs.(i - 1) < nbrs.(i))
    done;
    let union =
      Array.fold_left
        (fun acc r -> Array.fold_left (fun acc v -> v :: acc) acc r.Rings.members)
        [] (Rings.rings_of rings u)
    in
    let expect = List.sort_uniq Int.compare union in
    check_bool "equals sorted union of ring members" (Array.to_list nbrs = expect)
  done

(* -------------------------------------------------------------- Zooming *)

let test_zooming_encode_decode () =
  (* Toy setup: three "nodes" 100, 200, 300 where the enumeration of each
     element assigns the next element index 7, and u's translation tables
     map everything through. *)
  let sequence = [| 100; 200; 300 |] in
  let enum_of_prev _j next = Some (next / 100) in
  let enc = Zooming.encode ~sequence ~enum_of_prev ~first_index:0 in
  check_int "first" 0 enc.Zooming.first;
  check_bool "rest" (enc.Zooming.rest = [| 2; 3 |]);
  (* Translation: m_{j+1} = m_j * 10 + y. *)
  let translate _j ~x ~y = Some ((x * 10) + y) in
  let m = Zooming.decode_walk ~translate enc in
  check_bool "walk" (m = [| 0; 2; 23 |])

let test_zooming_walk_stops_at_null () =
  let enc = { Zooming.first = 1; rest = [| 5; 6; 7 |] } in
  let translate j ~x ~y = if j < 2 then Some (x + y) else None in
  let m = Zooming.decode_walk ~translate enc in
  check_bool "stops at null" (m = [| 1; 6; 12 |])

let test_zooming_encode_rejects_gap () =
  Alcotest.check_raises "gap"
    (Invalid_argument
       "Zooming.encode: element 1 not enumerable at its predecessor (Claim 2.3/3.5 violated)")
    (fun () ->
      ignore
        (Zooming.encode ~sequence:[| 1; 2 |] ~enum_of_prev:(fun _ _ -> None) ~first_index:0))

let test_zooming_bits () =
  let enc = { Zooming.first = 0; rest = [| 1; 2; 3 |] } in
  check_int "bits" 20 (Zooming.bits enc ~index_bits:5)

(* Integration: encode a real zooming sequence on the grid using the
   hierarchy, mimicking Theorem 2.1 (f_tj = nearest net point of G_(L-j)),
   and decode it from the rings through real translation tables. *)
let test_zooming_on_grid_via_rings () =
  let idx = Lazy.force grid and h = Lazy.force hier in
  let delta = 0.25 in
  let big_l = Indexed.log2_aspect_ratio idx in
  let aspect = Indexed.diameter idx in
  let level_of j = big_l - j in
  let radius_of j = 4.0 *. aspect /. (delta *. Float.of_int (1 lsl j)) in
  let rings = Rings.net_rings idx h ~scales:(big_l + 1) ~radius_of ~level_of in
  let enum u j = Enumeration.of_array (Rings.ring rings u j).Rings.members in
  let t = 37 in
  let f = Array.init (big_l + 1) (fun j -> fst (Net.Hierarchy.nearest h (level_of j) t)) in
  (* Claim 2.3 instance: f_(t,j+1) is in ring j+1 of f_tj. *)
  let enum_of_prev j next = Enumeration.index (enum f.(j) (j + 1)) next in
  let first_index = Enumeration.index_exn (enum t 0) f.(0) in
  let enc = Zooming.encode ~sequence:f ~enum_of_prev ~first_index in
  (* Decode at a far-away node u: build u's translation tables on the fly. *)
  let u = 0 in
  let translate j ~x ~y =
    let fu = Enumeration.node (enum u j) x in
    let w_opt =
      let e = enum fu (j + 1) in
      if y < Enumeration.size e then Some (Enumeration.node e y) else None
    in
    match w_opt with
    | None -> None
    | Some w -> Enumeration.index (enum u (j + 1)) w
  in
  (* Ring 0 is the same set for every node, but enumeration order may differ;
     align the first index to u's enumeration (canonical share). *)
  let enc = { enc with Zooming.first = Enumeration.index_exn (enum u 0) f.(0) } in
  let m = Zooming.decode_walk ~translate enc in
  (* The walk recovers a prefix of the zooming sequence in u's coordinates. *)
  check_bool "prefix nonempty" (Array.length m >= 1);
  Array.iteri
    (fun j mj ->
      check_int (Printf.sprintf "element %d recovered" j) f.(j)
        (Enumeration.node (enum u j) mj))
    m

let () =
  Alcotest.run "ron_core"
    [
      ( "enumeration",
        [
          Alcotest.test_case "roundtrip" `Quick test_enum_roundtrip;
          Alcotest.test_case "duplicates rejected" `Quick test_enum_duplicates_rejected;
          Alcotest.test_case "with prefix" `Quick test_enum_with_prefix;
          Alcotest.test_case "index bits" `Quick test_enum_index_bits;
        ] );
      ( "translation",
        [
          Alcotest.test_case "basic" `Quick test_translation_basic;
          Alcotest.test_case "conflicts" `Quick test_translation_conflict;
          Alcotest.test_case "bit accounting" `Quick test_translation_bits;
        ] );
      ( "rings",
        [
          Alcotest.test_case "thm 2.1 shape" `Quick test_net_rings_thm21_shape;
          Alcotest.test_case "bounded cardinality" `Quick test_net_rings_bounded_cardinality;
          Alcotest.test_case "uniform rings" `Quick test_uniform_rings;
          Alcotest.test_case "uniform rings shift clamp" `Quick test_uniform_rings_shift_clamp;
          QCheck_alcotest.to_alcotest prop_uniform_ring_radii_monotone;
          Alcotest.test_case "measure rings" `Quick test_measure_rings;
          Alcotest.test_case "accounting" `Quick test_rings_accounting;
          Alcotest.test_case "neighbors canonical order" `Quick test_rings_neighbors_canonical;
        ] );
      ( "zooming",
        [
          Alcotest.test_case "encode/decode" `Quick test_zooming_encode_decode;
          Alcotest.test_case "stops at null" `Quick test_zooming_walk_stops_at_null;
          Alcotest.test_case "encode rejects gaps" `Quick test_zooming_encode_rejects_gap;
          Alcotest.test_case "bit cost" `Quick test_zooming_bits;
          Alcotest.test_case "grid integration" `Quick test_zooming_on_grid_via_rings;
        ] );
    ]
