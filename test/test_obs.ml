(* Tests for ron_obs: JSON round-trips, trace sinks, shard-merge
   determinism across domain counts, and the ledger agreeing with the
   routing simulator. *)

module Json = Ron_obs.Json
module Counter = Ron_obs.Counter
module Gauge = Ron_obs.Gauge
module Histogram = Ron_obs.Histogram
module Bucketed = Ron_obs.Histogram.Bucketed
module Telemetry = Ron_obs.Telemetry
module Ledger = Ron_obs.Ledger
module Trace = Ron_obs.Trace
module Trace_read = Ron_obs.Trace_read
module Probe = Ron_obs.Probe
module Profile = Ron_obs.Profile
module Scheme = Ron_routing.Scheme

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Every test runs in one process and the obs state is global, so each test
   starts from a clean slate. *)
let fresh () =
  Ron_obs.disable ();
  Ron_obs.reset ();
  Profile.disable ();
  Profile.reset ();
  Telemetry.stop ()

(* ------------------------------------------------------------------ JSON *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("int", Json.Int 42);
        ("neg", Json.Int (-7));
        ("float", Json.Float 1.5);
        ("string", Json.String "line\nbreak \"quoted\" back\\slash \t tab");
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  (match Json.of_string (Json.to_line v) with
  | Ok v' -> check_bool "compact round-trip" (v = v')
  | Error e -> Alcotest.failf "compact parse failed: %s" e);
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> check_bool "pretty round-trip" (v = v')
  | Error e -> Alcotest.failf "pretty parse failed: %s" e)

let test_json_escaping () =
  (* Keys and values with every escape class survive a round-trip — the
     bug class the bench emitter had (unescaped keys) stays fixed. *)
  let nasty = "a\"b\\c\nd\re\tf\bg\012h\001i" in
  let v = Json.Obj [ (nasty, Json.String nasty) ] in
  match Json.of_string (Json.to_line v) with
  | Ok v' -> check_bool "nasty key/value round-trip" (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_nonfinite () =
  check_string "nan is null" "null" (Json.to_line (Json.Float nan));
  check_string "inf is null" "null" (Json.to_line (Json.Float infinity))

let test_json_rejects_garbage () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "{\"a\":1,}";
  bad "[1 2]";
  bad "{\"a\":1} trailing"

(* ----------------------------------------------------------------- trace *)

let test_noop_sink_emits_nothing () =
  fresh ();
  (* Inactive tracing: events vanish and cost nothing observable. *)
  check_bool "inactive" (not (Trace.active ()));
  Trace.event "ignored";
  let sink, lines = Trace.memory_sink () in
  Trace.configure ~clock:Trace.logical_clock sink;
  Trace.stop ();
  Trace.event "after-stop" ~args:[ ("x", Json.Int 1) ];
  check_int "nothing written" 0 (List.length (lines ()))

let test_memory_sink_captures_events () =
  fresh ();
  let sink, lines = Trace.memory_sink () in
  Trace.configure ~clock:Trace.logical_clock sink;
  Trace.event "one";
  Trace.span "outer" (fun () -> Trace.event "two" ~args:[ ("k", Json.String "v") ]);
  Trace.stop ();
  let parsed =
    List.map
      (fun line ->
        match Json.of_string line with
        | Ok j -> j
        | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e)
      (lines ())
  in
  check_int "B + E + 2 instants" 4 (List.length parsed);
  List.iter
    (fun j ->
      check_bool "has ts" (Json.member "ts" j <> None);
      check_bool "has name" (Json.member "name" j <> None))
    parsed;
  let phases =
    List.map
      (fun j -> match Json.member "ph" j with Some (Json.String p) -> p | _ -> "?")
      parsed
  in
  Alcotest.(check (list string)) "phases in order" [ "i"; "B"; "i"; "E" ] phases

let test_stop_resets_clock () =
  fresh ();
  (* A stale injected wall clock must not leak into the next configure:
     stop() restores the logical tick along with the null sink. *)
  let sink1, _ = Trace.memory_sink () in
  Trace.configure ~clock:(fun () -> 999_999_999L) sink1;
  Trace.stop ();
  let sink2, lines = Trace.memory_sink () in
  Trace.configure sink2;
  Trace.event "tick";
  Trace.stop ();
  match lines () with
  | [ line ] -> (
    match Json.of_string line with
    | Ok j -> (
      match Json.member "ts" j with
      | Some (Json.Int ts) ->
        check_bool "ts is a logical tick, not the stale injected clock" (ts < 999_999_999)
      | _ -> Alcotest.fail "event has no integer ts")
    | Error e -> Alcotest.failf "bad JSONL line: %s" e)
  | l -> Alcotest.failf "expected 1 line, got %d" (List.length l)

let test_span_unwind_emits_error () =
  fresh ();
  let sink, lines = Trace.memory_sink () in
  Trace.configure ~clock:Trace.logical_clock sink;
  (try Trace.span "boom" (fun () -> failwith "kaput") with Failure _ -> ());
  Trace.stop ();
  let events =
    match Trace_read.parse_lines (lines ()) with
    | Ok evs -> evs
    | Error e -> Alcotest.failf "parse: %s" e
  in
  check_int "B then E" 2 (List.length events);
  (match List.rev events with
  | last :: _ -> (
    check_bool "unwind event is E" (last.Trace_read.ph = Trace_read.E);
    match List.assoc_opt "error" last.Trace_read.args with
    | Some (Json.String msg) ->
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
        go 0
      in
      check_bool "error carries the exception" (contains msg "kaput")
    | _ -> Alcotest.fail "E event lacks a string error arg")
  | [] -> Alcotest.fail "no events");
  match Trace_read.validate events with
  | Ok n -> check_int "validator accepts the unwind shape" 2 n
  | Error e -> Alcotest.failf "validator rejected span unwind: %s" e

let test_trace_read_parse_line () =
  let bad s =
    match Trace_read.parse_line s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "{}";
  bad "{\"ts\":1,\"dom\":0,\"name\":\"x\"}";
  bad "{\"ts\":\"1\",\"dom\":0,\"ph\":\"B\",\"name\":\"x\"}";
  bad "{\"ts\":1,\"dom\":0,\"ph\":\"Q\",\"name\":\"x\"}";
  bad "{\"ts\":1,\"dom\":0,\"ph\":\"B\",\"name\":7}";
  bad "{\"ts\":1,\"dom\":0,\"ph\":\"B\",\"name\":\"x\",\"args\":3}";
  match Trace_read.parse_line "{\"ts\":1,\"dom\":2,\"ph\":\"i\",\"name\":\"x\",\"args\":{\"k\":1}}" with
  | Ok e ->
    check_int "ts" 1 e.Trace_read.ts;
    check_int "dom" 2 e.Trace_read.dom;
    check_bool "ph" (e.Trace_read.ph = Trace_read.I);
    check_bool "args" (e.Trace_read.args = [ ("k", Json.Int 1) ])
  | Error e -> Alcotest.failf "rejected a valid line: %s" e

let test_validator_structural_rules () =
  let ev ts dom ph name args = { Trace_read.ts; dom; ph; name; args } in
  let reject what evs =
    match Trace_read.validate evs with
    | Ok _ -> Alcotest.failf "validator accepted %s" what
    | Error _ -> ()
  in
  reject "an unclosed span" [ ev 0 0 Trace_read.B "a" [] ];
  reject "E without B" [ ev 0 0 Trace_read.E "a" [] ];
  reject "a mismatched close"
    [ ev 0 0 Trace_read.B "a" []; ev 1 0 Trace_read.E "b" [] ];
  reject "an error arg on B"
    [ ev 0 0 Trace_read.B "a" [ ("error", Json.String "x") ]; ev 1 0 Trace_read.E "a" [] ];
  reject "an error arg on i" [ ev 0 0 Trace_read.I "a" [ ("error", Json.String "x") ] ];
  reject "a non-string error arg"
    [ ev 0 0 Trace_read.B "a" []; ev 1 0 Trace_read.E "a" [ ("error", Json.Int 3) ] ];
  (* Domains balance independently: interleaved B/E across two domains. *)
  match
    Trace_read.validate
      [
        ev 0 0 Trace_read.B "a" [];
        ev 1 1 Trace_read.B "a" [];
        ev 2 0 Trace_read.E "a" [];
        ev 3 1 Trace_read.E "a" [];
      ]
  with
  | Ok n -> check_int "interleaved domains validate" 4 n
  | Error e -> Alcotest.failf "rejected a valid stream: %s" e

(* ---------------------------------------------- shard-merge determinism *)

let workload ~jobs =
  fresh ();
  Ron_obs.enable ();
  let c = Counter.make "test.det.counter" in
  let h = Histogram.make "test.det.hist" in
  Ron_util.Pool.parallel_for ~jobs 500 (fun i ->
      Counter.add c (i mod 7);
      Histogram.observe h (float_of_int (i mod 13) /. 4.0));
  (* Per-query ledger entries with deterministic ids, filled in parallel. *)
  ignore
    (Ron_util.Pool.init ~jobs 64 (fun i ->
         Ledger.with_query ~kind:"det" ~id:i (fun () ->
             for _ = 1 to (i mod 5) + 1 do
               Probe.dist_eval ()
             done)));
  let s = Json.to_string (Ron_obs.snapshot ()) in
  Ron_obs.disable ();
  s

let test_snapshot_deterministic_across_jobs () =
  let s1 = workload ~jobs:1 in
  let s4 = workload ~jobs:4 in
  check_string "RON_JOBS=1 and =4 snapshots byte-identical" s1 s4

(* ------------------------------------------------------------ histogram *)

let test_histogram_growth_and_empty () =
  fresh ();
  let h = Histogram.make "test.hist.growth" in
  check_int "empty count" 0 (Histogram.count h);
  check_bool "empty values is [||]" (Histogram.values h = [||]);
  (* Push well past the 16-element shard seed so the buffer doubles. *)
  for i = 1 to 100 do
    Histogram.observe_int h (i mod 10)
  done;
  check_int "100 observations" 100 (Histogram.count h);
  let vs = Histogram.values h in
  check_int "values length" 100 (Array.length vs);
  let sorted = ref true in
  for i = 1 to Array.length vs - 1 do
    if vs.(i - 1) > vs.(i) then sorted := false
  done;
  check_bool "values sorted ascending" !sorted;
  Histogram.reset h;
  check_int "reset drops everything" 0 (Histogram.count h);
  check_bool "reset values is [||]" (Histogram.values h = [||])

let hist_snapshot ~jobs =
  let h = Histogram.make "test.hist.reobserve" in
  Histogram.reset h;
  Ron_util.Pool.parallel_for ~jobs 500 (fun i ->
      Histogram.observe h (float_of_int (i mod 13) /. 8.0));
  Histogram.values h

let test_histogram_reset_reobserve_across_jobs () =
  fresh ();
  (* reset + re-observe: the sorted snapshot depends only on the observed
     multiset, so jobs=1 and jobs=4 are bit-identical. *)
  let v1 = hist_snapshot ~jobs:1 in
  let v4 = hist_snapshot ~jobs:4 in
  check_int "same size" (Array.length v1) (Array.length v4);
  check_bool "sorted snapshots bit-identical at jobs 1 and 4" (v1 = v4)

(* -------------------------------------------------------------- profile *)

let test_profile_off_is_noop () =
  fresh ();
  check_bool "off by default" (not (Profile.enabled ()));
  check_int "phase returns its result" 42 (Profile.phase "nope" (fun () -> 41 + 1));
  check_int "nothing recorded" 0 (List.length (Profile.stats ()))

let test_profile_nesting_and_self_time () =
  fresh ();
  (* A +1-per-read clock makes the arithmetic exact: each phase consumes
     one tick on entry and one on exit, so  a { b {} b {} }  gives
     a: total 5 (ticks 1..6), children 2, self 3; b: count 2, total 2. *)
  let t = ref 0L in
  let clock () =
    t := Int64.add !t 1L;
    !t
  in
  Profile.enable ~clock ();
  Profile.phase "a" (fun () ->
      Profile.phase "b" (fun () -> ());
      Profile.phase "b" (fun () -> ()));
  Profile.disable ();
  match Profile.stats () with
  | [ a; ab ] ->
    check_string "root path" "a" a.Profile.path;
    check_string "nested path" "a/b" ab.Profile.path;
    check_int "a count" 1 a.Profile.count;
    check_int "b count" 2 ab.Profile.count;
    check_bool "a total = 5 ticks" (a.Profile.total_ns = 5L);
    check_bool "a self = total - children" (a.Profile.self_ns = 3L);
    check_bool "b total = 2 ticks" (ab.Profile.total_ns = 2L);
    check_bool "b self = b total" (ab.Profile.self_ns = 2L)
  | l -> Alcotest.failf "expected 2 phase rows, got %d" (List.length l)

let test_profile_exception_unwind () =
  fresh ();
  Profile.enable ();
  (try Profile.phase "outer" (fun () -> Profile.phase "inner" (fun () -> failwith "x"))
   with Failure _ -> ());
  (* The stack unwound: a later phase is a fresh root, not "outer/...". *)
  Profile.phase "after" (fun () -> ());
  Profile.disable ();
  let paths = List.map (fun (s : Profile.stat) -> s.Profile.path) (Profile.stats ()) in
  Alcotest.(check (list string))
    "both raising phases recorded and the stack unwound"
    [ "after"; "outer"; "outer/inner" ] paths

let test_profile_disable_resets_clock () =
  fresh ();
  Profile.enable ~clock:(fun () -> 1_000_000_000L) ();
  Profile.phase "w" (fun () -> ());
  Profile.disable ();
  Profile.reset ();
  (* Re-enable without a clock: must be back on logical ticks, not the
     stale constant clock (the Trace.stop leak, applied here). *)
  Profile.enable ();
  Profile.phase "w" (fun () -> ());
  Profile.disable ();
  match Profile.stats () with
  | [ s ] -> check_bool "total is one logical tick" (s.Profile.total_ns = 1L)
  | l -> Alcotest.failf "expected 1 phase row, got %d" (List.length l)

let profile_shape ~jobs =
  Profile.reset ();
  Profile.enable ();
  Profile.phase "par" (fun () ->
      Ron_util.Pool.parallel_for ~jobs 64 (fun i -> Profile.phase "work" (fun () -> ignore (Sys.opaque_identity i))));
  Profile.disable ();
  Profile.stats ()

let test_profile_merge_across_domains () =
  fresh ();
  (* Phases on pool workers land in per-domain shards; the merge must see
     all 64 of them at any job count, and report sorted by path. A phase
     on a worker is its own root, so only paths/counts are compared — not
     which domain they nested under. *)
  let work_count stats =
    List.fold_left
      (fun acc (s : Profile.stat) ->
        let p = s.Profile.path in
        let l = String.length p in
        if l >= 4 && String.sub p (l - 4) 4 = "work" then acc + s.Profile.count else acc)
      0 stats
  in
  let s1 = profile_shape ~jobs:1 in
  let s4 = profile_shape ~jobs:4 in
  check_int "64 work phases merged at jobs=1" 64 (work_count s1);
  check_int "64 work phases merged at jobs=4" 64 (work_count s4);
  let paths = List.map (fun (s : Profile.stat) -> s.Profile.path) s4 in
  check_bool "report sorted by path" (List.sort String.compare paths = paths);
  let shape st = List.map (fun (s : Profile.stat) -> (s.Profile.path, s.Profile.count)) st in
  let s4' = profile_shape ~jobs:4 in
  check_bool "jobs=4 shape reproducible run-to-run" (shape s4 = shape s4')

let test_profile_mirrors_trace_span () =
  fresh ();
  let sink, lines = Trace.memory_sink () in
  Trace.configure ~clock:Trace.logical_clock sink;
  Profile.enable ();
  Profile.phase "mirrored" (fun () -> ());
  Profile.disable ();
  Trace.stop ();
  match Trace_read.parse_lines (lines ()) with
  | Ok [ b; e ] ->
    check_bool "B span" (b.Trace_read.ph = Trace_read.B && b.Trace_read.name = "mirrored");
    check_bool "E span" (e.Trace_read.ph = Trace_read.E && e.Trace_read.name = "mirrored")
  | Ok l -> Alcotest.failf "expected B+E, got %d events" (List.length l)
  | Error e -> Alcotest.failf "parse: %s" e

(* ------------------------------------------- simulator <-> obs agreement *)

let test_simulate_hops_match_trace_and_ledger () =
  fresh ();
  let sink, lines = Trace.memory_sink () in
  Trace.configure ~clock:Trace.logical_clock sink;
  Ron_obs.enable ();
  let dist a b = Float.abs (float_of_int (a - b)) in
  let step u target = if u = target then Scheme.Deliver else Scheme.Forward (u + 1, target) in
  let (r, e) =
    Ledger.with_query ~kind:"route" ~id:0 (fun () ->
        Scheme.simulate ~dist ~step ~header_bits:(fun _ -> 3) ~src:0 ~header:4 ~max_hops:10 ())
  in
  Ron_obs.disable ();
  Trace.stop ();
  check_bool "delivered" (r.Scheme.outcome = Scheme.Delivered);
  check_int "ledger hops = result hops" r.Scheme.hops e.Ledger.hops;
  check_int "ledger header bits" r.Scheme.max_header_bits e.Ledger.header_bits_max;
  let events =
    List.filter_map
      (fun line ->
        match Json.of_string line with
        | Ok j -> Some j
        | Error e -> Alcotest.failf "bad line: %s" e)
      (lines ())
  in
  let hops =
    List.filter (fun j -> Json.member "name" j = Some (Json.String "route.hop")) events
  in
  check_int "one route.hop event per hop" r.Scheme.hops (List.length hops);
  (* The from/to chain of the hop events is exactly the result path. *)
  let edge j field =
    match Json.member "args" j with
    | Some args -> (
      match Json.member field args with
      | Some (Json.Int v) -> v
      | _ -> Alcotest.failf "missing %s" field)
    | None -> Alcotest.fail "missing args"
  in
  let traced = List.concat_map (fun j -> [ edge j "from"; edge j "to" ]) hops in
  let rec path_edges = function
    | a :: (b :: _ as rest) -> a :: b :: path_edges rest
    | _ -> []
  in
  Alcotest.(check (list int)) "hop events follow the path" (path_edges r.Scheme.path) traced;
  match List.rev events with
  | last :: _ ->
    check_bool "final event is route.done"
      (Json.member "name" last = Some (Json.String "route.done"))
  | [] -> Alcotest.fail "no events"

let test_probe_off_records_nothing () =
  fresh ();
  (* Probes off: the instrumented simulator leaves no footprint. *)
  let dist a b = Float.abs (float_of_int (a - b)) in
  let step u target = if u = target then Scheme.Deliver else Scheme.Forward (u + 1, target) in
  ignore (Scheme.simulate ~dist ~step ~header_bits:(fun _ -> 3) ~src:0 ~header:4 ~max_hops:10 ());
  let counters =
    match Ron_obs.snapshot () with
    | Json.Obj fields -> (
      match List.assoc "counters" fields with
      | Json.Obj cs -> cs
      | _ -> Alcotest.fail "counters not an object")
    | _ -> Alcotest.fail "snapshot not an object"
  in
  List.iter
    (fun (name, v) -> check_bool (name ^ " stays 0") (v = Json.Int 0))
    counters

(* ----------------------------------------------------------------- gauge *)

let test_gauge_basics () =
  fresh ();
  let g = Gauge.make "test.gauge.basic" in
  check_bool "same name yields the same gauge" (Gauge.make "test.gauge.basic" == g);
  check_bool "unwritten" (not (Gauge.written g));
  check_bool "value 0 when unwritten" (Gauge.value g = 0.0);
  Gauge.set g 3.0;
  Gauge.set g 7.0;
  check_bool "last write wins" (Gauge.value g = 7.0);
  Gauge.add g 2.0;
  check_bool "add adjusts in place" (Gauge.value g = 9.0);
  Gauge.set_int g 4;
  check_bool "set_int" (Gauge.value g = 4.0);
  check_bool "written after a set" (Gauge.written g);
  Gauge.reset g;
  check_bool "reset unwrites" (not (Gauge.written g));
  check_bool "reset zeroes the reading" (Gauge.value g = 0.0)

let test_gauge_merge_sums_domains () =
  fresh ();
  (* Two domains, one item each: both shards are written, and the merged
     reading is their sum (the per-domain-cache-occupancy use case). *)
  let g = Gauge.make "test.gauge.merge" in
  Ron_util.Pool.parallel_for ~jobs:2 2 (fun _ -> Gauge.set g 1.0);
  check_bool "merged value sums the shards" (Gauge.value g = 2.0);
  check_bool "max over shards" (Gauge.max_value g = 1.0)

let test_gauge_env_excluded_from_snapshot () =
  fresh ();
  let vis = Gauge.make "test.gauge.visible" in
  let env = Gauge.make ~env:true "test.gauge.envonly" in
  check_bool "env flag recorded" (Gauge.env env && not (Gauge.env vis));
  Gauge.set vis 5.0;
  Gauge.set env 5.0;
  let gauges =
    match Ron_obs.snapshot () with
    | Json.Obj fields -> (
      match List.assoc "gauges" fields with
      | Json.Obj gs -> gs
      | _ -> Alcotest.fail "gauges not an object")
    | _ -> Alcotest.fail "snapshot not an object"
  in
  check_bool "written non-env gauge surfaces"
    (List.assoc_opt "test.gauge.visible" gauges = Some (Json.Float 5.0));
  check_bool "env gauge is excluded from the deterministic snapshot"
    (List.assoc_opt "test.gauge.envonly" gauges = None)

(* ---------------------------------------------------- bucketed histogram *)

let test_bucketed_empty_zero_and_registry () =
  fresh ();
  let h = Bucketed.make "test.bucketed.basic" in
  check_bool "same name yields the same histogram"
    (Bucketed.make "test.bucketed.basic" == h);
  (match Bucketed.make ~relative_error:2.0 "test.bucketed.bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted relative_error outside (0, 1)");
  check_int "empty count" 0 (Bucketed.count h);
  check_bool "empty quantile is nan" (Float.is_nan (Bucketed.quantile h 0.5));
  let s = Bucketed.summary h in
  check_bool "empty summary is nan except count"
    (s.Bucketed.count = 0 && Float.is_nan s.Bucketed.min && Float.is_nan s.Bucketed.p99);
  (* Non-positive observations land in the zero bucket: counted, bounded
     memory, quantile 0. Non-finite inputs are rejected into a separate
     tally and must not shift counts, ranks, or min/max. *)
  Bucketed.observe h 0.0;
  Bucketed.observe h (-3.5);
  Bucketed.observe h nan;
  Bucketed.observe h infinity;
  Bucketed.observe h neg_infinity;
  check_int "zero-bucket observations counted" 2 (Bucketed.count h);
  check_int "non-finite observations tallied apart" 3 (Bucketed.nonfinite_count h);
  check_int "zero bucket occupies no log bucket" 0 (Bucketed.bucket_count h);
  check_bool "all-zero quantile" (Bucketed.quantile h 0.99 = 0.0);
  let s = Bucketed.summary h in
  check_bool "non-finite inputs do not corrupt min/max"
    (s.Bucketed.min = 0.0 && s.Bucketed.max = 0.0);
  Bucketed.reset h;
  check_int "reset drops everything" 0 (Bucketed.count h);
  check_int "reset drops the non-finite tally" 0 (Bucketed.nonfinite_count h)

let test_bucketed_bounded_memory () =
  fresh ();
  (* 100k observations over 6 decades: the footprint stays O(buckets),
     bounded by log-range / log-gamma, not by the observation count. *)
  let h = Bucketed.make "test.bucketed.memory" in
  let rng = Ron_util.Rng.create 42 in
  for _ = 1 to 100_000 do
    Bucketed.observe h (exp (Ron_util.Rng.float rng 13.8))
  done;
  check_int "100k observations" 100_000 (Bucketed.count h);
  let bound = int_of_float (13.8 /. log (Bucketed.gamma h)) + 2 in
  check_bool
    (Printf.sprintf "buckets %d <= log-range bound %d" (Bucketed.bucket_count h) bound)
    (Bucketed.bucket_count h <= bound)

let prop_bucketed_quantiles_within_one_bucket =
  QCheck.Test.make ~name:"bucketed p50/p95/p99 within one bucket of exact" ~count:60
    QCheck.(pair (int_range 1 400) (int_range 0 1_000_000))
    (fun (n, seed) ->
      fresh ();
      let h = Bucketed.make "test.bucketed.prop" in
      let rng = Ron_util.Rng.create seed in
      (* Spread over ~7 decades so many distinct buckets are exercised. *)
      let xs = Array.init n (fun _ -> exp (Ron_util.Rng.float rng 16.0 -. 8.0)) in
      Array.iter (Bucketed.observe h) xs;
      let s = Bucketed.summary h in
      let g = Bucketed.gamma h in
      let within q est =
        let exact = Ron_util.Stats.percentile xs (q *. 100.0) in
        (* Same nearest-rank rule on both sides, so the estimate is the
           representative of the bucket holding the exact rank element:
           off by at most one bucket width. *)
        est >= (exact /. g) *. (1.0 -. 1e-9) && est <= exact *. g *. (1.0 +. 1e-9)
      in
      s.Bucketed.count = n
      && s.Bucketed.min = Ron_util.Stats.minimum xs
      && s.Bucketed.max = Ron_util.Stats.maximum xs
      && within 0.50 s.Bucketed.p50
      && within 0.95 s.Bucketed.p95
      && within 0.99 s.Bucketed.p99)

let prop_bucketed_q1_is_exact_max =
  QCheck.Test.make ~name:"bucketed quantile at q=1.0 is the exact recorded max"
    ~count:100
    QCheck.(pair (int_range 1 300) (int_range 0 1_000_000))
    (fun (n, seed) ->
      fresh ();
      let h = Bucketed.make "test.bucketed.qmax" in
      let rng = Ron_util.Rng.create seed in
      let xs = Array.init n (fun _ -> exp (Ron_util.Rng.float rng 16.0 -. 8.0)) in
      Array.iter (Bucketed.observe h) xs;
      (* Bit-for-bit, not within-a-bucket: q=1.0 must bypass the bucket
         midpoint estimate. *)
      Bucketed.quantile h 1.0 = Ron_util.Stats.maximum xs)

let prop_bucketed_nonfinite_does_not_corrupt =
  QCheck.Test.make
    ~name:"bucketed summary ignores interleaved nan/inf observations" ~count:100
    QCheck.(triple (int_range 1 200) (int_range 0 1_000_000) (int_range 1 50))
    (fun (n, seed, bad) ->
      fresh ();
      let rng = Ron_util.Rng.create seed in
      let xs = Array.init n (fun _ -> exp (Ron_util.Rng.float rng 16.0 -. 8.0)) in
      let clean = Bucketed.make "test.bucketed.clean" in
      Array.iter (Bucketed.observe clean) xs;
      let dirty = Bucketed.make "test.bucketed.dirty" in
      let junk = [| nan; infinity; neg_infinity |] in
      Array.iteri
        (fun i x ->
          Bucketed.observe dirty junk.(i mod 3);
          Bucketed.observe dirty x)
        xs;
      for i = 0 to bad - 1 do
        Bucketed.observe dirty junk.(i mod 3)
      done;
      (* The dirty histogram saw every finite value plus interleaved junk:
         identical summary, junk visible only in the separate tally. *)
      Bucketed.summary dirty = Bucketed.summary clean
      && Bucketed.count dirty = n
      && Bucketed.nonfinite_count dirty = n + bad
      && Bucketed.quantile dirty 1.0 = Bucketed.quantile clean 1.0)

let bucketed_summary_of_run ~jobs =
  let h = Bucketed.make "test.bucketed.jobs" in
  Bucketed.reset h;
  Ron_util.Pool.parallel_for ~jobs 500 (fun i ->
      Bucketed.observe h (float_of_int ((i mod 37) + 1) *. 0.81));
  (Bucketed.summary h, Bucketed.bucket_count h)

let test_bucketed_merge_across_jobs () =
  fresh ();
  (* The shard merge is a commutative sum/extrema, so the summary depends
     only on the observed multiset — identical at any job count. *)
  let s1, b1 = bucketed_summary_of_run ~jobs:1 in
  let s4, b4 = bucketed_summary_of_run ~jobs:4 in
  check_bool "summaries bit-identical at jobs 1 and 4" (s1 = s4);
  check_int "bucket count identical" b1 b4

(* ------------------------------------------------------------- telemetry *)

let telemetry_lines ~jobs ~process_stats =
  fresh ();
  Ron_obs.enable ();
  let sink, lines = Trace.memory_sink () in
  Telemetry.start ~process_stats sink;
  let c = Counter.make "test.tel.counter" in
  let b = Bucketed.make "test.tel.hist" in
  let g = Gauge.make "test.tel.gauge" in
  for round = 1 to 5 do
    Ron_util.Pool.parallel_for ~jobs 200 (fun i ->
        Counter.add c ((i mod 5) + 1);
        Bucketed.observe b (float_of_int ((i mod 17) + 1)));
    Gauge.set_int g round;
    Telemetry.tick ()
  done;
  Telemetry.stop ();
  Ron_obs.disable ();
  lines ()

let test_telemetry_series_bit_identical_across_jobs () =
  (* The headline contract: default logical clock + process_stats:false
     gives a JSONL series that is byte-identical at RON_JOBS=1 and 4 —
     counters merge commutatively, sampling is chunk-free, and worker
     ticks never touch the clock. *)
  let l1 = telemetry_lines ~jobs:1 ~process_stats:false in
  let l4 = telemetry_lines ~jobs:4 ~process_stats:false in
  check_int "baseline + 5 ticks + stop" 7 (List.length l1);
  Alcotest.(check (list string)) "series bit-identical at jobs 1 and 4" l1 l4

let test_telemetry_in_chunk_tick_is_noop () =
  fresh ();
  let sink, _ = Trace.memory_sink () in
  Telemetry.start ~process_stats:false sink;
  check_int "baseline emitted by start" 1 (Telemetry.snapshots_emitted ());
  (* Ticks inside a pool chunk never sample — including the whole body of
     a top-level jobs=1 run, so the answer matches any other job count. *)
  Ron_util.Pool.parallel_for ~jobs:1 50 (fun _ -> Telemetry.tick ());
  check_int "in-chunk ticks are no-ops" 1 (Telemetry.snapshots_emitted ());
  Ron_util.Pool.parallel_for ~jobs:4 50 (fun _ -> Telemetry.tick ());
  check_int "worker ticks are no-ops" 1 (Telemetry.snapshots_emitted ());
  Telemetry.tick ();
  check_int "a chunk-free tick samples" 2 (Telemetry.snapshots_emitted ());
  Telemetry.stop ()

let test_telemetry_start_contract () =
  fresh ();
  let sink, _ = Trace.memory_sink () in
  Telemetry.start sink;
  check_bool "active after start" !Telemetry.active;
  (match Telemetry.start sink with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double start accepted");
  Telemetry.stop ();
  Telemetry.stop ();
  check_bool "stop is idempotent and deactivates" (not !Telemetry.active);
  let sink2, _ = Trace.memory_sink () in
  (match Telemetry.start ~interval:0L sink2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "interval < 1 accepted");
  (* Counter deltas are measured from start: a counter bumped before
     start must not leak into the first post-start delta. *)
  let c = Counter.make "test.tel.prestart" in
  Counter.add c 5;
  let sink3, lines3 = Trace.memory_sink () in
  Telemetry.start ~process_stats:false sink3;
  Telemetry.tick ();
  Telemetry.stop ();
  List.iter
    (fun line ->
      match Trace_read.parse_snapshot_line line with
      | Ok s ->
        check_bool "pre-start counts never appear as a delta"
          (List.assoc_opt "test.tel.prestart" s.Trace_read.counters = None)
      | Error e -> Alcotest.failf "bad snapshot line: %s" e)
    (lines3 ())

let test_telemetry_interval_throttles () =
  fresh ();
  let sink, _ = Trace.memory_sink () in
  Telemetry.start ~process_stats:false ~interval:10L sink;
  (* Logical clock: one tick per read; 30 reads / interval 10 = 3 samples
     past the baseline. *)
  for _ = 1 to 30 do
    Telemetry.tick ()
  done;
  check_int "interval thins the tick stream" 4 (Telemetry.snapshots_emitted ());
  Telemetry.stop ()

let test_telemetry_series_parses_and_validates () =
  fresh ();
  let lines = telemetry_lines ~jobs:2 ~process_stats:true in
  match Trace_read.parse_snapshot_lines lines with
  | Error e -> Alcotest.failf "emitted series does not parse: %s" e
  | Ok snaps -> (
    match Trace_read.validate_snapshots snaps with
    | Error e -> Alcotest.failf "emitted series does not validate: %s" e
    | Ok n ->
      check_int "every line validates" (List.length lines) n;
      let with_gc =
        List.filter (fun (s : Trace_read.snapshot) -> s.Trace_read.gc <> None) snaps
      in
      check_int "process_stats:true carries gc on every sample" n
        (List.length with_gc))

(* ---------------------------------------------------- snapshot validator *)

let test_snapshot_line_parser () =
  let bad s =
    match Trace_read.parse_snapshot_line s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "{}";
  bad "{\"kind\":\"event\",\"ts\":1,\"seq\":0,\"counters\":{},\"gauges\":{},\"hists\":{}}";
  bad "{\"kind\":\"sample\",\"seq\":0,\"counters\":{},\"gauges\":{},\"hists\":{}}";
  bad "{\"kind\":\"sample\",\"ts\":1,\"seq\":\"0\",\"counters\":{},\"gauges\":{},\"hists\":{}}";
  bad "{\"kind\":\"sample\",\"ts\":1,\"seq\":0,\"counters\":3,\"gauges\":{},\"hists\":{}}";
  match
    Trace_read.parse_snapshot_line
      "{\"kind\":\"sample\",\"ts\":7,\"seq\":0,\"counters\":{\"c\":2},\"gauges\":{\"g\":1.5},\"hists\":{},\"rss_kb\":12}"
  with
  | Ok s ->
    check_int "ts" 7 s.Trace_read.sts;
    check_int "seq" 0 s.Trace_read.seq;
    check_bool "counters" (s.Trace_read.counters = [ ("c", Json.Int 2) ]);
    check_bool "rss" (s.Trace_read.rss_kb = Some 12)
  | Error e -> Alcotest.failf "rejected a valid line: %s" e

let test_snapshot_validator_rules () =
  let parse s =
    match Trace_read.parse_snapshot_line s with
    | Ok snap -> snap
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  let sample ?(extra = "") ts seq =
    parse
      (Printf.sprintf
         "{\"kind\":\"sample\",\"ts\":%d,\"seq\":%d,\"counters\":{},\"gauges\":{},\"hists\":{}%s}"
         ts seq extra)
  in
  let reject what snaps =
    match Trace_read.validate_snapshots snaps with
    | Ok _ -> Alcotest.failf "validator accepted %s" what
    | Error _ -> ()
  in
  reject "a seq gap" [ sample 0 0; sample 1 2 ];
  reject "a series not starting at seq 0" [ sample 0 1 ];
  reject "time going backwards" [ sample 5 0; sample 4 1 ];
  reject "a float counter delta"
    [ parse "{\"kind\":\"sample\",\"ts\":0,\"seq\":0,\"counters\":{\"c\":1.5},\"gauges\":{},\"hists\":{}}" ];
  reject "a non-numeric gauge"
    [ parse "{\"kind\":\"sample\",\"ts\":0,\"seq\":0,\"counters\":{},\"gauges\":{\"g\":\"x\"},\"hists\":{}}" ];
  reject "a histogram summary without count"
    [ parse
        "{\"kind\":\"sample\",\"ts\":0,\"seq\":0,\"counters\":{},\"gauges\":{},\"hists\":{\"h\":{\"min\":1,\"max\":2,\"p50\":1,\"p95\":2,\"p99\":2}}}" ];
  reject "an empty histogram summary in a sample"
    [ parse
        "{\"kind\":\"sample\",\"ts\":0,\"seq\":0,\"counters\":{},\"gauges\":{},\"hists\":{\"h\":{\"count\":0,\"min\":1,\"max\":2,\"p50\":1,\"p95\":2,\"p99\":2}}}" ];
  reject "negative rss" [ sample ~extra:",\"rss_kb\":-4" 0 0 ];
  (* Equal timestamps are fine (a forced sample right after a tick), and
     ts non-decreasing across the whole series. *)
  match Trace_read.validate_snapshots [ sample 3 0; sample 3 1; sample 9 2 ] with
  | Ok n -> check_int "well-formed series validates" 3 n
  | Error e -> Alcotest.failf "rejected a valid series: %s" e

(* ---------------------------------------------------------------- flight *)

module Flight = Ron_obs.Flight
module Slo = Ron_obs.Slo
module Expo = Ron_obs.Expo
module Sparkline = Ron_obs.Sparkline

let rec_lat fr ~qid ~lat =
  Flight.record fr ~qid ~scheme:1 ~kind:0 ~src:0 ~dst:1 ~outcome:0 ~hops:2 ~lat
    ~trace:[||] ~trace_len:(-1)

let test_flight_topk_tie_order () =
  (* Ties rank by lower qid; the newcomer evicts the end of the ranking,
     never the middle. *)
  let fr = Flight.create ~window:100 ~per_window:3 ~retain:2 ~trace_every:0 () in
  List.iter
    (fun (qid, lat) -> rec_lat fr ~qid ~lat)
    [ (5, 10); (1, 10); (3, 10); (2, 10); (4, 20) ];
  (match Flight.dump fr with
  | [ (0, es) ] ->
    check_bool "ranked (lat desc, qid asc)"
      (List.map (fun (x : Flight.exemplar) -> (x.Flight.x_qid, x.Flight.x_lat)) es
      = [ (4, 20); (1, 10); (2, 10) ])
  | d -> Alcotest.failf "expected one window, got %d" (List.length d));
  check_int "recorded counts every call" 5 (Flight.recorded fr)

let test_flight_retention () =
  (* retain=2: after touching windows 0..3 only the last two survive, and
     a recycled slot never leaks an older window's entries. *)
  let fr = Flight.create ~window:100 ~per_window:2 ~retain:2 ~trace_every:0 () in
  List.iter
    (fun qid -> rec_lat fr ~qid ~lat:(1000 - qid))
    [ 10; 150; 250; 310; 305 ];
  match Flight.dump fr with
  | [ (2, e2); (3, e3) ] ->
    check_bool "window 2" (List.map (fun (x : Flight.exemplar) -> x.Flight.x_qid) e2 = [ 250 ]);
    check_bool "window 3 ranked" (List.map (fun (x : Flight.exemplar) -> x.Flight.x_qid) e3 = [ 305; 310 ])
  | d ->
    Alcotest.failf "expected windows [2;3], got [%s]"
      (String.concat ";" (List.map (fun (w, _) -> string_of_int w) d))

let test_flight_trace_sampling () =
  (* want_trace is a pure hash of the qid, and a recorded trace is copied
     (capped) into the exemplar. *)
  let fr = Flight.create ~window:64 ~per_window:4 ~retain:2 ~trace_every:2 ~trace_cap:3 () in
  let qid =
    let rec find q = if Flight.want_trace fr q then q else find (q + 1) in
    find 0
  in
  Flight.record fr ~qid ~scheme:1 ~kind:0 ~src:0 ~dst:1 ~outcome:0 ~hops:5 ~lat:9
    ~trace:[| 7; 8; 9; 10; 11 |] ~trace_len:5;
  match List.concat_map snd (Flight.dump fr) with
  | [ x ] -> (
    match x.Flight.x_trace with
    | Some tr -> check_bool "trace capped at trace_cap" (tr = [| 7; 8; 9 |])
    | None -> Alcotest.fail "trace dropped")
  | _ -> Alcotest.fail "expected exactly one exemplar"

(* ------------------------------------------------------------------- slo *)

let test_slo_parse () =
  let ok spec canon =
    match Slo.parse spec with
    | Ok objs -> check_string (spec ^ " canonical") canon (Slo.describe objs)
    | Error e -> Alcotest.failf "parse %S: %s" spec e
  in
  let bad spec =
    match Slo.parse spec with
    | Ok _ -> Alcotest.failf "parse %S: accepted a malformed spec" spec
    | Error _ -> ()
  in
  ok "p99<=2us,delivery>=0.999" "p99<=2000,delivery>=0.999";
  ok "p50<=10ms" "p50<=1e+07";
  ok " p999<=1s , delivery>=0.5 " "p999<=1e+09,delivery>=0.5";
  ok "p95<=4096" "p95<=4096";
  bad "";
  bad ",";
  bad "p99<=";
  bad "p0<=5";
  bad "p99<5";
  bad "q99<=5";
  bad "p99<=-3us";
  bad "delivery>=1.5";
  bad "delivery>=0";
  bad "delivery<=0.9";
  bad "p99<=2us,delivery>=nope"

let test_slo_window_arithmetic () =
  (* Hand-computed windows of 10. Window 0: one of ten above the p90
     limit — exactly the budget, burn 1.0; two undelivered against
     delivery>=0.8 — also exactly the budget. Window 1: five above —
     5x the budget and a violation. Burns are integer-count ratios, but
     the budget goes through [1.0 -. q], so allow one ulp of slack. *)
  let near msg expect got =
    check_bool
      (Printf.sprintf "%s (expected %g, got %.17g)" msg expect got)
      (Float.abs (got -. expect) <= 1e-9 *. expect)
  in
  let objs =
    match Slo.parse "p90<=100,delivery>=0.8" with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  let s = Slo.create ~window:10 ~name:"slo.test.arith" objs in
  for i = 0 to 9 do
    Slo.observe s ~lat:(if i = 0 then 200.0 else 50.0) ~ok:(i > 1)
  done;
  for i = 0 to 9 do
    Slo.observe s ~lat:(if i < 5 then 200.0 else 50.0) ~ok:true
  done;
  Slo.finish s;
  check_int "two closed windows" 2 (Slo.windows_closed s);
  (match Slo.windows s with
  | [ w0; w1 ] ->
    check_int "w0 count" 10 w0.Slo.w_count;
    check_int "w0 delivered" 8 w0.Slo.w_ok;
    let lat0 = w0.Slo.w_results.(0) and del0 = w0.Slo.w_results.(1) in
    check_bool "w0 p90 near 50 (bucket midpoint)"
      (Float.abs (lat0.Slo.value -. 50.0) <= 2.0);
    near "w0 latency burn" 1.0 lat0.Slo.burn;
    check_bool "w0 latency not violated" (not lat0.Slo.violated);
    near "w0 delivery burn" 1.0 del0.Slo.burn;
    check_bool "w0 delivery not violated (0.8 >= 0.8)" (not del0.Slo.violated);
    let lat1 = w1.Slo.w_results.(0) in
    check_bool "w1 p90 near 200" (Float.abs (lat1.Slo.value -. 200.0) <= 5.0);
    near "w1 latency burn" 5.0 lat1.Slo.burn;
    check_bool "w1 violated" lat1.Slo.violated
  | ws -> Alcotest.failf "expected 2 windows, got %d" (List.length ws));
  check_int "one violated window" 1 (Slo.violated_windows s);
  near "max burn" 5.0 (Slo.max_burn s);
  check_bool "overall verdict false" (not (Slo.ok s))

let test_slo_partial_window_and_empty () =
  let objs = match Slo.parse "p50<=10" with Ok o -> o | Error e -> Alcotest.fail e in
  let s = Slo.create ~window:100 ~name:"slo.test.partial" objs in
  check_int "no windows before any observation" 0 (Slo.windows_closed s);
  Slo.finish s;
  check_int "finish on empty closes nothing" 0 (Slo.windows_closed s);
  Slo.observe s ~lat:5.0 ~ok:true;
  Slo.finish s;
  check_int "finish closes the trailing partial window" 1 (Slo.windows_closed s);
  check_bool "partial window evaluated" (Slo.ok s)

(* ------------------------------------------------------------------ expo *)

let test_expo_roundtrip_through_validator () =
  fresh ();
  Ron_obs.enable ();
  let c = Counter.make "expo.test_total_queries" in
  Counter.add c 7;
  let g = Gauge.make "expo.test_level" in
  Gauge.set g 2.5;
  let h = Bucketed.make "expo.test_latency" in
  List.iter (Bucketed.observe h) [ 0.0; 1.0; 10.0; 100.0; 1000.0 ];
  let text = Expo.render () in
  (match Expo.validate_string text with
  | Ok n -> check_bool "several samples" (n > 5)
  | Error e -> Alcotest.failf "rendered exposition rejected: %s\n%s" e text);
  (* The file writer is atomic (tmp + rename) and produces the same body. *)
  let file = Filename.temp_file "ron_expo_test" ".prom" in
  Expo.write file;
  (match Expo.validate_file file with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "written exposition rejected: %s" e);
  check_bool "no tmp litter" (not (Sys.file_exists (file ^ ".tmp")));
  Sys.remove file;
  fresh ()

let test_expo_validator_rejects () =
  let reject what text =
    match Expo.validate_string text with
    | Ok _ -> Alcotest.failf "validator accepted %s" what
    | Error _ -> ()
  in
  reject "an empty exposition" "";
  reject "a sample without TYPE" "ron_x 1\n";
  reject "a bad metric name" "# TYPE 9bad counter\n9bad 1\n";
  reject "a non-numeric value" "# TYPE ron_x counter\nron_x one\n";
  reject "a duplicate TYPE" "# TYPE ron_x counter\n# TYPE ron_x counter\nron_x 1\n";
  reject "a histogram without +Inf"
    "# TYPE ron_h histogram\nron_h_bucket{le=\"1\"} 1\nron_h_sum 1\nron_h_count 1\n";
  reject "a non-cumulative histogram"
    "# TYPE ron_h histogram\n\
     ron_h_bucket{le=\"1\"} 5\n\
     ron_h_bucket{le=\"2\"} 3\n\
     ron_h_bucket{le=\"+Inf\"} 5\n\
     ron_h_sum 9\nron_h_count 5\n";
  reject "a histogram whose count disagrees with +Inf"
    "# TYPE ron_h histogram\n\
     ron_h_bucket{le=\"+Inf\"} 5\n\
     ron_h_sum 9\nron_h_count 4\n";
  match
    Expo.validate_string
      "# HELP ron_x a counter\n# TYPE ron_x counter\nron_x 1\n# TYPE ron_g gauge\nron_g -2.5\n"
  with
  | Ok n -> check_int "valid exposition sample count" 2 n
  | Error e -> Alcotest.failf "rejected a valid exposition: %s" e

(* ------------------------------------------------------------- sparkline *)

let test_sparkline_flat_and_single () =
  let mid = Sparkline.levels.(Sparkline.mid_level) in
  let rep n = String.concat "" (List.init n (fun _ -> mid)) in
  (* A constant series must not degenerate into all-low or all-high. *)
  check_string "flat series renders mid blocks" (rep 3)
    (Sparkline.render ~samples:3 [ (0, 5.0); (1, 5.0); (2, 5.0) ]);
  (* A single sample has no range at all. *)
  check_string "single sample renders one mid block" (rep 1)
    (Sparkline.render ~samples:1 [ (0, 42.0) ]);
  (* A late-starting constant series carries the first value backward —
     no fabricated zero cliff. *)
  check_string "late-starting flat series stays flat" (rep 4)
    (Sparkline.render ~samples:4 [ (2, 10.0); (3, 10.0) ]);
  check_string "empty series" "" (Sparkline.render ~samples:0 []);
  (* A genuine ramp uses the full level range. *)
  let ramp = Sparkline.render ~samples:4 [ (0, 0.0); (1, 1.0); (2, 2.0); (3, 3.0) ] in
  check_bool "ramp starts low" (String.length ramp >= 6
    && String.sub ramp 0 3 = Sparkline.levels.(0));
  check_bool "ramp ends high"
    (String.sub ramp (String.length ramp - 3) 3 = Sparkline.levels.(7))

let () =
  Alcotest.run "ron_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "trace",
        [
          Alcotest.test_case "no-op sink emits nothing" `Quick test_noop_sink_emits_nothing;
          Alcotest.test_case "memory sink captures JSONL" `Quick test_memory_sink_captures_events;
          Alcotest.test_case "stop resets the injected clock" `Quick test_stop_resets_clock;
          Alcotest.test_case "span unwind carries the error" `Quick test_span_unwind_emits_error;
          Alcotest.test_case "reader rejects malformed lines" `Quick test_trace_read_parse_line;
          Alcotest.test_case "validator enforces B/E structure" `Quick
            test_validator_structural_rules;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "growth, empty, reset" `Quick test_histogram_growth_and_empty;
          Alcotest.test_case "reset + re-observe identical across jobs" `Quick
            test_histogram_reset_reobserve_across_jobs;
        ] );
      ( "gauge",
        [
          Alcotest.test_case "last write wins, add, reset" `Quick test_gauge_basics;
          Alcotest.test_case "merge sums written shards" `Quick test_gauge_merge_sums_domains;
          Alcotest.test_case "env gauges stay out of the snapshot" `Quick
            test_gauge_env_excluded_from_snapshot;
        ] );
      ( "bucketed",
        [
          Alcotest.test_case "empty, zero bucket, registry" `Quick
            test_bucketed_empty_zero_and_registry;
          Alcotest.test_case "memory bounded by log range" `Quick test_bucketed_bounded_memory;
          QCheck_alcotest.to_alcotest prop_bucketed_quantiles_within_one_bucket;
          QCheck_alcotest.to_alcotest prop_bucketed_q1_is_exact_max;
          QCheck_alcotest.to_alcotest prop_bucketed_nonfinite_does_not_corrupt;
          Alcotest.test_case "merge identical across jobs" `Quick
            test_bucketed_merge_across_jobs;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "series bit-identical at jobs 1 and 4" `Quick
            test_telemetry_series_bit_identical_across_jobs;
          Alcotest.test_case "in-chunk ticks are no-ops" `Quick
            test_telemetry_in_chunk_tick_is_noop;
          Alcotest.test_case "start/stop contract" `Quick test_telemetry_start_contract;
          Alcotest.test_case "interval throttles the tick stream" `Quick
            test_telemetry_interval_throttles;
          Alcotest.test_case "emitted series parses and validates" `Quick
            test_telemetry_series_parses_and_validates;
        ] );
      ( "snapshot-validator",
        [
          Alcotest.test_case "line parser rejects malformed records" `Quick
            test_snapshot_line_parser;
          Alcotest.test_case "series rules" `Quick test_snapshot_validator_rules;
        ] );
      ( "profile",
        [
          Alcotest.test_case "off is a no-op" `Quick test_profile_off_is_noop;
          Alcotest.test_case "nesting paths and self time" `Quick
            test_profile_nesting_and_self_time;
          Alcotest.test_case "exception unwinds the stack" `Quick test_profile_exception_unwind;
          Alcotest.test_case "disable resets the clock" `Quick test_profile_disable_resets_clock;
          Alcotest.test_case "merge across domains" `Quick test_profile_merge_across_domains;
          Alcotest.test_case "phase mirrors a trace span" `Quick test_profile_mirrors_trace_span;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "snapshot identical at jobs 1 and 4" `Quick
            test_snapshot_deterministic_across_jobs;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "hop events match result" `Quick
            test_simulate_hops_match_trace_and_ledger;
          Alcotest.test_case "probes off record nothing" `Quick test_probe_off_records_nothing;
        ] );
      ( "flight",
        [
          Alcotest.test_case "top-k tie eviction order" `Quick test_flight_topk_tie_order;
          Alcotest.test_case "window retention" `Quick test_flight_retention;
          Alcotest.test_case "trace sampling and cap" `Quick test_flight_trace_sampling;
        ] );
      ( "slo",
        [
          Alcotest.test_case "spec parsing" `Quick test_slo_parse;
          Alcotest.test_case "window arithmetic" `Quick test_slo_window_arithmetic;
          Alcotest.test_case "partial and empty windows" `Quick
            test_slo_partial_window_and_empty;
        ] );
      ( "expo",
        [
          Alcotest.test_case "render round-trips through validator" `Quick
            test_expo_roundtrip_through_validator;
          Alcotest.test_case "validator rejects malformed expositions" `Quick
            test_expo_validator_rejects;
        ] );
      ( "sparkline",
        [
          Alcotest.test_case "flat, single-sample, late-start" `Quick
            test_sparkline_flat_and_single;
        ] );
    ]
