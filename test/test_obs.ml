(* Tests for ron_obs: JSON round-trips, trace sinks, shard-merge
   determinism across domain counts, and the ledger agreeing with the
   routing simulator. *)

module Json = Ron_obs.Json
module Counter = Ron_obs.Counter
module Histogram = Ron_obs.Histogram
module Ledger = Ron_obs.Ledger
module Trace = Ron_obs.Trace
module Probe = Ron_obs.Probe
module Scheme = Ron_routing.Scheme

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Every test runs in one process and the obs state is global, so each test
   starts from a clean slate. *)
let fresh () =
  Ron_obs.disable ();
  Ron_obs.reset ()

(* ------------------------------------------------------------------ JSON *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("int", Json.Int 42);
        ("neg", Json.Int (-7));
        ("float", Json.Float 1.5);
        ("string", Json.String "line\nbreak \"quoted\" back\\slash \t tab");
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  (match Json.of_string (Json.to_line v) with
  | Ok v' -> check_bool "compact round-trip" (v = v')
  | Error e -> Alcotest.failf "compact parse failed: %s" e);
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> check_bool "pretty round-trip" (v = v')
  | Error e -> Alcotest.failf "pretty parse failed: %s" e)

let test_json_escaping () =
  (* Keys and values with every escape class survive a round-trip — the
     bug class the bench emitter had (unescaped keys) stays fixed. *)
  let nasty = "a\"b\\c\nd\re\tf\bg\012h\001i" in
  let v = Json.Obj [ (nasty, Json.String nasty) ] in
  match Json.of_string (Json.to_line v) with
  | Ok v' -> check_bool "nasty key/value round-trip" (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_nonfinite () =
  check_string "nan is null" "null" (Json.to_line (Json.Float nan));
  check_string "inf is null" "null" (Json.to_line (Json.Float infinity))

let test_json_rejects_garbage () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "{\"a\":1,}";
  bad "[1 2]";
  bad "{\"a\":1} trailing"

(* ----------------------------------------------------------------- trace *)

let test_noop_sink_emits_nothing () =
  fresh ();
  (* Inactive tracing: events vanish and cost nothing observable. *)
  check_bool "inactive" (not (Trace.active ()));
  Trace.event "ignored";
  let sink, lines = Trace.memory_sink () in
  Trace.configure ~clock:Trace.logical_clock sink;
  Trace.stop ();
  Trace.event "after-stop" ~args:[ ("x", Json.Int 1) ];
  check_int "nothing written" 0 (List.length (lines ()))

let test_memory_sink_captures_events () =
  fresh ();
  let sink, lines = Trace.memory_sink () in
  Trace.configure ~clock:Trace.logical_clock sink;
  Trace.event "one";
  Trace.span "outer" (fun () -> Trace.event "two" ~args:[ ("k", Json.String "v") ]);
  Trace.stop ();
  let parsed =
    List.map
      (fun line ->
        match Json.of_string line with
        | Ok j -> j
        | Error e -> Alcotest.failf "bad JSONL line %S: %s" line e)
      (lines ())
  in
  check_int "B + E + 2 instants" 4 (List.length parsed);
  List.iter
    (fun j ->
      check_bool "has ts" (Json.member "ts" j <> None);
      check_bool "has name" (Json.member "name" j <> None))
    parsed;
  let phases =
    List.map
      (fun j -> match Json.member "ph" j with Some (Json.String p) -> p | _ -> "?")
      parsed
  in
  Alcotest.(check (list string)) "phases in order" [ "i"; "B"; "i"; "E" ] phases

(* ---------------------------------------------- shard-merge determinism *)

let workload ~jobs =
  fresh ();
  Ron_obs.enable ();
  let c = Counter.make "test.det.counter" in
  let h = Histogram.make "test.det.hist" in
  Ron_util.Pool.parallel_for ~jobs 500 (fun i ->
      Counter.add c (i mod 7);
      Histogram.observe h (float_of_int (i mod 13) /. 4.0));
  (* Per-query ledger entries with deterministic ids, filled in parallel. *)
  ignore
    (Ron_util.Pool.init ~jobs 64 (fun i ->
         Ledger.with_query ~kind:"det" ~id:i (fun () ->
             for _ = 1 to (i mod 5) + 1 do
               Probe.dist_eval ()
             done)));
  let s = Json.to_string (Ron_obs.snapshot ()) in
  Ron_obs.disable ();
  s

let test_snapshot_deterministic_across_jobs () =
  let s1 = workload ~jobs:1 in
  let s4 = workload ~jobs:4 in
  check_string "RON_JOBS=1 and =4 snapshots byte-identical" s1 s4

(* ------------------------------------------- simulator <-> obs agreement *)

let test_simulate_hops_match_trace_and_ledger () =
  fresh ();
  let sink, lines = Trace.memory_sink () in
  Trace.configure ~clock:Trace.logical_clock sink;
  Ron_obs.enable ();
  let dist a b = Float.abs (float_of_int (a - b)) in
  let step u target = if u = target then Scheme.Deliver else Scheme.Forward (u + 1, target) in
  let (r, e) =
    Ledger.with_query ~kind:"route" ~id:0 (fun () ->
        Scheme.simulate ~dist ~step ~header_bits:(fun _ -> 3) ~src:0 ~header:4 ~max_hops:10 ())
  in
  Ron_obs.disable ();
  Trace.stop ();
  check_bool "delivered" (r.Scheme.outcome = Scheme.Delivered);
  check_int "ledger hops = result hops" r.Scheme.hops e.Ledger.hops;
  check_int "ledger header bits" r.Scheme.max_header_bits e.Ledger.header_bits_max;
  let events =
    List.filter_map
      (fun line ->
        match Json.of_string line with
        | Ok j -> Some j
        | Error e -> Alcotest.failf "bad line: %s" e)
      (lines ())
  in
  let hops =
    List.filter (fun j -> Json.member "name" j = Some (Json.String "route.hop")) events
  in
  check_int "one route.hop event per hop" r.Scheme.hops (List.length hops);
  (* The from/to chain of the hop events is exactly the result path. *)
  let edge j field =
    match Json.member "args" j with
    | Some args -> (
      match Json.member field args with
      | Some (Json.Int v) -> v
      | _ -> Alcotest.failf "missing %s" field)
    | None -> Alcotest.fail "missing args"
  in
  let traced = List.concat_map (fun j -> [ edge j "from"; edge j "to" ]) hops in
  let rec path_edges = function
    | a :: (b :: _ as rest) -> a :: b :: path_edges rest
    | _ -> []
  in
  Alcotest.(check (list int)) "hop events follow the path" (path_edges r.Scheme.path) traced;
  match List.rev events with
  | last :: _ ->
    check_bool "final event is route.done"
      (Json.member "name" last = Some (Json.String "route.done"))
  | [] -> Alcotest.fail "no events"

let test_probe_off_records_nothing () =
  fresh ();
  (* Probes off: the instrumented simulator leaves no footprint. *)
  let dist a b = Float.abs (float_of_int (a - b)) in
  let step u target = if u = target then Scheme.Deliver else Scheme.Forward (u + 1, target) in
  ignore (Scheme.simulate ~dist ~step ~header_bits:(fun _ -> 3) ~src:0 ~header:4 ~max_hops:10 ());
  let counters =
    match Ron_obs.snapshot () with
    | Json.Obj fields -> (
      match List.assoc "counters" fields with
      | Json.Obj cs -> cs
      | _ -> Alcotest.fail "counters not an object")
    | _ -> Alcotest.fail "snapshot not an object"
  in
  List.iter
    (fun (name, v) -> check_bool (name ^ " stays 0") (v = Json.Int 0))
    counters

let () =
  Alcotest.run "ron_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
        ] );
      ( "trace",
        [
          Alcotest.test_case "no-op sink emits nothing" `Quick test_noop_sink_emits_nothing;
          Alcotest.test_case "memory sink captures JSONL" `Quick test_memory_sink_captures_events;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "snapshot identical at jobs 1 and 4" `Quick
            test_snapshot_deterministic_across_jobs;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "hop events match result" `Quick
            test_simulate_hops_match_trace_and_ledger;
          Alcotest.test_case "probes off record nothing" `Quick test_probe_off_records_nothing;
        ] );
    ]
