(* Tests for Ron_util.Pool (chunked parallel-for over domains) and
   Ron_util.Fsort (the monomorphic dual-array sort behind Indexed). *)

module Pool = Ron_util.Pool
module Fsort = Ron_util.Fsort
module Rng = Ron_util.Rng

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)

(* ----------------------------------------------------------------- Pool *)

let test_parallel_for_covers_all () =
  List.iter
    (fun n ->
      List.iter
        (fun jobs ->
          let hits = Array.make (max n 1) 0 in
          Pool.parallel_for ~jobs n (fun i -> hits.(i) <- hits.(i) + 1);
          check_bool
            (Printf.sprintf "every index once (n=%d jobs=%d)" n jobs)
            (Array.for_all (fun h -> h = 1) (Array.sub hits 0 n)))
        [ 1; 2; 3; 7 ])
    [ 0; 1; 2; 5; 17; 100 ]

let test_parallel_sum_matches_sequential () =
  let n = 1000 in
  let seq = ref 0 in
  for i = 0 to n - 1 do
    seq := !seq + (i * i)
  done;
  List.iter
    (fun jobs ->
      let partial = Array.make n 0 in
      Pool.parallel_for ~jobs n (fun i -> partial.(i) <- i * i);
      check_int
        (Printf.sprintf "sum of squares (jobs=%d)" jobs)
        !seq
        (Array.fold_left ( + ) 0 partial))
    [ 1; 2; 4; 8 ]

let test_init_matches_array_init () =
  List.iter
    (fun jobs ->
      let a = Pool.init ~jobs 57 (fun i -> (i * 3) - 1) in
      check_bool
        (Printf.sprintf "init = Array.init (jobs=%d)" jobs)
        (a = Array.init 57 (fun i -> (i * 3) - 1)))
    [ 1; 3; 5 ]

let test_init_empty () = check_int "empty init" 0 (Array.length (Pool.init ~jobs:4 0 Fun.id))

let test_map_matches_array_map () =
  let input = Array.init 123 (fun i -> i * 7) in
  List.iter
    (fun jobs ->
      let m = Pool.map ~jobs (fun x -> x + 1) input in
      check_bool
        (Printf.sprintf "map = Array.map (jobs=%d)" jobs)
        (m = Array.map (fun x -> x + 1) input))
    [ 1; 2; 6 ]

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      match Pool.parallel_for ~jobs 100 (fun i -> if i = 41 then raise (Boom i)) with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom 41 -> ()
      | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e))
    [ 1; 2; 4 ]

let test_exception_first_chunk_wins () =
  (* Two chunks raise; the re-raised one must be from the earliest chunk, so
     the choice is deterministic at any job count. *)
  match Pool.parallel_for ~jobs:4 100 (fun i -> if i = 10 || i = 90 then raise (Boom i)) with
  | () -> Alcotest.fail "expected Boom"
  | exception Boom i -> check_int "earliest chunk's exception" 10 i

let test_nested_parallel_for_is_sequential () =
  (* Nested regions must not deadlock or misbehave: the inner call runs
     sequentially on the worker domain. *)
  let n = 8 in
  let acc = Array.make (n * n) 0 in
  Pool.parallel_for ~jobs:2 n (fun i ->
      Pool.parallel_for ~jobs:2 n (fun j -> acc.((i * n) + j) <- (i * n) + j));
  check_bool "nested writes all" (Array.for_all Fun.id (Array.init (n * n) (fun k -> acc.(k) = k)))

let test_jobs_env_default () =
  check_bool "jobs() positive" (Pool.jobs () >= 1)

(* ---------------------------------------------------------------- Fsort *)

let dual_sorted d v =
  let n = Array.length d in
  let ok = ref true in
  for i = 0 to n - 2 do
    if d.(i) > d.(i + 1) then ok := false;
    if d.(i) = d.(i + 1) && v.(i) > v.(i + 1) then ok := false
  done;
  !ok

let reference_dual_sort d v =
  let pairs = Array.init (Array.length d) (fun i -> (d.(i), v.(i))) in
  Array.sort compare pairs;
  (Array.map fst pairs, Array.map snd pairs)

let test_dual_sort_matches_tuple_sort () =
  let rng = Rng.create 424242 in
  for trial = 1 to 200 do
    let n = Rng.int rng 300 in
    (* Coarse values force many duplicate keys, exercising stability. *)
    let d = Array.init n (fun _ -> float_of_int (Rng.int rng 10)) in
    let v = Array.init n Fun.id in
    let (ed, ev) = reference_dual_sort d v in
    Fsort.dual_sort d v;
    check_bool (Printf.sprintf "trial %d keys" trial) (d = ed);
    check_bool (Printf.sprintf "trial %d values (id tie-break)" trial) (v = ev);
    check_bool (Printf.sprintf "trial %d sorted" trial) (dual_sorted d v)
  done

let test_dual_sort_with_scratch () =
  let scratch_d = Array.make 64 0.0 and scratch_v = Array.make 64 0 in
  let rng = Rng.create 7 in
  for _ = 1 to 50 do
    let n = Rng.int rng 64 in
    let d = Array.init n (fun _ -> Rng.float rng 4.0) in
    let v = Array.init n Fun.id in
    let (ed, ev) = reference_dual_sort d v in
    Fsort.dual_sort ~scratch_d ~scratch_v d v;
    check_bool "scratch run keys" (d = ed);
    check_bool "scratch run values" (v = ev)
  done

let test_sort_floats () =
  let rng = Rng.create 99 in
  for _ = 1 to 50 do
    let a = Array.init (Rng.int rng 200) (fun _ -> Rng.float rng 1.0) in
    let expect = Array.copy a in
    Array.sort compare expect;
    Fsort.sort_floats a;
    check_bool "floats sorted" (a = expect)
  done

let test_inside_chunk_flag () =
  check_bool "false outside any region" (not (Pool.inside_chunk ()));
  (* The flag answers identically at every job count — a jobs=1 body is
     still "in a chunk" — so chunk-gated code (telemetry sampling) cannot
     behave differently depending on how the work was split. *)
  List.iter
    (fun jobs ->
      let seen = Array.make 8 false in
      Pool.parallel_for ~jobs 8 (fun i -> seen.(i) <- Pool.inside_chunk ());
      check_bool
        (Printf.sprintf "true inside every chunk at jobs=%d" jobs)
        (Array.for_all Fun.id seen))
    [ 1; 3 ];
  check_bool "restored after the region" (not (Pool.inside_chunk ()))

let test_observer_fires_once_per_top_level_batch () =
  let batches = ref [] in
  Pool.set_observer (fun ~jobs ~items -> batches := (jobs, items) :: !batches);
  Fun.protect
    ~finally:(fun () -> Pool.set_observer (fun ~jobs:_ ~items:_ -> ()))
    (fun () ->
      Pool.parallel_for ~jobs:2 6 (fun _ -> ());
      (* Nested and jobs=1-nested regions are implementation details of
         the outer batch: no observer call, at any top-level job count. *)
      List.iter
        (fun jobs ->
          Pool.parallel_for ~jobs 4 (fun _ -> Pool.parallel_for ~jobs:2 3 (fun _ -> ())))
        [ 1; 2 ];
      Pool.parallel_for ~jobs:1 0 (fun _ -> ()));
  check_bool "one record per top-level nonempty batch"
    (List.rev !batches = [ (2, 6); (1, 4); (2, 4) ])

let test_sort_ints () =
  let a = [| 5; -1; 3; 3; 0; 42; -7 |] in
  Fsort.sort_ints a;
  check_bool "ints sorted" (a = [| -7; -1; 0; 3; 3; 5; 42 |])

let () =
  Alcotest.run "ron_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "covers every index once" `Quick test_parallel_for_covers_all;
          Alcotest.test_case "sum matches sequential" `Quick test_parallel_sum_matches_sequential;
          Alcotest.test_case "init = Array.init" `Quick test_init_matches_array_init;
          Alcotest.test_case "init n=0" `Quick test_init_empty;
          Alcotest.test_case "map = Array.map" `Quick test_map_matches_array_map;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "earliest chunk's exception wins" `Quick test_exception_first_chunk_wins;
          Alcotest.test_case "nested regions run sequentially" `Quick test_nested_parallel_for_is_sequential;
          Alcotest.test_case "jobs() sane" `Quick test_jobs_env_default;
          Alcotest.test_case "inside_chunk is jobs-invariant" `Quick test_inside_chunk_flag;
          Alcotest.test_case "observer fires once per top-level batch" `Quick
            test_observer_fires_once_per_top_level_batch;
        ] );
      ( "fsort",
        [
          Alcotest.test_case "dual_sort = tuple sort" `Quick test_dual_sort_matches_tuple_sort;
          Alcotest.test_case "dual_sort reusable scratch" `Quick test_dual_sort_with_scratch;
          Alcotest.test_case "sort_floats" `Quick test_sort_floats;
          Alcotest.test_case "sort_ints" `Quick test_sort_ints;
        ] );
    ]
