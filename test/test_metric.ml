(* Tests for the ron_metric library: Metric, Indexed, Generators, Doubling,
   Net, Measure, Packing — the substrate Lemmas 1.1-1.4, Theorem 1.3 and
   Lemma 3.1/A.1 of the paper. *)

module Rng = Ron_util.Rng
module Bits = Ron_util.Bits
module Metric = Ron_metric.Metric
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Doubling = Ron_metric.Doubling
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
module Packing = Ron_metric.Packing

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)
let check_float msg = Alcotest.(check (float 1e-9)) msg

let rng () = Rng.create 12345

(* A few standard fixtures. *)
let grid8 = lazy (Indexed.create (Generators.grid2d 8 8))
let expline = lazy (Indexed.create (Generators.exponential_line 16))
let cloud = lazy (Indexed.create (Generators.random_cloud (rng ()) ~n:100 ~dim:2))

(* --------------------------------------------------------------- Metric *)

let test_check_accepts_generators () =
  List.iter
    (fun m ->
      match Metric.check m with
      | Ok () -> ()
      | Error e -> Alcotest.failf "valid metric rejected: %s" e)
    [
      Generators.grid2d 5 4;
      Generators.exponential_line 10;
      Generators.uniform_line 12;
      Generators.ring 9;
      Generators.random_cloud (rng ()) ~n:40 ~dim:3;
      Generators.clustered_latency (rng ()) ~clusters:4 ~per_cluster:8 ~spread:30.0 ~access:5.0;
      Generators.three_point_example 1000.0;
    ]

let test_check_rejects_triangle_violation () =
  let m =
    Metric.of_matrix ~name:"bad"
      [| [| 0.; 1.; 10. |]; [| 1.; 0.; 1. |]; [| 10.; 1.; 0. |] |]
  in
  check_bool "triangle violation detected" (Result.is_error (Metric.check m))

let test_check_rejects_asymmetry () =
  let m =
    Metric.of_matrix ~name:"asym"
      [| [| 0.; 1.; 2. |]; [| 1.5; 0.; 1. |]; [| 2.; 1.; 0. |] |]
  in
  check_bool "asymmetry detected" (Result.is_error (Metric.check m))

let test_check_rejects_zero_offdiag () =
  let m =
    Metric.of_matrix ~name:"dup" [| [| 0.; 0.; 1. |]; [| 0.; 0.; 1. |]; [| 1.; 1.; 0. |] |]
  in
  check_bool "duplicate points detected" (Result.is_error (Metric.check m))

let test_normalize () =
  let m = Generators.euclidean ~name:"pts" [| [| 0. |]; [| 0.5 |]; [| 2.0 |] |] in
  let nm = Metric.normalize m in
  check_float "min distance becomes 1" 1.0 (Metric.min_distance nm);
  check_float "ratios preserved" (Metric.aspect_ratio m) (Metric.aspect_ratio nm)

let test_aspect_ratio_three_point () =
  let m = Generators.three_point_example 1000.0 in
  check_float "aspect ratio" 999.0 (Metric.aspect_ratio m)

let test_submetric () =
  let m = Generators.uniform_line 10 in
  let s = Metric.submetric m [| 0; 3; 9 |] in
  check_int "size" 3 (Metric.size s);
  check_float "distance preserved" 6.0 (Metric.dist s 1 2)

let test_scale () =
  let m = Generators.uniform_line 5 in
  let s = Metric.scale m 2.5 in
  check_float "scaled" 10.0 (Metric.dist s 0 4);
  check_float "aspect ratio invariant" (Metric.aspect_ratio m) (Metric.aspect_ratio s)

(* -------------------------------------------------------------- Indexed *)

let test_indexed_ball_matches_naive () =
  let idx = Lazy.force cloud in
  let n = Indexed.size idx in
  let r = Rng.create 99 in
  for _ = 1 to 50 do
    let u = Rng.int r n in
    let radius = Rng.float r (Indexed.diameter idx) in
    let naive = ref 0 in
    for v = 0 to n - 1 do
      if Indexed.dist idx u v <= radius then incr naive
    done;
    check_int "ball_count = naive" !naive (Indexed.ball_count idx u radius);
    check_int "ball length = naive" !naive (Array.length (Indexed.ball idx u radius))
  done

let test_indexed_ball_sorted_and_starts_self () =
  let idx = Lazy.force grid8 in
  let b = Indexed.ball idx 27 3.0 in
  check_int "self first" 27 b.(0);
  let ok = ref true in
  for i = 0 to Array.length b - 2 do
    if Indexed.dist idx 27 b.(i) > Indexed.dist idx 27 b.(i + 1) then ok := false
  done;
  check_bool "sorted by distance" !ok

let test_indexed_radius_for_count () =
  let idx = Lazy.force grid8 in
  let u = 0 in
  check_float "k=1 radius 0" 0.0 (Indexed.radius_for_count idx u 1);
  let r2 = Indexed.radius_for_count idx u 2 in
  check_float "k=2 nearest" 1.0 r2;
  (* Monotone in k. *)
  let prev = ref 0.0 in
  for k = 1 to Indexed.size idx do
    let r = Indexed.radius_for_count idx u k in
    check_bool "monotone" (r >= !prev);
    prev := r
  done

let test_indexed_r_level () =
  let idx = Lazy.force grid8 in
  let n = Indexed.size idx in
  let u = 12 in
  check_bool "r_level -1 infinite" (Indexed.r_level idx u (-1) = infinity);
  (* level 0: whole space. *)
  check_int "level 0 ball is everything" n
    (Indexed.ball_count idx u (Indexed.r_level idx u 0));
  (* huge level: singleton. *)
  check_float "deep level radius 0" 0.0 (Indexed.r_level idx u 30);
  (* ball at level i has at least ceil(n/2^i) nodes. *)
  for i = 0 to 8 do
    let r = Indexed.r_level idx u i in
    let need = (n + (1 lsl i) - 1) / (1 lsl i) in
    check_bool "measure guarantee" (Indexed.ball_count idx u r >= need)
  done

let test_indexed_annulus () =
  let idx = Lazy.force grid8 in
  let a = Indexed.annulus idx 0 1.0 2.0 in
  Array.iter
    (fun v ->
      let d = Indexed.dist idx 0 v in
      check_bool "annulus bounds" (d > 1.0 && d <= 2.0))
    a;
  (* Counts add up. *)
  check_int "counts partition"
    (Indexed.ball_count idx 0 2.0)
    (Indexed.ball_count idx 0 1.0 + Array.length a)

let test_indexed_aspect_expline () =
  let idx = Lazy.force expline in
  (* {1,2,...,2^15}: min gap 1, diameter 2^15 - 1. *)
  check_float "min" 1.0 (Indexed.min_distance idx);
  check_float "diameter" (float_of_int ((1 lsl 15) - 1)) (Indexed.diameter idx);
  check_int "log2 aspect" 15 (Indexed.log2_aspect_ratio idx)

let test_nearest_of () =
  let idx = Lazy.force grid8 in
  let (v, d) = Indexed.nearest_of idx 0 [| 63; 7; 56 |] in
  check_int "nearest candidate" 7 v;
  check_float "its distance" 7.0 d

let test_indexed_rows_sorted_with_id_tiebreak () =
  (* The grid has many equal distances, so this exercises the documented
     tie-break: equal distances in ascending node id. *)
  List.iter
    (fun idx ->
      let n = Indexed.size idx in
      for u = 0 to n - 1 do
        for k = 0 to n - 2 do
          let (v1, d1) = Indexed.nth_neighbor idx u k in
          let (v2, d2) = Indexed.nth_neighbor idx u (k + 1) in
          check_bool "row non-decreasing" (d1 <= d2);
          if d1 = d2 then check_bool "ties by ascending id" (v1 < v2)
        done
      done)
    [ Lazy.force grid8; Lazy.force expline ]

let test_indexed_create_matches_reference () =
  (* The optimized construction must agree pairwise (order included) with the
     seed implementation, at jobs=1 and at jobs>1. *)
  let m = Generators.random_cloud (Rng.create 4242) ~n:80 ~dim:2 in
  let reference = Indexed.create_reference m in
  List.iter
    (fun jobs ->
      let idx = Indexed.create ~jobs m in
      let n = Indexed.size idx in
      for u = 0 to n - 1 do
        for k = 0 to n - 1 do
          let (v1, d1) = Indexed.nth_neighbor reference u k in
          let (v2, d2) = Indexed.nth_neighbor idx u k in
          check_int (Printf.sprintf "jobs=%d node u=%d k=%d" jobs u k) v1 v2;
          check_float "distance" d1 d2
        done
      done;
      check_float "diameter" (Indexed.diameter reference) (Indexed.diameter idx);
      check_float "min_distance" (Indexed.min_distance reference) (Indexed.min_distance idx))
    [ 1; 4 ]

let test_indexed_ball_count_boundaries () =
  let idx = Lazy.force grid8 in
  let n = Indexed.size idx in
  check_int "negative radius" 0 (Indexed.ball_count idx 0 (-1.0));
  check_int "zero radius counts self" 1 (Indexed.ball_count idx 0 0.0);
  check_int "diameter radius counts all" n (Indexed.ball_count idx 0 (Indexed.diameter idx));
  check_int "beyond diameter" n (Indexed.ball_count idx 0 (Indexed.diameter idx +. 1.0));
  (* Duplicate distances (the grid has many): at every attained radius d the
     closed ball holds the whole tie class; at [Float.pred d] it holds
     exactly the strictly-closer nodes. *)
  for k = 1 to n - 1 do
    let (_, d) = Indexed.nth_neighbor idx 0 k in
    let strictly_closer = ref 0 and tie_class_end = ref 0 in
    for j = 0 to n - 1 do
      let (_, dj) = Indexed.nth_neighbor idx 0 j in
      if dj < d then incr strictly_closer;
      if dj <= d then incr tie_class_end
    done;
    check_int "closed ball = full tie class" !tie_class_end (Indexed.ball_count idx 0 d);
    check_int "just below excludes the tie class" !strictly_closer
      (Indexed.ball_count idx 0 (Float.pred d))
  done

let test_indexed_ball_filter_matches_filter () =
  let idx = Lazy.force cloud in
  let n = Indexed.size idx in
  let r = Rng.create 31 in
  for _ = 1 to 30 do
    let u = Rng.int r n in
    let radius = Rng.float r (Indexed.diameter idx) in
    let keep v = v mod 3 = 0 in
    let expect = Array.of_list (List.filter keep (Array.to_list (Indexed.ball idx u radius))) in
    check_bool "ball_filter = filter o ball" (Indexed.ball_filter idx u radius keep = expect)
  done

(* ------------------------------------------------------------- Doubling *)

let test_greedy_cover_properties () =
  let idx = Lazy.force cloud in
  let n = Indexed.size idx in
  let nodes = Array.init n Fun.id in
  let radius = Indexed.diameter idx /. 4.0 in
  let centers = Doubling.greedy_cover idx nodes ~radius in
  (* Covering: every node within radius of a center. *)
  Array.iter
    (fun u ->
      check_bool "covered" (Array.exists (fun c -> Indexed.dist idx u c <= radius) centers))
    nodes;
  (* Packing: centers pairwise > radius apart. *)
  Array.iteri
    (fun i c ->
      Array.iteri
        (fun j c' -> if j > i then check_bool "packed" (Indexed.dist idx c c' > radius))
        centers)
    centers

let test_dimension_estimate_grid () =
  let idx = Lazy.force grid8 in
  let alpha = Doubling.dimension_estimate idx (rng ()) in
  check_bool "grid dimension in [1, 4]" (alpha >= 1.0 && alpha <= 4.0)

let test_dimension_estimate_expline () =
  let idx = Lazy.force expline in
  let alpha = Doubling.dimension_estimate idx (rng ()) in
  (* The exponential line is doubling with small constant. *)
  check_bool "exponential line doubling" (alpha <= 3.0)

let test_lemma_1_2 () =
  List.iter
    (fun idx -> check_bool "lemma 1.2" (Doubling.lemma_1_2_lower_bound idx ~alpha:4.0))
    [ Lazy.force grid8; Lazy.force expline; Lazy.force cloud ]

(* ------------------------------------------------------------------ Net *)

let test_r_net_is_net () =
  let idx = Lazy.force cloud in
  List.iter
    (fun r ->
      let net = Net.r_net idx ~r () in
      check_bool (Printf.sprintf "r-net r=%g" r) (Net.is_r_net idx net ~r))
    [ 1.0; 2.0; 5.0; 10.0 ]

let test_r_net_with_seeds () =
  let idx = Lazy.force grid8 in
  let seeds = [| 0; 63 |] in
  let net = Net.r_net idx ~seeds ~r:2.0 () in
  check_bool "seeds kept" (Array.exists (( = ) 0) net && Array.exists (( = ) 63) net);
  check_bool "still a net" (Net.is_r_net idx net ~r:2.0)

let test_hierarchy_properties () =
  let idx = Lazy.force grid8 in
  let h = Net.Hierarchy.create idx in
  let n = Indexed.size idx in
  check_int "level 0 is everything" n (Array.length (Net.Hierarchy.level h 0));
  check_int "top level is a single node" 1
    (Array.length (Net.Hierarchy.level h (Net.Hierarchy.jmax h)));
  (* Nested: G_(j+1) subset of G_j; each level is a 2^j-net. *)
  for j = 0 to Net.Hierarchy.jmax h - 1 do
    let upper = Net.Hierarchy.level h (j + 1) in
    Array.iter (fun u -> check_bool "nested" (Net.Hierarchy.mem h j u)) upper;
    check_bool
      (Printf.sprintf "level %d is a 2^%d-net" j j)
      (Net.is_r_net idx (Net.Hierarchy.level h j) ~r:(Float.of_int (1 lsl j)))
  done

let test_hierarchy_nearest_within_radius () =
  let idx = Lazy.force cloud in
  let h = Net.Hierarchy.create idx in
  for j = 0 to Net.Hierarchy.jmax h do
    for u = 0 to Indexed.size idx - 1 do
      let (_, d) = Net.Hierarchy.nearest h j u in
      check_bool "covering radius" (d <= Float.of_int (1 lsl j))
    done
  done

let test_hierarchy_clamping () =
  let idx = Lazy.force grid8 in
  let h = Net.Hierarchy.create idx in
  check_bool "negative clamps to 0"
    (Net.Hierarchy.level h (-5) = Net.Hierarchy.level h 0);
  check_bool "overflow clamps to jmax"
    (Net.Hierarchy.level h 1000 = Net.Hierarchy.level h (Net.Hierarchy.jmax h))

let test_hierarchy_max_level_of () =
  let idx = Lazy.force grid8 in
  let h = Net.Hierarchy.create idx in
  for u = 0 to Indexed.size idx - 1 do
    let l = Net.Hierarchy.max_level_of h u in
    check_bool "at least level 0" (l >= 0);
    check_bool "member at its level" (Net.Hierarchy.mem h l u);
    if l < Net.Hierarchy.jmax h then
      check_bool "not member above" (not (Net.Hierarchy.mem h (l + 1) u) || l + 1 > Net.Hierarchy.jmax h)
  done;
  (* The top net point reaches jmax. *)
  let top = (Net.Hierarchy.level h (Net.Hierarchy.jmax h)).(0) in
  Alcotest.(check int) "top reaches jmax" (Net.Hierarchy.jmax h) (Net.Hierarchy.max_level_of h top)

let test_greedy_cover_zero_radius () =
  let idx = Lazy.force grid8 in
  let nodes = Array.init 10 Fun.id in
  let centers = Doubling.greedy_cover idx nodes ~radius:0.0 in
  check_int "zero radius keeps everything" 10 (Array.length centers)

let test_lemma_1_4_bound () =
  (* An r-net has at most (4r'/r)^alpha points in any ball of radius r'>=r.
     On the 8x8 grid alpha <= 3 comfortably. *)
  let idx = Lazy.force grid8 in
  let r = 2.0 in
  let net = Net.r_net idx ~r () in
  let alpha = 3.0 in
  List.iter
    (fun r' ->
      for u = 0 to Indexed.size idx - 1 do
        let in_ball =
          Array.length (Array.of_list (List.filter (fun p -> Indexed.dist idx u p <= r')
            (Array.to_list net)))
        in
        let bound = (4.0 *. r' /. r) ** alpha in
        check_bool "lemma 1.4" (float_of_int in_ball <= bound)
      done)
    [ 2.0; 4.0; 8.0 ]

(* -------------------------------------------------------------- Measure *)

let measure_fixture idx =
  let h = Net.Hierarchy.create idx in
  Measure.create idx h

let test_measure_probability () =
  List.iter
    (fun idx ->
      let mu = measure_fixture idx in
      let n = Indexed.size idx in
      let total = ref 0.0 in
      for u = 0 to n - 1 do
        check_bool "positive mass" (Measure.mass mu u > 0.0);
        total := !total +. Measure.mass mu u
      done;
      check_bool "sums to 1" (Float.abs (!total -. 1.0) < 1e-9))
    [ Lazy.force grid8; Lazy.force expline; Lazy.force cloud ]

let test_measure_doubling_constant () =
  (* Theorem 1.3: 2^O(alpha)-doubling. On these low-dimensional fixtures the
     constant should be modest. *)
  List.iter
    (fun (name, idx, bound) ->
      let mu = measure_fixture idx in
      let c = Measure.doubling_constant_estimate mu idx (rng ()) in
      check_bool (Printf.sprintf "%s doubling constant %.1f <= %.1f" name c bound) (c <= bound))
    [
      ("grid", Lazy.force grid8, 64.0);
      ("expline", Lazy.force expline, 16.0);
      ("cloud", Lazy.force cloud, 64.0);
    ]

let test_measure_expline_exponential_decay () =
  (* On the exponential line the doubling measure must up-weight the sparse
     (large-coordinate) end: mu(2^(n-1)) >> mu(1) would be wrong the other
     way around — the counting measure piles up near zero, so the measure of
     far points must stay comparable. Concretely the last point carries mass
     comparable to its own scale: mu(last) >= 2^-(jmax+1)-ish, much larger
     than 1/2^n. *)
  let idx = Lazy.force expline in
  let mu = measure_fixture idx in
  let n = Indexed.size idx in
  check_bool "sparse end not starved" (Measure.mass mu (n - 1) >= 0.05)

let test_cumulative_by_distance () =
  let idx = Lazy.force grid8 in
  let mu = measure_fixture idx in
  let c = Measure.cumulative_by_distance mu idx 0 in
  check_bool "non-decreasing"
    (Array.for_all Fun.id (Array.init (Array.length c - 1) (fun i -> c.(i) <= c.(i + 1))));
  check_bool "total is 1" (Float.abs (c.(Array.length c - 1) -. 1.0) < 1e-9)

(* -------------------------------------------------------------- Packing *)

let test_packing_disjoint_and_covering () =
  List.iter
    (fun idx ->
      let n = Indexed.size idx in
      List.iter
        (fun i ->
          let eps = 1.0 /. float_of_int (1 lsl i) in
          let p = Packing.create idx ~eps in
          (* Balls are disjoint. *)
          let owner = Array.make n (-1) in
          Array.iteri
            (fun bi b ->
              Array.iter
                (fun v ->
                  check_bool "disjoint" (owner.(v) < 0);
                  owner.(v) <- bi)
                b.Packing.members)
            (Packing.balls p);
          (* Lemma A.1 guarantee: for every u some ball with d+r <= 6 r_u(eps). *)
          for u = 0 to n - 1 do
            let b = Packing.covering_ball p idx u in
            let value = Indexed.dist idx u b.Packing.center +. b.Packing.radius in
            check_bool "6 r_u(eps) guarantee" (value <= 6.0 *. Indexed.r_eps idx u eps +. 1e-9)
          done)
        [ 0; 1; 2; 3 ])
    [ Lazy.force grid8; Lazy.force expline; Lazy.force cloud ]

let test_packing_measure_lower_bound () =
  (* Each ball has measure >= eps / 2^O(alpha); check a concrete constant for
     the grid (alpha ~ 2, the proof's 16^alpha with alpha<=3). *)
  let idx = Lazy.force grid8 in
  let eps = 0.125 in
  let p = Packing.create idx ~eps in
  Array.iter
    (fun b ->
      check_bool "measure lower bound" (Packing.measure_of p b >= eps /. 4096.0))
    (Packing.balls p)

let test_packing_members_are_balls () =
  let idx = Lazy.force cloud in
  let p = Packing.create idx ~eps:0.25 in
  Array.iter
    (fun b ->
      let expect = Indexed.ball idx b.Packing.center b.Packing.radius in
      let sort a = let c = Array.copy a in Array.sort compare c; c in
      check_bool "members = metric ball" (sort expect = sort b.Packing.members))
    (Packing.balls p)

let test_packing_eps_one () =
  let idx = Lazy.force grid8 in
  let p = Packing.create idx ~eps:1.0 in
  check_bool "nonempty" (Array.length (Packing.balls p) >= 1)

let test_packing_ball_index_of_member () =
  let idx = Lazy.force grid8 in
  let p = Packing.create idx ~eps:0.25 in
  Array.iteri
    (fun bi b ->
      Array.iter
        (fun v -> check_bool "owner matches" (Packing.ball_index_of_member p v = Some bi))
        b.Packing.members)
    (Packing.balls p)

(* --------------------------------------------------------------- QCheck *)

let prop_cloud_metric_valid =
  QCheck.Test.make ~name:"random clouds satisfy the metric axioms" ~count:20
    QCheck.(pair (int_range 5 40) (int_range 1 4))
    (fun (n, dim) ->
      let m = Generators.random_cloud (Rng.create (n * 31 + dim)) ~n ~dim in
      Result.is_ok (Metric.check m))

let prop_latency_metric_valid =
  QCheck.Test.make ~name:"latency metrics satisfy the metric axioms" ~count:15
    QCheck.(pair (int_range 2 5) (int_range 2 8))
    (fun (clusters, per_cluster) ->
      let m =
        Generators.clustered_latency
          (Rng.create (clusters * 131 + per_cluster))
          ~clusters ~per_cluster ~spread:25.0 ~access:10.0
      in
      Result.is_ok (Metric.check m))

let prop_net_invariants =
  QCheck.Test.make ~name:"greedy nets satisfy packing+covering" ~count:20
    QCheck.(pair (int_range 10 60) (int_range 0 4))
    (fun (n, rexp) ->
      let idx = Indexed.create (Generators.random_cloud (Rng.create (n * 7 + rexp)) ~n ~dim:2) in
      let r = Float.of_int (1 lsl rexp) in
      Net.is_r_net idx (Net.r_net idx ~r ()) ~r)

let prop_hierarchy_nested =
  QCheck.Test.make ~name:"hierarchies are nested nets" ~count:10
    QCheck.(int_range 10 50)
    (fun n ->
      let idx = Indexed.create (Generators.random_cloud (Rng.create (n * 13)) ~n ~dim:2) in
      let h = Net.Hierarchy.create idx in
      let ok = ref true in
      for j = 0 to Net.Hierarchy.jmax h - 1 do
        Array.iter
          (fun u -> if not (Net.Hierarchy.mem h j u) then ok := false)
          (Net.Hierarchy.level h (j + 1))
      done;
      !ok)

let prop_indexed_rows_sorted =
  QCheck.Test.make ~name:"indexed rows sorted, ties by ascending id" ~count:15
    QCheck.(int_range 5 60)
    (fun n ->
      let idx = Indexed.create (Generators.random_cloud (Rng.create (n * 11)) ~n ~dim:2) in
      let ok = ref true in
      for u = 0 to n - 1 do
        for k = 0 to n - 2 do
          let (v1, d1) = Indexed.nth_neighbor idx u k in
          let (v2, d2) = Indexed.nth_neighbor idx u (k + 1) in
          if d1 > d2 || (d1 = d2 && v1 >= v2) then ok := false
        done
      done;
      !ok)

let prop_indexed_parallel_equals_sequential =
  QCheck.Test.make ~name:"Indexed.create identical at jobs=1 and jobs=4" ~count:10
    QCheck.(int_range 5 50)
    (fun n ->
      let m = Generators.random_cloud (Rng.create (n * 19)) ~n ~dim:2 in
      let a = Indexed.create ~jobs:1 m and b = Indexed.create ~jobs:4 m in
      let ok = ref true in
      for u = 0 to n - 1 do
        for k = 0 to n - 1 do
          if Indexed.nth_neighbor a u k <> Indexed.nth_neighbor b u k then ok := false
        done
      done;
      !ok)

let prop_packing_guarantee =
  QCheck.Test.make ~name:"packing 6r_u(eps) guarantee on random clouds" ~count:10
    QCheck.(pair (int_range 10 60) (int_range 0 3))
    (fun (n, i) ->
      let idx = Indexed.create (Generators.random_cloud (Rng.create (n * 17 + i)) ~n ~dim:2) in
      let eps = 1.0 /. float_of_int (1 lsl i) in
      let p = Packing.create idx ~eps in
      let ok = ref true in
      for u = 0 to n - 1 do
        let b = Packing.covering_ball p idx u in
        if Indexed.dist idx u b.Packing.center +. b.Packing.radius > 6.0 *. Indexed.r_eps idx u eps +. 1e-9
        then ok := false
      done;
      !ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ron_metric"
    [
      ( "metric",
        [
          Alcotest.test_case "generators pass check" `Quick test_check_accepts_generators;
          Alcotest.test_case "triangle violation rejected" `Quick test_check_rejects_triangle_violation;
          Alcotest.test_case "asymmetry rejected" `Quick test_check_rejects_asymmetry;
          Alcotest.test_case "duplicate points rejected" `Quick test_check_rejects_zero_offdiag;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "three-point aspect ratio" `Quick test_aspect_ratio_three_point;
          Alcotest.test_case "submetric" `Quick test_submetric;
          Alcotest.test_case "scale" `Quick test_scale;
        ] );
      ( "indexed",
        [
          Alcotest.test_case "ball matches naive" `Quick test_indexed_ball_matches_naive;
          Alcotest.test_case "ball sorted, self first" `Quick test_indexed_ball_sorted_and_starts_self;
          Alcotest.test_case "radius_for_count" `Quick test_indexed_radius_for_count;
          Alcotest.test_case "r_level" `Quick test_indexed_r_level;
          Alcotest.test_case "annulus" `Quick test_indexed_annulus;
          Alcotest.test_case "exponential line aspect" `Quick test_indexed_aspect_expline;
          Alcotest.test_case "nearest_of" `Quick test_nearest_of;
          Alcotest.test_case "rows sorted, ties by id" `Quick test_indexed_rows_sorted_with_id_tiebreak;
          Alcotest.test_case "create = create_reference (jobs 1 and 4)" `Quick
            test_indexed_create_matches_reference;
          Alcotest.test_case "ball_count boundaries" `Quick test_indexed_ball_count_boundaries;
          Alcotest.test_case "ball_filter = filter o ball" `Quick test_indexed_ball_filter_matches_filter;
        ] );
      ( "doubling",
        [
          Alcotest.test_case "greedy cover properties" `Quick test_greedy_cover_properties;
          Alcotest.test_case "greedy cover zero radius" `Quick test_greedy_cover_zero_radius;
          Alcotest.test_case "grid dimension estimate" `Quick test_dimension_estimate_grid;
          Alcotest.test_case "exponential line estimate" `Quick test_dimension_estimate_expline;
          Alcotest.test_case "lemma 1.2" `Quick test_lemma_1_2;
        ] );
      ( "net",
        [
          Alcotest.test_case "r_net is a net" `Quick test_r_net_is_net;
          Alcotest.test_case "r_net with seeds" `Quick test_r_net_with_seeds;
          Alcotest.test_case "hierarchy properties" `Quick test_hierarchy_properties;
          Alcotest.test_case "hierarchy covering radii" `Quick test_hierarchy_nearest_within_radius;
          Alcotest.test_case "hierarchy clamping" `Quick test_hierarchy_clamping;
          Alcotest.test_case "lemma 1.4 bound" `Quick test_lemma_1_4_bound;
          Alcotest.test_case "max_level_of" `Quick test_hierarchy_max_level_of;
        ] );
      ( "measure",
        [
          Alcotest.test_case "probability measure" `Quick test_measure_probability;
          Alcotest.test_case "doubling constant" `Quick test_measure_doubling_constant;
          Alcotest.test_case "exponential line decay" `Quick test_measure_expline_exponential_decay;
          Alcotest.test_case "cumulative by distance" `Quick test_cumulative_by_distance;
        ] );
      ( "packing",
        [
          Alcotest.test_case "disjoint + covering" `Quick test_packing_disjoint_and_covering;
          Alcotest.test_case "measure lower bound" `Quick test_packing_measure_lower_bound;
          Alcotest.test_case "members are metric balls" `Quick test_packing_members_are_balls;
          Alcotest.test_case "eps = 1" `Quick test_packing_eps_one;
          Alcotest.test_case "ball_index_of_member" `Quick test_packing_ball_index_of_member;
        ] );
      ( "properties",
        [
          qt prop_cloud_metric_valid;
          qt prop_latency_metric_valid;
          qt prop_net_invariants;
          qt prop_hierarchy_nested;
          qt prop_packing_guarantee;
          qt prop_indexed_rows_sorted;
          qt prop_indexed_parallel_equals_sequential;
        ] );
    ]
